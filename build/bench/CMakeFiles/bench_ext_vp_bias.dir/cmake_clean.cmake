file(REMOVE_RECURSE
  "CMakeFiles/bench_ext_vp_bias.dir/ext_vp_bias.cpp.o"
  "CMakeFiles/bench_ext_vp_bias.dir/ext_vp_bias.cpp.o.d"
  "bench_ext_vp_bias"
  "bench_ext_vp_bias.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ext_vp_bias.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
