# Empty dependencies file for bench_ext_vp_bias.
# This may be replaced when dependencies are built.
