file(REMOVE_RECURSE
  "CMakeFiles/bench_fig05_international_stability.dir/fig05_international_stability.cpp.o"
  "CMakeFiles/bench_fig05_international_stability.dir/fig05_international_stability.cpp.o.d"
  "bench_fig05_international_stability"
  "bench_fig05_international_stability.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig05_international_stability.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
