# Empty compiler generated dependencies file for bench_fig05_international_stability.
# This may be replaced when dependencies are built.
