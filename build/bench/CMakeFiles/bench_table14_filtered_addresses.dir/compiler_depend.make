# Empty compiler generated dependencies file for bench_table14_filtered_addresses.
# This may be replaced when dependencies are built.
