file(REMOVE_RECURSE
  "CMakeFiles/bench_table14_filtered_addresses.dir/table14_filtered_addresses.cpp.o"
  "CMakeFiles/bench_table14_filtered_addresses.dir/table14_filtered_addresses.cpp.o.d"
  "bench_table14_filtered_addresses"
  "bench_table14_filtered_addresses.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table14_filtered_addresses.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
