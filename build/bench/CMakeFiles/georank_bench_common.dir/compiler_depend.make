# Empty compiler generated dependencies file for georank_bench_common.
# This may be replaced when dependencies are built.
