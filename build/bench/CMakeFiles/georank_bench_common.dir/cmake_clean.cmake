file(REMOVE_RECURSE
  "CMakeFiles/georank_bench_common.dir/common/bench_world.cpp.o"
  "CMakeFiles/georank_bench_common.dir/common/bench_world.cpp.o.d"
  "CMakeFiles/georank_bench_common.dir/common/case_study.cpp.o"
  "CMakeFiles/georank_bench_common.dir/common/case_study.cpp.o.d"
  "libgeorank_bench_common.a"
  "libgeorank_bench_common.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/georank_bench_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
