file(REMOVE_RECURSE
  "libgeorank_bench_common.a"
)
