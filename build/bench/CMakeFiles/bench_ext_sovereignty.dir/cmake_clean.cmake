file(REMOVE_RECURSE
  "CMakeFiles/bench_ext_sovereignty.dir/ext_sovereignty.cpp.o"
  "CMakeFiles/bench_ext_sovereignty.dir/ext_sovereignty.cpp.o.d"
  "bench_ext_sovereignty"
  "bench_ext_sovereignty.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ext_sovereignty.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
