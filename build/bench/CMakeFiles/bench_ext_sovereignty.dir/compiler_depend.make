# Empty compiler generated dependencies file for bench_ext_sovereignty.
# This may be replaced when dependencies are built.
