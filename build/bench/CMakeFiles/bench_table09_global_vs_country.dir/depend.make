# Empty dependencies file for bench_table09_global_vs_country.
# This may be replaced when dependencies are built.
