file(REMOVE_RECURSE
  "CMakeFiles/bench_table09_global_vs_country.dir/table09_global_vs_country.cpp.o"
  "CMakeFiles/bench_table09_global_vs_country.dir/table09_global_vs_country.cpp.o.d"
  "bench_table09_global_vs_country"
  "bench_table09_global_vs_country.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table09_global_vs_country.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
