file(REMOVE_RECURSE
  "CMakeFiles/bench_ablation_inference.dir/ablation_inference.cpp.o"
  "CMakeFiles/bench_ablation_inference.dir/ablation_inference.cpp.o.d"
  "bench_ablation_inference"
  "bench_ablation_inference.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_inference.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
