# Empty dependencies file for bench_ablation_inference.
# This may be replaced when dependencies are built.
