file(REMOVE_RECURSE
  "CMakeFiles/bench_table12_continents.dir/table12_continents.cpp.o"
  "CMakeFiles/bench_table12_continents.dir/table12_continents.cpp.o.d"
  "bench_table12_continents"
  "bench_table12_continents.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table12_continents.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
