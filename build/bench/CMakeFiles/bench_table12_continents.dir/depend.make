# Empty dependencies file for bench_table12_continents.
# This may be replaced when dependencies are built.
