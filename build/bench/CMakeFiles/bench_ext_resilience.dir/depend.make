# Empty dependencies file for bench_ext_resilience.
# This may be replaced when dependencies are built.
