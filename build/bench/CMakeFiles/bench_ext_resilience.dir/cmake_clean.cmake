file(REMOVE_RECURSE
  "CMakeFiles/bench_ext_resilience.dir/ext_resilience.cpp.o"
  "CMakeFiles/bench_ext_resilience.dir/ext_resilience.cpp.o.d"
  "bench_ext_resilience"
  "bench_ext_resilience.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ext_resilience.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
