# Empty dependencies file for bench_fig08_geo_threshold.
# This may be replaced when dependencies are built.
