file(REMOVE_RECURSE
  "CMakeFiles/bench_fig08_geo_threshold.dir/fig08_geo_threshold.cpp.o"
  "CMakeFiles/bench_fig08_geo_threshold.dir/fig08_geo_threshold.cpp.o.d"
  "bench_fig08_geo_threshold"
  "bench_fig08_geo_threshold.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig08_geo_threshold.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
