file(REMOVE_RECURSE
  "CMakeFiles/bench_ablation_trim.dir/ablation_trim.cpp.o"
  "CMakeFiles/bench_ablation_trim.dir/ablation_trim.cpp.o.d"
  "bench_ablation_trim"
  "bench_ablation_trim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_trim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
