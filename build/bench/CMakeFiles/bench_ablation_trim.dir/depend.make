# Empty dependencies file for bench_ablation_trim.
# This may be replaced when dependencies are built.
