file(REMOVE_RECURSE
  "CMakeFiles/bench_table08_united_states.dir/table08_united_states.cpp.o"
  "CMakeFiles/bench_table08_united_states.dir/table08_united_states.cpp.o.d"
  "bench_table08_united_states"
  "bench_table08_united_states.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table08_united_states.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
