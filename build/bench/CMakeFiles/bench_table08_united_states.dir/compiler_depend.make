# Empty compiler generated dependencies file for bench_table08_united_states.
# This may be replaced when dependencies are built.
