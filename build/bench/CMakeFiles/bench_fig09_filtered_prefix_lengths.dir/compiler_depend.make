# Empty compiler generated dependencies file for bench_fig09_filtered_prefix_lengths.
# This may be replaced when dependencies are built.
