file(REMOVE_RECURSE
  "CMakeFiles/bench_fig09_filtered_prefix_lengths.dir/fig09_filtered_prefix_lengths.cpp.o"
  "CMakeFiles/bench_fig09_filtered_prefix_lengths.dir/fig09_filtered_prefix_lengths.cpp.o.d"
  "bench_fig09_filtered_prefix_lengths"
  "bench_fig09_filtered_prefix_lengths.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig09_filtered_prefix_lengths.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
