file(REMOVE_RECURSE
  "CMakeFiles/bench_table02_views.dir/table02_views.cpp.o"
  "CMakeFiles/bench_table02_views.dir/table02_views.cpp.o.d"
  "bench_table02_views"
  "bench_table02_views.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table02_views.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
