# Empty compiler generated dependencies file for bench_fig07_soviet_bloc.
# This may be replaced when dependencies are built.
