file(REMOVE_RECURSE
  "CMakeFiles/bench_fig07_soviet_bloc.dir/fig07_soviet_bloc.cpp.o"
  "CMakeFiles/bench_fig07_soviet_bloc.dir/fig07_soviet_bloc.cpp.o.d"
  "bench_fig07_soviet_bloc"
  "bench_fig07_soviet_bloc.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig07_soviet_bloc.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
