file(REMOVE_RECURSE
  "CMakeFiles/bench_fig10_vp_concentration.dir/fig10_vp_concentration.cpp.o"
  "CMakeFiles/bench_fig10_vp_concentration.dir/fig10_vp_concentration.cpp.o.d"
  "bench_fig10_vp_concentration"
  "bench_fig10_vp_concentration.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig10_vp_concentration.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
