# Empty dependencies file for bench_fig10_vp_concentration.
# This may be replaced when dependencies are built.
