# Empty compiler generated dependencies file for bench_ext_timeline.
# This may be replaced when dependencies are built.
