file(REMOVE_RECURSE
  "CMakeFiles/bench_ext_timeline.dir/ext_timeline.cpp.o"
  "CMakeFiles/bench_ext_timeline.dir/ext_timeline.cpp.o.d"
  "bench_ext_timeline"
  "bench_ext_timeline.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ext_timeline.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
