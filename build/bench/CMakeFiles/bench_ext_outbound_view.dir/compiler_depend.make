# Empty compiler generated dependencies file for bench_ext_outbound_view.
# This may be replaced when dependencies are built.
