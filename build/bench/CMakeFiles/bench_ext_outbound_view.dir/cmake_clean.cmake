file(REMOVE_RECURSE
  "CMakeFiles/bench_ext_outbound_view.dir/ext_outbound_view.cpp.o"
  "CMakeFiles/bench_ext_outbound_view.dir/ext_outbound_view.cpp.o.d"
  "bench_ext_outbound_view"
  "bench_ext_outbound_view.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ext_outbound_view.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
