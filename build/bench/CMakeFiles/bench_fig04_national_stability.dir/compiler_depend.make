# Empty compiler generated dependencies file for bench_fig04_national_stability.
# This may be replaced when dependencies are built.
