file(REMOVE_RECURSE
  "CMakeFiles/bench_fig04_national_stability.dir/fig04_national_stability.cpp.o"
  "CMakeFiles/bench_fig04_national_stability.dir/fig04_national_stability.cpp.o.d"
  "bench_fig04_national_stability"
  "bench_fig04_national_stability.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig04_national_stability.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
