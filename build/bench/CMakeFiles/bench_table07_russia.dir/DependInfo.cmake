
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/bench/table07_russia.cpp" "bench/CMakeFiles/bench_table07_russia.dir/table07_russia.cpp.o" "gcc" "bench/CMakeFiles/bench_table07_russia.dir/table07_russia.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/bench/CMakeFiles/georank_bench_common.dir/DependInfo.cmake"
  "/root/repo/build/src/core/CMakeFiles/georank_core.dir/DependInfo.cmake"
  "/root/repo/build/src/gen/CMakeFiles/georank_gen.dir/DependInfo.cmake"
  "/root/repo/build/src/rank/CMakeFiles/georank_rank.dir/DependInfo.cmake"
  "/root/repo/build/src/sanitize/CMakeFiles/georank_sanitize.dir/DependInfo.cmake"
  "/root/repo/build/src/infer/CMakeFiles/georank_infer.dir/DependInfo.cmake"
  "/root/repo/build/src/geo/CMakeFiles/georank_geo.dir/DependInfo.cmake"
  "/root/repo/build/src/topo/CMakeFiles/georank_topo.dir/DependInfo.cmake"
  "/root/repo/build/src/bgp/CMakeFiles/georank_bgp.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/georank_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
