# Empty compiler generated dependencies file for bench_table07_russia.
# This may be replaced when dependencies are built.
