file(REMOVE_RECURSE
  "CMakeFiles/bench_table07_russia.dir/table07_russia.cpp.o"
  "CMakeFiles/bench_table07_russia.dir/table07_russia.cpp.o.d"
  "bench_table07_russia"
  "bench_table07_russia.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table07_russia.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
