# CMAKE generated file: DO NOT EDIT!
# Timestamp file for compiler generated dependencies management for bench_table03_top_vp_countries.
