file(REMOVE_RECURSE
  "CMakeFiles/bench_table03_top_vp_countries.dir/table03_top_vp_countries.cpp.o"
  "CMakeFiles/bench_table03_top_vp_countries.dir/table03_top_vp_countries.cpp.o.d"
  "bench_table03_top_vp_countries"
  "bench_table03_top_vp_countries.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table03_top_vp_countries.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
