# Empty dependencies file for bench_table03_top_vp_countries.
# This may be replaced when dependencies are built.
