# Empty dependencies file for bench_table04_country_census.
# This may be replaced when dependencies are built.
