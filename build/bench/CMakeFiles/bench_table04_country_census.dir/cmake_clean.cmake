file(REMOVE_RECURSE
  "CMakeFiles/bench_table04_country_census.dir/table04_country_census.cpp.o"
  "CMakeFiles/bench_table04_country_census.dir/table04_country_census.cpp.o.d"
  "bench_table04_country_census"
  "bench_table04_country_census.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table04_country_census.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
