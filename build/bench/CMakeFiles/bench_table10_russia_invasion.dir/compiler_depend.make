# Empty compiler generated dependencies file for bench_table10_russia_invasion.
# This may be replaced when dependencies are built.
