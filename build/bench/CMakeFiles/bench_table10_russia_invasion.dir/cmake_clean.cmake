file(REMOVE_RECURSE
  "CMakeFiles/bench_table10_russia_invasion.dir/table10_russia_invasion.cpp.o"
  "CMakeFiles/bench_table10_russia_invasion.dir/table10_russia_invasion.cpp.o.d"
  "bench_table10_russia_invasion"
  "bench_table10_russia_invasion.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table10_russia_invasion.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
