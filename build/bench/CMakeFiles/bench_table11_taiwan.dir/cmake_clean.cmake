file(REMOVE_RECURSE
  "CMakeFiles/bench_table11_taiwan.dir/table11_taiwan.cpp.o"
  "CMakeFiles/bench_table11_taiwan.dir/table11_taiwan.cpp.o.d"
  "bench_table11_taiwan"
  "bench_table11_taiwan.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table11_taiwan.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
