# Empty compiler generated dependencies file for bench_table11_taiwan.
# This may be replaced when dependencies are built.
