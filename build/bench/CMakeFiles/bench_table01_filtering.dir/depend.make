# Empty dependencies file for bench_table01_filtering.
# This may be replaced when dependencies are built.
