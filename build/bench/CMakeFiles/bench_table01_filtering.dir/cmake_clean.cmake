file(REMOVE_RECURSE
  "CMakeFiles/bench_table01_filtering.dir/table01_filtering.cpp.o"
  "CMakeFiles/bench_table01_filtering.dir/table01_filtering.cpp.o.d"
  "bench_table01_filtering"
  "bench_table01_filtering.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table01_filtering.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
