file(REMOVE_RECURSE
  "CMakeFiles/bench_ablation_cone.dir/ablation_cone.cpp.o"
  "CMakeFiles/bench_ablation_cone.dir/ablation_cone.cpp.o.d"
  "bench_ablation_cone"
  "bench_ablation_cone.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_cone.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
