# Empty compiler generated dependencies file for bench_ablation_cone.
# This may be replaced when dependencies are built.
