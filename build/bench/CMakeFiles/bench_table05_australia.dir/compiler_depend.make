# Empty compiler generated dependencies file for bench_table05_australia.
# This may be replaced when dependencies are built.
