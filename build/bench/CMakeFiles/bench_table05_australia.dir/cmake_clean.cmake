file(REMOVE_RECURSE
  "CMakeFiles/bench_table05_australia.dir/table05_australia.cpp.o"
  "CMakeFiles/bench_table05_australia.dir/table05_australia.cpp.o.d"
  "bench_table05_australia"
  "bench_table05_australia.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table05_australia.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
