# Empty compiler generated dependencies file for bench_table06_japan.
# This may be replaced when dependencies are built.
