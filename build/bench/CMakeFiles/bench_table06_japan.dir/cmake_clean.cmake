file(REMOVE_RECURSE
  "CMakeFiles/bench_table06_japan.dir/table06_japan.cpp.o"
  "CMakeFiles/bench_table06_japan.dir/table06_japan.cpp.o.d"
  "bench_table06_japan"
  "bench_table06_japan.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table06_japan.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
