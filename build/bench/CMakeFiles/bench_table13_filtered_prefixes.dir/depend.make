# Empty dependencies file for bench_table13_filtered_prefixes.
# This may be replaced when dependencies are built.
