file(REMOVE_RECURSE
  "CMakeFiles/bench_table13_filtered_prefixes.dir/table13_filtered_prefixes.cpp.o"
  "CMakeFiles/bench_table13_filtered_prefixes.dir/table13_filtered_prefixes.cpp.o.d"
  "bench_table13_filtered_prefixes"
  "bench_table13_filtered_prefixes.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table13_filtered_prefixes.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
