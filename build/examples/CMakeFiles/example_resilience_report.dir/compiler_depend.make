# Empty compiler generated dependencies file for example_resilience_report.
# This may be replaced when dependencies are built.
