file(REMOVE_RECURSE
  "CMakeFiles/example_resilience_report.dir/resilience_report.cpp.o"
  "CMakeFiles/example_resilience_report.dir/resilience_report.cpp.o.d"
  "example_resilience_report"
  "example_resilience_report.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/example_resilience_report.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
