# Empty compiler generated dependencies file for example_depeering_study.
# This may be replaced when dependencies are built.
