file(REMOVE_RECURSE
  "CMakeFiles/example_depeering_study.dir/depeering_study.cpp.o"
  "CMakeFiles/example_depeering_study.dir/depeering_study.cpp.o.d"
  "example_depeering_study"
  "example_depeering_study.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/example_depeering_study.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
