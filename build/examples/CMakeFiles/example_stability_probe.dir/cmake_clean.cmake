file(REMOVE_RECURSE
  "CMakeFiles/example_stability_probe.dir/stability_probe.cpp.o"
  "CMakeFiles/example_stability_probe.dir/stability_probe.cpp.o.d"
  "example_stability_probe"
  "example_stability_probe.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/example_stability_probe.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
