# Empty compiler generated dependencies file for example_stability_probe.
# This may be replaced when dependencies are built.
