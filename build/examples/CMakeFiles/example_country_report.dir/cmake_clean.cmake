file(REMOVE_RECURSE
  "CMakeFiles/example_country_report.dir/country_report.cpp.o"
  "CMakeFiles/example_country_report.dir/country_report.cpp.o.d"
  "example_country_report"
  "example_country_report.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/example_country_report.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
