# Empty dependencies file for example_country_report.
# This may be replaced when dependencies are built.
