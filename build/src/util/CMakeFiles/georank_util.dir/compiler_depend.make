# Empty compiler generated dependencies file for georank_util.
# This may be replaced when dependencies are built.
