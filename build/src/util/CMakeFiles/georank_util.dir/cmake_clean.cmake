file(REMOVE_RECURSE
  "CMakeFiles/georank_util.dir/rng.cpp.o"
  "CMakeFiles/georank_util.dir/rng.cpp.o.d"
  "CMakeFiles/georank_util.dir/stats.cpp.o"
  "CMakeFiles/georank_util.dir/stats.cpp.o.d"
  "CMakeFiles/georank_util.dir/strings.cpp.o"
  "CMakeFiles/georank_util.dir/strings.cpp.o.d"
  "CMakeFiles/georank_util.dir/table.cpp.o"
  "CMakeFiles/georank_util.dir/table.cpp.o.d"
  "libgeorank_util.a"
  "libgeorank_util.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/georank_util.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
