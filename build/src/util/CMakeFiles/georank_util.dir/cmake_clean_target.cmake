file(REMOVE_RECURSE
  "libgeorank_util.a"
)
