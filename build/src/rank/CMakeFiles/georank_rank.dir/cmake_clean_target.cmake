file(REMOVE_RECURSE
  "libgeorank_rank.a"
)
