file(REMOVE_RECURSE
  "CMakeFiles/georank_rank.dir/ahc.cpp.o"
  "CMakeFiles/georank_rank.dir/ahc.cpp.o.d"
  "CMakeFiles/georank_rank.dir/cti.cpp.o"
  "CMakeFiles/georank_rank.dir/cti.cpp.o.d"
  "CMakeFiles/georank_rank.dir/customer_cone.cpp.o"
  "CMakeFiles/georank_rank.dir/customer_cone.cpp.o.d"
  "CMakeFiles/georank_rank.dir/hegemony.cpp.o"
  "CMakeFiles/georank_rank.dir/hegemony.cpp.o.d"
  "libgeorank_rank.a"
  "libgeorank_rank.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/georank_rank.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
