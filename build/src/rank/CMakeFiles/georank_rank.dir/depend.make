# Empty dependencies file for georank_rank.
# This may be replaced when dependencies are built.
