
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/rank/ahc.cpp" "src/rank/CMakeFiles/georank_rank.dir/ahc.cpp.o" "gcc" "src/rank/CMakeFiles/georank_rank.dir/ahc.cpp.o.d"
  "/root/repo/src/rank/cti.cpp" "src/rank/CMakeFiles/georank_rank.dir/cti.cpp.o" "gcc" "src/rank/CMakeFiles/georank_rank.dir/cti.cpp.o.d"
  "/root/repo/src/rank/customer_cone.cpp" "src/rank/CMakeFiles/georank_rank.dir/customer_cone.cpp.o" "gcc" "src/rank/CMakeFiles/georank_rank.dir/customer_cone.cpp.o.d"
  "/root/repo/src/rank/hegemony.cpp" "src/rank/CMakeFiles/georank_rank.dir/hegemony.cpp.o" "gcc" "src/rank/CMakeFiles/georank_rank.dir/hegemony.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/sanitize/CMakeFiles/georank_sanitize.dir/DependInfo.cmake"
  "/root/repo/build/src/topo/CMakeFiles/georank_topo.dir/DependInfo.cmake"
  "/root/repo/build/src/geo/CMakeFiles/georank_geo.dir/DependInfo.cmake"
  "/root/repo/build/src/bgp/CMakeFiles/georank_bgp.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/georank_util.dir/DependInfo.cmake"
  "/root/repo/build/src/infer/CMakeFiles/georank_infer.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
