
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/bgp/as_path.cpp" "src/bgp/CMakeFiles/georank_bgp.dir/as_path.cpp.o" "gcc" "src/bgp/CMakeFiles/georank_bgp.dir/as_path.cpp.o.d"
  "/root/repo/src/bgp/mrt_text.cpp" "src/bgp/CMakeFiles/georank_bgp.dir/mrt_text.cpp.o" "gcc" "src/bgp/CMakeFiles/georank_bgp.dir/mrt_text.cpp.o.d"
  "/root/repo/src/bgp/prefix.cpp" "src/bgp/CMakeFiles/georank_bgp.dir/prefix.cpp.o" "gcc" "src/bgp/CMakeFiles/georank_bgp.dir/prefix.cpp.o.d"
  "/root/repo/src/bgp/prefix_trie.cpp" "src/bgp/CMakeFiles/georank_bgp.dir/prefix_trie.cpp.o" "gcc" "src/bgp/CMakeFiles/georank_bgp.dir/prefix_trie.cpp.o.d"
  "/root/repo/src/bgp/update_stream.cpp" "src/bgp/CMakeFiles/georank_bgp.dir/update_stream.cpp.o" "gcc" "src/bgp/CMakeFiles/georank_bgp.dir/update_stream.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/util/CMakeFiles/georank_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
