# Empty dependencies file for georank_bgp.
# This may be replaced when dependencies are built.
