file(REMOVE_RECURSE
  "libgeorank_bgp.a"
)
