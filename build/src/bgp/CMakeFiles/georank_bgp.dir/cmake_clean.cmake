file(REMOVE_RECURSE
  "CMakeFiles/georank_bgp.dir/as_path.cpp.o"
  "CMakeFiles/georank_bgp.dir/as_path.cpp.o.d"
  "CMakeFiles/georank_bgp.dir/mrt_text.cpp.o"
  "CMakeFiles/georank_bgp.dir/mrt_text.cpp.o.d"
  "CMakeFiles/georank_bgp.dir/prefix.cpp.o"
  "CMakeFiles/georank_bgp.dir/prefix.cpp.o.d"
  "CMakeFiles/georank_bgp.dir/prefix_trie.cpp.o"
  "CMakeFiles/georank_bgp.dir/prefix_trie.cpp.o.d"
  "CMakeFiles/georank_bgp.dir/update_stream.cpp.o"
  "CMakeFiles/georank_bgp.dir/update_stream.cpp.o.d"
  "libgeorank_bgp.a"
  "libgeorank_bgp.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/georank_bgp.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
