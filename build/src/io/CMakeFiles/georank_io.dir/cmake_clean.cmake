file(REMOVE_RECURSE
  "CMakeFiles/georank_io.dir/as_info_csv.cpp.o"
  "CMakeFiles/georank_io.dir/as_info_csv.cpp.o.d"
  "CMakeFiles/georank_io.dir/as_rel.cpp.o"
  "CMakeFiles/georank_io.dir/as_rel.cpp.o.d"
  "CMakeFiles/georank_io.dir/geo_csv.cpp.o"
  "CMakeFiles/georank_io.dir/geo_csv.cpp.o.d"
  "CMakeFiles/georank_io.dir/rankings_csv.cpp.o"
  "CMakeFiles/georank_io.dir/rankings_csv.cpp.o.d"
  "libgeorank_io.a"
  "libgeorank_io.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/georank_io.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
