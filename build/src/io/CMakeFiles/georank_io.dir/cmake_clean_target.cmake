file(REMOVE_RECURSE
  "libgeorank_io.a"
)
