# Empty compiler generated dependencies file for georank_io.
# This may be replaced when dependencies are built.
