
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/topo/as_graph.cpp" "src/topo/CMakeFiles/georank_topo.dir/as_graph.cpp.o" "gcc" "src/topo/CMakeFiles/georank_topo.dir/as_graph.cpp.o.d"
  "/root/repo/src/topo/failure_analysis.cpp" "src/topo/CMakeFiles/georank_topo.dir/failure_analysis.cpp.o" "gcc" "src/topo/CMakeFiles/georank_topo.dir/failure_analysis.cpp.o.d"
  "/root/repo/src/topo/route_propagation.cpp" "src/topo/CMakeFiles/georank_topo.dir/route_propagation.cpp.o" "gcc" "src/topo/CMakeFiles/georank_topo.dir/route_propagation.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/bgp/CMakeFiles/georank_bgp.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/georank_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
