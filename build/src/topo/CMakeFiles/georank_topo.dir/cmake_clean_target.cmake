file(REMOVE_RECURSE
  "libgeorank_topo.a"
)
