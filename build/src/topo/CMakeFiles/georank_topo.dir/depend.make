# Empty dependencies file for georank_topo.
# This may be replaced when dependencies are built.
