file(REMOVE_RECURSE
  "CMakeFiles/georank_topo.dir/as_graph.cpp.o"
  "CMakeFiles/georank_topo.dir/as_graph.cpp.o.d"
  "CMakeFiles/georank_topo.dir/failure_analysis.cpp.o"
  "CMakeFiles/georank_topo.dir/failure_analysis.cpp.o.d"
  "CMakeFiles/georank_topo.dir/route_propagation.cpp.o"
  "CMakeFiles/georank_topo.dir/route_propagation.cpp.o.d"
  "libgeorank_topo.a"
  "libgeorank_topo.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/georank_topo.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
