
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/geo/geo_db.cpp" "src/geo/CMakeFiles/georank_geo.dir/geo_db.cpp.o" "gcc" "src/geo/CMakeFiles/georank_geo.dir/geo_db.cpp.o.d"
  "/root/repo/src/geo/prefix_geolocator.cpp" "src/geo/CMakeFiles/georank_geo.dir/prefix_geolocator.cpp.o" "gcc" "src/geo/CMakeFiles/georank_geo.dir/prefix_geolocator.cpp.o.d"
  "/root/repo/src/geo/vp_geolocator.cpp" "src/geo/CMakeFiles/georank_geo.dir/vp_geolocator.cpp.o" "gcc" "src/geo/CMakeFiles/georank_geo.dir/vp_geolocator.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/bgp/CMakeFiles/georank_bgp.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/georank_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
