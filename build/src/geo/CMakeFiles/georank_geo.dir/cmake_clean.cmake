file(REMOVE_RECURSE
  "CMakeFiles/georank_geo.dir/geo_db.cpp.o"
  "CMakeFiles/georank_geo.dir/geo_db.cpp.o.d"
  "CMakeFiles/georank_geo.dir/prefix_geolocator.cpp.o"
  "CMakeFiles/georank_geo.dir/prefix_geolocator.cpp.o.d"
  "CMakeFiles/georank_geo.dir/vp_geolocator.cpp.o"
  "CMakeFiles/georank_geo.dir/vp_geolocator.cpp.o.d"
  "libgeorank_geo.a"
  "libgeorank_geo.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/georank_geo.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
