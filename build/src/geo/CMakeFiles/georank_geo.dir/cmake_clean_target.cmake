file(REMOVE_RECURSE
  "libgeorank_geo.a"
)
