# Empty dependencies file for georank_geo.
# This may be replaced when dependencies are built.
