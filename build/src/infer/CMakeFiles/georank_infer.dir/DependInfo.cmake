
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/infer/clique.cpp" "src/infer/CMakeFiles/georank_infer.dir/clique.cpp.o" "gcc" "src/infer/CMakeFiles/georank_infer.dir/clique.cpp.o.d"
  "/root/repo/src/infer/relationships.cpp" "src/infer/CMakeFiles/georank_infer.dir/relationships.cpp.o" "gcc" "src/infer/CMakeFiles/georank_infer.dir/relationships.cpp.o.d"
  "/root/repo/src/infer/transit_degree.cpp" "src/infer/CMakeFiles/georank_infer.dir/transit_degree.cpp.o" "gcc" "src/infer/CMakeFiles/georank_infer.dir/transit_degree.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/bgp/CMakeFiles/georank_bgp.dir/DependInfo.cmake"
  "/root/repo/build/src/topo/CMakeFiles/georank_topo.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/georank_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
