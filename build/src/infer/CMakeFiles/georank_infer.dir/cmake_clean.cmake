file(REMOVE_RECURSE
  "CMakeFiles/georank_infer.dir/clique.cpp.o"
  "CMakeFiles/georank_infer.dir/clique.cpp.o.d"
  "CMakeFiles/georank_infer.dir/relationships.cpp.o"
  "CMakeFiles/georank_infer.dir/relationships.cpp.o.d"
  "CMakeFiles/georank_infer.dir/transit_degree.cpp.o"
  "CMakeFiles/georank_infer.dir/transit_degree.cpp.o.d"
  "libgeorank_infer.a"
  "libgeorank_infer.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/georank_infer.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
