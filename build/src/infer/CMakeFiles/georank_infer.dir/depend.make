# Empty dependencies file for georank_infer.
# This may be replaced when dependencies are built.
