file(REMOVE_RECURSE
  "libgeorank_infer.a"
)
