
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/sanitize/asn_registry.cpp" "src/sanitize/CMakeFiles/georank_sanitize.dir/asn_registry.cpp.o" "gcc" "src/sanitize/CMakeFiles/georank_sanitize.dir/asn_registry.cpp.o.d"
  "/root/repo/src/sanitize/path_sanitizer.cpp" "src/sanitize/CMakeFiles/georank_sanitize.dir/path_sanitizer.cpp.o" "gcc" "src/sanitize/CMakeFiles/georank_sanitize.dir/path_sanitizer.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/bgp/CMakeFiles/georank_bgp.dir/DependInfo.cmake"
  "/root/repo/build/src/geo/CMakeFiles/georank_geo.dir/DependInfo.cmake"
  "/root/repo/build/src/infer/CMakeFiles/georank_infer.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/georank_util.dir/DependInfo.cmake"
  "/root/repo/build/src/topo/CMakeFiles/georank_topo.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
