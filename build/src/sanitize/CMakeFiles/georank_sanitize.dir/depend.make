# Empty dependencies file for georank_sanitize.
# This may be replaced when dependencies are built.
