file(REMOVE_RECURSE
  "CMakeFiles/georank_sanitize.dir/asn_registry.cpp.o"
  "CMakeFiles/georank_sanitize.dir/asn_registry.cpp.o.d"
  "CMakeFiles/georank_sanitize.dir/path_sanitizer.cpp.o"
  "CMakeFiles/georank_sanitize.dir/path_sanitizer.cpp.o.d"
  "libgeorank_sanitize.a"
  "libgeorank_sanitize.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/georank_sanitize.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
