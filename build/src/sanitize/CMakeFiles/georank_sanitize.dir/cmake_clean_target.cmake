file(REMOVE_RECURSE
  "libgeorank_sanitize.a"
)
