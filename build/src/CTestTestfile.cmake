# CMake generated Testfile for 
# Source directory: /root/repo/src
# Build directory: /root/repo/build/src
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
subdirs("util")
subdirs("bgp")
subdirs("topo")
subdirs("geo")
subdirs("infer")
subdirs("sanitize")
subdirs("rank")
subdirs("core")
subdirs("io")
subdirs("gen")
