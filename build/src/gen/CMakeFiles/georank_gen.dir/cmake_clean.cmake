file(REMOVE_RECURSE
  "CMakeFiles/georank_gen.dir/internet_generator.cpp.o"
  "CMakeFiles/georank_gen.dir/internet_generator.cpp.o.d"
  "CMakeFiles/georank_gen.dir/rib_generator.cpp.o"
  "CMakeFiles/georank_gen.dir/rib_generator.cpp.o.d"
  "CMakeFiles/georank_gen.dir/scenarios.cpp.o"
  "CMakeFiles/georank_gen.dir/scenarios.cpp.o.d"
  "libgeorank_gen.a"
  "libgeorank_gen.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/georank_gen.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
