file(REMOVE_RECURSE
  "libgeorank_gen.a"
)
