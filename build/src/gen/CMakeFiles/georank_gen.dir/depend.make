# Empty dependencies file for georank_gen.
# This may be replaced when dependencies are built.
