
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/gen/internet_generator.cpp" "src/gen/CMakeFiles/georank_gen.dir/internet_generator.cpp.o" "gcc" "src/gen/CMakeFiles/georank_gen.dir/internet_generator.cpp.o.d"
  "/root/repo/src/gen/rib_generator.cpp" "src/gen/CMakeFiles/georank_gen.dir/rib_generator.cpp.o" "gcc" "src/gen/CMakeFiles/georank_gen.dir/rib_generator.cpp.o.d"
  "/root/repo/src/gen/scenarios.cpp" "src/gen/CMakeFiles/georank_gen.dir/scenarios.cpp.o" "gcc" "src/gen/CMakeFiles/georank_gen.dir/scenarios.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/topo/CMakeFiles/georank_topo.dir/DependInfo.cmake"
  "/root/repo/build/src/geo/CMakeFiles/georank_geo.dir/DependInfo.cmake"
  "/root/repo/build/src/sanitize/CMakeFiles/georank_sanitize.dir/DependInfo.cmake"
  "/root/repo/build/src/rank/CMakeFiles/georank_rank.dir/DependInfo.cmake"
  "/root/repo/build/src/bgp/CMakeFiles/georank_bgp.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/georank_util.dir/DependInfo.cmake"
  "/root/repo/build/src/infer/CMakeFiles/georank_infer.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
