file(REMOVE_RECURSE
  "CMakeFiles/georank_core.dir/country_rankings.cpp.o"
  "CMakeFiles/georank_core.dir/country_rankings.cpp.o.d"
  "CMakeFiles/georank_core.dir/diversity.cpp.o"
  "CMakeFiles/georank_core.dir/diversity.cpp.o.d"
  "CMakeFiles/georank_core.dir/ndcg.cpp.o"
  "CMakeFiles/georank_core.dir/ndcg.cpp.o.d"
  "CMakeFiles/georank_core.dir/pipeline.cpp.o"
  "CMakeFiles/georank_core.dir/pipeline.cpp.o.d"
  "CMakeFiles/georank_core.dir/rank_delta.cpp.o"
  "CMakeFiles/georank_core.dir/rank_delta.cpp.o.d"
  "CMakeFiles/georank_core.dir/report.cpp.o"
  "CMakeFiles/georank_core.dir/report.cpp.o.d"
  "CMakeFiles/georank_core.dir/stability.cpp.o"
  "CMakeFiles/georank_core.dir/stability.cpp.o.d"
  "CMakeFiles/georank_core.dir/timeline.cpp.o"
  "CMakeFiles/georank_core.dir/timeline.cpp.o.d"
  "CMakeFiles/georank_core.dir/views.cpp.o"
  "CMakeFiles/georank_core.dir/views.cpp.o.d"
  "CMakeFiles/georank_core.dir/vp_bias.cpp.o"
  "CMakeFiles/georank_core.dir/vp_bias.cpp.o.d"
  "libgeorank_core.a"
  "libgeorank_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/georank_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
