file(REMOVE_RECURSE
  "libgeorank_core.a"
)
