
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/core/country_rankings.cpp" "src/core/CMakeFiles/georank_core.dir/country_rankings.cpp.o" "gcc" "src/core/CMakeFiles/georank_core.dir/country_rankings.cpp.o.d"
  "/root/repo/src/core/diversity.cpp" "src/core/CMakeFiles/georank_core.dir/diversity.cpp.o" "gcc" "src/core/CMakeFiles/georank_core.dir/diversity.cpp.o.d"
  "/root/repo/src/core/ndcg.cpp" "src/core/CMakeFiles/georank_core.dir/ndcg.cpp.o" "gcc" "src/core/CMakeFiles/georank_core.dir/ndcg.cpp.o.d"
  "/root/repo/src/core/pipeline.cpp" "src/core/CMakeFiles/georank_core.dir/pipeline.cpp.o" "gcc" "src/core/CMakeFiles/georank_core.dir/pipeline.cpp.o.d"
  "/root/repo/src/core/rank_delta.cpp" "src/core/CMakeFiles/georank_core.dir/rank_delta.cpp.o" "gcc" "src/core/CMakeFiles/georank_core.dir/rank_delta.cpp.o.d"
  "/root/repo/src/core/report.cpp" "src/core/CMakeFiles/georank_core.dir/report.cpp.o" "gcc" "src/core/CMakeFiles/georank_core.dir/report.cpp.o.d"
  "/root/repo/src/core/stability.cpp" "src/core/CMakeFiles/georank_core.dir/stability.cpp.o" "gcc" "src/core/CMakeFiles/georank_core.dir/stability.cpp.o.d"
  "/root/repo/src/core/timeline.cpp" "src/core/CMakeFiles/georank_core.dir/timeline.cpp.o" "gcc" "src/core/CMakeFiles/georank_core.dir/timeline.cpp.o.d"
  "/root/repo/src/core/views.cpp" "src/core/CMakeFiles/georank_core.dir/views.cpp.o" "gcc" "src/core/CMakeFiles/georank_core.dir/views.cpp.o.d"
  "/root/repo/src/core/vp_bias.cpp" "src/core/CMakeFiles/georank_core.dir/vp_bias.cpp.o" "gcc" "src/core/CMakeFiles/georank_core.dir/vp_bias.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/rank/CMakeFiles/georank_rank.dir/DependInfo.cmake"
  "/root/repo/build/src/sanitize/CMakeFiles/georank_sanitize.dir/DependInfo.cmake"
  "/root/repo/build/src/geo/CMakeFiles/georank_geo.dir/DependInfo.cmake"
  "/root/repo/build/src/topo/CMakeFiles/georank_topo.dir/DependInfo.cmake"
  "/root/repo/build/src/bgp/CMakeFiles/georank_bgp.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/georank_util.dir/DependInfo.cmake"
  "/root/repo/build/src/infer/CMakeFiles/georank_infer.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
