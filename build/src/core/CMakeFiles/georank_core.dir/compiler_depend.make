# Empty compiler generated dependencies file for georank_core.
# This may be replaced when dependencies are built.
