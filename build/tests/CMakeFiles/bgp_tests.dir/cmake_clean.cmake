file(REMOVE_RECURSE
  "CMakeFiles/bgp_tests.dir/bgp/aggregate_test.cpp.o"
  "CMakeFiles/bgp_tests.dir/bgp/aggregate_test.cpp.o.d"
  "CMakeFiles/bgp_tests.dir/bgp/as_path_test.cpp.o"
  "CMakeFiles/bgp_tests.dir/bgp/as_path_test.cpp.o.d"
  "CMakeFiles/bgp_tests.dir/bgp/mrt_text_test.cpp.o"
  "CMakeFiles/bgp_tests.dir/bgp/mrt_text_test.cpp.o.d"
  "CMakeFiles/bgp_tests.dir/bgp/prefix_test.cpp.o"
  "CMakeFiles/bgp_tests.dir/bgp/prefix_test.cpp.o.d"
  "CMakeFiles/bgp_tests.dir/bgp/prefix_trie_test.cpp.o"
  "CMakeFiles/bgp_tests.dir/bgp/prefix_trie_test.cpp.o.d"
  "CMakeFiles/bgp_tests.dir/bgp/update_stream_test.cpp.o"
  "CMakeFiles/bgp_tests.dir/bgp/update_stream_test.cpp.o.d"
  "bgp_tests"
  "bgp_tests.pdb"
  "bgp_tests[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bgp_tests.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
