# Empty compiler generated dependencies file for bgp_tests.
# This may be replaced when dependencies are built.
