file(REMOVE_RECURSE
  "CMakeFiles/infer_tests.dir/infer/clique_test.cpp.o"
  "CMakeFiles/infer_tests.dir/infer/clique_test.cpp.o.d"
  "CMakeFiles/infer_tests.dir/infer/relationships_test.cpp.o"
  "CMakeFiles/infer_tests.dir/infer/relationships_test.cpp.o.d"
  "CMakeFiles/infer_tests.dir/infer/transit_degree_test.cpp.o"
  "CMakeFiles/infer_tests.dir/infer/transit_degree_test.cpp.o.d"
  "infer_tests"
  "infer_tests.pdb"
  "infer_tests[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/infer_tests.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
