# Empty dependencies file for infer_tests.
# This may be replaced when dependencies are built.
