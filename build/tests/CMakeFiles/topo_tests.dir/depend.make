# Empty dependencies file for topo_tests.
# This may be replaced when dependencies are built.
