file(REMOVE_RECURSE
  "CMakeFiles/topo_tests.dir/topo/as_graph_test.cpp.o"
  "CMakeFiles/topo_tests.dir/topo/as_graph_test.cpp.o.d"
  "CMakeFiles/topo_tests.dir/topo/failure_analysis_test.cpp.o"
  "CMakeFiles/topo_tests.dir/topo/failure_analysis_test.cpp.o.d"
  "CMakeFiles/topo_tests.dir/topo/partial_transit_test.cpp.o"
  "CMakeFiles/topo_tests.dir/topo/partial_transit_test.cpp.o.d"
  "CMakeFiles/topo_tests.dir/topo/propagation_test.cpp.o"
  "CMakeFiles/topo_tests.dir/topo/propagation_test.cpp.o.d"
  "topo_tests"
  "topo_tests.pdb"
  "topo_tests[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/topo_tests.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
