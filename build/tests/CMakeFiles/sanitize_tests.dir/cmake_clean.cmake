file(REMOVE_RECURSE
  "CMakeFiles/sanitize_tests.dir/sanitize/asn_registry_test.cpp.o"
  "CMakeFiles/sanitize_tests.dir/sanitize/asn_registry_test.cpp.o.d"
  "CMakeFiles/sanitize_tests.dir/sanitize/path_sanitizer_test.cpp.o"
  "CMakeFiles/sanitize_tests.dir/sanitize/path_sanitizer_test.cpp.o.d"
  "sanitize_tests"
  "sanitize_tests.pdb"
  "sanitize_tests[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sanitize_tests.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
