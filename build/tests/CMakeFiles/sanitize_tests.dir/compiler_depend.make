# Empty compiler generated dependencies file for sanitize_tests.
# This may be replaced when dependencies are built.
