# Empty dependencies file for rank_tests.
# This may be replaced when dependencies are built.
