file(REMOVE_RECURSE
  "CMakeFiles/rank_tests.dir/rank/ahc_test.cpp.o"
  "CMakeFiles/rank_tests.dir/rank/ahc_test.cpp.o.d"
  "CMakeFiles/rank_tests.dir/rank/cti_test.cpp.o"
  "CMakeFiles/rank_tests.dir/rank/cti_test.cpp.o.d"
  "CMakeFiles/rank_tests.dir/rank/customer_cone_test.cpp.o"
  "CMakeFiles/rank_tests.dir/rank/customer_cone_test.cpp.o.d"
  "CMakeFiles/rank_tests.dir/rank/extensions_test.cpp.o"
  "CMakeFiles/rank_tests.dir/rank/extensions_test.cpp.o.d"
  "CMakeFiles/rank_tests.dir/rank/figures_test.cpp.o"
  "CMakeFiles/rank_tests.dir/rank/figures_test.cpp.o.d"
  "CMakeFiles/rank_tests.dir/rank/hegemony_test.cpp.o"
  "CMakeFiles/rank_tests.dir/rank/hegemony_test.cpp.o.d"
  "CMakeFiles/rank_tests.dir/rank/ranking_test.cpp.o"
  "CMakeFiles/rank_tests.dir/rank/ranking_test.cpp.o.d"
  "rank_tests"
  "rank_tests.pdb"
  "rank_tests[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rank_tests.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
