
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/core/country_rankings_test.cpp" "tests/CMakeFiles/core_tests.dir/core/country_rankings_test.cpp.o" "gcc" "tests/CMakeFiles/core_tests.dir/core/country_rankings_test.cpp.o.d"
  "/root/repo/tests/core/diversity_test.cpp" "tests/CMakeFiles/core_tests.dir/core/diversity_test.cpp.o" "gcc" "tests/CMakeFiles/core_tests.dir/core/diversity_test.cpp.o.d"
  "/root/repo/tests/core/ndcg_test.cpp" "tests/CMakeFiles/core_tests.dir/core/ndcg_test.cpp.o" "gcc" "tests/CMakeFiles/core_tests.dir/core/ndcg_test.cpp.o.d"
  "/root/repo/tests/core/outbound_test.cpp" "tests/CMakeFiles/core_tests.dir/core/outbound_test.cpp.o" "gcc" "tests/CMakeFiles/core_tests.dir/core/outbound_test.cpp.o.d"
  "/root/repo/tests/core/pipeline_test.cpp" "tests/CMakeFiles/core_tests.dir/core/pipeline_test.cpp.o" "gcc" "tests/CMakeFiles/core_tests.dir/core/pipeline_test.cpp.o.d"
  "/root/repo/tests/core/rank_delta_test.cpp" "tests/CMakeFiles/core_tests.dir/core/rank_delta_test.cpp.o" "gcc" "tests/CMakeFiles/core_tests.dir/core/rank_delta_test.cpp.o.d"
  "/root/repo/tests/core/report_test.cpp" "tests/CMakeFiles/core_tests.dir/core/report_test.cpp.o" "gcc" "tests/CMakeFiles/core_tests.dir/core/report_test.cpp.o.d"
  "/root/repo/tests/core/stability_test.cpp" "tests/CMakeFiles/core_tests.dir/core/stability_test.cpp.o" "gcc" "tests/CMakeFiles/core_tests.dir/core/stability_test.cpp.o.d"
  "/root/repo/tests/core/timeline_test.cpp" "tests/CMakeFiles/core_tests.dir/core/timeline_test.cpp.o" "gcc" "tests/CMakeFiles/core_tests.dir/core/timeline_test.cpp.o.d"
  "/root/repo/tests/core/views_test.cpp" "tests/CMakeFiles/core_tests.dir/core/views_test.cpp.o" "gcc" "tests/CMakeFiles/core_tests.dir/core/views_test.cpp.o.d"
  "/root/repo/tests/core/vp_bias_test.cpp" "tests/CMakeFiles/core_tests.dir/core/vp_bias_test.cpp.o" "gcc" "tests/CMakeFiles/core_tests.dir/core/vp_bias_test.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/io/CMakeFiles/georank_io.dir/DependInfo.cmake"
  "/root/repo/build/src/core/CMakeFiles/georank_core.dir/DependInfo.cmake"
  "/root/repo/build/src/gen/CMakeFiles/georank_gen.dir/DependInfo.cmake"
  "/root/repo/build/src/rank/CMakeFiles/georank_rank.dir/DependInfo.cmake"
  "/root/repo/build/src/sanitize/CMakeFiles/georank_sanitize.dir/DependInfo.cmake"
  "/root/repo/build/src/infer/CMakeFiles/georank_infer.dir/DependInfo.cmake"
  "/root/repo/build/src/geo/CMakeFiles/georank_geo.dir/DependInfo.cmake"
  "/root/repo/build/src/topo/CMakeFiles/georank_topo.dir/DependInfo.cmake"
  "/root/repo/build/src/bgp/CMakeFiles/georank_bgp.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/georank_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
