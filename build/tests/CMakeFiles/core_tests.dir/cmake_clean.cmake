file(REMOVE_RECURSE
  "CMakeFiles/core_tests.dir/core/country_rankings_test.cpp.o"
  "CMakeFiles/core_tests.dir/core/country_rankings_test.cpp.o.d"
  "CMakeFiles/core_tests.dir/core/diversity_test.cpp.o"
  "CMakeFiles/core_tests.dir/core/diversity_test.cpp.o.d"
  "CMakeFiles/core_tests.dir/core/ndcg_test.cpp.o"
  "CMakeFiles/core_tests.dir/core/ndcg_test.cpp.o.d"
  "CMakeFiles/core_tests.dir/core/outbound_test.cpp.o"
  "CMakeFiles/core_tests.dir/core/outbound_test.cpp.o.d"
  "CMakeFiles/core_tests.dir/core/pipeline_test.cpp.o"
  "CMakeFiles/core_tests.dir/core/pipeline_test.cpp.o.d"
  "CMakeFiles/core_tests.dir/core/rank_delta_test.cpp.o"
  "CMakeFiles/core_tests.dir/core/rank_delta_test.cpp.o.d"
  "CMakeFiles/core_tests.dir/core/report_test.cpp.o"
  "CMakeFiles/core_tests.dir/core/report_test.cpp.o.d"
  "CMakeFiles/core_tests.dir/core/stability_test.cpp.o"
  "CMakeFiles/core_tests.dir/core/stability_test.cpp.o.d"
  "CMakeFiles/core_tests.dir/core/timeline_test.cpp.o"
  "CMakeFiles/core_tests.dir/core/timeline_test.cpp.o.d"
  "CMakeFiles/core_tests.dir/core/views_test.cpp.o"
  "CMakeFiles/core_tests.dir/core/views_test.cpp.o.d"
  "CMakeFiles/core_tests.dir/core/vp_bias_test.cpp.o"
  "CMakeFiles/core_tests.dir/core/vp_bias_test.cpp.o.d"
  "core_tests"
  "core_tests.pdb"
  "core_tests[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/core_tests.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
