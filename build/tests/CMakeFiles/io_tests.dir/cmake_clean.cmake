file(REMOVE_RECURSE
  "CMakeFiles/io_tests.dir/io/as_info_csv_test.cpp.o"
  "CMakeFiles/io_tests.dir/io/as_info_csv_test.cpp.o.d"
  "CMakeFiles/io_tests.dir/io/as_rel_test.cpp.o"
  "CMakeFiles/io_tests.dir/io/as_rel_test.cpp.o.d"
  "CMakeFiles/io_tests.dir/io/fuzz_test.cpp.o"
  "CMakeFiles/io_tests.dir/io/fuzz_test.cpp.o.d"
  "CMakeFiles/io_tests.dir/io/geo_csv_test.cpp.o"
  "CMakeFiles/io_tests.dir/io/geo_csv_test.cpp.o.d"
  "CMakeFiles/io_tests.dir/io/rankings_csv_test.cpp.o"
  "CMakeFiles/io_tests.dir/io/rankings_csv_test.cpp.o.d"
  "io_tests"
  "io_tests.pdb"
  "io_tests[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/io_tests.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
