# Empty compiler generated dependencies file for io_tests.
# This may be replaced when dependencies are built.
