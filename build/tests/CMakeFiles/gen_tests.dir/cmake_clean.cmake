file(REMOVE_RECURSE
  "CMakeFiles/gen_tests.dir/gen/generator_test.cpp.o"
  "CMakeFiles/gen_tests.dir/gen/generator_test.cpp.o.d"
  "CMakeFiles/gen_tests.dir/gen/rib_generator_test.cpp.o"
  "CMakeFiles/gen_tests.dir/gen/rib_generator_test.cpp.o.d"
  "CMakeFiles/gen_tests.dir/gen/scenarios_test.cpp.o"
  "CMakeFiles/gen_tests.dir/gen/scenarios_test.cpp.o.d"
  "CMakeFiles/gen_tests.dir/gen/world_properties_test.cpp.o"
  "CMakeFiles/gen_tests.dir/gen/world_properties_test.cpp.o.d"
  "gen_tests"
  "gen_tests.pdb"
  "gen_tests[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/gen_tests.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
