# Empty compiler generated dependencies file for gen_tests.
# This may be replaced when dependencies are built.
