file(REMOVE_RECURSE
  "CMakeFiles/geo_tests.dir/geo/country_test.cpp.o"
  "CMakeFiles/geo_tests.dir/geo/country_test.cpp.o.d"
  "CMakeFiles/geo_tests.dir/geo/geo_db_test.cpp.o"
  "CMakeFiles/geo_tests.dir/geo/geo_db_test.cpp.o.d"
  "CMakeFiles/geo_tests.dir/geo/prefix_geolocator_test.cpp.o"
  "CMakeFiles/geo_tests.dir/geo/prefix_geolocator_test.cpp.o.d"
  "CMakeFiles/geo_tests.dir/geo/vp_geolocator_test.cpp.o"
  "CMakeFiles/geo_tests.dir/geo/vp_geolocator_test.cpp.o.d"
  "geo_tests"
  "geo_tests.pdb"
  "geo_tests[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/geo_tests.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
