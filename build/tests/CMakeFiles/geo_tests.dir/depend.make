# Empty dependencies file for geo_tests.
# This may be replaced when dependencies are built.
