# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/util_tests[1]_include.cmake")
include("/root/repo/build/tests/bgp_tests[1]_include.cmake")
include("/root/repo/build/tests/topo_tests[1]_include.cmake")
include("/root/repo/build/tests/geo_tests[1]_include.cmake")
include("/root/repo/build/tests/infer_tests[1]_include.cmake")
include("/root/repo/build/tests/sanitize_tests[1]_include.cmake")
include("/root/repo/build/tests/rank_tests[1]_include.cmake")
include("/root/repo/build/tests/core_tests[1]_include.cmake")
include("/root/repo/build/tests/io_tests[1]_include.cmake")
include("/root/repo/build/tests/gen_tests[1]_include.cmake")
add_test(integration_tests "/root/repo/build/tests/integration_tests")
set_tests_properties(integration_tests PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;91;add_test;/root/repo/tests/CMakeLists.txt;0;")
