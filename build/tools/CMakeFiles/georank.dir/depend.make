# Empty dependencies file for georank.
# This may be replaced when dependencies are built.
