file(REMOVE_RECURSE
  "CMakeFiles/georank.dir/georank_cli.cpp.o"
  "CMakeFiles/georank.dir/georank_cli.cpp.o.d"
  "georank"
  "georank.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/georank.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
