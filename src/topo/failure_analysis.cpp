#include "topo/failure_analysis.hpp"

#include <algorithm>

namespace georank::topo {

namespace {

std::uint64_t prefix_salt(const bgp::Prefix& p) noexcept {
  std::uint64_t x = (static_cast<std::uint64_t>(p.address()) << 8) | p.length();
  x *= 0x9e3779b97f4a7c15ull;
  x ^= x >> 32;
  return x | 1;
}

}  // namespace

FailureAnalyzer::FailureAnalyzer(const AsGraph& graph,
                                 std::vector<PrefixOrigin> targets,
                                 std::vector<Asn> observers)
    : graph_(&graph), targets_(std::move(targets)) {
  for (PrefixOrigin& t : targets_) {
    if (t.weight == 0) t.weight = t.prefix.size();
  }
  observer_ids_.reserve(observers.size());
  for (Asn asn : observers) observer_ids_.push_back(graph.id_of(asn));
}

FailureImpact FailureAnalyzer::assess(Asn failed) const {
  FailureImpact impact;
  impact.failed = failed;
  NodeId failed_id = graph_->contains(failed) ? graph_->id_of(failed) : kNoNode;

  RoutePropagator propagator{*graph_};
  for (const PrefixOrigin& target : targets_) {
    if (!graph_->contains(target.origin)) continue;
    std::uint64_t salt = prefix_salt(target.prefix);
    RoutingTable before = propagator.compute(target.origin, salt);
    RoutingTable after = propagator.compute(target.origin, salt, failed_id);

    // Only targets some observer could reach BEFORE the failure are
    // assessed — permanently dark space says nothing about the failure.
    bool was_reachable = false;
    bool any_reachable = false;
    bool any_rerouted = false;
    for (NodeId observer : observer_ids_) {
      if (observer == failed_id) continue;  // the failed AS observes nothing
      if (!before.reachable(observer)) continue;
      was_reachable = true;
      if (after.reachable(observer)) {
        any_reachable = true;
        if (before.path_from(observer) != after.path_from(observer)) {
          any_rerouted = true;
        }
      } else {
        any_rerouted = true;  // lost entirely at this observer
      }
    }
    if (!was_reachable) continue;
    impact.total += target.weight;
    if (!any_reachable) {
      impact.unreachable += target.weight;
    } else if (any_rerouted) {
      impact.rerouted += target.weight;
    }
  }
  return impact;
}

std::vector<FailureImpact> FailureAnalyzer::rank_candidates(
    std::span<const Asn> candidates) const {
  std::vector<FailureImpact> out;
  out.reserve(candidates.size());
  for (Asn asn : candidates) out.push_back(assess(asn));
  std::sort(out.begin(), out.end(), [](const FailureImpact& a, const FailureImpact& b) {
    if (a.unreachable != b.unreachable) return a.unreachable > b.unreachable;
    if (a.rerouted != b.rerouted) return a.rerouted > b.rerouted;
    return a.failed < b.failed;
  });
  return out;
}

}  // namespace georank::topo
