#include "topo/as_graph.hpp"

#include <algorithm>
#include <optional>

namespace georank::topo {

NodeId AsGraph::add_as(Asn asn) {
  if (asn == bgp::kInvalidAsn) {
    throw std::invalid_argument{"AS 0 is not a valid AS number"};
  }
  auto [it, inserted] = index_.try_emplace(asn, static_cast<NodeId>(asns_.size()));
  if (inserted) {
    asns_.push_back(asn);
    adj_.emplace_back();
  }
  return it->second;
}

NodeId AsGraph::id_of(Asn asn) const {
  auto it = index_.find(asn);
  if (it == index_.end()) {
    throw std::out_of_range{"unknown AS " + std::to_string(asn)};
  }
  return it->second;
}

void AsGraph::add_edge(Asn a, Asn b, Rel rel_of_a, double export_fraction) {
  if (a == b) throw std::invalid_argument{"self relationship for AS " + std::to_string(a)};
  if (export_fraction <= 0.0 || export_fraction > 1.0) {
    throw std::invalid_argument{"export fraction must be in (0,1]"};
  }
  NodeId ia = add_as(a);
  NodeId ib = add_as(b);
  for (const Neighbor& n : adj_[ia]) {
    if (n.id == ib) {
      throw std::invalid_argument{"relationship already exists between AS " +
                                  std::to_string(a) + " and AS " + std::to_string(b)};
    }
  }
  auto fraction = static_cast<float>(export_fraction);
  adj_[ia].push_back(Neighbor{ib, rel_of_a, fraction});
  adj_[ib].push_back(Neighbor{ia, inverse(rel_of_a), fraction});
  ++edge_count_;
}

void AsGraph::add_p2c(Asn provider, Asn customer, double export_fraction) {
  add_edge(provider, customer, Rel::kCustomer, export_fraction);
}

void AsGraph::add_p2p(Asn a, Asn b) { add_edge(a, b, Rel::kPeer, 1.0); }

double AsGraph::export_fraction(Asn a, Asn b) const {
  if (!contains(a) || !contains(b)) return 1.0;
  NodeId ia = id_of(a), ib = id_of(b);
  for (const Neighbor& n : adj_[ia]) {
    if (n.id == ib) return n.export_up;
  }
  return 1.0;
}

bool AsGraph::remove_edge(Asn a, Asn b) {
  if (!contains(a) || !contains(b)) return false;
  NodeId ia = id_of(a), ib = id_of(b);
  auto erase_from = [&](NodeId from, NodeId target) {
    auto& vec = adj_[from];
    auto it = std::find_if(vec.begin(), vec.end(),
                           [&](const Neighbor& n) { return n.id == target; });
    if (it == vec.end()) return false;
    vec.erase(it);
    return true;
  };
  bool removed = erase_from(ia, ib);
  if (removed) {
    erase_from(ib, ia);
    --edge_count_;
  }
  return removed;
}

std::optional<Rel> AsGraph::relationship(Asn a, Asn b) const {
  if (!contains(a) || !contains(b)) return std::nullopt;
  NodeId ia = id_of(a), ib = id_of(b);
  for (const Neighbor& n : adj_[ia]) {
    if (n.id == ib) return n.rel;
  }
  return std::nullopt;
}

namespace {

std::vector<Asn> filtered_neighbors(const AsGraph& g, Asn asn, Rel want) {
  std::vector<Asn> out;
  for (const Neighbor& n : g.neighbors(g.id_of(asn))) {
    if (n.rel == want) out.push_back(g.asn_of(n.id));
  }
  std::sort(out.begin(), out.end());
  return out;
}

}  // namespace

std::vector<Asn> AsGraph::customers_of(Asn asn) const {
  return filtered_neighbors(*this, asn, Rel::kCustomer);
}
std::vector<Asn> AsGraph::providers_of(Asn asn) const {
  return filtered_neighbors(*this, asn, Rel::kProvider);
}
std::vector<Asn> AsGraph::peers_of(Asn asn) const {
  return filtered_neighbors(*this, asn, Rel::kPeer);
}

}  // namespace georank::topo
