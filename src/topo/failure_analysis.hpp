// What-if resilience analysis over the ground-truth topology.
//
// The paper (§7) notes that public BGP data "cannot reliably support
// resilience assessments" because backup paths only appear after primary
// paths fail. Our substrate is a routing SIMULATOR, so the counterfactual
// is computable: withdraw one AS entirely and re-propagate. For a set of
// (prefix, origin) pairs this yields, per candidate AS:
//
//   * how many addresses become UNREACHABLE from a set of observer ASes
//     (hard dependence — no backup path exists at all), and
//   * how many addresses have to SHIFT to a different first-hop path
//     (soft dependence — reachable, but rerouted).
//
// Ranking ASes by hard dependence is the "which AS is a single point of
// failure for country X" question the country metrics approximate.
#pragma once

#include <span>
#include <vector>

#include "bgp/prefix.hpp"
#include "topo/as_graph.hpp"
#include "topo/route_propagation.hpp"

namespace georank::topo {

struct PrefixOrigin {
  bgp::Prefix prefix;
  Asn origin = 0;
  /// Address weight (effective size); defaults to the prefix size.
  std::uint64_t weight = 0;
};

struct FailureImpact {
  Asn failed = 0;
  /// Addresses (weight) no observer can reach any more.
  std::uint64_t unreachable = 0;
  /// Addresses still reachable but over a different path for at least
  /// one observer.
  std::uint64_t rerouted = 0;
  /// Total assessed weight (denominator for shares).
  std::uint64_t total = 0;

  [[nodiscard]] double unreachable_share() const noexcept {
    return total ? static_cast<double>(unreachable) / static_cast<double>(total)
                 : 0.0;
  }
  [[nodiscard]] double rerouted_share() const noexcept {
    return total ? static_cast<double>(rerouted) / static_cast<double>(total)
                 : 0.0;
  }
};

class FailureAnalyzer {
 public:
  /// `targets`: the address space under assessment (e.g. one country's
  /// originations). `observers`: ASes whose reachability matters (e.g.
  /// the tier-1 clique, or the VP ASes).
  FailureAnalyzer(const AsGraph& graph, std::vector<PrefixOrigin> targets,
                  std::vector<Asn> observers);

  /// Impact of withdrawing a single AS.
  [[nodiscard]] FailureImpact assess(Asn failed) const;

  /// Impacts of every candidate, sorted by descending unreachable share
  /// (ties: rerouted share).
  [[nodiscard]] std::vector<FailureImpact> rank_candidates(
      std::span<const Asn> candidates) const;

 private:
  const AsGraph* graph_;
  std::vector<PrefixOrigin> targets_;
  std::vector<NodeId> observer_ids_;
};

}  // namespace georank::topo
