// AS-level topology with business relationships.
//
// Two relationship kinds, following Gao / Luckie et al.:
//   provider -> customer (p2c): the customer pays the provider for transit;
//   peer <-> peer        (p2p): settlement-free exchange of customer routes.
//
// The graph is the ground truth the generator produces; the inference
// module recovers relationships from paths, and tests compare the two.
#pragma once

#include <cstdint>
#include <optional>
#include <span>
#include <stdexcept>
#include <unordered_map>
#include <vector>

#include "bgp/as_path.hpp"

namespace georank::topo {

using bgp::Asn;

/// Dense node index into the graph's arrays.
using NodeId = std::uint32_t;
inline constexpr NodeId kNoNode = 0xffffffffu;

/// Relationship of a neighbor FROM THE PERSPECTIVE of the owning node.
enum class Rel : std::uint8_t {
  kCustomer,  // neighbor is my customer (I provide transit to it)
  kProvider,  // neighbor is my provider (I buy transit from it)
  kPeer,      // settlement-free peer
};

[[nodiscard]] constexpr Rel inverse(Rel rel) noexcept {
  switch (rel) {
    case Rel::kCustomer: return Rel::kProvider;
    case Rel::kProvider: return Rel::kCustomer;
    case Rel::kPeer: return Rel::kPeer;
  }
  return Rel::kPeer;
}

struct Neighbor {
  NodeId id = kNoNode;
  Rel rel = Rel::kPeer;
  /// For p2c edges: fraction of its prefixes the CUSTOMER announces
  /// upward through this link. < 1 models "complex" partial-transit
  /// relationships (Giotsas et al. 2014), which the paper highlights as
  /// the reason customer cones inflate relative to observed paths (§1.1).
  float export_up = 1.0f;
};

class AsGraph {
 public:
  /// Registers an AS if new; returns its node id either way.
  NodeId add_as(Asn asn);

  /// Adds provider->customer. Throws std::invalid_argument on self-edges
  /// or if any relationship already exists between the pair.
  /// `export_fraction` in (0,1] is the share of the customer's prefixes
  /// announced through this link (1 = ordinary full transit).
  void add_p2c(Asn provider, Asn customer, double export_fraction = 1.0);
  /// Adds peer<->peer with the same validity rules.
  void add_p2p(Asn a, Asn b);

  /// Export fraction of the p2c edge between the pair (1.0 for peers or
  /// absent edges).
  [[nodiscard]] double export_fraction(Asn a, Asn b) const;

  /// Removes any relationship between the pair; returns true if one existed.
  bool remove_edge(Asn a, Asn b);

  [[nodiscard]] bool contains(Asn asn) const noexcept {
    return index_.contains(asn);
  }
  [[nodiscard]] NodeId id_of(Asn asn) const;
  [[nodiscard]] Asn asn_of(NodeId id) const { return asns_.at(id); }
  [[nodiscard]] std::size_t size() const noexcept { return asns_.size(); }
  [[nodiscard]] std::size_t edge_count() const noexcept { return edge_count_; }

  [[nodiscard]] std::span<const Neighbor> neighbors(NodeId id) const {
    return adj_.at(id);
  }

  /// Relationship between two ASes, if adjacent: perspective of `a`.
  [[nodiscard]] std::optional<Rel> relationship(Asn a, Asn b) const;

  [[nodiscard]] std::vector<Asn> customers_of(Asn asn) const;
  [[nodiscard]] std::vector<Asn> providers_of(Asn asn) const;
  [[nodiscard]] std::vector<Asn> peers_of(Asn asn) const;

  /// All registered ASNs in insertion order.
  [[nodiscard]] std::span<const Asn> ases() const noexcept { return asns_; }

 private:
  void add_edge(Asn a, Asn b, Rel rel_of_a, double export_fraction);

  std::unordered_map<Asn, NodeId> index_;
  std::vector<Asn> asns_;
  std::vector<std::vector<Neighbor>> adj_;
  std::size_t edge_count_ = 0;
};

}  // namespace georank::topo
