// Valley-free BGP route propagation over an AsGraph.
//
// This substitutes for the real Internet's routing system when generating
// synthetic RIBs (DESIGN.md §1). For one origin AS it computes every other
// AS's best path under the standard Gao-Rexford model:
//
//   export rules:  own + customer-learned routes go to everyone;
//                  peer- and provider-learned routes go only to customers.
//   preference:    customer-learned > peer-learned > provider-learned,
//                  then shortest AS path, then a deterministic tiebreak.
//
// Implementation is the classic three-phase BFS: customer routes climb
// provider links from the origin, peer routes hop once across p2p links,
// provider routes descend customer links. Each phase is a breadth-first
// sweep so path lengths are minimal within a learning class.
//
// The tiebreak hashes (salt, candidate ASN); varying the salt per prefix
// reproduces the mild path diversity real RIBs show for same-origin
// prefixes without breaking determinism.
#pragma once

#include <cstdint>
#include <vector>

#include "bgp/as_path.hpp"
#include "topo/as_graph.hpp"

namespace georank::topo {

enum class RouteKind : std::uint8_t {
  kNone,      // origin unreachable from this AS
  kOrigin,    // this AS is the origin
  kCustomer,  // best route learned from a customer
  kPeer,      // best route learned from a peer
  kProvider,  // best route learned from a provider
};

struct RouteInfo {
  RouteKind kind = RouteKind::kNone;
  std::uint16_t length = 0;   // AS hops to origin
  NodeId next_hop = kNoNode;  // toward origin
};

/// All ASes' best routes toward one origin.
class RoutingTable {
 public:
  RoutingTable(const AsGraph& graph, Asn origin, std::vector<RouteInfo> info)
      : graph_(&graph), origin_(origin), info_(std::move(info)) {}

  [[nodiscard]] Asn origin() const noexcept { return origin_; }
  [[nodiscard]] const RouteInfo& at(NodeId id) const { return info_.at(id); }
  [[nodiscard]] bool reachable(NodeId id) const {
    return info_.at(id).kind != RouteKind::kNone;
  }

  /// Full AS path from `from` to the origin (inclusive of both ends,
  /// `from` first — i.e. VP-side first, matching AsPath convention).
  /// Empty path if unreachable.
  [[nodiscard]] bgp::AsPath path_from(NodeId from) const;

 private:
  const AsGraph* graph_;
  Asn origin_;
  std::vector<RouteInfo> info_;
};

class RoutePropagator {
 public:
  explicit RoutePropagator(const AsGraph& graph) : graph_(&graph) {}

  /// Best routes of every AS toward `origin`. `salt` perturbs equal-cost
  /// tiebreaks only. `failed` (if not kNoNode) is treated as withdrawn:
  /// it neither originates, learns, nor propagates routes — the
  /// what-if primitive behind the resilience analysis (DESIGN.md §2,
  /// topo/failure_analysis.hpp).
  [[nodiscard]] RoutingTable compute(Asn origin, std::uint64_t salt = 0,
                                     NodeId failed = kNoNode) const;

 private:
  const AsGraph* graph_;
};

/// True iff the path respects the valley-free property under the graph's
/// ground-truth relationships: zero or more customer->provider hops, at
/// most one peer hop, then zero or more provider->customer hops
/// (read from VP side to origin side the path DESCENDS after the apex).
/// Paths with unknown links return false.
[[nodiscard]] bool is_valley_free(const AsGraph& graph, const bgp::AsPath& path);

}  // namespace georank::topo
