#include "topo/route_propagation.hpp"

#include <algorithm>
#include <limits>

namespace georank::topo {

namespace {

/// Deterministic tiebreak score for an offer from `offerer`.
/// Lower wins. With salt 0 this is just the ASN (lowest-ASN tiebreak);
/// per-prefix salts shuffle equal-cost choices.
std::uint64_t tiebreak(std::uint64_t salt, Asn offerer) noexcept {
  if (salt == 0) return offerer;
  // SplitMix64 finalizer: full avalanche so small salt changes flip the
  // comparison between any two offerers about half the time.
  std::uint64_t z = salt + 0x9e3779b97f4a7c15ull * (static_cast<std::uint64_t>(offerer) + 1);
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
  return z ^ (z >> 31);
}

struct Offer {
  NodeId via = kNoNode;
  std::uint64_t score = std::numeric_limits<std::uint64_t>::max();
};

/// Deterministic per-(prefix, edge) uniform roll in [0,1) for partial
/// transit: a customer announces a given prefix through a fractional
/// edge iff the roll is below the edge's export fraction. The salt is
/// prefix-derived, so the same prefix is consistently announced (or not)
/// throughout one propagation.
double edge_roll(std::uint64_t salt, Asn a, Asn b) noexcept {
  Asn lo = std::min(a, b), hi = std::max(a, b);
  std::uint64_t z = (salt + 1) * 0x9e3779b97f4a7c15ull;
  z += 0xbf58476d1ce4e5b9ull * (static_cast<std::uint64_t>(lo) + 1);
  z += 0x94d049bb133111ebull * (static_cast<std::uint64_t>(hi) + 1);
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
  z ^= z >> 31;
  return static_cast<double>(z >> 11) * 0x1.0p-53;
}

}  // namespace

RoutingTable RoutePropagator::compute(Asn origin, std::uint64_t salt,
                                      NodeId failed) const {
  const AsGraph& g = *graph_;
  const auto n = static_cast<NodeId>(g.size());
  std::vector<RouteInfo> info(n);

  NodeId origin_id = g.id_of(origin);
  if (failed == origin_id) {
    // A failed origin announces nothing at all.
    return RoutingTable{g, origin, std::move(info)};
  }
  info[origin_id] = RouteInfo{RouteKind::kOrigin, 0, kNoNode};

  // ---- Phase 1: customer routes climb provider links (origin upward). ----
  // Bucket queue by EFFECTIVE length: partial-transit edges carry a
  // prepending penalty (kBackupPenalty), so backup announcements lose
  // every equal-class comparison against a fully-announced alternative —
  // exactly how operators keep traffic off thin backup links. All offers
  // for a node at the same effective length compete on the tiebreak.
  constexpr std::uint16_t kBackupPenalty = 3;
  std::vector<Offer> offers(n);
  std::vector<NodeId> touched;
  std::vector<std::vector<NodeId>> up_buckets{{origin_id}};
  for (std::uint16_t len = 0; len < up_buckets.size(); ++len) {
    touched.clear();
    for (NodeId u : up_buckets[len]) {
      if (info[u].kind == RouteKind::kNone || info[u].length != len) continue;
      for (const Neighbor& nb : g.neighbors(u)) {
        if (nb.rel != Rel::kProvider) continue;  // only climb to providers
        // Partial transit: the customer may not announce this prefix
        // through this edge at all.
        if (nb.export_up < 1.0f &&
            edge_roll(salt, g.asn_of(u), g.asn_of(nb.id)) >=
                static_cast<double>(nb.export_up)) {
          continue;
        }
        NodeId p = nb.id;
        if (p == failed) continue;
        if (info[p].kind != RouteKind::kNone) continue;
        std::uint64_t score = tiebreak(salt, g.asn_of(u));
        if (offers[p].via == kNoNode) touched.push_back(p);
        if (score < offers[p].score) offers[p] = Offer{u, score};
      }
    }
    for (NodeId p : touched) {
      NodeId via = offers[p].via;
      bool backup = false;
      for (const Neighbor& nb : g.neighbors(via)) {
        if (nb.id == p && nb.rel == Rel::kProvider) {
          backup = nb.export_up < 1.0f;
          break;
        }
      }
      auto plen =
          static_cast<std::uint16_t>(len + 1 + (backup ? kBackupPenalty : 0));
      info[p] = RouteInfo{RouteKind::kCustomer, plen, via};
      offers[p] = Offer{};
      if (up_buckets.size() <= plen) up_buckets.resize(plen + 1);
      up_buckets[plen].push_back(p);
    }
  }

  // ---- Phase 2: one peer hop from every AS holding a customer/origin
  // route. Peer routes are not re-exported, so this is a single sweep; a
  // node prefers the shortest exporter, then the tiebreak score. ----
  struct PeerOffer {
    NodeId via = kNoNode;
    std::uint16_t length = 0;
    std::uint64_t score = std::numeric_limits<std::uint64_t>::max();
  };
  std::vector<PeerOffer> peer_offers(n);
  std::vector<NodeId> peer_touched;
  for (NodeId u = 0; u < n; ++u) {
    if (info[u].kind != RouteKind::kOrigin && info[u].kind != RouteKind::kCustomer) {
      continue;
    }
    for (const Neighbor& nb : g.neighbors(u)) {
      if (nb.rel != Rel::kPeer) continue;
      NodeId q = nb.id;
      if (q == failed) continue;
      if (info[q].kind != RouteKind::kNone) continue;  // has a better class
      auto len = static_cast<std::uint16_t>(info[u].length + 1);
      std::uint64_t score = tiebreak(salt, g.asn_of(u));
      PeerOffer& cur = peer_offers[q];
      if (cur.via == kNoNode) peer_touched.push_back(q);
      if (cur.via == kNoNode || len < cur.length ||
          (len == cur.length && score < cur.score)) {
        cur = PeerOffer{u, len, score};
      }
    }
  }
  for (NodeId q : peer_touched) {
    info[q] = RouteInfo{RouteKind::kPeer, peer_offers[q].length, peer_offers[q].via};
  }

  // ---- Phase 3: provider routes descend customer links from every routed
  // AS. Starting lengths differ, so process in increasing length order
  // with a bucket queue. ----
  std::vector<std::vector<NodeId>> buckets;
  auto bucket_push = [&](NodeId id, std::uint16_t len) {
    if (buckets.size() <= len) buckets.resize(len + 1);
    buckets[len].push_back(id);
  };
  for (NodeId u = 0; u < n; ++u) {
    if (info[u].kind != RouteKind::kNone) bucket_push(u, info[u].length);
  }
  for (std::uint16_t len = 0; len < buckets.size(); ++len) {
    touched.clear();
    for (NodeId u : buckets[len]) {
      if (info[u].length != len) continue;  // stale entry
      for (const Neighbor& nb : g.neighbors(u)) {
        if (nb.rel != Rel::kCustomer) continue;  // descend to customers
        NodeId c = nb.id;
        if (c == failed) continue;
        if (info[c].kind != RouteKind::kNone) continue;
        std::uint64_t score = tiebreak(salt, g.asn_of(u));
        if (offers[c].via == kNoNode) touched.push_back(c);
        if (score < offers[c].score) offers[c] = Offer{u, score};
      }
    }
    for (NodeId c : touched) {
      auto clen = static_cast<std::uint16_t>(len + 1);
      info[c] = RouteInfo{RouteKind::kProvider, clen, offers[c].via};
      offers[c] = Offer{};
      bucket_push(c, clen);
    }
  }

  return RoutingTable{g, origin, std::move(info)};
}

bgp::AsPath RoutingTable::path_from(NodeId from) const {
  if (info_.at(from).kind == RouteKind::kNone) return {};
  std::vector<Asn> hops;
  NodeId cur = from;
  hops.push_back(graph_->asn_of(cur));
  while (info_[cur].kind != RouteKind::kOrigin) {
    cur = info_[cur].next_hop;
    hops.push_back(graph_->asn_of(cur));
  }
  return bgp::AsPath{std::move(hops)};
}

bool is_valley_free(const AsGraph& graph, const bgp::AsPath& path) {
  if (path.size() < 2) return true;
  // Walking VP -> origin the pattern must be: ascend (neighbor is my
  // provider)*, at most one peer link, then descend (neighbor is my
  // customer)*.
  enum class Stage { kUp, kDown } stage = Stage::kUp;
  bool used_peer = false;
  for (std::size_t i = 0; i + 1 < path.size(); ++i) {
    auto rel = graph.relationship(path[i], path[i + 1]);
    if (!rel) return false;
    switch (*rel) {
      case Rel::kProvider:  // ascending
        if (stage == Stage::kDown || used_peer) return false;
        break;
      case Rel::kPeer:
        if (stage == Stage::kDown || used_peer) return false;
        used_peer = true;
        break;
      case Rel::kCustomer:  // descending
        stage = Stage::kDown;
        break;
    }
  }
  return true;
}

}  // namespace georank::topo
