// Path sanitization pipeline (§3.1, Table 1).
//
// Input: five RIB snapshots (first five days of the month), collector
// metadata and a geolocation database. Output: the accepted, cleaned,
// geolocated path set that feeds every metric, plus per-category
// accounting that regenerates Table 1.
//
// Filter precedence per RIB entry (first match wins), mirroring the paper:
//   unstable     prefix not present in all five snapshots
//   as-set       path carried AS_SET syntax (flattened at parse; the
//                origin is ambiguous, so the entry is dropped here)
//   unallocated  a hop is not an IANA-allocated ASN
//   loop         non-adjacent duplicate AS ("A C A")
//   poisoned     a non-clique AS sandwiched between two clique ASes
//   vp-no-loc    VP peers with a multi-hop collector (or is unknown)
//   covered      prefix entirely covered by more-specific prefixes
//   pfx-no-loc   prefix geolocates to no or multiple countries
//
// Accepted paths are cleaned (IXP route-server ASes removed, adjacent
// duplicates collapsed) and deduplicated to distinct (VP, prefix, path).
#pragma once

#include <cstdint>
#include <span>
#include <string>
#include <vector>

#include "bgp/as_path.hpp"
#include "bgp/route.hpp"
#include "geo/country.hpp"
#include "geo/prefix_geolocator.hpp"
#include "geo/vp_geolocator.hpp"
#include "sanitize/asn_registry.hpp"

namespace georank::sanitize {

enum class FilterReason : std::uint8_t {
  kAccepted,
  kUnstable,
  kUnallocated,
  kLoop,
  kPoisoned,
  kVpNoLocation,
  kCoveredPrefix,
  kPrefixNoLocation,
  kAsSet,
};

[[nodiscard]] std::string_view to_string(FilterReason reason) noexcept;

struct SanitizeStats {
  std::size_t total = 0;
  std::size_t accepted = 0;
  std::size_t unstable = 0;
  std::size_t unallocated = 0;
  std::size_t loop = 0;
  std::size_t poisoned = 0;
  std::size_t vp_no_location = 0;
  std::size_t covered_prefix = 0;
  std::size_t prefix_no_location = 0;
  std::size_t as_set = 0;  // path carried (flattened) AS_SET syntax
  std::size_t duplicates_merged = 0;  // accepted entries collapsed by dedup

  [[nodiscard]] std::size_t rejected() const noexcept {
    return unstable + as_set + unallocated + loop + poisoned +
           vp_no_location + covered_prefix + prefix_no_location;
  }

  /// Share of RIB entries the sanitizer dropped, in [0,1] (0 when empty).
  [[nodiscard]] double drop_rate() const noexcept {
    return total == 0 ? 0.0
                      : static_cast<double>(rejected()) / static_cast<double>(total);
  }

  /// Counter for one filter category (kAccepted -> accepted entries).
  [[nodiscard]] std::size_t count(FilterReason reason) const noexcept {
    switch (reason) {
      case FilterReason::kAccepted: return accepted;
      case FilterReason::kUnstable: return unstable;
      case FilterReason::kUnallocated: return unallocated;
      case FilterReason::kLoop: return loop;
      case FilterReason::kPoisoned: return poisoned;
      case FilterReason::kVpNoLocation: return vp_no_location;
      case FilterReason::kCoveredPrefix: return covered_prefix;
      case FilterReason::kPrefixNoLocation: return prefix_no_location;
      case FilterReason::kAsSet: return as_set;
    }
    return 0;
  }
};

/// An audit sample: one rejected RIB entry and why.
struct RejectedSample {
  FilterReason reason = FilterReason::kAccepted;
  bgp::RouteEntry entry;
  int day = 0;
};

/// One accepted, cleaned, geolocated path: the unit every metric consumes.
struct SanitizedPath {
  bgp::VpId vp;
  geo::CountryCode vp_country;
  bgp::Prefix prefix;
  geo::CountryCode prefix_country;
  /// Most-specific ("effective") address count of the prefix.
  std::uint64_t weight = 0;
  bgp::AsPath path;
};

struct SanitizeResult {
  std::vector<SanitizedPath> paths;
  SanitizeStats stats;
  geo::PrefixGeoResult prefix_geo;  // retained for the geo-filter harnesses
  std::vector<bgp::Asn> clique;     // clique used for the poisoning filter
  /// Audit samples (at most SanitizerOptions::samples_per_category per
  /// rejection reason, in encounter order).
  std::vector<RejectedSample> samples;
};

struct SanitizerOptions {
  /// Explicit top-tier clique; empty -> inferred from the stable paths.
  std::vector<bgp::Asn> clique;
  /// IXP route-server ASNs to strip from accepted paths.
  std::vector<bgp::Asn> route_server_asns;
  /// Prefix-geolocation majority threshold (Appendix B).
  double geo_threshold = 0.5;
  /// Number of snapshots a prefix must appear in to be "stable".
  /// 0 -> all snapshots present in the collection (the paper's rule).
  std::size_t stability_days = 0;
  /// Keep up to this many example rejected entries PER CATEGORY in
  /// SanitizeResult::samples, for debugging/auditing filter decisions.
  std::size_t samples_per_category = 0;
};

class PathSanitizer {
 public:
  PathSanitizer(const geo::GeoDatabase& geo_db, const geo::VpGeolocator& vps,
                const AsnRegistry& registry, SanitizerOptions options = {});

  [[nodiscard]] SanitizeResult run(const bgp::RibCollection& ribs) const;

 private:
  const geo::GeoDatabase* geo_db_;
  const geo::VpGeolocator* vps_;
  const AsnRegistry* registry_;
  SanitizerOptions options_;
};

/// True iff a non-clique AS sits between two clique ASes (§3.1's poisoning
/// heuristic from Luckie et al.). Exposed for tests.
[[nodiscard]] bool is_poisoned(const bgp::AsPath& path, std::span<const bgp::Asn> clique);

}  // namespace georank::sanitize
