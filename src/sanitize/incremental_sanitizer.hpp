// A PathSanitizer that remembers its last run.
//
// The live pipeline re-sanitizes the whole replay window on every flush,
// but between two flushes only the FINAL day of the window changes (new
// updates land on the current day; closed days are immutable). Every
// sanitizer filter is still globally coupled across days — stability
// counts, the covered-prefix set, geo consensus, and the sequential
// dedup set all read the whole collection — so the memo proves, rather
// than assumes, that the cross-day inputs are unchanged before taking
// the fast path:
//
//   - a content digest per day shows days [0, N-1) are byte-for-byte the
//     collection the memo was built from;
//   - the merged stability counts (head counts + new final day) must
//     yield the SAME stable-prefix set (order-independent digest), which
//     pins every head filtering decision and makes the cached
//     PrefixGeoResult (computed over exactly that set) reusable;
//   - the clique must be explicit in the options — an inferred clique
//     reads the final day's stable paths, so inference always falls back
//     to a full run;
//   - the dedup set and sample budget carried from the previous run
//     restore the exact sequential state a batch run would have at the
//     final-day boundary (derived by erasing the keys the old final
//     day's rows inserted — one per emitted suffix row).
//
// When all of that holds, run_fast() reuses the previous result's head
// rows (rows are emitted day-major, so they are a prefix of `paths`) and
// re-filters only the final day. When the new final day is additionally
// a strict EXTENSION of the memoized one — same day number, old entries
// a literal prefix, proven by a resumable content fold — run_fast()
// keeps the previous result wholesale and filters only the appended
// tail, making a small burst O(delta) instead of O(final day). Appended
// entries cannot change the day-presence of previously-seen final-day
// prefixes ({count, last_day} counts each prefix once per day), and any
// NEW prefix crossing the stability threshold changes the stable-set
// digest and rejects the fast path, so the extension is sound.
// The output is identical to
// PathSanitizer::run over the same collection by construction — the same
// per-entry loop (sanitize/filter_detail.hpp) runs over provably equal
// inputs — which is what lets the live pipeline publish snapshots
// byte-identical to a batch recompute. Any mismatch falls back to
// run_full(), which is PathSanitizer::run plus memo capture.
//
// One deliberate semantic refinement vs the historical sanitizer: day
// presence is counted with a {count, last_day} pair instead of a per-
// prefix day set, which assumes snapshots arrive with non-decreasing day
// numbers (repeats adjacent). Every producer in-tree — the generators,
// replay_to_collection, the live window — satisfies this.
//
// Not thread-safe: callers serialize run_full/can_fast_path/run_fast
// (core::Pipeline holds its load-serial mutex across them).
#pragma once

#include <array>
#include <cstdint>
#include <vector>

#include "sanitize/filter_detail.hpp"
#include "sanitize/path_sanitizer.hpp"

namespace georank::sanitize {

class IncrementalSanitizer {
 public:
  /// What a run did, for flush observability.
  struct Outcome {
    bool fast_path = false;
    std::size_t days_reused = 0;
    std::size_t days_resanitized = 0;
    /// Result rows PROVEN byte-identical to the previous run's leading
    /// rows (the memoized head). Non-zero only on the fast path, where
    /// downstream consumers may reuse per-row derivations for the
    /// unchanged prefix (ShardedPathStore::rebuild's head hint).
    std::size_t rows_reused = 0;
  };

  IncrementalSanitizer(const geo::GeoDatabase& geo_db,
                       const geo::VpGeolocator& vps, const AsnRegistry& registry,
                       SanitizerOptions options = {});

  /// Full batch run (identical to PathSanitizer::run), capturing the
  /// boundary memo that enables subsequent fast paths. Capture is
  /// skipped (and the fast path stays unavailable) when the clique is
  /// inferred rather than explicit.
  [[nodiscard]] SanitizeResult run_full(const bgp::RibCollection& ribs,
                                        Outcome* outcome = nullptr);

  /// True iff `ribs` differs from the memoized collection in the final
  /// day only AND the stable-prefix set is unchanged. On success the
  /// merged stability counts are staged for run_fast(); on failure the
  /// caller must use run_full(). Digest-verified, not assumed.
  [[nodiscard]] bool can_fast_path(const bgp::RibCollection& ribs);

  /// Incremental run after a successful can_fast_path(): consumes the
  /// previous result (of the memoized collection) and re-filters only
  /// the final day. Falls back to run_full() if no check is staged.
  [[nodiscard]] SanitizeResult run_fast(const bgp::RibCollection& ribs,
                                        SanitizeResult&& previous,
                                        Outcome* outcome = nullptr);

  /// Drops the memo; the next run must be run_full().
  void invalidate() noexcept;

  /// Row count of the memoized head — how many leading rows of the LAST
  /// run's result were emitted for days [0, N-1). 0 when the memo is
  /// invalid. Lets callers cache per-row derivations at the same
  /// boundary the fast path splices at.
  [[nodiscard]] std::size_t memo_head_rows() const noexcept {
    return memo_valid_ ? head_rows_ : 0;
  }

  [[nodiscard]] const SanitizerOptions& options() const noexcept {
    return options_;
  }

 private:
  const geo::GeoDatabase* geo_db_;
  const geo::VpGeolocator* vps_;
  const AsnRegistry* registry_;
  SanitizerOptions options_;

  // ---- Memo of the last sanitized collection (valid_ gates all). ----
  bool memo_valid_ = false;
  std::vector<std::uint64_t> day_digests_;  // one per day, order-sensitive
  std::size_t need_ = 0;                    // stability threshold used
  detail::DayCounts head_counts_;           // day presence over days [0, N-1)
  std::uint64_t stable_digest_ = 0;         // stable set over ALL N days
  // Sequential filter state captured at the final-day boundary: what a
  // batch run holds right before filtering the last day.
  SanitizeStats head_stats_;
  std::array<std::size_t, 9> head_sample_counts_{};
  std::vector<RejectedSample> head_samples_;
  std::size_t head_rows_ = 0;
  // Sequential filter state AFTER the full run (post the final day).
  // The boundary state run_fast() resumes from is derived on demand:
  // the replace path erases exactly the keys the old final day's rows
  // inserted; the append path needs no rewind at all — it continues the
  // fold from here over just the appended tail.
  detail::DedupSet dedup_post_;
  std::array<std::size_t, 9> post_sample_counts_{};
  // Final-day identity for the append detection: day number, entry
  // count, and the resumable content fold over those entries. A new
  // final day whose first `final_len_` entries fold to the same value
  // is PROVEN to extend the memoized day (fold_entries' prefix
  // property), so only entries[final_len_..] need filtering.
  int final_day_number_ = 0;
  std::size_t final_len_ = 0;
  std::uint64_t final_entries_fold_ = 0;

  // ---- Staged by can_fast_path() for the next run_fast(). ----
  bool pending_ready_ = false;
  bool pending_append_ = false;       // final day is a strict extension
  detail::DayCounts pending_counts_;  // head counts + new final day
  std::uint64_t pending_final_digest_ = 0;
};

}  // namespace georank::sanitize
