#include "sanitize/incremental_sanitizer.hpp"

#include <unordered_set>
#include <utility>

#include "infer/clique.hpp"
#include "infer/transit_degree.hpp"

namespace georank::sanitize {

IncrementalSanitizer::IncrementalSanitizer(const geo::GeoDatabase& geo_db,
                                           const geo::VpGeolocator& vps,
                                           const AsnRegistry& registry,
                                           SanitizerOptions options)
    : geo_db_(&geo_db),
      vps_(&vps),
      registry_(&registry),
      options_(std::move(options)) {}

void IncrementalSanitizer::invalidate() noexcept {
  memo_valid_ = false;
  pending_ready_ = false;
  day_digests_.clear();
  head_counts_.clear();
  head_samples_.clear();
  dedup_post_.clear();
  head_rows_ = 0;
  final_len_ = 0;
}

SanitizeResult IncrementalSanitizer::run_full(const bgp::RibCollection& ribs,
                                              Outcome* outcome) {
  invalidate();
  SanitizeResult result;
  const std::size_t n = ribs.days.size();
  // The fast path needs an explicit clique: an inferred one reads the
  // final day's stable paths, so there is no day boundary to memoize.
  const bool capture = !options_.clique.empty() && n > 0;

  // ---- Stability counts, with the head (days [0, N-1)) captured. ----
  detail::DayCounts counts;
  for (std::size_t i = 0; i + 1 < n; ++i) {
    detail::add_day_presence(counts, ribs.days[i]);
  }
  if (capture) head_counts_ = counts;
  if (n > 0) detail::add_day_presence(counts, ribs.days.back());
  need_ = detail::stability_need(options_, n);
  auto stable = [&](const bgp::Prefix& p) { return counts.at(p).count >= need_; };

  // ---- Clique: explicit or inferred from the stable, loop-free paths
  // (mirrors PathSanitizer::run exactly). ----
  std::vector<bgp::Asn> clique = options_.clique;
  if (clique.empty()) {
    infer::TransitDegree degrees;
    infer::ObservedAdjacency adjacency;
    for (const bgp::RibSnapshot& snap : ribs.days) {
      for (const bgp::RouteEntry& e : snap.entries) {
        if (!stable(e.prefix)) continue;
        if (e.path.has_as_set()) continue;
        bgp::AsPath collapsed = e.path.without_adjacent_duplicates();
        if (collapsed.has_nonadjacent_duplicate()) continue;
        degrees.add_path(collapsed);
        adjacency.add_path(collapsed);
      }
    }
    clique = infer::infer_clique(degrees, adjacency);
  }
  result.clique = clique;

  // ---- Prefix geolocation over the stable announced set. ----
  std::vector<bgp::Prefix> announced;
  announced.reserve(counts.size());
  for (const auto& [p, days] : counts) {
    if (days.count >= need_) announced.push_back(p);
  }
  geo::PrefixGeolocator geolocator{*geo_db_, options_.geo_threshold};
  result.prefix_geo = geolocator.run(announced);

  std::unordered_set<bgp::Prefix, bgp::PrefixHash> covered_set(
      result.prefix_geo.covered.begin(), result.prefix_geo.covered.end());

  // ---- Per-entry filtering; snapshot the sequential state right before
  // the final day — that boundary is where run_fast() resumes. ----
  detail::FilterWorld world{&counts, need_, clique, &result.prefix_geo,
                            &covered_set};
  detail::FilterState state;
  for (std::size_t i = 0; i < n; ++i) {
    if (capture && i + 1 == n) {
      head_stats_ = result.stats;
      head_sample_counts_ = state.sample_counts;
      head_samples_ = result.samples;
      head_rows_ = result.paths.size();
    }
    detail::filter_day(ribs.days[i].day, ribs.days[i].entries, world, *vps_,
                       *registry_, options_, state, result);
  }

  if (capture) {
    day_digests_.reserve(n);
    for (const bgp::RibSnapshot& snap : ribs.days) {
      day_digests_.push_back(detail::day_digest(snap));
    }
    stable_digest_ = detail::stable_set_digest(counts, need_);
    // The sequential state is memoized POST-run; run_fast() derives the
    // final-day boundary from it on demand (or, on the append path,
    // continues from it directly).
    dedup_post_ = std::move(state.dedup);
    post_sample_counts_ = state.sample_counts;
    final_day_number_ = ribs.days.back().day;
    final_len_ = ribs.days.back().entries.size();
    final_entries_fold_ =
        detail::fold_entries(detail::kFoldSeed, ribs.days.back().entries);
    memo_valid_ = true;
  }

  if (outcome) {
    outcome->fast_path = false;
    outcome->days_reused = 0;
    outcome->days_resanitized = n;
    outcome->rows_reused = 0;
  }
  return result;
}

bool IncrementalSanitizer::can_fast_path(const bgp::RibCollection& ribs) {
  pending_ready_ = false;
  pending_append_ = false;
  if (!memo_valid_ || options_.clique.empty()) return false;
  const std::size_t n = ribs.days.size();
  if (n == 0 || n != day_digests_.size()) return false;
  // The new final day must carry a later day number than the last head
  // day, or the presence counting below would fold them together.
  if (n >= 2 && ribs.days[n - 1].day <= ribs.days[n - 2].day) return false;
  for (std::size_t i = 0; i + 1 < n; ++i) {
    if (detail::day_digest(ribs.days[i]) != day_digests_[i]) return false;
  }
  // Merge the new final day into the head counts and require the stable
  // set to come out unchanged: that pins every head filtering decision
  // AND the announced set the cached PrefixGeoResult was computed over.
  pending_counts_ = head_counts_;
  detail::add_day_presence(pending_counts_, ribs.days.back());
  if (detail::stable_set_digest(pending_counts_, need_) != stable_digest_) {
    return false;
  }
  // Append detection: same day number and the memoized entries a literal
  // prefix of the new ones (fold_entries' prefix property proves it).
  // Then every previously-filtered entry sees identical inputs — the
  // stable set is digest-pinned, and appended entries cannot alter the
  // day-presence of a prefix the old final day already counted — so only
  // the appended tail needs filtering.
  const bgp::RibSnapshot& fin = ribs.days.back();
  if (fin.day == final_day_number_ && fin.entries.size() >= final_len_ &&
      detail::fold_entries(
          detail::kFoldSeed,
          std::span<const bgp::RouteEntry>{fin.entries}.first(final_len_)) ==
          final_entries_fold_) {
    pending_append_ = true;
  }
  pending_final_digest_ = detail::day_digest(fin);
  pending_ready_ = true;
  return true;
}

SanitizeResult IncrementalSanitizer::run_fast(const bgp::RibCollection& ribs,
                                              SanitizeResult&& previous,
                                              Outcome* outcome) {
  if (!pending_ready_) return run_full(ribs, outcome);
  pending_ready_ = false;

  const bgp::RibSnapshot& fin = ribs.days.back();
  SanitizeResult result;
  std::size_t rows_reused = 0;
  std::unordered_set<bgp::Prefix, bgp::PrefixHash> covered_set;
  detail::FilterState state;
  state.dedup = std::move(dedup_post_);
  std::span<const bgp::RouteEntry> to_filter{fin.entries};

  if (pending_append_) {
    // Append path: the previous result IS the result for the prefix the
    // old final day covered; filter only the appended tail, continuing
    // the sequential fold from the post-run state.
    result = std::move(previous);
    rows_reused = result.paths.size();
    state.sample_counts = post_sample_counts_;
    to_filter = to_filter.subspan(final_len_);
  } else {
    // Replace path: rewind the post-run dedup set to the final-day
    // boundary by erasing exactly the keys the old final day inserted —
    // one per emitted suffix row (a final-day entry whose key already
    // existed was counted as a duplicate and emitted nothing). Must read
    // previous.paths BEFORE the move below.
    for (std::size_t i = head_rows_; i < previous.paths.size(); ++i) {
      const SanitizedPath& row = previous.paths[i];
      state.dedup.erase(
          detail::DedupKey{row.vp, row.prefix, row.path.to_string()});
    }
    result.clique = options_.clique;
    result.prefix_geo = std::move(previous.prefix_geo);
    // Rows are emitted day-major, so the previous result's head rows are
    // a prefix of `paths`; drop the old final day and keep the capacity.
    result.paths = std::move(previous.paths);
    result.paths.resize(head_rows_);
    rows_reused = head_rows_;
    result.stats = head_stats_;
    result.samples = head_samples_;
    state.sample_counts = head_sample_counts_;
  }

  covered_set.insert(result.prefix_geo.covered.begin(),
                     result.prefix_geo.covered.end());
  detail::FilterWorld world{&pending_counts_, need_, options_.clique,
                            &result.prefix_geo, &covered_set};
  detail::filter_day(fin.day, to_filter, world, *vps_, *registry_, options_,
                     state, result);

  // Re-arm the memo at the new final day. On the append path the new
  // fold continues the old one over the tail (`to_filter` is exactly the
  // appended entries) — the same resumption the detection relies on.
  dedup_post_ = std::move(state.dedup);
  post_sample_counts_ = state.sample_counts;
  final_entries_fold_ =
      pending_append_ ? detail::fold_entries(final_entries_fold_, to_filter)
                      : detail::fold_entries(detail::kFoldSeed, fin.entries);
  final_day_number_ = fin.day;
  final_len_ = fin.entries.size();
  day_digests_.back() = pending_final_digest_;

  if (outcome) {
    outcome->fast_path = true;
    outcome->days_reused = ribs.days.size() - 1;
    outcome->days_resanitized = 1;
    outcome->rows_reused = rows_reused;
  }
  pending_append_ = false;
  return result;
}

}  // namespace georank::sanitize
