#include "sanitize/filter_detail.hpp"

namespace georank::sanitize::detail {

namespace {

constexpr std::uint64_t kFnvOffset = 1469598103934665603ull;
constexpr std::uint64_t kFnvPrime = 1099511628211ull;

inline void fnv_mix(std::uint64_t& h, std::uint64_t v) {
  h ^= v;
  h *= kFnvPrime;
}

}  // namespace

void filter_day(int day, std::span<const bgp::RouteEntry> entries,
                const FilterWorld& world, const geo::VpGeolocator& vps,
                const AsnRegistry& registry, const SanitizerOptions& options,
                FilterState& state, SanitizeResult& result) {
  SanitizeStats& stats = result.stats;
  auto stable = [&](const bgp::Prefix& p) {
    return world.day_counts->at(p).count >= world.need;
  };
  auto sample = [&](FilterReason reason, const bgp::RouteEntry& e) {
    auto idx = static_cast<std::size_t>(reason);
    if (state.sample_counts[idx] >= options.samples_per_category) return;
    ++state.sample_counts[idx];
    result.samples.push_back(RejectedSample{reason, e, day});
  };

  for (const bgp::RouteEntry& e : entries) {
    ++stats.total;
    if (!stable(e.prefix)) {
      ++stats.unstable;
      sample(FilterReason::kUnstable, e);
      continue;
    }
    if (e.path.has_as_set()) {
      // The parser flattens AS_SETs to keep the line; the true origin
      // is ambiguous, so the entry is rejected here (first match wins,
      // before the flattened members can read as loops or unallocated).
      ++stats.as_set;
      sample(FilterReason::kAsSet, e);
      continue;
    }
    if (!registry.all_allocated(e.path)) {
      ++stats.unallocated;
      sample(FilterReason::kUnallocated, e);
      continue;
    }
    if (e.path.has_nonadjacent_duplicate()) {
      ++stats.loop;
      sample(FilterReason::kLoop, e);
      continue;
    }
    if (is_poisoned(e.path, world.clique)) {
      ++stats.poisoned;
      sample(FilterReason::kPoisoned, e);
      continue;
    }
    auto vp_country = vps.locate(e.vp);
    if (!vp_country) {
      ++stats.vp_no_location;
      sample(FilterReason::kVpNoLocation, e);
      continue;
    }
    if (world.covered->contains(e.prefix)) {
      ++stats.covered_prefix;
      sample(FilterReason::kCoveredPrefix, e);
      continue;
    }
    geo::CountryCode prefix_country = world.prefix_geo->country_of(e.prefix);
    if (!prefix_country.valid()) {
      ++stats.prefix_no_location;
      sample(FilterReason::kPrefixNoLocation, e);
      continue;
    }
    ++stats.accepted;

    // ---- Cleaning: strip route servers, collapse prepending. ----
    bgp::AsPath cleaned =
        e.path.without_ases(options.route_server_asns).without_adjacent_duplicates();
    if (cleaned.empty()) continue;

    DedupKey key{e.vp, e.prefix, cleaned.to_string()};
    if (!state.dedup.insert(std::move(key)).second) {
      ++stats.duplicates_merged;
      continue;
    }
    result.paths.push_back(SanitizedPath{
        e.vp, *vp_country, e.prefix, prefix_country,
        world.prefix_geo->weight_of(e.prefix), std::move(cleaned)});
  }
}

std::uint64_t fold_entries(std::uint64_t h,
                           std::span<const bgp::RouteEntry> entries) {
  for (const bgp::RouteEntry& e : entries) {
    fnv_mix(h, e.vp.ip);
    fnv_mix(h, e.vp.asn);
    fnv_mix(h, (static_cast<std::uint64_t>(e.prefix.address()) << 8) |
                   e.prefix.length());
    fnv_mix(h, e.path.size());
    for (bgp::Asn hop : e.path.hops()) fnv_mix(h, hop);
    fnv_mix(h, e.path.has_as_set() ? 1u : 0u);
  }
  return h;
}

std::uint64_t day_digest(const bgp::RibSnapshot& snap) {
  std::uint64_t h = kFnvOffset;
  fnv_mix(h, static_cast<std::uint64_t>(snap.day));
  fnv_mix(h, snap.entries.size());
  return fold_entries(h, snap.entries);
}

std::uint64_t stable_set_digest(const DayCounts& counts, std::size_t need) {
  // Commutative fold (sum/xor of per-prefix splitmix) so the digest is
  // independent of hash-map iteration order.
  std::uint64_t sum = 0;
  std::uint64_t xr = 0;
  std::uint64_t n = 0;
  for (const auto& [p, days] : counts) {
    if (days.count < need) continue;
    std::uint64_t x = (static_cast<std::uint64_t>(p.address()) << 8) | p.length();
    x += 0x9e3779b97f4a7c15ull;
    x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ull;
    x = (x ^ (x >> 27)) * 0x94d049bb133111ebull;
    x ^= x >> 31;
    sum += x;
    xr ^= x;
    ++n;
  }
  std::uint64_t h = kFnvOffset;
  fnv_mix(h, n);
  fnv_mix(h, sum);
  fnv_mix(h, xr);
  return h;
}

}  // namespace georank::sanitize::detail
