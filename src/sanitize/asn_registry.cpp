#include "sanitize/asn_registry.hpp"

#include <stdexcept>

namespace georank::sanitize {

void AsnRegistry::allocate_range(bgp::Asn first, bgp::Asn last) {
  if (first > last) throw std::invalid_argument{"ASN range first > last"};
  if (first == 0) first = 1;  // AS0 is never a valid hop
  ranges_.push_back(Range{first, last});
  finalized_ = false;
}

void AsnRegistry::finalize() {
  std::sort(ranges_.begin(), ranges_.end(),
            [](const Range& a, const Range& b) { return a.first < b.first; });
  std::vector<Range> merged;
  for (const Range& r : ranges_) {
    if (!merged.empty() && r.first <= merged.back().last + 1 &&
        merged.back().last != 0xffffffffu) {
      merged.back().last = std::max(merged.back().last, r.last);
    } else {
      merged.push_back(r);
    }
  }
  ranges_ = std::move(merged);
  finalized_ = true;
}

bool AsnRegistry::allocated(bgp::Asn asn) const noexcept {
  if (asn == 0) return false;
  auto it = std::upper_bound(
      ranges_.begin(), ranges_.end(), asn,
      [](bgp::Asn v, const Range& r) { return v < r.first; });
  if (it == ranges_.begin()) return false;
  --it;
  return asn <= it->last;
}

bool AsnRegistry::all_allocated(const bgp::AsPath& path) const noexcept {
  for (bgp::Asn hop : path.hops()) {
    if (!allocated(hop)) return false;
  }
  return true;
}

AsnRegistry AsnRegistry::permissive() {
  AsnRegistry r;
  r.allocate_range(1, 0xffffffffu);
  r.finalize();
  return r;
}

}  // namespace georank::sanitize
