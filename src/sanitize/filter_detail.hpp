// Shared internals of the batch and incremental sanitizers.
//
// PathSanitizer::run and IncrementalSanitizer both drive the SAME
// per-day filter loop (filter_day) over the SAME global state
// (stability counts, clique, prefix geolocation, covered set, dedup),
// so an incremental run that re-filters only the changed suffix of the
// collection produces rows identical to a from-scratch batch run by
// construction — the bit-identity invariant the live pipeline publishes
// under. Nothing here is part of the public sanitize API.
#pragma once

#include <array>
#include <cstdint>
#include <span>
#include <string>
#include <unordered_map>
#include <unordered_set>

#include "bgp/route.hpp"
#include "geo/prefix_geolocator.hpp"
#include "geo/vp_geolocator.hpp"
#include "sanitize/asn_registry.hpp"
#include "sanitize/path_sanitizer.hpp"

namespace georank::sanitize::detail {

/// Dedup identity of an accepted entry: distinct (VP, prefix, cleaned
/// path). First occurrence wins; later ones count as duplicates_merged.
struct DedupKey {
  bgp::VpId vp;
  bgp::Prefix prefix;
  std::string path;
  bool operator==(const DedupKey&) const = default;
};

struct DedupHash {
  std::size_t operator()(const DedupKey& k) const noexcept {
    std::size_t h = bgp::VpIdHash{}(k.vp);
    h ^= bgp::PrefixHash{}(k.prefix) + 0x9e3779b9u + (h << 6) + (h >> 2);
    h ^= std::hash<std::string>{}(k.path) + 0x9e3779b9u + (h << 6) + (h >> 2);
    return h;
  }
};

using DedupSet = std::unordered_set<DedupKey, DedupHash>;

/// How many distinct dump days each prefix appears in. `last_day`
/// collapses repeats within one day (and adjacent snapshots sharing a
/// day number) without keeping a per-prefix day set.
struct PrefixDays {
  std::uint32_t count = 0;
  int last_day = 0;
};

using DayCounts = std::unordered_map<bgp::Prefix, PrefixDays, bgp::PrefixHash>;

/// Folds one day's entries into `counts`. Days must be fed in collection
/// order; a repeated day number only counts once if its snapshots are
/// adjacent (replay_to_collection and the generators emit strictly
/// increasing day numbers, so this holds for every producer in-tree).
inline void add_day_presence(DayCounts& counts, const bgp::RibSnapshot& snap) {
  for (const bgp::RouteEntry& e : snap.entries) {
    auto [it, inserted] = counts.try_emplace(e.prefix, PrefixDays{0, snap.day});
    if (inserted || it->second.last_day != snap.day ||
        it->second.count == 0) {
      it->second.last_day = snap.day;
      ++it->second.count;
    }
  }
}

/// The paper's stability rule: present in `stability_days` snapshots,
/// or in all of them when the option is 0.
[[nodiscard]] inline std::size_t stability_need(const SanitizerOptions& options,
                                                std::size_t day_count) {
  return options.stability_days ? options.stability_days : day_count;
}

/// Everything the per-entry filter loop reads but never writes.
struct FilterWorld {
  const DayCounts* day_counts = nullptr;
  std::size_t need = 0;
  std::span<const bgp::Asn> clique;
  const geo::PrefixGeoResult* prefix_geo = nullptr;
  const std::unordered_set<bgp::Prefix, bgp::PrefixHash>* covered = nullptr;
};

/// Sequential filter state threaded across days: the dedup set and the
/// per-category sample budget. Capturing this at a day boundary is what
/// lets the incremental sanitizer resume mid-collection.
struct FilterState {
  DedupSet dedup;
  std::array<std::size_t, 9> sample_counts{};
};

/// Runs the paper's per-entry filter precedence over one day's entries
/// (or any contiguous slice of them — the loop is sequential, so a
/// suffix of a day can be filtered on its own by resuming `state`),
/// appending accepted rows, stats and audit samples to `result`.
void filter_day(int day, std::span<const bgp::RouteEntry> entries,
                const FilterWorld& world, const geo::VpGeolocator& vps,
                const AsnRegistry& registry, const SanitizerOptions& options,
                FilterState& state, SanitizeResult& result);

/// Seed for fold_entries when starting a fresh fold.
inline constexpr std::uint64_t kFoldSeed = 1469598103934665603ull;

/// Sequential, order-sensitive content fold over raw entries, resumable:
/// fold_entries(fold_entries(kFoldSeed, a), b) == fold_entries(kFoldSeed,
/// a+b). This prefix property is what detects an append-only final day.
[[nodiscard]] std::uint64_t fold_entries(std::uint64_t h,
                                         std::span<const bgp::RouteEntry> entries);

/// Content digest of one day's raw entries (order-sensitive: entry order
/// feeds dedup precedence). Used to prove days unchanged between runs.
[[nodiscard]] std::uint64_t day_digest(const bgp::RibSnapshot& snap);

/// Order-independent digest of the stable prefix set under `need`.
[[nodiscard]] std::uint64_t stable_set_digest(const DayCounts& counts,
                                              std::size_t need);

}  // namespace georank::sanitize::detail
