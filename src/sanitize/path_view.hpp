// Zero-copy iteration over sanitized paths, regardless of storage layout.
//
// The metric kernels (customer cone, hegemony, CTI, AHC) only ever READ
// (vp, vp_country, prefix, prefix_country, weight, hops) tuples. PathsView
// type-erases where those tuples live:
//
//   * row form:     a span of SanitizedPath structs (the sanitizer's
//                   output, and any test fixture built by hand);
//   * column form:  parallel columns plus AS-path handles into a shared
//                   interned arena (core::PathStore's layout).
//
// Either form may additionally be composed with an index list, which is
// how country views select their subset without copying a single path.
// PathsView is a borrowing type: the underlying storage (and the index
// list, when present) must outlive it. It is implicitly constructible
// from a vector/span of SanitizedPath so pre-existing call sites keep
// compiling unchanged.
#pragma once

#include <cstdint>
#include <iterator>
#include <span>
#include <vector>

#include "sanitize/path_sanitizer.hpp"

namespace georank::sanitize {

/// An interned AS path: `length` hops starting at `offset` in the arena.
struct PathHandle {
  std::uint32_t offset = 0;
  std::uint32_t length = 0;

  friend bool operator==(PathHandle, PathHandle) = default;
};

/// Columnar (structure-of-arrays) storage of sanitized paths. All column
/// pointers address arrays of the same length; `arena` is the shared hop
/// arena the handles index into.
struct PathColumns {
  const bgp::VpId* vp = nullptr;
  const geo::CountryCode* vp_country = nullptr;
  const bgp::Prefix* prefix = nullptr;
  const geo::CountryCode* prefix_country = nullptr;
  const std::uint64_t* weight = nullptr;
  const PathHandle* handle = nullptr;
  const bgp::Asn* arena = nullptr;
};

/// One sanitized path, projected out of either storage form. Field names
/// mirror SanitizedPath so code reads identically; `path` is a non-owning
/// AsPathView instead of a heap-backed AsPath.
struct PathRecord {
  bgp::VpId vp;
  geo::CountryCode vp_country;
  bgp::Prefix prefix;
  geo::CountryCode prefix_country;
  std::uint64_t weight = 0;
  bgp::AsPathView path;

  /// Deep copy into the owning row form (tests, serialization).
  [[nodiscard]] SanitizedPath materialize() const {
    return SanitizedPath{vp,    vp_country,         prefix,
                         prefix_country, weight, path.materialize()};
  }
};

class PathsView {
 public:
  constexpr PathsView() noexcept = default;

  // Row form (implicit: legacy call sites pass vectors/spans directly).
  PathsView(std::span<const SanitizedPath> rows) noexcept  // NOLINT
      : rows_(rows.data()), size_(rows.size()) {}
  PathsView(const std::vector<SanitizedPath>& rows) noexcept  // NOLINT
      : rows_(rows.data()), size_(rows.size()) {}

  // Column form, whole store or an index-selected subset.
  PathsView(const PathColumns& cols, std::size_t size) noexcept
      : cols_(cols), size_(size) {}
  PathsView(const PathColumns& cols, std::span<const std::uint32_t> indices) noexcept
      : cols_(cols), indices_(indices.data()), size_(indices.size()) {}

  // Row form restricted to an index list.
  PathsView(std::span<const SanitizedPath> rows,
            std::span<const std::uint32_t> indices) noexcept
      : rows_(rows.data()), indices_(indices.data()), size_(indices.size()) {}

  [[nodiscard]] std::size_t size() const noexcept { return size_; }
  [[nodiscard]] bool empty() const noexcept { return size_ == 0; }

  /// Index into the UNDERLYING storage of the k-th element (k itself when
  /// no index list is attached). Lets callers build sub-selections that
  /// compose with an existing selection.
  [[nodiscard]] std::size_t base_index(std::size_t k) const noexcept {
    return indices_ ? indices_[k] : k;
  }

  [[nodiscard]] PathRecord operator[](std::size_t k) const noexcept {
    const std::size_t i = base_index(k);
    if (rows_) {
      const SanitizedPath& sp = rows_[i];
      return PathRecord{sp.vp,     sp.vp_country, sp.prefix,
                        sp.prefix_country, sp.weight, bgp::AsPathView{sp.path}};
    }
    return PathRecord{
        cols_.vp[i],     cols_.vp_country[i], cols_.prefix[i],
        cols_.prefix_country[i], cols_.weight[i],
        bgp::AsPathView{cols_.arena + cols_.handle[i].offset,
                        cols_.handle[i].length}};
  }

  /// Same base storage, different selection. `indices` are BASE indices
  /// (see base_index) and must outlive the returned view.
  [[nodiscard]] PathsView rebase(std::span<const std::uint32_t> indices) const noexcept {
    PathsView out = *this;
    out.indices_ = indices.data();
    out.size_ = indices.size();
    return out;
  }

  class iterator {
   public:
    using iterator_category = std::input_iterator_tag;
    using value_type = PathRecord;
    using difference_type = std::ptrdiff_t;

    iterator() = default;
    iterator(const PathsView* view, std::size_t k) : view_(view), k_(k) {}

    PathRecord operator*() const { return (*view_)[k_]; }
    iterator& operator++() {
      ++k_;
      return *this;
    }
    iterator operator++(int) {
      iterator old = *this;
      ++k_;
      return old;
    }
    friend bool operator==(const iterator& a, const iterator& b) {
      return a.k_ == b.k_;
    }

   private:
    const PathsView* view_ = nullptr;
    std::size_t k_ = 0;
  };

  [[nodiscard]] iterator begin() const noexcept { return {this, 0}; }
  [[nodiscard]] iterator end() const noexcept { return {this, size_}; }

 private:
  const SanitizedPath* rows_ = nullptr;
  PathColumns cols_{};
  const std::uint32_t* indices_ = nullptr;
  std::size_t size_ = 0;
};

}  // namespace georank::sanitize
