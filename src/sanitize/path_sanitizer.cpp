#include "sanitize/path_sanitizer.hpp"

#include <algorithm>
#include <unordered_set>

#include "infer/clique.hpp"
#include "infer/transit_degree.hpp"
#include "sanitize/filter_detail.hpp"

namespace georank::sanitize {

std::string_view to_string(FilterReason reason) noexcept {
  switch (reason) {
    case FilterReason::kAccepted: return "accepted";
    case FilterReason::kUnstable: return "unstable";
    case FilterReason::kUnallocated: return "unallocated";
    case FilterReason::kLoop: return "loop";
    case FilterReason::kPoisoned: return "poisoned";
    case FilterReason::kVpNoLocation: return "VP no location";
    case FilterReason::kCoveredPrefix: return "covered prefix";
    case FilterReason::kPrefixNoLocation: return "prefix no location";
    case FilterReason::kAsSet: return "as-set";
  }
  return "?";
}

bool is_poisoned(const bgp::AsPath& path, std::span<const bgp::Asn> clique) {
  if (clique.empty()) return false;
  auto in_clique = [&](bgp::Asn a) {
    return std::find(clique.begin(), clique.end(), a) != clique.end();
  };
  // Poisoned: two clique ASes separated by at least one non-clique AS.
  std::ptrdiff_t last_clique = -1;
  for (std::size_t i = 0; i < path.size(); ++i) {
    if (!in_clique(path[i])) continue;
    if (last_clique >= 0 && static_cast<std::size_t>(last_clique) + 1 < i) {
      return true;
    }
    last_clique = static_cast<std::ptrdiff_t>(i);
  }
  return false;
}

PathSanitizer::PathSanitizer(const geo::GeoDatabase& geo_db,
                             const geo::VpGeolocator& vps,
                             const AsnRegistry& registry, SanitizerOptions options)
    : geo_db_(&geo_db), vps_(&vps), registry_(&registry), options_(std::move(options)) {}

SanitizeResult PathSanitizer::run(const bgp::RibCollection& ribs) const {
  SanitizeResult result;

  // ---- Stability: a prefix must appear in all snapshots (§3.1). ----
  detail::DayCounts counts;
  for (const bgp::RibSnapshot& snap : ribs.days) {
    detail::add_day_presence(counts, snap);
  }
  const std::size_t need = detail::stability_need(options_, ribs.days.size());
  auto stable = [&](const bgp::Prefix& p) { return counts.at(p).count >= need; };

  // ---- Clique (for the poisoning filter): explicit or inferred from the
  // stable, loop-free paths. ----
  std::vector<bgp::Asn> clique = options_.clique;
  if (clique.empty()) {
    infer::TransitDegree degrees;
    infer::ObservedAdjacency adjacency;
    for (const bgp::RibSnapshot& snap : ribs.days) {
      for (const bgp::RouteEntry& e : snap.entries) {
        if (!stable(e.prefix)) continue;
        if (e.path.has_as_set()) continue;  // ambiguous hops; excluded below too
        bgp::AsPath collapsed = e.path.without_adjacent_duplicates();
        if (collapsed.has_nonadjacent_duplicate()) continue;
        degrees.add_path(collapsed);
        adjacency.add_path(collapsed);
      }
    }
    clique = infer::infer_clique(degrees, adjacency);
  }
  result.clique = clique;

  // ---- Prefix geolocation over the stable announced set. ----
  std::vector<bgp::Prefix> announced;
  announced.reserve(counts.size());
  for (const auto& [p, days] : counts) {
    if (days.count >= need) announced.push_back(p);
  }
  geo::PrefixGeolocator geolocator{*geo_db_, options_.geo_threshold};
  result.prefix_geo = geolocator.run(announced);

  std::unordered_set<bgp::Prefix, bgp::PrefixHash> covered_set(
      result.prefix_geo.covered.begin(), result.prefix_geo.covered.end());

  // ---- Per-entry filtering, in the paper's precedence order. ----
  detail::FilterWorld world{&counts, need, clique, &result.prefix_geo,
                            &covered_set};
  detail::FilterState state;
  for (const bgp::RibSnapshot& snap : ribs.days) {
    detail::filter_day(snap.day, snap.entries, world, *vps_, *registry_,
                       options_, state, result);
  }
  return result;
}

}  // namespace georank::sanitize
