#include "sanitize/path_sanitizer.hpp"

#include <algorithm>
#include <array>
#include <unordered_map>
#include <unordered_set>

#include "infer/clique.hpp"
#include "infer/transit_degree.hpp"

namespace georank::sanitize {

std::string_view to_string(FilterReason reason) noexcept {
  switch (reason) {
    case FilterReason::kAccepted: return "accepted";
    case FilterReason::kUnstable: return "unstable";
    case FilterReason::kUnallocated: return "unallocated";
    case FilterReason::kLoop: return "loop";
    case FilterReason::kPoisoned: return "poisoned";
    case FilterReason::kVpNoLocation: return "VP no location";
    case FilterReason::kCoveredPrefix: return "covered prefix";
    case FilterReason::kPrefixNoLocation: return "prefix no location";
    case FilterReason::kAsSet: return "as-set";
  }
  return "?";
}

bool is_poisoned(const bgp::AsPath& path, std::span<const bgp::Asn> clique) {
  if (clique.empty()) return false;
  auto in_clique = [&](bgp::Asn a) {
    return std::find(clique.begin(), clique.end(), a) != clique.end();
  };
  // Poisoned: two clique ASes separated by at least one non-clique AS.
  std::ptrdiff_t last_clique = -1;
  for (std::size_t i = 0; i < path.size(); ++i) {
    if (!in_clique(path[i])) continue;
    if (last_clique >= 0 && static_cast<std::size_t>(last_clique) + 1 < i) {
      return true;
    }
    last_clique = static_cast<std::ptrdiff_t>(i);
  }
  return false;
}

PathSanitizer::PathSanitizer(const geo::GeoDatabase& geo_db,
                             const geo::VpGeolocator& vps,
                             const AsnRegistry& registry, SanitizerOptions options)
    : geo_db_(&geo_db), vps_(&vps), registry_(&registry), options_(std::move(options)) {}

SanitizeResult PathSanitizer::run(const bgp::RibCollection& ribs) const {
  SanitizeResult result;
  SanitizeStats& stats = result.stats;

  // ---- Stability: a prefix must appear in all snapshots (§3.1). ----
  std::size_t need = options_.stability_days ? options_.stability_days : ribs.days.size();
  std::unordered_map<bgp::Prefix, std::unordered_set<int>, bgp::PrefixHash> seen_days;
  for (const bgp::RibSnapshot& snap : ribs.days) {
    for (const bgp::RouteEntry& e : snap.entries) {
      seen_days[e.prefix].insert(snap.day);
    }
  }
  auto stable = [&](const bgp::Prefix& p) { return seen_days.at(p).size() >= need; };

  // ---- Clique (for the poisoning filter): explicit or inferred from the
  // stable, loop-free paths. ----
  std::vector<bgp::Asn> clique = options_.clique;
  if (clique.empty()) {
    infer::TransitDegree degrees;
    infer::ObservedAdjacency adjacency;
    for (const bgp::RibSnapshot& snap : ribs.days) {
      for (const bgp::RouteEntry& e : snap.entries) {
        if (!stable(e.prefix)) continue;
        if (e.path.has_as_set()) continue;  // ambiguous hops; excluded below too
        bgp::AsPath collapsed = e.path.without_adjacent_duplicates();
        if (collapsed.has_nonadjacent_duplicate()) continue;
        degrees.add_path(collapsed);
        adjacency.add_path(collapsed);
      }
    }
    clique = infer::infer_clique(degrees, adjacency);
  }
  result.clique = clique;

  // ---- Prefix geolocation over the stable announced set. ----
  std::vector<bgp::Prefix> announced;
  announced.reserve(seen_days.size());
  for (const auto& [p, days] : seen_days) {
    if (days.size() >= need) announced.push_back(p);
  }
  geo::PrefixGeolocator geolocator{*geo_db_, options_.geo_threshold};
  result.prefix_geo = geolocator.run(announced);

  std::unordered_set<bgp::Prefix, bgp::PrefixHash> covered_set(
      result.prefix_geo.covered.begin(), result.prefix_geo.covered.end());

  // ---- Per-entry filtering, in the paper's precedence order. ----
  struct DedupKey {
    bgp::VpId vp;
    bgp::Prefix prefix;
    std::string path;
    bool operator==(const DedupKey&) const = default;
  };
  struct DedupHash {
    std::size_t operator()(const DedupKey& k) const noexcept {
      std::size_t h = bgp::VpIdHash{}(k.vp);
      h ^= bgp::PrefixHash{}(k.prefix) + 0x9e3779b9u + (h << 6) + (h >> 2);
      h ^= std::hash<std::string>{}(k.path) + 0x9e3779b9u + (h << 6) + (h >> 2);
      return h;
    }
  };
  std::unordered_set<DedupKey, DedupHash> dedup;

  std::array<std::size_t, 9> sample_counts{};
  auto sample = [&](FilterReason reason, const bgp::RouteEntry& e, int day) {
    auto idx = static_cast<std::size_t>(reason);
    if (sample_counts[idx] >= options_.samples_per_category) return;
    ++sample_counts[idx];
    result.samples.push_back(RejectedSample{reason, e, day});
  };

  for (const bgp::RibSnapshot& snap : ribs.days) {
    for (const bgp::RouteEntry& e : snap.entries) {
      ++stats.total;
      if (!stable(e.prefix)) {
        ++stats.unstable;
        sample(FilterReason::kUnstable, e, snap.day);
        continue;
      }
      if (e.path.has_as_set()) {
        // The parser flattens AS_SETs to keep the line; the true origin
        // is ambiguous, so the entry is rejected here (first match wins,
        // before the flattened members can read as loops or unallocated).
        ++stats.as_set;
        sample(FilterReason::kAsSet, e, snap.day);
        continue;
      }
      if (!registry_->all_allocated(e.path)) {
        ++stats.unallocated;
        sample(FilterReason::kUnallocated, e, snap.day);
        continue;
      }
      if (e.path.has_nonadjacent_duplicate()) {
        ++stats.loop;
        sample(FilterReason::kLoop, e, snap.day);
        continue;
      }
      if (is_poisoned(e.path, clique)) {
        ++stats.poisoned;
        sample(FilterReason::kPoisoned, e, snap.day);
        continue;
      }
      auto vp_country = vps_->locate(e.vp);
      if (!vp_country) {
        ++stats.vp_no_location;
        sample(FilterReason::kVpNoLocation, e, snap.day);
        continue;
      }
      if (covered_set.contains(e.prefix)) {
        ++stats.covered_prefix;
        sample(FilterReason::kCoveredPrefix, e, snap.day);
        continue;
      }
      geo::CountryCode prefix_country = result.prefix_geo.country_of(e.prefix);
      if (!prefix_country.valid()) {
        ++stats.prefix_no_location;
        sample(FilterReason::kPrefixNoLocation, e, snap.day);
        continue;
      }
      ++stats.accepted;

      // ---- Cleaning: strip route servers, collapse prepending. ----
      bgp::AsPath cleaned =
          e.path.without_ases(options_.route_server_asns).without_adjacent_duplicates();
      if (cleaned.empty()) continue;

      DedupKey key{e.vp, e.prefix, cleaned.to_string()};
      if (!dedup.insert(std::move(key)).second) {
        ++stats.duplicates_merged;
        continue;
      }
      result.paths.push_back(SanitizedPath{
          e.vp, *vp_country, e.prefix, prefix_country,
          result.prefix_geo.weight_of(e.prefix), std::move(cleaned)});
    }
  }
  return result;
}

}  // namespace georank::sanitize
