// Stand-in for the IANA AS-number allocation list (§3.1: "include ASes
// that IANA reports as unassigned" -> rejected).
#pragma once

#include <algorithm>
#include <cstdint>
#include <vector>

#include "bgp/as_path.hpp"

namespace georank::sanitize {

class AsnRegistry {
 public:
  /// Marks [first,last] (inclusive) as allocated.
  void allocate_range(bgp::Asn first, bgp::Asn last);
  void allocate(bgp::Asn asn) { allocate_range(asn, asn); }

  /// Sorts + merges ranges; call after all allocations.
  void finalize();

  [[nodiscard]] bool allocated(bgp::Asn asn) const noexcept;

  /// True iff every hop of the path is allocated.
  [[nodiscard]] bool all_allocated(const bgp::AsPath& path) const noexcept;

  /// A registry that treats EVERY nonzero ASN as allocated.
  [[nodiscard]] static AsnRegistry permissive();

 private:
  struct Range {
    bgp::Asn first, last;
  };
  std::vector<Range> ranges_;
  bool finalized_ = false;
};

}  // namespace georank::sanitize
