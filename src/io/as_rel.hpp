// CAIDA as-rel serialization of AS relationship graphs.
//
// Standard format, one link per line:
//
//   # comments
//   <provider-asn>|<customer-asn>|-1        (p2c)
//   <asn>|<asn>|0                           (p2p)
//
// We add an OPTIONAL fourth field for partial-transit edges (fraction of
// the customer's prefixes announced through the link), absent for
// ordinary full-transit links so the files stay consumable by standard
// CAIDA tooling:
//
//   3356|12389|-1|0.12
#pragma once

#include <iosfwd>
#include <string>

#include "topo/as_graph.hpp"

namespace georank::io {

struct AsRelParseStats {
  std::size_t lines = 0;
  std::size_t links = 0;
  std::size_t comments = 0;
  std::size_t malformed = 0;
};

void write_as_rel(std::ostream& os, const topo::AsGraph& graph);
[[nodiscard]] std::string to_as_rel(const topo::AsGraph& graph);

/// Malformed lines are counted, not fatal; duplicate links keep the
/// first occurrence.
[[nodiscard]] topo::AsGraph read_as_rel(std::istream& is,
                                        AsRelParseStats* stats = nullptr);
[[nodiscard]] topo::AsGraph from_as_rel(std::string_view text,
                                        AsRelParseStats* stats = nullptr);

}  // namespace georank::io
