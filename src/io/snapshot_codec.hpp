// Binary snapshot persistence for the serving layer (FORMATS.md
// "snapshot.grsnap" section documents the layout normatively).
//
// Goals, in order: (1) integrity — every byte of the file is covered by
// a checksum, so a torn write, truncated download or bit flip is
// rejected with a typed error instead of decoding into garbage
// rankings; (2) bit-exact round trips — doubles are persisted as their
// IEEE-754 bit patterns, so encode+decode reproduces identical scores;
// (3) forward compatibility — a section table keyed by tag lets future
// versions append sections old readers skip.
//
// Layout (all integers little-endian):
//
//   [0..7]   magic "GRSNAP01"
//   u32      version (currently 1; newer majors are rejected)
//   u32      section_count
//   u64      header_checksum   FNV-1a 64 over the section table bytes
//   table    section_count x { u32 tag, u32 reserved=0,
//                              u64 offset, u64 size, u64 checksum }
//   payload  section bytes at the table-declared offsets
//
// Required sections: "META" (id, created_unix, label), "CTRY" (the
// country census with all four rankings), "HLTH" (health report +
// policy). Unknown tags are ignored.
#pragma once

#include <cstdint>
#include <iosfwd>
#include <stdexcept>
#include <string>
#include <string_view>

#include "serve/snapshot.hpp"

namespace georank::io {

inline constexpr std::uint32_t kSnapshotVersion = 1;
inline constexpr std::string_view kSnapshotMagic = "GRSNAP01";

/// Rejection reasons, one per structural invariant the decoder checks.
enum class SnapshotError : std::uint8_t {
  kBadMagic,
  kBadVersion,
  kTruncated,
  kHeaderChecksum,
  kSectionChecksum,
  kMissingSection,
  kMalformedSection,
};

[[nodiscard]] std::string_view to_string(SnapshotError error) noexcept;

class SnapshotDecodeError : public std::runtime_error {
 public:
  SnapshotDecodeError(SnapshotError error, const std::string& detail);
  [[nodiscard]] SnapshotError error() const noexcept { return error_; }

 private:
  SnapshotError error_;
};

/// FNV-1a 64 over `bytes` — the checksum the format uses throughout.
[[nodiscard]] std::uint64_t snapshot_checksum(std::string_view bytes) noexcept;

[[nodiscard]] std::string encode_snapshot(const serve::Snapshot& snapshot);

/// Throws SnapshotDecodeError on any structural or integrity violation;
/// never returns a partially decoded snapshot.
[[nodiscard]] serve::Snapshot decode_snapshot(std::string_view bytes);

void write_snapshot(std::ostream& os, const serve::Snapshot& snapshot);

/// Slurps the stream and decodes. Throws SnapshotDecodeError (including
/// kTruncated for an unreadable/empty stream).
[[nodiscard]] serve::Snapshot read_snapshot(std::istream& is);

}  // namespace georank::io
