#include "io/as_rel.hpp"

#include <cstdio>
#include <istream>
#include <ostream>
#include <sstream>

#include "util/strings.hpp"

namespace georank::io {

void write_as_rel(std::ostream& os, const topo::AsGraph& graph) {
  os << "# georank as-rel: <provider|peer>|<customer|peer>|<-1 p2c, 0 p2p>"
        "[|export-fraction]\n";
  for (bgp::Asn a : graph.ases()) {
    topo::NodeId ia = graph.id_of(a);
    for (const topo::Neighbor& n : graph.neighbors(ia)) {
      bgp::Asn b = graph.asn_of(n.id);
      if (n.rel == topo::Rel::kPeer) {
        if (a < b) os << a << '|' << b << "|0\n";
      } else if (n.rel == topo::Rel::kCustomer) {
        // a is the provider of b.
        os << a << '|' << b << "|-1";
        if (n.export_up < 1.0f) {
          char buf[16];
          std::snprintf(buf, sizeof buf, "|%.4f", static_cast<double>(n.export_up));
          os << buf;
        }
        os << '\n';
      }
    }
  }
}

std::string to_as_rel(const topo::AsGraph& graph) {
  std::ostringstream os;
  write_as_rel(os, graph);
  return os.str();
}

topo::AsGraph read_as_rel(std::istream& is, AsRelParseStats* stats) {
  AsRelParseStats local;
  topo::AsGraph graph;
  std::string line;
  while (std::getline(is, line)) {
    ++local.lines;
    std::string_view trimmed = util::trim(line);
    if (trimmed.empty() || trimmed.front() == '#') {
      ++local.comments;
      continue;
    }
    auto fields = util::split(trimmed, '|');
    if (fields.size() < 3 || fields.size() > 4) {
      ++local.malformed;
      continue;
    }
    auto a = util::parse_int<bgp::Asn>(fields[0]);
    auto b = util::parse_int<bgp::Asn>(fields[1]);
    auto rel = util::parse_int<int>(fields[2]);
    if (!a || !b || !rel || *a == 0 || *b == 0 || *a == *b ||
        (*rel != -1 && *rel != 0)) {
      ++local.malformed;
      continue;
    }
    double fraction = 1.0;
    if (fields.size() == 4) {
      try {
        fraction = std::stod(std::string(fields[3]));
      } catch (...) {
        ++local.malformed;
        continue;
      }
      if (fraction <= 0.0 || fraction > 1.0) {
        ++local.malformed;
        continue;
      }
    }
    if (graph.relationship(*a, *b)) continue;  // duplicate: keep first
    if (*rel == 0) {
      graph.add_p2p(*a, *b);
    } else {
      graph.add_p2c(*a, *b, fraction);
    }
    ++local.links;
  }
  if (stats) *stats = local;
  return graph;
}

topo::AsGraph from_as_rel(std::string_view text, AsRelParseStats* stats) {
  std::istringstream is{std::string(text)};
  return read_as_rel(is, stats);
}

}  // namespace georank::io
