// Little-endian wire helpers shared by the binary persistence codecs
// (io::snapshot_codec keeps private copies for historical reasons; the
// live-durability formats — GRJRNL01 journals and GRCKPT01 checkpoints
// in src/live — build on these). Integers are written least-significant
// byte first regardless of host order; doubles travel as their IEEE-754
// bit patterns, so round trips are bit-exact. The reader is a
// bounds-checked cursor that reports truncation through a bool status
// instead of exceptions, because the journal reader treats a short read
// as a torn tail to truncate, not an error to raise.
#pragma once

#include <bit>
#include <cstddef>
#include <cstdint>
#include <string>
#include <string_view>

namespace georank::io::wire {

inline void put_u8(std::string& out, std::uint8_t v) {
  out.push_back(static_cast<char>(v));
}

inline void put_u32(std::string& out, std::uint32_t v) {
  for (int shift = 0; shift < 32; shift += 8) {
    put_u8(out, static_cast<std::uint8_t>((v >> shift) & 0xff));
  }
}

inline void put_u64(std::string& out, std::uint64_t v) {
  for (int shift = 0; shift < 64; shift += 8) {
    put_u8(out, static_cast<std::uint8_t>((v >> shift) & 0xff));
  }
}

inline void put_f64(std::string& out, double v) {
  put_u64(out, std::bit_cast<std::uint64_t>(v));
}

inline void put_bytes(std::string& out, std::string_view bytes) {
  put_u32(out, static_cast<std::uint32_t>(bytes.size()));
  out.append(bytes);
}

/// Bounds-checked little-endian cursor. Every accessor returns false on
/// truncation and leaves the output untouched; ok() stays false from
/// the first failure on, so a decode loop can check once at the end.
class Reader {
 public:
  explicit Reader(std::string_view bytes) : bytes_(bytes) {}

  bool u8(std::uint8_t& out) {
    if (!need(1)) return false;
    out = static_cast<std::uint8_t>(bytes_[pos_++]);
    return true;
  }

  bool u32(std::uint32_t& out) {
    if (!need(4)) return false;
    out = 0;
    for (int shift = 0; shift < 32; shift += 8) {
      out |= static_cast<std::uint32_t>(
                 static_cast<unsigned char>(bytes_[pos_++]))
             << shift;
    }
    return true;
  }

  bool u64(std::uint64_t& out) {
    if (!need(8)) return false;
    out = 0;
    for (int shift = 0; shift < 64; shift += 8) {
      out |= static_cast<std::uint64_t>(
                 static_cast<unsigned char>(bytes_[pos_++]))
             << shift;
    }
    return true;
  }

  bool f64(double& out) {
    std::uint64_t raw = 0;
    if (!u64(raw)) return false;
    out = std::bit_cast<double>(raw);
    return true;
  }

  bool bytes(std::string& out) {
    std::uint32_t n = 0;
    if (!u32(n) || !need(n)) return false;
    out.assign(bytes_.substr(pos_, n));
    pos_ += n;
    return true;
  }

  [[nodiscard]] bool ok() const noexcept { return ok_; }
  [[nodiscard]] bool exhausted() const noexcept { return pos_ == bytes_.size(); }
  [[nodiscard]] std::size_t position() const noexcept { return pos_; }
  [[nodiscard]] std::size_t remaining() const noexcept {
    return bytes_.size() - pos_;
  }

 private:
  bool need(std::size_t n) {
    if (!ok_ || bytes_.size() - pos_ < n) {
      ok_ = false;
      return false;
    }
    return true;
  }

  std::string_view bytes_;
  std::size_t pos_ = 0;
  bool ok_ = true;
};

}  // namespace georank::io::wire
