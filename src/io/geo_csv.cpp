#include "io/geo_csv.hpp"

#include <istream>
#include <ostream>
#include <sstream>

#include "bgp/prefix.hpp"
#include "util/strings.hpp"

namespace georank::io {

namespace {

/// Shared tolerant line loop: calls `handle(fields)` -> bool parsed.
template <typename Handler>
void read_lines(std::istream& is, CsvParseStats* stats, Handler&& handle) {
  CsvParseStats local;
  std::string line;
  while (std::getline(is, line)) {
    ++local.lines;
    std::string_view trimmed = util::trim(line);
    if (trimmed.empty() || trimmed.front() == '#') {
      ++local.comments;
      continue;
    }
    if (handle(util::split(trimmed, ','))) {
      ++local.parsed;
    } else {
      ++local.malformed;
    }
  }
  if (stats) *stats = local;
}

}  // namespace

void write_geo_csv(std::ostream& os, const geo::GeoDatabase& db) {
  os << "# first_ip,last_ip,country\n";
  for (const geo::GeoRange& r : db.ranges()) {
    os << bgp::format_ipv4(r.first) << ',' << bgp::format_ipv4(r.last) << ','
       << r.country.to_string() << '\n';
  }
}

std::string to_geo_csv(const geo::GeoDatabase& db) {
  std::ostringstream os;
  write_geo_csv(os, db);
  return os.str();
}

geo::GeoDatabase read_geo_csv(std::istream& is, CsvParseStats* stats) {
  geo::GeoDatabase db;
  read_lines(is, stats, [&](const auto& fields) {
    if (fields.size() != 3) return false;
    auto first = bgp::parse_ipv4(fields[0]);
    auto last = bgp::parse_ipv4(fields[1]);
    auto country = geo::CountryCode::parse(fields[2]);
    if (!first || !last || !country || *first > *last) return false;
    db.add_range(*first, *last, *country);
    return true;
  });
  db.finalize();
  return db;
}

geo::GeoDatabase from_geo_csv(std::string_view text, CsvParseStats* stats) {
  std::istringstream is{std::string(text)};
  return read_geo_csv(is, stats);
}

void write_collectors_csv(std::ostream& os, const geo::VpGeolocator& vps) {
  os << "# name,country,multihop\n";
  for (const geo::Collector& c : vps.collectors()) {
    os << c.name << ',' << c.country.to_string() << ',' << (c.multihop ? 1 : 0)
       << '\n';
  }
}

void write_vps_csv(std::ostream& os, const geo::VpGeolocator& vps) {
  os << "# peer_ip,peer_asn,collector\n";
  for (const auto& [vp, collector] : vps.registrations()) {
    os << bgp::format_ipv4(vp.ip) << ',' << vp.asn << ',' << collector << '\n';
  }
}

geo::VpGeolocator read_vp_geolocator(std::istream& collectors, std::istream& vps,
                                     CsvParseStats* stats) {
  geo::VpGeolocator out;
  CsvParseStats collector_stats, vp_stats;
  read_lines(collectors, &collector_stats, [&](const auto& fields) {
    if (fields.size() != 3) return false;
    auto country = geo::CountryCode::parse(fields[1]);
    auto multihop = util::parse_int<int>(fields[2]);
    if (fields[0].empty() || !country || !multihop ||
        (*multihop != 0 && *multihop != 1)) {
      return false;
    }
    try {
      out.add_collector(
          geo::Collector{std::string(fields[0]), *country, *multihop == 1});
    } catch (const std::invalid_argument&) {
      return false;  // duplicate collector name
    }
    return true;
  });
  read_lines(vps, &vp_stats, [&](const auto& fields) {
    if (fields.size() != 3) return false;
    auto ip = bgp::parse_ipv4(fields[0]);
    auto asn = util::parse_int<bgp::Asn>(fields[1]);
    if (!ip || !asn || *asn == 0) return false;
    try {
      out.register_vp(bgp::VpId{*ip, *asn}, fields[2]);
    } catch (const std::invalid_argument&) {
      return false;  // unknown collector
    }
    return true;
  });
  if (stats) {
    stats->lines = collector_stats.lines + vp_stats.lines;
    stats->parsed = collector_stats.parsed + vp_stats.parsed;
    stats->comments = collector_stats.comments + vp_stats.comments;
    stats->malformed = collector_stats.malformed + vp_stats.malformed;
  }
  return out;
}

}  // namespace georank::io
