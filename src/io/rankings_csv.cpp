#include "io/rankings_csv.hpp"

#include <cstdio>
#include <istream>
#include <ostream>
#include <sstream>

#include "util/strings.hpp"

namespace georank::io {

namespace {

void write_entries(std::ostream& os, const rank::Ranking& ranking,
                   const NameResolver& names) {
  std::size_t pos = 0;
  char buf[32];
  for (const rank::ScoredAs& e : ranking.entries()) {
    std::snprintf(buf, sizeof buf, "%.9g", e.score);
    os << ++pos << ',' << e.asn << ',' << buf;
    if (names) os << ',' << names(e.asn);
    os << '\n';
  }
}

}  // namespace

void write_ranking_csv(std::ostream& os, const rank::Ranking& ranking,
                       const NameResolver& names) {
  os << (names ? "# rank,asn,score,name\n" : "# rank,asn,score\n");
  write_entries(os, ranking, names);
}

std::string to_ranking_csv(const rank::Ranking& ranking, const NameResolver& names) {
  std::ostringstream os;
  write_ranking_csv(os, ranking, names);
  return os.str();
}

rank::Ranking read_ranking_csv(std::istream& is) {
  std::vector<rank::ScoredAs> scores;
  std::string line;
  while (std::getline(is, line)) {
    std::string_view trimmed = util::trim(line);
    if (trimmed.empty() || trimmed.front() == '#') continue;
    auto fields = util::split(trimmed, ',');
    if (fields.size() < 3) continue;
    auto asn = util::parse_int<bgp::Asn>(fields[1]);
    if (!asn || *asn == 0) continue;
    double score = 0.0;
    try {
      score = std::stod(std::string(fields[2]));
    } catch (...) {
      continue;
    }
    scores.push_back(rank::ScoredAs{*asn, score});
  }
  return rank::Ranking::from_scores(std::move(scores));
}

rank::Ranking from_ranking_csv(std::string_view text) {
  std::istringstream is{std::string(text)};
  return read_ranking_csv(is);
}

rank::Ranking read_metric_from_country_csv(std::istream& is,
                                           std::string_view metric) {
  std::vector<rank::ScoredAs> scores;
  std::string line;
  while (std::getline(is, line)) {
    std::string_view trimmed = util::trim(line);
    if (trimmed.empty() || trimmed.front() == '#') continue;
    auto fields = util::split(trimmed, ',');
    if (fields.size() < 5 || fields[1] != metric) continue;
    auto asn = util::parse_int<bgp::Asn>(fields[3]);
    if (!asn || *asn == 0) continue;
    double score = 0.0;
    try {
      score = std::stod(std::string(fields[4]));
    } catch (...) {
      continue;
    }
    scores.push_back(rank::ScoredAs{*asn, score});
  }
  return rank::Ranking::from_scores(std::move(scores));
}

void write_country_metrics_csv(std::ostream& os, const core::CountryMetrics& m,
                               const NameResolver& names) {
  os << "# country,metric,rank,asn,score" << (names ? ",name" : "") << '\n';
  auto dump = [&](const char* metric, const rank::Ranking& ranking) {
    std::size_t pos = 0;
    char buf[32];
    for (const rank::ScoredAs& e : ranking.entries()) {
      std::snprintf(buf, sizeof buf, "%.9g", e.score);
      os << m.country.to_string() << ',' << metric << ',' << ++pos << ','
         << e.asn << ',' << buf;
      if (names) os << ',' << names(e.asn);
      os << '\n';
    }
  };
  dump("CCI", m.cci);
  dump("AHI", m.ahi);
  dump("CCN", m.ccn);
  dump("AHN", m.ahn);
}

}  // namespace georank::io
