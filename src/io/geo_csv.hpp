// CSV serialization for the geolocation inputs the pipeline consumes:
//
//   geo database:   first_ip,last_ip,country          (one range per line)
//   collectors:     name,country,multihop             (multihop: 0/1)
//   vantage points: peer_ip,peer_asn,collector_name
//
// All readers are tolerant: malformed lines are counted, not fatal, and
// '#' lines are comments — matching how the collector projects publish
// their metadata.
#pragma once

#include <iosfwd>
#include <string>

#include "geo/geo_db.hpp"
#include "geo/vp_geolocator.hpp"

namespace georank::io {

struct CsvParseStats {
  std::size_t lines = 0;
  std::size_t parsed = 0;
  std::size_t comments = 0;
  std::size_t malformed = 0;
};

// ---- Geo database ----
void write_geo_csv(std::ostream& os, const geo::GeoDatabase& db);
[[nodiscard]] std::string to_geo_csv(const geo::GeoDatabase& db);
/// The returned database is already finalize()d.
[[nodiscard]] geo::GeoDatabase read_geo_csv(std::istream& is,
                                            CsvParseStats* stats = nullptr);
[[nodiscard]] geo::GeoDatabase from_geo_csv(std::string_view text,
                                            CsvParseStats* stats = nullptr);

// ---- Collectors + VP registrations (one combined VpGeolocator) ----
void write_collectors_csv(std::ostream& os, const geo::VpGeolocator& vps);
void write_vps_csv(std::ostream& os, const geo::VpGeolocator& vps);
[[nodiscard]] geo::VpGeolocator read_vp_geolocator(std::istream& collectors,
                                                   std::istream& vps,
                                                   CsvParseStats* stats = nullptr);

}  // namespace georank::io
