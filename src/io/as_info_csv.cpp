#include "io/as_info_csv.hpp"

#include <algorithm>
#include <istream>
#include <ostream>
#include <vector>

#include "util/strings.hpp"

namespace georank::io {

void write_as_info_csv(std::ostream& os, const AsInfoMap& info) {
  os << "# asn,registered,name\n";
  std::vector<bgp::Asn> order;
  order.reserve(info.size());
  for (const auto& [asn, rec] : info) order.push_back(asn);
  std::sort(order.begin(), order.end());
  for (bgp::Asn asn : order) {
    const AsInfoRecord& rec = info.at(asn);
    os << asn << ',' << rec.registered.to_string() << ',' << rec.name << '\n';
  }
}

AsInfoMap read_as_info_csv(std::istream& is, CsvParseStats* stats) {
  CsvParseStats local;
  AsInfoMap out;
  std::string line;
  while (std::getline(is, line)) {
    ++local.lines;
    std::string_view trimmed = util::trim(line);
    if (trimmed.empty() || trimmed.front() == '#') {
      ++local.comments;
      continue;
    }
    auto fields = util::split(trimmed, ',');
    if (fields.size() < 2) {
      ++local.malformed;
      continue;
    }
    auto asn = util::parse_int<bgp::Asn>(fields[0]);
    auto country = geo::CountryCode::parse(fields[1]);
    if (!asn || *asn == 0 || !country) {
      ++local.malformed;
      continue;
    }
    AsInfoRecord rec;
    rec.registered = *country;
    if (fields.size() >= 3) rec.name = std::string(fields[2]);
    out[*asn] = std::move(rec);
    ++local.parsed;
  }
  if (stats) *stats = local;
  return out;
}

rank::AsRegistry to_registry(const AsInfoMap& info) {
  rank::AsRegistry out;
  out.reserve(info.size());
  for (const auto& [asn, rec] : info) out.emplace(asn, rec.registered);
  return out;
}

}  // namespace georank::io
