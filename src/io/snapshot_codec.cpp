#include "io/snapshot_codec.hpp"

#include <bit>
#include <cstring>
#include <istream>
#include <ostream>
#include <sstream>

namespace georank::io {
namespace {

// ---------------------------------------------------------------- writer

void put_u8(std::string& out, std::uint8_t v) {
  out.push_back(static_cast<char>(v));
}

void put_u16(std::string& out, std::uint16_t v) {
  put_u8(out, static_cast<std::uint8_t>(v & 0xff));
  put_u8(out, static_cast<std::uint8_t>(v >> 8));
}

void put_u32(std::string& out, std::uint32_t v) {
  for (int shift = 0; shift < 32; shift += 8) {
    put_u8(out, static_cast<std::uint8_t>((v >> shift) & 0xff));
  }
}

void put_u64(std::string& out, std::uint64_t v) {
  for (int shift = 0; shift < 64; shift += 8) {
    put_u8(out, static_cast<std::uint8_t>((v >> shift) & 0xff));
  }
}

void put_f64(std::string& out, double v) {
  put_u64(out, std::bit_cast<std::uint64_t>(v));
}

void put_string(std::string& out, std::string_view s) {
  put_u32(out, static_cast<std::uint32_t>(s.size()));
  out.append(s);
}

void put_ranking(std::string& out, const rank::Ranking& ranking) {
  put_u64(out, ranking.size());
  for (const rank::ScoredAs& entry : ranking.entries()) {
    put_u32(out, entry.asn);
    put_f64(out, entry.score);
  }
}

// ---------------------------------------------------------------- reader

/// Bounds-checked cursor over one checksummed section: the checksum
/// already matched, so an overrun means the section STRUCTURE is wrong,
/// not that bytes went missing — every violation is kMalformedSection.
class SectionReader {
 public:
  SectionReader(std::string_view bytes, std::string_view section)
      : bytes_(bytes), section_(section) {}

  [[nodiscard]] std::uint8_t u8() {
    need(1);
    return static_cast<std::uint8_t>(bytes_[pos_++]);
  }

  [[nodiscard]] std::uint16_t u16() {
    std::uint16_t lo = u8(), hi = u8();
    return static_cast<std::uint16_t>(lo | (hi << 8));
  }

  [[nodiscard]] std::uint32_t u32() {
    std::uint32_t v = 0;
    for (int shift = 0; shift < 32; shift += 8) {
      v |= static_cast<std::uint32_t>(u8()) << shift;
    }
    return v;
  }

  [[nodiscard]] std::uint64_t u64() {
    std::uint64_t v = 0;
    for (int shift = 0; shift < 64; shift += 8) {
      v |= static_cast<std::uint64_t>(u8()) << shift;
    }
    return v;
  }

  [[nodiscard]] double f64() { return std::bit_cast<double>(u64()); }

  [[nodiscard]] std::string str() {
    std::uint32_t n = u32();
    need(n);
    std::string s(bytes_.substr(pos_, n));
    pos_ += n;
    return s;
  }

  /// A count of records each at least `record_size` bytes; rejects
  /// counts the remaining bytes cannot possibly hold, so a corrupt
  /// count fails fast instead of driving a giant allocation.
  [[nodiscard]] std::uint64_t count(std::size_t record_size) {
    std::uint64_t n = u64();
    if (n > (bytes_.size() - pos_) / record_size) {
      fail("impossible record count " + std::to_string(n));
    }
    return n;
  }

  [[nodiscard]] bool exhausted() const noexcept { return pos_ == bytes_.size(); }

  [[noreturn]] void fail(const std::string& why) const {
    throw SnapshotDecodeError(SnapshotError::kMalformedSection,
                              std::string(section_) + ": " + why);
  }

 private:
  void need(std::size_t n) {
    if (bytes_.size() - pos_ < n) fail("section ends mid-record");
  }

  std::string_view bytes_;
  std::string_view section_;
  std::size_t pos_ = 0;
};

rank::Ranking read_ranking(SectionReader& in) {
  std::uint64_t n = in.count(12);  // u32 asn + f64 score
  std::vector<rank::ScoredAs> scores;
  scores.reserve(n);
  for (std::uint64_t i = 0; i < n; ++i) {
    rank::ScoredAs entry;
    entry.asn = in.u32();
    entry.score = in.f64();
    scores.push_back(entry);
  }
  // Rankings are always produced by from_scores, whose (score desc, asn
  // asc) order is a strict total order per AS — re-sorting the already
  // sorted entries reproduces the identical sequence, bit for bit.
  return rank::Ranking::from_scores(std::move(scores));
}

robust::ConfidenceTier read_tier(SectionReader& in) {
  std::uint8_t raw = in.u8();
  if (raw > static_cast<std::uint8_t>(robust::ConfidenceTier::kInsufficient)) {
    in.fail("confidence tier " + std::to_string(raw) + " out of range");
  }
  return static_cast<robust::ConfidenceTier>(raw);
}

geo::CountryCode read_country(SectionReader& in) {
  std::uint16_t raw = in.u16();
  char text[2] = {static_cast<char>(raw >> 8), static_cast<char>(raw & 0xff)};
  auto cc = geo::CountryCode::parse(std::string_view(text, 2));
  if (!cc) in.fail("country code 0x" + std::to_string(raw) + " not two letters");
  return *cc;
}

// -------------------------------------------------------------- sections

constexpr std::uint32_t section_tag(const char (&name)[5]) {
  return static_cast<std::uint32_t>(static_cast<unsigned char>(name[0])) |
         static_cast<std::uint32_t>(static_cast<unsigned char>(name[1])) << 8 |
         static_cast<std::uint32_t>(static_cast<unsigned char>(name[2])) << 16 |
         static_cast<std::uint32_t>(static_cast<unsigned char>(name[3])) << 24;
}

constexpr std::uint32_t kTagMeta = section_tag("META");
constexpr std::uint32_t kTagCountries = section_tag("CTRY");
constexpr std::uint32_t kTagHealth = section_tag("HLTH");

std::string encode_meta(const serve::SnapshotMeta& meta) {
  std::string out;
  put_u64(out, meta.id);
  put_u64(out, meta.created_unix);
  put_string(out, meta.label);
  return out;
}

void decode_meta(std::string_view bytes, serve::SnapshotMeta& meta) {
  SectionReader in{bytes, "META"};
  meta.id = in.u64();
  meta.created_unix = in.u64();
  meta.label = in.str();
  if (!in.exhausted()) in.fail("trailing bytes");
}

std::string encode_countries(const std::vector<core::CountryMetrics>& countries) {
  std::string out;
  put_u64(out, countries.size());
  for (const core::CountryMetrics& m : countries) {
    put_u16(out, m.country.raw());
    put_u8(out, static_cast<std::uint8_t>(m.confidence));
    put_u8(out, 0);  // pad
    put_f64(out, m.geo_consensus);
    put_u64(out, m.national_vps);
    put_u64(out, m.international_vps);
    put_u64(out, m.national_addresses);
    put_u64(out, m.international_addresses);
    put_ranking(out, m.cci);
    put_ranking(out, m.ccn);
    put_ranking(out, m.ahi);
    put_ranking(out, m.ahn);
  }
  return out;
}

void decode_countries(std::string_view bytes,
                      std::vector<core::CountryMetrics>& countries) {
  SectionReader in{bytes, "CTRY"};
  std::uint64_t n = in.count(44);  // fixed fields per country
  countries.reserve(n);
  geo::CountryCode previous;
  for (std::uint64_t i = 0; i < n; ++i) {
    core::CountryMetrics m;
    m.country = read_country(in);
    if (i > 0 && !(previous < m.country)) {
      in.fail("countries not strictly sorted");
    }
    previous = m.country;
    m.confidence = read_tier(in);
    (void)in.u8();  // pad
    m.geo_consensus = in.f64();
    m.national_vps = in.u64();
    m.international_vps = in.u64();
    m.national_addresses = in.u64();
    m.international_addresses = in.u64();
    m.cci = read_ranking(in);
    m.ccn = read_ranking(in);
    m.ahi = read_ranking(in);
    m.ahn = read_ranking(in);
    countries.push_back(std::move(m));
  }
  if (!in.exhausted()) in.fail("trailing bytes");
}

std::string encode_health(const robust::HealthReport& health) {
  std::string out;
  put_u64(out, health.policy.min_vps);
  put_f64(out, health.policy.min_geo_consensus);
  put_f64(out, health.ingest_drop_rate);
  put_f64(out, health.sanitize_drop_rate);
  put_u64(out, health.countries.size());
  for (const robust::CountryHealth& h : health.countries) {
    put_u16(out, h.country.raw());
    put_u8(out, static_cast<std::uint8_t>(h.national_tier));
    put_u8(out, static_cast<std::uint8_t>(h.international_tier));
    put_u8(out, static_cast<std::uint8_t>(h.geo_tier));
    put_u8(out, static_cast<std::uint8_t>(h.overall));
    put_u64(out, h.national_vps);
    put_u64(out, h.international_vps);
    put_u64(out, h.accepted_prefixes);
    put_u64(out, h.geolocated_addresses);
    put_u64(out, h.no_consensus_prefixes);
    put_u64(out, h.no_consensus_addresses);
  }
  return out;
}

void decode_health(std::string_view bytes, robust::HealthReport& health) {
  SectionReader in{bytes, "HLTH"};
  health.policy.min_vps = in.u64();
  health.policy.min_geo_consensus = in.f64();
  health.ingest_drop_rate = in.f64();
  health.sanitize_drop_rate = in.f64();
  std::uint64_t n = in.count(54);  // bytes per country record
  health.countries.reserve(n);
  for (std::uint64_t i = 0; i < n; ++i) {
    robust::CountryHealth h;
    h.country = read_country(in);
    h.national_tier = read_tier(in);
    h.international_tier = read_tier(in);
    h.geo_tier = read_tier(in);
    h.overall = read_tier(in);
    h.national_vps = in.u64();
    h.international_vps = in.u64();
    h.accepted_prefixes = in.u64();
    h.geolocated_addresses = in.u64();
    h.no_consensus_prefixes = in.u64();
    h.no_consensus_addresses = in.u64();
    health.countries.push_back(h);
  }
  if (!in.exhausted()) in.fail("trailing bytes");
}

struct SectionEntry {
  std::uint32_t tag = 0;
  std::uint64_t offset = 0;
  std::uint64_t size = 0;
  std::uint64_t checksum = 0;
};

constexpr std::size_t kFixedHeaderSize = 8 + 4 + 4 + 8;  // magic, ver, n, csum
constexpr std::size_t kTableEntrySize = 4 + 4 + 8 + 8 + 8;

}  // namespace

std::string_view to_string(SnapshotError error) noexcept {
  switch (error) {
    case SnapshotError::kBadMagic: return "bad magic";
    case SnapshotError::kBadVersion: return "unsupported version";
    case SnapshotError::kTruncated: return "truncated";
    case SnapshotError::kHeaderChecksum: return "header checksum mismatch";
    case SnapshotError::kSectionChecksum: return "section checksum mismatch";
    case SnapshotError::kMissingSection: return "missing section";
    case SnapshotError::kMalformedSection: return "malformed section";
  }
  return "?";
}

SnapshotDecodeError::SnapshotDecodeError(SnapshotError error,
                                         const std::string& detail)
    : std::runtime_error("snapshot decode: " + std::string(to_string(error)) +
                         " (" + detail + ")"),
      error_(error) {}

std::uint64_t snapshot_checksum(std::string_view bytes) noexcept {
  // FNV-1a 64: simple, dependency-free, and byte-order independent.
  std::uint64_t hash = 14695981039346656037ull;
  for (char c : bytes) {
    hash ^= static_cast<unsigned char>(c);
    hash *= 1099511628211ull;
  }
  return hash;
}

std::string encode_snapshot(const serve::Snapshot& snapshot) {
  const std::string sections[3] = {
      encode_meta(snapshot.meta),
      encode_countries(snapshot.countries),
      encode_health(snapshot.health),
  };
  const std::uint32_t tags[3] = {kTagMeta, kTagCountries, kTagHealth};

  const std::size_t header_size = kFixedHeaderSize + 3 * kTableEntrySize;
  std::string table;
  std::uint64_t offset = header_size;
  for (int i = 0; i < 3; ++i) {
    put_u32(table, tags[i]);
    put_u32(table, 0);  // reserved
    put_u64(table, offset);
    put_u64(table, sections[i].size());
    put_u64(table, snapshot_checksum(sections[i]));
    offset += sections[i].size();
  }

  std::string out;
  out.reserve(static_cast<std::size_t>(offset));
  out.append(kSnapshotMagic);
  put_u32(out, kSnapshotVersion);
  put_u32(out, 3);
  put_u64(out, snapshot_checksum(table));
  out += table;
  for (const std::string& section : sections) out += section;
  return out;
}

serve::Snapshot decode_snapshot(std::string_view bytes) {
  auto truncated = [&](const std::string& what) {
    throw SnapshotDecodeError(SnapshotError::kTruncated, what);
  };
  if (bytes.size() < kFixedHeaderSize) truncated("no room for the header");
  if (bytes.substr(0, kSnapshotMagic.size()) != kSnapshotMagic) {
    throw SnapshotDecodeError(SnapshotError::kBadMagic,
                              "expected " + std::string(kSnapshotMagic));
  }
  SectionReader header{bytes.substr(8, 16), "header"};
  std::uint32_t version = header.u32();
  if (version == 0 || version > kSnapshotVersion) {
    throw SnapshotDecodeError(SnapshotError::kBadVersion,
                              "version " + std::to_string(version) +
                                  ", this reader speaks <= " +
                                  std::to_string(kSnapshotVersion));
  }
  std::uint32_t section_count = header.u32();
  std::uint64_t header_checksum = header.u64();
  if (section_count >
      (bytes.size() - kFixedHeaderSize) / kTableEntrySize) {
    truncated("section table larger than the file");
  }
  std::string_view table = bytes.substr(
      kFixedHeaderSize, static_cast<std::size_t>(section_count) * kTableEntrySize);
  if (snapshot_checksum(table) != header_checksum) {
    throw SnapshotDecodeError(SnapshotError::kHeaderChecksum,
                              "section table corrupted");
  }

  SectionReader table_reader{table, "section table"};
  serve::Snapshot snapshot;
  bool have_meta = false, have_countries = false, have_health = false;
  for (std::uint32_t i = 0; i < section_count; ++i) {
    SectionEntry entry;
    entry.tag = table_reader.u32();
    (void)table_reader.u32();  // reserved
    entry.offset = table_reader.u64();
    entry.size = table_reader.u64();
    entry.checksum = table_reader.u64();
    if (entry.offset > bytes.size() || entry.size > bytes.size() - entry.offset) {
      truncated("section " + std::to_string(i) + " extends past end of file");
    }
    std::string_view payload = bytes.substr(
        static_cast<std::size_t>(entry.offset), static_cast<std::size_t>(entry.size));
    if (snapshot_checksum(payload) != entry.checksum) {
      throw SnapshotDecodeError(SnapshotError::kSectionChecksum,
                                "section " + std::to_string(i));
    }
    if (entry.tag == kTagMeta) {
      decode_meta(payload, snapshot.meta);
      have_meta = true;
    } else if (entry.tag == kTagCountries) {
      decode_countries(payload, snapshot.countries);
      have_countries = true;
    } else if (entry.tag == kTagHealth) {
      decode_health(payload, snapshot.health);
      have_health = true;
    }
    // Unknown tags: checksum-verified, then skipped (forward compat).
  }
  if (!have_meta || !have_countries || !have_health) {
    throw SnapshotDecodeError(
        SnapshotError::kMissingSection,
        !have_meta ? "META" : (!have_countries ? "CTRY" : "HLTH"));
  }
  return snapshot;
}

void write_snapshot(std::ostream& os, const serve::Snapshot& snapshot) {
  const std::string bytes = encode_snapshot(snapshot);
  os.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
}

serve::Snapshot read_snapshot(std::istream& is) {
  std::ostringstream buf;
  buf << is.rdbuf();
  return decode_snapshot(buf.str());
}

}  // namespace georank::io
