// CSV for AS metadata: registration country (the AHC input) and display
// names. Format: asn,registered,name — name may contain commas-free text.
#pragma once

#include <iosfwd>
#include <string>
#include <unordered_map>

#include "io/geo_csv.hpp"
#include "rank/ahc.hpp"

namespace georank::io {

struct AsInfoRecord {
  geo::CountryCode registered;
  std::string name;
};

using AsInfoMap = std::unordered_map<bgp::Asn, AsInfoRecord>;

void write_as_info_csv(std::ostream& os, const AsInfoMap& info);
[[nodiscard]] AsInfoMap read_as_info_csv(std::istream& is,
                                         CsvParseStats* stats = nullptr);

/// Projection to the registry type AHC consumes.
[[nodiscard]] rank::AsRegistry to_registry(const AsInfoMap& info);

}  // namespace georank::io
