// CSV export of rankings and country metrics — the "we will share our
// inferences" artifact format (paper §1, contribution 5).
//
//   rankings:  rank,asn,score[,name]
//   country metrics (long form): country,metric,rank,asn,score
#pragma once

#include <functional>
#include <iosfwd>
#include <string>

#include "core/country_rankings.hpp"
#include "rank/ranking.hpp"

namespace georank::io {

/// Optional ASN -> display name resolver for the name column.
using NameResolver = std::function<std::string(bgp::Asn)>;

void write_ranking_csv(std::ostream& os, const rank::Ranking& ranking,
                       const NameResolver& names = {});
[[nodiscard]] std::string to_ranking_csv(const rank::Ranking& ranking,
                                         const NameResolver& names = {});

/// Reads "rank,asn,score[,...]" back into a Ranking (rank column is
/// recomputed from scores; extra columns ignored). Malformed lines skipped.
[[nodiscard]] rank::Ranking read_ranking_csv(std::istream& is);
[[nodiscard]] rank::Ranking from_ranking_csv(std::string_view text);

/// Long-form dump of all four metrics for one country.
void write_country_metrics_csv(std::ostream& os, const core::CountryMetrics& m,
                               const NameResolver& names = {});

/// Reads ONE metric's ranking back out of a long-form country-metrics
/// CSV ("country,metric,rank,asn,score[,name]").
[[nodiscard]] rank::Ranking read_metric_from_country_csv(std::istream& is,
                                                         std::string_view metric);

}  // namespace georank::io
