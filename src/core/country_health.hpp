// CountryHealth: one country's observational evidence and the tiers it
// earns under a DegradationPolicy.
//
// The record itself lives in core because core::Pipeline memoizes one
// per country shard (incremental republish re-scores only dirty shards);
// the machinery that COMPUTES full reports — robust::compute_health and
// the fault-injection harness — stays above core in robust/. Like
// core/confidence.hpp this header re-exports the name into
// georank::robust, where the rest of the tree spells it.
#pragma once

#include <cstddef>
#include <cstdint>

#include "core/confidence.hpp"
#include "geo/country.hpp"

namespace georank::core {

/// One country's observational evidence and the tiers it earns.
struct CountryHealth {
  geo::CountryCode country;
  /// Distinct VPs in the national / international view of this country.
  std::size_t national_vps = 0;
  std::size_t international_vps = 0;
  /// Distinct accepted prefixes geolocated to this country, and their
  /// effective (most-specific) address weight.
  std::size_t accepted_prefixes = 0;
  std::uint64_t geolocated_addresses = 0;
  /// No-consensus rejections whose plurality country was this one — the
  /// address space this country "almost" had.
  std::size_t no_consensus_prefixes = 0;
  std::uint64_t no_consensus_addresses = 0;

  ConfidenceTier national_tier = ConfidenceTier::kInsufficient;
  ConfidenceTier international_tier = ConfidenceTier::kInsufficient;
  ConfidenceTier geo_tier = ConfidenceTier::kInsufficient;
  ConfidenceTier overall = ConfidenceTier::kInsufficient;

  /// Address-weighted consensus share in [0,1] (1.0 when unchallenged).
  [[nodiscard]] double geo_consensus() const noexcept {
    return DegradationPolicy::geo_consensus_share(geolocated_addresses,
                                                  no_consensus_addresses);
  }
};

}  // namespace georank::core

namespace georank::robust {
using core::CountryHealth;
}  // namespace georank::robust
