// End-to-end pipeline (Figure 6): RIB text -> parse -> sanitize ->
// geolocate -> views -> rankings. This is the library's front door: it
// owns the wiring so applications configure data sources once and query
// country metrics from the same sanitized path set.
#pragma once

#include <memory>
#include <optional>
#include <string_view>

#include "bgp/mrt_text.hpp"
#include "core/country_rankings.hpp"
#include "rank/ahc.hpp"
#include "rank/cti.hpp"
#include "sanitize/path_sanitizer.hpp"

namespace georank::core {

struct PipelineConfig {
  sanitize::SanitizerOptions sanitizer;
  rank::HegemonyOptions hegemony;
};

class Pipeline {
 public:
  /// All referenced objects must outlive the pipeline.
  Pipeline(const geo::GeoDatabase& geo_db, const geo::VpGeolocator& vps,
           const sanitize::AsnRegistry& registry,
           const topo::AsGraph& relationships, PipelineConfig config = {});

  /// Ingest RIBs; either form runs the sanitizer immediately.
  void load(const bgp::RibCollection& ribs);
  /// bgpdump-style text (see bgp/mrt_text.hpp); parse stats retained.
  void load_text(std::string_view mrt_text);

  [[nodiscard]] bool loaded() const noexcept { return sanitized_.has_value(); }
  [[nodiscard]] const sanitize::SanitizeResult& sanitized() const;
  [[nodiscard]] const bgp::MrtParseStats& parse_stats() const noexcept {
    return parse_stats_;
  }

  /// The four country metrics (CCI/CCN/AHI/AHN).
  [[nodiscard]] CountryMetrics country(geo::CountryCode country) const;

  /// The outbound extension (CCO/AHO): who the country crosses to reach
  /// the rest of the world.
  [[nodiscard]] OutboundMetrics outbound(geo::CountryCode country) const;

  /// Global baselines for comparison tables.
  [[nodiscard]] rank::Ranking global_cone_by_as_count() const;    // CCG
  [[nodiscard]] rank::Ranking global_cone_by_addresses() const;
  [[nodiscard]] rank::Ranking global_hegemony() const;            // AHG
  /// IHR-style country hegemony (needs AS registration data).    // AHC
  [[nodiscard]] rank::Ranking ahc(const rank::AsRegistry& registry,
                                  geo::CountryCode country) const;
  /// Country-level transit influence baseline.                   // CTI
  [[nodiscard]] rank::Ranking cti(geo::CountryCode country) const;

  [[nodiscard]] const CountryRankings& rankings() const noexcept { return rankings_; }
  [[nodiscard]] const topo::AsGraph& relationships() const noexcept {
    return *relationships_;
  }

 private:
  const geo::GeoDatabase* geo_db_;
  const geo::VpGeolocator* vps_;
  const sanitize::AsnRegistry* registry_;
  const topo::AsGraph* relationships_;
  PipelineConfig config_;
  CountryRankings rankings_;
  std::optional<sanitize::SanitizeResult> sanitized_;
  bgp::MrtParseStats parse_stats_;
};

}  // namespace georank::core
