// End-to-end pipeline (Figure 6): RIB text -> parse -> sanitize ->
// geolocate -> ShardedPathStore -> shard views -> rankings. This is the
// library's front door: it owns the wiring so applications configure
// data sources once and query country metrics from the same sanitized
// path set.
//
// load() builds a core::ShardedPathStore over the sanitized paths; every
// per-country query then runs over that country's shard (borrowed
// columns, precomputed index lists) instead of gathering from a global
// store. Per-country results are memoized with SHARD-GRANULAR eviction:
// a reload compares each country's shard content digest (plus its geo
// evidence) against the previous world and only drops the entries that
// actually changed, so reloading near-identical RIBs keeps the census
// warm. all_countries() fans out over shards largest-first
// (util::parallel_for_costed) so one giant country cannot serialize the
// tail. All queries are safe to call concurrently from multiple threads.
#pragma once

#include <memory>
#include <mutex>
#include <optional>
#include <shared_mutex>
#include <string_view>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "bgp/mrt_stream.hpp"
#include "bgp/mrt_text.hpp"
#include "core/confidence.hpp"
#include "core/country_health.hpp"
#include "core/country_rankings.hpp"
#include "core/sharded_path_store.hpp"
#include "rank/ahc.hpp"
#include "rank/cti.hpp"
#include "sanitize/incremental_sanitizer.hpp"
#include "sanitize/path_sanitizer.hpp"
#include "util/thread_safety.hpp"

namespace georank::core {

struct PipelineConfig {
  sanitize::SanitizerOptions sanitizer;
  rank::HegemonyOptions hegemony;
  /// Ingest knobs for load_text()/load_stream(): strict vs tolerant,
  /// base_time/day horizon, chunking and worker count.
  bgp::MrtStreamOptions ingest;
  /// Thresholds mapping per-country evidence onto the ConfidenceTier
  /// every CountryMetrics is annotated with (paper defaults).
  robust::DegradationPolicy degradation;
};

class Pipeline {
 public:
  /// All referenced objects must outlive the pipeline.
  Pipeline(const geo::GeoDatabase& geo_db, const geo::VpGeolocator& vps,
           const sanitize::AsnRegistry& registry,
           const topo::AsGraph& relationships, PipelineConfig config = {});

  /// Ingest RIBs; either form runs the sanitizer immediately, builds the
  /// ShardedPathStore and evicts memoized results for every country
  /// whose shard content (or geo evidence) changed — unchanged countries
  /// stay cached.
  ///
  /// Reload safety: load() takes the pipeline's reload lock exclusively,
  /// and every VALUE-returning query (country(), outbound(),
  /// all_countries(), the global rankings) holds it shared for its whole
  /// body — so a query racing a reload returns a result computed
  /// entirely against one world, never a mix. Accessors that return
  /// REFERENCES (sanitized(), store(), parse_stats()) cannot extend that
  /// guarantee past their return; do not hold them across a reload.
  void load(const bgp::RibCollection& ribs);
  /// bgpdump-style text (see bgp/mrt_text.hpp), ingested through the
  /// chunked parallel bgp::MrtStreamLoader per config.ingest; the
  /// structured diagnostics (per-reason counters, samples, throughput)
  /// are retained in parse_stats(). In strict mode malformed input
  /// throws bgp::MrtParseError before any sanitization runs.
  void load_text(std::string_view mrt_text);
  /// Same, streaming from an istream in bounded memory.
  void load_stream(std::istream& is);

  /// What an incremental reload did — the observability record behind
  /// the live pipeline's flush reports.
  struct ApplyResult {
    std::size_t shards_kept = 0;     // digest unchanged, columns reused
    std::size_t shards_rebuilt = 0;  // re-gathered from scratch
    std::size_t memos_evicted = 0;   // per-country results dropped
    std::size_t memos_kept = 0;      // per-country results still warm
    /// memos_* restricted to the country-rankings memo (the census
    /// cache): deterministic for a given reload, where the aggregate
    /// counts above also reflect which outbound/health queries happened
    /// to have warmed the cache beforehand.
    std::size_t country_memos_evicted = 0;
    std::size_t country_memos_kept = 0;
    bool sanitize_fast_path = false;   // final-day-only incremental run
    std::size_t days_resanitized = 0;  // days the sanitizer re-filtered
  };

  /// Incremental counterpart of load(). The sanitizer's filters are
  /// globally coupled — covered-prefix pruning, stability counts, geo
  /// consensus — so naive partial re-sanitization would change results;
  /// instead the sanitize::IncrementalSanitizer PROVES via content
  /// digests that only the final day changed (and that the stable-prefix
  /// set is intact) before re-filtering just that day, and falls back to
  /// a full run otherwise. Either way the store is REBUILT in place:
  /// shards whose content digest is unchanged keep their columns, and
  /// only countries whose digest actually changed lose their memoized
  /// rankings and health entries. Queries afterwards are bit-identical
  /// to a from-scratch load() of the same collection. parse_stats() is
  /// left untouched (updates arrive pre-parsed). Takes the reload lock
  /// exclusively for the swap, like load().
  ApplyResult apply_updates(const bgp::RibCollection& ribs);

  /// Per-country geolocation evidence behind the confidence annotation:
  /// accepted effective addresses (distinct sanitized prefixes), plus
  /// the no-consensus address weight AND prefix count attributed to the
  /// country's plurality (the latter feeds country_health()). Rebuilt on
  /// every load; all-zero for countries with no evidence.
  struct GeoEvidence {
    std::uint64_t accepted = 0;
    std::uint64_t rejected = 0;
    std::uint64_t rejected_prefixes = 0;
  };
  [[nodiscard]] GeoEvidence geo_evidence(geo::CountryCode country) const;

  /// A captured world: the sanitized path set, a deep copy of the
  /// sharded store, the geo evidence, the per-country digests, the memo
  /// cache contents and the incremental sanitizer's memo, all as they
  /// stood when checkpoint() ran. restore() swaps it back WITHOUT
  /// re-running the sanitizer, re-gathering the store or recomputing a
  /// single ranking — every piece is copied back — so a caller that
  /// flips between two worlds (the what-if engine re-arming its baseline
  /// after each counterfactual, DESIGN.md §4i) pays O(world) memcpy
  /// instead of a reload. Opaque and move-only (it owns a store clone);
  /// only hand it back to the pipeline that made it — the interning
  /// arena and digests are private to that instance's history.
  class Checkpoint {
   private:
    friend class Pipeline;
    std::optional<sanitize::IncrementalSanitizer> sanitizer_;
    sanitize::SanitizeResult sanitized_;
    ShardedPathStore store_;
    bgp::MrtParseStats parse_stats_;
    std::unordered_map<geo::CountryCode, GeoEvidence, geo::CountryCodeHash>
        geo_evidence_;
    std::unordered_map<geo::CountryCode, GeoEvidence, geo::CountryCodeHash>
        head_geo_evidence_;
    std::unordered_set<bgp::Prefix, bgp::PrefixHash> head_seen_prefixes_;
    std::unordered_map<std::uint16_t, std::uint64_t> country_digests_;
    std::unordered_map<std::uint16_t, std::uint64_t> outbound_digests_;
    std::unordered_map<std::uint16_t, CountryMetrics> cache_country_;
    std::unordered_map<std::uint16_t, OutboundMetrics> cache_outbound_;
    std::unordered_map<std::uint16_t, robust::CountryHealth> cache_health_;
  };

  /// Captures the currently loaded world, including which per-country
  /// results are memoized right now. Serialized against
  /// load()/apply_updates()/restore() like any reload. Throws
  /// std::logic_error("Pipeline::checkpoint(): no RIBs loaded") before
  /// load().
  [[nodiscard]] Checkpoint checkpoint() const;

  /// Swaps a checkpointed world back in by copy. Queries afterwards are
  /// bit-identical to a load() of the checkpointed collection, the memo
  /// cache holds exactly the entries it held at capture time (every
  /// memo that was warm then is warm again — no recompute needed), and
  /// the sanitizer's cross-load memo is restored too, so a
  /// final-day-only apply_updates() after restore() still fast-paths.
  /// The returned counters diff the checkpoint against the OUTGOING
  /// world: shards_kept counts shards whose content was already
  /// identical (the swap was a no-op for them), shards_rebuilt the ones
  /// the copy replaced; memos_evicted counts outgoing cache entries
  /// whose country changed between the two worlds (their counterfactual
  /// values were dropped), memos_kept the checkpointed entries now warm.
  /// sanitize_fast_path/days_resanitized are always false/0 (nothing
  /// was sanitized). Throws std::logic_error on an empty checkpoint.
  ApplyResult restore(const Checkpoint& checkpoint);

  /// Whether a world is loaded. Takes the reload lock shared so a racing
  /// load() is observed either entirely before or entirely after.
  [[nodiscard]] bool loaded() const;
  [[nodiscard]] const sanitize::SanitizeResult& sanitized() const;
  /// The sharded columnar store all per-country queries run against.
  [[nodiscard]] const ShardedPathStore& store() const;
  /// Diagnostics from the most recent load_text()/load_stream();
  /// reset to empty by a plain load() (which has no parse phase).
  [[nodiscard]] const bgp::MrtParseStats& parse_stats() const noexcept {
    return parse_stats_;
  }

  /// The four country metrics (CCI/CCN/AHI/AHN). Memoized: repeat queries
  /// for the same country return the cached result.
  /// Throws std::logic_error("Pipeline::country(): no RIBs loaded") when
  /// called before load()/load_text().
  [[nodiscard]] CountryMetrics country(geo::CountryCode country) const;

  /// The outbound extension (CCO/AHO): who the country crosses to reach
  /// the rest of the world. Memoized like country().
  [[nodiscard]] OutboundMetrics outbound(geo::CountryCode country) const;

  /// One country's health record under config().degradation, memoized
  /// like country() and evicted shard-granularly on reload — this is
  /// what keeps serve::Snapshot::build from re-scanning every shard's
  /// rows on an incremental republish (robust::compute_health routes
  /// through it when the policy matches the pipeline's).
  [[nodiscard]] robust::CountryHealth country_health(
      geo::CountryCode country) const;

  /// The full census: CountryMetrics for EVERY country with at least one
  /// geolocated prefix, sorted by country code. Computed in parallel
  /// over shards, largest shard first (util::parallel_for_costed with
  /// each shard's cost hint; GEORANK_THREADS caps the workers), with
  /// each country written to its own slot — the result is deterministic
  /// and identical across thread counts. Results land in the same memo
  /// cache country() uses.
  [[nodiscard]] std::vector<CountryMetrics> all_countries() const;

  /// Drops all memoized per-country results unconditionally (reloads
  /// instead evict shard-granularly; see load()).
  void clear_caches() const;

  /// Memo-cache occupancy, for tests and ops introspection: how many
  /// per-country results a reload kept warm.
  struct CacheStats {
    std::size_t countries = 0;
    std::size_t outbounds = 0;
    std::size_t healths = 0;
  };
  [[nodiscard]] CacheStats cache_stats() const;

  /// Global baselines for comparison tables.
  [[nodiscard]] rank::Ranking global_cone_by_as_count() const;    // CCG
  [[nodiscard]] rank::Ranking global_cone_by_addresses() const;
  [[nodiscard]] rank::Ranking global_hegemony() const;            // AHG
  /// IHR-style country hegemony (needs AS registration data).    // AHC
  [[nodiscard]] rank::Ranking ahc(const rank::AsRegistry& registry,
                                  geo::CountryCode country) const;
  /// Country-level transit influence baseline.                   // CTI
  [[nodiscard]] rank::Ranking cti(geo::CountryCode country) const;

  /// The configuration the pipeline was constructed with (immutable for
  /// its lifetime; serve::Snapshot::build reads the degradation policy).
  [[nodiscard]] const PipelineConfig& config() const noexcept { return config_; }

  [[nodiscard]] const CountryRankings& rankings() const noexcept { return rankings_; }
  [[nodiscard]] const topo::AsGraph& relationships() const noexcept {
    return *relationships_;
  }
  /// The geolocation database the pipeline was built over (the live
  /// layer maps touched prefixes onto country sets through it).
  [[nodiscard]] const geo::GeoDatabase& geo_db() const noexcept {
    return *geo_db_;
  }

 private:
  /// Sanitizes outside the reload lock, then swaps the new world — paths,
  /// store, geo evidence AND parse stats — in under one exclusive hold,
  /// finishing with shard-granular memo eviction.
  void load_impl(const bgp::RibCollection& ribs, bgp::MrtParseStats stats);
  /// Recomputes geo_evidence_ from sanitized_. Called under the
  /// exclusive reload lock. `sanitize_fast_path` = this apply reused the
  /// sanitizer's memoized head rows, so the evidence accumulated up to
  /// the head/final-day boundary (cached on the previous full scan) is
  /// reused and only the suffix rows are re-scanned.
  void rebuild_geo_evidence(bool sanitize_fast_path);
  /// Compares the new world's per-country digests against the previous
  /// ones and erases only the memo entries whose digest changed (or
  /// whose country vanished). Called under the exclusive reload lock.
  /// Returns {evicted, kept} counts across both memo maps.
  struct EvictStats {
    std::size_t evicted = 0;
    std::size_t kept = 0;
    /// Same counts restricted to the country-rankings map — the memo
    /// the census reuses, reported separately because outbound/health
    /// warmth depends on which queries ran, not on the reload itself.
    std::size_t country_evicted = 0;
    std::size_t country_kept = 0;
  };
  EvictStats evict_changed_countries();
  /// Throws std::logic_error("<where>: no RIBs loaded") before load().
  void require_loaded(const char* where) const;
  [[nodiscard]] CountryMetrics country_uncached(geo::CountryCode country) const;
  /// Exact port of compute_health's per-shard worker (plus the
  /// rejected-only-country case, where the shard is absent); called with
  /// the reload lock held shared.
  [[nodiscard]] robust::CountryHealth country_health_uncached(
      geo::CountryCode country) const;

  const geo::GeoDatabase* geo_db_;
  const geo::VpGeolocator* vps_;
  const sanitize::AsnRegistry* registry_;
  const topo::AsGraph* relationships_;
  PipelineConfig config_;
  CountryRankings rankings_;
  // The sanitizer's cross-load memo (behind the incremental fast path).
  // Touched only by load()/apply_updates(), serialized among themselves
  // by MemoCache::load_serial — queries never read it.
  sanitize::IncrementalSanitizer sanitizer_;
  std::optional<sanitize::SanitizeResult> sanitized_;
  std::optional<ShardedPathStore> store_;
  bgp::MrtParseStats parse_stats_;
  std::unordered_map<geo::CountryCode, GeoEvidence, geo::CountryCodeHash>
      geo_evidence_;
  // Accepted-weight tallies and seen-prefix set as they stood at the
  // sanitizer's head/final-day row boundary, captured on the last full
  // evidence scan so a fast apply only re-scans the final day's rows.
  std::unordered_map<geo::CountryCode, GeoEvidence, geo::CountryCodeHash>
      head_geo_evidence_;
  std::unordered_set<bgp::Prefix, bgp::PrefixHash> head_seen_prefixes_;
  // Per-country content digests of the CURRENT world, written only under
  // the exclusive reload lock (like the rest of the world state above).
  // `country_digests_` folds geo evidence in (CountryMetrics.confidence
  // depends on it); `outbound_digests_` is the raw shard digest.
  std::unordered_map<std::uint16_t, std::uint64_t> country_digests_;
  std::unordered_map<std::uint16_t, std::uint64_t> outbound_digests_;

  // Memoized per-country results, keyed by CountryCode::raw(). The mutex
  // only guards map access; metric computation happens outside it, so
  // concurrent all_countries() workers never serialize on each other.
  // `reload` orders queries against load(): load() holds it exclusive,
  // value-returning queries hold it shared (always acquired BEFORE
  // `mutex`). Boxed so Pipeline stays movable despite the locks.
  struct MemoCache {
    std::shared_mutex reload;
    /// Serializes whole load()/apply_updates() calls against each other
    /// (they mutate the sanitizer memo OUTSIDE the reload lock, which
    /// only the swap takes). Always acquired before `reload`.
    std::mutex load_serial;
    std::mutex mutex;
    std::unordered_map<std::uint16_t, CountryMetrics> country
        GEORANK_GUARDED_BY(mutex);
    std::unordered_map<std::uint16_t, OutboundMetrics> outbound
        GEORANK_GUARDED_BY(mutex);
    std::unordered_map<std::uint16_t, robust::CountryHealth> health
        GEORANK_GUARDED_BY(mutex);
  };
  std::unique_ptr<MemoCache> cache_ = std::make_unique<MemoCache>();
};

}  // namespace georank::core
