#include "core/rank_delta.hpp"

#include <algorithm>
#include <cstdlib>

#include "util/stats.hpp"

namespace georank::core {

RankDelta compare_rankings(const rank::Ranking& before, const rank::Ranking& after,
                           std::size_t top_k) {
  std::vector<bgp::Asn> members;
  auto collect = [&](const rank::Ranking& r) {
    for (const auto& e : r.top(top_k)) {
      if (std::find(members.begin(), members.end(), e.asn) == members.end()) {
        members.push_back(e.asn);
      }
    }
  };
  collect(before);
  collect(after);

  RankDelta delta;
  delta.shifts.reserve(members.size());
  for (bgp::Asn asn : members) {
    RankShift shift;
    shift.asn = asn;
    // A rank beyond top_k counts as "absent from the compared window".
    auto windowed = [&](const rank::Ranking& r) -> std::optional<std::size_t> {
      auto rank = r.rank_of(asn);
      if (!rank || *rank > top_k) return std::nullopt;
      return rank;
    };
    shift.before_rank = windowed(before);
    shift.after_rank = windowed(after);
    shift.before_score = before.score_of(asn);
    shift.after_score = after.score_of(asn);
    delta.shifts.push_back(shift);
  }
  std::sort(delta.shifts.begin(), delta.shifts.end(),
            [](const RankShift& a, const RankShift& b) {
              auto key = [](const RankShift& s) {
                return std::pair{s.after_rank.value_or(9999),
                                 s.before_rank.value_or(9999)};
              };
              return key(a) < key(b);
            });
  return delta;
}

std::vector<bgp::Asn> RankDelta::entries() const {
  std::vector<bgp::Asn> out;
  for (const RankShift& s : shifts) {
    if (s.entered()) out.push_back(s.asn);
  }
  return out;
}

std::vector<bgp::Asn> RankDelta::exits() const {
  std::vector<bgp::Asn> out;
  for (const RankShift& s : shifts) {
    if (s.left()) out.push_back(s.asn);
  }
  return out;
}

long RankDelta::max_movement() const noexcept {
  long best = 0;
  for (const RankShift& s : shifts) {
    if (s.before_rank && s.after_rank) {
      best = std::max(best, std::abs(s.rank_change()));
    }
  }
  return best;
}

double RankDelta::agreement() const {
  if (shifts.size() < 2) return shifts.empty() ? 0.0 : 1.0;
  std::vector<double> a, b;
  a.reserve(shifts.size());
  b.reserve(shifts.size());
  // Higher value = better rank; absent = 0 (worst).
  for (const RankShift& s : shifts) {
    a.push_back(s.before_rank ? 1000.0 - static_cast<double>(*s.before_rank) : 0.0);
    b.push_back(s.after_rank ? 1000.0 - static_cast<double>(*s.after_rank) : 0.0);
  }
  return util::spearman(a, b);
}

}  // namespace georank::core
