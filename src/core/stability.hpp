// Ranking stability under VP downsampling (§4.2, Figures 4 & 5).
//
// For a country view with N vantage points: sample k of them, rebuild the
// metric from only the sampled VPs' paths, and compare the sampled
// ranking to the full-view ranking with NDCG@10. Repeating over many
// random samples per k traces the paper's stability curves and yields
// the "minimum VPs for NDCG >= threshold" deployment guidance.
#pragma once

#include <vector>

#include "core/country_rankings.hpp"
#include "core/ndcg.hpp"
#include "core/views.hpp"
#include "util/rng.hpp"

namespace georank::core {

enum class MetricKind { kCustomerCone, kHegemony };

struct StabilityPoint {
  std::size_t vp_count = 0;
  double mean_ndcg = 0.0;
  double min_ndcg = 0.0;
  double max_ndcg = 0.0;
  /// Sample standard deviation across trials (0 for a single trial).
  double stdev_ndcg = 0.0;
  std::size_t trials = 0;
};

struct StabilityOptions {
  /// VP sample sizes to probe; empty -> {1,2,3,...} up to the view's VPs
  /// with a coarser grid past 16.
  std::vector<std::size_t> sample_sizes;
  std::size_t trials_per_size = 8;
  std::size_t top_k = kDefaultTopK;
  std::uint64_t seed = 42;
};

class StabilityAnalyzer {
 public:
  explicit StabilityAnalyzer(const CountryRankings& rankings)
      : rankings_(&rankings) {}

  [[nodiscard]] std::vector<StabilityPoint> analyze(
      const CountryView& view, MetricKind metric,
      const StabilityOptions& options = {}) const;

  /// Smallest probed VP count from which the curve STAYS at or above
  /// `threshold` (by mean NDCG) through every larger probed size — a
  /// single lucky small sample does not count as stabilized. Returns 0
  /// when the curve is empty or no suffix reaches the threshold; points
  /// with non-finite means fail the threshold. Accepts the curve in any
  /// order (sorted internally by vp_count).
  [[nodiscard]] static std::size_t min_vps_for(
      const std::vector<StabilityPoint>& curve, double threshold);

 private:
  const CountryRankings* rankings_;
};

/// Default probe grid for a view with `vp_count` VPs: every size up to 16,
/// then multiplicative steps.
[[nodiscard]] std::vector<std::size_t> default_sample_grid(std::size_t vp_count);

}  // namespace georank::core
