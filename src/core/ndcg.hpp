// Normalized Discounted Cumulative Gain over top-ranked ASes (§4.1).
//
//   DCG_p  = sum_{p=1..k} rel_p / log2(p+1)
//   NDCG_p = DCG_p / FDCG_p
//
// The relevance of the AS at position p of a SAMPLE ranking is that AS's
// score in the FULL (all-VP) ranking; FDCG is the DCG of the full ranking
// against itself. NDCG == 1 means the sample reproduces the full top-k
// ordering; the paper uses k = 10.
#pragma once

#include <cstddef>

#include "rank/ranking.hpp"

namespace georank::core {

inline constexpr std::size_t kDefaultTopK = 10;

/// DCG of `sample`'s top-k using relevance values from `full`.
[[nodiscard]] double dcg(const rank::Ranking& sample, const rank::Ranking& full,
                         std::size_t k = kDefaultTopK);

/// NDCG of `sample` against `full`, clamped to [0, 1]. Degenerate cases
/// resolve to the identity score 1.0: an empty `full` ranking, k == 0, or
/// an all-zero/non-finite ideal DCG all mean there is nothing to misrank.
/// A single-element ranking scores 1.0 against itself; all-tied rankings
/// score 1.0 under any permutation (equal relevance at every position).
[[nodiscard]] double ndcg(const rank::Ranking& sample, const rank::Ranking& full,
                          std::size_t k = kDefaultTopK);

}  // namespace georank::core
