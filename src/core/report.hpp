// Country report assembly: one structured object holding everything the
// library can say about a country (the four paper metrics, the AHC/CTI
// baselines, outbound extension, sovereignty indices), plus a text
// renderer. The CLI `rank` subcommand and the country_report example are
// thin wrappers over this.
#pragma once

#include <functional>
#include <optional>
#include <string>

#include "core/country_rankings.hpp"
#include "core/diversity.hpp"
#include "core/pipeline.hpp"

namespace georank::core {

struct CountryReport {
  geo::CountryCode country;
  CountryMetrics metrics;
  OutboundMetrics outbound;
  rank::Ranking ahc;
  rank::Ranking cti;
  SovereigntySummary sovereignty;

  [[nodiscard]] bool empty() const noexcept {
    return metrics.cci.empty() && metrics.ccn.empty();
  }
};

struct ReportOptions {
  std::size_t top_k = 10;
  /// Rows shown in the rendered table: union of each ranking's top-N.
  std::size_t rows_per_metric = 5;
  bool include_outbound = true;
  bool include_baselines = true;
};

/// Assembles the full report from a loaded pipeline.
[[nodiscard]] CountryReport build_country_report(const Pipeline& pipeline,
                                                 const rank::AsRegistry& registry,
                                                 geo::CountryCode country,
                                                 const ReportOptions& options = {});

/// ASN -> display name for rendering; return empty to fall back to "AS<n>".
using ReportNameResolver = std::function<std::string(bgp::Asn)>;

/// Human-readable multi-table rendering.
[[nodiscard]] std::string render_country_report(
    const CountryReport& report, const ReportNameResolver& names = {},
    const ReportOptions& options = {});

}  // namespace georank::core
