// Structured comparison of two rankings — the machinery behind the
// temporal analyses (Tables 10 & 11: April 2021 vs March 2023) and the
// sanction what-ifs (§6.1).
#pragma once

#include <optional>
#include <span>
#include <vector>

#include "rank/ranking.hpp"

namespace georank::core {

struct RankShift {
  bgp::Asn asn = 0;
  /// 1-based ranks; nullopt = absent from that ranking.
  std::optional<std::size_t> before_rank, after_rank;
  double before_score = 0.0, after_score = 0.0;

  /// before_rank - after_rank: positive = climbed. 0 when either side is
  /// missing (use entered()/left() for those).
  [[nodiscard]] long rank_change() const noexcept {
    if (!before_rank || !after_rank) return 0;
    return static_cast<long>(*before_rank) - static_cast<long>(*after_rank);
  }
  [[nodiscard]] double score_change() const noexcept {
    return after_score - before_score;
  }
  [[nodiscard]] bool entered() const noexcept {
    return !before_rank && after_rank.has_value();
  }
  [[nodiscard]] bool left() const noexcept {
    return before_rank.has_value() && !after_rank;
  }
};

struct RankDelta {
  std::vector<RankShift> shifts;  // ordered by after-rank, then before-rank

  /// ASes that entered / left the compared top-k.
  [[nodiscard]] std::vector<bgp::Asn> entries() const;
  [[nodiscard]] std::vector<bgp::Asn> exits() const;
  /// Largest |rank_change| among ASes present in both.
  [[nodiscard]] long max_movement() const noexcept;
  /// Spearman correlation of the two orderings over the union (absent
  /// entries ranked after everything present).
  [[nodiscard]] double agreement() const;
};

/// Compares the top-k of two rankings (the union of both top-k sets).
[[nodiscard]] RankDelta compare_rankings(const rank::Ranking& before,
                                         const rank::Ranking& after,
                                         std::size_t top_k = 10);

}  // namespace georank::core
