#include "core/ndcg.hpp"

#include <cmath>

namespace georank::core {

double dcg(const rank::Ranking& sample, const rank::Ranking& full, std::size_t k) {
  const auto& entries = sample.entries();
  std::size_t n = entries.size() < k ? entries.size() : k;
  double sum = 0.0;
  for (std::size_t i = 0; i < n; ++i) {
    double rel = full.score_of(entries[i].asn);
    sum += rel / std::log2(static_cast<double>(i) + 2.0);
  }
  return sum;
}

double ndcg(const rank::Ranking& sample, const rank::Ranking& full, std::size_t k) {
  double fdcg = dcg(full, full, k);
  if (fdcg <= 0.0) return 1.0;
  return dcg(sample, full, k) / fdcg;
}

}  // namespace georank::core
