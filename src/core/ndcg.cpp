#include "core/ndcg.hpp"

#include <algorithm>
#include <cmath>

namespace georank::core {

double dcg(const rank::Ranking& sample, const rank::Ranking& full, std::size_t k) {
  const auto& entries = sample.entries();
  std::size_t n = entries.size() < k ? entries.size() : k;
  double sum = 0.0;
  for (std::size_t i = 0; i < n; ++i) {
    double rel = full.score_of(entries[i].asn);
    if (!std::isfinite(rel)) continue;  // corrupt scores carry no gain
    sum += rel / std::log2(static_cast<double>(i) + 2.0);
  }
  return sum;
}

double ndcg(const rank::Ranking& sample, const rank::Ranking& full, std::size_t k) {
  double fdcg = dcg(full, full, k);
  // Covers the degenerate ideals in one test: empty full ranking, k == 0,
  // all-zero scores, and a non-finite FDCG — nothing to misrank.
  if (!(fdcg > 0.0) || !std::isfinite(fdcg)) return 1.0;
  double score = dcg(sample, full, k) / fdcg;
  if (!std::isfinite(score)) return 0.0;
  // Floating-point dust aside, the ratio cannot exceed 1: the full
  // ranking orders its own scores descending, which maximizes DCG.
  return std::clamp(score, 0.0, 1.0);
}

}  // namespace georank::core
