#include "core/sharded_path_store.hpp"

#include <algorithm>
#include <cstddef>
#include <unordered_map>
#include <unordered_set>
#include <utility>

#include "util/parallel_for.hpp"

namespace georank::core {

namespace {

/// FNV-1a over the hop sequence — the same pre-hash PathStore uses, so
/// the interned dictionary comes out bit-identical to the monolithic
/// build (full content compare still decides).
std::uint64_t hash_hops(std::span<const bgp::Asn> hops) noexcept {
  std::uint64_t h = 14695981039346656037ull;
  for (bgp::Asn hop : hops) {
    h ^= hop;
    h *= 1099511628211ull;
  }
  return h;
}

void fnv_mix(std::uint64_t& h, std::uint64_t v) noexcept {
  h ^= v;
  h *= 1099511628211ull;
}

}  // namespace

ShardedPathStore::ShardedPathStore(
    std::span<const sanitize::SanitizedPath> paths, std::size_t threads) {
  rebuild(paths, threads);
}

ShardedPathStore::RebuildStats ShardedPathStore::rebuild(
    std::span<const sanitize::SanitizedPath> paths, std::size_t threads,
    std::size_t unchanged_prefix_rows) {
  RebuildStats result;
  const std::size_t n = paths.size();
  // The head shortcut needs the previous rebuild's caches to cover it;
  // clamping also makes a stale hint on a fresh store degrade to 0.
  const std::size_t head = std::min({unchanged_prefix_rows, handles_.size(), n});
  const bool incremental = head > 0;
  size_ = n;

  // ---- Phase 1: shared hop dictionary (sequential, deterministic).
  // Identical algorithm to PathStore: hash(hops) pre-selects candidates,
  // content compare against the arena decides, first occurrence appends.
  // The dictionary is a member and append-only, so handles issued by a
  // previous build (still referenced by kept shards) remain valid —
  // which is also why the cached handles of a proven-unchanged head can
  // be reused verbatim: re-interning those rows would walk the same
  // buckets and return the same handles.
  handles_.resize(head);
  handles_.reserve(n);
  if (interned_.empty()) interned_.reserve(n);
  for (std::size_t i = head; i < n; ++i) {
    const std::span<const bgp::Asn> hops = paths[i].path.hops();
    std::vector<sanitize::PathHandle>& bucket = interned_[hash_hops(hops)];
    const sanitize::PathHandle* found = nullptr;
    for (const sanitize::PathHandle& cand : bucket) {
      if (cand.length == hops.size() &&
          std::equal(hops.begin(), hops.end(), arena_.begin() + cand.offset)) {
        found = &cand;
        break;
      }
    }
    if (found != nullptr) {
      handles_.push_back(*found);
    } else {
      const sanitize::PathHandle handle{
          static_cast<std::uint32_t>(arena_.size()),
          static_cast<std::uint32_t>(hops.size())};
      arena_.insert(arena_.end(), hops.begin(), hops.end());
      bucket.push_back(handle);
      handles_.push_back(handle);
      ++unique_paths_;
    }
  }

  // ---- Phase 2a: mark each row's target shard(s), sequentially. A row
  // lands in its prefix country's shard and, when different, its VP
  // country's shard; invalid codes never create a shard. Row lists stay
  // ascending because i is. With an unchanged head, the cached lists are
  // truncated back to head rows (one lower_bound each — they are
  // ascending) and only the suffix is re-scanned; a country untouched by
  // either step provably has an identical row list over identical rows,
  // so phase 2b moves its shard over without re-digesting the content.
  std::unordered_set<geo::CountryCode, geo::CountryCodeHash> touched;
  if (!incremental) {
    rows_of_.clear();
  } else {
    // lint: ordered(per-entry truncation, no cross-entry state)
    for (auto it = rows_of_.begin(); it != rows_of_.end();) {
      std::vector<std::uint32_t>& rows = it->second;
      const auto cut = std::lower_bound(rows.begin(), rows.end(),
                                        static_cast<std::uint32_t>(head));
      if (cut != rows.end()) {
        rows.erase(cut, rows.end());
        touched.insert(it->first);
      }
      if (rows.empty()) {
        it = rows_of_.erase(it);
      } else {
        ++it;
      }
    }
  }
  for (std::uint32_t i = static_cast<std::uint32_t>(head); i < n; ++i) {
    const geo::CountryCode pc = paths[i].prefix_country;
    const geo::CountryCode vc = paths[i].vp_country;
    if (pc.valid()) {
      rows_of_[pc].push_back(i);
      if (incremental) touched.insert(pc);
    }
    if (vc.valid() && vc != pc) {
      rows_of_[vc].push_back(i);
      if (incremental) touched.insert(vc);
    }
  }

  // Previous build's shards, indexed by their (sorted) country list. A
  // new shard whose content digest matches its predecessor is MOVED over
  // instead of re-gathered; anything left in old_shards is dropped.
  std::vector<PathShard> old_shards = std::move(shards_);
  std::vector<geo::CountryCode> old_countries = std::move(shard_countries_);
  shards_ = {};
  shard_countries_ = {};
  prefix_countries_.clear();
  vp_countries_.clear();

  shard_countries_.reserve(rows_of_.size());
  // lint: ordered(key collection only; sorted immediately below)
  for (const auto& [cc, _] : rows_of_) shard_countries_.push_back(cc);
  std::sort(shard_countries_.begin(), shard_countries_.end());

  // ---- Phase 2b: per shard, shard-parallel: digest the candidate rows
  // (content only — cheap, no allocation), keep the old shard when the
  // digest and row count are unchanged, else gather columns, selection
  // lists and cost from scratch. Shards are disjoint, so workers share
  // nothing but read-only inputs; each old shard is claimed by at most
  // one slot (countries are unique).
  shards_.resize(shard_countries_.size());
  std::vector<std::uint8_t> kept(shard_countries_.size(), 0);
  util::parallel_for(
      shard_countries_.size(),
      [&](std::size_t s) {
        const geo::CountryCode cc = shard_countries_[s];
        const std::vector<std::uint32_t>& rows = rows_of_.at(cc);
        const std::size_t m = rows.size();

        const auto claim_old = [&]() -> PathShard* {
          const auto old_it =
              std::lower_bound(old_countries.begin(), old_countries.end(), cc);
          if (old_it == old_countries.end() || *old_it != cc) return nullptr;
          return &old_shards[static_cast<std::size_t>(old_it -
                                                      old_countries.begin())];
        };

        // Untouched by the proven-unchanged head's suffix: identical row
        // list over identical rows — move the old shard, digest intact.
        if (incremental && !touched.contains(cc)) {
          if (PathShard* old_shard = claim_old(); old_shard != nullptr) {
            shards_[s] = std::move(*old_shard);
            kept[s] = 1;
            return;
          }
        }

        // Digest pre-pass. Hashes hop CONTENT, never arena offsets —
        // offsets shift between loads even when this country's paths
        // did not.
        std::uint64_t digest = 14695981039346656037ull;
        std::uint64_t hop_cost = 0;
        for (std::uint32_t g : rows) {
          const sanitize::SanitizedPath& sp = paths[g];
          fnv_mix(digest, sp.vp.ip);
          fnv_mix(digest, sp.vp.asn);
          fnv_mix(digest, sp.vp_country.raw());
          fnv_mix(digest, sp.prefix.address());
          fnv_mix(digest, sp.prefix.length());
          fnv_mix(digest, sp.prefix_country.raw());
          fnv_mix(digest, sp.weight);
          const std::span<const bgp::Asn> hops = sp.path.hops();
          fnv_mix(digest, hops.size());
          for (bgp::Asn hop : hops) fnv_mix(digest, hop);
          hop_cost += hops.size();
        }

        if (PathShard* old_shard = claim_old(); old_shard != nullptr &&
                                                old_shard->size() == m &&
                                                old_shard->digest() == digest) {
          shards_[s] = std::move(*old_shard);
          kept[s] = 1;
          return;
        }

        PathShard& sh = shards_[s];
        sh.country_ = cc;
        sh.vp_.reserve(m);
        sh.vp_country_.reserve(m);
        sh.prefix_.reserve(m);
        sh.prefix_country_.reserve(m);
        sh.weight_.reserve(m);
        sh.handle_.reserve(m);

        for (std::uint32_t local = 0; local < m; ++local) {
          const std::uint32_t g = rows[local];
          const sanitize::SanitizedPath& sp = paths[g];
          sh.vp_.push_back(sp.vp);
          sh.vp_country_.push_back(sp.vp_country);
          sh.prefix_.push_back(sp.prefix);
          sh.prefix_country_.push_back(sp.prefix_country);
          sh.weight_.push_back(sp.weight);
          sh.handle_.push_back(handles_[g]);

          const bool prefix_local = sp.prefix_country == cc;
          const bool vp_local = sp.vp_country == cc;
          if (prefix_local) {
            sh.prefix_rows_.push_back(local);
            if (vp_local) {
              sh.national_rows_.push_back(local);
            } else if (sp.vp_country.valid()) {
              sh.international_rows_.push_back(local);
            }
          }
          if (vp_local) {
            sh.vp_rows_.push_back(local);
            if (sp.prefix_country.valid() && !prefix_local) {
              sh.outbound_rows_.push_back(local);
            }
          }
        }
        sh.digest_ = digest;
        sh.cost_ = static_cast<std::uint64_t>(m) + hop_cost;
      },
      threads);

  // Appending to the arena may have reallocated it; point every shard
  // (kept and rebuilt alike) at the current buffer.
  const bgp::Asn* arena = arena_.data();
  for (std::size_t s = 0; s < shards_.size(); ++s) {
    shards_[s].arena_ = arena;
    result.shards_kept += kept[s];
  }
  result.shards_rebuilt = shards_.size() - result.shards_kept;

  // Census domains, derived from the (sorted) shards so they come out
  // ascending without another sort.
  for (const PathShard& sh : shards_) {
    if (!sh.prefix_rows_.empty()) prefix_countries_.push_back(sh.country_);
    if (!sh.vp_rows_.empty()) vp_countries_.push_back(sh.country_);
  }
  return result;
}

ShardedPathStore ShardedPathStore::clone() const {
  ShardedPathStore copy;
  copy.arena_ = arena_;
  copy.interned_ = interned_;
  copy.handles_ = handles_;
  copy.rows_of_ = rows_of_;
  copy.shards_ = shards_;
  copy.shard_countries_ = shard_countries_;
  copy.prefix_countries_ = prefix_countries_;
  copy.vp_countries_ = vp_countries_;
  copy.size_ = size_;
  copy.unique_paths_ = unique_paths_;
  // The copied shards still borrow the ORIGINAL arena; re-point them at
  // the copy's own buffer so the clone is self-contained.
  const bgp::Asn* arena = copy.arena_.data();
  for (PathShard& sh : copy.shards_) sh.arena_ = arena;
  return copy;
}

const PathShard* ShardedPathStore::shard(geo::CountryCode country) const noexcept {
  const auto it = std::lower_bound(shard_countries_.begin(),
                                   shard_countries_.end(), country);
  if (it == shard_countries_.end() || *it != country) return nullptr;
  return &shards_[static_cast<std::size_t>(it - shard_countries_.begin())];
}

CountryView ShardedPathStore::national_view(geo::CountryCode country) const {
  const PathShard* sh = shard(country);
  if (sh == nullptr) {
    return CountryView{sanitize::PathColumns{}, std::span<const std::uint32_t>{},
                       country, ViewKind::kNational};
  }
  return sh->national_view();
}

CountryView ShardedPathStore::international_view(geo::CountryCode country) const {
  const PathShard* sh = shard(country);
  if (sh == nullptr) {
    return CountryView{sanitize::PathColumns{}, std::span<const std::uint32_t>{},
                       country, ViewKind::kInternational};
  }
  return sh->international_view();
}

CountryView ShardedPathStore::outbound_view(geo::CountryCode country) const {
  const PathShard* sh = shard(country);
  if (sh == nullptr) {
    return CountryView{sanitize::PathColumns{}, std::span<const std::uint32_t>{},
                       country, ViewKind::kOutbound};
  }
  return sh->outbound_view();
}

CountryView ShardedPathStore::view(geo::CountryCode country,
                                   ViewKind kind) const {
  switch (kind) {
    case ViewKind::kInternational: return international_view(country);
    case ViewKind::kOutbound: return outbound_view(country);
    case ViewKind::kNational: break;
  }
  return national_view(country);
}

std::vector<std::uint64_t> ShardedPathStore::census_costs() const {
  std::vector<std::uint64_t> costs;
  costs.reserve(prefix_countries_.size());
  for (geo::CountryCode cc : prefix_countries_) {
    const PathShard* sh = shard(cc);
    costs.push_back(sh == nullptr ? 0 : sh->cost());
  }
  return costs;
}

std::uint64_t ShardedPathStore::shard_digest(geo::CountryCode country) const noexcept {
  const PathShard* sh = shard(country);
  return sh == nullptr ? 0 : sh->digest();
}

}  // namespace georank::core
