#include "core/sharded_path_store.hpp"

#include <algorithm>
#include <cstddef>
#include <unordered_map>
#include <utility>

#include "util/parallel_for.hpp"

namespace georank::core {

namespace {

/// FNV-1a over the hop sequence — the same pre-hash PathStore uses, so
/// the interned dictionary comes out bit-identical to the monolithic
/// build (full content compare still decides).
std::uint64_t hash_hops(std::span<const bgp::Asn> hops) noexcept {
  std::uint64_t h = 14695981039346656037ull;
  for (bgp::Asn hop : hops) {
    h ^= hop;
    h *= 1099511628211ull;
  }
  return h;
}

void fnv_mix(std::uint64_t& h, std::uint64_t v) noexcept {
  h ^= v;
  h *= 1099511628211ull;
}

}  // namespace

ShardedPathStore::ShardedPathStore(
    std::span<const sanitize::SanitizedPath> paths, std::size_t threads) {
  const std::size_t n = paths.size();
  size_ = n;

  // ---- Phase 1: shared hop dictionary (sequential, deterministic).
  // Identical algorithm to PathStore: hash(hops) pre-selects candidates,
  // content compare against the arena decides, first occurrence appends.
  std::vector<sanitize::PathHandle> handles;
  handles.reserve(n);
  std::unordered_map<std::uint64_t, std::vector<sanitize::PathHandle>> interned;
  interned.reserve(n);
  for (const sanitize::SanitizedPath& sp : paths) {
    const std::span<const bgp::Asn> hops = sp.path.hops();
    std::vector<sanitize::PathHandle>& bucket = interned[hash_hops(hops)];
    const sanitize::PathHandle* found = nullptr;
    for (const sanitize::PathHandle& cand : bucket) {
      if (cand.length == hops.size() &&
          std::equal(hops.begin(), hops.end(), arena_.begin() + cand.offset)) {
        found = &cand;
        break;
      }
    }
    if (found != nullptr) {
      handles.push_back(*found);
    } else {
      const sanitize::PathHandle handle{
          static_cast<std::uint32_t>(arena_.size()),
          static_cast<std::uint32_t>(hops.size())};
      arena_.insert(arena_.end(), hops.begin(), hops.end());
      bucket.push_back(handle);
      handles.push_back(handle);
      ++unique_paths_;
    }
  }

  // ---- Phase 2a: mark each row's target shard(s), sequentially. A row
  // lands in its prefix country's shard and, when different, its VP
  // country's shard; invalid codes never create a shard. Row lists stay
  // ascending because i is.
  std::unordered_map<geo::CountryCode, std::vector<std::uint32_t>,
                     geo::CountryCodeHash>
      rows_of;
  for (std::uint32_t i = 0; i < n; ++i) {
    const geo::CountryCode pc = paths[i].prefix_country;
    const geo::CountryCode vc = paths[i].vp_country;
    if (pc.valid()) rows_of[pc].push_back(i);
    if (vc.valid() && vc != pc) rows_of[vc].push_back(i);
  }

  shard_countries_.reserve(rows_of.size());
  // lint: ordered(key collection only; sorted immediately below)
  for (const auto& [cc, _] : rows_of) shard_countries_.push_back(cc);
  std::sort(shard_countries_.begin(), shard_countries_.end());

  // ---- Phase 2b: gather columns, selection lists, digest and cost per
  // shard, shard-parallel. Shards are disjoint, so workers share nothing
  // but read-only inputs.
  shards_.resize(shard_countries_.size());
  const bgp::Asn* arena = arena_.data();
  util::parallel_for(
      shard_countries_.size(),
      [&](std::size_t s) {
        PathShard& sh = shards_[s];
        const geo::CountryCode cc = shard_countries_[s];
        const std::vector<std::uint32_t>& rows = rows_of.at(cc);
        const std::size_t m = rows.size();
        sh.country_ = cc;
        sh.arena_ = arena;
        sh.vp_.reserve(m);
        sh.vp_country_.reserve(m);
        sh.prefix_.reserve(m);
        sh.prefix_country_.reserve(m);
        sh.weight_.reserve(m);
        sh.handle_.reserve(m);

        std::uint64_t digest = 14695981039346656037ull;
        std::uint64_t hop_cost = 0;
        for (std::uint32_t local = 0; local < m; ++local) {
          const std::uint32_t g = rows[local];
          const sanitize::SanitizedPath& sp = paths[g];
          sh.vp_.push_back(sp.vp);
          sh.vp_country_.push_back(sp.vp_country);
          sh.prefix_.push_back(sp.prefix);
          sh.prefix_country_.push_back(sp.prefix_country);
          sh.weight_.push_back(sp.weight);
          sh.handle_.push_back(handles[g]);

          const bool prefix_local = sp.prefix_country == cc;
          const bool vp_local = sp.vp_country == cc;
          if (prefix_local) {
            sh.prefix_rows_.push_back(local);
            if (vp_local) {
              sh.national_rows_.push_back(local);
            } else if (sp.vp_country.valid()) {
              sh.international_rows_.push_back(local);
            }
          }
          if (vp_local) {
            sh.vp_rows_.push_back(local);
            if (sp.prefix_country.valid() && !prefix_local) {
              sh.outbound_rows_.push_back(local);
            }
          }

          // Digest hashes hop CONTENT, never arena offsets — offsets
          // shift between loads even when this country's paths did not.
          fnv_mix(digest, sp.vp.ip);
          fnv_mix(digest, sp.vp.asn);
          fnv_mix(digest, sp.vp_country.raw());
          fnv_mix(digest, sp.prefix.address());
          fnv_mix(digest, sp.prefix.length());
          fnv_mix(digest, sp.prefix_country.raw());
          fnv_mix(digest, sp.weight);
          const std::span<const bgp::Asn> hops = sp.path.hops();
          fnv_mix(digest, hops.size());
          for (bgp::Asn hop : hops) fnv_mix(digest, hop);
          hop_cost += hops.size();
        }
        sh.digest_ = digest;
        sh.cost_ = static_cast<std::uint64_t>(m) + hop_cost;
      },
      threads);

  // Census domains, derived from the (sorted) shards so they come out
  // ascending without another sort.
  for (const PathShard& sh : shards_) {
    if (!sh.prefix_rows_.empty()) prefix_countries_.push_back(sh.country_);
    if (!sh.vp_rows_.empty()) vp_countries_.push_back(sh.country_);
  }
}

const PathShard* ShardedPathStore::shard(geo::CountryCode country) const noexcept {
  const auto it = std::lower_bound(shard_countries_.begin(),
                                   shard_countries_.end(), country);
  if (it == shard_countries_.end() || *it != country) return nullptr;
  return &shards_[static_cast<std::size_t>(it - shard_countries_.begin())];
}

CountryView ShardedPathStore::national_view(geo::CountryCode country) const {
  const PathShard* sh = shard(country);
  if (sh == nullptr) {
    return CountryView{sanitize::PathColumns{}, std::span<const std::uint32_t>{},
                       country, ViewKind::kNational};
  }
  return sh->national_view();
}

CountryView ShardedPathStore::international_view(geo::CountryCode country) const {
  const PathShard* sh = shard(country);
  if (sh == nullptr) {
    return CountryView{sanitize::PathColumns{}, std::span<const std::uint32_t>{},
                       country, ViewKind::kInternational};
  }
  return sh->international_view();
}

CountryView ShardedPathStore::outbound_view(geo::CountryCode country) const {
  const PathShard* sh = shard(country);
  if (sh == nullptr) {
    return CountryView{sanitize::PathColumns{}, std::span<const std::uint32_t>{},
                       country, ViewKind::kOutbound};
  }
  return sh->outbound_view();
}

CountryView ShardedPathStore::view(geo::CountryCode country,
                                   ViewKind kind) const {
  switch (kind) {
    case ViewKind::kInternational: return international_view(country);
    case ViewKind::kOutbound: return outbound_view(country);
    case ViewKind::kNational: break;
  }
  return national_view(country);
}

std::vector<std::uint64_t> ShardedPathStore::census_costs() const {
  std::vector<std::uint64_t> costs;
  costs.reserve(prefix_countries_.size());
  for (geo::CountryCode cc : prefix_countries_) {
    const PathShard* sh = shard(cc);
    costs.push_back(sh == nullptr ? 0 : sh->cost());
  }
  return costs;
}

std::uint64_t ShardedPathStore::shard_digest(geo::CountryCode country) const noexcept {
  const PathShard* sh = shard(country);
  return sh == nullptr ? 0 : sh->digest();
}

}  // namespace georank::core
