#include "core/path_store.hpp"

#include <algorithm>
#include <cstddef>
#include <utility>

namespace georank::core {

namespace {

/// FNV-1a over the hop sequence — cheap, deterministic, and only used to
/// pre-select interning candidates (full content compare decides).
std::uint64_t hash_hops(std::span<const bgp::Asn> hops) noexcept {
  std::uint64_t h = 14695981039346656037ull;
  for (bgp::Asn hop : hops) {
    h ^= hop;
    h *= 1099511628211ull;
  }
  return h;
}

}  // namespace

PathStore::PathStore(std::span<const sanitize::SanitizedPath> paths) {
  const std::size_t n = paths.size();
  vp_.reserve(n);
  vp_country_.reserve(n);
  prefix_.reserve(n);
  prefix_country_.reserve(n);
  weight_.reserve(n);
  handle_.reserve(n);

  // hash(hops) -> handles of distinct interned paths with that hash.
  std::unordered_map<std::uint64_t, std::vector<sanitize::PathHandle>> interned;
  interned.reserve(n);

  for (const sanitize::SanitizedPath& sp : paths) {
    vp_.push_back(sp.vp);
    vp_country_.push_back(sp.vp_country);
    prefix_.push_back(sp.prefix);
    prefix_country_.push_back(sp.prefix_country);
    weight_.push_back(sp.weight);

    const std::span<const bgp::Asn> hops = sp.path.hops();
    std::vector<sanitize::PathHandle>& bucket = interned[hash_hops(hops)];
    const sanitize::PathHandle* found = nullptr;
    for (const sanitize::PathHandle& cand : bucket) {
      if (cand.length == hops.size() &&
          std::equal(hops.begin(), hops.end(),
                     arena_.begin() + cand.offset)) {
        found = &cand;
        break;
      }
    }
    if (found != nullptr) {
      handle_.push_back(*found);
    } else {
      const sanitize::PathHandle handle{
          static_cast<std::uint32_t>(arena_.size()),
          static_cast<std::uint32_t>(hops.size())};
      arena_.insert(arena_.end(), hops.begin(), hops.end());
      bucket.push_back(handle);
      handle_.push_back(handle);
      ++unique_paths_;
    }
  }

  // Bucket path indices by country, in path order — every bucket is an
  // ascending index list, so iterating a view visits paths in exactly the
  // order a linear filter over the original vector would.
  for (std::uint32_t i = 0; i < n; ++i) {
    if (prefix_country_[i].valid()) by_prefix_country_[prefix_country_[i]].push_back(i);
    if (vp_country_[i].valid()) by_vp_country_[vp_country_[i]].push_back(i);
  }

  prefix_countries_.reserve(by_prefix_country_.size());
  for (const auto& [cc, _] : by_prefix_country_) prefix_countries_.push_back(cc);
  std::sort(prefix_countries_.begin(), prefix_countries_.end());

  vp_countries_.reserve(by_vp_country_.size());
  for (const auto& [cc, _] : by_vp_country_) vp_countries_.push_back(cc);
  std::sort(vp_countries_.begin(), vp_countries_.end());
}

std::span<const std::uint32_t> PathStore::by_prefix_country(
    geo::CountryCode country) const noexcept {
  auto it = by_prefix_country_.find(country);
  if (it == by_prefix_country_.end()) return {};
  return it->second;
}

std::span<const std::uint32_t> PathStore::by_vp_country(
    geo::CountryCode country) const noexcept {
  auto it = by_vp_country_.find(country);
  if (it == by_vp_country_.end()) return {};
  return it->second;
}

CountryView PathStore::national_view(geo::CountryCode country) const {
  std::vector<std::uint32_t> indices;
  for (std::uint32_t i : by_prefix_country(country)) {
    if (vp_country_[i] == country) indices.push_back(i);
  }
  return CountryView{*this, std::move(indices), country, ViewKind::kNational};
}

CountryView PathStore::international_view(geo::CountryCode country) const {
  std::vector<std::uint32_t> indices;
  for (std::uint32_t i : by_prefix_country(country)) {
    if (vp_country_[i].valid() && vp_country_[i] != country) {
      indices.push_back(i);
    }
  }
  return CountryView{*this, std::move(indices), country,
                     ViewKind::kInternational};
}

CountryView PathStore::outbound_view(geo::CountryCode country) const {
  std::vector<std::uint32_t> indices;
  for (std::uint32_t i : by_vp_country(country)) {
    if (prefix_country_[i].valid() && prefix_country_[i] != country) {
      indices.push_back(i);
    }
  }
  return CountryView{*this, std::move(indices), country, ViewKind::kOutbound};
}

CountryView PathStore::view(geo::CountryCode country, ViewKind kind) const {
  switch (kind) {
    case ViewKind::kInternational:
      return international_view(country);
    case ViewKind::kOutbound:
      return outbound_view(country);
    case ViewKind::kNational:
      break;
  }
  return national_view(country);
}

}  // namespace georank::core
