#include "core/country_rankings.hpp"

namespace georank::core {

rank::Ranking CountryRankings::cone_ranking(const CountryView& view) const {
  rank::CustomerCone cone{*relationships_};
  return cone.compute(view.paths).by_addresses();
}

rank::Ranking CountryRankings::hegemony_ranking(const CountryView& view) const {
  rank::Hegemony hegemony{hegemony_};
  return hegemony.compute(view.paths).ranking();
}

OutboundMetrics CountryRankings::compute_outbound(
    std::span<const sanitize::SanitizedPath> all_paths,
    geo::CountryCode country) const {
  OutboundMetrics out;
  out.country = country;
  CountryView view = ViewBuilder::outbound(all_paths, country);
  out.vps = view.vp_count();
  out.foreign_addresses = view.address_weight();
  out.cco = cone_ranking(view);
  out.aho = hegemony_ranking(view);
  return out;
}

CountryMetrics CountryRankings::compute(
    std::span<const sanitize::SanitizedPath> all_paths,
    geo::CountryCode country) const {
  CountryMetrics out;
  out.country = country;

  CountryView national = ViewBuilder::national(all_paths, country);
  CountryView international = ViewBuilder::international(all_paths, country);

  out.national_vps = national.vp_count();
  out.international_vps = international.vp_count();
  out.national_addresses = national.address_weight();
  out.international_addresses = international.address_weight();

  out.ccn = cone_ranking(national);
  out.cci = cone_ranking(international);
  out.ahn = hegemony_ranking(national);
  out.ahi = hegemony_ranking(international);
  return out;
}

}  // namespace georank::core
