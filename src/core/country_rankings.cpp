#include "core/country_rankings.hpp"

#include "core/path_store.hpp"
#include "core/sharded_path_store.hpp"

namespace georank::core {

namespace {

CountryMetrics metrics_from_views(const CountryRankings& rankings,
                                  geo::CountryCode country,
                                  const CountryView& national,
                                  const CountryView& international) {
  CountryMetrics out;
  out.country = country;

  out.national_vps = national.vp_count();
  out.international_vps = international.vp_count();
  out.national_addresses = national.address_weight();
  out.international_addresses = international.address_weight();

  out.ccn = rankings.cone_ranking(national);
  out.cci = rankings.cone_ranking(international);
  out.ahn = rankings.hegemony_ranking(national);
  out.ahi = rankings.hegemony_ranking(international);
  return out;
}

OutboundMetrics outbound_from_view(const CountryRankings& rankings,
                                   geo::CountryCode country,
                                   const CountryView& view) {
  OutboundMetrics out;
  out.country = country;
  out.vps = view.vp_count();
  out.foreign_addresses = view.address_weight();
  out.cco = rankings.cone_ranking(view);
  out.aho = rankings.hegemony_ranking(view);
  return out;
}

}  // namespace

rank::Ranking CountryRankings::cone_ranking(const CountryView& view) const {
  rank::CustomerCone cone{*relationships_};
  return cone.compute(view.paths()).by_addresses();
}

rank::Ranking CountryRankings::hegemony_ranking(const CountryView& view) const {
  rank::Hegemony hegemony{hegemony_};
  return hegemony.compute(view.paths()).ranking();
}

OutboundMetrics CountryRankings::compute_outbound(
    std::span<const sanitize::SanitizedPath> all_paths,
    geo::CountryCode country) const {
  return outbound_from_view(*this, country,
                            ViewBuilder::outbound(all_paths, country));
}

CountryMetrics CountryRankings::compute(
    std::span<const sanitize::SanitizedPath> all_paths,
    geo::CountryCode country) const {
  return metrics_from_views(*this, country,
                            ViewBuilder::national(all_paths, country),
                            ViewBuilder::international(all_paths, country));
}

CountryMetrics CountryRankings::compute(const PathStore& store,
                                        geo::CountryCode country) const {
  return metrics_from_views(*this, country, store.national_view(country),
                            store.international_view(country));
}

OutboundMetrics CountryRankings::compute_outbound(
    const PathStore& store, geo::CountryCode country) const {
  return outbound_from_view(*this, country, store.outbound_view(country));
}

CountryMetrics CountryRankings::compute(const ShardedPathStore& store,
                                        geo::CountryCode country) const {
  return metrics_from_views(*this, country, store.national_view(country),
                            store.international_view(country));
}

OutboundMetrics CountryRankings::compute_outbound(
    const ShardedPathStore& store, geo::CountryCode country) const {
  return outbound_from_view(*this, country, store.outbound_view(country));
}

}  // namespace georank::core
