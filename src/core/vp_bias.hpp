// Vantage-point bias diagnostics (paper §2 / §7: "any single BGP peer
// will have a set of AS paths that favor ASes topologically close to the
// peer"; expanded collection "would facilitate exploration of how
// VP-proximity bias affects the two metrics").
//
// Two diagnostics over one country view:
//
//   * proximity bias: correlation between an AS's score and its mean
//     path-hop distance from the view's VPs — strongly negative means
//     the metric rewards being near the VPs rather than being important;
//   * VP influence: for each VP, the NDCG between the ranking WITHOUT
//     that VP and the full ranking — low values flag over-influential
//     VPs whose removal reshuffles the top ranks (the instability §4
//     measures in aggregate, attributed to individual VPs).
#pragma once

#include <vector>

#include "core/country_rankings.hpp"
#include "core/stability.hpp"
#include "core/views.hpp"

namespace georank::core {

struct ProximityBias {
  /// Spearman correlation between top-k scores and mean VP distance.
  /// Near -1: score is mostly proximity. Near 0: independent.
  double score_distance_correlation = 0.0;
  /// Mean over the top-k of (mean hops from the view's VPs to the AS).
  double mean_distance = 0.0;
  std::size_t ases_considered = 0;
};

struct VpInfluence {
  bgp::VpId vp;
  /// NDCG of the leave-this-VP-out ranking vs the full ranking.
  double leave_out_ndcg = 1.0;
  std::size_t paths = 0;
};

class VpBiasAnalyzer {
 public:
  explicit VpBiasAnalyzer(const CountryRankings& rankings)
      : rankings_(&rankings) {}

  /// Proximity bias of one metric on one view. Distances are hop counts
  /// along the view's own observed paths (position of the AS in each
  /// path containing it).
  [[nodiscard]] ProximityBias proximity_bias(const CountryView& view,
                                             MetricKind metric,
                                             std::size_t top_k = 10) const;

  /// Influence of every VP in the view, sorted ascending by NDCG
  /// (most influential first).
  [[nodiscard]] std::vector<VpInfluence> vp_influence(const CountryView& view,
                                                      MetricKind metric,
                                                      std::size_t top_k = 10) const;

 private:
  const CountryRankings* rankings_;
};

}  // namespace georank::core
