// National and international per-country views (§3.2, Figure 3, Table 2).
//
//   national view:      paths from IN-country VPs to IN-country prefixes —
//                       how the country reaches itself;
//   international view: paths from OUT-of-country VPs to IN-country
//                       prefixes — how the rest of the world reaches it.
//
// Views are materialized as path subsets of the sanitized set; every
// country metric is "the corresponding global metric computed on a view".
#pragma once

#include <span>
#include <vector>

#include "bgp/route.hpp"
#include "geo/country.hpp"
#include "sanitize/path_sanitizer.hpp"

namespace georank::core {

enum class ViewKind { kNational, kInternational, kOutbound };

struct CountryView {
  geo::CountryCode country;
  ViewKind kind = ViewKind::kNational;
  std::vector<sanitize::SanitizedPath> paths;

  /// Distinct VPs contributing to the view.
  [[nodiscard]] std::vector<bgp::VpId> vps() const;
  [[nodiscard]] std::size_t vp_count() const { return vps().size(); }

  /// Total effective address weight of the view's distinct prefixes.
  [[nodiscard]] std::uint64_t address_weight() const;

  /// Subset of this view restricted to the given VPs (downsampling).
  [[nodiscard]] CountryView restricted_to(std::span<const bgp::VpId> keep) const;
};

class ViewBuilder {
 public:
  [[nodiscard]] static CountryView national(
      std::span<const sanitize::SanitizedPath> all, geo::CountryCode country);

  [[nodiscard]] static CountryView international(
      std::span<const sanitize::SanitizedPath> all, geo::CountryCode country);

  /// OUTBOUND view (§7's proposed future direction, implemented here):
  /// paths from IN-country VPs to OUT-of-country prefixes — which ASes
  /// the country relies on to reach the rest of the world. Subject to
  /// the same caveat as national views: it needs in-country VPs.
  [[nodiscard]] static CountryView outbound(
      std::span<const sanitize::SanitizedPath> all, geo::CountryCode country);

  /// All countries with at least one geolocated prefix in the path set.
  [[nodiscard]] static std::vector<geo::CountryCode> countries(
      std::span<const sanitize::SanitizedPath> all);
};

}  // namespace georank::core
