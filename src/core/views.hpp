// National and international per-country views (§3.2, Figure 3, Table 2).
//
//   national view:      paths from IN-country VPs to IN-country prefixes —
//                       how the country reaches itself;
//   international view: paths from OUT-of-country VPs to IN-country
//                       prefixes — how the rest of the world reaches it.
//
// Every country metric is "the corresponding global metric computed on a
// view". Views used to materialize their path subset (deep-copying every
// AsPath); they are now INDEX LISTS over columnar storage — an O(view
// size) gather instead of an O(all paths) copy. Since the sharding
// refactor a view no longer knows (or cares) which store it came from:
// it binds a sanitize::PathColumns (seven raw pointers) that may address
// a whole PathStore or one shard of a ShardedPathStore. Shard-backed
// views can additionally BORROW the shard's precomputed index list, so
// constructing one allocates nothing at all.
//
// Lifetime: a view borrows its columns (and, when borrowed, its index
// list) — the owning store/shard must outlive it — unless it was built
// standalone via from_paths(), in which case it owns a private store.
#pragma once

#include <cstdint>
#include <memory>
#include <span>
#include <vector>

#include "bgp/route.hpp"
#include "geo/country.hpp"
#include "sanitize/path_view.hpp"

namespace georank::core {

class PathStore;

enum class ViewKind { kNational, kInternational, kOutbound };

class CountryView {
 public:
  geo::CountryCode country;
  ViewKind kind = ViewKind::kNational;

  CountryView() = default;

  /// Borrowing view over any columnar storage (a whole PathStore or one
  /// shard): `cols`' backing store must outlive this view (and every
  /// view derived from it via restricted_to/without_vp). `indices` are
  /// ascending row indices into `cols`.
  CountryView(const sanitize::PathColumns& cols,
              std::vector<std::uint32_t> indices, geo::CountryCode country,
              ViewKind kind);

  /// Zero-copy borrowing view: the index list itself is borrowed too (a
  /// shard's precomputed selection). Both the columns' backing store and
  /// the index list must outlive this view; derived subsets and copies
  /// fall back to owned index storage automatically.
  CountryView(const sanitize::PathColumns& cols,
              std::span<const std::uint32_t> indices, geo::CountryCode country,
              ViewKind kind);

  /// Borrowing view over a whole store (compatibility shorthand for
  /// {store.columns(), ...}).
  CountryView(const PathStore& store, std::vector<std::uint32_t> indices,
              geo::CountryCode country, ViewKind kind);

  /// Standalone view owning a private store built from `paths` — the
  /// compatibility path for hand-built fixtures and span-based
  /// ViewBuilder calls. Copies exactly once, at construction.
  [[nodiscard]] static CountryView from_paths(
      std::vector<sanitize::SanitizedPath> paths, geo::CountryCode country,
      ViewKind kind);

  [[nodiscard]] std::size_t size() const noexcept { return indices_.size(); }
  [[nodiscard]] bool empty() const noexcept { return indices_.empty(); }

  /// Zero-copy record access / iteration (records are cheap proxies).
  [[nodiscard]] sanitize::PathRecord operator[](std::size_t i) const;
  [[nodiscard]] sanitize::PathsView paths() const noexcept;
  [[nodiscard]] sanitize::PathsView::iterator begin() const noexcept {
    return paths_.begin();
  }
  [[nodiscard]] sanitize::PathsView::iterator end() const noexcept {
    return paths_.end();
  }

  /// Distinct VPs contributing to the view (sorted ascending).
  [[nodiscard]] std::vector<bgp::VpId> vps() const;
  /// Distinct-VP count WITHOUT materializing the sorted vector.
  [[nodiscard]] std::size_t vp_count() const;

  /// Total effective address weight of the view's distinct prefixes.
  [[nodiscard]] std::uint64_t address_weight() const;

  /// Subset restricted to the given VPs (downsampling). Shares this
  /// view's columns; only the index list is rebuilt.
  [[nodiscard]] CountryView restricted_to(std::span<const bgp::VpId> keep) const;
  /// Leave-one-VP-out subset (vp_bias's influence analysis).
  [[nodiscard]] CountryView without_vp(bgp::VpId vp) const;

  [[nodiscard]] std::span<const std::uint32_t> indices() const noexcept {
    return indices_;
  }

 private:
  CountryView(std::shared_ptr<const PathStore> owned,
              std::vector<std::uint32_t> indices, geo::CountryCode country,
              ViewKind kind);
  void rebind() noexcept;

  /// Columns of whichever store/shard backs this view (all null for a
  /// default-constructed empty view).
  sanitize::PathColumns cols_{};
  /// Set only for standalone views; keeps the private store alive across
  /// copies and derived subsets.
  std::shared_ptr<const PathStore> owned_;
  /// Owned index storage — empty when the index list is borrowed.
  std::vector<std::uint32_t> indices_storage_;
  /// The active selection: points at indices_storage_ when owned, at the
  /// lender's list when borrowed.
  std::span<const std::uint32_t> indices_;
  /// Cached PathsView over (cols_, indices_); rebound on copy/move.
  sanitize::PathsView paths_;

 public:
  // indices_storage_ lives inside the view, so copies/moves must re-point
  // both indices_ and paths_.
  CountryView(const CountryView& other);
  CountryView(CountryView&& other) noexcept;
  CountryView& operator=(const CountryView& other);
  CountryView& operator=(CountryView&& other) noexcept;
  ~CountryView() = default;
};

class ViewBuilder {
 public:
  // Span-based builders: filter `all` and copy the matching paths into a
  // standalone view (one pass, one copy). Kept for call sites that have
  // no PathStore; the zero-copy equivalents live on PathStore /
  // ShardedPathStore themselves (national_view/international_view/
  // outbound_view).
  [[nodiscard]] static CountryView national(
      std::span<const sanitize::SanitizedPath> all, geo::CountryCode country);

  [[nodiscard]] static CountryView international(
      std::span<const sanitize::SanitizedPath> all, geo::CountryCode country);

  /// OUTBOUND view (§7's proposed future direction, implemented here):
  /// paths from IN-country VPs to OUT-of-country prefixes — which ASes
  /// the country relies on to reach the rest of the world. Subject to
  /// the same caveat as national views: it needs in-country VPs.
  [[nodiscard]] static CountryView outbound(
      std::span<const sanitize::SanitizedPath> all, geo::CountryCode country);

  /// All countries with at least one geolocated prefix in the path set.
  [[nodiscard]] static std::vector<geo::CountryCode> countries(
      std::span<const sanitize::SanitizedPath> all);
};

}  // namespace georank::core
