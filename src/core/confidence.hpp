// Confidence tiers for degraded-data robustness.
//
// The paper is explicit that its rankings are only meaningful with
// sufficient observation: §5's stability analysis derives a minimum VP
// count per view before NDCG stabilizes, and Appendix B's geolocation
// threshold rejects prefixes without a >= 50% address-consensus country.
// A country seen by one vantage point, or whose prefixes mostly fail geo
// consensus, must not be ranked with the same apparent authority as one
// with excellent coverage.
//
// This header is deliberately DEPENDENCY-FREE (header-only, no library):
// core::Pipeline annotates every CountryMetrics with a tier, and the
// robust:: library builds full health reports and fault-injection
// harnesses on top of core, so the tier vocabulary sits in core — the
// lowest module that names it — and robust:: re-exports it (see the
// aliases at the bottom; robust/confidence.hpp forwards here).
#pragma once

#include <cstddef>
#include <cstdint>
#include <string_view>

namespace georank::core {

/// Evidence basis of a ranking, worst-first ordered so that
/// worst(a, b) == max(a, b).
enum class ConfidenceTier : std::uint8_t {
  kHigh = 0,      // enough VPs and geo consensus to trust the ordering
  kDegraded = 1,  // usable, but below the paper's guidance; expect churn
  kInsufficient = 2,  // too little evidence; treat scores as unranked
};

[[nodiscard]] constexpr std::string_view to_string(ConfidenceTier tier) noexcept {
  switch (tier) {
    case ConfidenceTier::kHigh: return "high";
    case ConfidenceTier::kDegraded: return "degraded";
    case ConfidenceTier::kInsufficient: return "insufficient";
  }
  return "?";
}

[[nodiscard]] constexpr ConfidenceTier worst(ConfidenceTier a,
                                             ConfidenceTier b) noexcept {
  return a < b ? b : a;
}

/// The thresholds that map raw health evidence onto tiers. Defaults
/// follow the paper: >= 3 VPs per view (§5 stability guidance) and
/// >= 50% address-weighted geo consensus (Appendix B).
struct DegradationPolicy {
  /// Minimum distinct VPs a view needs before its ranking is kHigh.
  std::size_t min_vps = 3;
  /// Minimum share of a country's geo evidence (accepted effective
  /// addresses / (accepted + no-consensus)) before geolocation is kHigh.
  double min_geo_consensus = 0.5;

  /// Tier of one view by its distinct-VP count: 0 VPs means the view
  /// does not exist (kInsufficient); below min_vps is kDegraded.
  [[nodiscard]] constexpr ConfidenceTier view_tier(std::size_t vps) const noexcept {
    if (vps == 0) return ConfidenceTier::kInsufficient;
    if (vps < min_vps) return ConfidenceTier::kDegraded;
    return ConfidenceTier::kHigh;
  }

  /// Tier of a country's geolocation evidence. `accepted` is the
  /// effective address weight that reached consensus; `rejected` the
  /// weight of no-consensus prefixes whose plurality was this country.
  [[nodiscard]] constexpr ConfidenceTier geo_tier(
      std::uint64_t accepted, std::uint64_t rejected) const noexcept {
    if (accepted == 0) return ConfidenceTier::kInsufficient;
    double share = static_cast<double>(accepted) /
                   static_cast<double>(accepted + rejected);
    return share >= min_geo_consensus ? ConfidenceTier::kHigh
                                      : ConfidenceTier::kDegraded;
  }

  /// Share of geo evidence that reached consensus, in [0,1]; 1.0 when
  /// there is no evidence at all (nothing was rejected either).
  [[nodiscard]] static constexpr double geo_consensus_share(
      std::uint64_t accepted, std::uint64_t rejected) noexcept {
    std::uint64_t total = accepted + rejected;
    if (total == 0) return 1.0;
    return static_cast<double>(accepted) / static_cast<double>(total);
  }

  /// Overall tier of a country's metrics. The international view and geo
  /// evidence gate hard (they feed CCI/AHI, the paper's primary
  /// metrics); a weak NATIONAL view cannot make the country
  /// kInsufficient — CCN/AHN merely degrade — because most countries
  /// host no vantage point at all (§3.2, Table 2).
  [[nodiscard]] constexpr ConfidenceTier country_tier(
      std::size_t national_vps, std::size_t international_vps,
      std::uint64_t geo_accepted, std::uint64_t geo_rejected) const noexcept {
    ConfidenceTier tier = worst(view_tier(international_vps),
                                geo_tier(geo_accepted, geo_rejected));
    if (tier == ConfidenceTier::kHigh &&
        view_tier(national_vps) != ConfidenceTier::kHigh) {
      tier = ConfidenceTier::kDegraded;
    }
    return tier;
  }
};

}  // namespace georank::core

// The vocabulary predates the core<->robust layering fix and the whole
// tree spells it robust::ConfidenceTier etc.; keep those names valid.
namespace georank::robust {
using core::ConfidenceTier;
using core::DegradationPolicy;
using core::to_string;
using core::worst;
}  // namespace georank::robust
