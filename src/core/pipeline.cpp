#include "core/pipeline.hpp"

#include <stdexcept>
#include <string>

#include "util/parallel_for.hpp"

namespace georank::core {

Pipeline::Pipeline(const geo::GeoDatabase& geo_db, const geo::VpGeolocator& vps,
                   const sanitize::AsnRegistry& registry,
                   const topo::AsGraph& relationships, PipelineConfig config)
    : geo_db_(&geo_db),
      vps_(&vps),
      registry_(&registry),
      relationships_(&relationships),
      config_(std::move(config)),
      rankings_(relationships, config_.hegemony) {}

void Pipeline::load(const bgp::RibCollection& ribs) {
  sanitize::PathSanitizer sanitizer{*geo_db_, *vps_, *registry_, config_.sanitizer};
  sanitized_ = sanitizer.run(ribs);
  store_.emplace(std::span<const sanitize::SanitizedPath>{sanitized_->paths});
  clear_caches();
}

void Pipeline::load_text(std::string_view mrt_text) {
  bgp::MrtStreamLoader loader{config_.ingest};
  bgp::RibCollection ribs = loader.load_text(mrt_text);
  parse_stats_ = loader.stats();
  load(ribs);
}

void Pipeline::load_stream(std::istream& is) {
  bgp::MrtStreamLoader loader{config_.ingest};
  bgp::RibCollection ribs = loader.load(is);
  parse_stats_ = loader.stats();
  load(ribs);
}

void Pipeline::require_loaded(const char* where) const {
  if (!sanitized_) {
    throw std::logic_error{std::string{where} + ": no RIBs loaded"};
  }
}

const sanitize::SanitizeResult& Pipeline::sanitized() const {
  require_loaded("Pipeline::sanitized()");
  return *sanitized_;
}

const PathStore& Pipeline::store() const {
  require_loaded("Pipeline::store()");
  return *store_;
}

void Pipeline::clear_caches() const {
  const std::lock_guard<std::mutex> lock(cache_->mutex);
  cache_->country.clear();
  cache_->outbound.clear();
}

CountryMetrics Pipeline::country_uncached(geo::CountryCode country) const {
  return rankings_.compute(*store_, country);
}

CountryMetrics Pipeline::country(geo::CountryCode country) const {
  require_loaded("Pipeline::country()");
  {
    const std::lock_guard<std::mutex> lock(cache_->mutex);
    auto it = cache_->country.find(country.raw());
    if (it != cache_->country.end()) return it->second;
  }
  CountryMetrics metrics = country_uncached(country);
  const std::lock_guard<std::mutex> lock(cache_->mutex);
  return cache_->country.try_emplace(country.raw(), std::move(metrics))
      .first->second;
}

OutboundMetrics Pipeline::outbound(geo::CountryCode country) const {
  require_loaded("Pipeline::outbound()");
  {
    const std::lock_guard<std::mutex> lock(cache_->mutex);
    auto it = cache_->outbound.find(country.raw());
    if (it != cache_->outbound.end()) return it->second;
  }
  OutboundMetrics metrics = rankings_.compute_outbound(*store_, country);
  const std::lock_guard<std::mutex> lock(cache_->mutex);
  return cache_->outbound.try_emplace(country.raw(), std::move(metrics))
      .first->second;
}

std::vector<CountryMetrics> Pipeline::all_countries() const {
  require_loaded("Pipeline::all_countries()");
  const std::vector<geo::CountryCode>& countries = store_->countries();

  // Disjoint-slot writes keyed by the (sorted) country list: the output
  // is a pure function of the inputs, independent of scheduling, so the
  // census is identical for any GEORANK_THREADS value.
  std::vector<CountryMetrics> out(countries.size());
  util::parallel_for(countries.size(), [&](std::size_t i) {
    out[i] = country(countries[i]);
  });
  return out;
}

rank::Ranking Pipeline::global_cone_by_as_count() const {
  rank::CustomerCone cone{*relationships_};
  return cone.compute(store().all()).by_as_count();
}

rank::Ranking Pipeline::global_cone_by_addresses() const {
  rank::CustomerCone cone{*relationships_};
  return cone.compute(store().all()).by_addresses();
}

rank::Ranking Pipeline::global_hegemony() const {
  rank::Hegemony hegemony{config_.hegemony};
  return hegemony.compute(store().all()).ranking();
}

rank::Ranking Pipeline::ahc(const rank::AsRegistry& registry,
                            geo::CountryCode country) const {
  rank::AhcRanking ahc{registry, config_.hegemony};
  return ahc.compute(store().all(), country);
}

rank::Ranking Pipeline::cti(geo::CountryCode country) const {
  require_loaded("Pipeline::cti()");
  CountryView view = store_->international_view(country);
  rank::CtiRanking cti{*relationships_};
  return cti.compute(view.paths());
}

}  // namespace georank::core
