#include "core/pipeline.hpp"

#include <shared_mutex>
#include <stdexcept>
#include <string>
#include <unordered_set>

#include "util/parallel_for.hpp"

namespace georank::core {

Pipeline::Pipeline(const geo::GeoDatabase& geo_db, const geo::VpGeolocator& vps,
                   const sanitize::AsnRegistry& registry,
                   const topo::AsGraph& relationships, PipelineConfig config)
    : geo_db_(&geo_db),
      vps_(&vps),
      registry_(&registry),
      relationships_(&relationships),
      config_(std::move(config)),
      rankings_(relationships, config_.hegemony) {}

void Pipeline::load(const bgp::RibCollection& ribs) {
  // No parse phase on this path: the stats describe the CURRENT world,
  // so swap in an empty set rather than leaving a stale one visible.
  load_impl(ribs, bgp::MrtParseStats{});
}

void Pipeline::load_impl(const bgp::RibCollection& ribs, bgp::MrtParseStats stats) {
  sanitize::PathSanitizer sanitizer{*geo_db_, *vps_, *registry_, config_.sanitizer};
  // Sanitize outside the reload lock (it is by far the expensive part),
  // then swap the world in exclusively so racing queries see either the
  // old state or the new one, never a mix.
  sanitize::SanitizeResult result = sanitizer.run(ribs);
  const std::unique_lock<std::shared_mutex> reload(cache_->reload);
  parse_stats_ = std::move(stats);
  sanitized_ = std::move(result);
  store_.emplace(std::span<const sanitize::SanitizedPath>{sanitized_->paths});

  // Geolocation evidence for the confidence annotation: accepted weight
  // once per distinct sanitized prefix, plus the no-consensus weight each
  // plurality country lost.
  geo_evidence_.clear();
  std::unordered_set<bgp::Prefix, bgp::PrefixHash> seen;
  for (const sanitize::SanitizedPath& p : sanitized_->paths) {
    if (seen.insert(p.prefix).second) {
      geo_evidence_[p.prefix_country].accepted += p.weight;
    }
  }
  for (const auto& [country, tally] :
       sanitized_->prefix_geo.no_consensus_by_plurality()) {
    geo_evidence_[country].rejected += tally.addresses;
  }
  evict_changed_countries();
}

void Pipeline::evict_changed_countries() {
  // Per-country digests of the NEW world. The country-query digest folds
  // geo evidence in because CountryMetrics.confidence/geo_consensus are
  // computed from it; outbound metrics only see the shard.
  std::unordered_map<std::uint16_t, std::uint64_t> outbound_digests;
  std::unordered_map<std::uint16_t, std::uint64_t> country_digests;
  outbound_digests.reserve(store_->shards().size());
  country_digests.reserve(store_->shards().size());
  for (const PathShard& shard : store_->shards()) {
    const std::uint16_t key = shard.country().raw();
    outbound_digests.emplace(key, shard.digest());
    std::uint64_t d = shard.digest();
    const auto it = geo_evidence_.find(shard.country());
    const GeoEvidence evidence =
        it == geo_evidence_.end() ? GeoEvidence{} : it->second;
    d ^= evidence.accepted + 0x9e3779b97f4a7c15ull + (d << 6) + (d >> 2);
    d ^= evidence.rejected + 0x9e3779b97f4a7c15ull + (d << 6) + (d >> 2);
    country_digests.emplace(key, d);
  }

  // Evict exactly the entries whose digest changed or whose country no
  // longer has a shard (which also covers cached results for countries
  // that never had one — those were computed against no evidence and are
  // cheap to redo). Everything else stays warm across the reload.
  const auto changed = [](const std::unordered_map<std::uint16_t, std::uint64_t>&
                              previous,
                          const std::unordered_map<std::uint16_t, std::uint64_t>&
                              current,
                          std::uint16_t key) {
    const auto now = current.find(key);
    const auto then = previous.find(key);
    return now == current.end() || then == previous.end() ||
           now->second != then->second;
  };
  {
    const std::lock_guard<std::mutex> lock(cache_->mutex);
    std::erase_if(cache_->country, [&](const auto& entry) {
      return changed(country_digests_, country_digests, entry.first);
    });
    std::erase_if(cache_->outbound, [&](const auto& entry) {
      return changed(outbound_digests_, outbound_digests, entry.first);
    });
  }
  country_digests_ = std::move(country_digests);
  outbound_digests_ = std::move(outbound_digests);
}

void Pipeline::load_text(std::string_view mrt_text) {
  bgp::MrtStreamLoader loader{config_.ingest};
  bgp::RibCollection ribs = loader.load_text(mrt_text);
  load_impl(ribs, loader.stats());
}

void Pipeline::load_stream(std::istream& is) {
  bgp::MrtStreamLoader loader{config_.ingest};
  bgp::RibCollection ribs = loader.load(is);
  load_impl(ribs, loader.stats());
}

bool Pipeline::loaded() const {
  // Unsynchronized, this is a racy read of an optional being emplaced by
  // load() — ThreadSanitizer flagged it against the reload stress test.
  const std::shared_lock<std::shared_mutex> reload(cache_->reload);
  return sanitized_.has_value();
}

void Pipeline::require_loaded(const char* where) const {
  if (!sanitized_) {
    throw std::logic_error{std::string{where} + ": no RIBs loaded"};
  }
}

const sanitize::SanitizeResult& Pipeline::sanitized() const {
  require_loaded("Pipeline::sanitized()");
  return *sanitized_;
}

const ShardedPathStore& Pipeline::store() const {
  require_loaded("Pipeline::store()");
  return *store_;
}

void Pipeline::clear_caches() const {
  const std::lock_guard<std::mutex> lock(cache_->mutex);
  cache_->country.clear();
  cache_->outbound.clear();
}

Pipeline::CacheStats Pipeline::cache_stats() const {
  const std::lock_guard<std::mutex> lock(cache_->mutex);
  return CacheStats{cache_->country.size(), cache_->outbound.size()};
}

Pipeline::GeoEvidence Pipeline::geo_evidence(geo::CountryCode country) const {
  const std::shared_lock<std::shared_mutex> reload(cache_->reload);
  require_loaded("Pipeline::geo_evidence()");
  auto it = geo_evidence_.find(country);
  return it == geo_evidence_.end() ? GeoEvidence{} : it->second;
}

CountryMetrics Pipeline::country_uncached(geo::CountryCode country) const {
  CountryMetrics metrics = rankings_.compute(*store_, country);
  auto it = geo_evidence_.find(country);
  GeoEvidence evidence = it == geo_evidence_.end() ? GeoEvidence{} : it->second;
  metrics.geo_consensus = robust::DegradationPolicy::geo_consensus_share(
      evidence.accepted, evidence.rejected);
  metrics.confidence = config_.degradation.country_tier(
      metrics.national_vps, metrics.international_vps, evidence.accepted,
      evidence.rejected);
  return metrics;
}

CountryMetrics Pipeline::country(geo::CountryCode country) const {
  const std::shared_lock<std::shared_mutex> reload(cache_->reload);
  require_loaded("Pipeline::country()");
  {
    const std::lock_guard<std::mutex> lock(cache_->mutex);
    auto it = cache_->country.find(country.raw());
    if (it != cache_->country.end()) return it->second;
  }
  CountryMetrics metrics = country_uncached(country);
  const std::lock_guard<std::mutex> lock(cache_->mutex);
  return cache_->country.try_emplace(country.raw(), std::move(metrics))
      .first->second;
}

OutboundMetrics Pipeline::outbound(geo::CountryCode country) const {
  const std::shared_lock<std::shared_mutex> reload(cache_->reload);
  require_loaded("Pipeline::outbound()");
  {
    const std::lock_guard<std::mutex> lock(cache_->mutex);
    auto it = cache_->outbound.find(country.raw());
    if (it != cache_->outbound.end()) return it->second;
  }
  OutboundMetrics metrics = rankings_.compute_outbound(*store_, country);
  const std::lock_guard<std::mutex> lock(cache_->mutex);
  return cache_->outbound.try_emplace(country.raw(), std::move(metrics))
      .first->second;
}

std::vector<CountryMetrics> Pipeline::all_countries() const {
  // Copy the census under the reload lock, then release it before
  // fanning out: workers each take the shared lock inside country(), and
  // holding it here across the parallel region could deadlock against a
  // writer-preferring load(). Each country is therefore atomic against a
  // reload, the census as a whole is not.
  std::vector<geo::CountryCode> countries;
  std::vector<std::uint64_t> costs;
  {
    const std::shared_lock<std::shared_mutex> reload(cache_->reload);
    require_loaded("Pipeline::all_countries()");
    countries = store_->countries();
    costs = store_->census_costs();
  }

  // Disjoint-slot writes keyed by the (sorted) country list: the output
  // is a pure function of the inputs, independent of scheduling, so the
  // census is identical for any GEORANK_THREADS value. The costed
  // fan-out hands out the biggest shards first so one giant country
  // cannot end up as the last item on a single worker.
  std::vector<CountryMetrics> out(countries.size());
  util::parallel_for_costed(costs, [&](std::size_t i) {
    out[i] = country(countries[i]);
  });
  return out;
}

rank::Ranking Pipeline::global_cone_by_as_count() const {
  const std::shared_lock<std::shared_mutex> reload(cache_->reload);
  require_loaded("Pipeline::global_cone_by_as_count()");
  // Global queries run over the sanitized rows directly (original path
  // order, no cross-shard merge), which is exactly the iteration order
  // the monolithic store's all() produced.
  rank::CustomerCone cone{*relationships_};
  return cone.compute(sanitize::PathsView{sanitized_->paths}).by_as_count();
}

rank::Ranking Pipeline::global_cone_by_addresses() const {
  const std::shared_lock<std::shared_mutex> reload(cache_->reload);
  require_loaded("Pipeline::global_cone_by_addresses()");
  rank::CustomerCone cone{*relationships_};
  return cone.compute(sanitize::PathsView{sanitized_->paths}).by_addresses();
}

rank::Ranking Pipeline::global_hegemony() const {
  const std::shared_lock<std::shared_mutex> reload(cache_->reload);
  require_loaded("Pipeline::global_hegemony()");
  rank::Hegemony hegemony{config_.hegemony};
  return hegemony.compute(sanitize::PathsView{sanitized_->paths}).ranking();
}

rank::Ranking Pipeline::ahc(const rank::AsRegistry& registry,
                            geo::CountryCode country) const {
  const std::shared_lock<std::shared_mutex> reload(cache_->reload);
  require_loaded("Pipeline::ahc()");
  rank::AhcRanking ahc{registry, config_.hegemony};
  return ahc.compute(sanitize::PathsView{sanitized_->paths}, country);
}

rank::Ranking Pipeline::cti(geo::CountryCode country) const {
  const std::shared_lock<std::shared_mutex> reload(cache_->reload);
  require_loaded("Pipeline::cti()");
  CountryView view = store_->international_view(country);
  rank::CtiRanking cti{*relationships_};
  return cti.compute(view.paths());
}

}  // namespace georank::core
