#include "core/pipeline.hpp"

#include <stdexcept>

namespace georank::core {

Pipeline::Pipeline(const geo::GeoDatabase& geo_db, const geo::VpGeolocator& vps,
                   const sanitize::AsnRegistry& registry,
                   const topo::AsGraph& relationships, PipelineConfig config)
    : geo_db_(&geo_db),
      vps_(&vps),
      registry_(&registry),
      relationships_(&relationships),
      config_(std::move(config)),
      rankings_(relationships, config_.hegemony) {}

void Pipeline::load(const bgp::RibCollection& ribs) {
  sanitize::PathSanitizer sanitizer{*geo_db_, *vps_, *registry_, config_.sanitizer};
  sanitized_ = sanitizer.run(ribs);
}

void Pipeline::load_text(std::string_view mrt_text) {
  bgp::RibCollection ribs = bgp::from_mrt_text(mrt_text, &parse_stats_);
  load(ribs);
}

const sanitize::SanitizeResult& Pipeline::sanitized() const {
  if (!sanitized_) throw std::logic_error{"Pipeline: no data loaded"};
  return *sanitized_;
}

CountryMetrics Pipeline::country(geo::CountryCode country) const {
  return rankings_.compute(sanitized().paths, country);
}

OutboundMetrics Pipeline::outbound(geo::CountryCode country) const {
  return rankings_.compute_outbound(sanitized().paths, country);
}

rank::Ranking Pipeline::global_cone_by_as_count() const {
  rank::CustomerCone cone{*relationships_};
  return cone.compute(sanitized().paths).by_as_count();
}

rank::Ranking Pipeline::global_cone_by_addresses() const {
  rank::CustomerCone cone{*relationships_};
  return cone.compute(sanitized().paths).by_addresses();
}

rank::Ranking Pipeline::global_hegemony() const {
  rank::Hegemony hegemony{config_.hegemony};
  return hegemony.compute(sanitized().paths).ranking();
}

rank::Ranking Pipeline::ahc(const rank::AsRegistry& registry,
                            geo::CountryCode country) const {
  rank::AhcRanking ahc{registry, config_.hegemony};
  return ahc.compute(sanitized().paths, country);
}

rank::Ranking Pipeline::cti(geo::CountryCode country) const {
  CountryView view = ViewBuilder::international(sanitized().paths, country);
  rank::CtiRanking cti{*relationships_};
  return cti.compute(view.paths);
}

}  // namespace georank::core
