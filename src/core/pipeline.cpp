#include "core/pipeline.hpp"

#include <optional>
#include <set>
#include <shared_mutex>
#include <stdexcept>
#include <string>
#include <unordered_set>

#include "util/parallel_for.hpp"

namespace georank::core {

Pipeline::Pipeline(const geo::GeoDatabase& geo_db, const geo::VpGeolocator& vps,
                   const sanitize::AsnRegistry& registry,
                   const topo::AsGraph& relationships, PipelineConfig config)
    : geo_db_(&geo_db),
      vps_(&vps),
      registry_(&registry),
      relationships_(&relationships),
      config_(std::move(config)),
      rankings_(relationships, config_.hegemony),
      sanitizer_(geo_db, vps, registry, config_.sanitizer) {}

void Pipeline::load(const bgp::RibCollection& ribs) {
  // No parse phase on this path: the stats describe the CURRENT world,
  // so swap in an empty set rather than leaving a stale one visible.
  load_impl(ribs, bgp::MrtParseStats{});
}

void Pipeline::load_impl(const bgp::RibCollection& ribs, bgp::MrtParseStats stats) {
  const std::lock_guard<std::mutex> serial(cache_->load_serial);
  // Sanitize outside the reload lock (it is by far the expensive part),
  // then swap the world in exclusively so racing queries see either the
  // old state or the new one, never a mix. run_full also recaptures the
  // sanitizer memo that apply_updates' fast path builds on.
  sanitize::SanitizeResult result = sanitizer_.run_full(ribs);
  const std::unique_lock<std::shared_mutex> reload(cache_->reload);
  parse_stats_ = std::move(stats);
  sanitized_ = std::move(result);
  store_.emplace(std::span<const sanitize::SanitizedPath>{sanitized_->paths});
  rebuild_geo_evidence(/*sanitize_fast_path=*/false);
  evict_changed_countries();
}

Pipeline::ApplyResult Pipeline::apply_updates(const bgp::RibCollection& ribs) {
  const std::lock_guard<std::mutex> serial(cache_->load_serial);
  // can_fast_path digest-verifies that `ribs` differs from the loaded
  // collection in the final day only (stable-prefix set intact); then
  // run_fast re-filters just that day and reuses everything else, which
  // is identical to a full run by construction — this is what anchors
  // bit-identity with a batch load(). Any mismatch falls back to the
  // full sanitizer. The full run happens outside the reload lock; the
  // fast run inside it, because it consumes the published rows.
  sanitize::IncrementalSanitizer::Outcome outcome;
  const bool fast = sanitized_.has_value() && sanitizer_.can_fast_path(ribs);
  std::optional<sanitize::SanitizeResult> full;
  if (!fast) full = sanitizer_.run_full(ribs, &outcome);
  const std::unique_lock<std::shared_mutex> reload(cache_->reload);
  ApplyResult out;
  if (fast) {
    sanitized_ = sanitizer_.run_fast(ribs, std::move(*sanitized_), &outcome);
  } else {
    sanitized_ = std::move(*full);
  }
  out.sanitize_fast_path = outcome.fast_path;
  out.days_resanitized = outcome.days_resanitized;
  if (store_.has_value()) {
    // rows_reused is the sanitizer's digest-verified proof that the
    // leading rows are unchanged — the store skips re-interning and
    // re-digesting them (0 on the full path = plain rebuild).
    const ShardedPathStore::RebuildStats rebuilt = store_->rebuild(
        std::span<const sanitize::SanitizedPath>{sanitized_->paths}, 0,
        outcome.rows_reused);
    out.shards_kept = rebuilt.shards_kept;
    out.shards_rebuilt = rebuilt.shards_rebuilt;
  } else {
    store_.emplace(std::span<const sanitize::SanitizedPath>{sanitized_->paths});
    out.shards_rebuilt = store_->shards().size();
  }
  rebuild_geo_evidence(out.sanitize_fast_path);
  const EvictStats evicted = evict_changed_countries();
  out.memos_evicted = evicted.evicted;
  out.memos_kept = evicted.kept;
  out.country_memos_evicted = evicted.country_evicted;
  out.country_memos_kept = evicted.country_kept;
  return out;
}

Pipeline::Checkpoint Pipeline::checkpoint() const {
  // load_serial excludes a concurrent load/apply/restore wholesale (they
  // hold it for their full duration, including the sanitizer-memo writes
  // that happen outside the reload lock); the shared reload hold then
  // orders this against nothing, but keeps the lock discipline uniform
  // with every other world read.
  const std::lock_guard<std::mutex> serial(cache_->load_serial);
  const std::shared_lock<std::shared_mutex> reload(cache_->reload);
  require_loaded("Pipeline::checkpoint()");
  Checkpoint chk;
  chk.sanitizer_ = sanitizer_;
  chk.sanitized_ = *sanitized_;
  chk.store_ = store_->clone();
  chk.parse_stats_ = parse_stats_;
  chk.geo_evidence_ = geo_evidence_;
  chk.head_geo_evidence_ = head_geo_evidence_;
  chk.head_seen_prefixes_ = head_seen_prefixes_;
  chk.country_digests_ = country_digests_;
  chk.outbound_digests_ = outbound_digests_;
  {
    const std::lock_guard<std::mutex> lock(cache_->mutex);
    chk.cache_country_ = cache_->country;
    chk.cache_outbound_ = cache_->outbound;
    chk.cache_health_ = cache_->health;
  }
  return chk;
}

Pipeline::ApplyResult Pipeline::restore(const Checkpoint& checkpoint) {
  if (!checkpoint.sanitizer_.has_value()) {
    throw std::logic_error{"Pipeline::restore(): empty checkpoint"};
  }
  const std::lock_guard<std::mutex> serial(cache_->load_serial);
  // The sanitizer memo is only ever read under load_serial, so it can be
  // restored outside the reload lock like apply_updates' full run.
  sanitizer_ = *checkpoint.sanitizer_;
  const std::unique_lock<std::shared_mutex> reload(cache_->reload);
  parse_stats_ = checkpoint.parse_stats_;
  sanitized_ = checkpoint.sanitized_;
  store_ = checkpoint.store_.clone();

  ApplyResult out;
  // Diff the checkpoint against the outgoing world for the counters:
  // a shard whose digest already matched was untouched by the swap.
  const auto unchanged =
      [](const std::unordered_map<std::uint16_t, std::uint64_t>& outgoing,
         const std::unordered_map<std::uint16_t, std::uint64_t>& restored,
         std::uint16_t key) {
        const auto now = restored.find(key);
        const auto then = outgoing.find(key);
        return now != restored.end() && then != outgoing.end() &&
               now->second == then->second;
      };
  for (const PathShard& shard : store_->shards()) {
    if (unchanged(outbound_digests_, checkpoint.outbound_digests_,
                  shard.country().raw())) {
      ++out.shards_kept;
    } else {
      ++out.shards_rebuilt;
    }
  }
  {
    const std::lock_guard<std::mutex> lock(cache_->mutex);
    const auto evicted_from = [&](const auto& map, const auto& digests) {
      std::size_t evicted = 0;
      for (const auto& entry : map) {
        if (!unchanged(digests, checkpoint.country_digests_, entry.first)) {
          ++evicted;
        }
      }
      return evicted;
    };
    out.country_memos_evicted =
        evicted_from(cache_->country, country_digests_);
    out.memos_evicted = out.country_memos_evicted +
                        evicted_from(cache_->health, country_digests_);
    for (const auto& entry : cache_->outbound) {
      if (!unchanged(outbound_digests_, checkpoint.outbound_digests_,
                     entry.first)) {
        ++out.memos_evicted;
      }
    }
    cache_->country = checkpoint.cache_country_;
    cache_->outbound = checkpoint.cache_outbound_;
    cache_->health = checkpoint.cache_health_;
    out.country_memos_kept = cache_->country.size();
    out.memos_kept = cache_->country.size() + cache_->outbound.size() +
                     cache_->health.size();
  }
  geo_evidence_ = checkpoint.geo_evidence_;
  head_geo_evidence_ = checkpoint.head_geo_evidence_;
  head_seen_prefixes_ = checkpoint.head_seen_prefixes_;
  country_digests_ = checkpoint.country_digests_;
  outbound_digests_ = checkpoint.outbound_digests_;
  return out;
}

void Pipeline::rebuild_geo_evidence(bool sanitize_fast_path) {
  // Geolocation evidence for the confidence annotation: accepted weight
  // once per distinct sanitized prefix, plus the no-consensus weight each
  // plurality country lost. The accepted tally counts a prefix at its
  // FIRST row only, so when the sanitizer proved the head rows unchanged
  // the tallies and seen-set captured at the head/final-day boundary are
  // exact and only the final day's rows need scanning.
  const std::vector<sanitize::SanitizedPath>& paths = sanitized_->paths;
  const std::size_t boundary = sanitizer_.memo_head_rows();
  std::unordered_set<bgp::Prefix, bgp::PrefixHash> seen;
  std::size_t begin = 0;
  if (sanitize_fast_path) {
    geo_evidence_ = head_geo_evidence_;
    seen = head_seen_prefixes_;
    begin = boundary;
  } else {
    geo_evidence_.clear();
  }
  for (std::size_t i = begin; i < paths.size(); ++i) {
    if (!sanitize_fast_path && i == boundary) {
      head_geo_evidence_ = geo_evidence_;
      head_seen_prefixes_ = seen;
    }
    const sanitize::SanitizedPath& p = paths[i];
    if (seen.insert(p.prefix).second) {
      geo_evidence_[p.prefix_country].accepted += p.weight;
    }
  }
  if (!sanitize_fast_path && boundary == paths.size()) {
    head_geo_evidence_ = geo_evidence_;
    head_seen_prefixes_ = seen;
  }
  for (const auto& [country, tally] :
       sanitized_->prefix_geo.no_consensus_by_plurality()) {
    GeoEvidence& evidence = geo_evidence_[country];
    evidence.rejected += tally.addresses;
    evidence.rejected_prefixes += tally.prefixes;
  }
}

Pipeline::EvictStats Pipeline::evict_changed_countries() {
  // Per-country digests of the NEW world. The country-query digest folds
  // geo evidence in because CountryMetrics.confidence/geo_consensus are
  // computed from it; outbound metrics only see the shard.
  std::unordered_map<std::uint16_t, std::uint64_t> outbound_digests;
  std::unordered_map<std::uint16_t, std::uint64_t> country_digests;
  outbound_digests.reserve(store_->shards().size());
  country_digests.reserve(store_->shards().size());
  for (const PathShard& shard : store_->shards()) {
    const std::uint16_t key = shard.country().raw();
    outbound_digests.emplace(key, shard.digest());
    std::uint64_t d = shard.digest();
    const auto it = geo_evidence_.find(shard.country());
    const GeoEvidence evidence =
        it == geo_evidence_.end() ? GeoEvidence{} : it->second;
    d ^= evidence.accepted + 0x9e3779b97f4a7c15ull + (d << 6) + (d >> 2);
    d ^= evidence.rejected + 0x9e3779b97f4a7c15ull + (d << 6) + (d >> 2);
    d ^= evidence.rejected_prefixes + 0x9e3779b97f4a7c15ull + (d << 6) +
         (d >> 2);
    country_digests.emplace(key, d);
  }

  // Evict exactly the entries whose digest changed or whose country no
  // longer has a shard (which also covers cached results for countries
  // that never had one — those were computed against no evidence and are
  // cheap to redo). Everything else stays warm across the reload.
  const auto changed = [](const std::unordered_map<std::uint16_t, std::uint64_t>&
                              previous,
                          const std::unordered_map<std::uint16_t, std::uint64_t>&
                              current,
                          std::uint16_t key) {
    const auto now = current.find(key);
    const auto then = previous.find(key);
    return now == current.end() || then == previous.end() ||
           now->second != then->second;
  };
  EvictStats stats;
  {
    const std::lock_guard<std::mutex> lock(cache_->mutex);
    const std::size_t before = cache_->country.size() +
                               cache_->outbound.size() + cache_->health.size();
    const std::size_t country_before = cache_->country.size();
    std::erase_if(cache_->country, [&](const auto& entry) {
      return changed(country_digests_, country_digests, entry.first);
    });
    stats.country_kept = cache_->country.size();
    stats.country_evicted = country_before - stats.country_kept;
    std::erase_if(cache_->outbound, [&](const auto& entry) {
      return changed(outbound_digests_, outbound_digests, entry.first);
    });
    // Health reads the shard rows plus the geo evidence, both of which
    // the country digest folds in.
    std::erase_if(cache_->health, [&](const auto& entry) {
      return changed(country_digests_, country_digests, entry.first);
    });
    stats.kept = cache_->country.size() + cache_->outbound.size() +
                 cache_->health.size();
    stats.evicted = before - stats.kept;
  }
  country_digests_ = std::move(country_digests);
  outbound_digests_ = std::move(outbound_digests);
  return stats;
}

void Pipeline::load_text(std::string_view mrt_text) {
  bgp::MrtStreamLoader loader{config_.ingest};
  bgp::RibCollection ribs = loader.load_text(mrt_text);
  load_impl(ribs, loader.stats());
}

void Pipeline::load_stream(std::istream& is) {
  bgp::MrtStreamLoader loader{config_.ingest};
  bgp::RibCollection ribs = loader.load(is);
  load_impl(ribs, loader.stats());
}

bool Pipeline::loaded() const {
  // Unsynchronized, this is a racy read of an optional being emplaced by
  // load() — ThreadSanitizer flagged it against the reload stress test.
  const std::shared_lock<std::shared_mutex> reload(cache_->reload);
  return sanitized_.has_value();
}

void Pipeline::require_loaded(const char* where) const {
  if (!sanitized_) {
    throw std::logic_error{std::string{where} + ": no RIBs loaded"};
  }
}

const sanitize::SanitizeResult& Pipeline::sanitized() const {
  require_loaded("Pipeline::sanitized()");
  return *sanitized_;
}

const ShardedPathStore& Pipeline::store() const {
  require_loaded("Pipeline::store()");
  return *store_;
}

void Pipeline::clear_caches() const {
  const std::lock_guard<std::mutex> lock(cache_->mutex);
  cache_->country.clear();
  cache_->outbound.clear();
  cache_->health.clear();
}

Pipeline::CacheStats Pipeline::cache_stats() const {
  const std::lock_guard<std::mutex> lock(cache_->mutex);
  return CacheStats{cache_->country.size(), cache_->outbound.size(),
                    cache_->health.size()};
}

Pipeline::GeoEvidence Pipeline::geo_evidence(geo::CountryCode country) const {
  const std::shared_lock<std::shared_mutex> reload(cache_->reload);
  require_loaded("Pipeline::geo_evidence()");
  auto it = geo_evidence_.find(country);
  return it == geo_evidence_.end() ? GeoEvidence{} : it->second;
}

CountryMetrics Pipeline::country_uncached(geo::CountryCode country) const {
  CountryMetrics metrics = rankings_.compute(*store_, country);
  auto it = geo_evidence_.find(country);
  GeoEvidence evidence = it == geo_evidence_.end() ? GeoEvidence{} : it->second;
  metrics.geo_consensus = robust::DegradationPolicy::geo_consensus_share(
      evidence.accepted, evidence.rejected);
  metrics.confidence = config_.degradation.country_tier(
      metrics.national_vps, metrics.international_vps, evidence.accepted,
      evidence.rejected);
  return metrics;
}

CountryMetrics Pipeline::country(geo::CountryCode country) const {
  const std::shared_lock<std::shared_mutex> reload(cache_->reload);
  require_loaded("Pipeline::country()");
  {
    const std::lock_guard<std::mutex> lock(cache_->mutex);
    auto it = cache_->country.find(country.raw());
    if (it != cache_->country.end()) return it->second;
  }
  CountryMetrics metrics = country_uncached(country);
  const std::lock_guard<std::mutex> lock(cache_->mutex);
  return cache_->country.try_emplace(country.raw(), std::move(metrics))
      .first->second;
}

OutboundMetrics Pipeline::outbound(geo::CountryCode country) const {
  const std::shared_lock<std::shared_mutex> reload(cache_->reload);
  require_loaded("Pipeline::outbound()");
  {
    const std::lock_guard<std::mutex> lock(cache_->mutex);
    auto it = cache_->outbound.find(country.raw());
    if (it != cache_->outbound.end()) return it->second;
  }
  OutboundMetrics metrics = rankings_.compute_outbound(*store_, country);
  const std::lock_guard<std::mutex> lock(cache_->mutex);
  return cache_->outbound.try_emplace(country.raw(), std::move(metrics))
      .first->second;
}

robust::CountryHealth Pipeline::country_health_uncached(
    geo::CountryCode country) const {
  const robust::DegradationPolicy& policy = config_.degradation;
  robust::CountryHealth h;
  h.country = country;
  if (const PathShard* shard = store_->shard(country)) {
    std::set<bgp::VpId> national_vps;
    std::set<bgp::VpId> international_vps;
    std::set<bgp::Prefix> prefixes;
    for (std::uint32_t row : shard->prefix_rows()) {
      if (shard->vp_country(row) == country) {
        national_vps.insert(shard->vp(row));
      } else {
        international_vps.insert(shard->vp(row));
      }
      if (prefixes.insert(shard->prefix(row)).second) {
        h.geolocated_addresses += shard->weight(row);
      }
    }
    h.national_vps = national_vps.size();
    h.international_vps = international_vps.size();
    h.accepted_prefixes = prefixes.size();
  }
  if (const auto it = geo_evidence_.find(country); it != geo_evidence_.end()) {
    h.no_consensus_prefixes =
        static_cast<std::size_t>(it->second.rejected_prefixes);
    h.no_consensus_addresses = it->second.rejected;
  }
  h.national_tier = policy.view_tier(h.national_vps);
  h.international_tier = policy.view_tier(h.international_vps);
  h.geo_tier = policy.geo_tier(h.geolocated_addresses, h.no_consensus_addresses);
  h.overall = policy.country_tier(h.national_vps, h.international_vps,
                                  h.geolocated_addresses,
                                  h.no_consensus_addresses);
  return h;
}

robust::CountryHealth Pipeline::country_health(geo::CountryCode country) const {
  const std::shared_lock<std::shared_mutex> reload(cache_->reload);
  require_loaded("Pipeline::country_health()");
  {
    const std::lock_guard<std::mutex> lock(cache_->mutex);
    auto it = cache_->health.find(country.raw());
    if (it != cache_->health.end()) return it->second;
  }
  robust::CountryHealth health = country_health_uncached(country);
  const std::lock_guard<std::mutex> lock(cache_->mutex);
  return cache_->health.try_emplace(country.raw(), health).first->second;
}

std::vector<CountryMetrics> Pipeline::all_countries() const {
  // Copy the census under the reload lock, then release it before
  // fanning out: workers each take the shared lock inside country(), and
  // holding it here across the parallel region could deadlock against a
  // writer-preferring load(). Each country is therefore atomic against a
  // reload, the census as a whole is not.
  std::vector<geo::CountryCode> countries;
  std::vector<std::uint64_t> costs;
  {
    const std::shared_lock<std::shared_mutex> reload(cache_->reload);
    require_loaded("Pipeline::all_countries()");
    countries = store_->countries();
    costs = store_->census_costs();
  }

  // Disjoint-slot writes keyed by the (sorted) country list: the output
  // is a pure function of the inputs, independent of scheduling, so the
  // census is identical for any GEORANK_THREADS value. The costed
  // fan-out hands out the biggest shards first so one giant country
  // cannot end up as the last item on a single worker.
  std::vector<CountryMetrics> out(countries.size());
  util::parallel_for_costed(costs, [&](std::size_t i) {
    out[i] = country(countries[i]);
  });
  return out;
}

rank::Ranking Pipeline::global_cone_by_as_count() const {
  const std::shared_lock<std::shared_mutex> reload(cache_->reload);
  require_loaded("Pipeline::global_cone_by_as_count()");
  // Global queries run over the sanitized rows directly (original path
  // order, no cross-shard merge), which is exactly the iteration order
  // the monolithic store's all() produced.
  rank::CustomerCone cone{*relationships_};
  return cone.compute(sanitize::PathsView{sanitized_->paths}).by_as_count();
}

rank::Ranking Pipeline::global_cone_by_addresses() const {
  const std::shared_lock<std::shared_mutex> reload(cache_->reload);
  require_loaded("Pipeline::global_cone_by_addresses()");
  rank::CustomerCone cone{*relationships_};
  return cone.compute(sanitize::PathsView{sanitized_->paths}).by_addresses();
}

rank::Ranking Pipeline::global_hegemony() const {
  const std::shared_lock<std::shared_mutex> reload(cache_->reload);
  require_loaded("Pipeline::global_hegemony()");
  rank::Hegemony hegemony{config_.hegemony};
  return hegemony.compute(sanitize::PathsView{sanitized_->paths}).ranking();
}

rank::Ranking Pipeline::ahc(const rank::AsRegistry& registry,
                            geo::CountryCode country) const {
  const std::shared_lock<std::shared_mutex> reload(cache_->reload);
  require_loaded("Pipeline::ahc()");
  rank::AhcRanking ahc{registry, config_.hegemony};
  return ahc.compute(sanitize::PathsView{sanitized_->paths}, country);
}

rank::Ranking Pipeline::cti(geo::CountryCode country) const {
  const std::shared_lock<std::shared_mutex> reload(cache_->reload);
  require_loaded("Pipeline::cti()");
  CountryView view = store_->international_view(country);
  rank::CtiRanking cti{*relationships_};
  return cti.compute(view.paths());
}

}  // namespace georank::core
