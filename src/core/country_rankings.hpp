// The paper's four country-specific metrics (§3):
//
//   CCI — Customer Cone International: address share of a country's space
//         in each AS's prefix cone, from OUT-of-country VPs;
//   CCN — Customer Cone National: same, from IN-country VPs;
//   AHI — AS Hegemony International: share of paths from out-of-country
//         VPs to the country's address space traversing each AS;
//   AHN — AS Hegemony National: same, for in-country VPs.
#pragma once

#include <span>

#include "core/confidence.hpp"
#include "core/views.hpp"
#include "rank/customer_cone.hpp"
#include "rank/hegemony.hpp"
#include "rank/ranking.hpp"
#include "topo/as_graph.hpp"

namespace georank::core {

class ShardedPathStore;

struct CountryMetrics {
  geo::CountryCode country;
  rank::Ranking cci, ccn, ahi, ahn;
  std::size_t national_vps = 0;
  std::size_t international_vps = 0;
  std::uint64_t national_addresses = 0;
  std::uint64_t international_addresses = 0;
  /// Evidence tier per the pipeline's robust::DegradationPolicy. Only
  /// Pipeline queries annotate it; CountryRankings::compute leaves the
  /// defaults (it sees one view at a time, not the evidence record).
  /// Countries with insufficient evidence keep their (possibly empty)
  /// rankings — results are flagged, never fabricated.
  robust::ConfidenceTier confidence = robust::ConfidenceTier::kHigh;
  /// Address-weighted geolocation consensus share in [0,1].
  double geo_consensus = 1.0;
};

/// Extension beyond the paper (§7 sketches it as future work): the
/// OUTBOUND counterparts — which ASes a country's own networks cross to
/// reach foreign address space.
struct OutboundMetrics {
  geo::CountryCode country;
  rank::Ranking cco;  // customer cone over outbound paths
  rank::Ranking aho;  // hegemony over outbound paths
  std::size_t vps = 0;
  std::uint64_t foreign_addresses = 0;
};

class CountryRankings {
 public:
  /// `relationships` is the graph used to label path links for the cone
  /// metrics (ground truth or inferred).
  explicit CountryRankings(const topo::AsGraph& relationships,
                           rank::HegemonyOptions hegemony = {})
      : relationships_(&relationships), hegemony_(hegemony) {}

  [[nodiscard]] CountryMetrics compute(
      std::span<const sanitize::SanitizedPath> all_paths,
      geo::CountryCode country) const;

  [[nodiscard]] OutboundMetrics compute_outbound(
      std::span<const sanitize::SanitizedPath> all_paths,
      geo::CountryCode country) const;

  /// Zero-copy equivalents over a prebuilt PathStore: the views are index
  /// gathers, no path is copied. Produces bit-identical results to the
  /// span overloads (same path iteration order).
  [[nodiscard]] CountryMetrics compute(const PathStore& store,
                                       geo::CountryCode country) const;
  [[nodiscard]] OutboundMetrics compute_outbound(const PathStore& store,
                                                 geo::CountryCode country) const;

  /// Shard-backed equivalents: the kernels run over ONE country's shard
  /// (borrowed columns, borrowed precomputed index lists — nothing is
  /// gathered or copied at all). Bit-identical to the span/PathStore
  /// overloads: shard rows keep global path order.
  [[nodiscard]] CountryMetrics compute(const ShardedPathStore& store,
                                       geo::CountryCode country) const;
  [[nodiscard]] OutboundMetrics compute_outbound(const ShardedPathStore& store,
                                                 geo::CountryCode country) const;

  /// One metric on one prebuilt view (the stability analyses drive this).
  [[nodiscard]] rank::Ranking cone_ranking(const CountryView& view) const;
  [[nodiscard]] rank::Ranking hegemony_ranking(const CountryView& view) const;

 private:
  const topo::AsGraph* relationships_;
  rank::HegemonyOptions hegemony_;
};

}  // namespace georank::core
