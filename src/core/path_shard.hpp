// One country's slice of the sharded path store.
//
// A shard owns its own column set (structure-of-arrays, exactly the
// PathStore layout) holding every sanitized path that TOUCHES its
// country — prefix geolocated there, VP hosted there, or both — in
// ascending global row order. What it does NOT own is hop storage: AS
// paths are handles into the ShardedPathStore's shared interned-hop
// dictionary, so a path seen from forty countries is stored once.
//
// Alongside the columns the shard precomputes every row selection the
// layers above ever ask for (national / international / outbound /
// by-prefix / by-vp), so building a CountryView over a shard is a pure
// borrow: two pointers, zero allocation, zero index gather.
//
// Lifetime: shards are owned by their ShardedPathStore and point into
// its arena — a shard (and every view over it) must not outlive the
// store. Shards are built once and immutable afterwards.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "core/views.hpp"
#include "geo/country.hpp"
#include "sanitize/path_view.hpp"

namespace georank::core {

class ShardedPathStore;

class PathShard {
 public:
  PathShard() = default;

  [[nodiscard]] geo::CountryCode country() const noexcept { return country_; }
  /// Rows in this shard (prefix-local + vp-local, each row once).
  [[nodiscard]] std::size_t size() const noexcept { return vp_.size(); }
  [[nodiscard]] bool empty() const noexcept { return vp_.empty(); }

  [[nodiscard]] bgp::VpId vp(std::size_t i) const noexcept { return vp_[i]; }
  [[nodiscard]] geo::CountryCode vp_country(std::size_t i) const noexcept {
    return vp_country_[i];
  }
  [[nodiscard]] bgp::Prefix prefix(std::size_t i) const noexcept {
    return prefix_[i];
  }
  [[nodiscard]] geo::CountryCode prefix_country(std::size_t i) const noexcept {
    return prefix_country_[i];
  }
  [[nodiscard]] std::uint64_t weight(std::size_t i) const noexcept {
    return weight_[i];
  }
  [[nodiscard]] bgp::AsPathView hops(std::size_t i) const noexcept {
    return {arena_ + handle_[i].offset, handle_[i].length};
  }

  /// This shard's columns; `arena` is the store's SHARED hop dictionary.
  [[nodiscard]] sanitize::PathColumns columns() const noexcept {
    return {vp_.data(),      vp_country_.data(), prefix_.data(),
            prefix_country_.data(), weight_.data(),     handle_.data(),
            arena_};
  }

  // Precomputed row selections (shard-local indices, ascending — which
  // is also ascending GLOBAL order, so metric accumulation order matches
  // the monolithic store bit for bit).
  /// Rows whose prefix geolocates to this country.
  [[nodiscard]] std::span<const std::uint32_t> prefix_rows() const noexcept {
    return prefix_rows_;
  }
  /// Rows whose VP is hosted in this country.
  [[nodiscard]] std::span<const std::uint32_t> vp_rows() const noexcept {
    return vp_rows_;
  }
  [[nodiscard]] std::span<const std::uint32_t> national_rows() const noexcept {
    return national_rows_;
  }
  [[nodiscard]] std::span<const std::uint32_t> international_rows()
      const noexcept {
    return international_rows_;
  }
  [[nodiscard]] std::span<const std::uint32_t> outbound_rows() const noexcept {
    return outbound_rows_;
  }

  // Zero-copy views borrowing this shard's columns AND its precomputed
  // index lists. Valid only while the owning store lives.
  [[nodiscard]] CountryView national_view() const {
    return CountryView{columns(), national_rows(), country_,
                       ViewKind::kNational};
  }
  [[nodiscard]] CountryView international_view() const {
    return CountryView{columns(), international_rows(), country_,
                       ViewKind::kInternational};
  }
  [[nodiscard]] CountryView outbound_view() const {
    return CountryView{columns(), outbound_rows(), country_,
                       ViewKind::kOutbound};
  }
  [[nodiscard]] CountryView view(ViewKind kind) const {
    switch (kind) {
      case ViewKind::kInternational: return international_view();
      case ViewKind::kOutbound: return outbound_view();
      case ViewKind::kNational: break;
    }
    return national_view();
  }

  /// Content digest: FNV-1a over every row's scalar fields and its hop
  /// SEQUENCE (not its arena offset, which shifts between loads). Two
  /// loads that produce the same paths for this country produce the same
  /// digest, so the pipeline can keep memoized rankings warm across a
  /// reload that didn't touch the country.
  [[nodiscard]] std::uint64_t digest() const noexcept { return digest_; }

  /// Scheduling hint for the census: total work this shard represents
  /// (rows + interned hops touched). Feeds parallel_for_costed's
  /// largest-first order.
  [[nodiscard]] std::uint64_t cost() const noexcept { return cost_; }

 private:
  friend class ShardedPathStore;

  geo::CountryCode country_;
  std::vector<bgp::VpId> vp_;
  std::vector<geo::CountryCode> vp_country_;
  std::vector<bgp::Prefix> prefix_;
  std::vector<geo::CountryCode> prefix_country_;
  std::vector<std::uint64_t> weight_;
  std::vector<sanitize::PathHandle> handle_;
  /// Shared hop dictionary, owned by the ShardedPathStore.
  const bgp::Asn* arena_ = nullptr;

  std::vector<std::uint32_t> prefix_rows_;
  std::vector<std::uint32_t> vp_rows_;
  std::vector<std::uint32_t> national_rows_;
  std::vector<std::uint32_t> international_rows_;
  std::vector<std::uint32_t> outbound_rows_;
  std::uint64_t digest_ = 0;
  std::uint64_t cost_ = 0;
};

}  // namespace georank::core
