// Concentration and interdependence summaries over country rankings —
// the questions the paper's introduction motivates ("How diverse are a
// country's dominant ASes? Are they domestic, foreign, or broadly
// multinational?") computed from the four metrics plus AS registration
// data.
#pragma once

#include <cstddef>

#include "core/country_rankings.hpp"
#include "rank/ahc.hpp"
#include "rank/ranking.hpp"

namespace georank::core {

struct DiversityReport {
  /// Herfindahl-Hirschman index over the top-k score mass, in [1/k, 1]:
  /// 1 = one AS holds everything.
  double hhi = 0.0;
  /// Share of the top-k score mass held by ASes NOT registered in the
  /// country (the "foreign dependence" index).
  double foreign_share = 0.0;
  /// Number of distinct ASes needed to cover half the top-k score mass.
  std::size_t half_mass_count = 0;
  /// Top-k membership counts.
  std::size_t domestic_ases = 0;
  std::size_t foreign_ases = 0;
  std::size_t unknown_ases = 0;

  [[nodiscard]] std::size_t considered() const noexcept {
    return domestic_ases + foreign_ases + unknown_ases;
  }
};

/// Analyzes one ranking's top-k against the registration data.
[[nodiscard]] DiversityReport analyze_diversity(const rank::Ranking& ranking,
                                                const rank::AsRegistry& registry,
                                                geo::CountryCode country,
                                                std::size_t top_k = 10);

/// Cross-metric summary: a country is "self-reliant" in the paper's
/// Taiwan sense when its hegemony views are dominated by domestic ASes.
struct SovereigntySummary {
  geo::CountryCode country;
  DiversityReport cci, ahi, ccn, ahn;

  /// Mean foreign share across the two international metrics — how much
  /// of the country's inbound importance sits abroad.
  [[nodiscard]] double international_foreign_share() const noexcept {
    return 0.5 * (cci.foreign_share + ahi.foreign_share);
  }
  /// Mean foreign share across the two national metrics.
  [[nodiscard]] double national_foreign_share() const noexcept {
    return 0.5 * (ccn.foreign_share + ahn.foreign_share);
  }
};

[[nodiscard]] SovereigntySummary summarize_sovereignty(
    const CountryMetrics& metrics, const rank::AsRegistry& registry,
    std::size_t top_k = 10);

}  // namespace georank::core
