#include "core/report.hpp"

#include <algorithm>
#include <sstream>

#include "util/strings.hpp"
#include "util/table.hpp"

namespace georank::core {

CountryReport build_country_report(const Pipeline& pipeline,
                                   const rank::AsRegistry& registry,
                                   geo::CountryCode country,
                                   const ReportOptions& options) {
  CountryReport report;
  report.country = country;
  report.metrics = pipeline.country(country);
  if (options.include_outbound) report.outbound = pipeline.outbound(country);
  if (options.include_baselines) {
    report.ahc = pipeline.ahc(registry, country);
    report.cti = pipeline.cti(country);
  }
  report.sovereignty =
      summarize_sovereignty(report.metrics, registry, options.top_k);
  return report;
}

std::string render_country_report(const CountryReport& report,
                                  const ReportNameResolver& names,
                                  const ReportOptions& options) {
  std::ostringstream os;
  auto name_of = [&](bgp::Asn asn) {
    if (names) {
      std::string n = names(asn);
      if (!n.empty()) return n;
    }
    return "AS" + std::to_string(asn);
  };

  os << "=== " << report.country.to_string() << " ===\n";
  os << "national VPs " << report.metrics.national_vps << ", international VPs "
     << report.metrics.international_vps;
  if (report.outbound.vps) {
    os << ", outbound VPs " << report.outbound.vps;
  }
  os << "\n";
  os << "confidence: " << robust::to_string(report.metrics.confidence)
     << " (geo consensus " << util::percent(report.metrics.geo_consensus) << ")";
  if (report.metrics.confidence == robust::ConfidenceTier::kInsufficient) {
    os << " — too little evidence; treat scores as unranked";
  }
  os << "\n\n";

  // Rows: union of each ranking's head.
  std::vector<bgp::Asn> actors;
  auto collect = [&](const rank::Ranking& r) {
    for (const auto& e : r.top(options.rows_per_metric)) {
      if (e.score > 0.0 &&
          std::find(actors.begin(), actors.end(), e.asn) == actors.end()) {
        actors.push_back(e.asn);
      }
    }
  };
  collect(report.metrics.cci);
  collect(report.metrics.ahi);
  collect(report.metrics.ccn);
  collect(report.metrics.ahn);
  if (options.include_baselines) {
    collect(report.ahc);
    collect(report.cti);
  }
  if (options.include_outbound) {
    collect(report.outbound.aho);
  }
  std::sort(actors.begin(), actors.end(), [&](bgp::Asn a, bgp::Asn b) {
    auto key = [&](bgp::Asn x) {
      return std::min(report.metrics.cci.rank_of(x).value_or(9999),
                      report.metrics.ahi.rank_of(x).value_or(9999));
    };
    if (key(a) != key(b)) return key(a) < key(b);
    return a < b;
  });

  std::vector<std::string> headers{"AS", "name", "CCI", "AHI", "CCN", "AHN"};
  if (options.include_baselines) {
    headers.push_back("AHC");
    headers.push_back("CTI");
  }
  if (options.include_outbound) headers.push_back("AHO");
  util::Table table{headers};
  for (std::size_t c = 2; c < headers.size(); ++c) {
    table.set_align(c, util::Align::kRight);
  }
  auto cell = [](const rank::Ranking& r, bgp::Asn asn) -> std::string {
    auto rank = r.rank_of(asn);
    if (!rank || r.score_of(asn) <= 0.0) return "-";
    return std::to_string(*rank) + " " + util::percent(r.score_of(asn));
  };
  for (bgp::Asn asn : actors) {
    std::vector<std::string> row{std::to_string(asn), name_of(asn),
                                 cell(report.metrics.cci, asn),
                                 cell(report.metrics.ahi, asn),
                                 cell(report.metrics.ccn, asn),
                                 cell(report.metrics.ahn, asn)};
    if (options.include_baselines) {
      row.push_back(cell(report.ahc, asn));
      row.push_back(cell(report.cti, asn));
    }
    if (options.include_outbound) row.push_back(cell(report.outbound.aho, asn));
    table.add_row(std::move(row));
  }
  os << table.render();

  const SovereigntySummary& s = report.sovereignty;
  os << "\nsovereignty: foreign share of top-" << options.top_k
     << " importance — international "
     << util::percent(s.international_foreign_share()) << ", national "
     << util::percent(s.national_foreign_share()) << "\n";
  os << "concentration (AHI HHI " << std::to_string(s.ahi.hhi).substr(0, 4)
     << "): " << s.ahi.half_mass_count
     << " AS(es) hold half the top-" << options.top_k << " hegemony mass\n";
  return os.str();
}

}  // namespace georank::core
