#include "core/stability.hpp"

#include <algorithm>
#include <cmath>

#include "core/ndcg.hpp"
#include "util/stats.hpp"

namespace georank::core {

std::vector<std::size_t> default_sample_grid(std::size_t vp_count) {
  std::vector<std::size_t> grid;
  for (std::size_t k = 1; k <= vp_count && k <= 16; ++k) grid.push_back(k);
  std::size_t k = 20;
  while (k < vp_count) {
    grid.push_back(k);
    k = k * 5 / 4 + 1;
  }
  if (vp_count > 16) grid.push_back(vp_count);
  return grid;
}

std::vector<StabilityPoint> StabilityAnalyzer::analyze(
    const CountryView& view, MetricKind metric,
    const StabilityOptions& options) const {
  auto rank_view = [&](const CountryView& v) {
    return metric == MetricKind::kCustomerCone ? rankings_->cone_ranking(v)
                                               : rankings_->hegemony_ranking(v);
  };

  std::vector<bgp::VpId> vps = view.vps();
  rank::Ranking full = rank_view(view);

  std::vector<std::size_t> grid =
      options.sample_sizes.empty() ? default_sample_grid(vps.size())
                                   : options.sample_sizes;

  util::Pcg32 rng{options.seed};
  std::vector<StabilityPoint> curve;
  for (std::size_t k : grid) {
    if (k == 0 || k > vps.size()) continue;
    StabilityPoint point;
    point.vp_count = k;
    point.min_ndcg = 1.0;
    // Sampling the full set is deterministic; one trial suffices.
    std::size_t trials = (k == vps.size()) ? 1 : options.trials_per_size;
    std::vector<double> scores;
    scores.reserve(trials);
    for (std::size_t t = 0; t < trials; ++t) {
      std::vector<std::size_t> idx = util::sample_indices(vps.size(), k, rng);
      std::vector<bgp::VpId> chosen;
      chosen.reserve(k);
      for (std::size_t i : idx) chosen.push_back(vps[i]);
      CountryView sub = view.restricted_to(chosen);
      double score = ndcg(rank_view(sub), full, options.top_k);
      scores.push_back(score);
      point.min_ndcg = std::min(point.min_ndcg, score);
      point.max_ndcg = std::max(point.max_ndcg, score);
    }
    point.trials = trials;
    point.mean_ndcg = util::mean(scores);
    point.stdev_ndcg = util::stdev(scores);
    curve.push_back(point);
  }
  return curve;
}

std::size_t StabilityAnalyzer::min_vps_for(const std::vector<StabilityPoint>& curve,
                                           double threshold) {
  if (curve.empty()) return 0;
  std::vector<StabilityPoint> sorted = curve;
  std::sort(sorted.begin(), sorted.end(),
            [](const StabilityPoint& a, const StabilityPoint& b) {
              return a.vp_count < b.vp_count;
            });
  // Walk from the largest probe downward; the answer is the start of the
  // longest suffix that never dips below the threshold.
  std::size_t best = 0;
  for (auto it = sorted.rbegin(); it != sorted.rend(); ++it) {
    if (!std::isfinite(it->mean_ndcg) || it->mean_ndcg < threshold) break;
    best = it->vp_count;
  }
  return best;
}

}  // namespace georank::core
