// PathStore: immutable, build-once columnar storage of the sanitized path
// set, designed for the workload the paper actually runs — one global set
// sliced into hundreds of overlapping per-country views (§3.2, Table 2).
//
// Three ideas:
//
//   1. AS paths are INTERNED into one contiguous hop arena and addressed
//      by (offset, length) handles. The propagation process makes paths
//      massively redundant (every VP behind the same upstream sees the
//      same tail), so interning collapses most of the path bytes and
//      replaces per-view AsPath deep copies with 8-byte handles.
//   2. The scalar fields live in parallel columns (structure-of-arrays),
//      so view filters scan cache-dense CountryCode arrays instead of
//      striding over 80-byte structs with heap pointers.
//   3. Path indices are PRE-BUCKETED by prefix country and by VP country.
//      A national/international/outbound view is then an O(view size)
//      gather over one bucket — not an O(all paths) rescan per query.
//
// Lifetime: the store borrows nothing (it owns columns + arena) and views
// borrow the store. Build it once per sanitized set; it must outlive
// every CountryView/PathsView derived from it.
#pragma once

#include <cstdint>
#include <span>
#include <unordered_map>
#include <vector>

#include "core/views.hpp"
#include "geo/country.hpp"
#include "sanitize/path_view.hpp"

namespace georank::core {

class PathStore {
 public:
  PathStore() = default;
  /// Builds columns, interned arena and country buckets from the
  /// sanitizer's output. `paths` is only read during construction.
  explicit PathStore(std::span<const sanitize::SanitizedPath> paths);

  [[nodiscard]] std::size_t size() const noexcept { return vp_.size(); }
  [[nodiscard]] bool empty() const noexcept { return vp_.empty(); }

  [[nodiscard]] sanitize::PathRecord operator[](std::size_t i) const noexcept {
    return all()[i];
  }
  [[nodiscard]] bgp::VpId vp(std::size_t i) const noexcept { return vp_[i]; }
  [[nodiscard]] geo::CountryCode vp_country(std::size_t i) const noexcept {
    return vp_country_[i];
  }
  [[nodiscard]] bgp::Prefix prefix(std::size_t i) const noexcept {
    return prefix_[i];
  }
  [[nodiscard]] geo::CountryCode prefix_country(std::size_t i) const noexcept {
    return prefix_country_[i];
  }
  [[nodiscard]] std::uint64_t weight(std::size_t i) const noexcept {
    return weight_[i];
  }
  [[nodiscard]] bgp::AsPathView hops(std::size_t i) const noexcept {
    return {arena_.data() + handle_[i].offset, handle_[i].length};
  }

  /// Columnar view of the whole store / an index-selected subset. The
  /// subset's `indices` must outlive the returned view.
  [[nodiscard]] sanitize::PathsView all() const noexcept {
    return {columns(), size()};
  }
  [[nodiscard]] sanitize::PathsView over(
      std::span<const std::uint32_t> indices) const noexcept {
    return {columns(), indices};
  }
  [[nodiscard]] sanitize::PathColumns columns() const noexcept {
    return {vp_.data(),      vp_country_.data(), prefix_.data(),
            prefix_country_.data(), weight_.data(),     handle_.data(),
            arena_.data()};
  }

  /// Path indices (ascending) whose prefix / VP geolocates to `country`.
  /// Empty span for unknown countries; invalid codes are never bucketed.
  [[nodiscard]] std::span<const std::uint32_t> by_prefix_country(
      geo::CountryCode country) const noexcept;
  [[nodiscard]] std::span<const std::uint32_t> by_vp_country(
      geo::CountryCode country) const noexcept;

  /// All countries with >= 1 geolocated prefix (sorted ascending) — the
  /// census domain of Pipeline::all_countries().
  [[nodiscard]] const std::vector<geo::CountryCode>& countries() const noexcept {
    return prefix_countries_;
  }
  /// All countries hosting >= 1 VP (sorted ascending).
  [[nodiscard]] const std::vector<geo::CountryCode>& vp_countries() const noexcept {
    return vp_countries_;
  }

  // Zero-copy view construction: O(bucket) index gathers, no path copies.
  [[nodiscard]] CountryView national_view(geo::CountryCode country) const;
  [[nodiscard]] CountryView international_view(geo::CountryCode country) const;
  [[nodiscard]] CountryView outbound_view(geo::CountryCode country) const;
  [[nodiscard]] CountryView view(geo::CountryCode country, ViewKind kind) const;

  // Interning accounting (micro_perf reports these).
  [[nodiscard]] std::size_t unique_path_count() const noexcept {
    return unique_paths_;
  }
  [[nodiscard]] std::size_t arena_hop_count() const noexcept {
    return arena_.size();
  }

 private:
  using Bucket =
      std::unordered_map<geo::CountryCode, std::vector<std::uint32_t>,
                         geo::CountryCodeHash>;

  std::vector<bgp::VpId> vp_;
  std::vector<geo::CountryCode> vp_country_;
  std::vector<bgp::Prefix> prefix_;
  std::vector<geo::CountryCode> prefix_country_;
  std::vector<std::uint64_t> weight_;
  std::vector<sanitize::PathHandle> handle_;
  std::vector<bgp::Asn> arena_;

  Bucket by_prefix_country_;
  Bucket by_vp_country_;
  std::vector<geo::CountryCode> prefix_countries_;
  std::vector<geo::CountryCode> vp_countries_;
  std::size_t unique_paths_ = 0;
};

}  // namespace georank::core
