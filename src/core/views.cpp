#include "core/views.hpp"

#include <algorithm>
#include <unordered_set>

#include "bgp/prefix_trie.hpp"

namespace georank::core {

std::vector<bgp::VpId> CountryView::vps() const {
  std::unordered_set<bgp::VpId, bgp::VpIdHash> seen;
  std::vector<bgp::VpId> out;
  for (const sanitize::SanitizedPath& sp : paths) {
    if (seen.insert(sp.vp).second) out.push_back(sp.vp);
  }
  std::sort(out.begin(), out.end());
  return out;
}

std::uint64_t CountryView::address_weight() const {
  std::unordered_set<bgp::Prefix, bgp::PrefixHash> seen;
  std::uint64_t total = 0;
  for (const sanitize::SanitizedPath& sp : paths) {
    if (seen.insert(sp.prefix).second) total += sp.weight;
  }
  return total;
}

CountryView CountryView::restricted_to(std::span<const bgp::VpId> keep) const {
  std::unordered_set<bgp::VpId, bgp::VpIdHash> keep_set(keep.begin(), keep.end());
  CountryView out;
  out.country = country;
  out.kind = kind;
  for (const sanitize::SanitizedPath& sp : paths) {
    if (keep_set.contains(sp.vp)) out.paths.push_back(sp);
  }
  return out;
}

CountryView ViewBuilder::national(std::span<const sanitize::SanitizedPath> all,
                                  geo::CountryCode country) {
  CountryView view;
  view.country = country;
  view.kind = ViewKind::kNational;
  for (const sanitize::SanitizedPath& sp : all) {
    if (sp.prefix_country == country && sp.vp_country == country) {
      view.paths.push_back(sp);
    }
  }
  return view;
}

CountryView ViewBuilder::international(std::span<const sanitize::SanitizedPath> all,
                                       geo::CountryCode country) {
  CountryView view;
  view.country = country;
  view.kind = ViewKind::kInternational;
  for (const sanitize::SanitizedPath& sp : all) {
    if (sp.prefix_country == country && sp.vp_country.valid() &&
        sp.vp_country != country) {
      view.paths.push_back(sp);
    }
  }
  return view;
}

CountryView ViewBuilder::outbound(std::span<const sanitize::SanitizedPath> all,
                                  geo::CountryCode country) {
  CountryView view;
  view.country = country;
  view.kind = ViewKind::kOutbound;
  for (const sanitize::SanitizedPath& sp : all) {
    if (sp.vp_country == country && sp.prefix_country.valid() &&
        sp.prefix_country != country) {
      view.paths.push_back(sp);
    }
  }
  return view;
}

std::vector<geo::CountryCode> ViewBuilder::countries(
    std::span<const sanitize::SanitizedPath> all) {
  std::unordered_set<geo::CountryCode, geo::CountryCodeHash> seen;
  std::vector<geo::CountryCode> out;
  for (const sanitize::SanitizedPath& sp : all) {
    if (sp.prefix_country.valid() && seen.insert(sp.prefix_country).second) {
      out.push_back(sp.prefix_country);
    }
  }
  std::sort(out.begin(), out.end());
  return out;
}

}  // namespace georank::core
