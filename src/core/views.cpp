#include "core/views.hpp"

#include <algorithm>
#include <unordered_set>
#include <utility>

#include "bgp/prefix_trie.hpp"
#include "core/path_store.hpp"

namespace georank::core {

CountryView::CountryView(const PathStore& store,
                         std::vector<std::uint32_t> indices,
                         geo::CountryCode view_country, ViewKind view_kind)
    : country(view_country),
      kind(view_kind),
      store_(&store),
      indices_(std::move(indices)) {
  rebind();
}

CountryView::CountryView(std::shared_ptr<const PathStore> owned,
                         std::vector<std::uint32_t> indices,
                         geo::CountryCode view_country, ViewKind view_kind)
    : country(view_country),
      kind(view_kind),
      store_(owned.get()),
      owned_(std::move(owned)),
      indices_(std::move(indices)) {
  rebind();
}

void CountryView::rebind() noexcept {
  if (store_ != nullptr) {
    paths_ = store_->over(indices_);
  } else {
    paths_ = sanitize::PathsView{};
  }
}

CountryView::CountryView(const CountryView& other)
    : country(other.country),
      kind(other.kind),
      store_(other.store_),
      owned_(other.owned_),
      indices_(other.indices_) {
  rebind();
}

CountryView::CountryView(CountryView&& other) noexcept
    : country(other.country),
      kind(other.kind),
      store_(other.store_),
      owned_(std::move(other.owned_)),
      indices_(std::move(other.indices_)) {
  rebind();
}

CountryView& CountryView::operator=(const CountryView& other) {
  if (this != &other) {
    country = other.country;
    kind = other.kind;
    store_ = other.store_;
    owned_ = other.owned_;
    indices_ = other.indices_;
    rebind();
  }
  return *this;
}

CountryView& CountryView::operator=(CountryView&& other) noexcept {
  if (this != &other) {
    country = other.country;
    kind = other.kind;
    store_ = other.store_;
    owned_ = std::move(other.owned_);
    indices_ = std::move(other.indices_);
    rebind();
  }
  return *this;
}

CountryView CountryView::from_paths(std::vector<sanitize::SanitizedPath> paths,
                                    geo::CountryCode country, ViewKind kind) {
  auto store = std::make_shared<const PathStore>(
      std::span<const sanitize::SanitizedPath>{paths});
  std::vector<std::uint32_t> indices(store->size());
  for (std::uint32_t i = 0; i < indices.size(); ++i) indices[i] = i;
  return CountryView{std::move(store), std::move(indices), country, kind};
}

sanitize::PathRecord CountryView::operator[](std::size_t i) const {
  return paths_[i];
}

sanitize::PathsView CountryView::paths() const noexcept { return paths_; }

std::vector<bgp::VpId> CountryView::vps() const {
  std::unordered_set<bgp::VpId, bgp::VpIdHash> seen;
  std::vector<bgp::VpId> out;
  for (std::uint32_t i : indices_) {
    if (seen.insert(store_->vp(i)).second) out.push_back(store_->vp(i));
  }
  std::sort(out.begin(), out.end());
  return out;
}

std::size_t CountryView::vp_count() const {
  std::unordered_set<bgp::VpId, bgp::VpIdHash> seen;
  for (std::uint32_t i : indices_) seen.insert(store_->vp(i));
  return seen.size();
}

std::uint64_t CountryView::address_weight() const {
  std::unordered_set<bgp::Prefix, bgp::PrefixHash> seen;
  std::uint64_t total = 0;
  for (std::uint32_t i : indices_) {
    if (seen.insert(store_->prefix(i)).second) total += store_->weight(i);
  }
  return total;
}

CountryView CountryView::restricted_to(std::span<const bgp::VpId> keep) const {
  std::unordered_set<bgp::VpId, bgp::VpIdHash> keep_set(keep.begin(),
                                                        keep.end());
  std::vector<std::uint32_t> indices;
  for (std::uint32_t i : indices_) {
    if (keep_set.contains(store_->vp(i))) indices.push_back(i);
  }
  CountryView out;
  out.country = country;
  out.kind = kind;
  out.store_ = store_;
  out.owned_ = owned_;
  out.indices_ = std::move(indices);
  out.rebind();
  return out;
}

CountryView CountryView::without_vp(bgp::VpId vp) const {
  std::vector<std::uint32_t> indices;
  indices.reserve(indices_.size());
  for (std::uint32_t i : indices_) {
    if (!(store_->vp(i) == vp)) indices.push_back(i);
  }
  CountryView out;
  out.country = country;
  out.kind = kind;
  out.store_ = store_;
  out.owned_ = owned_;
  out.indices_ = std::move(indices);
  out.rebind();
  return out;
}

namespace {

CountryView filtered_view(std::span<const sanitize::SanitizedPath> all,
                          geo::CountryCode country, ViewKind kind,
                          bool (*match)(const sanitize::SanitizedPath&,
                                        geo::CountryCode)) {
  std::vector<sanitize::SanitizedPath> subset;
  for (const sanitize::SanitizedPath& sp : all) {
    if (match(sp, country)) subset.push_back(sp);
  }
  return CountryView::from_paths(std::move(subset), country, kind);
}

}  // namespace

CountryView ViewBuilder::national(std::span<const sanitize::SanitizedPath> all,
                                  geo::CountryCode country) {
  return filtered_view(all, country, ViewKind::kNational,
                       [](const sanitize::SanitizedPath& sp,
                          geo::CountryCode cc) {
                         return sp.prefix_country == cc && sp.vp_country == cc;
                       });
}

CountryView ViewBuilder::international(
    std::span<const sanitize::SanitizedPath> all, geo::CountryCode country) {
  return filtered_view(all, country, ViewKind::kInternational,
                       [](const sanitize::SanitizedPath& sp,
                          geo::CountryCode cc) {
                         return sp.prefix_country == cc &&
                                sp.vp_country.valid() && sp.vp_country != cc;
                       });
}

CountryView ViewBuilder::outbound(std::span<const sanitize::SanitizedPath> all,
                                  geo::CountryCode country) {
  return filtered_view(all, country, ViewKind::kOutbound,
                       [](const sanitize::SanitizedPath& sp,
                          geo::CountryCode cc) {
                         return sp.vp_country == cc &&
                                sp.prefix_country.valid() &&
                                sp.prefix_country != cc;
                       });
}

std::vector<geo::CountryCode> ViewBuilder::countries(
    std::span<const sanitize::SanitizedPath> all) {
  std::unordered_set<geo::CountryCode, geo::CountryCodeHash> seen;
  std::vector<geo::CountryCode> out;
  for (const sanitize::SanitizedPath& sp : all) {
    if (sp.prefix_country.valid() && seen.insert(sp.prefix_country).second) {
      out.push_back(sp.prefix_country);
    }
  }
  std::sort(out.begin(), out.end());
  return out;
}

}  // namespace georank::core
