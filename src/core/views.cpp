#include "core/views.hpp"

#include <algorithm>
#include <unordered_set>
#include <utility>

#include "bgp/prefix_trie.hpp"
#include "core/path_store.hpp"

namespace georank::core {

CountryView::CountryView(const sanitize::PathColumns& cols,
                         std::vector<std::uint32_t> indices,
                         geo::CountryCode view_country, ViewKind view_kind)
    : country(view_country),
      kind(view_kind),
      cols_(cols),
      indices_storage_(std::move(indices)),
      indices_(indices_storage_) {
  rebind();
}

CountryView::CountryView(const sanitize::PathColumns& cols,
                         std::span<const std::uint32_t> indices,
                         geo::CountryCode view_country, ViewKind view_kind)
    : country(view_country), kind(view_kind), cols_(cols), indices_(indices) {
  rebind();
}

CountryView::CountryView(const PathStore& store,
                         std::vector<std::uint32_t> indices,
                         geo::CountryCode view_country, ViewKind view_kind)
    : CountryView(store.columns(), std::move(indices), view_country,
                  view_kind) {}

CountryView::CountryView(std::shared_ptr<const PathStore> owned,
                         std::vector<std::uint32_t> indices,
                         geo::CountryCode view_country, ViewKind view_kind)
    : country(view_country),
      kind(view_kind),
      cols_(owned->columns()),
      owned_(std::move(owned)),
      indices_storage_(std::move(indices)),
      indices_(indices_storage_) {
  rebind();
}

void CountryView::rebind() noexcept {
  paths_ = sanitize::PathsView{cols_, indices_};
}

CountryView::CountryView(const CountryView& other)
    : country(other.country),
      kind(other.kind),
      cols_(other.cols_),
      owned_(other.owned_),
      indices_storage_(other.indices_storage_) {
  // A copy of a borrowed-index view stays borrowed (the lender outlives
  // both); a copy of an owned-index view must point at its OWN storage.
  indices_ = other.indices_storage_.empty() ? other.indices_
                                            : std::span<const std::uint32_t>(
                                                  indices_storage_);
  rebind();
}

CountryView::CountryView(CountryView&& other) noexcept
    : country(other.country),
      kind(other.kind),
      cols_(other.cols_),
      owned_(std::move(other.owned_)),
      indices_storage_(std::move(other.indices_storage_)) {
  indices_ = indices_storage_.empty() ? other.indices_
                                      : std::span<const std::uint32_t>(
                                            indices_storage_);
  rebind();
}

CountryView& CountryView::operator=(const CountryView& other) {
  if (this != &other) {
    country = other.country;
    kind = other.kind;
    cols_ = other.cols_;
    owned_ = other.owned_;
    indices_storage_ = other.indices_storage_;
    indices_ = other.indices_storage_.empty()
                   ? other.indices_
                   : std::span<const std::uint32_t>(indices_storage_);
    rebind();
  }
  return *this;
}

CountryView& CountryView::operator=(CountryView&& other) noexcept {
  if (this != &other) {
    country = other.country;
    kind = other.kind;
    cols_ = other.cols_;
    owned_ = std::move(other.owned_);
    indices_storage_ = std::move(other.indices_storage_);
    indices_ = indices_storage_.empty()
                   ? other.indices_
                   : std::span<const std::uint32_t>(indices_storage_);
    rebind();
  }
  return *this;
}

CountryView CountryView::from_paths(std::vector<sanitize::SanitizedPath> paths,
                                    geo::CountryCode country, ViewKind kind) {
  auto store = std::make_shared<const PathStore>(
      std::span<const sanitize::SanitizedPath>{paths});
  std::vector<std::uint32_t> indices(store->size());
  for (std::uint32_t i = 0; i < indices.size(); ++i) indices[i] = i;
  return CountryView{std::move(store), std::move(indices), country, kind};
}

sanitize::PathRecord CountryView::operator[](std::size_t i) const {
  return paths_[i];
}

sanitize::PathsView CountryView::paths() const noexcept { return paths_; }

std::vector<bgp::VpId> CountryView::vps() const {
  std::unordered_set<bgp::VpId, bgp::VpIdHash> seen;
  std::vector<bgp::VpId> out;
  for (std::uint32_t i : indices_) {
    if (seen.insert(cols_.vp[i]).second) out.push_back(cols_.vp[i]);
  }
  std::sort(out.begin(), out.end());
  return out;
}

std::size_t CountryView::vp_count() const {
  std::unordered_set<bgp::VpId, bgp::VpIdHash> seen;
  for (std::uint32_t i : indices_) seen.insert(cols_.vp[i]);
  return seen.size();
}

std::uint64_t CountryView::address_weight() const {
  std::unordered_set<bgp::Prefix, bgp::PrefixHash> seen;
  std::uint64_t total = 0;
  for (std::uint32_t i : indices_) {
    if (seen.insert(cols_.prefix[i]).second) total += cols_.weight[i];
  }
  return total;
}

CountryView CountryView::restricted_to(std::span<const bgp::VpId> keep) const {
  std::unordered_set<bgp::VpId, bgp::VpIdHash> keep_set(keep.begin(),
                                                        keep.end());
  std::vector<std::uint32_t> indices;
  for (std::uint32_t i : indices_) {
    if (keep_set.contains(cols_.vp[i])) indices.push_back(i);
  }
  CountryView out;
  out.country = country;
  out.kind = kind;
  out.cols_ = cols_;
  out.owned_ = owned_;
  out.indices_storage_ = std::move(indices);
  out.indices_ = out.indices_storage_;
  out.rebind();
  return out;
}

CountryView CountryView::without_vp(bgp::VpId vp) const {
  std::vector<std::uint32_t> indices;
  indices.reserve(indices_.size());
  for (std::uint32_t i : indices_) {
    if (!(cols_.vp[i] == vp)) indices.push_back(i);
  }
  CountryView out;
  out.country = country;
  out.kind = kind;
  out.cols_ = cols_;
  out.owned_ = owned_;
  out.indices_storage_ = std::move(indices);
  out.indices_ = out.indices_storage_;
  out.rebind();
  return out;
}

namespace {

CountryView filtered_view(std::span<const sanitize::SanitizedPath> all,
                          geo::CountryCode country, ViewKind kind,
                          bool (*match)(const sanitize::SanitizedPath&,
                                        geo::CountryCode)) {
  std::vector<sanitize::SanitizedPath> subset;
  for (const sanitize::SanitizedPath& sp : all) {
    if (match(sp, country)) subset.push_back(sp);
  }
  return CountryView::from_paths(std::move(subset), country, kind);
}

}  // namespace

CountryView ViewBuilder::national(std::span<const sanitize::SanitizedPath> all,
                                  geo::CountryCode country) {
  return filtered_view(all, country, ViewKind::kNational,
                       [](const sanitize::SanitizedPath& sp,
                          geo::CountryCode cc) {
                         return sp.prefix_country == cc && sp.vp_country == cc;
                       });
}

CountryView ViewBuilder::international(
    std::span<const sanitize::SanitizedPath> all, geo::CountryCode country) {
  return filtered_view(all, country, ViewKind::kInternational,
                       [](const sanitize::SanitizedPath& sp,
                          geo::CountryCode cc) {
                         return sp.prefix_country == cc &&
                                sp.vp_country.valid() && sp.vp_country != cc;
                       });
}

CountryView ViewBuilder::outbound(std::span<const sanitize::SanitizedPath> all,
                                  geo::CountryCode country) {
  return filtered_view(all, country, ViewKind::kOutbound,
                       [](const sanitize::SanitizedPath& sp,
                          geo::CountryCode cc) {
                         return sp.vp_country == cc &&
                                sp.prefix_country.valid() &&
                                sp.prefix_country != cc;
                       });
}

std::vector<geo::CountryCode> ViewBuilder::countries(
    std::span<const sanitize::SanitizedPath> all) {
  std::unordered_set<geo::CountryCode, geo::CountryCodeHash> seen;
  std::vector<geo::CountryCode> out;
  for (const sanitize::SanitizedPath& sp : all) {
    if (sp.prefix_country.valid() && seen.insert(sp.prefix_country).second) {
      out.push_back(sp.prefix_country);
    }
  }
  std::sort(out.begin(), out.end());
  return out;
}

}  // namespace georank::core
