#include "core/diversity.hpp"

#include <algorithm>

namespace georank::core {

DiversityReport analyze_diversity(const rank::Ranking& ranking,
                                  const rank::AsRegistry& registry,
                                  geo::CountryCode country, std::size_t top_k) {
  DiversityReport report;
  auto top = ranking.top(top_k);
  double mass = 0.0;
  for (const rank::ScoredAs& e : top) mass += e.score;
  if (top.empty() || mass <= 0.0) return report;

  double foreign_mass = 0.0;
  for (const rank::ScoredAs& e : top) {
    double share = e.score / mass;
    report.hhi += share * share;
    auto reg = registry.find(e.asn);
    if (reg == registry.end()) {
      ++report.unknown_ases;
    } else if (reg->second == country) {
      ++report.domestic_ases;
    } else {
      ++report.foreign_ases;
      foreign_mass += e.score;
    }
  }
  report.foreign_share = foreign_mass / mass;

  // Entries are sorted descending, so the half-mass count is a prefix.
  double acc = 0.0;
  for (const rank::ScoredAs& e : top) {
    acc += e.score;
    ++report.half_mass_count;
    if (acc >= 0.5 * mass) break;
  }
  return report;
}

SovereigntySummary summarize_sovereignty(const CountryMetrics& metrics,
                                         const rank::AsRegistry& registry,
                                         std::size_t top_k) {
  SovereigntySummary summary;
  summary.country = metrics.country;
  summary.cci = analyze_diversity(metrics.cci, registry, metrics.country, top_k);
  summary.ahi = analyze_diversity(metrics.ahi, registry, metrics.country, top_k);
  summary.ccn = analyze_diversity(metrics.ccn, registry, metrics.country, top_k);
  summary.ahn = analyze_diversity(metrics.ahn, registry, metrics.country, top_k);
  return summary;
}

}  // namespace georank::core
