// ShardedPathStore: the internet-scale successor to the monolithic
// PathStore. The sanitized path set is split into per-country shards —
// one independently-owned column set per country (see path_shard.hpp) —
// plus ONE shared interned-hop dictionary, so no single contiguous
// column allocation ever holds the whole world and every layer above
// (views, rank kernels, census, snapshot, health) works country-local.
//
// Build is two-phase:
//
//   1. Hop interning is a single deterministic pass over the input in
//      row order — the exact algorithm PathStore uses (FNV-1a bucket,
//      full content compare), so the dictionary, unique-path count and
//      arena are bit-identical to the monolithic build.
//   2. Shard assignment marks each row's target shard(s) sequentially
//      (a row lands in its prefix country's shard and, if different,
//      its VP country's shard; invalid codes never create shards), then
//      the per-shard column gather, selection lists, digest and cost
//      hint are built SHARD-PARALLEL via util::parallel_for — shards
//      are independent, so workers never touch the same memory.
//
// Determinism: shard rows keep ascending global row order and the
// selection lists are ascending, so any metric computed over a shard
// view accumulates in exactly the order the monolithic store produced —
// results are bit-identical to PathStore's and independent of the build
// thread count.
//
// Lifetime: the store owns arena + shards; shards and every view
// derived from them borrow it. Not copyable (shards point into the
// shared arena); movable (vector buffers are stable across moves).
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "core/path_shard.hpp"
#include "core/views.hpp"
#include "geo/country.hpp"
#include "sanitize/path_view.hpp"

namespace georank::core {

class ShardedPathStore {
 public:
  ShardedPathStore() = default;
  /// Builds the shared dictionary and all shards from the sanitizer's
  /// output. `paths` is only read during construction. `threads` caps
  /// the shard-parallel gather (0 = util::default_thread_count()).
  explicit ShardedPathStore(std::span<const sanitize::SanitizedPath> paths,
                            std::size_t threads = 0);

  ShardedPathStore(const ShardedPathStore&) = delete;
  ShardedPathStore& operator=(const ShardedPathStore&) = delete;
  ShardedPathStore(ShardedPathStore&&) noexcept = default;
  ShardedPathStore& operator=(ShardedPathStore&&) noexcept = default;
  ~ShardedPathStore() = default;

  /// Total sanitized rows across the world (rows double-homed into two
  /// shards count once).
  [[nodiscard]] std::size_t size() const noexcept { return size_; }
  [[nodiscard]] bool empty() const noexcept { return size_ == 0; }

  /// The shard for `country`, or nullptr when no path touches it (or
  /// the code is invalid). Shards are sorted by country code.
  [[nodiscard]] const PathShard* shard(geo::CountryCode country) const noexcept;
  [[nodiscard]] std::span<const PathShard> shards() const noexcept {
    return shards_;
  }

  /// All countries with >= 1 geolocated prefix (sorted ascending) — the
  /// census domain of Pipeline::all_countries().
  [[nodiscard]] const std::vector<geo::CountryCode>& countries() const noexcept {
    return prefix_countries_;
  }
  /// All countries hosting >= 1 VP (sorted ascending).
  [[nodiscard]] const std::vector<geo::CountryCode>& vp_countries() const noexcept {
    return vp_countries_;
  }

  // Zero-copy shard-backed views (empty views for unknown countries,
  // matching PathStore's contract).
  [[nodiscard]] CountryView national_view(geo::CountryCode country) const;
  [[nodiscard]] CountryView international_view(geo::CountryCode country) const;
  [[nodiscard]] CountryView outbound_view(geo::CountryCode country) const;
  [[nodiscard]] CountryView view(geo::CountryCode country, ViewKind kind) const;

  /// Per-census-country cost hints, parallel to countries() — feeds
  /// parallel_for_costed so the biggest country is ranked first.
  [[nodiscard]] std::vector<std::uint64_t> census_costs() const;

  /// Content digest of one country's shard (see PathShard::digest);
  /// 0 when the country has no shard.
  [[nodiscard]] std::uint64_t shard_digest(geo::CountryCode country) const noexcept;

  // Interning accounting (shared dictionary; bench/scale reports these).
  [[nodiscard]] std::size_t unique_path_count() const noexcept {
    return unique_paths_;
  }
  [[nodiscard]] std::size_t arena_hop_count() const noexcept {
    return arena_.size();
  }

 private:
  /// Shared interned-hop dictionary all shards' handles index into.
  std::vector<bgp::Asn> arena_;
  /// Sorted by country code; parallel to shard_countries_.
  std::vector<PathShard> shards_;
  std::vector<geo::CountryCode> shard_countries_;
  std::vector<geo::CountryCode> prefix_countries_;
  std::vector<geo::CountryCode> vp_countries_;
  std::size_t size_ = 0;
  std::size_t unique_paths_ = 0;
};

}  // namespace georank::core
