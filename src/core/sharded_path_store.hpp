// ShardedPathStore: the internet-scale successor to the monolithic
// PathStore. The sanitized path set is split into per-country shards —
// one independently-owned column set per country (see path_shard.hpp) —
// plus ONE shared interned-hop dictionary, so no single contiguous
// column allocation ever holds the whole world and every layer above
// (views, rank kernels, census, snapshot, health) works country-local.
//
// Build is two-phase:
//
//   1. Hop interning is a single deterministic pass over the input in
//      row order — the exact algorithm PathStore uses (FNV-1a bucket,
//      full content compare), so the dictionary, unique-path count and
//      arena are bit-identical to the monolithic build.
//   2. Shard assignment marks each row's target shard(s) sequentially
//      (a row lands in its prefix country's shard and, if different,
//      its VP country's shard; invalid codes never create shards), then
//      the per-shard column gather, selection lists, digest and cost
//      hint are built SHARD-PARALLEL via util::parallel_for — shards
//      are independent, so workers never touch the same memory.
//
// Determinism: shard rows keep ascending global row order and the
// selection lists are ascending, so any metric computed over a shard
// view accumulates in exactly the order the monolithic store produced —
// results are bit-identical to PathStore's and independent of the build
// thread count.
//
// Lifetime: the store owns arena + shards; shards and every view
// derived from them borrow it. Not copyable (shards point into the
// shared arena); movable (vector buffers are stable across moves).
#pragma once

#include <cstdint>
#include <span>
#include <unordered_map>
#include <vector>

#include "core/path_shard.hpp"
#include "core/views.hpp"
#include "geo/country.hpp"
#include "sanitize/path_view.hpp"

namespace georank::core {

class ShardedPathStore {
 public:
  ShardedPathStore() = default;
  /// Builds the shared dictionary and all shards from the sanitizer's
  /// output. `paths` is only read during construction. `threads` caps
  /// the shard-parallel gather (0 = util::default_thread_count()).
  explicit ShardedPathStore(std::span<const sanitize::SanitizedPath> paths,
                            std::size_t threads = 0);

  ShardedPathStore(const ShardedPathStore&) = delete;
  ShardedPathStore& operator=(const ShardedPathStore&) = delete;
  ShardedPathStore(ShardedPathStore&&) noexcept = default;
  ShardedPathStore& operator=(ShardedPathStore&&) noexcept = default;
  ~ShardedPathStore() = default;

  /// Explicit deep copy: every column, selection list, the dictionary
  /// and the cached row derivations are copied, and the copy's shards
  /// are re-pointed at ITS arena (the reason the copy constructor is
  /// deleted rather than defaulted — a memberwise copy would leave the
  /// shards borrowing the original's hop storage). O(world) in straight
  /// memcpy-sized chunks, so it is much cheaper than a rebuild(), which
  /// re-interns and re-gathers row by row: Pipeline::checkpoint()/
  /// restore() flip between two worlds with it.
  [[nodiscard]] ShardedPathStore clone() const;

  struct RebuildStats {
    std::size_t shards_kept = 0;     // digest unchanged, columns reused
    std::size_t shards_rebuilt = 0;  // gathered from scratch
  };

  /// Rebuilds the store in place from a new sanitized path set, KEEPING
  /// any shard whose content digest (and row count) is unchanged — its
  /// columns, selection lists and cost hint are moved over untouched.
  /// The interned-hop dictionary is retained and append-only across
  /// rebuilds, so kept shards' handles stay valid; unique_path_count()
  /// and arena_hop_count() are therefore LIFETIME-cumulative after a
  /// rebuild, not a function of the current path set alone. Queries on
  /// the rebuilt store are bit-identical to a fresh build from `paths`.
  ///
  /// `unchanged_prefix_rows` is the caller's PROOF (not a hint to be
  /// guessed at — pass the incremental sanitizer's Outcome::rows_reused,
  /// which is digest-verified) that the first that many rows of `paths`
  /// are byte-identical to the first rows of the previous rebuild's
  /// input. When non-zero, their cached handles and shard row lists are
  /// reused — re-interning them would walk the same buckets of the
  /// append-only dictionary and return the same handles — and shards
  /// whose row lists are untouched by the suffix are moved over without
  /// even re-digesting their content, so a rebuild costs O(suffix), not
  /// O(world). A wrong value silently corrupts the store; 0 (the
  /// default) always performs the full scan.
  RebuildStats rebuild(std::span<const sanitize::SanitizedPath> paths,
                       std::size_t threads = 0,
                       std::size_t unchanged_prefix_rows = 0);

  /// Total sanitized rows across the world (rows double-homed into two
  /// shards count once).
  [[nodiscard]] std::size_t size() const noexcept { return size_; }
  [[nodiscard]] bool empty() const noexcept { return size_ == 0; }

  /// The shard for `country`, or nullptr when no path touches it (or
  /// the code is invalid). Shards are sorted by country code.
  [[nodiscard]] const PathShard* shard(geo::CountryCode country) const noexcept;
  [[nodiscard]] std::span<const PathShard> shards() const noexcept {
    return shards_;
  }

  /// All countries with >= 1 geolocated prefix (sorted ascending) — the
  /// census domain of Pipeline::all_countries().
  [[nodiscard]] const std::vector<geo::CountryCode>& countries() const noexcept {
    return prefix_countries_;
  }
  /// All countries hosting >= 1 VP (sorted ascending).
  [[nodiscard]] const std::vector<geo::CountryCode>& vp_countries() const noexcept {
    return vp_countries_;
  }

  // Zero-copy shard-backed views (empty views for unknown countries,
  // matching PathStore's contract).
  [[nodiscard]] CountryView national_view(geo::CountryCode country) const;
  [[nodiscard]] CountryView international_view(geo::CountryCode country) const;
  [[nodiscard]] CountryView outbound_view(geo::CountryCode country) const;
  [[nodiscard]] CountryView view(geo::CountryCode country, ViewKind kind) const;

  /// Per-census-country cost hints, parallel to countries() — feeds
  /// parallel_for_costed so the biggest country is ranked first.
  [[nodiscard]] std::vector<std::uint64_t> census_costs() const;

  /// Content digest of one country's shard (see PathShard::digest);
  /// 0 when the country has no shard.
  [[nodiscard]] std::uint64_t shard_digest(geo::CountryCode country) const noexcept;

  // Interning accounting (shared dictionary; bench/scale reports these).
  [[nodiscard]] std::size_t unique_path_count() const noexcept {
    return unique_paths_;
  }
  [[nodiscard]] std::size_t arena_hop_count() const noexcept {
    return arena_.size();
  }

 private:
  /// Shared interned-hop dictionary all shards' handles index into.
  /// Append-only across rebuilds so previously issued handles stay valid.
  std::vector<bgp::Asn> arena_;
  /// Interning index over arena_ (hash bucket -> candidate handles),
  /// retained so rebuilds re-intern against the existing dictionary.
  std::unordered_map<std::uint64_t, std::vector<sanitize::PathHandle>> interned_;
  /// Per-row handles and per-country row lists of the LAST rebuild,
  /// cached so a rebuild with a proven unchanged head (see rebuild())
  /// can skip re-deriving them for head rows.
  std::vector<sanitize::PathHandle> handles_;
  std::unordered_map<geo::CountryCode, std::vector<std::uint32_t>,
                     geo::CountryCodeHash>
      rows_of_;
  /// Sorted by country code; parallel to shard_countries_.
  std::vector<PathShard> shards_;
  std::vector<geo::CountryCode> shard_countries_;
  std::vector<geo::CountryCode> prefix_countries_;
  std::vector<geo::CountryCode> vp_countries_;
  std::size_t size_ = 0;
  std::size_t unique_paths_ = 0;
};

}  // namespace georank::core
