#include "core/vp_bias.hpp"

#include <algorithm>
#include <unordered_map>

#include "core/ndcg.hpp"
#include "util/stats.hpp"

namespace georank::core {

ProximityBias VpBiasAnalyzer::proximity_bias(const CountryView& view,
                                             MetricKind metric,
                                             std::size_t top_k) const {
  rank::Ranking ranking = metric == MetricKind::kCustomerCone
                              ? rankings_->cone_ranking(view)
                              : rankings_->hegemony_ranking(view);

  // Mean hop position of each AS across the view's paths (position 0 =
  // at the VP itself).
  struct Acc {
    double sum = 0.0;
    std::size_t count = 0;
  };
  std::unordered_map<bgp::Asn, Acc> distance;
  for (const sanitize::PathRecord sp : view.paths()) {
    auto hops = sp.path.hops();
    for (std::size_t i = 0; i < hops.size(); ++i) {
      Acc& acc = distance[hops[i]];
      acc.sum += static_cast<double>(i);
      acc.count += 1;
    }
  }

  ProximityBias bias;
  std::vector<double> scores, distances;
  for (const rank::ScoredAs& e : ranking.top(top_k)) {
    auto it = distance.find(e.asn);
    if (it == distance.end() || it->second.count == 0) continue;
    scores.push_back(e.score);
    distances.push_back(it->second.sum / static_cast<double>(it->second.count));
  }
  bias.ases_considered = scores.size();
  if (scores.size() >= 2) {
    bias.score_distance_correlation = util::spearman(scores, distances);
    bias.mean_distance = util::mean(distances);
  } else if (scores.size() == 1) {
    bias.mean_distance = distances[0];
  }
  return bias;
}

std::vector<VpInfluence> VpBiasAnalyzer::vp_influence(const CountryView& view,
                                                      MetricKind metric,
                                                      std::size_t top_k) const {
  auto rank_view = [&](const CountryView& v) {
    return metric == MetricKind::kCustomerCone ? rankings_->cone_ranking(v)
                                               : rankings_->hegemony_ranking(v);
  };
  rank::Ranking full = rank_view(view);
  std::vector<bgp::VpId> vps = view.vps();

  std::vector<VpInfluence> out;
  out.reserve(vps.size());
  for (const bgp::VpId& vp : vps) {
    // Index-filtered subset over the shared store — no path copies.
    CountryView leave_out = view.without_vp(vp);
    VpInfluence influence;
    influence.vp = vp;
    influence.paths = view.size() - leave_out.size();
    influence.leave_out_ndcg = ndcg(rank_view(leave_out), full, top_k);
    out.push_back(influence);
  }
  std::sort(out.begin(), out.end(), [](const VpInfluence& a, const VpInfluence& b) {
    return a.leave_out_ndcg < b.leave_out_ndcg;
  });
  return out;
}

}  // namespace georank::core
