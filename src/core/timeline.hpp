// Temporal trajectories of country rankings across labeled snapshots —
// the machinery behind the paper's §6 analyses (April 2021 vs March 2023)
// generalized to arbitrarily many epochs, e.g. tracking China Telecom's
// decline in Taiwan or a sanction's effect across years.
#pragma once

#include <optional>
#include <span>
#include <string>
#include <vector>

#include "core/country_rankings.hpp"
#include "core/rank_delta.hpp"

namespace georank::core {

/// One labeled snapshot of a country's metrics.
struct TimelinePoint {
  std::string label;  // e.g. "20210401"
  CountryMetrics metrics;
};

enum class TimelineMetric { kCci, kAhi, kCcn, kAhn };

[[nodiscard]] const rank::Ranking& select_metric(const CountryMetrics& metrics,
                                                 TimelineMetric metric);

/// One AS's trajectory through a metric across the snapshots.
struct AsTrajectory {
  bgp::Asn asn = 0;
  /// Per snapshot: rank (nullopt when unranked/zero-score) and score.
  std::vector<std::optional<std::size_t>> ranks;
  std::vector<double> scores;

  /// Best (lowest) rank ever held; nullopt if never ranked.
  [[nodiscard]] std::optional<std::size_t> best_rank() const;
  /// score.back() - score.front().
  [[nodiscard]] double score_trend() const;
};

class Timeline {
 public:
  /// Points must share the same country and be in chronological order.
  explicit Timeline(std::vector<TimelinePoint> points);

  [[nodiscard]] const std::vector<TimelinePoint>& points() const noexcept {
    return points_;
  }

  /// Trajectories of every AS that enters the top-k of `metric` in ANY
  /// snapshot, ordered by best rank then ASN.
  [[nodiscard]] std::vector<AsTrajectory> trajectories(TimelineMetric metric,
                                                       std::size_t top_k = 10) const;

  /// Pairwise deltas between consecutive snapshots.
  [[nodiscard]] std::vector<RankDelta> deltas(TimelineMetric metric,
                                              std::size_t top_k = 10) const;

  /// ASes that were in the top-k at the first snapshot and out by the
  /// last (the China-Telecom-in-Taiwan query).
  [[nodiscard]] std::vector<bgp::Asn> dropped_out(TimelineMetric metric,
                                                  std::size_t top_k = 10) const;

 private:
  std::vector<TimelinePoint> points_;
};

}  // namespace georank::core
