#include "core/timeline.hpp"

#include <algorithm>
#include <stdexcept>
#include <unordered_set>

namespace georank::core {

const rank::Ranking& select_metric(const CountryMetrics& metrics,
                                   TimelineMetric metric) {
  switch (metric) {
    case TimelineMetric::kCci: return metrics.cci;
    case TimelineMetric::kAhi: return metrics.ahi;
    case TimelineMetric::kCcn: return metrics.ccn;
    case TimelineMetric::kAhn: return metrics.ahn;
  }
  return metrics.cci;
}

std::optional<std::size_t> AsTrajectory::best_rank() const {
  std::optional<std::size_t> best;
  for (const auto& r : ranks) {
    if (r && (!best || *r < *best)) best = r;
  }
  return best;
}

double AsTrajectory::score_trend() const {
  if (scores.empty()) return 0.0;
  return scores.back() - scores.front();
}

Timeline::Timeline(std::vector<TimelinePoint> points) : points_(std::move(points)) {
  if (points_.empty()) throw std::invalid_argument{"timeline needs >=1 point"};
  for (const TimelinePoint& p : points_) {
    if (p.metrics.country != points_.front().metrics.country) {
      throw std::invalid_argument{"timeline mixes countries"};
    }
  }
}

std::vector<AsTrajectory> Timeline::trajectories(TimelineMetric metric,
                                                 std::size_t top_k) const {
  // Membership: union of top-k across snapshots, first-seen order.
  std::vector<bgp::Asn> members;
  std::unordered_set<bgp::Asn> seen;
  for (const TimelinePoint& p : points_) {
    for (const auto& e : select_metric(p.metrics, metric).top(top_k)) {
      if (seen.insert(e.asn).second) members.push_back(e.asn);
    }
  }

  std::vector<AsTrajectory> out;
  out.reserve(members.size());
  for (bgp::Asn asn : members) {
    AsTrajectory trajectory;
    trajectory.asn = asn;
    for (const TimelinePoint& p : points_) {
      const rank::Ranking& ranking = select_metric(p.metrics, metric);
      auto rank = ranking.rank_of(asn);
      double score = ranking.score_of(asn);
      if (rank && score > 0.0) {
        trajectory.ranks.push_back(rank);
      } else {
        trajectory.ranks.push_back(std::nullopt);
      }
      trajectory.scores.push_back(score);
    }
    out.push_back(std::move(trajectory));
  }
  std::sort(out.begin(), out.end(), [](const AsTrajectory& a, const AsTrajectory& b) {
    auto ka = a.best_rank().value_or(9999);
    auto kb = b.best_rank().value_or(9999);
    if (ka != kb) return ka < kb;
    return a.asn < b.asn;
  });
  return out;
}

std::vector<RankDelta> Timeline::deltas(TimelineMetric metric,
                                        std::size_t top_k) const {
  std::vector<RankDelta> out;
  for (std::size_t i = 1; i < points_.size(); ++i) {
    out.push_back(compare_rankings(select_metric(points_[i - 1].metrics, metric),
                                   select_metric(points_[i].metrics, metric),
                                   top_k));
  }
  return out;
}

std::vector<bgp::Asn> Timeline::dropped_out(TimelineMetric metric,
                                            std::size_t top_k) const {
  std::vector<bgp::Asn> out;
  if (points_.size() < 2) return out;
  const rank::Ranking& first = select_metric(points_.front().metrics, metric);
  const rank::Ranking& last = select_metric(points_.back().metrics, metric);
  for (const auto& e : first.top(top_k)) {
    auto rank = last.rank_of(e.asn);
    if (!rank || *rank > top_k) out.push_back(e.asn);
  }
  return out;
}

}  // namespace georank::core
