// CTI: Country-level Transit Influence baseline (Gamero-Garrido et al.;
// §1.3 of the paper).
//
// Like AHI, CTI scores ASes on paths from out-of-country VPs toward a
// country's prefixes, but (1) it considers ONLY the transit
// (provider->customer) portion of each path, and (2) it discounts an AS
// by its distance from the origin: the origin itself scores 0, the AS
// adjacent to the origin scores 1/1, the next 1/2, ..., 1/k. Per-VP
// scores are trimmed (top+bottom 10%) and averaged, as in AH. The paper
// notes the combined effect places CTI scores between CC and AH.
#pragma once

#include <span>

#include "rank/ranking.hpp"
#include "sanitize/path_view.hpp"
#include "topo/as_graph.hpp"

namespace georank::rank {

struct CtiOptions {
  double trim = 0.10;
};

class CtiRanking {
 public:
  CtiRanking(const topo::AsGraph& relationships, CtiOptions options = {})
      : relationships_(&relationships), options_(options) {}

  /// `paths` should be a country's INTERNATIONAL view (out-of-country VPs
  /// to in-country prefixes); the caller selects them. Accepts any
  /// storage form via the PathsView adapter — zero-copy.
  [[nodiscard]] Ranking compute(sanitize::PathsView paths) const;

 private:
  const topo::AsGraph* relationships_;
  CtiOptions options_;
};

}  // namespace georank::rank
