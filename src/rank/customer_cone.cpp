#include "rank/customer_cone.hpp"

namespace georank::rank {

std::size_t CustomerCone::cone_suffix_start(bgp::AsPathView path) const {
  // Walk the links VP->origin; the suffix begins after the LAST link that
  // is not provider->customer (unknown links count as not-p2c).
  std::size_t start = 0;
  for (std::size_t i = 0; i + 1 < path.size(); ++i) {
    auto rel = relationships_->relationship(path[i], path[i + 1]);
    if (!rel || *rel != topo::Rel::kCustomer) start = i + 1;
  }
  return start;
}

ConeResult CustomerCone::compute(sanitize::PathsView paths) const {
  ConeResult result;

  for (const sanitize::PathRecord sp : paths) {
    auto [it, inserted] = result.prefix_weight.try_emplace(sp.prefix, sp.weight);
    if (inserted) result.total_weight += sp.weight;

    const bgp::AsPathView path = sp.path;
    if (path.empty()) continue;
    result.originated[path[path.size() - 1]].insert(sp.prefix);

    std::size_t start = cone_suffix_start(path);
    for (std::size_t i = start; i < path.size(); ++i) {
      Asn holder = path[i];
      auto& cone = result.as_cone[holder];
      for (std::size_t j = i; j < path.size(); ++j) cone.insert(path[j]);
    }
    // Every AS seen on any path exists in the result, cone >= {self}.
    for (std::size_t i = 0; i < path.size(); ++i) {
      result.as_cone[path[i]].insert(path[i]);
    }
  }
  return result;
}

std::unordered_set<bgp::Prefix, bgp::PrefixHash> ConeResult::prefix_cone_of(
    Asn asn) const {
  std::unordered_set<bgp::Prefix, bgp::PrefixHash> out;
  auto it = as_cone.find(asn);
  if (it == as_cone.end()) return out;
  for (Asn member : it->second) {
    auto origin = originated.find(member);
    if (origin == originated.end()) continue;
    out.insert(origin->second.begin(), origin->second.end());
  }
  return out;
}

std::uint64_t ConeResult::cone_addresses(Asn asn) const {
  auto it = as_cone.find(asn);
  if (it == as_cone.end()) return 0;
  std::uint64_t total = 0;
  // MOAS prefixes (several origins announcing the same prefix) must not
  // double count; track them only when a second cone member could repeat
  // one, which is rare enough to pay for lazily.
  std::unordered_set<bgp::Prefix, bgp::PrefixHash> seen;
  for (Asn member : it->second) {
    auto origin = originated.find(member);
    if (origin == originated.end()) continue;
    for (const bgp::Prefix& p : origin->second) {
      if (!seen.insert(p).second) continue;
      auto w = prefix_weight.find(p);
      if (w != prefix_weight.end()) total += w->second;
    }
  }
  return total;
}

Ranking ConeResult::by_addresses() const {
  std::vector<ScoredAs> scores;
  scores.reserve(as_cone.size());
  double denom = total_weight ? static_cast<double>(total_weight) : 1.0;
  // lint: ordered(cone_addresses sums integers; from_scores totally orders)
  for (const auto& [asn, _] : as_cone) {
    scores.push_back(ScoredAs{asn, static_cast<double>(cone_addresses(asn)) / denom});
  }
  return Ranking::from_scores(std::move(scores));
}

Ranking ConeResult::by_as_count() const {
  std::vector<ScoredAs> scores;
  scores.reserve(as_cone.size());
  // lint: ordered(per-AS cone sizes independent; from_scores totally orders)
  for (const auto& [asn, cone] : as_cone) {
    scores.push_back(ScoredAs{asn, static_cast<double>(cone.size())});
  }
  return Ranking::from_scores(std::move(scores));
}

}  // namespace georank::rank
