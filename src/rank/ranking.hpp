// A scored AS ranking: the common output type of every metric.
#pragma once

#include <algorithm>
#include <cstddef>
#include <optional>
#include <unordered_map>
#include <vector>

#include "bgp/as_path.hpp"

namespace georank::rank {

using bgp::Asn;

struct ScoredAs {
  Asn asn = 0;
  double score = 0.0;
};

class Ranking {
 public:
  Ranking() = default;

  /// Builds from unordered scores; sorts descending (ties: ascending ASN).
  static Ranking from_scores(std::vector<ScoredAs> scores);

  [[nodiscard]] const std::vector<ScoredAs>& entries() const noexcept {
    return entries_;
  }
  [[nodiscard]] bool empty() const noexcept { return entries_.empty(); }
  [[nodiscard]] std::size_t size() const noexcept { return entries_.size(); }

  /// 1-based rank of an AS; nullopt if absent.
  [[nodiscard]] std::optional<std::size_t> rank_of(Asn asn) const;

  /// Score of an AS; 0 if absent.
  [[nodiscard]] double score_of(Asn asn) const;

  /// The top-n entries (fewer if the ranking is shorter).
  [[nodiscard]] std::vector<ScoredAs> top(std::size_t n) const;

 private:
  std::vector<ScoredAs> entries_;
  std::unordered_map<Asn, std::size_t> index_;  // asn -> position
};

inline Ranking Ranking::from_scores(std::vector<ScoredAs> scores) {
  std::sort(scores.begin(), scores.end(), [](const ScoredAs& a, const ScoredAs& b) {
    if (a.score != b.score) return a.score > b.score;
    return a.asn < b.asn;
  });
  Ranking r;
  r.entries_ = std::move(scores);
  r.index_.reserve(r.entries_.size());
  for (std::size_t i = 0; i < r.entries_.size(); ++i) {
    r.index_.emplace(r.entries_[i].asn, i);
  }
  return r;
}

inline std::optional<std::size_t> Ranking::rank_of(Asn asn) const {
  auto it = index_.find(asn);
  if (it == index_.end()) return std::nullopt;
  return it->second + 1;
}

inline double Ranking::score_of(Asn asn) const {
  auto it = index_.find(asn);
  return it == index_.end() ? 0.0 : entries_[it->second].score;
}

inline std::vector<ScoredAs> Ranking::top(std::size_t n) const {
  std::vector<ScoredAs> out(entries_.begin(),
                            entries_.begin() + static_cast<std::ptrdiff_t>(
                                                   std::min(n, entries_.size())));
  return out;
}

}  // namespace georank::rank
