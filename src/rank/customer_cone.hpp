// Customer cone computation (Luckie et al. 2013; §1.1 and Figure 1).
//
// For each sanitized path (VP first, origin last) we label the links with
// the relationship graph and keep the maximal ALL provider->customer
// suffix. Every AS on that suffix collects the ASes (and the origin's
// prefix) downstream of it into its customer cone. Crucially the cone is
// NOT closed recursively over p2c links: B enters A's cone only if some
// observed path shows B downstream of A (avoids inflating cones through
// complex/partial-transit relationships).
//
// Each AS is a member of its own cone, so its own originated prefixes
// count toward its prefix cone (an access network with no customers still
// "serves" its own address space).
#pragma once

#include <span>
#include <unordered_map>
#include <unordered_set>

#include "bgp/prefix.hpp"
#include "rank/ranking.hpp"
#include "sanitize/path_view.hpp"
#include "topo/as_graph.hpp"

namespace georank::rank {

struct ConeResult {
  /// AS-level cones: asn -> ASes observed downstream (incl. self).
  std::unordered_map<Asn, std::unordered_set<Asn>> as_cone;
  /// Observed originations: origin asn -> its announced prefixes.
  std::unordered_map<Asn, std::unordered_set<bgp::Prefix, bgp::PrefixHash>> originated;
  /// Effective address weight of every prefix in the input path set.
  std::unordered_map<bgp::Prefix, std::uint64_t, bgp::PrefixHash> prefix_weight;
  /// Sum of all prefix weights (the CC denominator).
  std::uint64_t total_weight = 0;

  [[nodiscard]] std::size_t cone_size(Asn asn) const {
    auto it = as_cone.find(asn);
    return it == as_cone.end() ? 0 : it->second.size();
  }

  /// The prefix-level cone (§1.1): EVERY prefix announced into BGP by an
  /// AS in the cone — membership is at AS granularity, which is exactly
  /// how partial-transit ("complex") customers inflate provider cones
  /// beyond their observed path share.
  [[nodiscard]] std::unordered_set<bgp::Prefix, bgp::PrefixHash> prefix_cone_of(
      Asn asn) const;
  [[nodiscard]] std::uint64_t cone_addresses(Asn asn) const;

  /// Ranking by address share of the prefix cone (the paper's CC% values).
  [[nodiscard]] Ranking by_addresses() const;
  /// Ranking by AS-cone size (CAIDA ASRank order; the CCG subscripts).
  [[nodiscard]] Ranking by_as_count() const;
};

class CustomerCone {
 public:
  /// `relationships` may be ground truth or an inferred graph.
  explicit CustomerCone(const topo::AsGraph& relationships)
      : relationships_(&relationships) {}

  /// Accepts any sanitized-path storage form (vector/span of rows, or an
  /// indexed columnar view) via the PathsView adapter — zero-copy.
  [[nodiscard]] ConeResult compute(sanitize::PathsView paths) const;

  /// Index into `path` of the first hop of the maximal all-p2c suffix
  /// (path.size()-1 when only the origin qualifies). Exposed for tests.
  [[nodiscard]] std::size_t cone_suffix_start(bgp::AsPathView path) const;

 private:
  const topo::AsGraph* relationships_;
};

}  // namespace georank::rank
