// AHC: IHR's country-level hegemony baseline (§1.2.1).
//
// IHR computes hegemony PER ORIGIN AS (paths to that origin's prefixes,
// all VPs), then averages the per-origin scores of each transit AS over
// all origin ASes REGISTERED in a country — one vote per AS, regardless
// of the AS's size or where it actually originates its prefixes. The
// paper contrasts this with its own metrics, which select paths by prefix
// geolocation instead (the Amazon-in-Australia example, §5.1.2).
#pragma once

#include <span>
#include <unordered_map>

#include "geo/country.hpp"
#include "rank/hegemony.hpp"
#include "rank/ranking.hpp"
#include "sanitize/path_view.hpp"

namespace georank::rank {

/// AS -> registration country (WHOIS-style), the generator's registry.
using AsRegistry = std::unordered_map<Asn, geo::CountryCode>;

/// IHR publishes two weightings for the per-origin average (§1.2.1):
/// one vote per AS (the paper's choice — it studies infrastructure, not
/// population) or weighting by each AS's address footprint (IHR's proxy
/// for APNIC user counts).
enum class AhcWeighting { kEqualPerAs, kByAddresses };

class AhcRanking {
 public:
  explicit AhcRanking(const AsRegistry& registry, HegemonyOptions options = {},
                      AhcWeighting weighting = AhcWeighting::kEqualPerAs)
      : registry_(&registry), options_(options), weighting_(weighting) {}

  /// Country-level ranking from GLOBAL paths (IHR uses every VP and every
  /// path toward the origin ASes registered in `country`).
  [[nodiscard]] Ranking compute(sanitize::PathsView all_paths,
                                geo::CountryCode country) const;

 private:
  const AsRegistry* registry_;
  HegemonyOptions options_;
  AhcWeighting weighting_;
};

}  // namespace georank::rank
