#include "rank/cti.hpp"

#include <algorithm>
#include <unordered_map>
#include <vector>

#include "bgp/route.hpp"
#include "rank/customer_cone.hpp"
#include "rank/hegemony.hpp"

namespace georank::rank {

Ranking CtiRanking::compute(sanitize::PathsView paths) const {
  CustomerCone cone_helper{*relationships_};

  struct VpAccumulator {
    double total = 0.0;
    std::unordered_map<Asn, double> per_as;
  };
  std::unordered_map<bgp::VpId, VpAccumulator, bgp::VpIdHash> vps;

  for (const sanitize::PathRecord sp : paths) {
    if (sp.path.empty()) continue;
    VpAccumulator& acc = vps[sp.vp];
    auto w = static_cast<double>(sp.weight);
    acc.total += w;
    // Transit-only portion: the maximal p2c suffix, excluding the origin.
    std::size_t start = cone_helper.cone_suffix_start(sp.path);
    std::size_t origin_idx = sp.path.size() - 1;
    for (std::size_t i = start; i < origin_idx; ++i) {
      auto k = static_cast<double>(origin_idx - i);  // hops from origin, >= 1
      acc.per_as[sp.path[i]] += w / k;
    }
  }

  std::size_t vp_count = vps.size();
  if (vp_count == 0) return {};

  std::unordered_map<Asn, std::vector<double>> per_as_scores;
  // lint: ordered(per-AS score vectors are sorted inside trimmed_average)
  for (const auto& [vp, acc] : vps) {
    if (acc.total <= 0.0) continue;
    // lint: ordered(one entry per (vp, asn); vector order washed out by the sort)
    for (const auto& [asn, mass] : acc.per_as) {
      per_as_scores[asn].push_back(mass / acc.total);
    }
  }

  // Same trim rule as Hegemony, shared semantics.
  Hegemony trimmer{HegemonyOptions{options_.trim, false}};
  std::vector<ScoredAs> scored;
  scored.reserve(per_as_scores.size());
  // lint: ordered(per-AS values independent; from_scores totally orders)
  for (auto& [asn, scores] : per_as_scores) {
    scored.push_back(ScoredAs{asn, trimmer.trimmed_average(std::move(scores), vp_count)});
  }
  return Ranking::from_scores(std::move(scored));
}

}  // namespace georank::rank
