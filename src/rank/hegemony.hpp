// AS Hegemony (Fontugne et al. 2017; §1.2 and Figure 2).
//
// For each vantage point v and each AS A:
//
//   score_v(A) = sum of w(p) over v's paths p containing A
//              / sum of w(p) over all of v's paths
//
// where w(p) is the effective address count of the path's prefix. The
// hegemony of A is the mean of {score_v(A)} over VPs after discarding the
// top and bottom trim share of per-VP scores. VPs that do not see A score
// 0 for it — absence is information, not missing data.
//
// Trim rule: the paper's Figure 2 removes one score from each end of a
// 3-VP sample, so we trim max(1, floor(trim*n)) per side whenever n >= 3
// (and nothing below that).
#pragma once

#include <span>
#include <unordered_map>
#include <vector>

#include "rank/ranking.hpp"
#include "sanitize/path_view.hpp"

namespace georank::rank {

struct HegemonyOptions {
  /// Per-side trim share of VP scores (paper: 0.10).
  double trim = 0.10;
  /// Exclude the VP's own (first-hop) AS from scoring. The bias-trimming
  /// exists exactly because near-VP ASes over-score; the paper keeps them
  /// and lets the trim handle it, so the default is false.
  bool exclude_vp_as = false;
  /// Weight each path by its prefix's effective address count (the
  /// paper's choice, Figure 2). false = plain path-fraction betweenness
  /// (Fontugne et al.'s original unweighted formulation).
  bool weight_by_addresses = true;
};

struct HegemonyResult {
  /// Final hegemony score per AS.
  std::unordered_map<Asn, double> scores;
  /// Number of VPs that contributed (the trim denominator).
  std::size_t vp_count = 0;

  [[nodiscard]] Ranking ranking() const;
  [[nodiscard]] double score_of(Asn asn) const {
    auto it = scores.find(asn);
    return it == scores.end() ? 0.0 : it->second;
  }
};

/// IHR-style per-origin ("local graph") hegemony: hegemony computed over
/// only the paths whose ORIGIN is the given AS — which transit networks
/// does this one AS depend on? This is the building block IHR aggregates
/// into its country ranking (AHC, §1.2.1) and publishes per AS.
[[nodiscard]] HegemonyResult per_origin_hegemony(sanitize::PathsView paths,
                                                 Asn origin,
                                                 HegemonyOptions options = {});

class Hegemony {
 public:
  explicit Hegemony(HegemonyOptions options = {}) : options_(options) {}

  /// Accepts any sanitized-path storage form (vector/span of rows, or an
  /// indexed columnar view) via the PathsView adapter — zero-copy.
  [[nodiscard]] HegemonyResult compute(sanitize::PathsView paths) const;

  /// The trim-then-average step on a raw per-VP score vector, padded with
  /// zeros up to `vp_count`. Exposed for tests (Figure 2 worked example).
  [[nodiscard]] double trimmed_average(std::vector<double> scores,
                                       std::size_t vp_count) const;

 private:
  HegemonyOptions options_;
};

}  // namespace georank::rank
