#include "rank/ahc.hpp"

#include <algorithm>
#include <vector>

namespace georank::rank {

Ranking AhcRanking::compute(sanitize::PathsView all_paths,
                            geo::CountryCode country) const {
  // Origin ASes registered in the target country. Group by BASE index so
  // the per-origin subsets are selections over `all_paths`, not copies.
  std::unordered_map<Asn, std::vector<std::uint32_t>> by_origin;
  for (std::size_t k = 0; k < all_paths.size(); ++k) {
    const sanitize::PathRecord sp = all_paths[k];
    if (sp.path.empty()) continue;
    Asn origin = sp.path.origin();
    auto it = registry_->find(origin);
    if (it == registry_->end() || it->second != country) continue;
    by_origin[origin].push_back(static_cast<std::uint32_t>(all_paths.base_index(k)));
  }
  if (by_origin.empty()) return {};

  // Per-origin hegemony, combined under the configured weighting. The
  // combination is a float accumulation, so iterate origins in sorted
  // order — hash order would make the low bits of `sums` depend on the
  // standard library.
  std::vector<Asn> origins;
  origins.reserve(by_origin.size());
  // lint: ordered(key collection only; sorted before any arithmetic)
  for (const auto& [origin, indices] : by_origin) origins.push_back(origin);
  std::sort(origins.begin(), origins.end());

  Hegemony hegemony{options_};
  std::unordered_map<Asn, double> sums;
  double weight_total = 0.0;
  for (const Asn origin : origins) {
    const std::vector<std::uint32_t>& indices = by_origin.at(origin);
    const sanitize::PathsView paths = all_paths.rebase(indices);
    double weight = 1.0;
    if (weighting_ == AhcWeighting::kByAddresses) {
      std::unordered_map<bgp::Prefix, bool, bgp::PrefixHash> seen;
      std::uint64_t addresses = 0;
      for (const sanitize::PathRecord sp : paths) {
        if (seen.emplace(sp.prefix, true).second) addresses += sp.weight;
      }
      weight = static_cast<double>(addresses);
    }
    if (weight <= 0.0) continue;
    weight_total += weight;
    HegemonyResult h = hegemony.compute(paths);
    for (const auto& [asn, score] : h.scores) sums[asn] += weight * score;
  }
  if (weight_total <= 0.0) return {};
  std::vector<ScoredAs> scored;
  scored.reserve(sums.size());
  // lint: ordered(values are order-independent; from_scores totally orders)
  for (const auto& [asn, sum] : sums) {
    scored.push_back(ScoredAs{asn, sum / weight_total});
  }
  return Ranking::from_scores(std::move(scored));
}

}  // namespace georank::rank
