#include "rank/hegemony.hpp"

#include <algorithm>
#include <cmath>

#include "bgp/route.hpp"

namespace georank::rank {

double Hegemony::trimmed_average(std::vector<double> scores,
                                 std::size_t vp_count) const {
  if (vp_count == 0) return 0.0;
  // VPs that never saw the AS contribute zeros.
  scores.resize(vp_count, 0.0);
  std::sort(scores.begin(), scores.end());
  std::size_t cut = 0;
  if (vp_count >= 3) {
    cut = std::max<std::size_t>(
        1, static_cast<std::size_t>(options_.trim * static_cast<double>(vp_count)));
  }
  if (2 * cut >= vp_count) cut = (vp_count - 1) / 2;
  double sum = 0.0;
  for (std::size_t i = cut; i < vp_count - cut; ++i) sum += scores[i];
  return sum / static_cast<double>(vp_count - 2 * cut);
}

HegemonyResult Hegemony::compute(sanitize::PathsView paths) const {
  // Group path mass per VP.
  struct VpAccumulator {
    double total = 0.0;
    std::unordered_map<Asn, double> per_as;
  };
  std::unordered_map<bgp::VpId, VpAccumulator, bgp::VpIdHash> vps;

  for (const sanitize::PathRecord sp : paths) {
    VpAccumulator& acc = vps[sp.vp];
    double w = options_.weight_by_addresses ? static_cast<double>(sp.weight) : 1.0;
    acc.total += w;
    auto hops = sp.path.hops();
    std::size_t begin = options_.exclude_vp_as && hops.size() > 1 ? 1 : 0;
    // A path may repeat an AS only adjacently post-sanitization; hops are
    // already collapsed, so each hop is distinct.
    for (std::size_t i = begin; i < hops.size(); ++i) {
      acc.per_as[hops[i]] += w;
    }
  }

  HegemonyResult result;
  result.vp_count = vps.size();
  if (vps.empty()) return result;

  // Collect per-AS score vectors across VPs.
  std::unordered_map<Asn, std::vector<double>> per_as_scores;
  // lint: ordered(per-AS score vectors are sorted inside trimmed_average)
  for (const auto& [vp, acc] : vps) {
    if (acc.total <= 0.0) continue;
    // lint: ordered(one entry per (vp, asn); vector order washed out by the sort)
    for (const auto& [asn, mass] : acc.per_as) {
      per_as_scores[asn].push_back(mass / acc.total);
    }
  }
  // lint: ordered(writes a map keyed by asn; no order-bearing output)
  for (auto& [asn, scores] : per_as_scores) {
    result.scores[asn] = trimmed_average(std::move(scores), result.vp_count);
  }
  return result;
}

HegemonyResult per_origin_hegemony(sanitize::PathsView paths, Asn origin,
                                   HegemonyOptions options) {
  // Select by index instead of copying paths into a scratch vector.
  std::vector<std::uint32_t> subset;
  for (std::size_t k = 0; k < paths.size(); ++k) {
    const sanitize::PathRecord sp = paths[k];
    if (!sp.path.empty() && sp.path.origin() == origin) {
      subset.push_back(static_cast<std::uint32_t>(paths.base_index(k)));
    }
  }
  Hegemony hegemony{options};
  return hegemony.compute(paths.rebase(subset));
}

Ranking HegemonyResult::ranking() const {
  std::vector<ScoredAs> scored;
  scored.reserve(scores.size());
  // lint: ordered(from_scores totally orders by (score desc, asn asc))
  for (const auto& [asn, score] : scores) scored.push_back(ScoredAs{asn, score});
  return Ranking::from_scores(std::move(scored));
}

}  // namespace georank::rank
