// scenario::apply — deterministic counterfactual edit of topology + RIBs.
//
// apply() is a pure function of (scenario, baseline graph, registry,
// baseline RIBs): it copies the AS graph, applies the scenario's events
// in order, and then SURGICALLY rewrites the RIB collection — a route
// entry is re-propagated (over the edited graph, via the same
// Gao-Rexford topo::RoutePropagator that generated the world) only when
// its path crossed a severed link or its prefix was hijacked; every
// other entry is kept byte-identical. That conservatism is deliberate:
// real BGP would also shift intact routes onto newly-cheaper paths, but
// keeping untouched entries bit-identical is exactly what lets the
// Pipeline's shard-digest memos prove which countries a scenario did
// NOT touch (DESIGN.md §4i).
//
// Determinism: all stochastic choices (cablecut edge selection, the
// per-prefix propagation tiebreak salt) come from PCG32 streams keyed
// by (scenario seed, stable identifiers) — never from iteration order —
// and re-propagation fans out over distinct prefixes with each result
// written to its own slot, so the output is bit-identical across
// GEORANK_THREADS and across repeated runs.
#pragma once

#include <cstddef>
#include <stdexcept>
#include <string>

#include "bgp/route.hpp"
#include "rank/ahc.hpp"
#include "scenario/scenario.hpp"
#include "topo/as_graph.hpp"

namespace georank::scenario {

/// A scenario that references an ASN absent from the graph (clique
/// target, hijacker, designated transit) cannot be applied.
class ApplyError : public std::runtime_error {
 public:
  explicit ApplyError(const std::string& what) : std::runtime_error(what) {}
};

struct ApplyOptions {
  /// Worker threads for re-propagation (0 = GEORANK_THREADS/hardware).
  std::size_t threads = 0;
};

struct ApplyStats {
  std::size_t edges_removed = 0;
  /// p2c conversions (depeer-clique) + reconnects (consolidate).
  std::size_t edges_added = 0;
  std::size_t prefixes_hijacked = 0;
  /// Distinct (prefix, origin) groups re-propagated.
  std::size_t prefixes_rerouted = 0;
  /// Entry counts across all RIB days.
  std::size_t entries_kept = 0;
  std::size_t entries_rerouted = 0;
  std::size_t entries_withdrawn = 0;

  friend bool operator==(const ApplyStats&, const ApplyStats&) = default;
};

struct ApplyResult {
  /// The counterfactual topology (baseline copy + event edits).
  topo::AsGraph graph;
  /// The counterfactual RIBs; entries untouched by the scenario are
  /// byte-identical to the baseline.
  bgp::RibCollection ribs;
  ApplyStats stats;
};

/// Applies `scenario` to the baseline world. `registry` maps ASN ->
/// registration country (the country-membership test for depeer /
/// cablecut / consolidate). Throws ApplyError when an event names an
/// ASN the graph does not contain; events selecting an empty AS set
/// (e.g. de-peering two countries with no links) are no-ops.
[[nodiscard]] ApplyResult apply(const Scenario& scenario,
                                const topo::AsGraph& graph,
                                const rank::AsRegistry& registry,
                                const bgp::RibCollection& baseline,
                                const ApplyOptions& options = {});

}  // namespace georank::scenario
