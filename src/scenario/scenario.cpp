#include "scenario/scenario.hpp"

#include <cctype>
#include <cstdio>
#include <cstdlib>
#include <string>

#include "util/strings.hpp"

namespace georank::scenario {

namespace {

[[nodiscard]] bool valid_name(std::string_view text) {
  if (text.empty()) return false;
  for (char c : text) {
    const bool ok = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
                    (c >= '0' && c <= '9') || c == '.' || c == '_' || c == '-';
    if (!ok) return false;
  }
  return true;
}

[[nodiscard]] std::optional<double> parse_fraction(std::string_view text) {
  if (text.empty()) return std::nullopt;
  std::string owned{text};
  char* end = nullptr;
  const double value = std::strtod(owned.c_str(), &end);
  if (end != owned.c_str() + owned.size()) return std::nullopt;
  if (!(value > 0.0) || value > 1.0) return std::nullopt;
  return value;
}

/// Shortest decimal form that round-trips through strtod — keeps
/// to_text() canonical so content_hash() is stable across platforms.
[[nodiscard]] std::string format_fraction(double value) {
  char buf[64];
  for (int precision = 1; precision <= 17; ++precision) {
    std::snprintf(buf, sizeof buf, "%.*g", precision, value);
    if (std::strtod(buf, nullptr) == value) break;
  }
  return buf;
}

[[nodiscard]] ScenarioParseError err(std::size_t line,
                                     ScenarioParseReason reason,
                                     std::string_view detail) {
  return ScenarioParseError{line, reason, std::string{detail}};
}

}  // namespace

std::string_view to_string(EventKind kind) noexcept {
  switch (kind) {
    case EventKind::kDepeerCountries: return "depeer";
    case EventKind::kDepeerClique: return "depeer-clique";
    case EventKind::kHijack: return "hijack";
    case EventKind::kCableCut: return "cablecut";
    case EventKind::kConsolidate: return "consolidate";
  }
  return "?";
}

std::string_view to_string(ScenarioParseReason reason) noexcept {
  switch (reason) {
    case ScenarioParseReason::kUnknownDirective: return "unknown directive";
    case ScenarioParseReason::kBadFieldCount: return "wrong field count";
    case ScenarioParseReason::kBadName: return "bad scenario name";
    case ScenarioParseReason::kBadSeed: return "bad seed";
    case ScenarioParseReason::kBadCountry: return "bad country code";
    case ScenarioParseReason::kSameCountry: return "countries must differ";
    case ScenarioParseReason::kBadAsn: return "bad ASN";
    case ScenarioParseReason::kBadPrefix: return "bad prefix";
    case ScenarioParseReason::kBadFraction: return "bad fraction";
    case ScenarioParseReason::kMissingKeyword: return "missing keyword";
    case ScenarioParseReason::kDuplicateDirective: return "duplicate directive";
    case ScenarioParseReason::kEmpty: return "no events";
  }
  return "?";
}

ScenarioParseError::ScenarioParseError(std::size_t line,
                                       ScenarioParseReason reason,
                                       std::string detail)
    : std::runtime_error("scenario line " + std::to_string(line) + ": " +
                         std::string{to_string(reason)} +
                         (detail.empty() ? "" : " (" + detail + ")")),
      line_(line),
      reason_(reason) {}

Scenario parse(std::string_view text) {
  Scenario scenario;
  bool saw_name = false;
  bool saw_seed = false;
  std::size_t line_no = 0;
  for (std::string_view raw : util::split(text, '\n')) {
    ++line_no;
    std::string_view line = raw;
    if (auto hash = line.find('#'); hash != std::string_view::npos) {
      line = line.substr(0, hash);
    }
    const auto fields = util::split_ws(line);
    if (fields.empty()) continue;
    const std::string_view directive = fields[0];

    if (directive == "name") {
      if (saw_name) {
        throw err(line_no, ScenarioParseReason::kDuplicateDirective, "name");
      }
      if (fields.size() != 2) {
        throw err(line_no, ScenarioParseReason::kBadFieldCount,
                  "want: name LABEL");
      }
      if (!valid_name(fields[1])) {
        throw err(line_no, ScenarioParseReason::kBadName, fields[1]);
      }
      scenario.name = std::string{fields[1]};
      saw_name = true;
      continue;
    }
    if (directive == "seed") {
      if (saw_seed) {
        throw err(line_no, ScenarioParseReason::kDuplicateDirective, "seed");
      }
      if (fields.size() != 2) {
        throw err(line_no, ScenarioParseReason::kBadFieldCount,
                  "want: seed N");
      }
      auto seed = util::parse_int<std::uint64_t>(fields[1]);
      if (!seed) throw err(line_no, ScenarioParseReason::kBadSeed, fields[1]);
      scenario.seed = *seed;
      saw_seed = true;
      continue;
    }

    Event event;
    if (directive == "depeer") {
      event.kind = EventKind::kDepeerCountries;
      if (fields.size() != 3) {
        throw err(line_no, ScenarioParseReason::kBadFieldCount,
                  "want: depeer CC1 CC2");
      }
      auto a = geo::CountryCode::parse(fields[1]);
      if (!a) throw err(line_no, ScenarioParseReason::kBadCountry, fields[1]);
      auto b = geo::CountryCode::parse(fields[2]);
      if (!b) throw err(line_no, ScenarioParseReason::kBadCountry, fields[2]);
      if (*a == *b) {
        throw err(line_no, ScenarioParseReason::kSameCountry, fields[1]);
      }
      event.country_a = *a;
      event.country_b = *b;
    } else if (directive == "depeer-clique") {
      event.kind = EventKind::kDepeerClique;
      if (fields.size() != 2) {
        throw err(line_no, ScenarioParseReason::kBadFieldCount,
                  "want: depeer-clique ASN");
      }
      auto asn = util::parse_int<Asn>(fields[1]);
      if (!asn || *asn == 0) {
        throw err(line_no, ScenarioParseReason::kBadAsn, fields[1]);
      }
      event.asn = *asn;
    } else if (directive == "hijack") {
      event.kind = EventKind::kHijack;
      if (fields.size() != 4) {
        throw err(line_no, ScenarioParseReason::kBadFieldCount,
                  "want: hijack PREFIX by ASN");
      }
      auto prefix = bgp::Prefix::parse(fields[1]);
      if (!prefix) {
        throw err(line_no, ScenarioParseReason::kBadPrefix, fields[1]);
      }
      if (fields[2] != "by") {
        throw err(line_no, ScenarioParseReason::kMissingKeyword, "want 'by'");
      }
      auto asn = util::parse_int<Asn>(fields[3]);
      if (!asn || *asn == 0) {
        throw err(line_no, ScenarioParseReason::kBadAsn, fields[3]);
      }
      event.prefix = *prefix;
      event.asn = *asn;
    } else if (directive == "cablecut") {
      event.kind = EventKind::kCableCut;
      if (fields.size() != 3) {
        throw err(line_no, ScenarioParseReason::kBadFieldCount,
                  "want: cablecut CC FRACTION");
      }
      auto country = geo::CountryCode::parse(fields[1]);
      if (!country) {
        throw err(line_no, ScenarioParseReason::kBadCountry, fields[1]);
      }
      auto fraction = parse_fraction(fields[2]);
      if (!fraction) {
        throw err(line_no, ScenarioParseReason::kBadFraction, fields[2]);
      }
      event.country_a = *country;
      event.fraction = *fraction;
    } else if (directive == "consolidate") {
      event.kind = EventKind::kConsolidate;
      if (fields.size() != 4) {
        throw err(line_no, ScenarioParseReason::kBadFieldCount,
                  "want: consolidate CC onto ASN");
      }
      auto country = geo::CountryCode::parse(fields[1]);
      if (!country) {
        throw err(line_no, ScenarioParseReason::kBadCountry, fields[1]);
      }
      if (fields[2] != "onto") {
        throw err(line_no, ScenarioParseReason::kMissingKeyword, "want 'onto'");
      }
      auto asn = util::parse_int<Asn>(fields[3]);
      if (!asn || *asn == 0) {
        throw err(line_no, ScenarioParseReason::kBadAsn, fields[3]);
      }
      event.country_a = *country;
      event.asn = *asn;
    } else {
      throw err(line_no, ScenarioParseReason::kUnknownDirective, directive);
    }
    scenario.events.push_back(event);
  }

  if (scenario.events.empty()) {
    throw err(0, ScenarioParseReason::kEmpty, "");
  }
  return scenario;
}

std::string to_text(const Scenario& scenario) {
  std::string out;
  if (!scenario.name.empty()) {
    out += "name " + scenario.name + "\n";
  }
  out += "seed " + std::to_string(scenario.seed) + "\n";
  for (const Event& event : scenario.events) {
    switch (event.kind) {
      case EventKind::kDepeerCountries:
        out += "depeer " + event.country_a.to_string() + " " +
               event.country_b.to_string() + "\n";
        break;
      case EventKind::kDepeerClique:
        out += "depeer-clique " + std::to_string(event.asn) + "\n";
        break;
      case EventKind::kHijack:
        out += "hijack " + event.prefix.to_string() + " by " +
               std::to_string(event.asn) + "\n";
        break;
      case EventKind::kCableCut:
        out += "cablecut " + event.country_a.to_string() + " " +
               format_fraction(event.fraction) + "\n";
        break;
      case EventKind::kConsolidate:
        out += "consolidate " + event.country_a.to_string() + " onto " +
               std::to_string(event.asn) + "\n";
        break;
    }
  }
  return out;
}

std::uint64_t content_hash(const Scenario& scenario) {
  const std::string text = to_text(scenario);
  std::uint64_t hash = 0xcbf29ce484222325ull;  // FNV-1a 64
  for (char c : text) {
    hash ^= static_cast<unsigned char>(c);
    hash *= 0x100000001b3ull;
  }
  return hash;
}

}  // namespace georank::scenario
