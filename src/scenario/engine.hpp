// scenario::WhatIfEngine — counterfactual queries over a core::Pipeline.
//
// The engine owns the what-if dataflow (DESIGN.md §4i): it holds the
// baseline world (graph + registry + RIBs) by reference, captures the
// baseline census once, and per query runs
//
//   scenario::apply -> Pipeline::apply_updates -> all_countries()
//                   -> build_report (vs the captured baseline census)
//
// Pipeline::apply_updates is the memo-reuse lever: because apply()
// keeps every entry untouched by the scenario byte-identical, the
// shard content digests of unaffected countries match the baseline and
// their memoized rankings survive — the report's MemoStats records
// exactly how many. After the census the engine re-arms the baseline
// through a Pipeline::Checkpoint captured at construction: restore()
// swaps the already-sanitized baseline world back without re-running
// the sanitizer, so the NEXT query's counterfactual shards diff against
// the baseline (not a previous scenario) at the cost of a store rebuild
// rather than a full re-sanitize.
//
// Queries are serialized on an internal mutex: the pipeline is a
// mutable world the engine swaps back and forth, so concurrent what-ifs
// would interleave loads. The serve layer's LRU in front of this (keyed
// by scenario hash + snapshot id) absorbs repeat queries.
#pragma once

#include <mutex>
#include <vector>

#include "core/pipeline.hpp"
#include "scenario/apply.hpp"
#include "scenario/report.hpp"
#include "util/thread_safety.hpp"

namespace georank::scenario {

class WhatIfEngine {
 public:
  /// `pipeline` must already have `baseline_ribs` loaded; all referenced
  /// objects must outlive the engine. Captures the baseline census
  /// (warming every memo the counterfactual run can reuse).
  WhatIfEngine(core::Pipeline& pipeline, const topo::AsGraph& graph,
               const rank::AsRegistry& registry,
               const bgp::RibCollection& baseline_ribs);

  /// Runs one counterfactual query end to end. Deterministic:
  /// bit-identical across GEORANK_THREADS and repeated calls for the
  /// same scenario + seed. Throws ApplyError for scenarios naming ASNs
  /// outside the graph.
  [[nodiscard]] Report run(const Scenario& scenario, std::size_t top_k = 10);

  [[nodiscard]] const std::vector<core::CountryMetrics>& baseline() const {
    return baseline_census_;
  }

 private:
  core::Pipeline& pipeline_;
  const topo::AsGraph& graph_;
  const rank::AsRegistry& registry_;
  const bgp::RibCollection& baseline_;
  std::vector<core::CountryMetrics> baseline_census_;
  /// The sanitized baseline world, captured once so every re-arm skips
  /// the sanitizer (Pipeline::restore).
  core::Pipeline::Checkpoint baseline_checkpoint_;

  /// Serializes whole queries (the pipeline world swap is stateful).
  std::mutex run_mutex_;
};

}  // namespace georank::scenario
