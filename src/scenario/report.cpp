#include "scenario/report.hpp"

#include <algorithm>
#include <cstdio>

#include "core/timeline.hpp"
#include "util/table.hpp"

namespace georank::scenario {

namespace {

constexpr core::TimelineMetric kMetrics[] = {
    core::TimelineMetric::kCci, core::TimelineMetric::kCcn,
    core::TimelineMetric::kAhi, core::TimelineMetric::kAhn};

[[nodiscard]] std::string_view metric_label(core::TimelineMetric metric) {
  switch (metric) {
    case core::TimelineMetric::kCci: return "cci";
    case core::TimelineMetric::kCcn: return "ccn";
    case core::TimelineMetric::kAhi: return "ahi";
    case core::TimelineMetric::kAhn: return "ahn";
  }
  return "?";
}

[[nodiscard]] bool delta_moved(const core::RankDelta& delta) {
  return std::any_of(delta.shifts.begin(), delta.shifts.end(),
                     [](const core::RankShift& s) {
                       return s.entered() || s.left() || s.rank_change() != 0 ||
                              s.before_score != s.after_score;
                     });
}

[[nodiscard]] std::string format_score(double value) {
  char buf[32];
  std::snprintf(buf, sizeof buf, "%.6g", value);
  return buf;
}

[[nodiscard]] std::string format_rank(const std::optional<std::size_t>& rank) {
  return rank ? std::to_string(*rank) : "-";
}

}  // namespace

const core::RankDelta& CountryShift::delta(core::TimelineMetric metric) const {
  switch (metric) {
    case core::TimelineMetric::kCci: return cci;
    case core::TimelineMetric::kCcn: return ccn;
    case core::TimelineMetric::kAhi: return ahi;
    case core::TimelineMetric::kAhn: return ahn;
  }
  return cci;
}

Report build_report(const Scenario& scenario, const ApplyStats& apply_stats,
                    const MemoStats& memo,
                    const std::vector<core::CountryMetrics>& baseline,
                    const std::vector<core::CountryMetrics>& counterfactual,
                    std::size_t top_k) {
  Report report;
  report.scenario = scenario;
  report.scenario_hash = content_hash(scenario);
  report.apply = apply_stats;
  report.memo = memo;
  report.top_k = top_k;
  report.countries_total = baseline.size();

  // Both censuses are sorted by country code: a classic merge walk.
  static const rank::Ranking kEmptyRanking;
  std::size_t i = 0, j = 0;
  while (i < baseline.size() || j < counterfactual.size()) {
    const core::CountryMetrics* before =
        i < baseline.size() ? &baseline[i] : nullptr;
    const core::CountryMetrics* after =
        j < counterfactual.size() ? &counterfactual[j] : nullptr;
    if (before && after) {
      if (before->country.raw() < after->country.raw()) {
        after = nullptr;
      } else if (after->country.raw() < before->country.raw()) {
        before = nullptr;
      }
    }

    CountryShift shift;
    shift.country = before ? before->country : after->country;
    shift.in_baseline = before != nullptr;
    shift.in_counterfactual = after != nullptr;
    if (before) shift.confidence_before = before->confidence;
    if (after) shift.confidence_after = after->confidence;
    for (core::TimelineMetric metric : kMetrics) {
      const rank::Ranking& lhs =
          before ? core::select_metric(*before, metric) : kEmptyRanking;
      const rank::Ranking& rhs =
          after ? core::select_metric(*after, metric) : kEmptyRanking;
      core::RankDelta delta = core::compare_rankings(lhs, rhs, top_k);
      switch (metric) {
        case core::TimelineMetric::kCci: shift.cci = std::move(delta); break;
        case core::TimelineMetric::kCcn: shift.ccn = std::move(delta); break;
        case core::TimelineMetric::kAhi: shift.ahi = std::move(delta); break;
        case core::TimelineMetric::kAhn: shift.ahn = std::move(delta); break;
      }
    }

    const bool changed =
        !shift.in_baseline || !shift.in_counterfactual ||
        shift.confidence_before != shift.confidence_after ||
        delta_moved(shift.cci) || delta_moved(shift.ccn) ||
        delta_moved(shift.ahi) || delta_moved(shift.ahn);
    if (changed) report.shifts.push_back(std::move(shift));

    if (before) ++i;
    if (after) ++j;
  }
  return report;
}

std::string render_text(const Report& report) {
  std::string out;
  out += "scenario: " +
         (report.scenario.name.empty() ? std::string{"(unnamed)"}
                                       : report.scenario.name) +
         "  seed=" + std::to_string(report.scenario.seed) +
         "  events=" + std::to_string(report.scenario.events.size()) + "\n";
  char line[256];
  std::snprintf(line, sizeof line,
                "edits: -%zu/+%zu edges, %zu hijacked, %zu prefixes "
                "rerouted; entries kept=%zu rerouted=%zu withdrawn=%zu\n",
                report.apply.edges_removed, report.apply.edges_added,
                report.apply.prefixes_hijacked, report.apply.prefixes_rerouted,
                report.apply.entries_kept, report.apply.entries_rerouted,
                report.apply.entries_withdrawn);
  out += line;
  std::snprintf(line, sizeof line,
                "memo: shards kept=%zu rebuilt=%zu, rankings kept=%zu "
                "evicted=%zu\n",
                report.memo.shards_kept, report.memo.shards_rebuilt,
                report.memo.memos_kept, report.memo.memos_evicted);
  out += line;
  std::snprintf(line, sizeof line, "countries changed: %zu of %zu\n\n",
                report.shifts.size(), report.countries_total);
  out += line;

  for (const CountryShift& shift : report.shifts) {
    out += "== " + shift.country.to_string();
    if (!shift.in_counterfactual) {
      out += "  (VANISHED)";
    } else if (!shift.in_baseline) {
      out += "  (APPEARED)";
    }
    if (shift.confidence_before != shift.confidence_after) {
      out += "  confidence " +
             std::string{robust::to_string(shift.confidence_before)} + " -> " +
             std::string{robust::to_string(shift.confidence_after)};
    }
    out += "\n";
    for (core::TimelineMetric metric : kMetrics) {
      const core::RankDelta& delta = shift.delta(metric);
      if (!delta_moved(delta)) continue;
      util::Table table{{std::string{metric_label(metric)}, "before", "after",
                         "score before", "score after", "move"}};
      for (std::size_t c = 1; c < 6; ++c) table.set_align(c, util::Align::kRight);
      for (const core::RankShift& s : delta.shifts) {
        std::string move;
        if (s.entered()) {
          move = "in";
        } else if (s.left()) {
          move = "out";
        } else if (s.rank_change() != 0) {
          move = (s.rank_change() > 0 ? "+" : "") +
                 std::to_string(s.rank_change());
        }
        table.add_row({"AS" + std::to_string(s.asn), format_rank(s.before_rank),
                       format_rank(s.after_rank), format_score(s.before_score),
                       format_score(s.after_score), move});
      }
      out += table.render();
    }
    out += "\n";
  }
  return out;
}

std::string render_csv(const Report& report) {
  std::string out =
      "country,metric,asn,before_rank,after_rank,before_score,after_score,"
      "rank_change,entered,left\n";
  for (const CountryShift& shift : report.shifts) {
    for (core::TimelineMetric metric : kMetrics) {
      for (const core::RankShift& s : shift.delta(metric).shifts) {
        out += shift.country.to_string();
        out += ',';
        out += metric_label(metric);
        out += ',';
        out += std::to_string(s.asn);
        out += ',';
        out += s.before_rank ? std::to_string(*s.before_rank) : "";
        out += ',';
        out += s.after_rank ? std::to_string(*s.after_rank) : "";
        out += ',';
        out += format_score(s.before_score);
        out += ',';
        out += format_score(s.after_score);
        out += ',';
        out += std::to_string(s.rank_change());
        out += ',';
        out += s.entered() ? "1" : "0";
        out += ',';
        out += s.left() ? "1" : "0";
        out += '\n';
      }
    }
  }
  return out;
}

}  // namespace georank::scenario
