// scenario::Report — counterfactual vs baseline, per-country, per-metric.
//
// Built from two censuses (vectors of core::CountryMetrics, the same
// value Pipeline::all_countries() returns and serve::Snapshot holds):
// each country present in either world gets a core::compare_rankings
// delta per metric (CCI/CCN/AHI/AHN) plus its confidence-tier
// transition; countries where nothing moved are filtered out. Rendering
// to JSON lives in the serve layer (serve::render_whatif_json) so the
// CLI and the /v1/whatif endpoint emit byte-identical bodies; the
// human-readable table and CSV renders live here.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "core/country_rankings.hpp"
#include "core/rank_delta.hpp"
#include "core/timeline.hpp"
#include "scenario/apply.hpp"
#include "scenario/scenario.hpp"

namespace georank::scenario {

struct CountryShift {
  geo::CountryCode country;
  /// A country can vanish (every geolocated prefix withdrawn) or appear
  /// (it cannot today, but the shape allows it).
  bool in_baseline = true;
  bool in_counterfactual = true;
  robust::ConfidenceTier confidence_before = robust::ConfidenceTier::kHigh;
  robust::ConfidenceTier confidence_after = robust::ConfidenceTier::kHigh;
  core::RankDelta cci, ccn, ahi, ahn;

  [[nodiscard]] const core::RankDelta& delta(core::TimelineMetric metric) const;
};

/// What the Pipeline's shard-digest memoization did for this query —
/// the observability record proving untouched countries were NOT
/// recomputed.
struct MemoStats {
  std::size_t shards_kept = 0;
  std::size_t shards_rebuilt = 0;
  std::size_t memos_kept = 0;
  std::size_t memos_evicted = 0;

  friend bool operator==(const MemoStats&, const MemoStats&) = default;
};

struct Report {
  Scenario scenario;
  std::uint64_t scenario_hash = 0;
  ApplyStats apply;
  MemoStats memo;
  std::size_t top_k = 10;
  /// Countries in the baseline census.
  std::size_t countries_total = 0;
  /// Only countries where a metric, membership, or confidence changed,
  /// sorted by country code.
  std::vector<CountryShift> shifts;
};

/// Diffs the two censuses (each sorted by country code, as
/// Pipeline::all_countries() returns them).
[[nodiscard]] Report build_report(
    const Scenario& scenario, const ApplyStats& apply_stats,
    const MemoStats& memo, const std::vector<core::CountryMetrics>& baseline,
    const std::vector<core::CountryMetrics>& counterfactual,
    std::size_t top_k);

/// Human-readable rank-shift tables (stdout of `georank whatif`).
[[nodiscard]] std::string render_text(const Report& report);

/// CSV: one row per (country, metric, asn) shift.
[[nodiscard]] std::string render_csv(const Report& report);

}  // namespace georank::scenario
