// scenario — nation-state routing events as declarative counterfactuals.
//
// The paper's rankings answer "who matters today"; this module asks
// "who would matter if X happened". A Scenario is a small ordered list
// of events drawn from the classes the nation-state routing literature
// enumerates (de-peering, forced transit consolidation, hijacks,
// partitions), written in a line-oriented text DSL (FORMATS.md,
// "scenario.txt" section):
//
//   # sanctions counterfactual
//   name ru-ua-depeer
//   seed 42
//   depeer RU UA
//   hijack 10.1.0.0/16 by 64500
//
// Parsing is strict: every malformed field is rejected with a typed
// ScenarioParseError carrying the 1-based line number and a
// ScenarioParseReason, mirroring the snapshot-codec flip tests
// (GRSNAP01) — tests mutate every field and assert the reason.
//
// to_text() emits the canonical form; parse(to_text(s)) == s, and
// content_hash() (FNV-1a over the canonical text) is the cache key the
// serve layer pairs with a snapshot id.
#pragma once

#include <cstdint>
#include <stdexcept>
#include <string>
#include <string_view>
#include <vector>

#include "bgp/as_path.hpp"
#include "bgp/prefix.hpp"
#include "geo/country.hpp"

namespace georank::scenario {

using bgp::Asn;

/// The five event families (ISSUE/DESIGN.md §4i).
enum class EventKind : std::uint8_t {
  /// "depeer CC1 CC2" — every relationship between an AS registered in
  /// CC1 and one registered in CC2 is severed.
  kDepeerCountries,
  /// "depeer-clique ASN" — the incumbent is ejected from the tier-1
  /// clique: each settlement-free link to a provider-free peer becomes
  /// a p2c edge with the former peer as provider (it now buys transit
  /// where it used to peer).
  kDepeerClique,
  /// "hijack PREFIX by ASN" — full-prefix origin hijack: every route
  /// for PREFIX re-originates at the hijacker.
  kHijack,
  /// "cablecut CC FRACTION" — a deterministic FRACTION of CC's
  /// cross-border links is severed (per-edge PCG32 stream keyed by the
  /// endpoints, so the selection is order- and thread-independent).
  kCableCut,
  /// "consolidate CC onto ASN" — state-mandated transit consolidation:
  /// every cross-border link of CC's ASes except those touching the
  /// designated AS is severed, and affected ASes buy transit from it.
  kConsolidate,
};

[[nodiscard]] std::string_view to_string(EventKind kind) noexcept;

struct Event {
  EventKind kind = EventKind::kDepeerCountries;
  /// depeer lhs / cablecut country / consolidate country.
  geo::CountryCode country_a;
  /// depeer rhs (unused otherwise).
  geo::CountryCode country_b;
  /// depeer-clique target / hijacker / designated transit AS.
  Asn asn = 0;
  /// hijack victim prefix.
  bgp::Prefix prefix{0, 0};
  /// cablecut severed share, in (0, 1].
  double fraction = 0.0;

  friend bool operator==(const Event&, const Event&) = default;
};

struct Scenario {
  std::string name;       // optional label ([A-Za-z0-9._-]+)
  std::uint64_t seed = 1; // drives every stochastic choice (cablecut)
  std::vector<Event> events;

  friend bool operator==(const Scenario&, const Scenario&) = default;
};

/// Why a scenario text was rejected — one reason per malformed field so
/// property tests can assert the exact diagnosis.
enum class ScenarioParseReason : std::uint8_t {
  kUnknownDirective,   // first token is not a known directive
  kBadFieldCount,      // wrong number of tokens for the directive
  kBadName,            // name not [A-Za-z0-9._-]+
  kBadSeed,            // seed not a u64
  kBadCountry,         // not a 2-letter ISO code
  kSameCountry,        // depeer CC CC
  kBadAsn,             // not a u32 ASN > 0
  kBadPrefix,          // not a.b.c.d/len
  kBadFraction,        // not a real in (0, 1]
  kMissingKeyword,     // "by"/"onto" connective absent
  kDuplicateDirective, // name/seed given twice
  kEmpty,              // no events at all
};

[[nodiscard]] std::string_view to_string(ScenarioParseReason reason) noexcept;

class ScenarioParseError : public std::runtime_error {
 public:
  ScenarioParseError(std::size_t line, ScenarioParseReason reason,
                     std::string detail);

  /// 1-based line number of the offending line (0 for whole-input
  /// errors such as kEmpty). Named like MrtParseError::line_number()
  /// — also so the bare name doesn't collide with unrelated `line`
  /// helpers in the lint model's name-based [[nodiscard]] harvest.
  [[nodiscard]] std::size_t line_number() const noexcept { return line_; }
  [[nodiscard]] ScenarioParseReason reason() const noexcept { return reason_; }

 private:
  std::size_t line_;
  ScenarioParseReason reason_;
};

/// Parses the DSL (throws ScenarioParseError). '#' starts a comment;
/// blank lines are skipped; directives are case-sensitive.
[[nodiscard]] Scenario parse(std::string_view text);

/// Canonical text: name line (when non-empty), seed line, then events
/// in order. parse(to_text(s)) == s for every valid Scenario.
[[nodiscard]] std::string to_text(const Scenario& scenario);

/// FNV-1a 64 over to_text(scenario) — the content half of the serve
/// layer's (scenario hash, snapshot id) cache key.
[[nodiscard]] std::uint64_t content_hash(const Scenario& scenario);

}  // namespace georank::scenario
