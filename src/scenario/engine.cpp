#include "scenario/engine.hpp"

namespace georank::scenario {

WhatIfEngine::WhatIfEngine(core::Pipeline& pipeline,
                           const topo::AsGraph& graph,
                           const rank::AsRegistry& registry,
                           const bgp::RibCollection& baseline_ribs)
    : pipeline_(pipeline),
      graph_(graph),
      registry_(registry),
      baseline_(baseline_ribs),
      baseline_census_(pipeline.all_countries()),
      baseline_checkpoint_(pipeline.checkpoint()) {}

Report WhatIfEngine::run(const Scenario& scenario, std::size_t top_k) {
  std::lock_guard lock{run_mutex_};

  ApplyResult edited = apply(scenario, graph_, registry_, baseline_);

  // Swap the counterfactual world in. Untouched countries keep their
  // shard digests and therefore their memoized rankings; the census
  // below only recomputes what the scenario actually changed.
  const core::Pipeline::ApplyResult swap_in =
      pipeline_.apply_updates(edited.ribs);
  // Country-ranking memo counts specifically: the aggregate counters
  // also reflect whatever outbound/health queries happened to be warm
  // (e.g. a Snapshot::build), which would make the report depend on
  // serving history rather than on the scenario.
  MemoStats memo{swap_in.shards_kept, swap_in.shards_rebuilt,
                 swap_in.country_memos_kept, swap_in.country_memos_evicted};

  std::vector<core::CountryMetrics> counterfactual = pipeline_.all_countries();

  // Re-arm the baseline so the next query diffs against it, not against
  // this scenario's world (and so the serving pipeline is back on the
  // published snapshot's data between queries). restore() swaps the
  // already-sanitized baseline world AND its memoized census back by
  // copy — no sanitizer, no store rebuild, no ranking recompute — so
  // every query starts from the same fully-warmed cache (the one
  // captured at construction, right after the baseline census) and its
  // MemoStats are deterministic.
  (void)pipeline_.restore(baseline_checkpoint_);

  return build_report(scenario, edited.stats, memo, baseline_census_,
                      counterfactual, top_k);
}

}  // namespace georank::scenario
