#include "scenario/apply.hpp"

#include <algorithm>
#include <map>
#include <optional>
#include <unordered_set>
#include <utility>
#include <vector>

#include "topo/route_propagation.hpp"
#include "util/parallel_for.hpp"
#include "util/rng.hpp"

namespace georank::scenario {

namespace {

using topo::AsGraph;
using topo::NodeId;

[[nodiscard]] std::optional<geo::CountryCode> country_of(
    const rank::AsRegistry& registry, Asn asn) {
  auto it = registry.find(asn);
  if (it == registry.end()) return std::nullopt;
  return it->second;
}

/// Order-free 64-bit mix of up to three stable identifiers — the PCG32
/// stream / salt discipline: randomness is keyed by WHAT is decided,
/// never by WHEN the loop reaches it.
[[nodiscard]] std::uint64_t mix(std::uint64_t a, std::uint64_t b,
                                std::uint64_t c = 0) {
  std::uint64_t state = a;
  state ^= 0x9e3779b97f4a7c15ull + b;
  std::uint64_t out = util::splitmix64(state);
  state ^= 0x9e3779b97f4a7c15ull + c;
  out ^= util::splitmix64(state);
  return out;
}

[[nodiscard]] std::uint64_t edge_key(Asn a, Asn b) {
  if (a > b) std::swap(a, b);
  return (static_cast<std::uint64_t>(a) << 32) | b;
}

/// Collected graph edits + the severed-pair set the RIB pass matches
/// paths against.
struct EditState {
  AsGraph graph;
  std::unordered_set<std::uint64_t> severed;
  std::unordered_map<bgp::Prefix, Asn, bgp::PrefixHash> hijacks;
  ApplyStats stats;

  /// Removes the relationship (if any) and records the pair so routes
  /// crossing it are re-propagated.
  void sever(Asn a, Asn b) {
    if (!severed.insert(edge_key(a, b)).second) return;
    if (graph.remove_edge(a, b)) ++stats.edges_removed;
  }
};

void apply_depeer_countries(EditState& state, const rank::AsRegistry& registry,
                            const Event& event) {
  std::vector<std::pair<Asn, Asn>> cut;
  for (Asn asn : state.graph.ases()) {
    if (country_of(registry, asn) != event.country_a) continue;
    for (const topo::Neighbor& n : state.graph.neighbors(state.graph.id_of(asn))) {
      const Asn other = state.graph.asn_of(n.id);
      if (country_of(registry, other) == event.country_b) {
        cut.emplace_back(asn, other);
      }
    }
  }
  for (auto [a, b] : cut) state.sever(a, b);
}

void apply_depeer_clique(EditState& state, const Event& event) {
  if (!state.graph.contains(event.asn)) {
    throw ApplyError("depeer-clique: ASN " + std::to_string(event.asn) +
                     " not in the AS graph");
  }
  // The tier-1 test is structural: provider-free peers of the target.
  // Each such settlement-free link becomes transit bought from the
  // former peer.
  std::vector<Asn> clique_peers;
  for (Asn peer : state.graph.peers_of(event.asn)) {
    if (state.graph.providers_of(peer).empty()) clique_peers.push_back(peer);
  }
  for (Asn peer : clique_peers) {
    state.sever(event.asn, peer);
    state.graph.add_p2c(peer, event.asn);
    ++state.stats.edges_added;
  }
}

void apply_hijack(EditState& state, const Event& event) {
  if (!state.graph.contains(event.asn)) {
    throw ApplyError("hijack: ASN " + std::to_string(event.asn) +
                     " not in the AS graph");
  }
  state.hijacks[event.prefix] = event.asn;  // later events win
  ++state.stats.prefixes_hijacked;
}

void apply_cablecut(EditState& state, const rank::AsRegistry& registry,
                    std::uint64_t seed, std::size_t event_index,
                    const Event& event) {
  std::vector<std::pair<Asn, Asn>> cut;
  for (Asn asn : state.graph.ases()) {
    if (country_of(registry, asn) != event.country_a) continue;
    for (const topo::Neighbor& n : state.graph.neighbors(state.graph.id_of(asn))) {
      const Asn other = state.graph.asn_of(n.id);
      if (country_of(registry, other) == event.country_a) continue;  // domestic
      // One independent PCG32 stream per (event, edge): the draw does
      // not depend on iteration order or on which endpoint we saw
      // first, so the selection is bit-stable.
      const Asn lo = std::min(asn, other), hi = std::max(asn, other);
      util::Pcg32 rng{seed, mix(event_index, lo, hi)};
      if (rng.chance(event.fraction)) cut.emplace_back(asn, other);
    }
  }
  for (auto [a, b] : cut) state.sever(a, b);
}

void apply_consolidate(EditState& state, const rank::AsRegistry& registry,
                       const Event& event) {
  if (!state.graph.contains(event.asn)) {
    throw ApplyError("consolidate: ASN " + std::to_string(event.asn) +
                     " not in the AS graph");
  }
  std::vector<std::pair<Asn, Asn>> cut;
  std::vector<Asn> orphaned;  // insertion order, deduped below
  for (Asn asn : state.graph.ases()) {
    if (asn == event.asn) continue;
    if (country_of(registry, asn) != event.country_a) continue;
    bool lost = false;
    for (const topo::Neighbor& n : state.graph.neighbors(state.graph.id_of(asn))) {
      const Asn other = state.graph.asn_of(n.id);
      if (other == event.asn) continue;  // links to the gateway survive
      if (country_of(registry, other) == event.country_a) continue;
      cut.emplace_back(asn, other);
      lost = true;
    }
    if (lost) orphaned.push_back(asn);
  }
  for (auto [a, b] : cut) state.sever(a, b);
  for (Asn asn : orphaned) {
    if (!state.graph.relationship(event.asn, asn)) {
      state.graph.add_p2c(event.asn, asn);
      ++state.stats.edges_added;
    }
  }
}

[[nodiscard]] bool crosses_severed(
    const bgp::AsPath& path, const std::unordered_set<std::uint64_t>& severed) {
  const std::span<const Asn> hops = path.hops();
  for (std::size_t i = 0; i + 1 < hops.size(); ++i) {
    if (severed.contains(edge_key(hops[i], hops[i + 1]))) return true;
  }
  return false;
}

/// One re-propagation unit: every affected VP AS of one (prefix,
/// target-origin) pair shares a single RoutingTable.
struct Reroute {
  bgp::Prefix prefix{0, 0};
  Asn origin = 0;
  std::vector<Asn> vp_ases;  // sorted + deduped before compute
};

}  // namespace

ApplyResult apply(const Scenario& scenario, const topo::AsGraph& graph,
                  const rank::AsRegistry& registry,
                  const bgp::RibCollection& baseline,
                  const ApplyOptions& options) {
  EditState state{graph, {}, {}, {}};

  for (std::size_t i = 0; i < scenario.events.size(); ++i) {
    const Event& event = scenario.events[i];
    switch (event.kind) {
      case EventKind::kDepeerCountries:
        apply_depeer_countries(state, registry, event);
        break;
      case EventKind::kDepeerClique:
        apply_depeer_clique(state, event);
        break;
      case EventKind::kHijack:
        apply_hijack(state, event);
        break;
      case EventKind::kCableCut:
        apply_cablecut(state, registry, scenario.seed, i, event);
        break;
      case EventKind::kConsolidate:
        apply_consolidate(state, registry, event);
        break;
    }
  }

  // ------------------------------------------------------------------
  // Group affected entries by (prefix, target origin); first-encounter
  // order while scanning days in sequence keeps the group list stable.
  auto target_origin = [&state](const bgp::RouteEntry& entry)
      -> std::optional<Asn> {
    auto hijacked = state.hijacks.find(entry.prefix);
    if (hijacked != state.hijacks.end()) return hijacked->second;
    if (entry.path.size() > 0 && crosses_severed(entry.path, state.severed)) {
      return entry.path.origin();
    }
    return std::nullopt;
  };

  std::vector<Reroute> groups;
  std::map<std::pair<std::uint64_t, Asn>, std::size_t> group_index;
  auto group_key = [](bgp::Prefix prefix, Asn origin) {
    return std::make_pair(
        (static_cast<std::uint64_t>(prefix.address()) << 8) | prefix.length(),
        origin);
  };
  for (const bgp::RibSnapshot& day : baseline.days) {
    for (const bgp::RouteEntry& entry : day.entries) {
      auto origin = target_origin(entry);
      if (!origin) continue;
      auto key = group_key(entry.prefix, *origin);
      auto [it, fresh] = group_index.try_emplace(key, groups.size());
      if (fresh) groups.push_back(Reroute{entry.prefix, *origin, {}});
      groups[it->second].vp_ases.push_back(entry.vp.asn);
    }
  }
  for (Reroute& group : groups) {
    std::sort(group.vp_ases.begin(), group.vp_ases.end());
    group.vp_ases.erase(
        std::unique(group.vp_ases.begin(), group.vp_ases.end()),
        group.vp_ases.end());
  }
  state.stats.prefixes_rerouted = groups.size();

  // ------------------------------------------------------------------
  // Re-propagate each group over the edited graph. Slot-per-group
  // output keeps the fan-out bit-identical across GEORANK_THREADS.
  const topo::RoutePropagator propagator{state.graph};
  std::vector<std::vector<bgp::AsPath>> new_paths(groups.size());
  util::parallel_for(
      groups.size(),
      [&](std::size_t g) {
        const Reroute& group = groups[g];
        std::vector<bgp::AsPath>& out = new_paths[g];
        out.resize(group.vp_ases.size());
        if (!state.graph.contains(group.origin)) return;  // all withdrawn
        const std::uint64_t salt =
            mix(scenario.seed, (static_cast<std::uint64_t>(
                                    group.prefix.address()) << 8) |
                                   group.prefix.length());
        const topo::RoutingTable table =
            propagator.compute(group.origin, salt);
        for (std::size_t v = 0; v < group.vp_ases.size(); ++v) {
          if (!state.graph.contains(group.vp_ases[v])) continue;
          out[v] = table.path_from(state.graph.id_of(group.vp_ases[v]));
        }
      },
      options.threads);

  // ------------------------------------------------------------------
  // Rebuild the collection in original order: keep, substitute, or drop.
  ApplyResult result{std::move(state.graph), {}, state.stats};
  result.ribs.days.reserve(baseline.days.size());
  for (const bgp::RibSnapshot& day : baseline.days) {
    bgp::RibSnapshot out_day;
    out_day.day = day.day;
    out_day.entries.reserve(day.entries.size());
    for (const bgp::RouteEntry& entry : day.entries) {
      auto origin = target_origin(entry);
      if (!origin) {
        out_day.entries.push_back(entry);
        ++result.stats.entries_kept;
        continue;
      }
      const std::size_t g = group_index.at(group_key(entry.prefix, *origin));
      const Reroute& group = groups[g];
      const auto vp_it = std::lower_bound(group.vp_ases.begin(),
                                          group.vp_ases.end(), entry.vp.asn);
      const std::size_t v =
          static_cast<std::size_t>(vp_it - group.vp_ases.begin());
      const bgp::AsPath& path = new_paths[g][v];
      if (path.size() == 0) {
        ++result.stats.entries_withdrawn;  // origin unreachable: withdrawn
        continue;
      }
      bgp::RouteEntry rerouted = entry;
      rerouted.path = path;
      out_day.entries.push_back(std::move(rerouted));
      ++result.stats.entries_rerouted;
    }
    result.ribs.days.push_back(std::move(out_day));
  }
  return result;
}

}  // namespace georank::scenario
