// Transit degree: the number of distinct neighbors an AS is observed
// TRANSITING between, i.e. neighbors adjacent to the AS in paths where the
// AS is not an endpoint (Luckie et al. 2013). The clique and relationship
// inference stages both rank ASes by this.
#pragma once

#include <span>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "bgp/as_path.hpp"

namespace georank::infer {

using bgp::Asn;
using bgp::AsPath;

class TransitDegree {
 public:
  /// Accumulate one (already sanitized, loop-free) path.
  void add_path(const AsPath& path);

  [[nodiscard]] std::size_t degree(Asn asn) const;

  /// ASNs sorted by descending transit degree (ties: ascending ASN).
  [[nodiscard]] std::vector<Asn> ranked() const;

  [[nodiscard]] std::size_t as_count() const noexcept { return neighbors_.size(); }

 private:
  std::unordered_map<Asn, std::unordered_set<Asn>> neighbors_;
};

/// Plain adjacency observed in paths (any position), used by the clique
/// search: clique members must all be seen interconnected.
class ObservedAdjacency {
 public:
  void add_path(const AsPath& path);
  [[nodiscard]] bool adjacent(Asn a, Asn b) const;

 private:
  std::unordered_map<Asn, std::unordered_set<Asn>> adj_;
};

}  // namespace georank::infer
