// AS relationship inference from sanitized AS paths.
//
// Degree-gradient ("Gao-style") inference with a clique prior:
//   1. every path votes: the AS with the largest transit degree on the
//      path is the apex; links VP-side of the apex are voted
//      customer->provider, links origin-side provider->customer;
//   2. links between two inferred clique members are peers (the top-tier
//      peering mesh);
//   3. links whose two orientations each collect a substantial share of
//      votes are peers (paths cross them in both directions at the apex);
//   4. remaining links take their majority orientation.
//
// This is deliberately simpler than the full 11-step Luckie et al.
// algorithm but recovers the relationship structure well on topologies
// whose degree hierarchy matches the business hierarchy; tests score it
// against the generator's ground truth.
#pragma once

#include <span>
#include <vector>

#include "bgp/as_path.hpp"
#include "infer/transit_degree.hpp"
#include "topo/as_graph.hpp"

namespace georank::infer {

struct RelationshipOptions {
  /// A link is peer when each orientation holds at least this vote share.
  double peer_conflict_share = 0.25;
  /// Gao's degree-ratio rule: a link whose endpoints have comparable
  /// transit degree — (min+1)/(max+1) at or above this ratio — is a peer
  /// even without conflicting votes (one-sided VP coverage hides the
  /// reverse direction of many true peer links).
  double peer_degree_ratio = 0.7;
  /// The ratio rule applies only when both endpoints transit at least
  /// this many distinct neighbors; tiny symmetric links carry no signal.
  std::size_t min_peer_degree = 4;
  /// Valley-free propagation constrains virtually every true transit link
  /// (descents toward each origin are globally visible); a link observed
  /// at least this often that is STILL unconstrained is labeled peer.
  std::size_t min_peer_observations = 3;
};

struct InferenceResult {
  topo::AsGraph graph;          // inferred relationships
  std::vector<Asn> clique;      // inferred top tier
  std::size_t link_count = 0;   // distinct links labeled
};

class RelationshipInference {
 public:
  explicit RelationshipInference(RelationshipOptions options = {})
      : options_(options) {}

  void add_path(const AsPath& path);

  /// Label every observed link. Call once after all paths are added.
  [[nodiscard]] InferenceResult infer() const;

 private:
  RelationshipOptions options_;
  TransitDegree degrees_;
  ObservedAdjacency adjacency_;
  std::vector<AsPath> paths_;
};

/// Accuracy of inferred vs ground-truth relationships over the links
/// present in BOTH graphs (positional accuracy on shared links).
struct ValidationScore {
  std::size_t shared_links = 0;
  std::size_t correct = 0;
  /// p2c links labeled p2c with the right orientation.
  std::size_t correct_p2c = 0, total_p2c = 0;
  std::size_t correct_p2p = 0, total_p2p = 0;

  [[nodiscard]] double accuracy() const noexcept {
    return shared_links ? static_cast<double>(correct) / static_cast<double>(shared_links)
                        : 0.0;
  }
};

[[nodiscard]] ValidationScore validate_against(const topo::AsGraph& truth,
                                               const topo::AsGraph& inferred);

}  // namespace georank::infer
