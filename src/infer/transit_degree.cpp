#include "infer/transit_degree.hpp"

#include <algorithm>

namespace georank::infer {

void TransitDegree::add_path(const AsPath& path) {
  for (std::size_t i = 1; i + 1 < path.size(); ++i) {
    auto& set = neighbors_[path[i]];
    set.insert(path[i - 1]);
    set.insert(path[i + 1]);
  }
  // Endpoints still exist as ASes with (possibly) zero transit degree.
  if (!path.empty()) {
    neighbors_.try_emplace(path[0]);
    neighbors_.try_emplace(path[path.size() - 1]);
  }
}

std::size_t TransitDegree::degree(Asn asn) const {
  auto it = neighbors_.find(asn);
  return it == neighbors_.end() ? 0 : it->second.size();
}

std::vector<Asn> TransitDegree::ranked() const {
  std::vector<Asn> out;
  out.reserve(neighbors_.size());
  for (const auto& [asn, _] : neighbors_) out.push_back(asn);
  std::sort(out.begin(), out.end(), [&](Asn a, Asn b) {
    std::size_t da = degree(a), db = degree(b);
    if (da != db) return da > db;
    return a < b;
  });
  return out;
}

void ObservedAdjacency::add_path(const AsPath& path) {
  for (std::size_t i = 0; i + 1 < path.size(); ++i) {
    if (path[i] == path[i + 1]) continue;
    adj_[path[i]].insert(path[i + 1]);
    adj_[path[i + 1]].insert(path[i]);
  }
}

bool ObservedAdjacency::adjacent(Asn a, Asn b) const {
  auto it = adj_.find(a);
  return it != adj_.end() && it->second.contains(b);
}

}  // namespace georank::infer
