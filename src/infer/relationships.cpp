#include "infer/relationships.hpp"

#include <algorithm>
#include <cmath>
#include <unordered_map>
#include <unordered_set>

#include "infer/clique.hpp"

namespace georank::infer {

namespace {

/// Canonical undirected link key: lower ASN first.
using LinkKey = std::uint64_t;

LinkKey link_key(Asn a, Asn b) noexcept {
  Asn lo = std::min(a, b), hi = std::max(a, b);
  return (static_cast<std::uint64_t>(lo) << 32) | hi;
}

struct Votes {
  // Votes that the LOWER-numbered AS is the customer (lo->hi is c2p).
  std::size_t lo_is_customer = 0;
  // Votes that the HIGHER-numbered AS is the customer.
  std::size_t hi_is_customer = 0;
};

}  // namespace

void RelationshipInference::add_path(const AsPath& path) {
  AsPath collapsed = path.without_adjacent_duplicates();
  if (collapsed.size() < 2 || collapsed.has_nonadjacent_duplicate()) return;
  degrees_.add_path(collapsed);
  adjacency_.add_path(collapsed);
  paths_.push_back(std::move(collapsed));
}

InferenceResult RelationshipInference::infer() const {
  std::vector<Asn> clique = infer_clique(degrees_, adjacency_);
  std::unordered_set<Asn> clique_set(clique.begin(), clique.end());

  // ---- Valley-free constraint propagation. Once a path crosses a peer
  // or provider->customer link it can only descend, so every link after a
  // CONFIDENT turn is provider->customer in path order. Clique peer links
  // seed the turns; newly constrained links create further turns in other
  // paths until fixed point. ----
  // State bits per undirected link: 1 = constrained lo->hi (lo is the
  // provider), 2 = constrained hi->lo.
  std::unordered_map<LinkKey, std::uint8_t> constrained;
  auto is_turner = [&](Asn a, Asn b) {
    if (clique_set.contains(a) && clique_set.contains(b)) return true;
    auto it = constrained.find(link_key(a, b));
    if (it == constrained.end()) return false;
    // Turns the walk only when constrained as a descent in THIS direction.
    std::uint8_t descent_bit = (a == std::min(a, b)) ? 1 : 2;
    return (it->second & descent_bit) != 0;
  };
  bool changed = true;
  while (changed) {
    changed = false;
    for (const AsPath& path : paths_) {
      bool turned = false;
      for (std::size_t i = 0; i + 1 < path.size(); ++i) {
        Asn a = path[i], b = path[i + 1];
        if (turned) {
          std::uint8_t bit = (a == std::min(a, b)) ? 1 : 2;
          std::uint8_t& state = constrained[link_key(a, b)];
          if (!(state & bit)) {
            state |= bit;
            changed = true;
          }
        } else if (is_turner(a, b)) {
          turned = true;
        }
      }
    }
  }

  std::unordered_map<LinkKey, Votes> votes;
  for (const AsPath& path : paths_) {
    // Apex: the hop with the largest transit degree. Valley-free paths
    // peak near the middle, so degree ties break toward the center.
    std::size_t apex = 0;
    std::size_t best = degrees_.degree(path[0]);
    double middle = 0.5 * static_cast<double>(path.size() - 1);
    auto center_dist = [&](std::size_t i) {
      return std::abs(static_cast<double>(i) - middle);
    };
    for (std::size_t i = 1; i < path.size(); ++i) {
      std::size_t d = degrees_.degree(path[i]);
      if (d > best || (d == best && center_dist(i) < center_dist(apex))) {
        best = d;
        apex = i;
      }
    }
    for (std::size_t i = 0; i + 1 < path.size(); ++i) {
      Asn a = path[i], b = path[i + 1];
      Votes& v = votes[link_key(a, b)];
      // i < apex: walking toward the apex, a is the customer of b.
      // i >= apex: descending from the apex, b is the customer of a.
      Asn customer = (i < apex) ? a : b;
      if (customer == std::min(a, b)) {
        ++v.lo_is_customer;
      } else {
        ++v.hi_is_customer;
      }
    }
  }

  InferenceResult result;
  result.clique = clique;
  for (const auto& [key, v] : votes) {
    Asn lo = static_cast<Asn>(key >> 32);
    Asn hi = static_cast<Asn>(key & 0xffffffffu);
    ++result.link_count;

    if (clique_set.contains(lo) && clique_set.contains(hi)) {
      result.graph.add_p2p(lo, hi);
      continue;
    }

    // Valley-free constraints are the strongest evidence after the clique.
    if (auto it = constrained.find(key); it != constrained.end()) {
      if (it->second == 1) {
        result.graph.add_p2c(lo, hi);
        continue;
      }
      if (it->second == 2) {
        result.graph.add_p2c(hi, lo);
        continue;
      }
      // Constrained both ways (noise): treat as peer, the only label
      // consistent with bidirectional appearance at the turn.
      result.graph.add_p2p(lo, hi);
      continue;
    }

    std::size_t total = v.lo_is_customer + v.hi_is_customer;
    double lo_share = static_cast<double>(v.lo_is_customer) / static_cast<double>(total);
    double hi_share = 1.0 - lo_share;
    std::size_t deg_lo = degrees_.degree(lo), deg_hi = degrees_.degree(hi);
    double degree_ratio = (static_cast<double>(std::min(deg_lo, deg_hi)) + 1.0) /
                          (static_cast<double>(std::max(deg_lo, deg_hi)) + 1.0);
    // A provider transits by definition (degree >= 2); two transit-free
    // ASes can only be IXP peers.
    bool tiny_symmetric = std::max(deg_lo, deg_hi) <= 1;
    bool comparable_majors = degree_ratio >= options_.peer_degree_ratio &&
                             std::min(deg_lo, deg_hi) >= options_.min_peer_degree;
    bool conflict = lo_share >= options_.peer_conflict_share &&
                    hi_share >= options_.peer_conflict_share;
    bool visible_but_never_descends = total >= options_.min_peer_observations;
    if (conflict || tiny_symmetric || comparable_majors ||
        visible_but_never_descends) {
      result.graph.add_p2p(lo, hi);
    } else if (v.lo_is_customer > v.hi_is_customer) {
      result.graph.add_p2c(hi, lo);
    } else {
      result.graph.add_p2c(lo, hi);
    }
  }
  return result;
}

ValidationScore validate_against(const topo::AsGraph& truth,
                                 const topo::AsGraph& inferred) {
  ValidationScore score;
  for (Asn a : inferred.ases()) {
    if (!truth.contains(a)) continue;
    for (const topo::Neighbor& n : inferred.neighbors(inferred.id_of(a))) {
      Asn b = inferred.asn_of(n.id);
      if (a > b) continue;  // visit each undirected link once
      auto true_rel = truth.relationship(a, b);
      if (!true_rel) continue;
      ++score.shared_links;
      bool true_is_p2p = *true_rel == topo::Rel::kPeer;
      bool inf_is_p2p = n.rel == topo::Rel::kPeer;
      if (true_is_p2p) ++score.total_p2p;
      else ++score.total_p2c;
      if (true_is_p2p && inf_is_p2p) {
        ++score.correct;
        ++score.correct_p2p;
      } else if (!true_is_p2p && !inf_is_p2p && *true_rel == n.rel) {
        // Same orientation: a's view of b matches.
        ++score.correct;
        ++score.correct_p2c;
      }
    }
  }
  return score;
}

}  // namespace georank::infer
