#include "infer/clique.hpp"

#include <algorithm>

namespace georank::infer {

namespace {

/// Exact max-clique by branch and bound over <= ~20 vertices.
/// `adj` is a bitmask adjacency matrix.
void max_clique(const std::vector<std::uint64_t>& adj, std::uint64_t candidates,
                std::uint64_t current, std::uint64_t& best) {
  if (candidates == 0) {
    if (__builtin_popcountll(current) > __builtin_popcountll(best)) best = current;
    return;
  }
  if (__builtin_popcountll(current) + __builtin_popcountll(candidates) <=
      __builtin_popcountll(best)) {
    return;  // bound
  }
  int v = __builtin_ctzll(candidates);
  std::uint64_t bit = std::uint64_t{1} << v;
  // Branch 1: include v.
  max_clique(adj, candidates & adj[static_cast<std::size_t>(v)] & ~bit, current | bit,
             best);
  // Branch 2: exclude v.
  max_clique(adj, candidates & ~bit, current, best);
}

}  // namespace

std::vector<Asn> infer_clique(const TransitDegree& degrees,
                              const ObservedAdjacency& adjacency,
                              const CliqueOptions& options) {
  std::vector<Asn> ranked = degrees.ranked();
  std::size_t n = std::min(options.candidate_count, ranked.size());
  n = std::min<std::size_t>(n, 63);
  if (n == 0) return {};

  std::vector<std::uint64_t> adj(n, 0);
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = 0; j < n; ++j) {
      if (i != j && adjacency.adjacent(ranked[i], ranked[j])) {
        adj[i] |= std::uint64_t{1} << j;
      }
    }
  }
  std::uint64_t best = 0;
  std::uint64_t all = n == 64 ? ~std::uint64_t{0} : (std::uint64_t{1} << n) - 1;
  max_clique(adj, all, 0, best);

  std::vector<Asn> clique;
  for (std::size_t i = 0; i < n; ++i) {
    if (best & (std::uint64_t{1} << i)) clique.push_back(ranked[i]);
  }

  // Greedy extension over the next window of candidates.
  std::size_t window = std::min(options.extension_window, ranked.size());
  for (std::size_t i = n; i < window; ++i) {
    Asn cand = ranked[i];
    bool ok = std::all_of(clique.begin(), clique.end(), [&](Asn member) {
      return adjacency.adjacent(cand, member);
    });
    if (ok) clique.push_back(cand);
  }

  std::sort(clique.begin(), clique.end());
  return clique;
}

}  // namespace georank::infer
