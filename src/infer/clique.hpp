// Top-tier clique inference (Luckie et al. 2013, simplified).
//
// The sanitizer's path-poisoning filter (Table 1) needs the set of
// "top-tier" ASes: the paper infers poisoning when two clique ASes are
// separated by a non-clique AS. We recover the clique from the data the
// same way ASRank does in spirit: candidates are the ASes with the largest
// transit degree; the clique is the largest fully-interconnected subset of
// the candidates (exact max-clique over a small candidate set), greedily
// extended with any further candidate adjacent to every member.
#pragma once

#include <cstddef>
#include <span>
#include <vector>

#include "infer/transit_degree.hpp"

namespace georank::infer {

struct CliqueOptions {
  /// How many top-transit-degree ASes enter the exact max-clique search.
  std::size_t candidate_count = 20;
  /// Candidates beyond the search window may still join greedily.
  std::size_t extension_window = 40;
};

/// Returns the inferred clique, sorted by ascending ASN.
[[nodiscard]] std::vector<Asn> infer_clique(const TransitDegree& degrees,
                                            const ObservedAdjacency& adjacency,
                                            const CliqueOptions& options = {});

}  // namespace georank::infer
