// IPv4 CIDR prefix value type.
//
// The paper's address-space accounting is IPv4-centric; we follow it.
// A Prefix is always canonical: host bits below the mask are zero.
#pragma once

#include <compare>
#include <cstdint>
#include <optional>
#include <string>
#include <string_view>

namespace georank::bgp {

class Prefix {
 public:
  /// 0.0.0.0/0
  constexpr Prefix() noexcept = default;

  /// Canonicalizes: bits below `length` are cleared.
  constexpr Prefix(std::uint32_t address, std::uint8_t length) noexcept
      : addr_(length == 0 ? 0 : (address & mask_for(length))), len_(length > 32 ? 32 : length) {}

  [[nodiscard]] constexpr std::uint32_t address() const noexcept { return addr_; }
  [[nodiscard]] constexpr std::uint8_t length() const noexcept { return len_; }

  /// Number of addresses covered: 2^(32-len).
  [[nodiscard]] constexpr std::uint64_t size() const noexcept {
    return std::uint64_t{1} << (32 - len_);
  }

  /// First address (== address()) and last address in the block.
  [[nodiscard]] constexpr std::uint32_t first() const noexcept { return addr_; }
  [[nodiscard]] constexpr std::uint32_t last() const noexcept {
    return addr_ | ~mask_for(len_);
  }

  /// True if `this` covers `other` (equal or less specific).
  [[nodiscard]] constexpr bool contains(const Prefix& other) const noexcept {
    return len_ <= other.len_ && (other.addr_ & mask_for(len_)) == addr_;
  }

  [[nodiscard]] constexpr bool contains(std::uint32_t ip) const noexcept {
    return (ip & mask_for(len_)) == addr_;
  }

  [[nodiscard]] constexpr bool overlaps(const Prefix& other) const noexcept {
    return contains(other) || other.contains(*this);
  }

  /// Parent prefix (one bit shorter). Undefined for /0; callers must check.
  [[nodiscard]] constexpr Prefix parent() const noexcept {
    return Prefix{addr_, static_cast<std::uint8_t>(len_ - 1)};
  }

  /// The two children of this prefix (len+1). Requires len < 32.
  [[nodiscard]] constexpr Prefix left_child() const noexcept {
    return Prefix{addr_, static_cast<std::uint8_t>(len_ + 1)};
  }
  [[nodiscard]] constexpr Prefix right_child() const noexcept {
    return Prefix{addr_ | (std::uint32_t{1} << (31 - len_)),
                  static_cast<std::uint8_t>(len_ + 1)};
  }

  /// "a.b.c.d/len"
  [[nodiscard]] std::string to_string() const;

  /// Parses "a.b.c.d/len"; nullopt on malformed or non-canonical-hostbits
  /// inputs are accepted and canonicalized (routers do announce them).
  [[nodiscard]] static std::optional<Prefix> parse(std::string_view text) noexcept;

  friend constexpr auto operator<=>(const Prefix&, const Prefix&) noexcept = default;

  static constexpr std::uint32_t mask_for(std::uint8_t length) noexcept {
    return length == 0 ? 0 : ~std::uint32_t{0} << (32 - length);
  }

 private:
  std::uint32_t addr_ = 0;
  std::uint8_t len_ = 0;
};

/// "a.b.c.d" for a bare address.
[[nodiscard]] std::string format_ipv4(std::uint32_t ip);
[[nodiscard]] std::optional<std::uint32_t> parse_ipv4(std::string_view text) noexcept;

struct PrefixHash {
  [[nodiscard]] std::size_t operator()(const Prefix& p) const noexcept {
    std::uint64_t x = (static_cast<std::uint64_t>(p.address()) << 8) | p.length();
    x ^= x >> 33;
    x *= 0xff51afd7ed558ccdull;
    x ^= x >> 33;
    return static_cast<std::size_t>(x);
  }
};

}  // namespace georank::bgp
