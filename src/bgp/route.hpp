// RIB entries as consumed by the ranking pipeline.
#pragma once

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "bgp/as_path.hpp"
#include "bgp/prefix.hpp"

namespace georank::bgp {

/// A vantage point is a BGP peer of a route collector, identified by the
/// peer's IP address and AS number (both appear in every announcement).
struct VpId {
  std::uint32_t ip = 0;
  Asn asn = kInvalidAsn;

  friend auto operator<=>(const VpId&, const VpId&) = default;
};

struct VpIdHash {
  [[nodiscard]] std::size_t operator()(const VpId& vp) const noexcept {
    std::uint64_t x = (static_cast<std::uint64_t>(vp.ip) << 32) | vp.asn;
    x ^= x >> 33;
    x *= 0xff51afd7ed558ccdull;
    x ^= x >> 33;
    return static_cast<std::size_t>(x);
  }
};

/// One best-path RIB entry: VP -> path -> prefix.
struct RouteEntry {
  VpId vp;
  Prefix prefix;
  AsPath path;

  friend bool operator==(const RouteEntry&, const RouteEntry&) = default;
};

/// A RIB snapshot from one (synthetic) dump day across all collectors.
struct RibSnapshot {
  int day = 0;  // 1..5 following the paper's "first five days of the month"
  std::vector<RouteEntry> entries;
};

/// Multi-day collection feeding the sanitizer (§3.1: 5 RIBs, prefixes must
/// appear in all of them).
struct RibCollection {
  std::vector<RibSnapshot> days;

  [[nodiscard]] std::size_t total_entries() const noexcept {
    std::size_t n = 0;
    for (const auto& d : days) n += d.entries.size();
    return n;
  }
};

}  // namespace georank::bgp
