// The shared parse core of the text-ingest layer.
//
// Both bgpdump-style readers (bgp::MrtTextReader for TABLE_DUMP2 RIB
// dumps, bgp::UpdateTextReader for BGP4MP update archives) decode the
// same pipe-delimited field layout:
//
//   <record-type>|<unix-time>|<marker>|<peer-ip>|<peer-asn>|<prefix>[|<as-path>|IGP]
//
// This header holds everything they share: the per-reason diagnostic
// vocabulary (ParseReason), the strict/tolerant mode switch, the
// structured MrtParseStats record, and the field-decoding core itself.
// Real collector feeds are full of garbage — truncated lines, AS_SETs,
// clock skew, mixed-day archives — and downstream rankings are sensitive
// to what the ingest layer silently drops, so every drop is attributed
// to a concrete reason and the first few offending lines are retained
// for auditing.
#pragma once

#include <cstddef>
#include <cstdint>
#include <limits>
#include <span>
#include <stdexcept>
#include <string>
#include <string_view>
#include <type_traits>
#include <vector>

#include "bgp/route.hpp"
#include "util/strings.hpp"

namespace georank::bgp {

/// Why a line was dropped — or, for kAsSet, a non-fatal oddity on a line
/// that still parsed. kOk is first so a zero-initialized reason reads as
/// success.
enum class ParseReason : std::uint8_t {
  kOk = 0,
  kBadFieldCount,  // wrong number of '|'-separated fields
  kBadRecordType,  // not TABLE_DUMP2/BGP4MP, or an unknown A/W/B marker
  kBadTimestamp,   // non-numeric unix time
  kBadIp,          // unparsable peer IP
  kBadAsn,         // unparsable, overflowing, or AS0 peer ASN
  kBadPrefix,      // unparsable CIDR prefix
  kBadPath,        // unparsable AS-path token
  kEmptyPath,      // announce with an empty AS path
  kDayOutOfRange,  // timestamp before base_time or past the day horizon
  kAsSet,          // informational: AS_SET tokens flattened, line parsed
};
inline constexpr std::size_t kParseReasonCount = 11;

[[nodiscard]] std::string_view to_string(ParseReason reason) noexcept;

/// kTolerant counts-and-skips malformed lines (the historical behavior);
/// kStrict throws MrtParseError at the first one.
enum class ParseMode : std::uint8_t { kTolerant, kStrict };

/// Thrown by strict-mode readers/loaders at the first malformed line.
/// what() carries the 1-based line number, the reason, and the line.
class MrtParseError : public std::runtime_error {
 public:
  MrtParseError(std::size_t line_number, ParseReason reason,
                std::string_view line);

  [[nodiscard]] std::size_t line_number() const noexcept { return line_number_; }
  [[nodiscard]] ParseReason reason() const noexcept { return reason_; }

 private:
  std::size_t line_number_;
  ParseReason reason_;
};

/// Structured ingest diagnostics exposed by every text reader and by
/// MrtStreamLoader. Invariant after any complete read:
///   lines == parsed + malformed + skipped_comments
/// and `malformed` equals the sum of the per-reason counters (as_set is
/// informational: those lines land in `parsed`).
struct MrtParseStats {
  std::size_t lines = 0;
  std::size_t parsed = 0;
  std::size_t malformed = 0;
  std::size_t skipped_comments = 0;

  // Per-reason breakdown of `malformed`.
  std::size_t bad_field_count = 0;
  std::size_t bad_record_type = 0;
  std::size_t bad_timestamp = 0;
  std::size_t bad_ip = 0;
  std::size_t bad_asn = 0;
  std::size_t bad_prefix = 0;
  std::size_t bad_path = 0;
  std::size_t empty_path = 0;
  std::size_t day_out_of_range = 0;
  /// Lines whose AS path carried AS_SET syntax, flattened and PARSED
  /// (counted in `parsed`, not `malformed`); the sanitizer drops them.
  std::size_t as_set = 0;

  /// One retained offending line (1-based number within the input).
  struct Sample {
    std::size_t line_number = 0;
    ParseReason reason = ParseReason::kOk;
    std::string text;
  };
  /// At most this many samples are kept, in input order.
  static constexpr std::size_t kMaxSamples = 8;
  std::vector<Sample> samples;

  // Throughput accounting (filled by MrtStreamLoader; readers leave 0).
  std::uint64_t bytes = 0;
  double elapsed_seconds = 0.0;

  /// Counts a malformed line under `reason` and retains it as a sample
  /// while there is room.
  void record_malformed(ParseReason reason, std::size_t line_number,
                        std::string_view line);

  /// Folds a chunk's stats into this one (counters add; samples merge in
  /// call order with their line numbers shifted by `line_offset`).
  void merge(const MrtParseStats& other, std::size_t line_offset = 0);

  /// The per-reason counter value (kOk -> parsed, kAsSet -> as_set).
  [[nodiscard]] std::size_t reason_count(ParseReason reason) const noexcept;

  [[nodiscard]] double lines_per_second() const noexcept;
  [[nodiscard]] double mbytes_per_second() const noexcept;
};

namespace detail {

/// More fields than any bgpdump record type uses; split_fields reports
/// kMaxLineFields + 1 for anything longer (always a field-count error).
inline constexpr std::size_t kMaxLineFields = 10;

/// '|'-splits `line` into `out` (size >= kMaxLineFields) without
/// allocating. Returns the field count, or kMaxLineFields + 1 when the
/// line has more fields than that.
[[nodiscard]] std::size_t split_fields(std::string_view line,
                                       std::span<std::string_view> out) noexcept;

/// Whole-string unsigned decimal parse, inlined for the per-line ingest
/// hot loop. Accept/reject semantics match util::parse_int (from_chars):
/// digits only, whole string consumed, value must fit UInt. Leading
/// zeros don't count toward the digit budget, and near-limit digit
/// counts defer to from_chars so overflow handling stays exact.
template <typename UInt>
[[nodiscard]] inline bool parse_decimal(std::string_view s,
                                        UInt& out) noexcept {
  static_assert(std::is_unsigned_v<UInt> && sizeof(UInt) <= 8);
  constexpr int kSafeDigits = sizeof(UInt) == 8 ? 19 : 9;
  if (s.empty()) return false;
  std::uint64_t value = 0;
  int digits = 0;
  for (char c : s) {
    if (c < '0' || c > '9') return false;
    if (value != 0 || c != '0') {
      if (++digits > kSafeDigits) {
        auto slow = util::parse_int<UInt>(s);  // exact overflow semantics
        if (!slow) return false;
        out = *slow;
        return true;
      }
    }
    value = value * 10 + static_cast<std::uint64_t>(c - '0');
  }
  if (value > std::numeric_limits<UInt>::max()) return false;
  out = static_cast<UInt>(value);
  return true;
}

struct ParsedRoute {
  std::uint64_t timestamp = 0;
  VpId vp;
  Prefix prefix;
  AsPath path;  // untouched when want_path is false
  bool has_as_set = false;
};

/// Decodes the fields both record types share — [1] timestamp, [3]
/// peer-ip, [4] peer-asn, [5] prefix and, when `want_path`, [6] as-path —
/// returning kOk or the reason of the FIRST failing field (in field
/// order, so classification is deterministic).
[[nodiscard]] ParseReason parse_route_fields(
    std::span<const std::string_view> fields, bool want_path, ParsedRoute& out);

/// Maps a timestamp onto a day index, enforcing the sane-day horizon:
/// accepted timestamps lie in [base_time, base_time + max_day * 86400).
/// Anything earlier is clock skew (and would wrap a uint64_t subtraction
/// into a bogus huge day); anything later is a mixed-up archive.
[[nodiscard]] ParseReason day_from_timestamp(std::uint64_t timestamp,
                                             std::uint64_t base_time,
                                             int max_day, int& day_out) noexcept;

}  // namespace detail

}  // namespace georank::bgp
