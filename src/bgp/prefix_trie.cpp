#include "bgp/prefix_trie.hpp"

#include <algorithm>

namespace georank::bgp {

struct PrefixTrie::Node {
  std::unique_ptr<Node> child[2];
  bool terminal = false;  // a prefix ends exactly here
};

PrefixTrie::PrefixTrie() : root_(std::make_unique<Node>()) {}
PrefixTrie::~PrefixTrie() = default;
PrefixTrie::PrefixTrie(PrefixTrie&&) noexcept = default;
PrefixTrie& PrefixTrie::operator=(PrefixTrie&&) noexcept = default;

namespace {

/// Bit of `addr` selecting the child at `depth` (depth 0 = top bit).
inline int bit_at(std::uint32_t addr, int depth) noexcept {
  return (addr >> (31 - depth)) & 1u;
}

}  // namespace

bool PrefixTrie::insert(const Prefix& prefix) {
  Node* node = root_.get();
  for (int depth = 0; depth < prefix.length(); ++depth) {
    int b = bit_at(prefix.address(), depth);
    if (!node->child[b]) node->child[b] = std::make_unique<Node>();
    node = node->child[b].get();
  }
  if (node->terminal) return false;
  node->terminal = true;
  ++count_;
  return true;
}

bool PrefixTrie::contains(const Prefix& prefix) const {
  const Node* node = root_.get();
  for (int depth = 0; depth < prefix.length(); ++depth) {
    node = node->child[bit_at(prefix.address(), depth)].get();
    if (!node) return false;
  }
  return node->terminal;
}

std::optional<Prefix> PrefixTrie::most_specific_match(std::uint32_t ip) const {
  const Node* node = root_.get();
  std::optional<Prefix> best;
  if (node->terminal) best = Prefix{0, 0};
  for (int depth = 0; depth < 32; ++depth) {
    node = node->child[bit_at(ip, depth)].get();
    if (!node) break;
    if (node->terminal) best = Prefix{ip, static_cast<std::uint8_t>(depth + 1)};
  }
  return best;
}

namespace {

/// Addresses under `node` (at depth `depth`) covered by terminals in or
/// below it, counting each address once.
std::uint64_t covered_below(const PrefixTrie::Node* node, int depth) {
  if (!node) return 0;
  if (node->terminal) return std::uint64_t{1} << (32 - depth);
  return covered_below(node->child[0].get(), depth + 1) +
         covered_below(node->child[1].get(), depth + 1);
}

}  // namespace

std::uint64_t PrefixTrie::covered_by_more_specifics(const Prefix& prefix) const {
  const Node* node = root_.get();
  for (int depth = 0; depth < prefix.length(); ++depth) {
    node = node->child[bit_at(prefix.address(), depth)].get();
    if (!node) return 0;
  }
  // `node` is the node of `prefix` itself; strictly more specifics live in
  // its children.
  return covered_below(node->child[0].get(), prefix.length() + 1) +
         covered_below(node->child[1].get(), prefix.length() + 1);
}

namespace {

void collect_uncovered(const PrefixTrie::Node* node, const Prefix& here,
                       std::vector<Prefix>& out) {
  if (!node) {
    out.push_back(here);
    return;
  }
  if (node->terminal) return;  // a more specific prefix owns this subtree root
  if (!node->child[0] && !node->child[1]) {
    out.push_back(here);
    return;
  }
  if (here.length() == 32) {
    // Cannot descend further; nothing below a /32.
    out.push_back(here);
    return;
  }
  collect_uncovered(node->child[0].get(), here.left_child(), out);
  collect_uncovered(node->child[1].get(), here.right_child(), out);
}

void collect_all(const PrefixTrie::Node* node, const Prefix& here,
                 std::vector<Prefix>& out) {
  if (!node) return;
  if (node->terminal) out.push_back(here);
  if (here.length() == 32) return;
  collect_all(node->child[0].get(), here.left_child(), out);
  collect_all(node->child[1].get(), here.right_child(), out);
}

}  // namespace

std::vector<Prefix> PrefixTrie::uncovered_blocks(const Prefix& prefix) const {
  const Node* node = root_.get();
  for (int depth = 0; depth < prefix.length(); ++depth) {
    node = node->child[bit_at(prefix.address(), depth)].get();
    if (!node) return {prefix};  // nothing more specific at all
  }
  if (prefix.length() == 32) return {prefix};  // nothing can be more specific
  std::vector<Prefix> out;
  // Walk children of the prefix's node; terminals stop descent.
  if (!node->child[0] && !node->child[1]) return {prefix};
  collect_uncovered(node->child[0].get(), prefix.left_child(), out);
  collect_uncovered(node->child[1].get(), prefix.right_child(), out);
  return out;
}

std::vector<Prefix> PrefixTrie::all() const {
  std::vector<Prefix> out;
  out.reserve(count_);
  const Node* node = root_.get();
  if (node->terminal) out.push_back(Prefix{0, 0});
  collect_all(node->child[0].get(), Prefix{0, 0}.left_child(), out);
  collect_all(node->child[1].get(), Prefix{0, 0}.right_child(), out);
  return out;
}

std::vector<Prefix> aggregate_prefixes(std::vector<Prefix> prefixes) {
  if (prefixes.empty()) return {};
  // Sort by (address, length): a covering prefix precedes its specifics.
  std::sort(prefixes.begin(), prefixes.end());
  prefixes.erase(std::unique(prefixes.begin(), prefixes.end()), prefixes.end());

  // Drop prefixes contained in an earlier one.
  std::vector<Prefix> distinct;
  for (const Prefix& p : prefixes) {
    if (distinct.empty() || !distinct.back().contains(p)) distinct.push_back(p);
  }

  // Merge sibling pairs upward until a fixed point. Each pass is linear;
  // at most 32 passes (one per possible merge level).
  bool merged = true;
  while (merged) {
    merged = false;
    std::vector<Prefix> next;
    next.reserve(distinct.size());
    for (std::size_t i = 0; i < distinct.size(); ++i) {
      if (i + 1 < distinct.size() && distinct[i].length() > 0 &&
          distinct[i].length() == distinct[i + 1].length() &&
          distinct[i].parent() == distinct[i + 1].parent() &&
          distinct[i] != distinct[i + 1]) {
        next.push_back(distinct[i].parent());
        ++i;
        merged = true;
      } else {
        next.push_back(distinct[i]);
      }
    }
    distinct = std::move(next);
  }
  return distinct;
}

std::uint64_t union_address_count(std::vector<Prefix> prefixes) {
  if (prefixes.empty()) return 0;
  std::sort(prefixes.begin(), prefixes.end(),
            [](const Prefix& a, const Prefix& b) { return a.first() < b.first(); });
  std::uint64_t total = 0;
  std::uint64_t cur_first = prefixes[0].first();
  std::uint64_t cur_last = prefixes[0].last();
  for (std::size_t i = 1; i < prefixes.size(); ++i) {
    std::uint64_t f = prefixes[i].first();
    std::uint64_t l = prefixes[i].last();
    if (f <= cur_last + 1) {
      cur_last = std::max(cur_last, l);
    } else {
      total += cur_last - cur_first + 1;
      cur_first = f;
      cur_last = l;
    }
  }
  total += cur_last - cur_first + 1;
  return total;
}

}  // namespace georank::bgp
