// BGP UPDATE streams: the incremental counterpart of RIB snapshots.
//
// RouteViews/RIS publish both table dumps and update archives; IHR's
// hegemony pipeline consumes the latter. This module provides:
//
//   * UpdateMessage (announce/withdraw) with the bgpdump -m text format:
//       BGP4MP|<ts>|A|<peer-ip>|<peer-asn>|<prefix>|<as-path>|IGP
//       BGP4MP|<ts>|W|<peer-ip>|<peer-asn>|<prefix>
//   * RibState: a live per-(VP, prefix) best-path table that applies
//     updates and snapshots into the RibSnapshot the sanitizer consumes;
//   * diffing: turn consecutive snapshots into the minimal update stream
//     that replays the transition (used to synthesize update archives
//     from generated worlds, and tested as an exact inverse of replay).
#pragma once

#include <cstdint>
#include <iosfwd>
#include <stdexcept>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

#include "bgp/mrt_text.hpp"
#include "bgp/route.hpp"

namespace georank::bgp {

struct UpdateMessage {
  enum class Kind : std::uint8_t { kAnnounce, kWithdraw };

  Kind kind = Kind::kAnnounce;
  std::uint64_t timestamp = 0;
  VpId vp;
  Prefix prefix;
  AsPath path;  // empty for withdrawals

  friend bool operator==(const UpdateMessage&, const UpdateMessage&) = default;
};

class UpdateTextWriter {
 public:
  explicit UpdateTextWriter(std::ostream& os) : os_(&os) {}
  void write(const UpdateMessage& update);
  void write_all(const std::vector<UpdateMessage>& updates);

 private:
  std::ostream* os_;
};

class UpdateTextReader {
 public:
  UpdateTextReader() = default;
  explicit UpdateTextReader(ParseMode mode) : mode_(mode) {}

  /// False for comments/blank/malformed lines (counted per reason in
  /// stats()). Withdraws must be exactly 6 fields — a withdraw carrying
  /// a path is rejected as bad_field_count — and announces exactly 8.
  /// In strict mode malformed lines throw MrtParseError instead.
  [[nodiscard]] bool parse_line(std::string_view line, UpdateMessage& out);
  [[nodiscard]] std::vector<UpdateMessage> read_all(std::istream& is);
  [[nodiscard]] const MrtParseStats& stats() const noexcept { return stats_; }

 private:
  MrtParseStats stats_;
  ParseMode mode_ = ParseMode::kTolerant;
};

[[nodiscard]] std::string to_update_text(const std::vector<UpdateMessage>& updates);
[[nodiscard]] std::vector<UpdateMessage> from_update_text(
    std::string_view text, MrtParseStats* stats = nullptr);

/// Live best-path table; the thing a collector maintains per peer.
class RibState {
 public:
  /// Announce replaces, withdraw erases; withdrawals of unknown routes
  /// are counted but harmless (they happen constantly in real feeds).
  void apply(const UpdateMessage& update);
  void apply_all(const std::vector<UpdateMessage>& updates);

  [[nodiscard]] std::size_t route_count() const noexcept { return routes_.size(); }
  [[nodiscard]] std::size_t spurious_withdrawals() const noexcept {
    return spurious_withdrawals_;
  }

  /// Current table as a snapshot (entries in deterministic order).
  [[nodiscard]] RibSnapshot snapshot(int day) const;

  /// Replaces the table with `entries` (as produced by snapshot()) and
  /// the spurious-withdrawal count, discarding any current state. Used
  /// by live checkpoint recovery to restore an exact table image.
  void restore(const std::vector<RouteEntry>& entries, std::size_t spurious);

 private:
  struct Key {
    VpId vp;
    Prefix prefix;
    bool operator==(const Key&) const = default;
  };
  struct KeyHash {
    std::size_t operator()(const Key& k) const noexcept {
      std::size_t h = VpIdHash{}(k.vp);
      return h ^ (PrefixHash{}(k.prefix) + 0x9e3779b9u + (h << 6) + (h >> 2));
    }
  };
  std::unordered_map<Key, AsPath, KeyHash> routes_;
  std::size_t spurious_withdrawals_ = 0;
};

/// Minimal updates replaying `from` -> `to`: announces for new or changed
/// routes, withdrawals for vanished ones. Deterministic order.
[[nodiscard]] std::vector<UpdateMessage> diff_snapshots(const RibSnapshot& from,
                                                        const RibSnapshot& to,
                                                        std::uint64_t timestamp);

/// A whole collection as one update archive: day 0 dumped as announces,
/// later days as diffs. Replaying through RibState reproduces every
/// snapshot exactly (tested property), including quiet days, EXCEPT
/// trailing quiet days: a final day identical to its predecessor diffs to
/// zero updates, so the archive carries no evidence the day existed.
[[nodiscard]] std::vector<UpdateMessage> collection_to_updates(
    const RibCollection& collection, std::uint64_t base_time = 1617235200);

/// How replay_to_collection treats stream irregularities. Mirrors
/// MrtReaderOptions: same base_time epoch, same ParseMode semantics
/// (strict throws, tolerant counts and skips), same day horizon.
struct ReplayOptions {
  std::uint64_t base_time = 1617235200;
  ParseMode mode = ParseMode::kTolerant;
  /// Timestamps at or past base_time + max_day * 86400 (or before
  /// base_time) are day-out-of-range.
  int max_day = 366;
};

/// Diagnostics from one replay pass.
struct ReplayStats {
  std::size_t applied = 0;                   // updates applied to the table
  std::size_t skipped_out_of_order = 0;      // tolerant-mode ordering drops
  std::size_t skipped_day_out_of_range = 0;  // tolerant-mode horizon drops
  std::size_t spurious_withdrawals = 0;      // withdrawals of unknown routes
  std::size_t days_emitted = 0;              // snapshots in the result
  std::size_t quiet_days = 0;                // emitted days with no updates

  friend bool operator==(const ReplayStats&, const ReplayStats&) = default;
};

/// Thrown by strict-mode replay at the first update that violates the
/// stream contract; carries the offending update's index and timestamp.
class UpdateReplayError : public std::runtime_error {
 public:
  enum class Kind : std::uint8_t {
    kOutOfOrder,      // timestamp went backwards
    kDayOutOfRange,   // timestamp before base_time or past the horizon
    kBufferOverflow,  // live reorder buffer exceeded max_pending (shed policy)
  };

  UpdateReplayError(Kind kind, std::size_t index, std::uint64_t timestamp);

  [[nodiscard]] Kind kind() const noexcept { return kind_; }
  /// 0-based index of the offending update within the input vector.
  [[nodiscard]] std::size_t index() const noexcept { return index_; }
  [[nodiscard]] std::uint64_t timestamp() const noexcept { return timestamp_; }

 private:
  Kind kind_;
  std::size_t index_;
  std::uint64_t timestamp_;
};

[[nodiscard]] std::string_view to_string(UpdateReplayError::Kind kind) noexcept;

/// The inverse of collection_to_updates: replay an update archive into
/// daily snapshots. Updates must be timestamp-ordered (non-decreasing);
/// the day index is (ts - base_time) / 86400, a snapshot is emitted for
/// EVERY day from the first to the last day seen — quiet days repeat the
/// previous table — and the contract violations (out-of-order timestamp,
/// pre-base_time or past-horizon timestamp) follow options.mode: strict
/// throws UpdateReplayError, tolerant counts the update in `stats` and
/// skips it.
[[nodiscard]] RibCollection replay_to_collection(
    const std::vector<UpdateMessage>& updates, const ReplayOptions& options,
    ReplayStats* stats = nullptr);

/// Tolerant replay with default options (compatibility overload).
[[nodiscard]] RibCollection replay_to_collection(
    const std::vector<UpdateMessage>& updates,
    std::uint64_t base_time = 1617235200);

}  // namespace georank::bgp
