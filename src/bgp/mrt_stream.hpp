// Streaming, fault-tolerant MRT text ingest — the production front door
// for bgpdump-style RIB dumps (248M-line collector feeds in the paper's
// setting).
//
// MrtStreamLoader reads the input in bounded-memory, newline-aligned
// chunks, parses a batch of chunks in parallel on util::parallel_for,
// and merges the results back in INPUT ORDER, so the resulting
// RibCollection is bit-identical to MrtTextReader::read_collection on
// the same input for any chunk size or thread count. Memory is bounded
// by chunks_per_batch * chunk_bytes of text (plus the parsed output),
// never the whole dump.
//
// Modes (bgp/line_parse.hpp):
//   * tolerant — malformed lines are counted per reason and skipped;
//     stats() carries the per-reason counters, first-N offending lines,
//     and bytes/lines-per-second throughput.
//   * strict — the loader throws MrtParseError at the FIRST malformed
//     line (globally, in input order — deterministic regardless of the
//     parallel schedule) with its 1-based line number and reason.
#pragma once

#include <iosfwd>
#include <string_view>

#include "bgp/mrt_text.hpp"

namespace georank::bgp {

struct MrtStreamOptions {
  /// Day 0 starts here (see MrtReaderOptions::base_time).
  std::uint64_t base_time = 1617235200;
  ParseMode mode = ParseMode::kTolerant;
  /// Sane day horizon (see MrtReaderOptions::max_day).
  int max_day = 366;
  /// Target chunk size; chunks are extended to the next newline (a single
  /// line longer than this grows its chunk, so pathological one-line
  /// inputs still parse).
  std::size_t chunk_bytes = std::size_t{1} << 20;
  /// Chunks parsed per parallel batch; 0 -> 4x the worker count.
  std::size_t chunks_per_batch = 0;
  /// Worker threads; 0 -> util::default_thread_count() (GEORANK_THREADS).
  std::size_t threads = 0;
};

class MrtStreamLoader {
 public:
  explicit MrtStreamLoader(MrtStreamOptions options = {})
      : options_(options) {}

  /// Parses the whole stream into a day-grouped RibCollection.
  /// Bit-identical to MrtTextReader::read_collection on the same input.
  [[nodiscard]] RibCollection load(std::istream& is);

  /// Same, over an in-memory buffer (chunked without copying the text).
  [[nodiscard]] RibCollection load_text(std::string_view text);

  /// Diagnostics for the most recent load, including throughput.
  [[nodiscard]] const MrtParseStats& stats() const noexcept { return stats_; }

 private:
  MrtStreamOptions options_;
  MrtParseStats stats_;
};

}  // namespace georank::bgp
