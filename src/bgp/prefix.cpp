#include "bgp/prefix.hpp"

#include <charconv>
#include <cstdio>

namespace georank::bgp {

std::string format_ipv4(std::uint32_t ip) {
  char buf[16];
  std::snprintf(buf, sizeof buf, "%u.%u.%u.%u", (ip >> 24) & 0xff, (ip >> 16) & 0xff,
                (ip >> 8) & 0xff, ip & 0xff);
  return buf;
}

std::optional<std::uint32_t> parse_ipv4(std::string_view text) noexcept {
  // Single-pass scan instead of four from_chars calls: this sits on the
  // per-line MRT ingest hot path. Semantics match from_chars-per-octet:
  // decimal digits only, each octet <= 255, whole string consumed.
  std::uint32_t ip = 0;
  const char* p = text.data();
  const char* end = text.data() + text.size();
  for (int octet = 0; octet < 4; ++octet) {
    if (p == end || *p < '0' || *p > '9') return std::nullopt;
    unsigned value = 0;
    do {
      value = value * 10 + static_cast<unsigned>(*p - '0');
      if (value > 255) return std::nullopt;
      ++p;
    } while (p != end && *p >= '0' && *p <= '9');
    ip = (ip << 8) | value;
    if (octet < 3) {
      if (p == end || *p != '.') return std::nullopt;
      ++p;
    }
  }
  if (p != end) return std::nullopt;
  return ip;
}

std::string Prefix::to_string() const {
  return format_ipv4(addr_) + "/" + std::to_string(len_);
}

std::optional<Prefix> Prefix::parse(std::string_view text) noexcept {
  std::size_t slash = text.find('/');
  if (slash == std::string_view::npos) return std::nullopt;
  auto ip = parse_ipv4(text.substr(0, slash));
  if (!ip) return std::nullopt;
  unsigned len = 0;
  std::string_view len_text = text.substr(slash + 1);
  const char* first = len_text.data();
  const char* last = len_text.data() + len_text.size();
  auto [ptr, ec] = std::from_chars(first, last, len);
  if (ec != std::errc{} || ptr != last || len > 32) return std::nullopt;
  return Prefix{*ip, static_cast<std::uint8_t>(len)};
}

}  // namespace georank::bgp
