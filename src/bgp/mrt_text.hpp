// Text serialization of RIB snapshots in the one-line-per-entry format
// produced by `bgpdump -m` on MRT TABLE_DUMP2 files:
//
//   TABLE_DUMP2|<unixtime>|B|<peer-ip>|<peer-asn>|<prefix>|<as-path>|IGP
//
// The real pipeline ingests libbgpdump output; ours round-trips through the
// same shape so the parsing/plumbing layer is exercised identically.
// The reader defaults to tolerant mode (malformed lines are counted per
// reason, not fatal — see bgp/line_parse.hpp); strict mode throws
// MrtParseError at the first malformed line. For parallel bounded-memory
// ingest of whole streams, see bgp::MrtStreamLoader (bgp/mrt_stream.hpp).
#pragma once

#include <cstddef>
#include <iosfwd>
#include <string>
#include <string_view>

#include "bgp/line_parse.hpp"
#include "bgp/route.hpp"

namespace georank::bgp {

struct MrtReaderOptions {
  /// Day 0 starts here; each day d covers [base + d*86400, base + (d+1)*86400).
  std::uint64_t base_time = 1617235200;
  ParseMode mode = ParseMode::kTolerant;
  /// Sane day horizon: timestamps at or past base_time + max_day*86400
  /// (or before base_time) are rejected as day_out_of_range. Real
  /// collections span days, not years; anything outside is clock skew,
  /// a mixed-up archive, or corruption.
  int max_day = 366;
};

class MrtTextWriter {
 public:
  /// `base_time` stamps entries; each day d uses base_time + d*86400.
  explicit MrtTextWriter(std::ostream& os, std::uint64_t base_time = 1617235200)
      : os_(&os), base_time_(base_time) {}

  void write_entry(const RouteEntry& entry, int day);
  void write_snapshot(const RibSnapshot& snapshot);
  void write_collection(const RibCollection& collection);

 private:
  std::ostream* os_;
  std::uint64_t base_time_;
};

class MrtTextReader {
 public:
  /// Parses one bgpdump-style line into `out`; returns false (and leaves
  /// `out` untouched) for comments/blank/malformed lines. `day_out`
  /// receives the day index recovered from the timestamp. In strict mode
  /// malformed lines throw MrtParseError instead of returning false.
  [[nodiscard]] bool parse_line(std::string_view line, RouteEntry& out, int& day_out);

  /// Reads a whole stream into a RibCollection, grouping by day.
  [[nodiscard]] RibCollection read_collection(std::istream& is);

  [[nodiscard]] const MrtParseStats& stats() const noexcept { return stats_; }

  explicit MrtTextReader(std::uint64_t base_time = 1617235200) {
    options_.base_time = base_time;
  }
  explicit MrtTextReader(const MrtReaderOptions& options) : options_(options) {}

 private:
  MrtParseStats stats_;
  MrtReaderOptions options_;
};

/// Round-trip helpers used by tests and the pipeline.
[[nodiscard]] std::string to_mrt_text(const RibCollection& collection);
[[nodiscard]] RibCollection from_mrt_text(std::string_view text, MrtParseStats* stats = nullptr);

}  // namespace georank::bgp
