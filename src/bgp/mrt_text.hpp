// Text serialization of RIB snapshots in the one-line-per-entry format
// produced by `bgpdump -m` on MRT TABLE_DUMP2 files:
//
//   TABLE_DUMP2|<unixtime>|B|<peer-ip>|<peer-asn>|<prefix>|<as-path>|IGP
//
// The real pipeline ingests libbgpdump output; ours round-trips through the
// same shape so the parsing/plumbing layer is exercised identically.
// The reader is tolerant: malformed lines are counted, not fatal.
#pragma once

#include <cstddef>
#include <iosfwd>
#include <string>
#include <string_view>

#include "bgp/route.hpp"

namespace georank::bgp {

struct MrtParseStats {
  std::size_t lines = 0;
  std::size_t parsed = 0;
  std::size_t malformed = 0;
  std::size_t skipped_comments = 0;
};

class MrtTextWriter {
 public:
  /// `base_time` stamps entries; each day d uses base_time + d*86400.
  explicit MrtTextWriter(std::ostream& os, std::uint64_t base_time = 1617235200)
      : os_(&os), base_time_(base_time) {}

  void write_entry(const RouteEntry& entry, int day);
  void write_snapshot(const RibSnapshot& snapshot);
  void write_collection(const RibCollection& collection);

 private:
  std::ostream* os_;
  std::uint64_t base_time_;
};

class MrtTextReader {
 public:
  /// Parses one bgpdump-style line into `out`; returns false (and leaves
  /// `out` untouched) for comments/blank/malformed lines. `day_out`
  /// receives the day index recovered from the timestamp.
  [[nodiscard]] bool parse_line(std::string_view line, RouteEntry& out, int& day_out);

  /// Reads a whole stream into a RibCollection, grouping by day.
  [[nodiscard]] RibCollection read_collection(std::istream& is);

  [[nodiscard]] const MrtParseStats& stats() const noexcept { return stats_; }

  explicit MrtTextReader(std::uint64_t base_time = 1617235200) : base_time_(base_time) {}

 private:
  MrtParseStats stats_;
  std::uint64_t base_time_;
};

/// Round-trip helpers used by tests and the pipeline.
[[nodiscard]] std::string to_mrt_text(const RibCollection& collection);
[[nodiscard]] RibCollection from_mrt_text(std::string_view text, MrtParseStats* stats = nullptr);

}  // namespace georank::bgp
