#include "bgp/fault_inject.hpp"

#include <algorithm>

#include "util/rng.hpp"

namespace georank::bgp {

std::string_view to_string(FaultKind kind) noexcept {
  switch (kind) {
    case FaultKind::kTruncateFields: return "truncate-fields";
    case FaultKind::kFlipDelimiter: return "flip-delimiter";
    case FaultKind::kBadTimestamp: return "bad-timestamp";
    case FaultKind::kEarlyTimestamp: return "early-timestamp";
    case FaultKind::kOversizeOctet: return "oversize-octet";
    case FaultKind::kOversizeAsn: return "oversize-asn";
    case FaultKind::kBadPrefix: return "bad-prefix";
    case FaultKind::kBadPath: return "bad-path";
    case FaultKind::kEmptyPath: return "empty-path";
    case FaultKind::kAsSet: return "as-set";
  }
  return "?";
}

ParseReason expected_reason(FaultKind kind) noexcept {
  switch (kind) {
    case FaultKind::kTruncateFields: return ParseReason::kBadFieldCount;
    case FaultKind::kFlipDelimiter: return ParseReason::kBadFieldCount;
    case FaultKind::kBadTimestamp: return ParseReason::kBadTimestamp;
    case FaultKind::kEarlyTimestamp: return ParseReason::kDayOutOfRange;
    case FaultKind::kOversizeOctet: return ParseReason::kBadIp;
    case FaultKind::kOversizeAsn: return ParseReason::kBadAsn;
    case FaultKind::kBadPrefix: return ParseReason::kBadPrefix;
    case FaultKind::kBadPath: return ParseReason::kBadPath;
    case FaultKind::kEmptyPath: return ParseReason::kEmptyPath;
    case FaultKind::kAsSet: return ParseReason::kAsSet;
  }
  return ParseReason::kOk;
}

bool fault_is_malformed(FaultKind kind) noexcept {
  return kind != FaultKind::kAsSet;
}

std::size_t FaultCorpus::count_of(FaultKind kind) const noexcept {
  std::size_t n = 0;
  for (const InjectedFault& f : faults) n += f.kind == kind ? 1 : 0;
  return n;
}

std::size_t FaultCorpus::expected_reason_count(ParseReason reason) const noexcept {
  std::size_t n = 0;
  for (const InjectedFault& f : faults) {
    n += expected_reason(f.kind) == reason ? 1 : 0;
  }
  return n;
}

std::size_t FaultCorpus::malformed_lines() const noexcept {
  std::size_t n = 0;
  for (const InjectedFault& f : faults) n += fault_is_malformed(f.kind) ? 1 : 0;
  return n;
}

const InjectedFault* FaultCorpus::first_malformed() const noexcept {
  for (const InjectedFault& f : faults) {
    if (fault_is_malformed(f.kind)) return &f;
  }
  return nullptr;
}

std::string make_clean_mrt_text(std::size_t lines, std::uint64_t base_time,
                                int days, std::uint64_t seed) {
  if (days < 1) days = 1;
  util::Pcg32 rng{seed};
  std::string out;
  out.reserve(lines * 72);
  for (std::size_t i = 0; i < lines; ++i) {
    int day = static_cast<int>(i % static_cast<std::size_t>(days));
    std::uint64_t ts = base_time +
                       static_cast<std::uint64_t>(day) * 86400 +
                       rng.below(86400);
    std::uint32_t peer = rng.below(40);
    std::uint32_t origin = 64500 + rng.below(400);
    std::uint32_t net = 1 + rng.below(223);
    std::uint32_t sub = rng.below(256);
    out += "TABLE_DUMP2|";
    out += std::to_string(ts);
    out += "|B|10.0.";
    out += std::to_string(peer);
    out += ".1|";
    out += std::to_string(64000 + peer);
    out += '|';
    out += std::to_string(net);
    out += '.';
    out += std::to_string(sub);
    out += ".0.0/16|";
    out += std::to_string(64000 + peer);
    out += " 174 ";
    out += std::to_string(origin);
    out += "|IGP\n";
  }
  return out;
}

namespace {

/// Applies one fault to a '|'-joined field vector, falling back to
/// kTruncateFields when the line lacks the targeted field. Returns the
/// kind actually applied.
FaultKind corrupt(std::vector<std::string>& fields, FaultKind kind,
                  std::uint64_t base_time) {
  auto needs_field = [&](std::size_t index) { return fields.size() > index; };
  switch (kind) {
    case FaultKind::kFlipDelimiter:
      if (fields.size() >= 2) {
        fields[0] += ' ' + fields[1];
        fields.erase(fields.begin() + 1);
        return kind;
      }
      break;
    case FaultKind::kBadTimestamp:
      if (needs_field(1)) {
        fields[1] = "not-a-time";
        return kind;
      }
      break;
    case FaultKind::kEarlyTimestamp:
      if (needs_field(1) && base_time > 0) {
        fields[1] = std::to_string(base_time - 1);
        return kind;
      }
      break;
    case FaultKind::kOversizeOctet:
      if (needs_field(3)) {
        fields[3] = "10.999.0.1";
        return kind;
      }
      break;
    case FaultKind::kOversizeAsn:
      if (needs_field(4)) {
        fields[4] = "4294967296";  // 2^32: overflows a 32-bit ASN
        return kind;
      }
      break;
    case FaultKind::kBadPrefix:
      if (needs_field(5)) {
        fields[5] = "10.0.0.0/40";
        return kind;
      }
      break;
    case FaultKind::kBadPath:
      if (needs_field(6)) {
        fields[6] = "64512 sixfour 64513";
        return kind;
      }
      break;
    case FaultKind::kEmptyPath:
      if (needs_field(6)) {
        fields[6].clear();
        return kind;
      }
      break;
    case FaultKind::kAsSet:
      if (needs_field(6)) {
        fields[6] += " {64999,65000}";
        return kind;
      }
      break;
    case FaultKind::kTruncateFields:
      break;
  }
  // Fallback (and the kTruncateFields case itself).
  if (fields.size() > 4) fields.resize(4);
  return FaultKind::kTruncateFields;
}

}  // namespace

std::string_view to_string(UpdateFaultKind kind) noexcept {
  switch (kind) {
    case UpdateFaultKind::kTruncatedWithdraw: return "truncated-withdraw";
    case UpdateFaultKind::kPathlessAnnounce: return "pathless-announce";
    case UpdateFaultKind::kNonMonotonicBurst: return "non-monotonic-burst";
  }
  return "?";
}

ParseReason expected_parse_reason(UpdateFaultKind kind) noexcept {
  switch (kind) {
    case UpdateFaultKind::kTruncatedWithdraw: return ParseReason::kBadFieldCount;
    case UpdateFaultKind::kPathlessAnnounce: return ParseReason::kBadFieldCount;
    case UpdateFaultKind::kNonMonotonicBurst: return ParseReason::kOk;
  }
  return ParseReason::kOk;
}

std::size_t UpdateFaultCorpus::count_of(UpdateFaultKind kind) const noexcept {
  std::size_t n = 0;
  for (const InjectedUpdateFault& f : faults) n += f.kind == kind ? 1 : 0;
  return n;
}

std::size_t UpdateFaultCorpus::expected_parse_reason_count(
    ParseReason reason) const noexcept {
  std::size_t n = 0;
  for (const InjectedUpdateFault& f : faults) {
    n += expected_parse_reason(f.kind) == reason ? 1 : 0;
  }
  return n;
}

std::size_t UpdateFaultCorpus::malformed_lines() const noexcept {
  std::size_t n = 0;
  for (const InjectedUpdateFault& f : faults) {
    n += f.kind != UpdateFaultKind::kNonMonotonicBurst ? 1 : 0;
  }
  return n;
}

std::size_t UpdateFaultCorpus::expected_out_of_order() const noexcept {
  return count_of(UpdateFaultKind::kNonMonotonicBurst);
}

std::string make_clean_update_text(std::size_t lines, std::uint64_t base_time,
                                   int days, std::uint64_t seed) {
  if (days < 1) days = 1;
  util::Pcg32 rng{seed};
  std::string out;
  out.reserve(lines * 64);

  struct Route {
    std::uint32_t peer;
    std::string prefix;
  };
  std::vector<Route> announced;

  // Non-decreasing by construction: timestamps walk the span linearly.
  const std::uint64_t start = base_time + 86400;
  const std::uint64_t span = static_cast<std::uint64_t>(days) * 86400 - 1;
  for (std::size_t i = 0; i < lines; ++i) {
    std::uint64_t ts =
        lines > 1 ? start + (static_cast<std::uint64_t>(i) * span) / (lines - 1)
                  : start;
    const bool withdraw = !announced.empty() && rng.chance(0.25);
    std::uint32_t peer;
    std::string prefix;
    if (withdraw) {
      std::size_t pick = rng.below(static_cast<std::uint32_t>(announced.size()));
      peer = announced[pick].peer;
      prefix = std::move(announced[pick].prefix);
      announced.erase(announced.begin() + static_cast<std::ptrdiff_t>(pick));
    } else {
      peer = rng.below(40);
      prefix = std::to_string(1 + rng.below(223)) + '.' +
               std::to_string(rng.below(256)) + ".0.0/16";
    }
    out += "BGP4MP|";
    out += std::to_string(ts);
    out += withdraw ? "|W|10.0." : "|A|10.0.";
    out += std::to_string(peer);
    out += ".1|";
    out += std::to_string(64000 + peer);
    out += '|';
    out += prefix;
    if (!withdraw) {
      out += '|';
      out += std::to_string(64000 + peer);
      out += " 174 ";
      out += std::to_string(64500 + rng.below(400));
      out += "|IGP";
      announced.push_back(Route{peer, std::move(prefix)});
    }
    out += '\n';
  }
  return out;
}

FaultCorpus inject_faults(std::string_view clean_text, const FaultSpec& spec) {
  std::vector<FaultKind> kinds = spec.kinds;
  if (kinds.empty()) {
    for (std::size_t i = 0; i < kFaultKindCount; ++i) {
      kinds.push_back(static_cast<FaultKind>(i));
    }
  }

  util::Pcg32 rng{spec.seed};
  FaultCorpus out;
  out.text.reserve(clean_text.size() + clean_text.size() / 16);

  std::size_t pos = 0;
  std::vector<std::string> fields;
  while (pos < clean_text.size()) {
    std::size_t newline = clean_text.find('\n', pos);
    std::size_t end = newline == std::string_view::npos ? clean_text.size() : newline;
    std::string_view line = clean_text.substr(pos, end - pos);
    pos = newline == std::string_view::npos ? clean_text.size() : newline + 1;
    ++out.lines;

    if (!rng.chance(spec.fraction)) {
      out.text += line;
      out.text += '\n';
      continue;
    }

    fields.clear();
    std::size_t start = 0;
    while (true) {
      std::size_t bar = line.find('|', start);
      if (bar == std::string_view::npos) {
        fields.emplace_back(line.substr(start));
        break;
      }
      fields.emplace_back(line.substr(start, bar - start));
      start = bar + 1;
    }

    FaultKind requested =
        kinds[rng.below(static_cast<std::uint32_t>(kinds.size()))];
    FaultKind applied = corrupt(fields, requested, spec.base_time);
    out.faults.push_back(InjectedFault{out.lines, applied});

    for (std::size_t i = 0; i < fields.size(); ++i) {
      if (i > 0) out.text += '|';
      out.text += fields[i];
    }
    out.text += '\n';
  }
  return out;
}

namespace {

/// Applies one update fault; arity faults adapt to the line's own A/W
/// marker so the log always records a fault that actually landed.
UpdateFaultKind corrupt_update(std::vector<std::string>& fields,
                               UpdateFaultKind kind, std::uint64_t base_time) {
  if (kind == UpdateFaultKind::kNonMonotonicBurst && fields.size() > 1) {
    fields[1] = std::to_string(base_time);
    return kind;
  }
  const bool is_withdraw = fields.size() > 2 && fields[2] == "W";
  if (is_withdraw) {
    if (fields.size() > 4) fields.resize(4);
    return UpdateFaultKind::kTruncatedWithdraw;
  }
  if (fields.size() > 6) fields.resize(6);
  return UpdateFaultKind::kPathlessAnnounce;
}

}  // namespace

UpdateFaultCorpus inject_update_faults(std::string_view clean_text,
                                       const UpdateFaultSpec& spec) {
  std::vector<UpdateFaultKind> kinds = spec.kinds;
  if (kinds.empty()) {
    for (std::size_t i = 0; i < kUpdateFaultKindCount; ++i) {
      kinds.push_back(static_cast<UpdateFaultKind>(i));
    }
  }

  util::Pcg32 rng{spec.seed};
  UpdateFaultCorpus out;
  out.text.reserve(clean_text.size() + clean_text.size() / 16);

  std::size_t pos = 0;
  std::vector<std::string> fields;
  while (pos < clean_text.size()) {
    std::size_t newline = clean_text.find('\n', pos);
    std::size_t end = newline == std::string_view::npos ? clean_text.size() : newline;
    std::string_view line = clean_text.substr(pos, end - pos);
    pos = newline == std::string_view::npos ? clean_text.size() : newline + 1;
    ++out.lines;

    // The first line stays clean: it establishes the replay watermark, so
    // every rewound timestamp after it is unambiguously out-of-order.
    if (out.lines == 1 || !rng.chance(spec.fraction)) {
      out.text += line;
      out.text += '\n';
      continue;
    }

    fields.clear();
    std::size_t start = 0;
    while (true) {
      std::size_t bar = line.find('|', start);
      if (bar == std::string_view::npos) {
        fields.emplace_back(line.substr(start));
        break;
      }
      fields.emplace_back(line.substr(start, bar - start));
      start = bar + 1;
    }

    UpdateFaultKind requested =
        kinds[rng.below(static_cast<std::uint32_t>(kinds.size()))];
    UpdateFaultKind applied = corrupt_update(fields, requested, spec.base_time);
    out.faults.push_back(InjectedUpdateFault{out.lines, applied});

    for (std::size_t i = 0; i < fields.size(); ++i) {
      if (i > 0) out.text += '|';
      out.text += fields[i];
    }
    out.text += '\n';
  }
  return out;
}

std::string_view to_string(ProcessFaultKind kind) noexcept {
  switch (kind) {
    case ProcessFaultKind::kAfterJournalAppend: return "after-journal-append";
    case ProcessFaultKind::kAfterPush: return "after-push";
    case ProcessFaultKind::kAfterCheckpoint: return "after-checkpoint";
  }
  return "?";
}

std::vector<ProcessFaultPoint> make_crash_schedule(
    const ProcessFaultSpec& spec) {
  std::vector<ProcessFaultKind> kinds = spec.kinds;
  if (kinds.empty()) {
    kinds = {ProcessFaultKind::kAfterJournalAppend,
             ProcessFaultKind::kAfterPush, ProcessFaultKind::kAfterCheckpoint};
  }
  util::Pcg32 rng{spec.seed};
  const std::size_t points = std::min(spec.points, spec.stream_length);
  std::vector<std::size_t> indices =
      util::sample_indices(spec.stream_length, points, rng);
  std::sort(indices.begin(), indices.end());

  std::vector<ProcessFaultPoint> out;
  out.reserve(indices.size());
  for (std::size_t index : indices) {
    out.push_back(ProcessFaultPoint{
        index, kinds[rng.below(static_cast<std::uint32_t>(kinds.size()))]});
  }
  return out;
}

}  // namespace georank::bgp
