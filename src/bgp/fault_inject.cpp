#include "bgp/fault_inject.hpp"

#include "util/rng.hpp"

namespace georank::bgp {

std::string_view to_string(FaultKind kind) noexcept {
  switch (kind) {
    case FaultKind::kTruncateFields: return "truncate-fields";
    case FaultKind::kFlipDelimiter: return "flip-delimiter";
    case FaultKind::kBadTimestamp: return "bad-timestamp";
    case FaultKind::kEarlyTimestamp: return "early-timestamp";
    case FaultKind::kOversizeOctet: return "oversize-octet";
    case FaultKind::kOversizeAsn: return "oversize-asn";
    case FaultKind::kBadPrefix: return "bad-prefix";
    case FaultKind::kBadPath: return "bad-path";
    case FaultKind::kEmptyPath: return "empty-path";
    case FaultKind::kAsSet: return "as-set";
  }
  return "?";
}

ParseReason expected_reason(FaultKind kind) noexcept {
  switch (kind) {
    case FaultKind::kTruncateFields: return ParseReason::kBadFieldCount;
    case FaultKind::kFlipDelimiter: return ParseReason::kBadFieldCount;
    case FaultKind::kBadTimestamp: return ParseReason::kBadTimestamp;
    case FaultKind::kEarlyTimestamp: return ParseReason::kDayOutOfRange;
    case FaultKind::kOversizeOctet: return ParseReason::kBadIp;
    case FaultKind::kOversizeAsn: return ParseReason::kBadAsn;
    case FaultKind::kBadPrefix: return ParseReason::kBadPrefix;
    case FaultKind::kBadPath: return ParseReason::kBadPath;
    case FaultKind::kEmptyPath: return ParseReason::kEmptyPath;
    case FaultKind::kAsSet: return ParseReason::kAsSet;
  }
  return ParseReason::kOk;
}

bool fault_is_malformed(FaultKind kind) noexcept {
  return kind != FaultKind::kAsSet;
}

std::size_t FaultCorpus::count_of(FaultKind kind) const noexcept {
  std::size_t n = 0;
  for (const InjectedFault& f : faults) n += f.kind == kind ? 1 : 0;
  return n;
}

std::size_t FaultCorpus::expected_reason_count(ParseReason reason) const noexcept {
  std::size_t n = 0;
  for (const InjectedFault& f : faults) {
    n += expected_reason(f.kind) == reason ? 1 : 0;
  }
  return n;
}

std::size_t FaultCorpus::malformed_lines() const noexcept {
  std::size_t n = 0;
  for (const InjectedFault& f : faults) n += fault_is_malformed(f.kind) ? 1 : 0;
  return n;
}

const InjectedFault* FaultCorpus::first_malformed() const noexcept {
  for (const InjectedFault& f : faults) {
    if (fault_is_malformed(f.kind)) return &f;
  }
  return nullptr;
}

std::string make_clean_mrt_text(std::size_t lines, std::uint64_t base_time,
                                int days, std::uint64_t seed) {
  if (days < 1) days = 1;
  util::Pcg32 rng{seed};
  std::string out;
  out.reserve(lines * 72);
  for (std::size_t i = 0; i < lines; ++i) {
    int day = static_cast<int>(i % static_cast<std::size_t>(days));
    std::uint64_t ts = base_time +
                       static_cast<std::uint64_t>(day) * 86400 +
                       rng.below(86400);
    std::uint32_t peer = rng.below(40);
    std::uint32_t origin = 64500 + rng.below(400);
    std::uint32_t net = 1 + rng.below(223);
    std::uint32_t sub = rng.below(256);
    out += "TABLE_DUMP2|";
    out += std::to_string(ts);
    out += "|B|10.0.";
    out += std::to_string(peer);
    out += ".1|";
    out += std::to_string(64000 + peer);
    out += '|';
    out += std::to_string(net);
    out += '.';
    out += std::to_string(sub);
    out += ".0.0/16|";
    out += std::to_string(64000 + peer);
    out += " 174 ";
    out += std::to_string(origin);
    out += "|IGP\n";
  }
  return out;
}

namespace {

/// Applies one fault to a '|'-joined field vector, falling back to
/// kTruncateFields when the line lacks the targeted field. Returns the
/// kind actually applied.
FaultKind corrupt(std::vector<std::string>& fields, FaultKind kind,
                  std::uint64_t base_time) {
  auto needs_field = [&](std::size_t index) { return fields.size() > index; };
  switch (kind) {
    case FaultKind::kFlipDelimiter:
      if (fields.size() >= 2) {
        fields[0] += ' ' + fields[1];
        fields.erase(fields.begin() + 1);
        return kind;
      }
      break;
    case FaultKind::kBadTimestamp:
      if (needs_field(1)) {
        fields[1] = "not-a-time";
        return kind;
      }
      break;
    case FaultKind::kEarlyTimestamp:
      if (needs_field(1) && base_time > 0) {
        fields[1] = std::to_string(base_time - 1);
        return kind;
      }
      break;
    case FaultKind::kOversizeOctet:
      if (needs_field(3)) {
        fields[3] = "10.999.0.1";
        return kind;
      }
      break;
    case FaultKind::kOversizeAsn:
      if (needs_field(4)) {
        fields[4] = "4294967296";  // 2^32: overflows a 32-bit ASN
        return kind;
      }
      break;
    case FaultKind::kBadPrefix:
      if (needs_field(5)) {
        fields[5] = "10.0.0.0/40";
        return kind;
      }
      break;
    case FaultKind::kBadPath:
      if (needs_field(6)) {
        fields[6] = "64512 sixfour 64513";
        return kind;
      }
      break;
    case FaultKind::kEmptyPath:
      if (needs_field(6)) {
        fields[6].clear();
        return kind;
      }
      break;
    case FaultKind::kAsSet:
      if (needs_field(6)) {
        fields[6] += " {64999,65000}";
        return kind;
      }
      break;
    case FaultKind::kTruncateFields:
      break;
  }
  // Fallback (and the kTruncateFields case itself).
  if (fields.size() > 4) fields.resize(4);
  return FaultKind::kTruncateFields;
}

}  // namespace

FaultCorpus inject_faults(std::string_view clean_text, const FaultSpec& spec) {
  std::vector<FaultKind> kinds = spec.kinds;
  if (kinds.empty()) {
    for (std::size_t i = 0; i < kFaultKindCount; ++i) {
      kinds.push_back(static_cast<FaultKind>(i));
    }
  }

  util::Pcg32 rng{spec.seed};
  FaultCorpus out;
  out.text.reserve(clean_text.size() + clean_text.size() / 16);

  std::size_t pos = 0;
  std::vector<std::string> fields;
  while (pos < clean_text.size()) {
    std::size_t newline = clean_text.find('\n', pos);
    std::size_t end = newline == std::string_view::npos ? clean_text.size() : newline;
    std::string_view line = clean_text.substr(pos, end - pos);
    pos = newline == std::string_view::npos ? clean_text.size() : newline + 1;
    ++out.lines;

    if (!rng.chance(spec.fraction)) {
      out.text += line;
      out.text += '\n';
      continue;
    }

    fields.clear();
    std::size_t start = 0;
    while (true) {
      std::size_t bar = line.find('|', start);
      if (bar == std::string_view::npos) {
        fields.emplace_back(line.substr(start));
        break;
      }
      fields.emplace_back(line.substr(start, bar - start));
      start = bar + 1;
    }

    FaultKind requested =
        kinds[rng.below(static_cast<std::uint32_t>(kinds.size()))];
    FaultKind applied = corrupt(fields, requested, spec.base_time);
    out.faults.push_back(InjectedFault{out.lines, applied});

    for (std::size_t i = 0; i < fields.size(); ++i) {
      if (i > 0) out.text += '|';
      out.text += fields[i];
    }
    out.text += '\n';
  }
  return out;
}

}  // namespace georank::bgp
