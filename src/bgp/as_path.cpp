#include "bgp/as_path.hpp"

#include <algorithm>
#include <unordered_set>

#include "bgp/line_parse.hpp"
#include "util/strings.hpp"

namespace georank::bgp {

bool AsPath::contains(Asn asn) const noexcept {
  return std::find(hops_.begin(), hops_.end(), asn) != hops_.end();
}

AsPath AsPath::without_adjacent_duplicates() const {
  std::vector<Asn> out;
  out.reserve(hops_.size());
  for (Asn a : hops_) {
    if (out.empty() || out.back() != a) out.push_back(a);
  }
  return derived(std::move(out));
}

bool AsPath::has_nonadjacent_duplicate() const {
  // Check on the prepend-collapsed path so "A A B" is not a loop but
  // "A B A" is.
  AsPath collapsed = without_adjacent_duplicates();
  std::unordered_set<Asn> seen;
  for (Asn a : collapsed.hops_) {
    if (!seen.insert(a).second) return true;
  }
  return false;
}

AsPath AsPath::without_ases(std::span<const Asn> remove) const {
  std::vector<Asn> out;
  out.reserve(hops_.size());
  for (Asn a : hops_) {
    if (std::find(remove.begin(), remove.end(), a) == remove.end()) {
      out.push_back(a);
    }
  }
  return derived(std::move(out));
}

std::string AsPath::to_string() const {
  std::string out;
  for (std::size_t i = 0; i < hops_.size(); ++i) {
    if (i) out += ' ';
    out += std::to_string(hops_[i]);
  }
  return out;
}

namespace {

constexpr bool is_space(char c) noexcept {
  return c == ' ' || c == '\t' || c == '\n' || c == '\r' || c == '\f' ||
         c == '\v';
}

bool append_asn(std::string_view token, std::vector<Asn>& hops) {
  Asn asn = 0;
  if (!detail::parse_decimal(token, asn)) return false;
  hops.push_back(asn);
  return true;
}

}  // namespace

std::optional<AsPath> AsPath::parse(std::string_view text) {
  // Fused tokenize-and-parse: this is the hottest function of the whole
  // ingest layer (one call per MRT line, ~5 hops each), so the common
  // case — space-separated decimal ASNs — runs as a single pass with the
  // digit accumulation inlined; only AS_SET tokens take the generic
  // path. Hops accumulate in a reused thread-local scratch (growth
  // reallocations amortize away across lines) and the returned path
  // makes one exact-size allocation. thread_local keeps this safe under
  // MrtStreamLoader's parallel chunk workers.
  thread_local std::vector<Asn> hops;
  hops.clear();
  bool saw_as_set = false;
  const char* p = text.data();
  const char* const end = p + text.size();
  while (true) {
    while (p != end && is_space(*p)) ++p;
    if (p == end) break;
    if (*p == '{') {
      // bgpdump AS_SET: "{64512,64513}". Flatten the members in written
      // order and mark the path; the sanitizer decides whether the route
      // survives. Empty or unterminated sets are malformed.
      const char* q = p;
      while (q != end && !is_space(*q)) ++q;
      std::string_view token(p, static_cast<std::size_t>(q - p));
      p = q;
      if (token.size() < 3 || token.back() != '}') return std::nullopt;
      std::string_view body = token.substr(1, token.size() - 2);
      while (true) {
        std::size_t comma = body.find(',');
        if (!append_asn(body.substr(0, comma), hops)) return std::nullopt;
        if (comma == std::string_view::npos) break;
        body.remove_prefix(comma + 1);
      }
      saw_as_set = true;
    } else {
      // Plain hop: decimal digits up to the next space. Leading zeros
      // don't count toward the 10-digit budget; the value must fit 32
      // bits — the same accept/reject set as util::parse_int<Asn>.
      std::uint64_t value = 0;
      int digits = 0;
      const char* q = p;
      while (q != end && *q >= '0' && *q <= '9') {
        if (value != 0 || *q != '0') {
          if (++digits > 10) return std::nullopt;
        }
        value = value * 10 + static_cast<std::uint64_t>(*q - '0');
        ++q;
      }
      if (q == p || (q != end && !is_space(*q))) return std::nullopt;
      if (value > 0xFFFFFFFFull) return std::nullopt;
      hops.push_back(static_cast<Asn>(value));
      p = q;
    }
  }
  AsPath path{std::vector<Asn>(hops.begin(), hops.end())};
  if (saw_as_set) path.mark_as_set();
  return path;
}

}  // namespace georank::bgp
