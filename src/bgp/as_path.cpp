#include "bgp/as_path.hpp"

#include <algorithm>
#include <unordered_set>

#include "util/strings.hpp"

namespace georank::bgp {

bool AsPath::contains(Asn asn) const noexcept {
  return std::find(hops_.begin(), hops_.end(), asn) != hops_.end();
}

AsPath AsPath::without_adjacent_duplicates() const {
  std::vector<Asn> out;
  out.reserve(hops_.size());
  for (Asn a : hops_) {
    if (out.empty() || out.back() != a) out.push_back(a);
  }
  return AsPath{std::move(out)};
}

bool AsPath::has_nonadjacent_duplicate() const {
  // Check on the prepend-collapsed path so "A A B" is not a loop but
  // "A B A" is.
  AsPath collapsed = without_adjacent_duplicates();
  std::unordered_set<Asn> seen;
  for (Asn a : collapsed.hops_) {
    if (!seen.insert(a).second) return true;
  }
  return false;
}

AsPath AsPath::without_ases(std::span<const Asn> remove) const {
  std::vector<Asn> out;
  out.reserve(hops_.size());
  for (Asn a : hops_) {
    if (std::find(remove.begin(), remove.end(), a) == remove.end()) {
      out.push_back(a);
    }
  }
  return AsPath{std::move(out)};
}

std::string AsPath::to_string() const {
  std::string out;
  for (std::size_t i = 0; i < hops_.size(); ++i) {
    if (i) out += ' ';
    out += std::to_string(hops_[i]);
  }
  return out;
}

std::optional<AsPath> AsPath::parse(std::string_view text) {
  std::vector<Asn> hops;
  for (std::string_view tok : util::split_ws(text)) {
    auto asn = util::parse_int<Asn>(tok);
    if (!asn) return std::nullopt;
    hops.push_back(*asn);
  }
  return AsPath{std::move(hops)};
}

}  // namespace georank::bgp
