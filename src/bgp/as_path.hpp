// AS numbers and AS paths as observed in BGP announcements.
//
// Convention (matches the paper's figures): hops[0] is the AS hosting the
// vantage point (nearest the collector) and hops.back() is the origin AS
// that announced the prefix.
#pragma once

#include <algorithm>
#include <cstdint>
#include <initializer_list>
#include <optional>
#include <span>
#include <string>
#include <string_view>
#include <vector>

namespace georank::bgp {

using Asn = std::uint32_t;
inline constexpr Asn kInvalidAsn = 0;

class AsPath {
 public:
  AsPath() = default;
  explicit AsPath(std::vector<Asn> hops) : hops_(std::move(hops)) {}
  AsPath(std::initializer_list<Asn> hops) : hops_(hops) {}

  [[nodiscard]] std::span<const Asn> hops() const noexcept { return hops_; }
  [[nodiscard]] bool empty() const noexcept { return hops_.empty(); }
  [[nodiscard]] std::size_t size() const noexcept { return hops_.size(); }
  [[nodiscard]] Asn operator[](std::size_t i) const noexcept { return hops_[i]; }

  /// AS adjacent to the vantage point (first hop).
  [[nodiscard]] Asn vp_as() const noexcept { return hops_.front(); }
  /// AS that originated the prefix (last hop).
  [[nodiscard]] Asn origin() const noexcept { return hops_.back(); }

  [[nodiscard]] bool contains(Asn asn) const noexcept;

  /// Prepend-collapse: "A A B B C" -> "A B C". Paths routinely carry
  /// AS-prepending for traffic engineering; all metrics ignore it.
  [[nodiscard]] AsPath without_adjacent_duplicates() const;

  /// True if any AS appears at two NON-adjacent positions ("A C A").
  /// Such paths are loops (Table 1, "loop") and are rejected.
  [[nodiscard]] bool has_nonadjacent_duplicate() const;

  /// Remove all occurrences of the given ASes (IXP route servers, §3.1).
  [[nodiscard]] AsPath without_ases(std::span<const Asn> remove) const;

  void push_back(Asn asn) { hops_.push_back(asn); }

  /// True if the path was parsed from text containing bgpdump AS_SET
  /// syntax ("{64512,64513}"). The members are flattened into hops_ in
  /// written order so the path stays usable, and this mark lets
  /// sanitize::PathSanitizer make the drop decision (AS_SETs carry no
  /// hop ordering, so the paper's path metrics exclude them). Preserved
  /// by without_adjacent_duplicates()/without_ases(); participates in
  /// equality, so a flattened AS_SET path never compares equal to the
  /// same hops written plainly.
  [[nodiscard]] bool has_as_set() const noexcept { return has_as_set_; }
  void mark_as_set() noexcept { has_as_set_ = true; }

  /// "701 3356 1299" (space-separated, VP side first). AS_SETs are
  /// serialized flattened — to_string() is lossy for them by design.
  [[nodiscard]] std::string to_string() const;
  /// Accepts plain paths and bgpdump AS_SET tokens ("701 {64512,64513}"),
  /// flattening the latter and marking the result (see has_as_set()).
  [[nodiscard]] static std::optional<AsPath> parse(std::string_view text);

  friend bool operator==(const AsPath&, const AsPath&) = default;

 private:
  /// A copy of this path with different hops but the same as-set mark.
  [[nodiscard]] AsPath derived(std::vector<Asn> hops) const {
    AsPath out{std::move(hops)};
    out.has_as_set_ = has_as_set_;
    return out;
  }

  std::vector<Asn> hops_;
  bool has_as_set_ = false;
};

/// Non-owning, read-only view of an AS path — the same hop accessors as
/// AsPath over externally owned storage (an interned arena, an AsPath's
/// own hops). Implicitly constructible from AsPath so code written
/// against AsPath's read API works on either. The referenced hops must
/// outlive the view.
class AsPathView {
 public:
  constexpr AsPathView() noexcept = default;
  constexpr AsPathView(const Asn* hops, std::size_t size) noexcept
      : hops_(hops, size) {}
  constexpr AsPathView(std::span<const Asn> hops) noexcept : hops_(hops) {}
  AsPathView(const AsPath& path) noexcept : hops_(path.hops()) {}  // NOLINT

  [[nodiscard]] constexpr std::span<const Asn> hops() const noexcept {
    return hops_;
  }
  [[nodiscard]] constexpr bool empty() const noexcept { return hops_.empty(); }
  [[nodiscard]] constexpr std::size_t size() const noexcept {
    return hops_.size();
  }
  [[nodiscard]] constexpr Asn operator[](std::size_t i) const noexcept {
    return hops_[i];
  }

  /// AS adjacent to the vantage point (first hop).
  [[nodiscard]] constexpr Asn vp_as() const noexcept { return hops_.front(); }
  /// AS that originated the prefix (last hop).
  [[nodiscard]] constexpr Asn origin() const noexcept { return hops_.back(); }

  [[nodiscard]] bool contains(Asn asn) const noexcept {
    for (Asn hop : hops_) {
      if (hop == asn) return true;
    }
    return false;
  }

  /// Deep copy back into an owning AsPath.
  [[nodiscard]] AsPath materialize() const {
    return AsPath{std::vector<Asn>(hops_.begin(), hops_.end())};
  }

  friend bool operator==(AsPathView a, AsPathView b) noexcept {
    return a.hops_.size() == b.hops_.size() &&
           std::equal(a.hops_.begin(), a.hops_.end(), b.hops_.begin());
  }

 private:
  std::span<const Asn> hops_;
};

}  // namespace georank::bgp
