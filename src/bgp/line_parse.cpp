#include "bgp/line_parse.hpp"

#include "bgp/prefix.hpp"
#include "util/strings.hpp"

namespace georank::bgp {

namespace {
constexpr std::uint64_t kSecondsPerDay = 86400;
}

std::string_view to_string(ParseReason reason) noexcept {
  switch (reason) {
    case ParseReason::kOk: return "ok";
    case ParseReason::kBadFieldCount: return "bad field count";
    case ParseReason::kBadRecordType: return "bad record type";
    case ParseReason::kBadTimestamp: return "bad timestamp";
    case ParseReason::kBadIp: return "bad ip";
    case ParseReason::kBadAsn: return "bad asn";
    case ParseReason::kBadPrefix: return "bad prefix";
    case ParseReason::kBadPath: return "bad path";
    case ParseReason::kEmptyPath: return "empty path";
    case ParseReason::kDayOutOfRange: return "day out of range";
    case ParseReason::kAsSet: return "as-set";
  }
  return "?";
}

namespace {
std::string format_parse_error(std::size_t line_number, ParseReason reason,
                               std::string_view line) {
  std::string out = "malformed line ";
  out += std::to_string(line_number);
  out += " (";
  out += to_string(reason);
  out += "): ";
  out += line;
  return out;
}
}  // namespace

MrtParseError::MrtParseError(std::size_t line_number, ParseReason reason,
                             std::string_view line)
    : std::runtime_error(format_parse_error(line_number, reason, line)),
      line_number_(line_number),
      reason_(reason) {}

void MrtParseStats::record_malformed(ParseReason reason,
                                     std::size_t line_number,
                                     std::string_view line) {
  ++malformed;
  switch (reason) {
    case ParseReason::kBadFieldCount: ++bad_field_count; break;
    case ParseReason::kBadRecordType: ++bad_record_type; break;
    case ParseReason::kBadTimestamp: ++bad_timestamp; break;
    case ParseReason::kBadIp: ++bad_ip; break;
    case ParseReason::kBadAsn: ++bad_asn; break;
    case ParseReason::kBadPrefix: ++bad_prefix; break;
    case ParseReason::kBadPath: ++bad_path; break;
    case ParseReason::kEmptyPath: ++empty_path; break;
    case ParseReason::kDayOutOfRange: ++day_out_of_range; break;
    case ParseReason::kOk:
    case ParseReason::kAsSet: break;  // not malformed reasons
  }
  if (samples.size() < kMaxSamples) {
    samples.push_back(Sample{line_number, reason, std::string(line)});
  }
}

void MrtParseStats::merge(const MrtParseStats& other, std::size_t line_offset) {
  lines += other.lines;
  parsed += other.parsed;
  malformed += other.malformed;
  skipped_comments += other.skipped_comments;
  bad_field_count += other.bad_field_count;
  bad_record_type += other.bad_record_type;
  bad_timestamp += other.bad_timestamp;
  bad_ip += other.bad_ip;
  bad_asn += other.bad_asn;
  bad_prefix += other.bad_prefix;
  bad_path += other.bad_path;
  empty_path += other.empty_path;
  day_out_of_range += other.day_out_of_range;
  as_set += other.as_set;
  bytes += other.bytes;
  for (const Sample& s : other.samples) {
    if (samples.size() >= kMaxSamples) break;
    samples.push_back(Sample{s.line_number + line_offset, s.reason, s.text});
  }
}

std::size_t MrtParseStats::reason_count(ParseReason reason) const noexcept {
  switch (reason) {
    case ParseReason::kOk: return parsed;
    case ParseReason::kBadFieldCount: return bad_field_count;
    case ParseReason::kBadRecordType: return bad_record_type;
    case ParseReason::kBadTimestamp: return bad_timestamp;
    case ParseReason::kBadIp: return bad_ip;
    case ParseReason::kBadAsn: return bad_asn;
    case ParseReason::kBadPrefix: return bad_prefix;
    case ParseReason::kBadPath: return bad_path;
    case ParseReason::kEmptyPath: return empty_path;
    case ParseReason::kDayOutOfRange: return day_out_of_range;
    case ParseReason::kAsSet: return as_set;
  }
  return 0;
}

double MrtParseStats::lines_per_second() const noexcept {
  return elapsed_seconds > 0.0 ? static_cast<double>(lines) / elapsed_seconds
                               : 0.0;
}

double MrtParseStats::mbytes_per_second() const noexcept {
  return elapsed_seconds > 0.0
             ? static_cast<double>(bytes) / (1e6 * elapsed_seconds)
             : 0.0;
}

namespace detail {

std::size_t split_fields(std::string_view line,
                         std::span<std::string_view> out) noexcept {
  std::size_t count = 0;
  std::size_t start = 0;
  while (true) {
    std::size_t bar = line.find('|', start);
    if (count == kMaxLineFields) return kMaxLineFields + 1;
    if (bar == std::string_view::npos) {
      out[count++] = line.substr(start);
      return count;
    }
    out[count++] = line.substr(start, bar - start);
    start = bar + 1;
  }
}

ParseReason parse_route_fields(std::span<const std::string_view> fields,
                               bool want_path, ParsedRoute& out) {
  std::uint64_t ts = 0;
  if (!parse_decimal(fields[1], ts)) return ParseReason::kBadTimestamp;
  auto ip = parse_ipv4(fields[3]);
  if (!ip) return ParseReason::kBadIp;
  Asn asn = 0;
  if (!parse_decimal(fields[4], asn) || asn == kInvalidAsn) {
    return ParseReason::kBadAsn;
  }
  auto prefix = Prefix::parse(fields[5]);
  if (!prefix) return ParseReason::kBadPrefix;
  if (want_path) {
    auto path = AsPath::parse(fields[6]);
    if (!path) return ParseReason::kBadPath;
    if (path->empty()) return ParseReason::kEmptyPath;
    out.has_as_set = path->has_as_set();
    out.path = std::move(*path);
  }
  out.timestamp = ts;
  out.vp = VpId{*ip, asn};
  out.prefix = *prefix;
  return ParseReason::kOk;
}

ParseReason day_from_timestamp(std::uint64_t timestamp, std::uint64_t base_time,
                               int max_day, int& day_out) noexcept {
  if (timestamp < base_time) return ParseReason::kDayOutOfRange;
  std::uint64_t day = (timestamp - base_time) / kSecondsPerDay;
  if (day >= static_cast<std::uint64_t>(max_day)) {
    return ParseReason::kDayOutOfRange;
  }
  day_out = static_cast<int>(day);
  return ParseReason::kOk;
}

}  // namespace detail

}  // namespace georank::bgp
