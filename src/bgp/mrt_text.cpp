#include "bgp/mrt_text.hpp"

#include <istream>
#include <map>
#include <ostream>
#include <sstream>

#include "util/strings.hpp"

namespace georank::bgp {

namespace {
constexpr std::uint64_t kSecondsPerDay = 86400;
}

void MrtTextWriter::write_entry(const RouteEntry& entry, int day) {
  std::uint64_t ts = base_time_ + static_cast<std::uint64_t>(day) * kSecondsPerDay;
  (*os_) << "TABLE_DUMP2|" << ts << "|B|" << format_ipv4(entry.vp.ip) << '|'
         << entry.vp.asn << '|' << entry.prefix.to_string() << '|'
         << entry.path.to_string() << "|IGP\n";
}

void MrtTextWriter::write_snapshot(const RibSnapshot& snapshot) {
  for (const RouteEntry& e : snapshot.entries) write_entry(e, snapshot.day);
}

void MrtTextWriter::write_collection(const RibCollection& collection) {
  for (const RibSnapshot& s : collection.days) write_snapshot(s);
}

bool MrtTextReader::parse_line(std::string_view line, RouteEntry& out, int& day_out) {
  ++stats_.lines;
  std::string_view trimmed = util::trim(line);
  if (trimmed.empty() || trimmed.front() == '#') {
    ++stats_.skipped_comments;
    return false;
  }
  auto fields = util::split(trimmed, '|');
  if (fields.size() != 8 || fields[0] != "TABLE_DUMP2" || fields[2] != "B") {
    ++stats_.malformed;
    return false;
  }
  auto ts = util::parse_int<std::uint64_t>(fields[1]);
  auto ip = parse_ipv4(fields[3]);
  auto asn = util::parse_int<Asn>(fields[4]);
  auto prefix = Prefix::parse(fields[5]);
  auto path = AsPath::parse(fields[6]);
  if (!ts || !ip || !asn || !prefix || !path || path->empty() || *asn == kInvalidAsn) {
    ++stats_.malformed;
    return false;
  }
  out.vp = VpId{*ip, *asn};
  out.prefix = *prefix;
  out.path = std::move(*path);
  day_out = static_cast<int>((*ts - base_time_) / kSecondsPerDay);
  ++stats_.parsed;
  return true;
}

RibCollection MrtTextReader::read_collection(std::istream& is) {
  std::map<int, RibSnapshot> by_day;
  std::string line;
  RouteEntry entry;
  int day = 0;
  while (std::getline(is, line)) {
    if (!parse_line(line, entry, day)) continue;
    RibSnapshot& snap = by_day[day];
    snap.day = day;
    snap.entries.push_back(entry);
  }
  RibCollection out;
  out.days.reserve(by_day.size());
  for (auto& [d, snap] : by_day) out.days.push_back(std::move(snap));
  return out;
}

std::string to_mrt_text(const RibCollection& collection) {
  std::ostringstream os;
  MrtTextWriter writer{os};
  writer.write_collection(collection);
  return os.str();
}

RibCollection from_mrt_text(std::string_view text, MrtParseStats* stats) {
  std::istringstream is{std::string(text)};
  MrtTextReader reader;
  RibCollection out = reader.read_collection(is);
  if (stats) *stats = reader.stats();
  return out;
}

}  // namespace georank::bgp
