#include "bgp/mrt_text.hpp"

#include <array>
#include <istream>
#include <map>
#include <ostream>
#include <sstream>

#include "util/strings.hpp"

namespace georank::bgp {

namespace {
constexpr std::uint64_t kSecondsPerDay = 86400;
}

void MrtTextWriter::write_entry(const RouteEntry& entry, int day) {
  std::uint64_t ts = base_time_ + static_cast<std::uint64_t>(day) * kSecondsPerDay;
  (*os_) << "TABLE_DUMP2|" << ts << "|B|" << format_ipv4(entry.vp.ip) << '|'
         << entry.vp.asn << '|' << entry.prefix.to_string() << '|'
         << entry.path.to_string() << "|IGP\n";
}

void MrtTextWriter::write_snapshot(const RibSnapshot& snapshot) {
  for (const RouteEntry& e : snapshot.entries) write_entry(e, snapshot.day);
}

void MrtTextWriter::write_collection(const RibCollection& collection) {
  for (const RibSnapshot& s : collection.days) write_snapshot(s);
}

bool MrtTextReader::parse_line(std::string_view line, RouteEntry& out, int& day_out) {
  ++stats_.lines;
  std::string_view trimmed = util::trim(line);
  if (trimmed.empty() || trimmed.front() == '#') {
    ++stats_.skipped_comments;
    return false;
  }
  std::array<std::string_view, detail::kMaxLineFields> fields;
  std::size_t field_count = detail::split_fields(trimmed, fields);

  ParseReason reason = ParseReason::kOk;
  detail::ParsedRoute route;
  int day = 0;
  if (field_count != 8) {
    reason = ParseReason::kBadFieldCount;
  } else if (fields[0] != "TABLE_DUMP2" || fields[2] != "B") {
    reason = ParseReason::kBadRecordType;
  } else {
    reason = detail::parse_route_fields({fields.data(), field_count},
                                        /*want_path=*/true, route);
  }
  if (reason == ParseReason::kOk) {
    reason = detail::day_from_timestamp(route.timestamp, options_.base_time,
                                        options_.max_day, day);
  }
  if (reason != ParseReason::kOk) {
    if (options_.mode == ParseMode::kStrict) {
      throw MrtParseError{stats_.lines, reason, trimmed};
    }
    stats_.record_malformed(reason, stats_.lines, trimmed);
    return false;
  }
  out.vp = route.vp;
  out.prefix = route.prefix;
  out.path = std::move(route.path);
  day_out = day;
  if (route.has_as_set) ++stats_.as_set;
  ++stats_.parsed;
  return true;
}

RibCollection MrtTextReader::read_collection(std::istream& is) {
  std::map<int, RibSnapshot> by_day;
  std::string line;
  RouteEntry entry;
  int day = 0;
  while (std::getline(is, line)) {
    if (!parse_line(line, entry, day)) continue;
    RibSnapshot& snap = by_day[day];
    snap.day = day;
    snap.entries.push_back(std::move(entry));
  }
  RibCollection out;
  out.days.reserve(by_day.size());
  for (auto& [d, snap] : by_day) out.days.push_back(std::move(snap));
  return out;
}

std::string to_mrt_text(const RibCollection& collection) {
  std::ostringstream os;
  MrtTextWriter writer{os};
  writer.write_collection(collection);
  return os.str();
}

RibCollection from_mrt_text(std::string_view text, MrtParseStats* stats) {
  std::istringstream is{std::string(text)};
  MrtTextReader reader;
  RibCollection out = reader.read_collection(is);
  if (stats) *stats = reader.stats();
  return out;
}

}  // namespace georank::bgp
