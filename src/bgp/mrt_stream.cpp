#include "bgp/mrt_stream.hpp"

#include <chrono>
#include <istream>
#include <map>
#include <string>
#include <utility>
#include <vector>

#include "util/parallel_for.hpp"

namespace georank::bgp {

namespace {

/// One chunk's parse output: entries in input order plus diagnostics with
/// chunk-relative (1-based) line numbers.
struct ChunkResult {
  std::vector<std::pair<int, RouteEntry>> entries;
  MrtParseStats stats;
};

ChunkResult parse_chunk(std::string_view chunk, const MrtStreamOptions& options) {
  MrtReaderOptions reader_options;
  reader_options.base_time = options.base_time;
  // Workers always run tolerant; strict mode is enforced at the ordered
  // merge so the reported first error is deterministic under any schedule.
  reader_options.mode = ParseMode::kTolerant;
  reader_options.max_day = options.max_day;
  MrtTextReader reader{reader_options};

  ChunkResult out;
  // ~72 bytes per MRT line in practice; reserving up front keeps the
  // entries vector from reallocating a dozen times per chunk.
  out.entries.reserve(chunk.size() / 64 + 1);
  RouteEntry entry;
  int day = 0;
  std::size_t pos = 0;
  while (pos < chunk.size()) {
    std::size_t newline = chunk.find('\n', pos);
    std::size_t end = newline == std::string_view::npos ? chunk.size() : newline;
    std::string_view line = chunk.substr(pos, end - pos);
    pos = newline == std::string_view::npos ? chunk.size() : newline + 1;
    if (reader.parse_line(line, entry, day)) {
      out.entries.emplace_back(day, std::move(entry));
    }
  }
  out.stats = reader.stats();
  return out;
}

/// Pulls newline-aligned chunks of ~target bytes off an istream. A line
/// longer than target grows its chunk rather than splitting mid-line.
class StreamChunker {
 public:
  StreamChunker(std::istream& is, std::size_t target)
      : is_(&is), target_(target ? target : 1) {}

  bool next(std::string& chunk) {
    chunk = std::move(carry_);
    carry_.clear();
    while (true) {
      if (chunk.size() >= target_) {
        std::size_t newline = chunk.rfind('\n');
        if (newline != std::string::npos) {
          carry_.assign(chunk, newline + 1, std::string::npos);
          chunk.resize(newline + 1);
          return true;
        }
      }
      if (!*is_) break;  // input exhausted: the remainder is the last chunk
      std::size_t old_size = chunk.size();
      chunk.resize(old_size + target_);
      is_->read(chunk.data() + old_size, static_cast<std::streamsize>(target_));
      chunk.resize(old_size + static_cast<std::size_t>(is_->gcount()));
    }
    return !chunk.empty();
  }

 private:
  std::istream* is_;
  std::size_t target_;
  std::string carry_;
};

/// Newline-aligned views over an in-memory buffer; no copies.
class TextChunker {
 public:
  TextChunker(std::string_view text, std::size_t target)
      : text_(text), target_(target ? target : 1) {}

  bool next(std::string_view& chunk) {
    if (pos_ >= text_.size()) return false;
    std::size_t end = pos_ + target_;
    if (end >= text_.size()) {
      end = text_.size();
    } else {
      std::size_t newline = text_.find('\n', end);
      end = newline == std::string_view::npos ? text_.size() : newline + 1;
    }
    chunk = text_.substr(pos_, end - pos_);
    pos_ = end;
    return true;
  }

 private:
  std::string_view text_;
  std::size_t target_;
  std::size_t pos_ = 0;
};

/// Collects `by_day` into a RibCollection in day order.
RibCollection collect_days(std::map<int, RibSnapshot>& by_day) {
  RibCollection out;
  out.days.reserve(by_day.size());
  for (auto& [day, snap] : by_day) out.days.push_back(std::move(snap));
  return out;
}

/// Sequential fast path for threads == 1: one persistent reader parses
/// straight into the day snapshots, skipping the chunk-result staging
/// and its per-entry moves entirely. The reader's own line counter is
/// global here, so strict mode throws with the right line number
/// without any offset bookkeeping.
template <typename ChunkType, typename NextChunk>
RibCollection load_sequential(const MrtStreamOptions& options,
                              MrtParseStats& stats, NextChunk&& next_chunk,
                              std::chrono::steady_clock::time_point start) {
  MrtReaderOptions reader_options;
  reader_options.base_time = options.base_time;
  reader_options.mode = options.mode;
  reader_options.max_day = options.max_day;
  MrtTextReader reader{reader_options};

  std::map<int, RibSnapshot> by_day;
  int last_day = -1;
  RibSnapshot* last_snap = nullptr;
  std::size_t bytes = 0;
  RouteEntry entry;
  int day = 0;
  ChunkType chunk;
  while (next_chunk(chunk)) {
    std::string_view view{chunk};
    bytes += view.size();
    std::size_t pos = 0;
    while (pos < view.size()) {
      std::size_t newline = view.find('\n', pos);
      std::size_t end = newline == std::string_view::npos ? view.size() : newline;
      std::string_view line = view.substr(pos, end - pos);
      pos = newline == std::string_view::npos ? view.size() : newline + 1;
      if (!reader.parse_line(line, entry, day)) continue;
      if (day != last_day || last_snap == nullptr) {
        // Dumps are written day by day, so the previous day's entry
        // count is a good capacity hint for a fresh snapshot.
        std::size_t hint = last_snap ? last_snap->entries.size() : 0;
        last_snap = &by_day[day];
        last_snap->day = day;
        last_day = day;
        if (hint > 0 && last_snap->entries.capacity() < hint) {
          last_snap->entries.reserve(hint);
        }
      }
      last_snap->entries.push_back(std::move(entry));
    }
  }
  stats = reader.stats();
  stats.bytes = bytes;
  stats.elapsed_seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - start)
          .count();
  return collect_days(by_day);
}

template <typename ChunkType, typename NextChunk>
RibCollection load_impl(const MrtStreamOptions& options, MrtParseStats& stats,
                        NextChunk&& next_chunk) {
  auto start = std::chrono::steady_clock::now();
  stats = MrtParseStats{};
  std::size_t threads =
      options.threads ? options.threads : util::default_thread_count();
  if (threads <= 1) {
    return load_sequential<ChunkType>(options, stats,
                                      std::forward<NextChunk>(next_chunk),
                                      start);
  }
  std::size_t batch_size =
      options.chunks_per_batch ? options.chunks_per_batch : 4 * threads;
  if (batch_size == 0) batch_size = 1;

  std::map<int, RibSnapshot> by_day;
  // Consecutive entries almost always share a day, and std::map nodes are
  // pointer-stable, so one cached pointer replaces a map lookup per entry.
  int last_day = -1;
  RibSnapshot* last_snap = nullptr;
  std::vector<ChunkType> chunks;
  std::vector<ChunkResult> results;
  while (true) {
    chunks.clear();
    while (chunks.size() < batch_size) {
      ChunkType chunk;
      if (!next_chunk(chunk)) break;
      chunks.push_back(std::move(chunk));
    }
    if (chunks.empty()) break;

    results.assign(chunks.size(), ChunkResult{});
    util::parallel_for(
        chunks.size(),
        [&](std::size_t i) {
          results[i] = parse_chunk(std::string_view(chunks[i]), options);
        },
        threads);

    // Deterministic merge in input order: entries append exactly as the
    // single-threaded reader would, and strict mode surfaces the FIRST
    // malformed line with its global 1-based line number.
    for (ChunkResult& result : results) {
      if (options.mode == ParseMode::kStrict && result.stats.malformed > 0) {
        const MrtParseStats::Sample& first = result.stats.samples.front();
        throw MrtParseError{stats.lines + first.line_number, first.reason,
                            first.text};
      }
      stats.merge(result.stats, stats.lines);
      for (auto& [day, entry] : result.entries) {
        if (day != last_day || last_snap == nullptr) {
          last_snap = &by_day[day];
          last_snap->day = day;
          last_day = day;
        }
        last_snap->entries.push_back(std::move(entry));
      }
    }
    for (const ChunkType& chunk : chunks) stats.bytes += chunk.size();
  }
  stats.elapsed_seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - start)
          .count();
  return collect_days(by_day);
}

}  // namespace

RibCollection MrtStreamLoader::load(std::istream& is) {
  StreamChunker chunker{is, options_.chunk_bytes};
  return load_impl<std::string>(
      options_, stats_, [&](std::string& chunk) { return chunker.next(chunk); });
}

RibCollection MrtStreamLoader::load_text(std::string_view text) {
  TextChunker chunker{text, options_.chunk_bytes};
  return load_impl<std::string_view>(options_, stats_, [&](std::string_view& chunk) {
    return chunker.next(chunk);
  });
}

}  // namespace georank::bgp
