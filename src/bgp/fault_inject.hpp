// Deterministic fault injection for the ingest layer's robustness tests
// and benchmarks.
//
// Real collector feeds fail in a handful of recurring ways: truncated
// lines, mangled delimiters, clock skew, fat-fingered octets, AS_SET
// paths. Each FaultKind reproduces one of them with a KNOWN expected
// classification (expected_reason), so a test can inject a corpus and
// assert that the reader's per-reason counters match the injection log
// exactly — not just that "some lines were dropped".
#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "bgp/line_parse.hpp"

namespace georank::bgp {

enum class FaultKind : std::uint8_t {
  kTruncateFields,  // keep only the first 4 fields        -> bad_field_count
  kFlipDelimiter,   // first '|' becomes a space           -> bad_field_count
  kBadTimestamp,    // non-numeric unix time               -> bad_timestamp
  kEarlyTimestamp,  // timestamp = base_time - 1           -> day_out_of_range
  kOversizeOctet,   // peer IP octet > 255                 -> bad_ip
  kOversizeAsn,     // peer ASN > 2^32 - 1                 -> bad_asn
  kBadPrefix,       // prefix length > 32                  -> bad_prefix
  kBadPath,         // non-numeric AS-path token           -> bad_path
  kEmptyPath,       // empty AS-path field                 -> empty_path
  kAsSet,           // append an AS_SET; line still PARSES -> as_set
};
inline constexpr std::size_t kFaultKindCount = 10;

[[nodiscard]] std::string_view to_string(FaultKind kind) noexcept;

/// How a tolerant reader classifies a line carrying this fault.
[[nodiscard]] ParseReason expected_reason(FaultKind kind) noexcept;

/// True for every kind except kAsSet (whose line parses successfully).
[[nodiscard]] bool fault_is_malformed(FaultKind kind) noexcept;

struct FaultSpec {
  std::uint64_t seed = 42;
  /// Probability that any given line is corrupted.
  double fraction = 0.05;
  /// Must match the reader's base_time for kEarlyTimestamp to land in
  /// day_out_of_range.
  std::uint64_t base_time = 1617235200;
  /// Kinds to draw from, uniformly; empty means every FaultKind.
  std::vector<FaultKind> kinds;
};

struct InjectedFault {
  std::size_t line_number = 0;  // 1-based within the corpus
  FaultKind kind = FaultKind::kTruncateFields;
};

/// A corrupted corpus plus its injection log — the ground truth a
/// robustness test checks reader diagnostics against.
struct FaultCorpus {
  std::string text;
  std::size_t lines = 0;
  std::vector<InjectedFault> faults;  // in input (line) order

  [[nodiscard]] std::size_t count_of(FaultKind kind) const noexcept;
  /// Number of injected faults a tolerant reader should file under
  /// `reason` (several kinds can map to the same reason).
  [[nodiscard]] std::size_t expected_reason_count(ParseReason reason) const noexcept;
  /// Faults that make their line malformed (everything but kAsSet).
  [[nodiscard]] std::size_t malformed_lines() const noexcept;
  /// First malformed fault in input order — what strict mode must report.
  /// nullptr when every injected fault was informational.
  [[nodiscard]] const InjectedFault* first_malformed() const noexcept;
};

/// `lines` valid TABLE_DUMP2 lines spread over `days` days, with varied
/// peers/prefixes/paths. Deterministic in `seed`.
[[nodiscard]] std::string make_clean_mrt_text(std::size_t lines,
                                              std::uint64_t base_time = 1617235200,
                                              int days = 3,
                                              std::uint64_t seed = 1);

/// Corrupts ~fraction of `clean_text`'s lines, one fault per chosen line,
/// and returns the new corpus with its injection log. Lines too short for
/// a field-targeting fault fall back to kTruncateFields (the log records
/// the kind actually applied).
[[nodiscard]] FaultCorpus inject_faults(std::string_view clean_text,
                                        const FaultSpec& spec);

// ---------------------------------------------------------------------------
// Update-stream corpus: the same ground-truth idea for BGP4MP archives.
// Two of the kinds are parse-level arity faults; the third corrupts the
// stream ORDERING contract, which only replay_to_collection can see — its
// lines parse cleanly and are classified by ReplayStats instead.

enum class UpdateFaultKind : std::uint8_t {
  kTruncatedWithdraw,   // withdraw cut to 4 fields          -> bad_field_count
  kPathlessAnnounce,    // announce at withdraw arity (6)    -> bad_field_count
  kNonMonotonicBurst,   // timestamp rewound to base_time    -> replay out-of-order
};
inline constexpr std::size_t kUpdateFaultKindCount = 3;

[[nodiscard]] std::string_view to_string(UpdateFaultKind kind) noexcept;

/// How a tolerant UpdateTextReader classifies a line carrying this fault;
/// kOk for kNonMonotonicBurst (the line parses — replay rejects it).
[[nodiscard]] ParseReason expected_parse_reason(UpdateFaultKind kind) noexcept;

struct UpdateFaultSpec {
  std::uint64_t seed = 42;
  /// Probability that any given line (except the first) is corrupted.
  double fraction = 0.05;
  /// Must match the replay base_time for kNonMonotonicBurst rewinds to be
  /// older than every legitimate timestamp (clean text starts one day in).
  std::uint64_t base_time = 1617235200;
  /// Kinds to draw from, uniformly; empty means every UpdateFaultKind.
  std::vector<UpdateFaultKind> kinds;
};

struct InjectedUpdateFault {
  std::size_t line_number = 0;  // 1-based within the corpus
  UpdateFaultKind kind = UpdateFaultKind::kTruncatedWithdraw;
};

/// Corrupted update archive plus its injection log. The first line is
/// never corrupted, so replay always accepts a legitimate watermark
/// before any rewound timestamp — making every kNonMonotonicBurst line
/// count as exactly one out-of-order skip.
struct UpdateFaultCorpus {
  std::string text;
  std::size_t lines = 0;
  std::vector<InjectedUpdateFault> faults;  // in input (line) order

  [[nodiscard]] std::size_t count_of(UpdateFaultKind kind) const noexcept;
  /// Injected faults a tolerant reader files under `reason` at parse time.
  [[nodiscard]] std::size_t expected_parse_reason_count(
      ParseReason reason) const noexcept;
  /// Faults that make their line unparsable (everything but the burst).
  [[nodiscard]] std::size_t malformed_lines() const noexcept;
  /// Updates a tolerant replay must skip as out-of-order.
  [[nodiscard]] std::size_t expected_out_of_order() const noexcept;
};

/// `lines` valid BGP4MP update lines over `days` days with non-decreasing
/// timestamps starting at base_time + 86400 (day 1), so a timestamp
/// rewound to base_time is strictly older than every legitimate one.
/// Withdrawals only ever retract previously announced routes, so a clean
/// replay reports zero spurious withdrawals. Deterministic in `seed`.
[[nodiscard]] std::string make_clean_update_text(
    std::size_t lines, std::uint64_t base_time = 1617235200, int days = 3,
    std::uint64_t seed = 1);

/// Corrupts ~fraction of `clean_text`'s lines (never the first), one
/// fault per chosen line. Arity faults adapt to the line's own kind — a
/// withdraw chosen for kPathlessAnnounce gets kTruncatedWithdraw and vice
/// versa — and the log records the kind actually applied.
[[nodiscard]] UpdateFaultCorpus inject_update_faults(
    std::string_view clean_text, const UpdateFaultSpec& spec);

// ---------------------------------------------------------------------------
// Process-level fault points: WHERE in the live pipeline's push cycle a
// crash lands. The recovery harness (tests/live/recovery_test.cpp)
// replays a stream up to each scheduled point, "kills" the process
// there (abandoning all in-memory state), recovers from checkpoint +
// journal, and byte-compares the final snapshot against an
// uninterrupted run — the crash-safety proof of DESIGN.md §4g.

enum class ProcessFaultKind : std::uint8_t {
  kAfterJournalAppend,  // journaled, but the buffer never absorbed it
  kAfterPush,           // fully absorbed (drains/flushes included)
  kAfterCheckpoint,     // right after a checkpoint published
};
inline constexpr std::size_t kProcessFaultKindCount = 3;

[[nodiscard]] std::string_view to_string(ProcessFaultKind kind) noexcept;

struct ProcessFaultSpec {
  std::uint64_t seed = 42;
  /// Crash points to schedule across the stream.
  std::size_t points = 8;
  /// Length of the update stream the schedule indexes into.
  std::size_t stream_length = 0;
  /// Kinds to draw from, uniformly; empty means every ProcessFaultKind.
  std::vector<ProcessFaultKind> kinds;
};

struct ProcessFaultPoint {
  /// 0-based update index the crash lands on.
  std::size_t update_index = 0;
  ProcessFaultKind kind = ProcessFaultKind::kAfterPush;
};

/// Distinct, sorted crash points drawn uniformly over the stream.
/// Deterministic in the seed; at most stream_length points.
[[nodiscard]] std::vector<ProcessFaultPoint> make_crash_schedule(
    const ProcessFaultSpec& spec);

}  // namespace georank::bgp
