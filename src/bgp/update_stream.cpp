#include "bgp/update_stream.hpp"

#include <algorithm>
#include <array>
#include <istream>
#include <ostream>
#include <sstream>

#include "util/strings.hpp"

namespace georank::bgp {

void UpdateTextWriter::write(const UpdateMessage& update) {
  (*os_) << "BGP4MP|" << update.timestamp << '|'
         << (update.kind == UpdateMessage::Kind::kAnnounce ? 'A' : 'W') << '|'
         << format_ipv4(update.vp.ip) << '|' << update.vp.asn << '|'
         << update.prefix.to_string();
  if (update.kind == UpdateMessage::Kind::kAnnounce) {
    (*os_) << '|' << update.path.to_string() << "|IGP";
  }
  (*os_) << '\n';
}

void UpdateTextWriter::write_all(const std::vector<UpdateMessage>& updates) {
  for (const UpdateMessage& u : updates) write(u);
}

bool UpdateTextReader::parse_line(std::string_view line, UpdateMessage& out) {
  ++stats_.lines;
  std::string_view trimmed = util::trim(line);
  if (trimmed.empty() || trimmed.front() == '#') {
    ++stats_.skipped_comments;
    return false;
  }
  std::array<std::string_view, detail::kMaxLineFields> fields;
  std::size_t field_count = detail::split_fields(trimmed, fields);

  ParseReason reason = ParseReason::kOk;
  detail::ParsedRoute route;
  auto kind = UpdateMessage::Kind::kAnnounce;
  if (field_count < 6) {
    reason = ParseReason::kBadFieldCount;
  } else if (fields[0] != "BGP4MP") {
    reason = ParseReason::kBadRecordType;
  } else if (fields[2] == "A") {
    // Announces carry a path: ...|<prefix>|<as-path>|IGP, 8 fields.
    if (field_count != 8) {
      reason = ParseReason::kBadFieldCount;
    } else {
      reason = detail::parse_route_fields({fields.data(), field_count},
                                          /*want_path=*/true, route);
    }
  } else if (fields[2] == "W") {
    // Withdraws are exactly 6 fields; one carrying a path is rejected
    // here rather than silently accepted or lumped into a generic bucket.
    if (field_count != 6) {
      reason = ParseReason::kBadFieldCount;
    } else {
      kind = UpdateMessage::Kind::kWithdraw;
      reason = detail::parse_route_fields({fields.data(), field_count},
                                          /*want_path=*/false, route);
    }
  } else {
    reason = ParseReason::kBadRecordType;
  }

  if (reason != ParseReason::kOk) {
    if (mode_ == ParseMode::kStrict) {
      throw MrtParseError{stats_.lines, reason, trimmed};
    }
    stats_.record_malformed(reason, stats_.lines, trimmed);
    return false;
  }
  out = UpdateMessage{kind, route.timestamp, route.vp, route.prefix,
                      std::move(route.path)};
  if (route.has_as_set) ++stats_.as_set;
  ++stats_.parsed;
  return true;
}

std::vector<UpdateMessage> UpdateTextReader::read_all(std::istream& is) {
  std::vector<UpdateMessage> out;
  std::string line;
  UpdateMessage update;
  while (std::getline(is, line)) {
    if (parse_line(line, update)) out.push_back(update);
  }
  return out;
}

std::string to_update_text(const std::vector<UpdateMessage>& updates) {
  std::ostringstream os;
  UpdateTextWriter writer{os};
  writer.write_all(updates);
  return os.str();
}

std::vector<UpdateMessage> from_update_text(std::string_view text,
                                            MrtParseStats* stats) {
  std::istringstream is{std::string(text)};
  UpdateTextReader reader;
  std::vector<UpdateMessage> out = reader.read_all(is);
  if (stats) *stats = reader.stats();
  return out;
}

void RibState::apply(const UpdateMessage& update) {
  Key key{update.vp, update.prefix};
  if (update.kind == UpdateMessage::Kind::kAnnounce) {
    routes_[key] = update.path;
  } else if (routes_.erase(key) == 0) {
    ++spurious_withdrawals_;
  }
}

void RibState::apply_all(const std::vector<UpdateMessage>& updates) {
  // this-> keeps the bare name from resolving to the unrelated
  // [[nodiscard]] free function scenario::apply in the lint model.
  for (const UpdateMessage& u : updates) this->apply(u);
}

void RibState::restore(const std::vector<RouteEntry>& entries,
                       std::size_t spurious) {
  routes_.clear();
  routes_.reserve(entries.size());
  for (const RouteEntry& e : entries) {
    routes_.emplace(Key{e.vp, e.prefix}, e.path);
  }
  spurious_withdrawals_ = spurious;
}

RibSnapshot RibState::snapshot(int day) const {
  RibSnapshot snap;
  snap.day = day;
  snap.entries.reserve(routes_.size());
  for (const auto& [key, path] : routes_) {
    snap.entries.push_back(RouteEntry{key.vp, key.prefix, path});
  }
  std::sort(snap.entries.begin(), snap.entries.end(),
            [](const RouteEntry& a, const RouteEntry& b) {
              if (a.vp != b.vp) return a.vp < b.vp;
              return a.prefix < b.prefix;
            });
  return snap;
}

std::vector<UpdateMessage> diff_snapshots(const RibSnapshot& from,
                                          const RibSnapshot& to,
                                          std::uint64_t timestamp) {
  struct Key {
    VpId vp;
    Prefix prefix;
    bool operator<(const Key& other) const {
      if (vp != other.vp) return vp < other.vp;
      return prefix < other.prefix;
    }
    bool operator==(const Key&) const = default;
  };
  std::vector<std::pair<Key, const AsPath*>> old_routes, new_routes;
  for (const RouteEntry& e : from.entries) {
    old_routes.push_back({Key{e.vp, e.prefix}, &e.path});
  }
  for (const RouteEntry& e : to.entries) {
    new_routes.push_back({Key{e.vp, e.prefix}, &e.path});
  }
  auto by_key = [](const auto& a, const auto& b) { return a.first < b.first; };
  std::sort(old_routes.begin(), old_routes.end(), by_key);
  std::sort(new_routes.begin(), new_routes.end(), by_key);

  std::vector<UpdateMessage> out;
  std::size_t i = 0, j = 0;
  while (i < old_routes.size() || j < new_routes.size()) {
    bool take_old = j >= new_routes.size() ||
                    (i < old_routes.size() && old_routes[i].first < new_routes[j].first);
    bool take_new = i >= old_routes.size() ||
                    (j < new_routes.size() && new_routes[j].first < old_routes[i].first);
    if (take_old) {
      const Key& k = old_routes[i].first;
      out.push_back(UpdateMessage{UpdateMessage::Kind::kWithdraw, timestamp,
                                  k.vp, k.prefix, AsPath{}});
      ++i;
    } else if (take_new) {
      const Key& k = new_routes[j].first;
      out.push_back(UpdateMessage{UpdateMessage::Kind::kAnnounce, timestamp,
                                  k.vp, k.prefix, *new_routes[j].second});
      ++j;
    } else {
      // Same key in both: announce only when the path changed.
      if (!(*old_routes[i].second == *new_routes[j].second)) {
        const Key& k = new_routes[j].first;
        out.push_back(UpdateMessage{UpdateMessage::Kind::kAnnounce, timestamp,
                                    k.vp, k.prefix, *new_routes[j].second});
      }
      ++i;
      ++j;
    }
  }
  return out;
}

UpdateReplayError::UpdateReplayError(Kind kind, std::size_t index,
                                     std::uint64_t timestamp)
    : std::runtime_error{"update replay: " + std::string(to_string(kind)) +
                         " at index " + std::to_string(index) +
                         " (timestamp " + std::to_string(timestamp) + ")"},
      kind_(kind),
      index_(index),
      timestamp_(timestamp) {}

std::string_view to_string(UpdateReplayError::Kind kind) noexcept {
  switch (kind) {
    case UpdateReplayError::Kind::kOutOfOrder: return "out-of-order timestamp";
    case UpdateReplayError::Kind::kDayOutOfRange: return "day out of range";
    case UpdateReplayError::Kind::kBufferOverflow:
      return "reorder buffer overflow";
  }
  return "?";
}

RibCollection replay_to_collection(const std::vector<UpdateMessage>& updates,
                                   const ReplayOptions& options,
                                   ReplayStats* stats) {
  RibCollection out;
  RibState state;
  ReplayStats tally;
  int current_day = -1;
  std::uint64_t watermark = 0;
  for (std::size_t i = 0; i < updates.size(); ++i) {
    const UpdateMessage& u = updates[i];
    int day = 0;
    if (detail::day_from_timestamp(u.timestamp, options.base_time,
                                   options.max_day, day) != ParseReason::kOk) {
      // Pre-base_time timestamps used to clamp to day 0, silently folding
      // clock-skewed updates into the first snapshot; now they follow the
      // same strict/tolerant contract as the text readers.
      if (options.mode == ParseMode::kStrict) {
        throw UpdateReplayError{UpdateReplayError::Kind::kDayOutOfRange, i,
                                u.timestamp};
      }
      ++tally.skipped_day_out_of_range;
      continue;
    }
    if (u.timestamp < watermark) {
      if (options.mode == ParseMode::kStrict) {
        throw UpdateReplayError{UpdateReplayError::Kind::kOutOfOrder, i,
                                u.timestamp};
      }
      ++tally.skipped_out_of_order;
      continue;
    }
    watermark = u.timestamp;
    // Accepted timestamps are non-decreasing, so the day only moves
    // forward; emit the finished day plus one snapshot per quiet day in
    // between, so every day in the span is represented.
    if (current_day >= 0 && day != current_day) {
      for (int d = current_day; d < day; ++d) {
        out.days.push_back(state.snapshot(d));
        ++tally.days_emitted;
        if (d > current_day) ++tally.quiet_days;
      }
    }
    current_day = day;
    state.apply(u);
    ++tally.applied;
  }
  if (current_day >= 0) {
    out.days.push_back(state.snapshot(current_day));
    ++tally.days_emitted;
  }
  tally.spurious_withdrawals = state.spurious_withdrawals();
  if (stats) *stats = tally;
  return out;
}

RibCollection replay_to_collection(const std::vector<UpdateMessage>& updates,
                                   std::uint64_t base_time) {
  return replay_to_collection(updates, ReplayOptions{.base_time = base_time});
}

std::vector<UpdateMessage> collection_to_updates(const RibCollection& collection,
                                                 std::uint64_t base_time) {
  std::vector<UpdateMessage> out;
  RibSnapshot previous;  // empty: day 0 becomes pure announcements
  for (const RibSnapshot& snap : collection.days) {
    std::uint64_t ts = base_time + static_cast<std::uint64_t>(snap.day) * 86400;
    auto updates = diff_snapshots(previous, snap, ts);
    out.insert(out.end(), updates.begin(), updates.end());
    previous = snap;
  }
  return out;
}

}  // namespace georank::bgp
