// Binary radix trie over IPv4 prefixes.
//
// Supports the pipeline's three structural queries (§3.1-§3.2.1):
//   * is a prefix ENTIRELY covered by more-specific announced prefixes?
//     (such prefixes are filtered before geolocation);
//   * longest-prefix match for an address;
//   * per-prefix "effective" address count: addresses for which the prefix
//     is the most specific announced one. Metrics weight paths by this
//     count so overlapping announcements never double-count addresses.
#pragma once

#include <cstdint>
#include <memory>
#include <optional>
#include <vector>

#include "bgp/prefix.hpp"

namespace georank::bgp {

class PrefixTrie {
 public:
  PrefixTrie();
  ~PrefixTrie();
  PrefixTrie(PrefixTrie&&) noexcept;
  PrefixTrie& operator=(PrefixTrie&&) noexcept;
  PrefixTrie(const PrefixTrie&) = delete;
  PrefixTrie& operator=(const PrefixTrie&) = delete;

  /// Returns true if the prefix was newly inserted.
  bool insert(const Prefix& prefix);

  [[nodiscard]] bool contains(const Prefix& prefix) const;
  [[nodiscard]] std::size_t size() const noexcept { return count_; }
  [[nodiscard]] bool empty() const noexcept { return count_ == 0; }

  /// Longest inserted prefix containing `ip`, if any.
  [[nodiscard]] std::optional<Prefix> most_specific_match(std::uint32_t ip) const;

  /// Number of addresses inside `prefix` covered by inserted prefixes that
  /// are STRICTLY more specific than `prefix`.
  [[nodiscard]] std::uint64_t covered_by_more_specifics(const Prefix& prefix) const;

  /// True iff every address of `prefix` lies inside a strictly more
  /// specific inserted prefix (§3.2.1 filter; 1.2% of the paper's data).
  [[nodiscard]] bool fully_covered_by_more_specifics(const Prefix& prefix) const {
    return covered_by_more_specifics(prefix) == prefix.size();
  }

  /// prefix.size() minus covered_by_more_specifics(prefix): the address
  /// weight an announcement of `prefix` contributes once more specifics
  /// are taken out.
  [[nodiscard]] std::uint64_t effective_size(const Prefix& prefix) const {
    return prefix.size() - covered_by_more_specifics(prefix);
  }

  /// Maximal sub-prefixes of `prefix` on which `prefix` itself is the most
  /// specific inserted prefix (the "non-overlapping blocks" of §3.2.1).
  [[nodiscard]] std::vector<Prefix> uncovered_blocks(const Prefix& prefix) const;

  /// All inserted prefixes, in trie (address) order.
  [[nodiscard]] std::vector<Prefix> all() const;

  struct Node;  // exposed for the implementation's free helpers only

 private:
  std::unique_ptr<Node> root_;
  std::size_t count_ = 0;
};

/// Total number of distinct addresses in a union of prefixes.
/// Interval-merge implementation, independent of the trie (used to
/// cross-check it in tests and for quick one-shot unions).
[[nodiscard]] std::uint64_t union_address_count(std::vector<Prefix> prefixes);

/// Minimal set of prefixes covering exactly the union of the input:
/// contained prefixes are dropped and adjacent siblings merged upward
/// ("10.0.0.0/17 + 10.0.128.0/17 -> 10.0.0.0/16"), recursively. Output
/// is sorted by address, then length.
[[nodiscard]] std::vector<Prefix> aggregate_prefixes(std::vector<Prefix> prefixes);

}  // namespace georank::bgp
