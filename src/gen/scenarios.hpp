// Prebuilt world specifications for the paper's experiments.
//
// `default_world_spec` is the workhorse: ~35 countries whose market
// structures encode public knowledge about each case-study country
// (incumbent split domestic/international ASes, challenger transit
// markets, multinational footprints, former-Soviet dependencies, ...).
// Absolute sizes are scaled down from the real Internet (documented in
// DESIGN.md); the structure — who serves whom — is what the metrics must
// recover.
//
// Three epochs reproduce the temporal studies:
//   kMarch2018   the earlier snapshot the paper's history references
//                (pre-TPG/Vocus consolidation, China Telecom strong in
//                Taiwan, a smaller Rostelecom);
//   kApril2021   baseline (the paper's main data set);
//   kMarch2023   after the Russia sanctions edits (Lumen/Cogent retreat)
//                and Taiwan's de-peering from China Telecom.
#pragma once

#include "gen/world_spec.hpp"

namespace georank::gen {

enum class Epoch { kMarch2018, kApril2021, kMarch2023 };

/// Display label, e.g. "20210401".
[[nodiscard]] const char* epoch_label(Epoch epoch);

/// The full evaluation world (Tables 3-14, Figures 4-10).
[[nodiscard]] WorldSpec default_world_spec(Epoch epoch = Epoch::kApril2021,
                                           std::uint64_t seed = 20210401);

/// A small, fast world for unit and integration tests: 4 countries,
/// a 3-AS clique, a couple hundred paths.
[[nodiscard]] WorldSpec mini_world_spec(std::uint64_t seed = 11);

/// Well-known ASNs used across the scenarios, for readable assertions.
namespace asn {
// Tier-1 / multinationals.
inline constexpr bgp::Asn kLumen = 3356, kArelion = 1299, kCogent = 174,
                          kNttAmerica = 2914, kGtt = 3257, kZayo = 6461,
                          kVodafone = 1273, kTelecomItalia = 6762, kAtt = 7018,
                          kVerizon = 701, kSprint = 1239, kTata = 6453,
                          kPccw = 3491, kOrange = 5511, kTelefonica = 12956;
// Tier-2 / regional powers.
inline constexpr bgp::Asn kHurricane = 6939, kRetn = 9002, kLiquid = 30844,
                          kMtnSa = 16637, kWiocc = 37662, kSingtel = 7473;
// Hypergiants.
inline constexpr bgp::Asn kAmazon = 16509, kAkamai = 20940, kGoogle = 15169;
// Australia.
inline constexpr bgp::Asn kTelstra = 1221, kTelstraIntl = 4637, kVocus = 4826,
                          kTpg = 7545, kOptus = 7474, kOptusIntl = 4804;
// Japan.
inline constexpr bgp::Asn kNttOcn = 4713, kKddi = 2516, kSoftbank = 17676;
// Russia.
inline constexpr bgp::Asn kRostelecom = 12389, kTransTelekom = 20485,
                          kMtsRu = 8359, kErTelecom = 9049, kVimpelcom = 3216,
                          kMegafon = 31133;
// Taiwan & China.
inline constexpr bgp::Asn kChunghwa = 3462, kChunghwaIntl = 9505,
                          kDataComm = 9680, kDigitalUnited = 4780,
                          kFarEasTone = 9674, kEducationTw = 1659,
                          kTaiwanFixed = 9924, kMinistryEduTw = 17717,
                          kChinaTelecom = 4134, kChinaUnicom = 4837;
// Route servers.
inline constexpr bgp::Asn kIxAustraliaRs = 24115, kMskIxRs = 8631,
                          kDeCixRs = 6695, kAmsIxRs = 6777, kLinxRs = 8714;
}  // namespace asn

}  // namespace georank::gen
