#include "gen/scenarios.hpp"

namespace georank::gen {

namespace {

using namespace asn;

CountryCode cc(const char* code) { return CountryCode::of(code); }

std::vector<MultinationalSpec> global_carriers() {
  // Tier 1: the transit-free clique.
  std::vector<MultinationalSpec> out = {
      {kLumen, "Lumen", cc("US"), 1, false},
      {kArelion, "Arelion", cc("SE"), 1, false},
      {kCogent, "Cogent", cc("US"), 1, false},
      {kNttAmerica, "NTT America", cc("US"), 1, false},
      {kGtt, "GTT", cc("US"), 1, false},
      {kZayo, "Zayo", cc("US"), 1, false},
      {kVodafone, "Vodafone", cc("GB"), 1, false},
      {kTelecomItalia, "Telecom Italia", cc("IT"), 1, false},
      {kAtt, "AT&T", cc("US"), 1, false},
      {kVerizon, "Verizon", cc("US"), 1, false},
      {kSprint, "Sprint", cc("US"), 1, false},
      {kTata, "TATA", cc("US"), 1, false},
      {kPccw, "PCCW", cc("US"), 1, false},
      {kOrange, "Orange", cc("FR"), 1, false},
      {kTelefonica, "Telefonica", cc("ES"), 1, false},
      // Tier 2.
      {kHurricane, "Hurricane", cc("US"), 2, /*liberal_peering=*/true},
      {kRetn, "RETN", cc("GB"), 2, false},
      {kLiquid, "Liquid", cc("GB"), 2, false},
      {kMtnSa, "MTN SA", cc("ZA"), 2, false},
      {kWiocc, "West Indian Ocean Cable", cc("MU"), 2, false},
      {kSingtel, "Singapore Telecom", cc("SG"), 2, false},
  };
  return out;
}

std::vector<HypergiantSpec> hypergiants() {
  auto origins = [](std::initializer_list<const char*> codes, double share) {
    std::vector<HypergiantSpec::Origin> out;
    for (const char* code : codes) out.push_back({cc(code), share});
    return out;
  };
  auto amazon = origins({"US", "AU", "JP", "DE", "GB", "BR", "SG", "IN"}, 0.04);
  // Akamai: marginal share in big markets, a double-digit slice of small
  // ones — which is what puts the Netherlands (its registration) on the
  // paper's Table 12 serving 26 countries.
  auto akamai = origins({"NL", "US", "GB", "DE", "FR", "JP"}, 0.03);
  auto akamai_small =
      origins({"CH", "AT", "SE", "NZ", "CL", "CO", "KR", "MA"}, 0.12);
  akamai.insert(akamai.end(), akamai_small.begin(), akamai_small.end());
  auto google = origins({"US", "GB", "DE", "BR", "SG", "AU"}, 0.03);
  return {
      {kAmazon, "Amazon", cc("US"), std::move(amazon)},
      {kAkamai, "Akamai", cc("NL"), std::move(akamai)},
      {kGoogle, "Google", cc("US"), std::move(google)},
  };
}

// ---------------------------------------------------------------- Europe

CountrySpec netherlands() {
  CountrySpec c;
  c.code = cc("NL");
  c.continent = "Eu";
  c.stub_count = 30;
  c.regional_isp_count = 6;
  c.address_budget = 1 << 20;
  c.vp_count = 35;
  c.multihop_vp_count = 6;
  c.incumbents = {{1136, "KPN", {}, "", 0.30, 0.25, {kArelion, kLumen}}};
  c.multinational_presence = {{kArelion, 0.20}, {kHurricane, 0.15},
                              {kVodafone, 0.15}, {kLumen, 0.15},
                              {kRetn, 0.10}};
  c.peering_density = 0.3;  // dense Dutch IXP scene
  c.route_server_asn = kAmsIxRs;
  return c;
}

CountrySpec united_kingdom() {
  CountrySpec c;
  c.code = cc("GB");
  c.continent = "Eu";
  c.stub_count = 45;
  c.regional_isp_count = 6;
  c.address_budget = 1 << 22;
  c.vp_count = 26;
  c.multihop_vp_count = 4;
  c.incumbents = {{2856, "BT", {}, "", 0.35, 0.30, {kVodafone, kArelion}}};
  c.multinational_presence = {{kVodafone, 0.20}, {kHurricane, 0.15},
                              {kLumen, 0.15}, {kArelion, 0.12},
                              {kRetn, 0.08}};
  c.peering_density = 0.25;
  c.route_server_asn = kLinxRs;
  return c;
}

CountrySpec germany() {
  CountrySpec c;
  c.code = cc("DE");
  c.continent = "Eu";
  c.stub_count = 45;
  c.regional_isp_count = 6;
  c.address_budget = 1 << 22;
  c.vp_count = 18;
  c.multihop_vp_count = 3;
  c.incumbents = {{3320, "Deutsche Telekom", {}, "", 0.40, 0.35,
                   {kLumen, kVerizon}}};
  c.multinational_presence = {{kArelion, 0.10}, {kHurricane, 0.15},
                              {kCogent, 0.12}, {kLumen, 0.12},
                              {kVerizon, 0.08}};
  c.peering_density = 0.25;
  c.route_server_asn = kDeCixRs;
  return c;
}

CountrySpec france() {
  CountrySpec c;
  c.code = cc("FR");
  c.continent = "Eu";
  c.stub_count = 30;
  c.regional_isp_count = 5;
  c.address_budget = 1 << 21;
  c.vp_count = 9;
  c.multihop_vp_count = 2;
  // The classic split: Orange domestic rides Orange International (5511),
  // which is a clique member.
  c.incumbents = {{3215, "Orange France", {}, "", 0.45, 0.40, {kOrange}}};
  c.multinational_presence = {{kOrange, 0.25}, {kArelion, 0.15},
                              {kHurricane, 0.12}, {kLumen, 0.10}};
  return c;
}

CountrySpec italy() {
  CountrySpec c;
  c.code = cc("IT");
  c.continent = "Eu";
  c.stub_count = 28;
  c.regional_isp_count = 5;
  c.address_budget = 1 << 21;
  c.vp_count = 9;
  c.multihop_vp_count = 2;
  c.incumbents = {{3269, "TIM", {}, "", 0.45, 0.40, {kTelecomItalia}}};
  c.multinational_presence = {{kTelecomItalia, 0.25}, {kArelion, 0.15},
                              {kHurricane, 0.10}};
  return c;
}

CountrySpec spain() {
  CountrySpec c;
  c.code = cc("ES");
  c.continent = "Eu";
  c.stub_count = 25;
  c.regional_isp_count = 4;
  c.address_budget = 1 << 20;
  c.vp_count = 4;
  c.multihop_vp_count = 1;
  c.incumbents = {{3352, "Telefonica de Espana", {}, "", 0.50, 0.40,
                   {kTelefonica}}};
  c.multinational_presence = {{kTelefonica, 0.25}, {kArelion, 0.12},
                              {kHurricane, 0.10}};
  return c;
}

CountrySpec sweden() {
  CountrySpec c;
  c.code = cc("SE");
  c.continent = "Eu";
  c.stub_count = 18;
  c.regional_isp_count = 4;
  c.address_budget = 1 << 20;
  c.vp_count = 6;
  c.multihop_vp_count = 1;
  c.incumbents = {{3301, "Telia Sweden", {}, "", 0.45, 0.35, {kArelion}}};
  c.multinational_presence = {{kArelion, 0.30}, {kHurricane, 0.12}};
  return c;
}

CountrySpec switzerland() {
  CountrySpec c;
  c.code = cc("CH");
  c.continent = "Eu";
  c.stub_count = 16;
  c.regional_isp_count = 4;
  c.address_budget = 1 << 19;
  c.vp_count = 11;
  c.multihop_vp_count = 2;
  c.incumbents = {{3303, "Swisscom", {}, "", 0.40, 0.35, {kLumen, kZayo}}};
  c.multinational_presence = {{kArelion, 0.15}, {kHurricane, 0.15},
                              {kLumen, 0.12}};
  c.peering_density = 0.3;
  return c;
}

CountrySpec austria() {
  CountrySpec c;
  c.code = cc("AT");
  c.continent = "Eu";
  c.stub_count = 14;
  c.regional_isp_count = 3;
  c.address_budget = 1 << 19;
  c.vp_count = 10;
  c.multihop_vp_count = 2;
  c.incumbents = {{8447, "A1 Telekom", {}, "", 0.45, 0.35,
                   {kTelecomItalia, kVerizon}}};
  c.multinational_presence = {{kArelion, 0.15}, {kHurricane, 0.12}};
  c.peering_density = 0.3;
  return c;
}

CountrySpec ukraine() {
  CountrySpec c;
  c.code = cc("UA");
  c.continent = "Eu";
  c.stub_count = 25;
  c.regional_isp_count = 5;
  c.address_budget = 1 << 20;
  c.vp_count = 4;
  c.multihop_vp_count = 1;
  // Western/central former republics do NOT depend on Russian carriers
  // (Figure 7): UA buys from European multinationals.
  c.incumbents = {{6849, "Ukrtelecom", {}, "", 0.30, 0.25, {kRetn, kArelion}}};
  c.multinational_presence = {{kRetn, 0.25}, {kArelion, 0.12},
                              {kTelecomItalia, 0.12}, {kHurricane, 0.10},
                              {kCogent, 0.08}};
  return c;
}

// --------------------------------------------------------------- America

CountrySpec united_states() {
  CountrySpec c;
  c.code = cc("US");
  c.continent = "No.Am";
  c.stub_count = 60;
  c.regional_isp_count = 10;
  c.address_budget = 1 << 24;
  c.vp_count = 25;
  c.multihop_vp_count = 4;
  // No incumbent: the US market is the multinationals' home market, with
  // Lumen the heaviest presence and Hurricane selling widely (§5.4).
  c.multinational_presence = {{kLumen, 0.28},  {kAtt, 0.18},
                              {kVerizon, 0.12}, {kCogent, 0.12},
                              {kGtt, 0.10},     {kZayo, 0.10},
                              {kArelion, 0.10}, {kHurricane, 0.14},
                              {kSprint, 0.06}};
  c.peering_density = 0.2;
  return c;
}

CountrySpec canada() {
  CountrySpec c;
  c.code = cc("CA");
  c.continent = "No.Am";
  c.stub_count = 25;
  c.regional_isp_count = 4;
  c.address_budget = 1 << 21;
  c.vp_count = 6;
  c.multihop_vp_count = 1;
  c.incumbents = {{577, "Bell Canada", {}, "", 0.35, 0.30, {kLumen, kVerizon}}};
  c.multinational_presence = {{kLumen, 0.20}, {kHurricane, 0.15},
                              {kCogent, 0.12}, {kZayo, 0.10}};
  return c;
}

CountrySpec mexico() {
  CountrySpec c;
  c.code = cc("MX");
  c.continent = "No.Am";
  c.stub_count = 25;
  c.regional_isp_count = 4;
  c.address_budget = 1 << 21;
  c.vp_count = 3;
  c.multihop_vp_count = 1;
  c.incumbents = {{8151, "Telmex", {}, "", 0.50, 0.40, {kLumen, kTelefonica}}};
  c.multinational_presence = {{kLumen, 0.18}, {kTelefonica, 0.15},
                              {kHurricane, 0.10}};
  return c;
}

CountrySpec brazil() {
  CountrySpec c;
  c.code = cc("BR");
  c.continent = "So.Am";
  c.stub_count = 35;
  c.regional_isp_count = 8;
  c.address_budget = 1 << 22;
  c.vp_count = 12;
  c.multihop_vp_count = 2;
  c.incumbents = {{4230, "Claro Embratel", {}, "", 0.30, 0.25,
                   {kLumen, kArelion}}};
  c.multinational_presence = {{kLumen, 0.20}, {kHurricane, 0.20},
                              {kTelefonica, 0.15}, {kCogent, 0.10}};
  c.peering_density = 0.3;  // IX.br effect
  return c;
}

CountrySpec argentina() {
  CountrySpec c;
  c.code = cc("AR");
  c.continent = "So.Am";
  c.stub_count = 20;
  c.regional_isp_count = 4;
  c.address_budget = 1 << 20;
  c.vp_count = 3;
  c.multihop_vp_count = 1;
  c.incumbents = {{7303, "Telecom Argentina", {}, "", 0.40, 0.30,
                   {kTelefonica, kLumen}}};
  c.multinational_presence = {{kTelefonica, 0.25}, {kLumen, 0.15},
                              {kHurricane, 0.08}};
  return c;
}

CountrySpec chile() {
  CountrySpec c;
  c.code = cc("CL");
  c.continent = "So.Am";
  c.stub_count = 15;
  c.regional_isp_count = 3;
  c.address_budget = 1 << 19;
  c.vp_count = 3;
  c.multihop_vp_count = 1;
  c.incumbents = {{27651, "Entel Chile", {}, "", 0.40, 0.30,
                   {kTelefonica, kLumen}}};
  c.multinational_presence = {{kTelefonica, 0.22}, {kLumen, 0.15}};
  return c;
}

CountrySpec colombia() {
  CountrySpec c;
  c.code = cc("CO");
  c.continent = "So.Am";
  c.stub_count = 18;
  c.regional_isp_count = 3;
  c.address_budget = 1 << 19;
  c.vp_count = 3;
  c.multihop_vp_count = 1;
  c.incumbents = {{10620, "Claro Colombia", {}, "", 0.40, 0.30,
                   {kTelefonica, kLumen}}};
  c.multinational_presence = {{kTelefonica, 0.22}, {kLumen, 0.15}};
  return c;
}

// ------------------------------------------------------------------ Asia

CountrySpec japan() {
  CountrySpec c;
  c.code = cc("JP");
  c.continent = "As";
  c.stub_count = 25;
  c.regional_isp_count = 5;
  c.address_budget = 1 << 22;
  c.vp_count = 7;
  c.multihop_vp_count = 1;
  // NTT split: OCN (4713) rides NTT America (2914, clique). KDDI and
  // Softbank multihome through distinct multinationals (§5.2); GTT's big
  // CCI slot comes from PARTIAL transit over the Japanese majors.
  c.incumbents = {
      {kNttOcn, "NTT OCN", {}, "", 0.25, 0.15, {kNttAmerica}},
      {kKddi, "KDDI", {}, "", 0.36, 0.27, {kNttAmerica}},
      {kSoftbank, "Softbank", {}, "", 0.23, 0.23, {kLumen, kNttAmerica}},
  };
  c.partial_transit = {{kGtt, kKddi, 0.25},
                       {kGtt, kSoftbank, 0.25},
                       {kGtt, kNttOcn, 0.20}};
  c.multinational_presence = {{kNttAmerica, 0.25}, {kGtt, 0.10},
                              {kHurricane, 0.08}, {kCogent, 0.06}};
  return c;
}

CountrySpec south_korea() {
  CountrySpec c;
  c.code = cc("KR");
  c.continent = "As";
  c.stub_count = 25;
  c.regional_isp_count = 4;
  c.address_budget = 1 << 21;
  c.vp_count = 4;
  c.multihop_vp_count = 1;
  c.incumbents = {{4766, "Korea Telecom", {}, "", 0.45, 0.35,
                   {kNttAmerica, kLumen}}};
  c.multinational_presence = {{kNttAmerica, 0.15}, {kLumen, 0.12},
                              {kPccw, 0.10}};
  return c;
}

CountrySpec india() {
  CountrySpec c;
  c.code = cc("IN");
  c.continent = "As";
  c.stub_count = 40;
  c.regional_isp_count = 6;
  c.address_budget = 1 << 22;
  c.vp_count = 4;
  c.multihop_vp_count = 1;
  c.incumbents = {{9498, "Bharti Airtel", {}, "", 0.35, 0.30, {kTata}},
                  {9829, "BSNL", {}, "", 0.30, 0.25, {kTata, kSprint}}};
  c.multinational_presence = {{kTata, 0.25}, {kArelion, 0.10},
                              {kHurricane, 0.08}};
  return c;
}

CountrySpec singapore() {
  CountrySpec c;
  c.code = cc("SG");
  c.continent = "As";
  c.stub_count = 20;
  c.regional_isp_count = 4;
  c.address_budget = 1 << 19;
  c.vp_count = 10;
  c.multihop_vp_count = 2;
  c.incumbents = {{3758, "SingNet", {}, "", 0.35, 0.30, {kSingtel}},
                  {4657, "StarHub", {}, "", 0.25, 0.20, {kSingtel, kTata}}};
  c.multinational_presence = {{kSingtel, 0.25}, {kHurricane, 0.12},
                              {kTata, 0.10}, {kPccw, 0.08}};
  c.peering_density = 0.3;
  return c;
}

CountrySpec china(Epoch /*epoch*/) {
  CountrySpec c;
  c.code = cc("CN");
  c.continent = "As";
  c.stub_count = 50;
  c.regional_isp_count = 6;
  c.address_budget = 1 << 23;
  c.vp_count = 2;
  c.multihop_vp_count = 1;
  c.incumbents = {
      {kChinaTelecom, "China Telecom", {}, "", 0.50, 0.40, {kLumen, kArelion}},
      {kChinaUnicom, "China Unicom", {}, "", 0.30, 0.30, {kArelion, kPccw}}};
  c.multinational_presence = {{kPccw, 0.12}, {kNttAmerica, 0.10}};
  return c;
}

CountrySpec taiwan(Epoch epoch) {
  CountrySpec c;
  c.code = cc("TW");
  c.continent = "As";
  c.stub_count = 30;
  c.regional_isp_count = 5;
  c.address_budget = 1 << 20;
  c.vp_count = 7;
  c.multihop_vp_count = 1;
  c.incumbents = {
      {kChunghwa, "Chunghwa", kChunghwaIntl, "Chunghwa Intl", 0.40, 0.40, {},
       {kLumen, kArelion}},
      {kDataComm, "Data Communication", {}, "", 0.18, 0.12,
       {kChunghwaIntl, kCogent}},
      {kDigitalUnited, "Digital United", {}, "", 0.12, 0.10, {kPccw, kCogent}},
      {kFarEasTone, "Far EasTone", {}, "", 0.10, 0.08, {kTelstraIntl, kSprint}},
      {kEducationTw, "Education Broadband", {}, "", 0.05, 0.06, {kChunghwaIntl}},
      {kTaiwanFixed, "Taiwan Fixed", {}, "", 0.08, 0.06, {kTelstraIntl, kLumen}},
      {kMinistryEduTw, "Ministry of Education", {}, "", 0.02, 0.03,
       {kEducationTw}},
  };
  // Until 2023, China Telecom held (partial) transit relationships with
  // several Taiwanese majors — the reason its 2021 CCI reached #7 with a
  // 64% cone (§6.2) before vanishing from the top ranks.
  if (epoch != Epoch::kMarch2023) {
    c.partial_transit = {{kChinaTelecom, kDataComm, 0.20},
                         {kChinaTelecom, kDigitalUnited, 0.25},
                         {kChinaTelecom, kTaiwanFixed, 0.25},
                         {kChinaTelecom, kFarEasTone, 0.20}};
  }
  if (epoch == Epoch::kMarch2018) {
    // 2018: China Telecom's Taiwanese transit business at its peak.
    c.multinational_presence = {{kChinaTelecom, 0.22}, {kCogent, 0.10},
                                {kPccw, 0.10},        {kSprint, 0.08},
                                {kHurricane, 0.05}};
  } else if (epoch == Epoch::kApril2021) {
    // 2021: China Telecom still sold transit into Taiwan (CCI #7, §6.2).
    c.multinational_presence = {{kChinaTelecom, 0.15}, {kCogent, 0.12},
                                {kPccw, 0.10},        {kSprint, 0.08},
                                {kHurricane, 0.06}};
  } else {
    // 2023: China Telecom dropped out of the Taiwanese transit market.
    c.multinational_presence = {{kCogent, 0.15}, {kPccw, 0.10},
                                {kSprint, 0.06}, {kHurricane, 0.08},
                                {kVerizon, 0.06}};
  }
  return c;
}

CountrySpec kazakhstan() {
  CountrySpec c;
  c.code = cc("KZ");
  c.continent = "As";
  c.stub_count = 12;
  c.regional_isp_count = 3;
  c.address_budget = 1 << 19;
  c.vp_count = 2;
  c.multihop_vp_count = 1;
  // Former-Soviet dependency on Russian carriers (Figure 7).
  c.incumbents = {{9198, "Kazakhtelecom", {}, "", 0.50, 0.40,
                   {kTransTelekom, kRostelecom}}};
  c.multinational_presence = {{kTransTelekom, 0.25}, {kRostelecom, 0.20},
                              {kArelion, 0.08}};
  return c;
}

CountrySpec kyrgyzstan() {
  CountrySpec c;
  c.code = cc("KG");
  c.continent = "As";
  c.stub_count = 8;
  c.regional_isp_count = 2;
  c.address_budget = 1 << 18;
  c.vp_count = 1;
  c.multihop_vp_count = 0;
  c.incumbents = {{8511, "Kyrgyztelecom", {}, "", 0.50, 0.40,
                   {kRostelecom, kTransTelekom}}};
  c.multinational_presence = {{kRostelecom, 0.30}, {kTransTelekom, 0.20}};
  return c;
}

CountrySpec tajikistan() {
  CountrySpec c;
  c.code = cc("TJ");
  c.continent = "As";
  c.stub_count = 6;
  c.regional_isp_count = 2;
  c.address_budget = 1 << 18;
  c.vp_count = 1;
  c.multihop_vp_count = 0;
  c.incumbents = {{43197, "Tojiktelecom", {}, "", 0.50, 0.40,
                   {kRostelecom, kTransTelekom}}};
  c.multinational_presence = {{kRostelecom, 0.30}, {kTransTelekom, 0.25}};
  return c;
}

CountrySpec turkmenistan() {
  CountrySpec c;
  c.code = cc("TM");
  c.continent = "As";
  c.stub_count = 4;
  c.regional_isp_count = 1;
  c.address_budget = 1 << 17;
  c.vp_count = 1;
  c.multihop_vp_count = 0;
  c.incumbents = {{20661, "Turkmentelecom", {}, "", 0.60, 0.50,
                   {kRostelecom, kTransTelekom}}};
  c.multinational_presence = {{kRostelecom, 0.35}, {kTransTelekom, 0.25}};
  return c;
}

// ---------------------------------------------------------------- Russia

CountrySpec russia(Epoch epoch) {
  CountrySpec c;
  c.code = cc("RU");
  c.continent = "Eu";
  c.stub_count = 50;
  c.regional_isp_count = 8;
  c.address_budget = 1 << 21;
  c.vp_count = 7;
  c.multihop_vp_count = 1;
  // Major Russian carriers buy full transit from EUROPEAN multinationals;
  // Lumen (and GTT) hold thin PARTIAL relationships with them — so
  // Lumen's cone covers nearly all of Russia (97% CCI, Table 10) while
  // the actual-path metrics (AHI/AHN/CCN) stay Russian/European-led
  // (§5.3).
  c.incumbents = {
      // Rostelecom multihomes widely (no single foreign upstream
      // dominates its inbound paths) and wholesales to smaller majors.
      {kRostelecom, "Rostelecom", {}, "", 0.40, 0.32,
       {kTelecomItalia, kOrange, kPccw, kTata}},
      {kMtsRu, "MTS PJSC", {}, "", 0.18, 0.16, {kVodafone, kRetn}},
      {kErTelecom, "ER-Telecom", {}, "", 0.13, 0.11, {kRetn, kTelecomItalia}},
      {kVimpelcom, "Vimpelcom", {}, "", 0.10, 0.09, {kTelecomItalia, kOrange}},
      {kMegafon, "MegaFon", {}, "", 0.09, 0.08, {kRetn, kTelecomItalia}},
  };
  c.challengers = {
      // TransTelekom: the Vocus-style transit challenger, riding Vodafone
      // (whence Vodafone's top CCN slot in Table 7). It wholesales
      // PARTIALLY to other Russian majors: big cone, few actual paths.
      {kTransTelekom, "TransTelekom", 0.06, 0.05, {kVodafone, kRetn},
       /*also_transits=*/{{kVimpelcom, 0.6}, {kMegafon, 0.6}, {kMtsRu, 0.55},
                          {kErTelecom, 0.5}}},
  };
  c.partial_transit = {
      // Lumen's thin relationships with every Russian major: CCI ~97%
      // with single-digit AHI (Table 7 / Table 10). These persist into
      // 2023 — Lumen stopped selling IN Russia but still connects the
      // Russian carriers abroad (§6.1).
      {kLumen, kRostelecom, 0.12}, {kLumen, kMtsRu, 0.12},
      {kLumen, kTransTelekom, 0.12}, {kLumen, kErTelecom, 0.12},
      {kLumen, kVimpelcom, 0.12}, {kLumen, kMegafon, 0.12},
      // Rostelecom's wholesale arm.
      {kRostelecom, kErTelecom, 0.30}, {kRostelecom, kMegafon, 0.30},
      {kRostelecom, kVimpelcom, 0.20},
  };
  if (epoch != Epoch::kMarch2023) {
    // GTT's Russian relationships ended by 2023 (it drops out of the CCI
    // top-10 in Table 10); Orange picked up some of the slack.
    c.partial_transit.push_back({kGtt, kRostelecom, 0.10});
    c.partial_transit.push_back({kGtt, kVimpelcom, 0.10});
  } else {
    c.partial_transit.push_back({kOrange, kRostelecom, 0.10});
    c.partial_transit.push_back({kOrange, kMegafon, 0.10});
  }
  // Sparse domestic major peering: Russian domestic paths leak onto
  // foreign transit, so foreign carriers appear even in the CCN (§5.3).
  c.major_peering = 0.15;
  if (epoch != Epoch::kMarch2023) {
    c.multinational_presence = {{kRetn, 0.15}, {kArelion, 0.12},
                                {kLumen, 0.10}, {kCogent, 0.08},
                                {kGtt, 0.08},   {kTelecomItalia, 0.06}};
  } else {
    // March 2023: Lumen and Cogent stopped selling inside Russia, but the
    // structural dependence on foreign transit remains (§6.1, Table 10).
    c.multinational_presence = {{kRetn, 0.18}, {kArelion, 0.15},
                                {kCogent, 0.10},  // still connects abroad
                                {kTelecomItalia, 0.08}, {kOrange, 0.06}};
  }
  c.peering_density = 0.2;
  c.route_server_asn = kMskIxRs;
  return c;
}

// ------------------------------------------------------------- Australia

CountrySpec australia(Epoch epoch) {
  CountrySpec c;
  c.code = cc("AU");
  c.continent = "Oc";
  c.stub_count = 35;
  c.regional_isp_count = 6;
  c.address_budget = 1 << 20;
  c.vp_count = 8;
  c.multihop_vp_count = 2;
  c.incumbents = {
      // The paper's flagship example: Telstra's split ASes (§5.1).
      {kTelstra, "Telstra", kTelstraIntl, "Telstra Intl", 0.25, 0.28, {},
       {kGtt}},
      {kTpg, "TPG", {}, "", 0.20, 0.22, {kArelion, kZayo}},
      {kOptus, "SingTel Optus", kOptusIntl, "SingTel Optus Intl", 0.15, 0.13,
       {}, {kSingtel}},
  };
  if (epoch == Epoch::kMarch2018) {
    // 2018: pre-consolidation Vocus — smaller wholesale footprint.
    c.challengers = {
        {kVocus, "Vocus", 0.45, 0.04, {kArelion, kZayo},
         /*also_transits=*/{{kTpg, 0.25}}},
    };
  } else {
    c.challengers = {
        // Vocus: a huge transit cone (the paper's ~80% of AU space) with
        // little address space of its own. TPG and Optus are PARTIAL
        // customers: their full space joins Vocus's cone while most of
        // their actual paths bypass it — cone >> hegemony (§1.1, §5.1).
        {kVocus, "Vocus", 0.60, 0.04, {kArelion, kZayo, kLumen},
         /*also_transits=*/{{kTpg, 0.35}, {kOptus, 0.35}}},
    };
  }
  c.multinational_presence = {{kSingtel, 0.10}, {kHurricane, 0.08},
                              {kArelion, 0.06}};
  c.peering_density = 0.25;
  c.route_server_asn = kIxAustraliaRs;
  return c;
}

CountrySpec new_zealand() {
  CountrySpec c;
  c.code = cc("NZ");
  c.continent = "Oc";
  c.stub_count = 15;
  c.regional_isp_count = 3;
  c.address_budget = 1 << 19;
  c.vp_count = 4;
  c.multihop_vp_count = 1;
  c.incumbents = {{4771, "Spark NZ", {}, "", 0.40, 0.30,
                   {kTelstraIntl, kSingtel}}};
  c.multinational_presence = {{kTelstraIntl, 0.25}, {kSingtel, 0.15},
                              {kHurricane, 0.12}, {kVerizon, 0.08}};
  return c;
}

CountrySpec fiji() {
  CountrySpec c;
  c.code = cc("FJ");
  c.continent = "Oc";
  c.stub_count = 4;
  c.regional_isp_count = 1;
  c.address_budget = 1 << 17;
  c.vp_count = 1;
  c.multihop_vp_count = 0;
  c.incumbents = {{45355, "Telecom Fiji", {}, "", 0.50, 0.40,
                   {kTelstraIntl, kSingtel}}};
  c.multinational_presence = {{kTelstraIntl, 0.30}, {kSingtel, 0.20}};
  return c;
}

CountrySpec papua_new_guinea() {
  CountrySpec c;
  c.code = cc("PG");
  c.continent = "Oc";
  c.stub_count = 4;
  c.regional_isp_count = 1;
  c.address_budget = 1 << 17;
  c.vp_count = 1;
  c.multihop_vp_count = 0;
  c.incumbents = {{139898, "Telikom PNG", {}, "", 0.50, 0.40,
                   {kTelstraIntl, kSingtel}}};
  c.multinational_presence = {{kTelstraIntl, 0.30}};
  return c;
}

// ---------------------------------------------------------------- Africa

CountrySpec south_africa() {
  CountrySpec c;
  c.code = cc("ZA");
  c.continent = "Af";
  c.stub_count = 14;
  c.regional_isp_count = 4;
  c.address_budget = 1 << 20;
  c.vp_count = 11;
  c.multihop_vp_count = 2;
  c.incumbents = {{5713, "Telkom SA", {}, "", 0.40, 0.30, {kLumen, kArelion}}};
  c.multinational_presence = {{kMtnSa, 0.25}, {kLiquid, 0.15},
                              {kHurricane, 0.12}, {kWiocc, 0.08}};
  c.peering_density = 0.3;
  return c;
}

CountrySpec kenya() {
  CountrySpec c;
  c.code = cc("KE");
  c.continent = "Af";
  c.stub_count = 12;
  c.regional_isp_count = 3;
  c.address_budget = 1 << 18;
  c.vp_count = 3;
  c.multihop_vp_count = 1;
  c.incumbents = {{33771, "Safaricom", {}, "", 0.35, 0.30, {kLiquid, kWiocc}}};
  c.multinational_presence = {{kLiquid, 0.30}, {kMtnSa, 0.22},
                              {kWiocc, 0.25}, {kHurricane, 0.06}};
  return c;
}

CountrySpec uganda() {
  CountrySpec c;
  c.code = cc("UG");
  c.continent = "Af";
  c.stub_count = 8;
  c.regional_isp_count = 2;
  c.address_budget = 1 << 17;
  c.vp_count = 1;
  c.multihop_vp_count = 0;
  c.incumbents = {{21491, "Uganda Telecom", {}, "", 0.40, 0.30,
                   {kLiquid, kMtnSa}}};
  c.multinational_presence = {{kLiquid, 0.30}, {kMtnSa, 0.30}, {kWiocc, 0.22}};
  return c;
}

CountrySpec morocco() {
  CountrySpec c;
  c.code = cc("MA");
  c.continent = "Af";
  c.stub_count = 10;
  c.regional_isp_count = 2;
  c.address_budget = 1 << 18;
  c.vp_count = 1;
  c.multihop_vp_count = 0;
  c.incumbents = {{6713, "Maroc Telecom", {}, "", 0.55, 0.45,
                   {kOrange, kTelefonica}}};
  c.multinational_presence = {{kOrange, 0.30}, {kTelefonica, 0.12}};
  return c;
}

CountrySpec ivory_coast() {
  CountrySpec c;
  c.code = cc("CI");
  c.continent = "Af";
  c.stub_count = 8;
  c.regional_isp_count = 2;
  c.address_budget = 1 << 17;
  c.vp_count = 1;
  c.multihop_vp_count = 0;
  c.incumbents = {{29571, "Orange Cote d'Ivoire", {}, "", 0.55, 0.45,
                   {kOrange}}};
  c.multinational_presence = {{kOrange, 0.35}, {kLiquid, 0.10}};
  return c;
}

CountrySpec tunisia() {
  CountrySpec c;
  c.code = cc("TN");
  c.continent = "Af";
  c.stub_count = 8;
  c.regional_isp_count = 2;
  c.address_budget = 1 << 17;
  c.vp_count = 1;
  c.multihop_vp_count = 0;
  c.incumbents = {{2609, "Tunisie Telecom", {}, "", 0.55, 0.45,
                   {kTelecomItalia, kOrange}}};
  c.multinational_presence = {{kTelecomItalia, 0.30}, {kOrange, 0.15}};
  return c;
}

CountrySpec egypt() {
  CountrySpec c;
  c.code = cc("EG");
  c.continent = "Af";
  c.stub_count = 15;
  c.regional_isp_count = 3;
  c.address_budget = 1 << 19;
  c.vp_count = 2;
  c.multihop_vp_count = 1;
  c.incumbents = {{8452, "Telecom Egypt", {}, "", 0.50, 0.40,
                   {kTelecomItalia, kVodafone}}};
  c.multinational_presence = {{kVodafone, 0.20}, {kTelecomItalia, 0.15},
                              {kHurricane, 0.06}};
  return c;
}

CountrySpec mauritius() {
  CountrySpec c;
  c.code = cc("MU");
  c.continent = "Af";
  c.stub_count = 5;
  c.regional_isp_count = 1;
  c.address_budget = 1 << 17;
  c.vp_count = 1;
  c.multihop_vp_count = 0;
  c.incumbents = {{23889, "Mauritius Telecom", {}, "", 0.50, 0.40,
                   {kWiocc, kOrange}}};
  c.multinational_presence = {{kWiocc, 0.35}, {kLiquid, 0.10}};
  return c;
}

}  // namespace

const char* epoch_label(Epoch epoch) {
  switch (epoch) {
    case Epoch::kMarch2018: return "20180301";
    case Epoch::kApril2021: return "20210401";
    case Epoch::kMarch2023: return "20230301";
  }
  return "?";
}

WorldSpec default_world_spec(Epoch epoch, std::uint64_t seed) {
  WorldSpec spec;
  spec.seed = seed;
  spec.multinationals = global_carriers();
  spec.hypergiants = hypergiants();
  spec.countries = {
      // Order fixes ASN auto-allocation; keep stable across epochs.
      australia(epoch),
      japan(),
      russia(epoch),
      united_states(),
      taiwan(epoch),
      china(epoch),
      netherlands(),
      united_kingdom(),
      germany(),
      france(),
      italy(),
      spain(),
      sweden(),
      switzerland(),
      austria(),
      ukraine(),
      canada(),
      mexico(),
      brazil(),
      argentina(),
      chile(),
      colombia(),
      south_korea(),
      india(),
      singapore(),
      kazakhstan(),
      kyrgyzstan(),
      tajikistan(),
      turkmenistan(),
      new_zealand(),
      fiji(),
      papua_new_guinea(),
      south_africa(),
      kenya(),
      uganda(),
      morocco(),
      ivory_coast(),
      tunisia(),
      egypt(),
      mauritius(),
  };
  return spec;
}

WorldSpec mini_world_spec(std::uint64_t seed) {
  using namespace asn;
  WorldSpec spec;
  spec.seed = seed;
  spec.multinationals = {
      {kLumen, "Lumen", cc("US"), 1, false},
      {kArelion, "Arelion", cc("SE"), 1, false},
      {kCogent, "Cogent", cc("US"), 1, false},
      {kHurricane, "Hurricane", cc("US"), 2, true},
  };
  spec.hypergiants = {
      {kAmazon, "Amazon", cc("US"), {{cc("US"), 0.05}, {cc("AU"), 0.05}}},
  };

  CountrySpec au;
  au.code = cc("AU");
  au.continent = "Oc";
  au.stub_count = 10;
  au.regional_isp_count = 2;
  au.address_budget = 1 << 18;
  au.vp_count = 4;
  au.multihop_vp_count = 1;
  au.incumbents = {{kTelstra, "Telstra", kTelstraIntl, "Telstra Intl", 0.4,
                    0.35, {}}};
  au.challengers = {{kVocus, "Vocus", 0.45, 0.05, {kArelion, kLumen}}};
  au.route_server_asn = kIxAustraliaRs;

  CountrySpec us;
  us.code = cc("US");
  us.continent = "No.Am";
  us.stub_count = 12;
  us.regional_isp_count = 3;
  us.address_budget = 1 << 20;
  us.vp_count = 6;
  us.multihop_vp_count = 1;
  us.multinational_presence = {{kLumen, 0.4}, {kCogent, 0.2}, {kHurricane, 0.15}};

  CountrySpec jp;
  jp.code = cc("JP");
  jp.continent = "As";
  jp.stub_count = 8;
  jp.regional_isp_count = 2;
  jp.address_budget = 1 << 19;
  jp.vp_count = 3;
  jp.multihop_vp_count = 1;
  jp.incumbents = {{kNttOcn, "NTT OCN", {}, "", 0.5, 0.3, {kLumen}},
                   {kKddi, "KDDI", {}, "", 0.3, 0.25, {kArelion}}};

  CountrySpec de;
  de.code = cc("DE");
  de.continent = "Eu";
  de.stub_count = 8;
  de.regional_isp_count = 2;
  de.address_budget = 1 << 19;
  de.vp_count = 4;
  de.multihop_vp_count = 1;
  de.incumbents = {{3320, "Deutsche Telekom", {}, "", 0.5, 0.35,
                    {kArelion, kLumen}}};
  de.route_server_asn = kDeCixRs;

  spec.countries = {au, us, jp, de};
  return spec;
}

}  // namespace georank::gen
