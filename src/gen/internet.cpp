#include "gen/internet.hpp"

#include <algorithm>
#include <cmath>
#include <string>
#include <utility>
#include <vector>

#include "topo/route_propagation.hpp"
#include "util/rng.hpp"

namespace georank::gen {

namespace {

constexpr bgp::Asn kFirstAsn = 1000;
constexpr std::uint32_t kAddressBase = 0x10000000u;  // 16.0.0.0
constexpr std::uint32_t kVpAddressBase = 0x0A000000u;  // below every geo region
constexpr bgp::Asn kBogusFirst = 4200000000u;
constexpr bgp::Asn kBogusLast = 4200999999u;

// SplitMix64 finalizer: the stateless hash behind feed sampling and
// per-VP tiebreak salts (Pcg32 is for the sequential construction).
std::uint64_t mix64(std::uint64_t x) noexcept {
  x += 0x9e3779b97f4a7c15ull;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ull;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebull;
  return x ^ (x >> 31);
}

// Synthetic ISO-like codes "AA", "AB", ... in Zipf-rank order.
geo::CountryCode code_of(std::size_t k) {
  const char text[2] = {static_cast<char>('A' + k / 26),
                        static_cast<char>('A' + k % 26)};
  return geo::CountryCode::of(std::string_view{text, 2});
}

/// Splits `total` across Zipf weights 1/(k+1)^0.85 by largest remainder,
/// then raises every share to `floor_each` (taken from the largest
/// shares, which can absorb it).
std::vector<std::size_t> zipf_split(std::size_t total, std::size_t buckets,
                                    std::size_t floor_each) {
  std::vector<double> weight(buckets);
  double sum = 0.0;
  for (std::size_t k = 0; k < buckets; ++k) {
    weight[k] = 1.0 / std::pow(static_cast<double>(k + 1), 0.85);
    sum += weight[k];
  }
  std::vector<std::size_t> share(buckets);
  std::vector<std::pair<double, std::size_t>> remainder(buckets);
  std::size_t given = 0;
  for (std::size_t k = 0; k < buckets; ++k) {
    const double exact = static_cast<double>(total) * weight[k] / sum;
    share[k] = static_cast<std::size_t>(exact);
    given += share[k];
    remainder[k] = {exact - static_cast<double>(share[k]), k};
  }
  std::sort(remainder.begin(), remainder.end(),
            [](const auto& a, const auto& b) {
              if (a.first != b.first) return a.first > b.first;
              return a.second < b.second;
            });
  for (std::size_t i = 0; given < total; i = (i + 1) % buckets) {
    ++share[remainder[i].second];
    ++given;
  }
  for (std::size_t k = buckets; k-- > 0;) {
    while (share[k] < floor_each) {
      // Take from the largest bucket that can spare one.
      std::size_t donor = 0;
      for (std::size_t j = 0; j < buckets; ++j) {
        if (share[j] > share[donor]) donor = j;
      }
      if (share[donor] <= floor_each) break;  // nothing left to move
      --share[donor];
      ++share[k];
    }
  }
  return share;
}

}  // namespace

std::size_t InternetSpec::as_count() const {
  return std::max<std::size_t>(60, static_cast<std::size_t>(std::llround(750.0 * scale)));
}

std::size_t InternetSpec::prefix_target() const {
  return std::max<std::size_t>(
      as_count(), static_cast<std::size_t>(std::llround(10000.0 * scale)));
}

std::size_t InternetSpec::country_count() const {
  const double c = 30.0 * std::pow(std::max(scale, 0.01), 0.35);
  return std::clamp<std::size_t>(static_cast<std::size_t>(std::llround(c)), 8, 230);
}

std::size_t InternetSpec::clique_size() const {
  const double k = 10.0 + 1.5 * std::log2(std::max(scale, 1.0));
  const std::size_t cap = std::max<std::size_t>(as_count() / 6, 4);
  return std::min(std::clamp<std::size_t>(
                      static_cast<std::size_t>(std::llround(k)), 4, 20),
                  cap);
}

std::size_t InternetSpec::vp_count() const {
  const double v = 60.0 * std::pow(std::max(scale, 0.01), 0.4);
  return std::clamp<std::size_t>(static_cast<std::size_t>(std::llround(v)), 12, 1200);
}

double InternetSpec::feeds_per_prefix() const { return 8.0; }

InternetSpec internet_spec(double scale, std::uint64_t seed) {
  InternetSpec spec;
  spec.scale = scale;
  spec.seed = seed;
  return spec;
}

InternetScaleGenerator::InternetScaleGenerator(InternetSpec spec)
    : spec_(spec) {}

World InternetScaleGenerator::generate() const {
  World world;
  util::Pcg32 root(spec_.seed);
  util::Pcg32 topo_rng = root.fork();
  util::Pcg32 prefix_rng = root.fork();

  const std::size_t n_as = spec_.as_count();
  const std::size_t n_countries = spec_.country_count();
  const std::size_t n_clique = spec_.clique_size();

  // ---- Countries: Zipf-sized AS populations, largest first. ----------
  std::vector<geo::CountryCode> countries(n_countries);
  for (std::size_t k = 0; k < n_countries; ++k) countries[k] = code_of(k);
  const std::vector<std::size_t> ases_per_country =
      zipf_split(n_as, n_countries, 2);

  static constexpr const char* kContinents[6] = {"Africa",  "Asia",
                                                 "Europe",  "N. America",
                                                 "Oceania", "S. America"};
  for (std::size_t k = 0; k < n_countries; ++k) {
    world.continents[countries[k]] = kContinents[k % 6];
  }

  // ---- AS slots: per country, tier-1s then transits then stubs. ------
  // The tier-1 clique lives in the largest few countries (round-robin),
  // matching the concentration of real tier-1 headquarters.
  struct Slot {
    bgp::Asn asn = 0;
    std::size_t country = 0;
    AsRole role = AsRole::kStub;
  };
  const std::size_t clique_homes = std::min<std::size_t>(n_countries, 6);
  std::vector<std::size_t> tier1_in(n_countries, 0);
  for (std::size_t i = 0; i < n_clique; ++i) ++tier1_in[i % clique_homes];

  std::vector<Slot> slots;
  slots.reserve(n_as);
  std::vector<std::vector<bgp::Asn>> transit_of(n_countries);
  bgp::Asn next_asn = kFirstAsn;
  for (std::size_t k = 0; k < n_countries; ++k) {
    const std::size_t n_k = ases_per_country[k];
    const std::size_t t1 = std::min(tier1_in[k], n_k > 0 ? n_k - 1 : 0);
    // ~12% of a country's ASes provide transit (tier-1s count toward it).
    std::size_t transit = std::max<std::size_t>(
        1, static_cast<std::size_t>(std::llround(0.12 * static_cast<double>(n_k))));
    transit = std::clamp(transit, t1 + (t1 == 0 ? 1 : 0), n_k);
    for (std::size_t i = 0; i < n_k; ++i) {
      Slot s;
      s.asn = next_asn++;
      s.country = k;
      s.role = i < t1            ? AsRole::kTier1
               : i < transit     ? AsRole::kTier2
                                 : AsRole::kStub;
      if (s.role != AsRole::kStub) transit_of[k].push_back(s.asn);
      slots.push_back(s);
    }
  }

  // ---- Topology: clique mesh + preferential attachment. --------------
  for (const Slot& s : slots) world.graph.add_as(s.asn);
  std::vector<bgp::Asn> clique;
  for (const Slot& s : slots) {
    if (s.role == AsRole::kTier1) clique.push_back(s.asn);
  }
  std::sort(clique.begin(), clique.end());
  for (std::size_t i = 0; i < clique.size(); ++i) {
    for (std::size_t j = i + 1; j < clique.size(); ++j) {
      world.graph.add_p2p(clique[i], clique[j]);
    }
  }
  world.clique = clique;

  // Degree-repeated candidate pools: an AS appears once when it becomes
  // a transit and once more per customer it gains, so provider choice is
  // proportional to (1 + customer degree) — preferential attachment, the
  // mechanism behind the measured power-law transit degrees.
  std::vector<bgp::Asn> global_pool;
  std::vector<std::vector<bgp::Asn>> country_pool(n_countries);
  for (const Slot& s : slots) {
    if (s.role != AsRole::kTier1) continue;
    for (int r = 0; r < 3; ++r) global_pool.push_back(s.asn);  // head start
    country_pool[s.country].push_back(s.asn);
  }

  auto pick_provider = [&](util::Pcg32& rng, const std::vector<bgp::Asn>& pool,
                           bgp::Asn self) -> bgp::Asn {
    for (int attempt = 0; attempt < 8; ++attempt) {
      const bgp::Asn cand =
          pool[rng.below(static_cast<std::uint32_t>(pool.size()))];
      if (cand == self) continue;
      if (world.graph.relationship(self, cand)) continue;
      return cand;
    }
    return 0;
  };

  std::vector<bgp::Asn> earlier_transits = clique;  // attachment targets so far
  for (const Slot& s : slots) {
    if (s.role == AsRole::kTier1) continue;
    if (s.role == AsRole::kTier2) {
      const std::size_t want = 1 + (topo_rng.chance(0.45) ? 1 : 0);
      for (std::size_t p = 0; p < want; ++p) {
        const bgp::Asn provider = pick_provider(topo_rng, global_pool, s.asn);
        if (provider == 0) continue;
        world.graph.add_p2c(provider, s.asn);
        global_pool.push_back(provider);
      }
      // Occasional settlement-free peering with an established transit
      // in another country.
      if (topo_rng.chance(0.15) && !earlier_transits.empty()) {
        const bgp::Asn peer = earlier_transits[topo_rng.below(
            static_cast<std::uint32_t>(earlier_transits.size()))];
        if (peer != s.asn && !world.graph.relationship(s.asn, peer)) {
          world.graph.add_p2p(s.asn, peer);
        }
      }
      global_pool.push_back(s.asn);
      country_pool[s.country].push_back(s.asn);
      earlier_transits.push_back(s.asn);
      continue;
    }
    // Stub: 1-3 providers, 70% of picks from the home country's transit
    // pool; ~5% of links are partial transit (Giotsas et al. 2014).
    const std::size_t want = 1 + topo_rng.below(3);
    for (std::size_t p = 0; p < want; ++p) {
      const std::vector<bgp::Asn>& pool =
          (topo_rng.chance(0.7) && !country_pool[s.country].empty())
              ? country_pool[s.country]
              : global_pool;
      const bgp::Asn provider = pick_provider(topo_rng, pool, s.asn);
      if (provider == 0) continue;
      const double export_fraction =
          topo_rng.chance(0.05) ? 0.5 : 1.0;
      world.graph.add_p2c(provider, s.asn, export_fraction);
      global_pool.push_back(provider);
    }
  }

  // ---- AS metadata. --------------------------------------------------
  for (const Slot& s : slots) {
    const geo::CountryCode cc = countries[s.country];
    AsInfo info;
    const char* tag = s.role == AsRole::kTier1   ? "t1"
                      : s.role == AsRole::kTier2 ? "tr"
                                                 : "st";
    info.name = cc.to_string() + "-" + tag + "-" + std::to_string(s.asn);
    info.registered = cc;
    info.home = cc;
    info.role = s.role;
    world.as_info[s.asn] = std::move(info);
    world.as_registry[s.asn] = cc;
  }
  world.asn_registry.allocate_range(1, 1000000);
  world.asn_registry.finalize();
  world.bogus_asn_first = kBogusFirst;
  world.bogus_asn_last = kBogusLast;

  // ---- Address plan: per-country /24 budgets (Zipf again), carved as
  // one contiguous, cleanly geolocated region per country. -------------
  std::vector<std::size_t> prefix_budget =
      zipf_split(spec_.prefix_target(), n_countries, 1);
  for (std::size_t k = 0; k < n_countries; ++k) {
    // Every AS originates at least one prefix.
    if (prefix_budget[k] < ases_per_country[k]) {
      prefix_budget[k] = ases_per_country[k];
    }
  }

  std::uint32_t region_base = kAddressBase;
  std::size_t slot_cursor = 0;
  world.originations.reserve(spec_.prefix_target());
  for (std::size_t k = 0; k < n_countries; ++k) {
    const std::size_t n_k = ases_per_country[k];
    // One prefix each, then the remainder weighted by role (transit ASes
    // originate far more address space than stubs).
    std::vector<std::size_t> count(n_k, 1);
    std::vector<std::uint32_t> cumulative(n_k);
    std::uint32_t acc = 0;
    for (std::size_t i = 0; i < n_k; ++i) {
      const AsRole role = slots[slot_cursor + i].role;
      acc += role == AsRole::kTier1 ? 12 : role == AsRole::kTier2 ? 6 : 1;
      cumulative[i] = acc;
    }
    for (std::size_t extra = prefix_budget[k] - n_k; extra > 0; --extra) {
      const std::uint32_t u = prefix_rng.below(acc);
      const std::size_t i = static_cast<std::size_t>(
          std::upper_bound(cumulative.begin(), cumulative.end(), u) -
          cumulative.begin());
      ++count[i];
    }
    std::uint32_t address = region_base;
    for (std::size_t i = 0; i < n_k; ++i) {
      for (std::size_t c = 0; c < count[i]; ++c) {
        world.originations.push_back(
            {bgp::Prefix{address, 24}, slots[slot_cursor + i].asn});
        address += 256;
      }
    }
    world.geo_db.add_range(region_base, address - 1, countries[k]);
    region_base = address;
    slot_cursor += n_k;
  }
  world.geo_db.finalize();

  // ---- Vantage points: hosted at transit ASes, concentrated in the
  // largest countries, one single-hop collector per VP country plus a
  // global multi-hop collector (whose VPs the sanitizer must drop). ----
  const std::size_t n_vp = spec_.vp_count();
  world.vps.add_collector({"multihop", countries[0], true});
  std::vector<bool> has_collector(n_countries, false);
  std::vector<std::size_t> host_cursor(n_countries, 0);
  const std::size_t vp_homes = std::min(n_countries, std::max<std::size_t>(n_vp / 3, 1));
  for (std::size_t i = 0; i < n_vp; ++i) {
    const std::size_t k = i % vp_homes;
    const std::vector<bgp::Asn>& hosts = transit_of[k];
    const bgp::Asn host = hosts[host_cursor[k]++ % hosts.size()];
    const bool multihop = i % 20 == 19;
    std::string collector = "multihop";
    if (!multihop) {
      collector = "col-" + countries[k].to_string();
      if (!has_collector[k]) {
        world.vps.add_collector({collector, countries[k], false});
        has_collector[k] = true;
      }
    }
    world.vps.register_vp(
        {kVpAddressBase + static_cast<std::uint32_t>(i), host}, collector);
  }

  return world;
}

bgp::RibCollection InternetScaleGenerator::synthesize_ribs(
    const World& world) const {
  const auto registrations = world.vps.registrations();  // sorted by VpId
  const std::size_t n_vp = registrations.size();
  const std::size_t n_orig = world.originations.size();
  topo::RoutePropagator propagator(world.graph);

  // Feed thinning (file comment): a (vp, prefix) pair survives when its
  // hash clears the coverage threshold, plus every prefix keeps one
  // hash-designated anchor VP so no routed prefix vanishes entirely.
  const double keep =
      n_vp == 0 ? 0.0 : std::min(1.0, spec_.feeds_per_prefix() /
                                          static_cast<double>(n_vp));
  const std::uint64_t threshold =
      static_cast<std::uint64_t>(keep * 4294967296.0);

  std::vector<topo::NodeId> origin_node(n_orig);
  std::vector<std::size_t> anchor_vp(n_orig);
  for (std::size_t p = 0; p < n_orig; ++p) {
    origin_node[p] = world.graph.id_of(world.originations[p].origin);
    anchor_vp[p] =
        n_vp == 0
            ? 0
            : mix64(spec_.seed ^ world.originations[p].prefix.address()) % n_vp;
  }

  bgp::RibSnapshot first;
  first.day = 1;
  std::vector<bgp::Asn> hops;
  for (std::size_t v = 0; v < n_vp; ++v) {
    const bgp::VpId vp = registrations[v].first;
    // One valley-free sweep rooted at the VP's AS serves its whole table.
    const topo::RoutingTable table =
        propagator.compute(vp.asn, mix64(spec_.seed ^ vp.asn));
    for (std::size_t p = 0; p < n_orig; ++p) {
      const std::uint32_t address = world.originations[p].prefix.address();
      if (anchor_vp[p] != v &&
          (mix64((static_cast<std::uint64_t>(vp.ip) << 32) ^ address ^
                 spec_.seed) &
           0xffffffffull) >= threshold) {
        continue;
      }
      const bgp::AsPath toward_vp = table.path_from(origin_node[p]);
      if (toward_vp.empty()) continue;  // origin can't reach this VP
      hops.assign(toward_vp.hops().begin(), toward_vp.hops().end());
      std::reverse(hops.begin(), hops.end());  // VP-side first
      first.entries.push_back(
          {vp, world.originations[p].prefix, bgp::AsPath{hops}});
    }
  }

  bgp::RibCollection ribs;
  const int days = std::max(spec_.rib_days, 1);
  ribs.days.reserve(static_cast<std::size_t>(days));
  for (int d = 1; d <= days; ++d) {
    bgp::RibSnapshot snapshot = first;
    snapshot.day = d;
    ribs.days.push_back(std::move(snapshot));
  }
  return ribs;
}

}  // namespace georank::gen
