// Synthesizes multi-day RIB snapshots from a World: the stand-in for
// downloading RouteViews / RIPE RIS table dumps (DESIGN.md §1).
//
// For every origination the valley-free propagator computes each AS's
// best path (per-prefix tiebreak salt reproduces the mild path diversity
// real tables show); each registered VP contributes its AS's path. Noise
// is then layered on, one category per (VP, prefix) so it persists across
// days like real artifacts do:
//   flapping   prefix missing from some snapshot days ("unstable")
//   prepending benign adjacent AS duplication
//   loops      non-adjacent duplicate hops
//   poisoning  a foreign AS inserted between two clique hops
//   bogus ASN  an unallocated ASN inserted mid-path
//   route servers retained in paths at IXP peer links
#pragma once

#include "bgp/route.hpp"
#include "gen/world.hpp"
#include "gen/world_spec.hpp"
#include "util/rng.hpp"

namespace georank::gen {

class RibGenerator {
 public:
  RibGenerator(const World& world, NoiseSpec noise, std::uint64_t seed = 7);

  /// `days` snapshots (paper: 5). Deterministic for a given seed.
  [[nodiscard]] bgp::RibCollection generate(int days = 5) const;

 private:
  const World* world_;
  NoiseSpec noise_;
  std::uint64_t seed_;
};

}  // namespace georank::gen
