// Declarative specification of a synthetic Internet (DESIGN.md §1).
//
// A WorldSpec describes the STRUCTURE the paper's case studies rely on —
// tier-1 clique, national incumbents with split domestic/international
// ASes, challenger and regional ISPs, stubs, hypergiants, IXP route
// servers, VP placement — and the generator turns it into a concrete
// topology, address plan, geolocation database and collector inventory.
// Rankings are NOT encoded anywhere; the metrics must discover them.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "bgp/as_path.hpp"
#include "geo/country.hpp"

namespace georank::gen {

using bgp::Asn;
using geo::CountryCode;

/// A national carrier. When `international_asn` is set the carrier runs
/// the classic split: a domestic access/transit AS plus an international
/// transit AS (Telstra 1221/4637, NTT 4713/2914 pattern, §5.5).
struct IncumbentSpec {
  Asn domestic_asn = 0;
  std::string name;
  std::optional<Asn> international_asn;
  std::string international_name;
  /// Share of the country's stub ASes that buy from this carrier.
  double market_share = 0.5;
  /// Share of the country's address space originated by the domestic AS
  /// itself (access network scale).
  double address_share = 0.2;
  /// Transit providers of the domestic AS when it has NO international
  /// sibling (e.g. NTT OCN buying from NTT America). Ignored otherwise.
  std::vector<Asn> upstreams;
  /// Transit providers of the INTERNATIONAL sibling; empty -> two
  /// generator-chosen tier-1s.
  std::vector<Asn> international_upstreams;
};

/// A domestic transit challenger (the Vocus pattern): sells transit to
/// many in-country networks but holds little address space of its own.
struct ChallengerSpec {
  Asn asn = 0;
  std::string name;
  /// Share of regionals/stubs buying transit from the challenger.
  double transit_share = 0.3;
  double address_share = 0.05;
  /// Multinationals (by ASN) this challenger buys international transit
  /// from; they inherit its cone transitively (the Arelion/Vocus effect).
  std::vector<Asn> upstreams;
  /// In-country ASes (incumbents, other carriers) that ALSO buy transit
  /// from this challenger, on top of their own providers — how a
  /// wholesale challenger accumulates a cone far larger than its own
  /// address space (Vocus at ~80% of AU, §5.1). `announce_fraction` < 1
  /// makes the relationship "complex" (partial transit): the customer's
  /// whole address space joins the challenger's CONE while only a
  /// fraction of actual paths cross it — the cone-inflation effect the
  /// paper calls out in §1.1.
  struct Wholesale {
    Asn customer = 0;
    double announce_fraction = 1.0;
  };
  std::vector<Wholesale> also_transits;
};

/// Country-wide extra transit edge (provider may be any AS in the world),
/// with the same partial-announcement semantics as Wholesale. Models
/// e.g. Lumen's thin but cone-inflating relationships with the major
/// Russian carriers (CCI 97% vs AHI 6%, Table 7).
struct PartialTransitSpec {
  Asn provider = 0;
  Asn customer = 0;
  double announce_fraction = 0.15;
};

/// A foreign carrier selling transit inside a country. The weight is
/// commensurable with IncumbentSpec::market_share / ChallengerSpec::
/// transit_share: it is the carrier's share of the local transit market.
struct PresenceSpec {
  Asn asn = 0;
  double weight = 0.1;
};

struct CountrySpec {
  CountryCode code;
  std::string continent;  // "No.Am" "So.Am" "Eu" "Af" "As" "Oc"
  int stub_count = 20;
  int regional_isp_count = 3;
  /// Total IPv4 addresses geolocated to the country.
  std::uint64_t address_budget = 1 << 22;
  int vp_count = 4;           // in-country, locatable VPs
  int multihop_vp_count = 1;  // VPs excluded by the multihop rule
  std::vector<IncumbentSpec> incumbents;
  std::vector<ChallengerSpec> challengers;
  /// Foreign carriers with a sales presence: regionals/stubs may buy
  /// transit from them directly.
  std::vector<PresenceSpec> multinational_presence;
  /// Probability of p2p between two in-country regionals/stubs at the IXP.
  double peering_density = 0.15;
  /// Probability of p2p between the country's MAJOR carriers (incumbents
  /// and challengers). Dense (default) keeps domestic traffic domestic;
  /// sparse markets (e.g. Russia) leak domestic paths to foreign transit,
  /// which is why foreign carriers show up in their CCN (§5.3).
  double major_peering = 0.85;
  /// IXP route-server ASN (0 = none). Appears in paths via injection and
  /// must be stripped by the sanitizer.
  Asn route_server_asn = 0;
  /// Extra (usually partial) transit edges wired after the country's
  /// carriers exist.
  std::vector<PartialTransitSpec> partial_transit;
};

/// Global transit provider. Tier 1 ASes form the clique; tier 2 ASes buy
/// from tier 1 and peer among themselves.
struct MultinationalSpec {
  Asn asn = 0;
  std::string name;
  CountryCode registered;
  int tier = 1;
  /// Hurricane-style settlement-free peering with edge networks
  /// everywhere: boosts hegemony without growing the customer cone.
  bool liberal_peering = false;
};

/// Content hypergiant (the Amazon pattern, §5.1.2): registered in one
/// country, originates prefixes inside many others. Shares differ per
/// market — a CDN can hold a double-digit slice of a small country's
/// observed space while staying marginal in large ones.
struct HypergiantSpec {
  struct Origin {
    CountryCode country;
    /// Share of that country's address budget the hypergiant originates.
    double share = 0.03;
  };

  Asn asn = 0;
  std::string name;
  CountryCode registered;
  std::vector<Origin> origins;
};

/// Data imperfection knobs; defaults roughly reproduce Table 1's mix.
struct NoiseSpec {
  double prefix_flap_rate = 0.10;     // prefixes missing >= 1 of 5 days
  double loop_rate = 0.0008;          // per-entry non-adjacent duplicate
  double poison_rate = 0.00005;       // per-entry clique sandwich
  double unallocated_rate = 0.0009;   // per-entry bogus ASN insertion
  double prepend_rate = 0.02;         // benign adjacent duplication
  double route_server_rate = 0.25;    // RS hop retained at IXP crossings
  /// Fraction of a country's address region whose blocks geolocate to a
  /// different country (commercial-database noise).
  double geo_noise = 0.008;
  /// Fraction of prefixes deliberately split across countries below the
  /// consensus threshold ("prefix no location").
  double mixed_prefix_rate = 0.015;
  /// Fraction of multi-prefix ASes that also announce both halves of one
  /// prefix (making the covering prefix fully covered -> filtered).
  double covered_prefix_rate = 0.035;
};

struct WorldSpec {
  std::uint64_t seed = 1;
  std::vector<MultinationalSpec> multinationals;
  std::vector<HypergiantSpec> hypergiants;
  std::vector<CountrySpec> countries;
  NoiseSpec noise;
  /// Days of RIB snapshots to synthesize (the paper uses 5).
  int rib_days = 5;
};

}  // namespace georank::gen
