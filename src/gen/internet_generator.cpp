#include "gen/internet_generator.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>
#include <unordered_set>

namespace georank::gen {

namespace {

using bgp::Asn;
using bgp::Prefix;
using geo::CountryCode;

constexpr std::uint32_t kAddressBase = 0x10000000;  // 16.0.0.0
constexpr Asn kAutoAsnBase = 100000;
constexpr Asn kBogusAsnFirst = 4200000000u;
constexpr Asn kBogusAsnLast = 4200000099u;

/// Weighted pick without replacement support.
struct WeightedPool {
  std::vector<std::pair<Asn, double>> items;

  void add(Asn asn, double weight) {
    if (weight > 0.0) items.emplace_back(asn, weight);
  }

  [[nodiscard]] Asn pick(util::Pcg32& rng) const {
    double total = 0.0;
    for (const auto& [asn, w] : items) total += w;
    if (total <= 0.0 || items.empty()) return 0;
    double x = rng.uniform() * total;
    for (const auto& [asn, w] : items) {
      x -= w;
      if (x <= 0.0) return asn;
    }
    return items.back().first;
  }
};

std::uint32_t round_up_pow2(std::uint64_t v) {
  std::uint64_t p = 256;
  while (p < v) p <<= 1;
  return static_cast<std::uint32_t>(p);
}

std::uint8_t length_for_size(std::uint64_t size) {
  // size is a power of two in [2^0, 2^32].
  int bits = 0;
  while ((std::uint64_t{1} << bits) < size) ++bits;
  return static_cast<std::uint8_t>(32 - bits);
}

struct Carve {
  std::uint32_t first, last;
  CountryCode country;
};

/// Per-country address region with a bump allocator that respects
/// power-of-two alignment.
struct Region {
  std::uint32_t base = 0;
  std::uint32_t size = 0;
  std::uint32_t cursor = 0;  // offset of next free address

  [[nodiscard]] std::optional<Prefix> allocate(std::uint32_t block,
                                               CountryCode /*country*/) {
    std::uint32_t aligned = (cursor + block - 1) & ~(block - 1);
    if (static_cast<std::uint64_t>(aligned) + block > size) return std::nullopt;
    cursor = aligned + block;
    return Prefix{base + aligned, length_for_size(block)};
  }
};

class Builder {
 public:
  Builder(const WorldSpec& spec) : spec_(spec), rng_(spec.seed) {}

  World build() {
    reserve_asns();
    build_global_transit();
    build_countries();
    build_cross_cutting_peering();
    build_address_plan();
    build_geo_db();
    build_vps();
    finalize();
    return std::move(world_);
  }

 private:
  // ---------------------------------------------------------------- ASNs
  void reserve_asns() {
    for (const auto& m : spec_.multinationals) used_asns_.insert(m.asn);
    for (const auto& h : spec_.hypergiants) used_asns_.insert(h.asn);
    for (const auto& c : spec_.countries) {
      for (const auto& inc : c.incumbents) {
        used_asns_.insert(inc.domestic_asn);
        if (inc.international_asn) used_asns_.insert(*inc.international_asn);
      }
      for (const auto& ch : c.challengers) used_asns_.insert(ch.asn);
      if (c.route_server_asn) used_asns_.insert(c.route_server_asn);
    }
  }

  Asn auto_asn() {
    while (used_asns_.contains(next_asn_)) ++next_asn_;
    used_asns_.insert(next_asn_);
    return next_asn_++;
  }

  void register_as(Asn asn, std::string name, CountryCode registered,
                   CountryCode home, AsRole role) {
    if (asn == 0) throw std::invalid_argument{"spec uses ASN 0"};
    world_.graph.add_as(asn);
    world_.as_info[asn] = AsInfo{std::move(name), registered, home, role};
    if (registered.valid()) world_.as_registry[asn] = registered;
  }

  // ------------------------------------------------------ edge utilities
  void p2c(Asn provider, Asn customer, double export_fraction = 1.0) {
    if (provider == customer) return;
    if (!world_.graph.relationship(provider, customer)) {
      world_.graph.add_p2c(provider, customer, export_fraction);
    }
  }
  void p2p(Asn a, Asn b) {
    if (a == b) return;
    if (!world_.graph.relationship(a, b)) world_.graph.add_p2p(a, b);
  }

  // ------------------------------------------------------ global transit
  void build_global_transit() {
    for (const auto& m : spec_.multinationals) {
      AsRole role = m.tier == 1 ? AsRole::kTier1 : AsRole::kTier2;
      register_as(m.asn, m.name, m.registered, m.registered, role);
      if (m.tier == 1) {
        world_.clique.push_back(m.asn);
        tier1_.push_back(m.asn);
      } else {
        tier2_.push_back(m.asn);
      }
    }
    // Tier-1 clique: full peering mesh.
    for (std::size_t i = 0; i < tier1_.size(); ++i) {
      for (std::size_t j = i + 1; j < tier1_.size(); ++j) {
        p2p(tier1_[i], tier1_[j]);
      }
    }
    // Tier 2: buy from 2-3 tier-1s, peer among themselves.
    for (Asn t2 : tier2_) {
      std::size_t n = 2 + rng_.below(2);
      auto idx = util::sample_indices(tier1_.size(), n, rng_);
      for (std::size_t i : idx) p2c(tier1_[i], t2);
    }
    for (std::size_t i = 0; i < tier2_.size(); ++i) {
      for (std::size_t j = i + 1; j < tier2_.size(); ++j) {
        if (rng_.chance(0.35)) p2p(tier2_[i], tier2_[j]);
      }
    }
    // Hypergiants: a little transit, much peering (rest happens per
    // country and in the cross-cutting pass).
    for (const auto& h : spec_.hypergiants) {
      register_as(h.asn, h.name, h.registered, h.registered, AsRole::kHypergiant);
      auto idx = util::sample_indices(tier1_.size(), 1 + rng_.below(2), rng_);
      for (std::size_t i : idx) p2c(tier1_[i], h.asn);
      for (Asn t1 : tier1_) {
        if (!world_.graph.relationship(t1, h.asn) && rng_.chance(0.4)) {
          p2p(t1, h.asn);
        }
      }
    }
  }

  // ---------------------------------------------------------- countries
  struct CountryAses {
    std::vector<Asn> incumbents_domestic;
    std::vector<Asn> incumbents_international;
    std::vector<Asn> challengers;
    std::vector<Asn> regionals;
    std::vector<Asn> stubs;

    [[nodiscard]] std::vector<Asn> all() const {
      std::vector<Asn> out;
      auto append = [&](const std::vector<Asn>& v) {
        out.insert(out.end(), v.begin(), v.end());
      };
      append(incumbents_domestic);
      append(incumbents_international);
      append(challengers);
      append(regionals);
      append(stubs);
      return out;
    }
  };

  void build_countries() {
    for (const auto& c : spec_.countries) {
      world_.continents[c.code] = c.continent;
      CountryAses& ases = country_ases_[c.code];

      // Incumbents.
      for (const auto& inc : c.incumbents) {
        register_as(inc.domestic_asn, inc.name, c.code, c.code,
                    AsRole::kIncumbentDomestic);
        ases.incumbents_domestic.push_back(inc.domestic_asn);
        if (inc.international_asn) {
          register_as(*inc.international_asn,
                      inc.international_name.empty() ? inc.name + " Intl"
                                                     : inc.international_name,
                      c.code, c.code, AsRole::kIncumbentInternational);
          ases.incumbents_international.push_back(*inc.international_asn);
          // Domestic AS reaches the world through the international AS.
          p2c(*inc.international_asn, inc.domestic_asn);
          // International AS buys from the spec'd carriers, or two tier-1s.
          if (!inc.international_upstreams.empty()) {
            for (Asn up : inc.international_upstreams) {
              p2c(up, *inc.international_asn);
            }
          } else {
            auto idx = util::sample_indices(tier1_.size(), 2, rng_);
            for (std::size_t i : idx) p2c(tier1_[i], *inc.international_asn);
          }
          // ... and peers with a share of the tier-2 layer.
          for (Asn t2 : tier2_) {
            if (rng_.chance(0.3)) p2p(t2, *inc.international_asn);
          }
        } else if (!inc.upstreams.empty()) {
          // The NTT OCN pattern: explicit transit providers.
          for (Asn up : inc.upstreams) p2c(up, inc.domestic_asn);
        } else {
          // No split, no explicit upstreams: buy from the local presences.
          WeightedPool pool;
          for (const PresenceSpec& m : c.multinational_presence) {
            pool.add(m.asn, m.weight);
          }
          if (pool.items.empty()) {
            for (Asn t1 : tier1_) pool.add(t1, 1.0);
          }
          std::size_t n = 1 + rng_.below(2);
          for (std::size_t k = 0; k < n; ++k) {
            Asn provider = pool.pick(rng_);
            if (provider) p2c(provider, inc.domestic_asn);
          }
        }
      }

      // Challengers.
      for (const auto& ch : c.challengers) {
        register_as(ch.asn, ch.name, c.code, c.code, AsRole::kChallenger);
        ases.challengers.push_back(ch.asn);
        if (!ch.upstreams.empty()) {
          for (Asn up : ch.upstreams) p2c(up, ch.asn);
        } else {
          auto idx = util::sample_indices(tier1_.size(), 2, rng_);
          for (std::size_t i : idx) p2c(tier1_[i], ch.asn);
        }
        // Domestic peering with incumbents at the IXP.
        for (Asn dom : ases.incumbents_domestic) {
          if (rng_.chance(0.5)) p2p(dom, ch.asn);
        }
      }

      // Regional ISPs.
      for (int r = 0; r < c.regional_isp_count; ++r) {
        Asn asn = auto_asn();
        register_as(asn, c.code.to_string() + "-regional-" + std::to_string(r + 1),
                    c.code, c.code, AsRole::kRegional);
        ases.regionals.push_back(asn);
        attach_to_market(asn, c, ases, /*is_stub=*/false);
      }

      // Stubs.
      for (int s = 0; s < c.stub_count; ++s) {
        Asn asn = auto_asn();
        register_as(asn, c.code.to_string() + "-stub-" + std::to_string(s + 1),
                    c.code, c.code, AsRole::kStub);
        ases.stubs.push_back(asn);
        attach_to_market(asn, c, ases, /*is_stub=*/true);
      }

      // Challenger wholesale customers: named in-country carriers that
      // also buy from the challenger (multihoming, possibly partial).
      for (const auto& ch : c.challengers) {
        for (const auto& wholesale : ch.also_transits) {
          p2c(ch.asn, wholesale.customer, wholesale.announce_fraction);
        }
      }
      // Country-wide extra (partial) transit edges.
      for (const PartialTransitSpec& pt : c.partial_transit) {
        p2c(pt.provider, pt.customer, pt.announce_fraction);
      }

      // In-country IXP peering. Domestic traffic largely stays domestic:
      // the major carriers interconnect densely at the national IXs, so
      // national paths rarely detour through international transit.
      auto mesh = [&](const std::vector<Asn>& xs, const std::vector<Asn>& ys,
                      double prob, bool same) {
        for (std::size_t i = 0; i < xs.size(); ++i) {
          for (std::size_t j = same ? i + 1 : 0; j < ys.size(); ++j) {
            if (rng_.chance(prob)) p2p(xs[i], ys[j]);
          }
        }
      };
      std::vector<Asn> majors = ases.incumbents_domestic;
      majors.insert(majors.end(), ases.challengers.begin(), ases.challengers.end());
      mesh(majors, majors, c.major_peering, true);
      mesh(majors, ases.regionals, c.peering_density * 2.0, false);
      mesh(ases.regionals, ases.regionals, c.peering_density, true);
      for (Asn stub : ases.stubs) {
        for (Asn reg : ases.regionals) {
          if (rng_.chance(c.peering_density / 4.0)) p2p(stub, reg);
        }
      }

      // IXP route server: exists as an AS for path injection; it has a
      // token peering so it is part of the graph, but it never provides
      // transit and originates nothing.
      if (c.route_server_asn) {
        register_as(c.route_server_asn, c.code.to_string() + "-ixp-rs", c.code,
                    c.code, AsRole::kRouteServer);
        world_.route_servers.push_back(c.route_server_asn);
        if (!ases.regionals.empty()) p2p(c.route_server_asn, ases.regionals[0]);
      }
    }
  }

  /// Wire a regional or stub AS to its country's transit market.
  void attach_to_market(Asn asn, const CountrySpec& c, const CountryAses& ases,
                        bool is_stub) {
    WeightedPool pool;
    for (std::size_t i = 0; i < c.incumbents.size(); ++i) {
      pool.add(ases.incumbents_domestic[i], c.incumbents[i].market_share);
    }
    for (std::size_t i = 0; i < c.challengers.size(); ++i) {
      pool.add(ases.challengers[i], c.challengers[i].transit_share);
    }
    if (is_stub) {
      for (Asn reg : ases.regionals) {
        pool.add(reg, 0.4 / static_cast<double>(
                                std::max<std::size_t>(1, ases.regionals.size())));
      }
    }
    // Regionals lean on foreign carriers more readily than stubs do.
    for (const PresenceSpec& m : c.multinational_presence) {
      pool.add(m.asn, m.weight * (is_stub ? 0.6 : 1.2));
    }

    std::size_t providers = 1 + (rng_.chance(0.45) ? 1 : 0);
    std::unordered_set<Asn> chosen;
    for (std::size_t k = 0; k < providers && !pool.items.empty(); ++k) {
      Asn provider = pool.pick(rng_);
      if (provider && provider != asn && chosen.insert(provider).second) {
        p2c(provider, asn);
      }
    }
    if (chosen.empty()) {
      // Guarantee connectivity: fall back to the first tier-1.
      if (!tier1_.empty()) p2c(tier1_[0], asn);
    }
  }

  // --------------------------------------------- cross-cutting peering
  void build_cross_cutting_peering() {
    // Liberal peers (the Hurricane pattern): settlement-free peering with
    // edge networks everywhere boosts hegemony without cone growth.
    for (const auto& m : spec_.multinationals) {
      if (!m.liberal_peering) continue;
      for (const auto& c : spec_.countries) {
        const CountryAses& ases = country_ases_[c.code];
        for (Asn a : ases.incumbents_domestic) {
          if (rng_.chance(0.85)) p2p(m.asn, a);
        }
        for (Asn a : ases.challengers) {
          if (rng_.chance(0.85)) p2p(m.asn, a);
        }
        for (Asn a : ases.regionals) {
          if (rng_.chance(0.6)) p2p(m.asn, a);
        }
        for (Asn a : ases.stubs) {
          if (rng_.chance(0.15)) p2p(m.asn, a);
        }
      }
    }

    // Hypergiant on-ramps inside their origin countries.
    for (const auto& h : spec_.hypergiants) {
      for (const HypergiantSpec::Origin& origin : h.origins) {
        CountryCode cc = origin.country;
        auto it = country_ases_.find(cc);
        if (it == country_ases_.end()) continue;
        const CountryAses& ases = it->second;
        for (Asn a : ases.incumbents_domestic) {
          if (rng_.chance(0.8)) p2p(h.asn, a);
        }
        for (Asn a : ases.challengers) {
          if (rng_.chance(0.6)) p2p(h.asn, a);
        }
        for (Asn a : ases.regionals) {
          if (rng_.chance(0.3)) p2p(h.asn, a);
        }
      }
    }

    // Incumbent international ASes peer with each other, preferring the
    // same continent.
    std::vector<std::pair<Asn, std::string>> intl;
    for (const auto& c : spec_.countries) {
      for (Asn a : country_ases_[c.code].incumbents_international) {
        intl.emplace_back(a, c.continent);
      }
    }
    for (std::size_t i = 0; i < intl.size(); ++i) {
      for (std::size_t j = i + 1; j < intl.size(); ++j) {
        double prob = intl[i].second == intl[j].second ? 0.5 : 0.15;
        if (rng_.chance(prob)) p2p(intl[i].first, intl[j].first);
      }
    }
  }

  // --------------------------------------------------------- addresses
  void build_address_plan() {
    std::uint32_t global_cursor = kAddressBase;
    for (const auto& c : spec_.countries) {
      std::uint32_t region_size = round_up_pow2(c.address_budget * 2);
      std::uint32_t base = (global_cursor + region_size - 1) & ~(region_size - 1);
      regions_[c.code] = Region{base, region_size, 0};
      global_cursor = base + region_size;

      assign_country_addresses(c);
    }
    // Multinationals and international ASes originate a little
    // infrastructure space in their registration countries.
    for (const auto& m : spec_.multinationals) {
      originate_infrastructure(m.asn, m.registered, 1 << 12);
    }
    for (const auto& c : spec_.countries) {
      for (Asn a : country_ases_[c.code].incumbents_international) {
        originate_infrastructure(a, c.code, 1 << 10);
      }
    }
  }

  void originate_infrastructure(Asn asn, CountryCode cc, std::uint32_t block) {
    auto it = regions_.find(cc);
    if (it == regions_.end()) return;  // registered outside the modeled world
    if (auto p = it->second.allocate(block, cc)) {
      world_.originations.push_back(Origination{*p, asn});
    }
  }

  void assign_country_addresses(const CountrySpec& c) {
    CountryAses& ases = country_ases_[c.code];
    Region& region = regions_[c.code];

    // Fixed shares first.
    double used_share = 0.0;
    std::vector<std::pair<Asn, double>> shares;
    for (std::size_t i = 0; i < c.incumbents.size(); ++i) {
      shares.emplace_back(ases.incumbents_domestic[i], c.incumbents[i].address_share);
      used_share += c.incumbents[i].address_share;
    }
    for (std::size_t i = 0; i < c.challengers.size(); ++i) {
      shares.emplace_back(ases.challengers[i], c.challengers[i].address_share);
      used_share += c.challengers[i].address_share;
    }
    for (const auto& h : spec_.hypergiants) {
      for (const HypergiantSpec::Origin& origin : h.origins) {
        if (origin.country == c.code) {
          shares.emplace_back(h.asn, origin.share);
          used_share += origin.share;
        }
      }
    }
    // Remainder split over regionals (weight 3) and stubs (log-uniform).
    double leftover = std::max(0.05, 1.0 - used_share);
    std::vector<std::pair<Asn, double>> weights;
    double total_w = 0.0;
    for (Asn a : ases.regionals) {
      weights.emplace_back(a, 3.0);
      total_w += 3.0;
    }
    for (Asn a : ases.stubs) {
      double w = 0.5 + rng_.uniform() * 3.5;
      weights.emplace_back(a, w);
      total_w += w;
    }
    for (const auto& [asn, w] : weights) {
      shares.emplace_back(asn, leftover * w / std::max(1.0, total_w));
    }

    for (const auto& [asn, share] : shares) {
      auto budget =
          static_cast<std::uint64_t>(share * static_cast<double>(c.address_budget));
      allocate_prefixes(asn, c, region, budget);
    }
  }

  void allocate_prefixes(Asn asn, const CountrySpec& c, Region& region,
                         std::uint64_t budget) {
    budget = std::max<std::uint64_t>(budget, 256);
    // Greedy power-of-two decomposition, at most 3 prefixes, >= /24 each.
    std::vector<std::uint32_t> blocks;
    std::uint64_t remaining = budget;
    while (remaining >= 256 && blocks.size() < 3) {
      std::uint64_t block = 256;
      while (block * 2 <= remaining && block < (std::uint64_t{1} << 24)) block <<= 1;
      blocks.push_back(static_cast<std::uint32_t>(block));
      remaining -= block;
    }
    bool first = true;
    for (std::uint32_t block : blocks) {
      auto p = region.allocate(block, c.code);
      if (!p) break;  // region exhausted: the AS keeps what it has
      world_.originations.push_back(Origination{*p, asn});
      if (first) {
        first = false;
        maybe_inject_overlaps(asn, *p, c);
      }
    }
  }

  void maybe_inject_overlaps(Asn asn, const Prefix& p, const CountrySpec& c) {
    if (p.length() > 29) return;
    double roll = rng_.uniform();
    if (roll < spec_.noise.covered_prefix_rate) {
      // Announce both halves too: the covering prefix becomes fully
      // covered and must be filtered (§3.2.1, Figure 9).
      world_.originations.push_back(Origination{p.left_child(), asn});
      world_.originations.push_back(Origination{p.right_child(), asn});
    } else if (roll < 2 * spec_.noise.covered_prefix_rate) {
      // Partial cover: a more specific half announced by the same AS; the
      // covering prefix survives with half its effective weight.
      world_.originations.push_back(Origination{p.left_child(), asn});
    }
    if (rng_.chance(spec_.noise.mixed_prefix_rate)) {
      // An extra prefix whose addresses straddle countries below the
      // consensus threshold ("prefix no location").
      Region& region = regions_[c.code];
      if (auto mixed = region.allocate(1024, c.code)) {
        world_.originations.push_back(Origination{*mixed, asn});
        mixed_prefixes_.push_back(*mixed);
      }
    }
  }

  // ------------------------------------------------------------- geo DB
  CountryCode random_other_country(CountryCode except) {
    if (spec_.countries.size() < 2) return except;
    for (int tries = 0; tries < 16; ++tries) {
      const auto& c = spec_.countries[rng_.below(
          static_cast<std::uint32_t>(spec_.countries.size()))];
      if (c.code != except) return c.code;
    }
    return except;
  }

  void build_geo_db() {
    std::vector<Carve> carves;
    // Mixed prefixes: 3/8 home, 3/8 other country A, 2/8 other country B.
    for (const Prefix& p : mixed_prefixes_) {
      CountryCode home = country_of_address(p.address());
      CountryCode a = random_other_country(home);
      CountryCode b = random_other_country(home);
      std::uint32_t eighth = static_cast<std::uint32_t>(p.size() / 8);
      carves.push_back(Carve{p.first() + 3 * eighth, p.first() + 6 * eighth - 1, a});
      carves.push_back(Carve{p.first() + 6 * eighth, p.last(), b});
    }
    // Random commercial-database noise: /24 blocks labeled elsewhere.
    for (const auto& c : spec_.countries) {
      const Region& region = regions_.at(c.code);
      if (region.cursor == 0) continue;
      auto blocks = static_cast<std::size_t>(
          spec_.noise.geo_noise * static_cast<double>(region.cursor) / 256.0);
      for (std::size_t i = 0; i < blocks; ++i) {
        std::uint32_t offset = rng_.below(region.cursor / 256) * 256;
        Carve carve{region.base + offset, region.base + offset + 255,
                    random_other_country(c.code)};
        bool overlaps = std::any_of(carves.begin(), carves.end(), [&](const Carve& x) {
          return carve.first <= x.last && x.first <= carve.last;
        });
        if (!overlaps) carves.push_back(carve);
      }
    }
    std::sort(carves.begin(), carves.end(),
              [](const Carve& a, const Carve& b) { return a.first < b.first; });

    // Emit per-country base ranges minus carves, then the carves.
    for (const auto& c : spec_.countries) {
      const Region& region = regions_.at(c.code);
      std::uint64_t cursor = region.base;
      std::uint64_t region_end = static_cast<std::uint64_t>(region.base) + region.size - 1;
      for (const Carve& carve : carves) {
        if (carve.first < region.base || carve.first > region_end) continue;
        if (carve.first > cursor) {
          world_.geo_db.add_range(static_cast<std::uint32_t>(cursor), carve.first - 1,
                                  c.code);
        }
        cursor = static_cast<std::uint64_t>(carve.last) + 1;
      }
      if (cursor <= region_end) {
        world_.geo_db.add_range(static_cast<std::uint32_t>(cursor),
                                static_cast<std::uint32_t>(region_end), c.code);
      }
    }
    for (const Carve& carve : carves) {
      world_.geo_db.add_range(carve.first, carve.last, carve.country);
    }
    world_.geo_db.finalize();
  }

  [[nodiscard]] CountryCode country_of_address(std::uint32_t ip) const {
    for (const auto& [cc, region] : regions_) {
      if (ip >= region.base &&
          static_cast<std::uint64_t>(ip) <
              static_cast<std::uint64_t>(region.base) + region.size) {
        return cc;
      }
    }
    return geo::kNoCountry;
  }

  // ----------------------------------------------------------------- VPs
  void build_vps() {
    world_.vps.add_collector(
        geo::Collector{"multihop-global", CountryCode::of("US"), true});
    for (const auto& c : spec_.countries) {
      world_.vps.add_collector(
          geo::Collector{"collector-" + c.code.to_string(), c.code, false});
    }

    // First prefix of each AS, for VP addresses.
    std::unordered_map<Asn, Prefix> first_prefix;
    for (const Origination& o : world_.originations) {
      first_prefix.try_emplace(o.origin, o.prefix);
    }

    for (const auto& c : spec_.countries) {
      const CountryAses& ases = country_ases_[c.code];
      // Stub/regional VP hosts must be DOMESTICALLY homed (all providers
      // in-country): real route-collector peers are domestic ISPs, and a
      // VP wired straight into a foreign multinational would leak that
      // carrier into the country's national view.
      auto domestically_homed = [&](Asn a) {
        for (Asn provider : world_.graph.providers_of(a)) {
          const AsInfo* info = world_.info(provider);
          if (!info || info->home != c.code) return false;
        }
        return true;
      };
      std::vector<Asn> candidates;
      for (Asn a : ases.stubs) {
        if (domestically_homed(a)) candidates.push_back(a);
      }
      for (Asn a : ases.regionals) {
        if (domestically_homed(a)) candidates.push_back(a);
      }
      for (Asn a : ases.challengers) candidates.push_back(a);
      for (Asn a : ases.incumbents_domestic) candidates.push_back(a);
      if (candidates.size() < 3) {
        // Tiny markets: relax to every in-country stub/regional.
        candidates.clear();
        for (Asn a : ases.stubs) candidates.push_back(a);
        for (Asn a : ases.regionals) candidates.push_back(a);
        for (Asn a : ases.challengers) candidates.push_back(a);
        for (Asn a : ases.incumbents_domestic) candidates.push_back(a);
      }
      std::erase_if(candidates,
                    [&](Asn a) { return !first_prefix.contains(a); });
      if (candidates.empty()) continue;
      util::shuffle(std::span<Asn>(candidates), rng_);

      std::unordered_map<Asn, std::uint32_t> vp_index_in_as;
      std::vector<Asn> used;
      auto place_vp = [&](int i, const std::string& collector) {
        // Mostly one VP per AS, with a concentration tail: ~15% of VPs
        // share an AS with an earlier one (Figure 10: 81% of the paper's
        // VPs were alone in their AS; AU and US were more concentrated).
        Asn asn;
        if (!used.empty() && rng_.chance(0.15)) {
          asn = used[rng_.below(static_cast<std::uint32_t>(used.size()))];
        } else {
          asn = candidates[static_cast<std::size_t>(i) % candidates.size()];
        }
        used.push_back(asn);
        std::uint32_t idx = ++vp_index_in_as[asn];
        bgp::VpId vp{first_prefix.at(asn).address() + idx, asn};
        world_.vps.register_vp(vp, collector);
      };
      for (int i = 0; i < c.vp_count; ++i) {
        place_vp(i, "collector-" + c.code.to_string());
      }
      for (int i = 0; i < c.multihop_vp_count; ++i) {
        place_vp(c.vp_count + i, "multihop-global");
      }
    }
  }

  // ------------------------------------------------------------ finalize
  void finalize() {
    world_.asn_registry.allocate_range(1, 1000000);
    world_.asn_registry.finalize();
    world_.bogus_asn_first = kBogusAsnFirst;
    world_.bogus_asn_last = kBogusAsnLast;
    std::sort(world_.clique.begin(), world_.clique.end());
  }

  const WorldSpec& spec_;
  util::Pcg32 rng_;
  World world_;
  std::unordered_set<Asn> used_asns_;
  Asn next_asn_ = kAutoAsnBase;
  std::vector<Asn> tier1_, tier2_;
  std::unordered_map<CountryCode, CountryAses, geo::CountryCodeHash> country_ases_;
  std::unordered_map<CountryCode, Region, geo::CountryCodeHash> regions_;
  std::vector<Prefix> mixed_prefixes_;
};

}  // namespace

InternetGenerator::InternetGenerator(WorldSpec spec) : spec_(std::move(spec)) {}

World InternetGenerator::generate() {
  Builder builder{spec_};
  return builder.build();
}

}  // namespace georank::gen
