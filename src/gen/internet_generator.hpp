// Materializes a WorldSpec into a World: topology, address plan,
// geolocation database (with noise), collector inventory, allocations.
//
// Construction order matters and mirrors how the real structures arise:
//   1. global transit: tier-1 clique, tier-2 buyers, hypergiants;
//   2. per-country markets: incumbents (with split domestic/international
//      ASes), challengers, regionals, stubs, IXP peering;
//   3. cross-cutting peering: liberal peers (Hurricane pattern),
//      hypergiant on-ramps, same-continent incumbent meshes;
//   4. address plan: one contiguous region per country, carved into
//      power-of-two prefixes per AS (plus deliberate overlaps and
//      cross-country mixtures);
//   5. geolocation DB from the address plan plus noise;
//   6. vantage points and collectors (one per country + one multihop).
//
// Everything is driven by one seeded PCG32: the same spec always yields
// the same world.
#pragma once

#include "gen/world.hpp"
#include "gen/world_spec.hpp"
#include "util/rng.hpp"

namespace georank::gen {

class InternetGenerator {
 public:
  explicit InternetGenerator(WorldSpec spec);

  [[nodiscard]] World generate();

 private:
  WorldSpec spec_;
};

}  // namespace georank::gen
