#include "gen/rib_generator.hpp"

#include <algorithm>
#include <unordered_map>

#include "topo/route_propagation.hpp"

namespace georank::gen {

namespace {

std::uint64_t prefix_salt(const bgp::Prefix& p) noexcept {
  std::uint64_t x = (static_cast<std::uint64_t>(p.address()) << 8) | p.length();
  x *= 0x9e3779b97f4a7c15ull;
  x ^= x >> 32;
  return x | 1;  // never zero: zero selects the plain lowest-ASN tiebreak
}

}  // namespace

RibGenerator::RibGenerator(const World& world, NoiseSpec noise, std::uint64_t seed)
    : world_(&world), noise_(noise), seed_(seed) {}

bgp::RibCollection RibGenerator::generate(int days) const {
  util::Pcg32 rng{seed_};
  const topo::AsGraph& graph = world_->graph;
  topo::RoutePropagator propagator{graph};

  std::vector<bgp::VpId> vps = world_->vps.all_vps();
  // VP AS node ids resolved once.
  std::vector<topo::NodeId> vp_nodes(vps.size());
  for (std::size_t i = 0; i < vps.size(); ++i) {
    vp_nodes[i] = graph.id_of(vps[i].asn);
  }

  // Flap schedule: flapping prefixes miss 1..2 random days. Instability
  // is an EDGE phenomenon: small customer prefixes flap at the configured
  // rate, while an incumbent's core aggregates (< /18) almost never
  // vanish from a day's table.
  std::unordered_map<bgp::Prefix, std::uint32_t, bgp::PrefixHash> missing_days;
  for (const Origination& o : world_->originations) {
    double rate = noise_.prefix_flap_rate * (o.prefix.length() >= 18 ? 1.0 : 0.05);
    if (rng.chance(rate)) {
      std::uint32_t mask = 0;
      int gone = 1 + static_cast<int>(rng.below(2));
      for (int g = 0; g < gone; ++g) {
        mask |= 1u << rng.below(static_cast<std::uint32_t>(days));
      }
      missing_days[o.prefix] = mask;
    }
  }

  // Country of each AS (for route-server injection at in-country links).
  auto home_of = [&](bgp::Asn asn) {
    const AsInfo* info = world_->info(asn);
    return info ? info->home : geo::kNoCountry;
  };
  std::unordered_map<geo::CountryCode, bgp::Asn, geo::CountryCodeHash> rs_of_country;
  for (bgp::Asn rs : world_->route_servers) {
    rs_of_country[home_of(rs)] = rs;
  }

  auto in_clique = [&](bgp::Asn a) {
    return std::binary_search(world_->clique.begin(), world_->clique.end(), a);
  };

  bgp::RibCollection out;
  out.days.resize(static_cast<std::size_t>(days));
  for (int d = 0; d < days; ++d) out.days[static_cast<std::size_t>(d)].day = d;

  for (const Origination& o : world_->originations) {
    topo::RoutingTable table = propagator.compute(o.origin, prefix_salt(o.prefix));
    std::uint32_t missing = 0;
    if (auto it = missing_days.find(o.prefix); it != missing_days.end()) {
      missing = it->second;
    }

    for (std::size_t v = 0; v < vps.size(); ++v) {
      bgp::AsPath path = table.path_from(vp_nodes[v]);
      if (path.empty()) continue;

      // ---- Noise: at most one structural artifact per (VP, prefix),
      // persisted across days (real poisonings/loops are persistent). ----
      std::vector<bgp::Asn> hops(path.hops().begin(), path.hops().end());
      double roll = rng.uniform();
      if (roll < noise_.loop_rate && hops.size() >= 3) {
        // "A C A": repeat an earlier hop after a later one.
        hops.insert(hops.end() - 1, hops[0]);
      } else if (roll < noise_.loop_rate + noise_.poison_rate) {
        // Insert a foreign AS between two adjacent clique hops if any.
        for (std::size_t i = 0; i + 1 < hops.size(); ++i) {
          if (in_clique(hops[i]) && in_clique(hops[i + 1])) {
            bgp::Asn foreign = world_->bogus_asn_first
                                   ? 64512 + rng.below(100)  // private-use ASN
                                   : 64512;
            hops.insert(hops.begin() + static_cast<std::ptrdiff_t>(i) + 1, foreign);
            break;
          }
        }
      } else if (roll < noise_.loop_rate + noise_.poison_rate +
                            noise_.unallocated_rate) {
        bgp::Asn bogus =
            world_->bogus_asn_first +
            rng.below(world_->bogus_asn_last - world_->bogus_asn_first + 1);
        std::size_t pos = 1 + rng.below(static_cast<std::uint32_t>(hops.size()));
        hops.insert(hops.begin() + static_cast<std::ptrdiff_t>(
                                       std::min(pos, hops.size())),
                    bogus);
      } else if (rng.chance(noise_.prepend_rate)) {
        // Benign traffic-engineering prepending at the origin.
        hops.push_back(hops.back());
      }

      // Route-server retention: if two adjacent hops are in-country peers
      // of a country with an IXP route server, the RS sometimes shows up.
      if (!rs_of_country.empty() && rng.chance(noise_.route_server_rate)) {
        for (std::size_t i = 0; i + 1 < hops.size(); ++i) {
          geo::CountryCode ca = home_of(hops[i]);
          if (!ca.valid() || ca != home_of(hops[i + 1])) continue;
          auto rs = rs_of_country.find(ca);
          if (rs == rs_of_country.end()) continue;
          auto rel = world_->graph.relationship(hops[i], hops[i + 1]);
          if (rel && *rel == topo::Rel::kPeer) {
            hops.insert(hops.begin() + static_cast<std::ptrdiff_t>(i) + 1,
                        rs->second);
            break;
          }
        }
      }

      bgp::RouteEntry entry{vps[v], o.prefix, bgp::AsPath{std::move(hops)}};
      for (int d = 0; d < days; ++d) {
        if (missing & (1u << d)) continue;
        out.days[static_cast<std::size_t>(d)].entries.push_back(entry);
      }
    }
  }
  return out;
}

}  // namespace georank::gen
