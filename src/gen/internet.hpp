// Internet-scale world preset (`georank generate --preset internet`).
//
// The WorldSpec machinery (world_spec.hpp) scripts a few dozen countries
// with hand-tuned market structure — ideal for validating the paper's
// scenarios, hopeless at the ROADMAP's internet-scale target. This
// preset instead grows a topology with the aggregate shape "The
// Internet AS-Level Topology" (PAPERS.md) measures: a tier-1 clique,
// preferential-attachment provider selection (so transit degrees come
// out power-law), Zipf-distributed country sizes, and stub-heavy edges.
//
// `scale` is the one knob: scale 1 ≈ 750 ASes / 10k prefixes, scale 100
// ≈ 75k ASes / 1M prefixes. Everything else (countries, clique, VPs,
// feed coverage) is derived sublinearly, mirroring how the real
// Internet grows.
//
// RIB synthesis is the part that must change at this size: the default
// generator roots one valley-free propagation per ORIGINATION, which is
// O(prefixes x (V+E)) — infeasible at a million prefixes. Here we root
// one route tree per VP instead (compute(vp_asn)): the best valley-free
// path from origin o to the VP, reversed, is a valley-free VP-to-origin
// path, so each VP's whole table costs one O(V+E) sweep. Per-(VP,
// prefix) feeds are then thinned by a deterministic hash so the average
// prefix keeps ~feeds_per_prefix() VPs — the partial-feed structure
// "Measuring Internet Routing from the Most Valuable Points" (PAPERS.md)
// documents — keeping RIB volume linear in prefixes, not VPs x prefixes.
//
// Determinism: everything derives from (scale, seed) through Pcg32 and
// the VP list is taken in sorted order, so generate() + synthesize_ribs()
// are bit-identical across runs and platforms.
#pragma once

#include <cstdint>

#include "bgp/route.hpp"
#include "gen/world.hpp"

namespace georank::gen {

struct InternetSpec {
  /// World-size multiplier: ASes/prefixes scale linearly, countries,
  /// clique, VPs and feeds sublinearly.
  double scale = 1.0;
  std::uint64_t seed = 0xA5;
  /// Snapshot days to emit (identical tables per day; the flap/noise
  /// machinery belongs to the scripted presets).
  int rib_days = 1;

  [[nodiscard]] std::size_t as_count() const;
  [[nodiscard]] std::size_t prefix_target() const;
  [[nodiscard]] std::size_t country_count() const;
  [[nodiscard]] std::size_t clique_size() const;
  [[nodiscard]] std::size_t vp_count() const;
  /// Average number of VP feeds retained per prefix.
  [[nodiscard]] double feeds_per_prefix() const;
};

[[nodiscard]] InternetSpec internet_spec(double scale, std::uint64_t seed = 0xA5);

class InternetScaleGenerator {
 public:
  explicit InternetScaleGenerator(InternetSpec spec);

  /// Topology, address plan, geolocation DB, VPs — everything but RIBs.
  [[nodiscard]] World generate() const;

  /// Per-VP-rooted valley-free RIB synthesis over a generated world (see
  /// file comment). Deterministic for a given (world, spec).
  [[nodiscard]] bgp::RibCollection synthesize_ribs(const World& world) const;

 private:
  InternetSpec spec_;
};

}  // namespace georank::gen
