// A fully materialized synthetic Internet: everything the pipeline's
// real-world counterpart downloads (topology as routed, collector
// metadata, geolocation DB, IANA allocations) plus the ground truth the
// real world never reveals (true relationships, true AS countries).
#pragma once

#include <string>
#include <unordered_map>
#include <vector>

#include "bgp/prefix.hpp"
#include "bgp/route.hpp"
#include "geo/geo_db.hpp"
#include "geo/vp_geolocator.hpp"
#include "rank/ahc.hpp"
#include "sanitize/asn_registry.hpp"
#include "topo/as_graph.hpp"

namespace georank::gen {

enum class AsRole : std::uint8_t {
  kTier1,
  kTier2,
  kIncumbentDomestic,
  kIncumbentInternational,
  kChallenger,
  kRegional,
  kStub,
  kHypergiant,
  kRouteServer,
};

struct AsInfo {
  std::string name;
  geo::CountryCode registered;  // WHOIS registration country
  geo::CountryCode home;        // where it actually operates (stubs etc.)
  AsRole role = AsRole::kStub;
};

struct Origination {
  bgp::Prefix prefix;
  bgp::Asn origin;
};

struct World {
  topo::AsGraph graph;  // ground-truth relationships
  std::unordered_map<bgp::Asn, AsInfo> as_info;
  std::vector<Origination> originations;
  geo::GeoDatabase geo_db;
  geo::VpGeolocator vps;
  sanitize::AsnRegistry asn_registry;
  rank::AsRegistry as_registry;  // asn -> registration country (for AHC)
  std::vector<bgp::Asn> route_servers;
  std::vector<bgp::Asn> clique;  // ground-truth tier 1 set
  /// Inclusive ASN range the generator never allocates; the noise
  /// injector draws "unallocated ASN" hops from here.
  bgp::Asn bogus_asn_first = 0, bogus_asn_last = 0;
  /// Country -> continent label (Table 12).
  std::unordered_map<geo::CountryCode, std::string, geo::CountryCodeHash> continents;

  [[nodiscard]] const AsInfo* info(bgp::Asn asn) const {
    auto it = as_info.find(asn);
    return it == as_info.end() ? nullptr : &it->second;
  }
  [[nodiscard]] std::string name_of(bgp::Asn asn) const {
    const AsInfo* i = info(asn);
    return i && !i->name.empty() ? i->name : ("AS" + std::to_string(asn));
  }
  /// ASNs whose info matches a predicate.
  template <typename Pred>
  [[nodiscard]] std::vector<bgp::Asn> ases_where(Pred&& pred) const {
    std::vector<bgp::Asn> out;
    for (const auto& [asn, info] : as_info) {
      if (pred(asn, info)) out.push_back(asn);
    }
    return out;
  }
};

}  // namespace georank::gen
