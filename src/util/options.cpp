#include "util/options.hpp"

#include <cctype>
#include <limits>
#include <vector>

namespace georank::util {

OptionParseError::OptionParseError(std::string key, std::string value,
                                   const std::string& need)
    : std::invalid_argument("bad --" + key + " '" + value + "': " + need),
      key_(std::move(key)),
      value_(std::move(value)) {}

std::optional<Options> Options::parse(int argc, const char* const* argv) {
  if (argc < 2) return std::nullopt;
  std::vector<std::string_view> tokens;
  tokens.reserve(static_cast<std::size_t>(argc - 1));
  for (int i = 1; i < argc; ++i) tokens.emplace_back(argv[i]);
  return parse(tokens);
}

std::optional<Options> Options::parse(std::span<const std::string_view> tokens) {
  if (tokens.empty()) return std::nullopt;
  Options options;
  options.command_ = std::string(tokens[0]);
  for (std::size_t i = 1; i < tokens.size(); ++i) {
    std::string_view arg = tokens[i];
    if (!arg.starts_with("--")) return std::nullopt;
    std::string key(arg.substr(2));
    // --key=value binds inline; otherwise the next non-flag token is the
    // value and a trailing flag is boolean.
    if (auto eq = key.find('='); eq != std::string::npos) {
      options.values_.insert_or_assign(key.substr(0, eq), key.substr(eq + 1));
    } else if (i + 1 < tokens.size() && tokens[i + 1].substr(0, 2) != "--") {
      options.values_.insert_or_assign(std::move(key), std::string(tokens[++i]));
    } else {
      options.values_.insert_or_assign(std::move(key), std::string("1"));
    }
  }
  return options;
}

std::string Options::get(const std::string& key, const std::string& fallback) const {
  auto it = values_.find(key);
  return it == values_.end() ? fallback : it->second;
}

bool Options::has(const std::string& key) const { return values_.contains(key); }

std::size_t Options::size_or(const std::string& key, std::size_t fallback) const {
  auto it = values_.find(key);
  return it == values_.end() ? fallback
                             : static_cast<std::size_t>(std::stoul(it->second));
}

std::uint64_t Options::u64_or(const std::string& key, std::uint64_t fallback) const {
  auto it = values_.find(key);
  return it == values_.end() ? fallback
                             : static_cast<std::uint64_t>(std::stoull(it->second));
}

int Options::int_or(const std::string& key, int fallback) const {
  auto it = values_.find(key);
  return it == values_.end() ? fallback : std::stoi(it->second);
}

double Options::double_or(const std::string& key, double fallback) const {
  auto it = values_.find(key);
  return it == values_.end() ? fallback : std::stod(it->second);
}

std::size_t Options::thread_count_or(const std::string& key,
                                     std::size_t fallback) const {
  auto it = values_.find(key);
  if (it == values_.end()) return fallback;
  const std::string& raw = it->second;
  std::uint64_t parsed = 0;
  bool ok = !raw.empty();
  for (char c : raw) {
    if (std::isdigit(static_cast<unsigned char>(c)) == 0) {
      ok = false;
      break;
    }
    parsed = parsed * 10 + static_cast<std::uint64_t>(c - '0');
    if (parsed > std::numeric_limits<std::uint32_t>::max()) {
      ok = false;
      break;
    }
  }
  if (!ok || parsed == 0) {
    throw OptionParseError(key, raw, "expected a positive thread count");
  }
  return static_cast<std::size_t>(parsed);
}

}  // namespace georank::util
