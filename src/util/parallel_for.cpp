#include "util/parallel_for.hpp"

#include <algorithm>
#include <atomic>
#include <cstdlib>
#include <numeric>
#include <string>
#include <thread>
#include <vector>

namespace georank::util {

std::size_t default_thread_count() {
  if (const char* env = std::getenv("GEORANK_THREADS")) {
    char* end = nullptr;
    const long parsed = std::strtol(env, &end, 10);
    if (end != env && *end == '\0' && parsed > 0) {
      return static_cast<std::size_t>(parsed);
    }
  }
  const unsigned hw = std::thread::hardware_concurrency();
  return hw == 0 ? 1 : hw;
}

void parallel_for(std::size_t n, const std::function<void(std::size_t)>& body,
                  std::size_t threads) {
  if (n == 0) return;
  if (threads == 0) threads = default_thread_count();
  if (threads > n) threads = n;
  if (threads <= 1) {
    for (std::size_t i = 0; i < n; ++i) body(i);
    return;
  }

  std::atomic<std::size_t> next{0};
  std::vector<std::thread> workers;
  workers.reserve(threads);
  for (std::size_t t = 0; t < threads; ++t) {
    workers.emplace_back([&] {
      for (;;) {
        const std::size_t i = next.fetch_add(1, std::memory_order_relaxed);
        if (i >= n) return;
        body(i);
      }
    });
  }
  for (std::thread& w : workers) w.join();
}

void parallel_for_costed(std::span<const std::uint64_t> costs,
                         const std::function<void(std::size_t)>& body,
                         std::size_t threads) {
  const std::size_t n = costs.size();
  if (n == 0) return;
  // Largest-first issue order: a stable sort keeps equal-cost items in
  // ascending index order, so the schedule is deterministic.
  std::vector<std::size_t> order(n);
  std::iota(order.begin(), order.end(), std::size_t{0});
  std::stable_sort(order.begin(), order.end(), [&](std::size_t a, std::size_t b) {
    return costs[a] > costs[b];
  });
  parallel_for(n, [&](std::size_t slot) { body(order[slot]); }, threads);
}

}  // namespace georank::util
