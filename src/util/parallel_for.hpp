// A deliberately small parallel-for: N worker threads pulling indices off
// a shared atomic counter. No task graph, no futures — the only parallel
// shape the pipeline needs is "run f(i) for i in [0, n) and join".
//
// Determinism contract: parallel_for guarantees nothing about execution
// ORDER, only that every index runs exactly once and all writes made by
// the body happen-before the return. Callers that need deterministic
// OUTPUT must write to disjoint, index-addressed slots (out[i] = f(i)),
// which makes the result independent of the schedule and hence of the
// thread count.
#pragma once

#include <cstddef>
#include <cstdint>
#include <functional>
#include <span>

namespace georank::util {

/// Worker count used by parallel_for when `threads == 0`: the
/// GEORANK_THREADS environment variable if set to a positive integer,
/// otherwise std::thread::hardware_concurrency() (min 1).
[[nodiscard]] std::size_t default_thread_count();

/// Runs body(i) for every i in [0, n), distributing indices over
/// `threads` workers (0 = default_thread_count()). Runs inline on the
/// calling thread when n <= 1 or only one worker is requested. The body
/// must be safe to invoke concurrently from multiple threads; exceptions
/// thrown by it terminate (workers run noexcept loops).
void parallel_for(std::size_t n, const std::function<void(std::size_t)>& body,
                  std::size_t threads = 0);

/// parallel_for with largest-first scheduling: runs body(i) for every
/// i in [0, costs.size()), but workers pull indices in descending
/// `costs[i]` order (ties broken by ascending index) instead of
/// ascending index order. With work-pulling this keeps one expensive
/// item (a giant country shard) from being picked up last and
/// serializing the join. Same determinism contract as parallel_for:
/// order of execution is unspecified, so bodies must write disjoint,
/// index-addressed slots.
void parallel_for_costed(std::span<const std::uint64_t> costs,
                         const std::function<void(std::size_t)>& body,
                         std::size_t threads = 0);

}  // namespace georank::util
