#include "util/table.hpp"

#include <algorithm>
#include <ostream>
#include <sstream>

namespace georank::util {

Table::Table(std::vector<std::string> headers)
    : headers_(std::move(headers)), aligns_(headers_.size(), Align::kLeft) {}

void Table::set_align(std::size_t column, Align align) {
  if (column < aligns_.size()) aligns_[column] = align;
}

void Table::add_row(std::vector<std::string> cells) {
  cells.resize(headers_.size());
  rows_.push_back(Row{std::move(cells), false});
}

void Table::add_rule() { rows_.push_back(Row{{}, true}); }

std::string Table::render() const {
  std::vector<std::size_t> widths(headers_.size());
  for (std::size_t c = 0; c < headers_.size(); ++c) widths[c] = headers_[c].size();
  for (const Row& row : rows_) {
    if (row.rule) continue;
    for (std::size_t c = 0; c < row.cells.size(); ++c) {
      widths[c] = std::max(widths[c], row.cells[c].size());
    }
  }

  auto pad = [&](const std::string& s, std::size_t c) {
    std::string out;
    std::size_t fill = widths[c] > s.size() ? widths[c] - s.size() : 0;
    if (aligns_[c] == Align::kRight) out.append(fill, ' ');
    out += s;
    if (aligns_[c] == Align::kLeft) out.append(fill, ' ');
    return out;
  };

  std::ostringstream os;
  auto rule = [&] {
    os << '+';
    for (std::size_t c = 0; c < widths.size(); ++c) {
      os << std::string(widths[c] + 2, '-') << '+';
    }
    os << '\n';
  };

  rule();
  os << '|';
  for (std::size_t c = 0; c < headers_.size(); ++c) {
    os << ' ' << pad(headers_[c], c) << " |";
  }
  os << '\n';
  rule();
  for (const Row& row : rows_) {
    if (row.rule) {
      rule();
      continue;
    }
    os << '|';
    for (std::size_t c = 0; c < row.cells.size(); ++c) {
      os << ' ' << pad(row.cells[c], c) << " |";
    }
    os << '\n';
  }
  rule();
  return os.str();
}

void Table::print(std::ostream& os) const { os << render(); }

}  // namespace georank::util
