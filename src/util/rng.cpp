#include "util/rng.hpp"

#include <algorithm>
#include <cmath>

namespace georank::util {

std::uint64_t splitmix64(std::uint64_t& state) noexcept {
  std::uint64_t z = (state += 0x9e3779b97f4a7c15ull);
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
  return z ^ (z >> 31);
}

Pcg32::Pcg32(std::uint64_t seed, std::uint64_t stream) noexcept {
  std::uint64_t sm = seed;
  state_ = splitmix64(sm);
  inc_ = (splitmix64(sm) + stream * 2u) | 1u;
  (void)next();  // advance past the correlated first output
}

std::uint32_t Pcg32::next() noexcept {
  std::uint64_t old = state_;
  state_ = old * 6364136223846793005ull + inc_;
  auto xorshifted = static_cast<std::uint32_t>(((old >> 18) ^ old) >> 27);
  auto rot = static_cast<std::uint32_t>(old >> 59);
  return (xorshifted >> rot) | (xorshifted << ((32 - rot) & 31));
}

std::uint32_t Pcg32::below(std::uint32_t bound) noexcept {
  if (bound <= 1) return 0;
  // Lemire's nearly-divisionless method.
  std::uint64_t m = static_cast<std::uint64_t>(next()) * bound;
  auto lo = static_cast<std::uint32_t>(m);
  if (lo < bound) {
    std::uint32_t threshold = (0u - bound) % bound;
    while (lo < threshold) {
      m = static_cast<std::uint64_t>(next()) * bound;
      lo = static_cast<std::uint32_t>(m);
    }
  }
  return static_cast<std::uint32_t>(m >> 32);
}

std::int64_t Pcg32::range(std::int64_t lo, std::int64_t hi) noexcept {
  auto span = static_cast<std::uint64_t>(hi - lo) + 1;
  if (span == 0 || span > 0xffffffffull) {
    // 64-bit span: combine two draws.
    std::uint64_t v = (static_cast<std::uint64_t>(next()) << 32) | next();
    return lo + static_cast<std::int64_t>(span == 0 ? v : v % span);
  }
  return lo + below(static_cast<std::uint32_t>(span));
}

double Pcg32::uniform() noexcept {
  return static_cast<double>(next() >> 8) * 0x1.0p-24;
}

bool Pcg32::chance(double p) noexcept {
  if (p <= 0.0) return false;
  if (p >= 1.0) return true;
  return uniform() < p;
}

std::uint64_t Pcg32::log_uniform(std::uint64_t lo, std::uint64_t hi) noexcept {
  if (lo == 0) lo = 1;
  if (hi <= lo) return lo;
  double u = uniform();
  double v = static_cast<double>(lo) *
             std::pow(static_cast<double>(hi) / static_cast<double>(lo), u);
  auto out = static_cast<std::uint64_t>(v);
  return std::clamp(out, lo, hi);
}

Pcg32 Pcg32::fork() noexcept {
  std::uint64_t seed = (static_cast<std::uint64_t>(next()) << 32) | next();
  std::uint64_t stream = (static_cast<std::uint64_t>(next()) << 32) | next();
  return Pcg32{seed, stream};
}

std::vector<std::size_t> sample_indices(std::size_t n, std::size_t k, Pcg32& rng) {
  if (k > n) k = n;
  // Partial Fisher-Yates over an index vector; O(n) setup, fine at our scale.
  std::vector<std::size_t> idx(n);
  for (std::size_t i = 0; i < n; ++i) idx[i] = i;
  for (std::size_t i = 0; i < k; ++i) {
    std::size_t j = i + rng.below(static_cast<std::uint32_t>(n - i));
    std::swap(idx[i], idx[j]);
  }
  idx.resize(k);
  return idx;
}

}  // namespace georank::util
