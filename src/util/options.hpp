// Command-line option parsing shared by the georank tools.
//
// The grammar is the one `georank` has used since its first subcommand:
//
//   <argv0> <command> [--key=value | --key value | --flag]...
//
// `--key=value` binds inline; otherwise the next token is the value
// unless it starts with `--`, in which case the key is a boolean flag
// (stored as "1"). Anything that is not a `--` option is a parse error
// — subcommands take no positional arguments.
//
// Extracted from tools/georank_cli.cpp so the serve/snapshot
// subcommands (and any future tool) don't re-implement the parser.
#pragma once

#include <cstddef>
#include <cstdint>
#include <map>
#include <optional>
#include <span>
#include <stdexcept>
#include <string>
#include <string_view>

namespace georank::util {

/// Typed parse failure for an option value that does not satisfy its
/// accessor's grammar (e.g. `--threads 0`). Derives from
/// std::invalid_argument so the tools' existing operational-error
/// handler catches it, but carries the key and raw value so the
/// message can say which option was wrong instead of "stoi".
class OptionParseError : public std::invalid_argument {
 public:
  OptionParseError(std::string key, std::string value, const std::string& need);

  [[nodiscard]] const std::string& key() const noexcept { return key_; }
  [[nodiscard]] const std::string& value() const noexcept { return value_; }

 private:
  std::string key_;
  std::string value_;
};

class Options {
 public:
  /// Parses `argv[1]` as the command and the rest as options. Returns
  /// nullopt when there is no command or a token is not a `--` option.
  [[nodiscard]] static std::optional<Options> parse(int argc,
                                                    const char* const* argv);

  /// Same grammar over a pre-split token list: `tokens[0]` is the
  /// command (argv[0] already removed). The views are read during the
  /// call only — every key/value is copied into owning strings, so the
  /// returned Options outlives whatever backed `tokens`.
  [[nodiscard]] static std::optional<Options> parse(
      std::span<const std::string_view> tokens);

  [[nodiscard]] const std::string& command() const noexcept { return command_; }

  [[nodiscard]] std::string get(const std::string& key,
                                const std::string& fallback = "") const;
  [[nodiscard]] bool has(const std::string& key) const;

  // Typed accessors with the CLI's historical semantics: std::stoX on
  // the raw value, so junk throws std::invalid_argument (mapped to the
  // operational-error exit code by the tools' top-level handler).
  [[nodiscard]] std::size_t size_or(const std::string& key,
                                    std::size_t fallback) const;
  [[nodiscard]] std::uint64_t u64_or(const std::string& key,
                                     std::uint64_t fallback) const;
  [[nodiscard]] int int_or(const std::string& key, int fallback) const;
  [[nodiscard]] double double_or(const std::string& key, double fallback) const;

  /// Strict accessor for thread/worker-count options. The whole value
  /// must be a decimal integer >= 1: "0", "-4", "8x" and "" all throw
  /// OptionParseError (size_or's std::stoul semantics silently accept
  /// every one of those). Returns `fallback` when the key is absent.
  [[nodiscard]] std::size_t thread_count_or(const std::string& key,
                                            std::size_t fallback) const;

  [[nodiscard]] std::size_t option_count() const noexcept {
    return values_.size();
  }

 private:
  std::string command_;
  std::map<std::string, std::string> values_;
};

}  // namespace georank::util
