// ASCII table renderer used by the bench harnesses to print the paper's
// tables. Column widths are computed from content; alignment is per column.
#pragma once

#include <iosfwd>
#include <string>
#include <vector>

namespace georank::util {

enum class Align { kLeft, kRight };

class Table {
 public:
  /// Column headers fix the column count; extra row cells are dropped,
  /// missing cells render empty.
  explicit Table(std::vector<std::string> headers);

  void set_align(std::size_t column, Align align);
  void add_row(std::vector<std::string> cells);
  /// Horizontal rule between row groups.
  void add_rule();

  [[nodiscard]] std::size_t row_count() const noexcept { return rows_.size(); }
  [[nodiscard]] std::string render() const;
  void print(std::ostream& os) const;

 private:
  struct Row {
    std::vector<std::string> cells;
    bool rule = false;
  };
  std::vector<std::string> headers_;
  std::vector<Align> aligns_;
  std::vector<Row> rows_;
};

}  // namespace georank::util
