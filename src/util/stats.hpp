// Small statistics helpers shared by the ranking metrics and the
// stability analyses. All functions treat empty inputs as 0.0 unless noted.
#pragma once

#include <cstddef>
#include <span>
#include <vector>

namespace georank::util {

[[nodiscard]] double mean(std::span<const double> xs) noexcept;
[[nodiscard]] double stdev(std::span<const double> xs) noexcept;

/// Median; averages the middle pair for even sizes. Copies + sorts.
[[nodiscard]] double median(std::span<const double> xs);

/// Linear-interpolation percentile, q in [0,1]. Copies + sorts.
[[nodiscard]] double percentile(std::span<const double> xs, double q);

/// Mean after removing floor(frac*n) items from EACH end of the sorted
/// sample. This is the AS-Hegemony "remove the highest and lowest 10% of
/// per-VP scores" operation (Fontugne et al. 2017) when frac = 0.10.
/// If trimming would remove everything, falls back to the plain mean.
[[nodiscard]] double trimmed_mean(std::span<const double> xs, double frac);

/// Gini coefficient of a non-negative sample; 0 for empty input.
/// Used to describe market concentration in country reports.
[[nodiscard]] double gini(std::span<const double> xs);

/// Spearman rank correlation between two equal-length value vectors.
/// Ties get average ranks. Returns 0 for n < 2.
[[nodiscard]] double spearman(std::span<const double> a, std::span<const double> b);

/// Ranks (1-based, ties averaged) of a value vector, highest value = rank 1.
[[nodiscard]] std::vector<double> descending_ranks(std::span<const double> xs);

}  // namespace georank::util
