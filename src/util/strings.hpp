// String helpers used throughout the parsing / reporting layers.
#pragma once

#include <charconv>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

namespace georank::util {

/// Split on a single-character delimiter; keeps empty fields.
[[nodiscard]] std::vector<std::string_view> split(std::string_view s, char delim);

/// Split on runs of ASCII whitespace; drops empty fields.
[[nodiscard]] std::vector<std::string_view> split_ws(std::string_view s);

[[nodiscard]] std::string_view trim(std::string_view s) noexcept;

[[nodiscard]] std::string join(const std::vector<std::string>& parts,
                               std::string_view sep);

/// Strict decimal parse of the WHOLE string; nullopt on any junk.
template <typename Int>
[[nodiscard]] std::optional<Int> parse_int(std::string_view s) noexcept {
  if (s.empty()) return std::nullopt;
  Int value{};
  const char* first = s.data();
  const char* last = s.data() + s.size();
  auto [ptr, ec] = std::from_chars(first, last, value);
  if (ec != std::errc{} || ptr != last) return std::nullopt;
  return value;
}

/// Human-readable count: 1234567 -> "1.2 m", 10543 -> "10.5 k".
[[nodiscard]] std::string human_count(double value);

/// "%5.1f%%"-style percent formatting used in the report tables.
[[nodiscard]] std::string percent(double fraction, int decimals = 0);

}  // namespace georank::util
