#include "util/strings.hpp"

#include <cctype>
#include <cstdio>

namespace georank::util {

std::vector<std::string_view> split(std::string_view s, char delim) {
  std::vector<std::string_view> out;
  std::size_t start = 0;
  while (true) {
    std::size_t pos = s.find(delim, start);
    if (pos == std::string_view::npos) {
      out.push_back(s.substr(start));
      break;
    }
    out.push_back(s.substr(start, pos - start));
    start = pos + 1;
  }
  return out;
}

std::vector<std::string_view> split_ws(std::string_view s) {
  std::vector<std::string_view> out;
  std::size_t i = 0;
  while (i < s.size()) {
    while (i < s.size() && std::isspace(static_cast<unsigned char>(s[i]))) ++i;
    std::size_t start = i;
    while (i < s.size() && !std::isspace(static_cast<unsigned char>(s[i]))) ++i;
    if (i > start) out.push_back(s.substr(start, i - start));
  }
  return out;
}

std::string_view trim(std::string_view s) noexcept {
  std::size_t b = 0;
  while (b < s.size() && std::isspace(static_cast<unsigned char>(s[b]))) ++b;
  std::size_t e = s.size();
  while (e > b && std::isspace(static_cast<unsigned char>(s[e - 1]))) --e;
  return s.substr(b, e - b);
}

std::string join(const std::vector<std::string>& parts, std::string_view sep) {
  std::string out;
  for (std::size_t i = 0; i < parts.size(); ++i) {
    if (i) out.append(sep);
    out.append(parts[i]);
  }
  return out;
}

std::string human_count(double value) {
  char buf[64];
  if (value >= 1e9) {
    std::snprintf(buf, sizeof buf, "%.1f b", value / 1e9);
  } else if (value >= 1e6) {
    std::snprintf(buf, sizeof buf, "%.1f m", value / 1e6);
  } else if (value >= 1e3) {
    std::snprintf(buf, sizeof buf, "%.1f k", value / 1e3);
  } else {
    std::snprintf(buf, sizeof buf, "%.0f", value);
  }
  return buf;
}

std::string percent(double fraction, int decimals) {
  char buf[64];
  std::snprintf(buf, sizeof buf, "%.*f%%", decimals, fraction * 100.0);
  return buf;
}

}  // namespace georank::util
