// Thread-safety annotations (Clang -Wthread-safety dialect).
//
// Under Clang these expand to the real capability attributes, so a
// clang build (or clang-tidy run) type-checks lock discipline; under
// GCC they vanish. Either way they are machine-readable documentation:
// georank_lint rule GR020 checks every GEORANK_GUARDED_BY names a lock
// that exists in the enclosing class, and GR021 requires every
// `mutable` member to either carry one of these annotations or a
// `// lint: guarded(<how>)` justification.
#pragma once

#if defined(__clang__)
#define GEORANK_THREAD_ANNOTATION(x) __attribute__((x))
#else
#define GEORANK_THREAD_ANNOTATION(x)
#endif

/// Marks a type as a lockable capability (mutexes, shared_mutexes).
#define GEORANK_CAPABILITY(x) GEORANK_THREAD_ANNOTATION(capability(x))

/// Member may only be read or written while holding `x`.
#define GEORANK_GUARDED_BY(x) GEORANK_THREAD_ANNOTATION(guarded_by(x))

/// Pointee (not the pointer) is guarded by `x`.
#define GEORANK_PT_GUARDED_BY(x) GEORANK_THREAD_ANNOTATION(pt_guarded_by(x))

/// Function requires the caller to hold `x`.
#define GEORANK_REQUIRES(...) \
  GEORANK_THREAD_ANNOTATION(requires_capability(__VA_ARGS__))

/// Function acquires/releases `x` itself.
#define GEORANK_ACQUIRE(...) \
  GEORANK_THREAD_ANNOTATION(acquire_capability(__VA_ARGS__))
#define GEORANK_RELEASE(...) \
  GEORANK_THREAD_ANNOTATION(release_capability(__VA_ARGS__))

/// Function must NOT be called with `x` held (deadlock documentation).
#define GEORANK_EXCLUDES(...) GEORANK_THREAD_ANNOTATION(locks_excluded(__VA_ARGS__))

/// Escape hatch for code whose safety is established out-of-band.
#define GEORANK_NO_THREAD_SAFETY_ANALYSIS \
  GEORANK_THREAD_ANNOTATION(no_thread_safety_analysis)
