// Deterministic pseudo-random number generation for reproducible worlds.
//
// We deliberately avoid <random> distributions: their outputs are
// implementation-defined, and every experiment in this repository must
// reproduce bit-identically across standard libraries. PCG32 supplies the
// raw stream and the helpers below define the distributions ourselves.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

namespace georank::util {

/// Splits a 64-bit seed into well-mixed streams (Steele et al., SplitMix64).
[[nodiscard]] std::uint64_t splitmix64(std::uint64_t& state) noexcept;

/// PCG32 (O'Neill): small, fast, statistically solid 32-bit generator.
class Pcg32 {
 public:
  using result_type = std::uint32_t;

  explicit Pcg32(std::uint64_t seed, std::uint64_t stream = 0) noexcept;

  [[nodiscard]] std::uint32_t next() noexcept;
  std::uint32_t operator()() noexcept { return next(); }

  static constexpr std::uint32_t min() { return 0; }
  static constexpr std::uint32_t max() { return 0xffffffffu; }

  /// Uniform integer in [0, bound), bias-free (Lemire rejection).
  [[nodiscard]] std::uint32_t below(std::uint32_t bound) noexcept;

  /// Uniform integer in [lo, hi] inclusive. Requires lo <= hi.
  [[nodiscard]] std::int64_t range(std::int64_t lo, std::int64_t hi) noexcept;

  /// Uniform double in [0, 1).
  [[nodiscard]] double uniform() noexcept;

  /// True with probability p (clamped to [0,1]).
  [[nodiscard]] bool chance(double p) noexcept;

  /// Geometric-ish heavy-tailed size in [lo, hi]: lo * (hi/lo)^u.
  /// Used for address-space sizes, which are log-uniform in practice.
  [[nodiscard]] std::uint64_t log_uniform(std::uint64_t lo, std::uint64_t hi) noexcept;

  /// Derive an independent generator for a named sub-purpose.
  [[nodiscard]] Pcg32 fork() noexcept;

 private:
  std::uint64_t state_;
  std::uint64_t inc_;
};

/// Fisher-Yates shuffle with our deterministic generator.
template <typename T>
void shuffle(std::span<T> items, Pcg32& rng) {
  for (std::size_t i = items.size(); i > 1; --i) {
    std::size_t j = rng.below(static_cast<std::uint32_t>(i));
    using std::swap;
    swap(items[i - 1], items[j]);
  }
}

/// k distinct indices drawn uniformly from [0, n), in random order.
[[nodiscard]] std::vector<std::size_t> sample_indices(std::size_t n, std::size_t k,
                                                      Pcg32& rng);

}  // namespace georank::util
