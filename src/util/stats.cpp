#include "util/stats.hpp"

#include <algorithm>
#include <cmath>
#include <numeric>

namespace georank::util {

double mean(std::span<const double> xs) noexcept {
  if (xs.empty()) return 0.0;
  double sum = std::accumulate(xs.begin(), xs.end(), 0.0);
  return sum / static_cast<double>(xs.size());
}

double stdev(std::span<const double> xs) noexcept {
  if (xs.size() < 2) return 0.0;
  double m = mean(xs);
  double ss = 0.0;
  for (double x : xs) ss += (x - m) * (x - m);
  return std::sqrt(ss / static_cast<double>(xs.size() - 1));
}

double median(std::span<const double> xs) {
  if (xs.empty()) return 0.0;
  std::vector<double> v(xs.begin(), xs.end());
  std::sort(v.begin(), v.end());
  std::size_t n = v.size();
  if (n % 2 == 1) return v[n / 2];
  return 0.5 * (v[n / 2 - 1] + v[n / 2]);
}

double percentile(std::span<const double> xs, double q) {
  if (xs.empty()) return 0.0;
  std::vector<double> v(xs.begin(), xs.end());
  std::sort(v.begin(), v.end());
  q = std::clamp(q, 0.0, 1.0);
  double pos = q * static_cast<double>(v.size() - 1);
  auto lo = static_cast<std::size_t>(pos);
  std::size_t hi = std::min(lo + 1, v.size() - 1);
  double frac = pos - static_cast<double>(lo);
  return v[lo] * (1.0 - frac) + v[hi] * frac;
}

double trimmed_mean(std::span<const double> xs, double frac) {
  if (xs.empty()) return 0.0;
  frac = std::clamp(frac, 0.0, 0.5);
  std::vector<double> v(xs.begin(), xs.end());
  std::sort(v.begin(), v.end());
  auto cut = static_cast<std::size_t>(frac * static_cast<double>(v.size()));
  if (2 * cut >= v.size()) {
    return mean(std::span<const double>(v.data(), v.size()));
  }
  double sum = std::accumulate(v.begin() + static_cast<std::ptrdiff_t>(cut),
                               v.end() - static_cast<std::ptrdiff_t>(cut), 0.0);
  return sum / static_cast<double>(v.size() - 2 * cut);
}

double gini(std::span<const double> xs) {
  if (xs.empty()) return 0.0;
  std::vector<double> v(xs.begin(), xs.end());
  std::sort(v.begin(), v.end());
  double total = std::accumulate(v.begin(), v.end(), 0.0);
  if (total <= 0.0) return 0.0;
  double weighted = 0.0;
  for (std::size_t i = 0; i < v.size(); ++i) {
    weighted += static_cast<double>(i + 1) * v[i];
  }
  double n = static_cast<double>(v.size());
  return (2.0 * weighted) / (n * total) - (n + 1.0) / n;
}

std::vector<double> descending_ranks(std::span<const double> xs) {
  std::size_t n = xs.size();
  std::vector<std::size_t> order(n);
  std::iota(order.begin(), order.end(), std::size_t{0});
  std::sort(order.begin(), order.end(),
            [&](std::size_t a, std::size_t b) { return xs[a] > xs[b]; });
  std::vector<double> ranks(n, 0.0);
  std::size_t i = 0;
  while (i < n) {
    std::size_t j = i;
    while (j + 1 < n && xs[order[j + 1]] == xs[order[i]]) ++j;
    double avg = 0.5 * static_cast<double>(i + j) + 1.0;  // 1-based average rank
    for (std::size_t k = i; k <= j; ++k) ranks[order[k]] = avg;
    i = j + 1;
  }
  return ranks;
}

double spearman(std::span<const double> a, std::span<const double> b) {
  if (a.size() != b.size() || a.size() < 2) return 0.0;
  auto ra = descending_ranks(a);
  auto rb = descending_ranks(b);
  double ma = mean(ra), mb = mean(rb);
  double num = 0.0, da = 0.0, db = 0.0;
  for (std::size_t i = 0; i < ra.size(); ++i) {
    num += (ra[i] - ma) * (rb[i] - mb);
    da += (ra[i] - ma) * (ra[i] - ma);
    db += (rb[i] - mb) * (rb[i] - mb);
  }
  if (da == 0.0 || db == 0.0) return 0.0;
  return num / std::sqrt(da * db);
}

}  // namespace georank::util
