#include "serve/snapshot.hpp"

#include <algorithm>

#include "core/pipeline.hpp"

namespace georank::serve {

const core::CountryMetrics* Snapshot::find(geo::CountryCode country) const {
  auto it = std::lower_bound(
      countries.begin(), countries.end(), country,
      [](const core::CountryMetrics& m, geo::CountryCode c) {
        return m.country < c;
      });
  if (it == countries.end() || it->country != country) return nullptr;
  return &*it;
}

Snapshot Snapshot::build(const core::Pipeline& pipeline, SnapshotMeta meta) {
  // Both phases consume the pipeline's per-country shards in parallel:
  // the census fans out over shards largest-first (all_countries), and
  // the health report runs one worker per shard (compute_health's
  // ShardedPathStore path). Nothing here touches global rows.
  Snapshot snapshot;
  snapshot.meta = std::move(meta);
  snapshot.countries = pipeline.all_countries();
  snapshot.health =
      robust::compute_health(pipeline, pipeline.config().degradation);
  return snapshot;
}

}  // namespace georank::serve
