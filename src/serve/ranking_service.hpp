// serve::RankingService — the in-process query API over immutable
// snapshots.
//
// Concurrency model (RCU-style): the active serve::Snapshot is an
// immutable value behind a shared_mutex-guarded shared_ptr. current()
// takes the shared lock just long enough to copy the pointer — readers
// never block each other, and a publish() blocks them only for that
// pointer swap. A request in flight keeps its shared_ptr alive and
// finishes against the world it started with, so responses are never
// torn across a reload. (std::atomic<std::shared_ptr> would make the
// swap wait-free, but libstdc++ 12's _Sp_atomic unlocks its embedded
// spin bit with a relaxed store, which ThreadSanitizer rightly cannot
// prove race-free — the same shared_mutex idiom core::Pipeline uses is
// just as fast here and verifiable.) A small bounded history of
// published snapshots feeds the delta/timeline queries
// (core::rank_delta / core::timeline over consecutive publishes).
//
// handle() is the HTTP-shaped front door: it routes a request target
// ("/v1/rankings?country=AU&metric=cci") to a JSON response, so the
// transport (serve::HttpServer) stays a dumb byte pump and unit tests
// can drive the exact serving logic without sockets. Rendered 200
// responses go through a bounded LRU keyed by (target, snapshot id) —
// a reload naturally invalidates every key.
#pragma once

#include <array>
#include <atomic>
#include <cstdint>
#include <deque>
#include <list>
#include <memory>
#include <mutex>
#include <optional>
#include <shared_mutex>
#include <string>
#include <string_view>
#include <unordered_map>
#include <utility>
#include <vector>

#include "core/rank_delta.hpp"
#include "core/timeline.hpp"
#include "robust/staleness.hpp"
#include "scenario/engine.hpp"
#include "serve/snapshot.hpp"
#include "util/thread_safety.hpp"

namespace georank::serve {

/// The four served metrics, shared with the timeline machinery.
using Metric = core::TimelineMetric;

/// "cci" / "ccn" / "ahi" / "ahn" (case-insensitive); nullopt otherwise.
[[nodiscard]] std::optional<Metric> parse_metric(std::string_view text) noexcept;
/// Returned view points at a string literal (static storage): never dangles.
[[nodiscard]] std::string_view to_string(Metric metric) noexcept;

/// Selects a metric's ranking from a snapshot entry (delegates to
/// core::select_metric).
[[nodiscard]] const rank::Ranking& ranking_of(const core::CountryMetrics& metrics,
                                              Metric metric);

struct Response {
  int status = 200;
  std::string content_type = "application/json";
  std::string body;
};

struct RankingServiceOptions {
  /// Rendered-response LRU entries (0 disables caching).
  std::size_t cache_capacity = 256;
  /// Snapshots retained for delta/timeline queries (>= 1).
  std::size_t history_limit = 8;
  /// top-K when the request does not say; requests are clamped to max.
  std::size_t default_top_k = 10;
  std::size_t max_top_k = 1000;
};

/// Live-ingest and republish accounting, set by the feeding layer
/// (live::UpdatePipeline after each flush, or the CLI after a replay)
/// and rendered into /metrics. All counters are cumulative over the
/// feeder's lifetime; zero until a feeder reports.
struct IngestCounters {
  std::uint64_t updates_applied = 0;
  std::uint64_t announces = 0;
  std::uint64_t withdraws = 0;
  /// Withdrawals of routes the live table never held (RibState evidence).
  std::uint64_t spurious_withdrawals = 0;
  /// Stream-contract violations skipped in tolerant mode.
  std::uint64_t out_of_order = 0;
  std::uint64_t day_out_of_range = 0;
  /// Update-archive parse diagnostics (MrtParseStats rollup).
  std::uint64_t parse_lines = 0;
  std::uint64_t parse_malformed = 0;
  /// Incremental republishes through publish(), and their latency.
  std::uint64_t republishes = 0;
  double republish_seconds_sum = 0.0;
  double last_republish_seconds = 0.0;
  std::uint64_t last_batch = 0;
  /// Reorder-overflow sheds (OverflowPolicy::kShedNewest, tolerant mode).
  std::uint64_t shed = 0;
  /// Checkpoint files published by the live pipeline.
  std::uint64_t checkpoints = 0;

  friend bool operator==(const IngestCounters&, const IngestCounters&) = default;
};

/// Live-pipeline freshness, set by the feeder from live::HealthMonitor
/// and rendered on /v1/health (a "live" block) and /metrics. The
/// never-fabricate principle again: a service with no live feeder
/// attached reports that (`valid` false — no "live" block, attached
/// gauge 0) instead of pretending to be fresh.
struct LiveHealth {
  bool valid = false;
  robust::ServingState state = robust::ServingState::kFresh;
  double age_seconds = 0.0;
  double stale_after_seconds = 0.0;
  double degraded_after_seconds = 0.0;
  /// Entries into each state, indexed by ServingState.
  std::array<std::uint64_t, robust::kServingStateCount> entered{};
  std::uint64_t reopen_failures = 0;
  std::uint64_t reopen_successes = 0;
  double last_backoff_seconds = 0.0;

  friend bool operator==(const LiveHealth&, const LiveHealth&) = default;
};

/// Monotonic counters, snapshotted for /metrics.
struct ServiceCounters {
  std::uint64_t requests = 0;
  std::uint64_t cache_hits = 0;
  std::uint64_t cache_misses = 0;
  std::uint64_t status_2xx = 0;
  std::uint64_t status_4xx = 0;
  std::uint64_t status_5xx = 0;
  std::uint64_t reloads = 0;
  /// meta.id of the active snapshot; 0 when none published yet.
  std::uint64_t active_snapshot_id = 0;
};

class RankingService {
 public:
  explicit RankingService(RankingServiceOptions options = {});

  /// RCU swap: readers in flight keep the old snapshot; new requests
  /// see the new one. Also appends to the delta/timeline history and
  /// resets the response cache. `snapshot` must not be null.
  void publish(std::shared_ptr<const Snapshot> snapshot);

  /// The active snapshot (nullptr before the first publish). Readers
  /// copy the pointer under a shared lock and then run lock-free on
  /// the immutable snapshot.
  [[nodiscard]] std::shared_ptr<const Snapshot> current() const;

  // ------------------------------------------------------------------
  // Structured queries (what the JSON endpoints render; tests compare
  // these against the batch pipeline/CLI results).

  /// Delta of `metric` for `country` between the two most recent
  /// snapshots — exactly core::compare_rankings over their rankings.
  /// With a single publish the comparison is snapshot-vs-itself (no
  /// movement). nullopt when no snapshot, or the country is in neither.
  struct DeltaResult {
    std::uint64_t before_id = 0;
    std::uint64_t after_id = 0;
    core::RankDelta delta;
  };
  [[nodiscard]] std::optional<DeltaResult> delta(geo::CountryCode country,
                                                 Metric metric,
                                                 std::size_t top_k);

  /// core::Timeline over every retained snapshot that contains
  /// `country`, labeled by snapshot label (or id when unlabeled).
  /// nullopt when the country appears in no retained snapshot.
  [[nodiscard]] std::optional<core::Timeline> timeline(geo::CountryCode country);

  // ------------------------------------------------------------------
  // HTTP-shaped front door.

  /// Routes a request target (path + optional query string) to a
  /// response. Known routes: /, /v1/rankings, /v1/as/{asn}, /v1/health,
  /// /v1/delta, /metrics. 400 = malformed parameter, 404 = unknown
  /// route/country, 503 = no snapshot published yet. Equivalent to
  /// handle("GET", target, {}).
  [[nodiscard]] Response handle(std::string_view target);

  /// Method-aware front door. POST is served only on /v1/whatif: `body`
  /// is a scenario DSL text, computed through the attached WhatIfEngine
  /// and LRU-cached by (scenario content hash, snapshot id) — publish()
  /// clears the cache, so republished snapshots never serve stale
  /// counterfactuals. 405 = method/route mismatch, 503 = no engine
  /// attached or no snapshot yet.
  [[nodiscard]] Response handle(std::string_view method,
                                std::string_view target,
                                std::string_view body);

  /// Attaches the counterfactual engine /v1/whatif queries run through
  /// (nullptr detaches; the endpoint then answers 503). The engine must
  /// outlive the service.
  void set_whatif(scenario::WhatIfEngine* engine) {
    whatif_.store(engine, std::memory_order_release);
  }

  /// Counter snapshot (relaxed reads; pair with /metrics rendering).
  [[nodiscard]] ServiceCounters counters() const;

  /// Replaces the ingest counter set (the feeder owns the accumulation;
  /// the service only exposes the latest values).
  void set_ingest(const IngestCounters& counters);
  [[nodiscard]] IngestCounters ingest() const;

  /// Replaces the live-health snapshot (ticked by the feeder loop).
  /// Bumps the health cache version so /v1/health re-renders even when
  /// the active snapshot has not changed.
  void set_live_health(const LiveHealth& health);
  [[nodiscard]] LiveHealth live_health() const;

  /// Prometheus-style text for the service-level counters, including
  /// the georank_ingest_*/georank_live_* lines. The HTTP server appends
  /// its transport metrics (latency histogram) to this.
  [[nodiscard]] std::string metrics_text() const;

  [[nodiscard]] const RankingServiceOptions& options() const noexcept {
    return options_;
  }

 private:
  struct HistoryPair {
    std::shared_ptr<const Snapshot> before, after;
  };
  [[nodiscard]] HistoryPair latest_pair();

  [[nodiscard]] Response route(std::string_view target);
  [[nodiscard]] Response render_whatif(std::string_view query,
                                       std::string_view body);
  [[nodiscard]] Response render_index(const Snapshot* snapshot) const;
  [[nodiscard]] Response render_rankings(const Snapshot& snapshot,
                                         std::string_view query) const;
  [[nodiscard]] Response render_as_lookup(const Snapshot& snapshot,
                                          std::string_view asn_text) const;
  [[nodiscard]] Response render_health(const Snapshot& snapshot) const;
  [[nodiscard]] Response render_delta(std::string_view query);

  [[nodiscard]] std::optional<std::string> cache_get(const std::string& key);
  void cache_put(const std::string& key, const std::string& body);

  RankingServiceOptions options_;

  // lint: guarded(the lock itself; mutable so current() stays const)
  mutable std::shared_mutex current_mutex_;
  std::shared_ptr<const Snapshot> current_ GEORANK_GUARDED_BY(current_mutex_);

  std::mutex history_mutex_;
  /// Oldest -> newest, bounded by options_.history_limit.
  std::deque<std::shared_ptr<const Snapshot>> history_
      GEORANK_GUARDED_BY(history_mutex_);

  std::mutex cache_mutex_;
  /// LRU: most recent at the front; index maps key -> list node.
  std::list<std::pair<std::string, std::string>> cache_lru_
      GEORANK_GUARDED_BY(cache_mutex_);
  std::unordered_map<std::string,
                     std::list<std::pair<std::string, std::string>>::iterator>
      cache_index_ GEORANK_GUARDED_BY(cache_mutex_);

  // lint: guarded(the lock itself; mutable so ingest_counters() stays const)
  mutable std::mutex ingest_mutex_;
  IngestCounters ingest_ GEORANK_GUARDED_BY(ingest_mutex_);
  LiveHealth live_health_ GEORANK_GUARDED_BY(ingest_mutex_);
  /// Folded into the /v1/health cache key: staleness changes must not
  /// serve a cached "fresh" body for the same snapshot id.
  std::atomic<std::uint64_t> live_health_version_{0};

  /// The counterfactual backend; detached (nullptr) unless the host
  /// wired one up (serve --dir; snapshot-file serving has no RIBs).
  std::atomic<scenario::WhatIfEngine*> whatif_{nullptr};

  std::atomic<std::uint64_t> requests_{0};
  std::atomic<std::uint64_t> cache_hits_{0};
  std::atomic<std::uint64_t> cache_misses_{0};
  std::atomic<std::uint64_t> status_2xx_{0};
  std::atomic<std::uint64_t> status_4xx_{0};
  std::atomic<std::uint64_t> status_5xx_{0};
  std::atomic<std::uint64_t> reloads_{0};
};

/// The /v1/whatif 200 body: a pure function of (report, snapshot id),
/// shared with `georank whatif --out` so the CLI and the endpoint emit
/// byte-identical JSON (scripts/ci.sh whatif tier compares them).
[[nodiscard]] std::string render_whatif_json(const scenario::Report& report,
                                             std::uint64_t snapshot_id);

}  // namespace georank::serve
