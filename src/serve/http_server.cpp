#include "serve/http_server.hpp"

#include "serve/json.hpp"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <chrono>
#include <cstring>
#include <optional>
#include <stdexcept>
#include <system_error>

namespace georank::serve {
namespace {

std::string_view reason_phrase(int status) {
  switch (status) {
    case 200: return "OK";
    case 400: return "Bad Request";
    case 404: return "Not Found";
    case 405: return "Method Not Allowed";
    case 408: return "Request Timeout";
    case 411: return "Length Required";
    case 413: return "Content Too Large";
    case 431: return "Request Header Fields Too Large";
    case 500: return "Internal Server Error";
    case 503: return "Service Unavailable";
    default: return "Status";
  }
}

/// ASCII case-insensitive substring search (header field matching).
bool icontains(std::string_view haystack, std::string_view needle) {
  auto lower = [](char c) {
    return (c >= 'A' && c <= 'Z') ? static_cast<char>(c - 'A' + 'a') : c;
  };
  if (needle.size() > haystack.size()) return false;
  for (std::size_t i = 0; i + needle.size() <= haystack.size(); ++i) {
    std::size_t j = 0;
    while (j < needle.size() && lower(haystack[i + j]) == lower(needle[j])) ++j;
    if (j == needle.size()) return true;
  }
  return false;
}

/// Content-Length value from a header block; nullopt when absent or
/// malformed.
std::optional<std::uint64_t> parse_content_length(std::string_view headers) {
  auto lower = [](char c) {
    return (c >= 'A' && c <= 'Z') ? static_cast<char>(c - 'A' + 'a') : c;
  };
  constexpr std::string_view kField = "content-length:";
  while (!headers.empty()) {
    std::size_t eol = headers.find("\r\n");
    std::string_view line = headers.substr(0, eol);
    if (line.size() > kField.size()) {
      std::size_t j = 0;
      while (j < kField.size() && lower(line[j]) == kField[j]) ++j;
      if (j == kField.size()) {
        std::string_view value = line.substr(kField.size());
        while (!value.empty() && (value.front() == ' ' || value.front() == '\t')) {
          value.remove_prefix(1);
        }
        while (!value.empty() && (value.back() == ' ' || value.back() == '\t')) {
          value.remove_suffix(1);
        }
        std::uint64_t parsed = 0;
        if (value.empty()) return std::nullopt;
        for (char c : value) {
          if (c < '0' || c > '9') return std::nullopt;
          parsed = parsed * 10 + static_cast<std::uint64_t>(c - '0');
          if (parsed > (1ull << 32)) return std::nullopt;
        }
        return parsed;
      }
    }
    if (eol == std::string_view::npos) break;
    headers.remove_prefix(eol + 2);
  }
  return std::nullopt;
}

std::string render_headers(const Response& response, std::size_t body_size,
                           bool keep_alive) {
  std::string out = "HTTP/1.1 " + std::to_string(response.status) + " " +
                    std::string(reason_phrase(response.status)) + "\r\n";
  out += "Content-Type: " + response.content_type + "\r\n";
  out += "Content-Length: " + std::to_string(body_size) + "\r\n";
  out += keep_alive ? "Connection: keep-alive\r\n" : "Connection: close\r\n";
  out += "\r\n";
  return out;
}

}  // namespace

HttpServer::HttpServer(RankingService& service, HttpServerOptions options)
    : service_(service), options_(std::move(options)) {
  if (options_.threads == 0) options_.threads = 1;
}

HttpServer::~HttpServer() { stop(); }

void HttpServer::start() {
  if (running_.load(std::memory_order_acquire)) {
    throw std::logic_error("HttpServer::start(): already running");
  }
  listen_fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
  if (listen_fd_ < 0) {
    throw std::system_error(errno, std::generic_category(), "socket");
  }
  int one = 1;
  // Best-effort: without SO_REUSEADDR a quick restart may hit
  // EADDRINUSE, which bind() below reports properly anyway.
  (void)::setsockopt(listen_fd_, SOL_SOCKET, SO_REUSEADDR, &one, sizeof one);

  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(options_.port);
  if (::inet_pton(AF_INET, options_.bind_address.c_str(), &addr.sin_addr) != 1) {
    (void)::close(listen_fd_);  // unbound socket; nothing to report past the throw
    listen_fd_ = -1;
    throw std::invalid_argument("HttpServer: bad bind address '" +
                                options_.bind_address + "'");
  }
  if (::bind(listen_fd_, reinterpret_cast<const sockaddr*>(&addr),
             sizeof addr) != 0 ||
      ::listen(listen_fd_, options_.backlog) != 0) {
    int saved = errno;
    (void)::close(listen_fd_);  // already failing; bind/listen errno is the one to report
    listen_fd_ = -1;
    throw std::system_error(saved, std::generic_category(), "bind/listen");
  }

  sockaddr_in bound{};
  socklen_t bound_len = sizeof bound;
  if (::getsockname(listen_fd_, reinterpret_cast<sockaddr*>(&bound),
                    &bound_len) == 0) {
    port_ = ntohs(bound.sin_port);
  }

  running_.store(true, std::memory_order_release);
  workers_.reserve(options_.threads);
  for (std::size_t i = 0; i < options_.threads; ++i) {
    workers_.emplace_back([this] { accept_loop(); });
  }
}

void HttpServer::stop() {
  running_.store(false, std::memory_order_release);
  if (listen_fd_ >= 0) {
    // Wakes every worker blocked in accept(); they observe !running_.
    // ENOTCONN here just means no worker was parked — not an error.
    (void)::shutdown(listen_fd_, SHUT_RDWR);
  }
  {
    std::lock_guard lock{conn_mutex_};
    // Unblock workers parked in recv() on idle keep-alive connections;
    // an in-flight response still finishes (the fd stays open, only
    // further reads/writes are cut short). A fd racing to close just
    // makes shutdown() a no-op.
    for (int fd : active_fds_) (void)::shutdown(fd, SHUT_RD);
  }
  for (std::thread& worker : workers_) {
    if (worker.joinable()) worker.join();
  }
  workers_.clear();
  if (listen_fd_ >= 0) {
    (void)::close(listen_fd_);  // listener held no data; nothing to flush
    listen_fd_ = -1;
  }
}

void HttpServer::accept_loop() {
  while (running_.load(std::memory_order_acquire)) {
    int fd = ::accept(listen_fd_, nullptr, nullptr);
    if (fd < 0) {
      if (!running_.load(std::memory_order_acquire)) break;
      if (errno == EINTR || errno == ECONNABORTED) continue;
      break;  // listener gone (stop() racing) or unrecoverable
    }
    connections_.fetch_add(1, std::memory_order_relaxed);
    {
      std::lock_guard lock{conn_mutex_};
      active_fds_.insert(fd);
    }
    serve_connection(fd);
    {
      std::lock_guard lock{conn_mutex_};
      active_fds_.erase(fd);
    }
    // The response was already flushed (or the peer is gone); a close
    // error on a plain TCP socket reports nothing actionable.
    (void)::close(fd);
  }
}

void HttpServer::serve_connection(int fd) {
  timeval timeout{};
  timeout.tv_sec = options_.read_timeout_ms / 1000;
  timeout.tv_usec = (options_.read_timeout_ms % 1000) * 1000;
  // Best-effort: without the timeout a dead peer parks this worker
  // until stop() shuts the fd down — degraded, not incorrect.
  (void)::setsockopt(fd, SOL_SOCKET, SO_RCVTIMEO, &timeout, sizeof timeout);

  std::string buf;
  while (true) {
    std::size_t header_end = buf.find("\r\n\r\n");
    if (header_end == std::string::npos) {
      if (buf.size() > options_.max_request_bytes) {
        parse_errors_.fetch_add(1, std::memory_order_relaxed);
        Response response{431, "application/json",
                          R"({"error":"request header block too large"})"};
        (void)send_all(fd, render_headers(response, response.body.size(),
                                          /*keep_alive=*/false) +
                               response.body);
        return;
      }
      char chunk[4096];
      ssize_t n = ::recv(fd, chunk, sizeof chunk, 0);
      if (n == 0) return;  // client closed
      if (n < 0) {
        if (errno == EAGAIN || errno == EWOULDBLOCK) {
          timeouts_.fetch_add(1, std::memory_order_relaxed);
          if (!buf.empty()) {
            // Mid-request stall: tell the client before hanging up.
            Response response{408, "application/json",
                              R"({"error":"request read timed out"})"};
            (void)send_all(fd, render_headers(response, response.body.size(),
                                              /*keep_alive=*/false) +
                                   response.body);
          }
        }
        return;  // timeout on idle keep-alive, reset, or drain shutdown
      }
      buf.append(chunk, static_cast<std::size_t>(n));
      continue;
    }

    const auto started = std::chrono::steady_clock::now();
    requests_.fetch_add(1, std::memory_order_relaxed);
    std::string_view head = std::string_view(buf).substr(0, header_end);
    std::string_view request_line = head.substr(0, head.find("\r\n"));
    std::string_view headers = head.size() > request_line.size()
                                   ? head.substr(request_line.size() + 2)
                                   : std::string_view{};

    // METHOD SP target SP HTTP/1.x
    std::size_t sp1 = request_line.find(' ');
    std::size_t sp2 = sp1 == std::string_view::npos
                          ? std::string_view::npos
                          : request_line.find(' ', sp1 + 1);
    Response response;
    bool head_only = false;
    bool keep_alive = true;
    std::size_t body_len = 0;
    if (sp2 == std::string_view::npos ||
        !request_line.substr(sp2 + 1).starts_with("HTTP/1.")) {
      parse_errors_.fetch_add(1, std::memory_order_relaxed);
      response = Response{400, "application/json",
                          R"({"error":"malformed request line"})"};
      keep_alive = false;
    } else {
      std::string_view method = request_line.substr(0, sp1);
      std::string_view target = request_line.substr(sp1 + 1, sp2 - sp1 - 1);
      bool dispatch = true;
      if (method != "GET" && method != "HEAD" && method != "POST") {
        response = Response{405, "application/json",
                            R"({"error":"only GET, HEAD and POST are served"})"};
        dispatch = false;
      } else if (method == "POST") {
        // POST bodies are Content-Length framed and read in full, so
        // keep-alive framing stays intact.
        const auto content_length = parse_content_length(headers);
        if (!content_length) {
          parse_errors_.fetch_add(1, std::memory_order_relaxed);
          response = Response{411, "application/json",
                              R"({"error":"POST requires Content-Length"})"};
          keep_alive = false;  // an unread body would desync framing
          dispatch = false;
        } else if (*content_length > options_.max_body_bytes) {
          parse_errors_.fetch_add(1, std::memory_order_relaxed);
          response = Response{413, "application/json",
                              R"({"error":"request body too large"})"};
          keep_alive = false;
          dispatch = false;
        } else {
          body_len = static_cast<std::size_t>(*content_length);
          while (buf.size() < header_end + 4 + body_len) {
            char chunk[4096];
            ssize_t n = ::recv(fd, chunk, sizeof chunk, 0);
            if (n == 0) return;  // client closed mid-body
            if (n < 0) {
              if (errno == EAGAIN || errno == EWOULDBLOCK) {
                timeouts_.fetch_add(1, std::memory_order_relaxed);
                Response timeout_response{
                    408, "application/json",
                    R"({"error":"request read timed out"})"};
                (void)send_all(
                    fd, render_headers(timeout_response,
                                       timeout_response.body.size(),
                                       /*keep_alive=*/false) +
                            timeout_response.body);
              }
              return;
            }
            buf.append(chunk, static_cast<std::size_t>(n));
          }
        }
      }
      if (dispatch) {
        head_only = method == "HEAD";
        std::string_view body =
            std::string_view(buf).substr(header_end + 4, body_len);
        try {
          response = service_.handle(method, target, body);
          if (target == "/metrics" || target.starts_with("/metrics?")) {
            response.body += http_metrics_text(stats());
          }
        } catch (const std::exception& e) {
          response = Response{500, "application/json",
                              "{\"error\":\"" + std::string(e.what()) + "\"}"};
        }
      }
      if (icontains(headers, "connection: close")) keep_alive = false;
      // GET/HEAD bodies are never read; a request that carries one
      // would desync the keep-alive framing, so close after answering.
      if (method != "POST" && icontains(headers, "content-length:")) {
        keep_alive = false;
      }
    }
    if (!running_.load(std::memory_order_acquire)) keep_alive = false;

    std::string wire =
        render_headers(response, response.body.size(), keep_alive);
    if (!head_only) wire += response.body;
    bool written = send_all(fd, wire);
    record_latency(std::chrono::duration<double>(
                       std::chrono::steady_clock::now() - started)
                       .count());
    if (!written || !keep_alive) return;
    buf.erase(0, header_end + 4 + body_len);
  }
}

bool HttpServer::send_all(int fd, std::string_view bytes) {
  std::size_t sent = 0;
  while (sent < bytes.size()) {
    // MSG_NOSIGNAL: a peer that hung up yields EPIPE here instead of a
    // process-wide SIGPIPE.
    ssize_t n = ::send(fd, bytes.data() + sent, bytes.size() - sent,
                       MSG_NOSIGNAL);
    if (n < 0) {
      if (errno == EINTR) continue;
      return false;
    }
    sent += static_cast<std::size_t>(n);
  }
  return true;
}

void HttpServer::record_latency(double seconds) {
  std::size_t bucket = HttpServerStats::kBucketBounds.size();
  for (std::size_t i = 0; i < HttpServerStats::kBucketBounds.size(); ++i) {
    if (seconds <= HttpServerStats::kBucketBounds[i]) {
      bucket = i;
      break;
    }
  }
  latency_buckets_[bucket].fetch_add(1, std::memory_order_relaxed);
  latency_sum_ns_.fetch_add(static_cast<std::uint64_t>(seconds * 1e9),
                            std::memory_order_relaxed);
}

HttpServerStats HttpServer::stats() const {
  HttpServerStats stats;
  stats.connections = connections_.load(std::memory_order_relaxed);
  stats.requests = requests_.load(std::memory_order_relaxed);
  stats.timeouts = timeouts_.load(std::memory_order_relaxed);
  stats.parse_errors = parse_errors_.load(std::memory_order_relaxed);
  std::uint64_t cumulative = 0;
  for (std::size_t i = 0; i < stats.latency_buckets.size(); ++i) {
    cumulative += latency_buckets_[i].load(std::memory_order_relaxed);
    stats.latency_buckets[i] = cumulative;
  }
  stats.latency_sum_seconds =
      static_cast<double>(latency_sum_ns_.load(std::memory_order_relaxed)) /
      1e9;
  return stats;
}

std::string http_metrics_text(const HttpServerStats& stats) {
  std::string out;
  auto line = [&out](std::string_view name, std::uint64_t value) {
    out += name;
    out += ' ';
    out += std::to_string(value);
    out += '\n';
  };
  line("georank_http_connections_total", stats.connections);
  line("georank_http_requests_total", stats.requests);
  line("georank_http_read_timeouts_total", stats.timeouts);
  line("georank_http_parse_errors_total", stats.parse_errors);
  for (std::size_t i = 0; i < HttpServerStats::kBucketBounds.size(); ++i) {
    out += "georank_request_latency_seconds_bucket{le=\"" +
           json_double(HttpServerStats::kBucketBounds[i]) + "\"} " +
           std::to_string(stats.latency_buckets[i]) + "\n";
  }
  out += "georank_request_latency_seconds_bucket{le=\"+Inf\"} " +
         std::to_string(stats.latency_buckets.back()) + "\n";
  out += "georank_request_latency_seconds_sum " +
         json_double(stats.latency_sum_seconds) + "\n";
  out += "georank_request_latency_seconds_count " +
         std::to_string(stats.latency_buckets.back()) + "\n";
  return out;
}

}  // namespace georank::serve
