#include "serve/json.hpp"

#include <charconv>
#include <cmath>
#include <cstdio>

namespace georank::serve {

std::string json_escape(std::string_view s) {
  std::string out;
  out.reserve(s.size());
  for (char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\b': out += "\\b"; break;
      case '\f': out += "\\f"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x",
                        static_cast<unsigned>(static_cast<unsigned char>(c)));
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

std::string json_double(double v) {
  if (!std::isfinite(v)) return "null";
  char buf[32];
  auto [ptr, ec] = std::to_chars(buf, buf + sizeof buf, v);
  if (ec != std::errc{}) return "null";
  return std::string(buf, ptr);
}

void JsonWriter::element() {
  if (after_key_) {
    after_key_ = false;
    return;
  }
  if (!first_.empty()) {
    if (!first_.back()) out_ += ',';
    first_.back() = false;
  }
}

JsonWriter& JsonWriter::begin_object() {
  element();
  out_ += '{';
  first_.push_back(true);
  return *this;
}

JsonWriter& JsonWriter::end_object() {
  out_ += '}';
  first_.pop_back();
  return *this;
}

JsonWriter& JsonWriter::begin_array() {
  element();
  out_ += '[';
  first_.push_back(true);
  return *this;
}

JsonWriter& JsonWriter::end_array() {
  out_ += ']';
  first_.pop_back();
  return *this;
}

JsonWriter& JsonWriter::key(std::string_view name) {
  element();
  out_ += '"';
  out_ += json_escape(name);
  out_ += "\":";
  after_key_ = true;
  return *this;
}

JsonWriter& JsonWriter::value(std::string_view s) {
  element();
  out_ += '"';
  out_ += json_escape(s);
  out_ += '"';
  return *this;
}

JsonWriter& JsonWriter::value(double v) {
  element();
  out_ += json_double(v);
  return *this;
}

JsonWriter& JsonWriter::value(std::uint64_t v) {
  element();
  out_ += std::to_string(v);
  return *this;
}

JsonWriter& JsonWriter::value(std::int64_t v) {
  element();
  out_ += std::to_string(v);
  return *this;
}

JsonWriter& JsonWriter::value(bool v) {
  element();
  out_ += v ? "true" : "false";
  return *this;
}

JsonWriter& JsonWriter::null() {
  element();
  out_ += "null";
  return *this;
}

std::string JsonWriter::take() {
  after_key_ = false;
  first_.clear();
  return std::move(out_);
}

}  // namespace georank::serve
