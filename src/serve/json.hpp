// Minimal JSON writer for the query service's response bodies.
//
// Deliberately tiny and dependency-free: an append-only builder with a
// container stack for comma placement, RFC 8259 string escaping, and
// shortest-round-trip double formatting via std::to_chars — the same
// double always renders to the same text, so cached and freshly
// rendered responses are byte-identical (the loopback torn-response
// test depends on that).
#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

namespace georank::serve {

/// Escapes `s` for inclusion inside a JSON string literal (quotes not
/// included): ", \, control characters -> \uXXXX.
[[nodiscard]] std::string json_escape(std::string_view s);

/// Shortest text that round-trips to exactly `v`; "null" for non-finite
/// values (JSON has no Inf/NaN).
[[nodiscard]] std::string json_double(double v);

class JsonWriter {
 public:
  JsonWriter& begin_object();
  JsonWriter& end_object();
  JsonWriter& begin_array();
  JsonWriter& end_array();

  /// Object key; must be followed by a value or container opener.
  JsonWriter& key(std::string_view name);

  JsonWriter& value(std::string_view s);
  JsonWriter& value(const char* s) { return value(std::string_view(s)); }
  JsonWriter& value(double v);
  JsonWriter& value(std::uint64_t v);
  JsonWriter& value(std::int64_t v);
  JsonWriter& value(bool v);
  JsonWriter& null();

  /// The finished document. The writer is left empty.
  [[nodiscard]] std::string take();

 private:
  /// Emits the separating comma for a new element when needed.
  void element();

  std::string out_;
  std::vector<bool> first_;       // per open container: no element yet?
  bool after_key_ = false;
};

}  // namespace georank::serve
