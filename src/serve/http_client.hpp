// serve::HttpClient — a deliberately tiny blocking HTTP/1.1 client for
// loopback use: the integration tests and bench_serve drive the server
// through real sockets with it. It speaks just enough HTTP for that
// job: GET over an existing keep-alive connection, Content-Length
// framing, no chunked encoding, no redirects, no TLS.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <string_view>

namespace georank::serve {

struct HttpClientResponse {
  int status = 0;
  std::string body;
  /// Connection header from the server ("keep-alive" / "close").
  std::string connection;
};

class HttpClient {
 public:
  HttpClient() = default;
  ~HttpClient();

  HttpClient(const HttpClient&) = delete;
  HttpClient& operator=(const HttpClient&) = delete;
  HttpClient(HttpClient&& other) noexcept;
  HttpClient& operator=(HttpClient&& other) noexcept;

  /// Connects to host:port (IPv4 dotted quad). False on failure.
  [[nodiscard]] bool connect(const std::string& host, std::uint16_t port);

  /// Sends one GET and reads the full response. Reconnects first when
  /// the previous response closed the connection. nullopt on transport
  /// or framing failure.
  [[nodiscard]] std::optional<HttpClientResponse> get(std::string_view target);

  /// Sends one POST with a Content-Length framed body (what /v1/whatif
  /// speaks); same reconnect and framing rules as get().
  [[nodiscard]] std::optional<HttpClientResponse> post(
      std::string_view target, std::string_view body,
      std::string_view content_type = "text/plain");

  void close();

  [[nodiscard]] bool connected() const noexcept { return fd_ >= 0; }

 private:
  /// Writes one fully rendered request and reads one response.
  [[nodiscard]] std::optional<HttpClientResponse> round_trip(
      const std::string& request);

  int fd_ = -1;
  std::string host_;
  std::uint16_t port_ = 0;
  /// Bytes read past the previous response (keep-alive pipelining).
  std::string leftover_;
};

}  // namespace georank::serve
