#include "serve/ranking_service.hpp"

#include <algorithm>
#include <cstdio>
#include <cstring>

#include "serve/json.hpp"
#include "util/strings.hpp"

namespace georank::serve {
namespace {

// ------------------------------------------------------------ request URI

/// Decoded query parameters, in request order.
struct Query {
  std::vector<std::pair<std::string, std::string>> params;

  [[nodiscard]] const std::string* find(std::string_view key) const {
    for (const auto& [k, v] : params) {
      if (k == key) return &v;
    }
    return nullptr;
  }
};

std::string percent_decode(std::string_view s) {
  std::string out;
  out.reserve(s.size());
  auto hex = [](char c) -> int {
    if (c >= '0' && c <= '9') return c - '0';
    if (c >= 'a' && c <= 'f') return c - 'a' + 10;
    if (c >= 'A' && c <= 'F') return c - 'A' + 10;
    return -1;
  };
  for (std::size_t i = 0; i < s.size(); ++i) {
    if (s[i] == '+') {
      out += ' ';
    } else if (s[i] == '%' && i + 2 < s.size() && hex(s[i + 1]) >= 0 &&
               hex(s[i + 2]) >= 0) {
      out += static_cast<char>(hex(s[i + 1]) * 16 + hex(s[i + 2]));
      i += 2;
    } else {
      out += s[i];
    }
  }
  return out;
}

Query parse_query(std::string_view query) {
  Query q;
  if (query.empty()) return q;
  for (std::string_view field : util::split(query, '&')) {
    if (field.empty()) continue;
    std::size_t eq = field.find('=');
    if (eq == std::string_view::npos) {
      q.params.emplace_back(percent_decode(field), "");
    } else {
      q.params.emplace_back(percent_decode(field.substr(0, eq)),
                            percent_decode(field.substr(eq + 1)));
    }
  }
  return q;
}

Response error_response(int status, std::string_view message) {
  JsonWriter w;
  w.begin_object().key("error").value(message).end_object();
  return Response{status, "application/json", w.take()};
}

constexpr Metric kAllMetrics[] = {Metric::kCci, Metric::kCcn, Metric::kAhi,
                                  Metric::kAhn};

void write_top_entries(JsonWriter& w, const rank::Ranking& ranking,
                       std::size_t top_k) {
  w.begin_array();
  const std::size_t n = std::min(top_k, ranking.size());
  for (std::size_t i = 0; i < n; ++i) {
    const rank::ScoredAs& entry = ranking.entries()[i];
    w.begin_object();
    w.key("rank").value(static_cast<std::uint64_t>(i + 1));
    w.key("asn").value(static_cast<std::uint64_t>(entry.asn));
    w.key("score").value(entry.score);
    w.end_object();
  }
  w.end_array();
}

void write_optional_rank(JsonWriter& w, const std::optional<std::size_t>& rank) {
  if (rank) {
    w.value(static_cast<std::uint64_t>(*rank));
  } else {
    w.null();
  }
}

/// Same shape as /v1/delta's delta block, so the two endpoints read
/// alike.
void write_rank_delta(JsonWriter& w, const core::RankDelta& delta) {
  w.begin_object();
  w.key("shifts").begin_array();
  for (const core::RankShift& shift : delta.shifts) {
    w.begin_object();
    w.key("asn").value(static_cast<std::uint64_t>(shift.asn));
    w.key("before_rank");
    write_optional_rank(w, shift.before_rank);
    w.key("after_rank");
    write_optional_rank(w, shift.after_rank);
    w.key("before_score").value(shift.before_score);
    w.key("after_score").value(shift.after_score);
    w.key("rank_change").value(static_cast<std::int64_t>(shift.rank_change()));
    w.key("score_change").value(shift.score_change());
    w.key("entered").value(shift.entered());
    w.key("left").value(shift.left());
    w.end_object();
  }
  w.end_array();
  auto write_asns = [&w](const std::vector<bgp::Asn>& asns) {
    w.begin_array();
    for (bgp::Asn asn : asns) w.value(static_cast<std::uint64_t>(asn));
    w.end_array();
  };
  w.key("entries");
  write_asns(delta.entries());
  w.key("exits");
  write_asns(delta.exits());
  w.key("max_movement").value(static_cast<std::int64_t>(delta.max_movement()));
  w.key("agreement").value(delta.agreement());
  w.end_object();
}

}  // namespace

std::optional<Metric> parse_metric(std::string_view text) noexcept {
  std::string lower;
  for (char c : text) {
    lower += (c >= 'A' && c <= 'Z') ? static_cast<char>(c - 'A' + 'a') : c;
  }
  if (lower == "cci") return Metric::kCci;
  if (lower == "ccn") return Metric::kCcn;
  if (lower == "ahi") return Metric::kAhi;
  if (lower == "ahn") return Metric::kAhn;
  return std::nullopt;
}

std::string_view to_string(Metric metric) noexcept {
  switch (metric) {
    case Metric::kCci: return "cci";
    case Metric::kCcn: return "ccn";
    case Metric::kAhi: return "ahi";
    case Metric::kAhn: return "ahn";
  }
  return "?";
}

const rank::Ranking& ranking_of(const core::CountryMetrics& metrics,
                                Metric metric) {
  return core::select_metric(metrics, metric);
}

RankingService::RankingService(RankingServiceOptions options)
    : options_(options) {
  if (options_.history_limit == 0) options_.history_limit = 1;
}

void RankingService::publish(std::shared_ptr<const Snapshot> snapshot) {
  {
    std::lock_guard lock{history_mutex_};
    history_.push_back(snapshot);
    while (history_.size() > options_.history_limit) history_.pop_front();
  }
  {
    std::unique_lock lock{current_mutex_};
    current_ = std::move(snapshot);
  }
  reloads_.fetch_add(1, std::memory_order_relaxed);
  // Old-snapshot keys would never be queried again; drop them eagerly
  // so dead snapshots are not pinned by cached bodies.
  std::lock_guard lock{cache_mutex_};
  cache_lru_.clear();
  cache_index_.clear();
}

std::shared_ptr<const Snapshot> RankingService::current() const {
  std::shared_lock lock{current_mutex_};
  return current_;
}

RankingService::HistoryPair RankingService::latest_pair() {
  std::lock_guard lock{history_mutex_};
  HistoryPair pair;
  if (history_.empty()) return pair;
  pair.after = history_.back();
  pair.before = history_.size() >= 2 ? history_[history_.size() - 2]
                                     : history_.back();
  return pair;
}

std::optional<RankingService::DeltaResult> RankingService::delta(
    geo::CountryCode country, Metric metric, std::size_t top_k) {
  HistoryPair pair = latest_pair();
  if (!pair.after) return std::nullopt;
  const core::CountryMetrics* before = pair.before->find(country);
  const core::CountryMetrics* after = pair.after->find(country);
  if (before == nullptr && after == nullptr) return std::nullopt;
  static const rank::Ranking kEmpty;
  DeltaResult result;
  result.before_id = pair.before->meta.id;
  result.after_id = pair.after->meta.id;
  result.delta = core::compare_rankings(
      before != nullptr ? ranking_of(*before, metric) : kEmpty,
      after != nullptr ? ranking_of(*after, metric) : kEmpty, top_k);
  return result;
}

std::optional<core::Timeline> RankingService::timeline(geo::CountryCode country) {
  std::vector<std::shared_ptr<const Snapshot>> snapshots;
  {
    std::lock_guard lock{history_mutex_};
    snapshots.assign(history_.begin(), history_.end());
  }
  std::vector<core::TimelinePoint> points;
  for (const auto& snapshot : snapshots) {
    const core::CountryMetrics* metrics = snapshot->find(country);
    if (metrics == nullptr) continue;
    core::TimelinePoint point;
    point.label = snapshot->meta.label.empty()
                      ? std::to_string(snapshot->meta.id)
                      : snapshot->meta.label;
    point.metrics = *metrics;
    points.push_back(std::move(point));
  }
  if (points.empty()) return std::nullopt;
  return core::Timeline{std::move(points)};
}

Response RankingService::handle(std::string_view target) {
  return handle("GET", target, {});
}

Response RankingService::handle(std::string_view method,
                                std::string_view target,
                                std::string_view body) {
  requests_.fetch_add(1, std::memory_order_relaxed);
  std::string_view path = target.substr(0, target.find('?'));
  while (path.size() > 1 && path.back() == '/') path.remove_suffix(1);
  std::string_view query;
  if (std::size_t qmark = target.find('?'); qmark != std::string_view::npos) {
    query = target.substr(qmark + 1);
  }

  Response response;
  if (path == "/v1/whatif") {
    response = method == "POST"
                   ? render_whatif(query, body)
                   : error_response(405, "/v1/whatif requires POST");
  } else if (method == "POST") {
    response = error_response(405, "POST is only served on /v1/whatif");
  } else {
    response = route(target);
  }
  if (response.status >= 500) {
    status_5xx_.fetch_add(1, std::memory_order_relaxed);
  } else if (response.status >= 400) {
    status_4xx_.fetch_add(1, std::memory_order_relaxed);
  } else {
    status_2xx_.fetch_add(1, std::memory_order_relaxed);
  }
  return response;
}

Response RankingService::route(std::string_view target) {
  std::string_view path = target;
  std::string_view query;
  if (std::size_t qmark = target.find('?'); qmark != std::string_view::npos) {
    path = target.substr(0, qmark);
    query = target.substr(qmark + 1);
  }
  while (path.size() > 1 && path.back() == '/') path.remove_suffix(1);

  if (path == "/metrics") {
    return Response{200, "text/plain; version=0.0.4", metrics_text()};
  }

  std::shared_ptr<const Snapshot> snapshot = current();
  if (path == "/" || path == "" || path == "/v1") {
    return render_index(snapshot.get());
  }

  const bool known_route = path == "/v1/rankings" || path == "/v1/health" ||
                           path == "/v1/delta" ||
                           path.starts_with("/v1/as/");
  if (!known_route) return error_response(404, "unknown path");
  if (snapshot == nullptr) {
    return error_response(503, "no snapshot published yet");
  }

  // Cache: every 200 render below is a pure function of (target,
  // snapshot ids), so the key embeds the ids and a reload simply stops
  // hitting. Delta depends on the previous snapshot too.
  std::string key;
  if (path == "/v1/delta") {
    HistoryPair pair = latest_pair();
    key = std::string(target) + "#" +
          std::to_string(pair.before ? pair.before->meta.id : 0) + "/" +
          std::to_string(pair.after ? pair.after->meta.id : 0);
  } else if (path == "/v1/health") {
    // Health embeds the live-staleness block, which moves independently
    // of the snapshot: version the key so stale never serves as fresh.
    key = std::string(target) + "#" + std::to_string(snapshot->meta.id) + "@" +
          std::to_string(
              live_health_version_.load(std::memory_order_acquire));
  } else {
    key = std::string(target) + "#" + std::to_string(snapshot->meta.id);
  }
  if (auto cached = cache_get(key)) {
    return Response{200, "application/json", std::move(*cached)};
  }

  Response response;
  if (path == "/v1/rankings") {
    response = render_rankings(*snapshot, query);
  } else if (path == "/v1/health") {
    response = render_health(*snapshot);
  } else if (path == "/v1/delta") {
    response = render_delta(query);
  } else {
    response = render_as_lookup(*snapshot, path.substr(std::strlen("/v1/as/")));
  }
  if (response.status == 200) cache_put(key, response.body);
  return response;
}

Response RankingService::render_index(const Snapshot* snapshot) const {
  JsonWriter w;
  w.begin_object();
  w.key("service").value("georank");
  w.key("snapshot_id");
  if (snapshot != nullptr) {
    w.value(snapshot->meta.id);
  } else {
    w.null();
  }
  w.key("endpoints").begin_array();
  w.value("/v1/rankings?country=CC[&metric=cci|ccn|ahi|ahn][&k=N]");
  w.value("/v1/as/{asn}");
  w.value("/v1/health");
  w.value("/v1/delta?country=CC[&metric=cci|ccn|ahi|ahn][&top=N]");
  w.value("/v1/whatif[?top=N] (POST a scenario DSL text)");
  w.value("/metrics");
  w.end_array();
  w.end_object();
  return Response{200, "application/json", w.take()};
}

Response RankingService::render_rankings(const Snapshot& snapshot,
                                         std::string_view query_text) const {
  Query query = parse_query(query_text);
  const std::string* country_text = query.find("country");
  if (country_text == nullptr) {
    return error_response(400, "missing country parameter");
  }
  auto country = geo::CountryCode::parse(*country_text);
  if (!country) {
    return error_response(400, "bad country code '" + *country_text + "'");
  }

  std::optional<Metric> only_metric;
  if (const std::string* metric_text = query.find("metric")) {
    only_metric = parse_metric(*metric_text);
    if (!only_metric) {
      return error_response(400, "bad metric '" + *metric_text +
                                     "' (want cci|ccn|ahi|ahn)");
    }
  }

  std::size_t top_k = options_.default_top_k;
  const std::string* k_text = query.find("k");
  if (k_text == nullptr) k_text = query.find("top");
  if (k_text != nullptr) {
    auto k = util::parse_int<std::size_t>(*k_text);
    if (!k || *k == 0) return error_response(400, "bad k '" + *k_text + "'");
    top_k = std::min(*k, options_.max_top_k);
  }

  const core::CountryMetrics* metrics = snapshot.find(*country);
  if (metrics == nullptr) {
    return error_response(404,
                          "no rankings for country " + country->to_string());
  }

  JsonWriter w;
  w.begin_object();
  w.key("snapshot_id").value(snapshot.meta.id);
  w.key("country").value(country->to_string());
  w.key("confidence").value(robust::to_string(metrics->confidence));
  w.key("geo_consensus").value(metrics->geo_consensus);
  w.key("national_vps").value(static_cast<std::uint64_t>(metrics->national_vps));
  w.key("international_vps")
      .value(static_cast<std::uint64_t>(metrics->international_vps));
  w.key("national_addresses").value(metrics->national_addresses);
  w.key("international_addresses").value(metrics->international_addresses);
  w.key("rankings").begin_object();
  for (Metric metric : kAllMetrics) {
    if (only_metric && metric != *only_metric) continue;
    w.key(to_string(metric));
    write_top_entries(w, ranking_of(*metrics, metric), top_k);
  }
  w.end_object();
  w.end_object();
  return Response{200, "application/json", w.take()};
}

Response RankingService::render_as_lookup(const Snapshot& snapshot,
                                          std::string_view asn_text) const {
  auto asn = util::parse_int<bgp::Asn>(asn_text);
  if (!asn) {
    return error_response(400, "bad asn '" + std::string(asn_text) + "'");
  }
  JsonWriter w;
  w.begin_object();
  w.key("snapshot_id").value(snapshot.meta.id);
  w.key("asn").value(static_cast<std::uint64_t>(*asn));
  w.key("countries").begin_array();
  for (const core::CountryMetrics& metrics : snapshot.countries) {
    bool any = false;
    for (Metric metric : kAllMetrics) {
      if (ranking_of(metrics, metric).rank_of(*asn)) {
        any = true;
        break;
      }
    }
    if (!any) continue;
    w.begin_object();
    w.key("country").value(metrics.country.to_string());
    w.key("confidence").value(robust::to_string(metrics.confidence));
    w.key("metrics").begin_array();
    for (Metric metric : kAllMetrics) {
      const rank::Ranking& ranking = ranking_of(metrics, metric);
      auto rank = ranking.rank_of(*asn);
      if (!rank) continue;
      w.begin_object();
      w.key("metric").value(to_string(metric));
      w.key("rank").value(static_cast<std::uint64_t>(*rank));
      w.key("score").value(ranking.score_of(*asn));
      w.end_object();
    }
    w.end_array();
    w.end_object();
  }
  w.end_array();
  w.end_object();
  return Response{200, "application/json", w.take()};
}

Response RankingService::render_health(const Snapshot& snapshot) const {
  const robust::HealthReport& health = snapshot.health;
  const LiveHealth live = live_health();
  JsonWriter w;
  w.begin_object();
  w.key("snapshot_id").value(snapshot.meta.id);
  if (live.valid) {
    w.key("live").begin_object();
    w.key("state").value(robust::to_string(live.state));
    w.key("age_seconds").value(live.age_seconds);
    w.key("stale_after_seconds").value(live.stale_after_seconds);
    w.key("degraded_after_seconds").value(live.degraded_after_seconds);
    w.key("transitions").begin_object();
    for (std::size_t i = 0; i < robust::kServingStateCount; ++i) {
      w.key(robust::to_string(static_cast<robust::ServingState>(i)))
          .value(live.entered[i]);
    }
    w.end_object();
    w.key("reopen_failures").value(live.reopen_failures);
    w.key("reopen_successes").value(live.reopen_successes);
    w.key("last_backoff_seconds").value(live.last_backoff_seconds);
    w.end_object();
  }
  w.key("policy").begin_object();
  w.key("min_vps").value(static_cast<std::uint64_t>(health.policy.min_vps));
  w.key("min_geo_consensus").value(health.policy.min_geo_consensus);
  w.end_object();
  w.key("ingest_drop_rate").value(health.ingest_drop_rate);
  w.key("sanitize_drop_rate").value(health.sanitize_drop_rate);
  w.key("tiers").begin_object();
  w.key("high").value(
      static_cast<std::uint64_t>(health.count(robust::ConfidenceTier::kHigh)));
  w.key("degraded").value(static_cast<std::uint64_t>(
      health.count(robust::ConfidenceTier::kDegraded)));
  w.key("insufficient").value(static_cast<std::uint64_t>(
      health.count(robust::ConfidenceTier::kInsufficient)));
  w.end_object();
  w.key("countries").begin_array();
  for (const robust::CountryHealth& h : health.countries) {
    w.begin_object();
    w.key("country").value(h.country.to_string());
    w.key("national_vps").value(static_cast<std::uint64_t>(h.national_vps));
    w.key("international_vps")
        .value(static_cast<std::uint64_t>(h.international_vps));
    w.key("accepted_prefixes")
        .value(static_cast<std::uint64_t>(h.accepted_prefixes));
    w.key("geolocated_addresses").value(h.geolocated_addresses);
    w.key("no_consensus_prefixes")
        .value(static_cast<std::uint64_t>(h.no_consensus_prefixes));
    w.key("no_consensus_addresses").value(h.no_consensus_addresses);
    w.key("geo_consensus").value(h.geo_consensus());
    w.key("national").value(robust::to_string(h.national_tier));
    w.key("international").value(robust::to_string(h.international_tier));
    w.key("geo").value(robust::to_string(h.geo_tier));
    w.key("overall").value(robust::to_string(h.overall));
    w.end_object();
  }
  w.end_array();
  w.end_object();
  return Response{200, "application/json", w.take()};
}

Response RankingService::render_delta(std::string_view query_text) {
  Query query = parse_query(query_text);
  const std::string* country_text = query.find("country");
  if (country_text == nullptr) {
    return error_response(400, "missing country parameter");
  }
  auto country = geo::CountryCode::parse(*country_text);
  if (!country) {
    return error_response(400, "bad country code '" + *country_text + "'");
  }
  Metric metric = Metric::kCci;
  if (const std::string* metric_text = query.find("metric")) {
    auto parsed = parse_metric(*metric_text);
    if (!parsed) {
      return error_response(400, "bad metric '" + *metric_text +
                                     "' (want cci|ccn|ahi|ahn)");
    }
    metric = *parsed;
  }
  std::size_t top_k = options_.default_top_k;
  const std::string* top_text = query.find("top");
  if (top_text == nullptr) top_text = query.find("k");
  if (top_text != nullptr) {
    auto k = util::parse_int<std::size_t>(*top_text);
    if (!k || *k == 0) {
      return error_response(400, "bad top '" + *top_text + "'");
    }
    top_k = std::min(*k, options_.max_top_k);
  }

  std::optional<DeltaResult> result = delta(*country, metric, top_k);
  if (!result) {
    return error_response(404, "no rankings for country " +
                                   country->to_string() +
                                   " in any retained snapshot");
  }

  JsonWriter w;
  w.begin_object();
  w.key("country").value(country->to_string());
  w.key("metric").value(to_string(metric));
  w.key("top").value(static_cast<std::uint64_t>(top_k));
  w.key("before_snapshot_id").value(result->before_id);
  w.key("after_snapshot_id").value(result->after_id);
  w.key("shifts").begin_array();
  for (const core::RankShift& shift : result->delta.shifts) {
    w.begin_object();
    w.key("asn").value(static_cast<std::uint64_t>(shift.asn));
    w.key("before_rank");
    write_optional_rank(w, shift.before_rank);
    w.key("after_rank");
    write_optional_rank(w, shift.after_rank);
    w.key("before_score").value(shift.before_score);
    w.key("after_score").value(shift.after_score);
    w.key("rank_change").value(static_cast<std::int64_t>(shift.rank_change()));
    w.key("score_change").value(shift.score_change());
    w.key("entered").value(shift.entered());
    w.key("left").value(shift.left());
    w.end_object();
  }
  w.end_array();
  auto write_asns = [&w](const std::vector<bgp::Asn>& asns) {
    w.begin_array();
    for (bgp::Asn asn : asns) w.value(static_cast<std::uint64_t>(asn));
    w.end_array();
  };
  w.key("entries");
  write_asns(result->delta.entries());
  w.key("exits");
  write_asns(result->delta.exits());
  w.key("max_movement")
      .value(static_cast<std::int64_t>(result->delta.max_movement()));
  w.key("agreement").value(result->delta.agreement());
  w.end_object();
  return Response{200, "application/json", w.take()};
}

Response RankingService::render_whatif(std::string_view query_text,
                                       std::string_view body) {
  scenario::WhatIfEngine* engine = whatif_.load(std::memory_order_acquire);
  if (engine == nullptr) {
    return error_response(
        503, "no what-if engine attached (serving without RIB data)");
  }
  std::shared_ptr<const Snapshot> snapshot = current();
  if (snapshot == nullptr) {
    return error_response(503, "no snapshot published yet");
  }

  Query query = parse_query(query_text);
  std::size_t top_k = options_.default_top_k;
  const std::string* top_text = query.find("top");
  if (top_text == nullptr) top_text = query.find("k");
  if (top_text != nullptr) {
    auto k = util::parse_int<std::size_t>(*top_text);
    if (!k || *k == 0) {
      return error_response(400, "bad top '" + *top_text + "'");
    }
    top_k = std::min(*k, options_.max_top_k);
  }

  scenario::Scenario parsed;
  try {
    parsed = scenario::parse(body);
  } catch (const scenario::ScenarioParseError& e) {
    return error_response(400, e.what());
  }

  // The rendered body is a pure function of (scenario content, snapshot
  // id, top_k): the canonical-text hash keys the LRU alongside the id,
  // and publish() clears the cache, so a republish can never serve a
  // stale counterfactual.
  const std::string key =
      "POST /v1/whatif?top=" + std::to_string(top_k) + "#" +
      std::to_string(scenario::content_hash(parsed)) + "@" +
      std::to_string(snapshot->meta.id);
  if (auto cached = cache_get(key)) {
    return Response{200, "application/json", std::move(*cached)};
  }

  scenario::Report report;
  try {
    report = engine->run(parsed, top_k);
  } catch (const scenario::ApplyError& e) {
    return error_response(400, e.what());
  }
  Response response{200, "application/json",
                    render_whatif_json(report, snapshot->meta.id)};
  cache_put(key, response.body);
  return response;
}

std::string render_whatif_json(const scenario::Report& report,
                               std::uint64_t snapshot_id) {
  JsonWriter w;
  w.begin_object();
  w.key("snapshot_id").value(snapshot_id);
  w.key("scenario").begin_object();
  w.key("name").value(report.scenario.name);
  w.key("seed").value(report.scenario.seed);
  char hash_hex[32];
  std::snprintf(hash_hex, sizeof hash_hex, "%016llx",
                static_cast<unsigned long long>(report.scenario_hash));
  w.key("hash").value(hash_hex);
  w.key("events").value(static_cast<std::uint64_t>(report.scenario.events.size()));
  w.end_object();
  w.key("top").value(static_cast<std::uint64_t>(report.top_k));
  w.key("apply").begin_object();
  w.key("edges_removed").value(static_cast<std::uint64_t>(report.apply.edges_removed));
  w.key("edges_added").value(static_cast<std::uint64_t>(report.apply.edges_added));
  w.key("prefixes_hijacked")
      .value(static_cast<std::uint64_t>(report.apply.prefixes_hijacked));
  w.key("prefixes_rerouted")
      .value(static_cast<std::uint64_t>(report.apply.prefixes_rerouted));
  w.key("entries_kept").value(static_cast<std::uint64_t>(report.apply.entries_kept));
  w.key("entries_rerouted")
      .value(static_cast<std::uint64_t>(report.apply.entries_rerouted));
  w.key("entries_withdrawn")
      .value(static_cast<std::uint64_t>(report.apply.entries_withdrawn));
  w.end_object();
  w.key("memo").begin_object();
  w.key("shards_kept").value(static_cast<std::uint64_t>(report.memo.shards_kept));
  w.key("shards_rebuilt")
      .value(static_cast<std::uint64_t>(report.memo.shards_rebuilt));
  w.key("memos_kept").value(static_cast<std::uint64_t>(report.memo.memos_kept));
  w.key("memos_evicted")
      .value(static_cast<std::uint64_t>(report.memo.memos_evicted));
  w.end_object();
  w.key("countries_total")
      .value(static_cast<std::uint64_t>(report.countries_total));
  w.key("countries_changed")
      .value(static_cast<std::uint64_t>(report.shifts.size()));
  w.key("shifts").begin_array();
  for (const scenario::CountryShift& shift : report.shifts) {
    w.begin_object();
    w.key("country").value(shift.country.to_string());
    w.key("in_baseline").value(shift.in_baseline);
    w.key("in_counterfactual").value(shift.in_counterfactual);
    w.key("confidence_before").value(robust::to_string(shift.confidence_before));
    w.key("confidence_after").value(robust::to_string(shift.confidence_after));
    for (Metric metric : kAllMetrics) {
      w.key(to_string(metric));
      write_rank_delta(w, shift.delta(metric));
    }
    w.end_object();
  }
  w.end_array();
  w.end_object();
  return w.take();
}

std::optional<std::string> RankingService::cache_get(const std::string& key) {
  if (options_.cache_capacity == 0) return std::nullopt;
  std::lock_guard lock{cache_mutex_};
  auto it = cache_index_.find(key);
  if (it == cache_index_.end()) {
    cache_misses_.fetch_add(1, std::memory_order_relaxed);
    return std::nullopt;
  }
  cache_lru_.splice(cache_lru_.begin(), cache_lru_, it->second);
  cache_hits_.fetch_add(1, std::memory_order_relaxed);
  return it->second->second;
}

void RankingService::cache_put(const std::string& key, const std::string& body) {
  if (options_.cache_capacity == 0) return;
  std::lock_guard lock{cache_mutex_};
  if (cache_index_.contains(key)) return;  // raced render; first wins
  cache_lru_.emplace_front(key, body);
  cache_index_[key] = cache_lru_.begin();
  while (cache_lru_.size() > options_.cache_capacity) {
    cache_index_.erase(cache_lru_.back().first);
    cache_lru_.pop_back();
  }
}

ServiceCounters RankingService::counters() const {
  ServiceCounters c;
  c.requests = requests_.load(std::memory_order_relaxed);
  c.cache_hits = cache_hits_.load(std::memory_order_relaxed);
  c.cache_misses = cache_misses_.load(std::memory_order_relaxed);
  c.status_2xx = status_2xx_.load(std::memory_order_relaxed);
  c.status_4xx = status_4xx_.load(std::memory_order_relaxed);
  c.status_5xx = status_5xx_.load(std::memory_order_relaxed);
  c.reloads = reloads_.load(std::memory_order_relaxed);
  if (auto snapshot = current()) c.active_snapshot_id = snapshot->meta.id;
  return c;
}

void RankingService::set_ingest(const IngestCounters& counters) {
  const std::lock_guard<std::mutex> lock(ingest_mutex_);
  ingest_ = counters;
}

IngestCounters RankingService::ingest() const {
  const std::lock_guard<std::mutex> lock(ingest_mutex_);
  return ingest_;
}

void RankingService::set_live_health(const LiveHealth& health) {
  {
    const std::lock_guard<std::mutex> lock(ingest_mutex_);
    if (live_health_ == health) return;  // no change, keep the cache
    live_health_ = health;
  }
  live_health_version_.fetch_add(1, std::memory_order_release);
}

LiveHealth RankingService::live_health() const {
  const std::lock_guard<std::mutex> lock(ingest_mutex_);
  return live_health_;
}

std::string RankingService::metrics_text() const {
  ServiceCounters c = counters();
  IngestCounters in = ingest();
  std::string out;
  auto line = [&out](std::string_view name, std::uint64_t value) {
    out += name;
    out += ' ';
    out += std::to_string(value);
    out += '\n';
  };
  auto fline = [&out](std::string_view name, double value) {
    out += name;
    out += ' ';
    out += std::to_string(value);
    out += '\n';
  };
  line("georank_requests_total", c.requests);
  out += "georank_responses_total{class=\"2xx\"} " +
         std::to_string(c.status_2xx) + "\n";
  out += "georank_responses_total{class=\"4xx\"} " +
         std::to_string(c.status_4xx) + "\n";
  out += "georank_responses_total{class=\"5xx\"} " +
         std::to_string(c.status_5xx) + "\n";
  line("georank_cache_hits_total", c.cache_hits);
  line("georank_cache_misses_total", c.cache_misses);
  line("georank_snapshot_reloads_total", c.reloads);
  line("georank_snapshot_active_id", c.active_snapshot_id);
  // Live-ingest evidence: always rendered (zeros before any feeder
  // reports) so dashboards can rely on the series existing.
  line("georank_ingest_updates_applied_total", in.updates_applied);
  line("georank_ingest_announces_total", in.announces);
  line("georank_ingest_withdraws_total", in.withdraws);
  line("georank_ingest_spurious_withdrawals_total", in.spurious_withdrawals);
  line("georank_ingest_out_of_order_total", in.out_of_order);
  line("georank_ingest_day_out_of_range_total", in.day_out_of_range);
  line("georank_ingest_parse_lines_total", in.parse_lines);
  line("georank_ingest_parse_malformed_total", in.parse_malformed);
  line("georank_live_republishes_total", in.republishes);
  fline("georank_live_republish_seconds_sum", in.republish_seconds_sum);
  fline("georank_live_republish_seconds_last", in.last_republish_seconds);
  line("georank_live_last_batch_size", in.last_batch);
  line("georank_live_shed_total", in.shed);
  line("georank_live_checkpoints_total", in.checkpoints);
  // Staleness state machine (DESIGN.md §4g). The attached gauge keeps
  // the zeros below honest: 0 means "no live feeder", not "fresh".
  const LiveHealth live = live_health();
  line("georank_live_feeder_attached", live.valid ? 1 : 0);
  line("georank_live_health_state",
       static_cast<std::uint64_t>(static_cast<std::uint8_t>(live.state)));
  fline("georank_live_health_age_seconds", live.age_seconds);
  for (std::size_t i = 0; i < robust::kServingStateCount; ++i) {
    out += "georank_live_health_transitions_total{state=\"";
    out += robust::to_string(static_cast<robust::ServingState>(i));
    out += "\"} " + std::to_string(live.entered[i]) + "\n";
  }
  line("georank_live_backoff_attempts_total", live.reopen_failures);
  line("georank_live_reopen_successes_total", live.reopen_successes);
  fline("georank_live_backoff_seconds_last", live.last_backoff_seconds);
  return out;
}

}  // namespace georank::serve
