#include "serve/http_client.hpp"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <cstddef>
#include <utility>

namespace georank::serve {
namespace {

/// Case-insensitive prefix match for header names.
bool istarts_with(std::string_view text, std::string_view prefix) {
  if (text.size() < prefix.size()) return false;
  for (std::size_t i = 0; i < prefix.size(); ++i) {
    char a = text[i];
    char b = prefix[i];
    if (a >= 'A' && a <= 'Z') a = static_cast<char>(a - 'A' + 'a');
    if (b >= 'A' && b <= 'Z') b = static_cast<char>(b - 'A' + 'a');
    if (a != b) return false;
  }
  return true;
}

std::string_view trim(std::string_view text) {
  while (!text.empty() && (text.front() == ' ' || text.front() == '\t')) {
    text.remove_prefix(1);
  }
  while (!text.empty() && (text.back() == ' ' || text.back() == '\r')) {
    text.remove_suffix(1);
  }
  return text;
}

}  // namespace

HttpClient::~HttpClient() { close(); }

HttpClient::HttpClient(HttpClient&& other) noexcept
    : fd_(std::exchange(other.fd_, -1)),
      host_(std::move(other.host_)),
      port_(other.port_),
      leftover_(std::move(other.leftover_)) {}

HttpClient& HttpClient::operator=(HttpClient&& other) noexcept {
  if (this != &other) {
    close();
    fd_ = std::exchange(other.fd_, -1);
    host_ = std::move(other.host_);
    port_ = other.port_;
    leftover_ = std::move(other.leftover_);
  }
  return *this;
}

void HttpClient::close() {
  if (fd_ >= 0) {
    // Best-effort teardown of a read-only socket; nothing buffered to lose.
    (void)::close(fd_);
    fd_ = -1;
  }
  leftover_.clear();
}

bool HttpClient::connect(const std::string& host, std::uint16_t port) {
  close();
  host_ = host;
  port_ = port;
  fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd_ < 0) return false;
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  if (::inet_pton(AF_INET, host.c_str(), &addr.sin_addr) != 1 ||
      ::connect(fd_, reinterpret_cast<const sockaddr*>(&addr), sizeof addr) !=
          0) {
    close();
    return false;
  }
  return true;
}

std::optional<HttpClientResponse> HttpClient::get(std::string_view target) {
  if (fd_ < 0) {
    if (host_.empty() || !connect(host_, port_)) return std::nullopt;
  }
  return round_trip("GET " + std::string(target) + " HTTP/1.1\r\nHost: " +
                    host_ + "\r\n\r\n");
}

std::optional<HttpClientResponse> HttpClient::post(
    std::string_view target, std::string_view body,
    std::string_view content_type) {
  if (fd_ < 0) {
    if (host_.empty() || !connect(host_, port_)) return std::nullopt;
  }
  std::string request = "POST " + std::string(target) +
                        " HTTP/1.1\r\nHost: " + host_ +
                        "\r\nContent-Type: " + std::string(content_type) +
                        "\r\nContent-Length: " + std::to_string(body.size()) +
                        "\r\n\r\n";
  request += body;
  return round_trip(request);
}

std::optional<HttpClientResponse> HttpClient::round_trip(
    const std::string& request) {
  std::size_t sent = 0;
  while (sent < request.size()) {
    ssize_t n = ::send(fd_, request.data() + sent, request.size() - sent,
                       MSG_NOSIGNAL);
    if (n < 0) {
      if (errno == EINTR) continue;
      close();
      return std::nullopt;
    }
    sent += static_cast<std::size_t>(n);
  }

  std::string buf = std::move(leftover_);
  leftover_.clear();
  auto fill = [this, &buf]() -> bool {
    char chunk[4096];
    ssize_t n = ::recv(fd_, chunk, sizeof chunk, 0);
    if (n <= 0) {
      if (n < 0 && errno == EINTR) return true;
      return false;
    }
    buf.append(chunk, static_cast<std::size_t>(n));
    return true;
  };

  std::size_t header_end;
  while ((header_end = buf.find("\r\n\r\n")) == std::string::npos) {
    if (!fill()) {
      close();
      return std::nullopt;
    }
  }

  HttpClientResponse response;
  std::string_view head = std::string_view(buf).substr(0, header_end);
  std::string_view status_line = head.substr(0, head.find("\r\n"));
  // HTTP/1.1 SP status SP reason
  std::size_t sp = status_line.find(' ');
  if (sp == std::string_view::npos || status_line.size() < sp + 4) {
    close();
    return std::nullopt;
  }
  response.status = (status_line[sp + 1] - '0') * 100 +
                    (status_line[sp + 2] - '0') * 10 +
                    (status_line[sp + 3] - '0');

  std::size_t content_length = 0;
  bool have_length = false;
  std::size_t line_start = head.find("\r\n");
  while (line_start != std::string_view::npos && line_start + 2 < head.size()) {
    line_start += 2;
    std::size_t line_end = head.find("\r\n", line_start);
    std::string_view line = head.substr(
        line_start, line_end == std::string_view::npos ? std::string_view::npos
                                                       : line_end - line_start);
    if (istarts_with(line, "content-length:")) {
      std::string_view value = trim(line.substr(15));
      content_length = 0;
      for (char c : value) {
        if (c < '0' || c > '9') break;
        content_length = content_length * 10 + static_cast<std::size_t>(c - '0');
      }
      have_length = true;
    } else if (istarts_with(line, "connection:")) {
      response.connection = std::string(trim(line.substr(11)));
    }
    line_start = line_end;
  }
  if (!have_length) {
    close();
    return std::nullopt;  // we only speak Content-Length framing
  }

  std::size_t body_start = header_end + 4;
  while (buf.size() < body_start + content_length) {
    if (!fill()) {
      close();
      return std::nullopt;
    }
  }
  response.body = buf.substr(body_start, content_length);
  leftover_ = buf.substr(body_start + content_length);
  if (response.connection == "close") close();
  return response;
}

}  // namespace georank::serve
