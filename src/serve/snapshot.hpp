// serve::Snapshot — the immutable unit the query service publishes.
//
// A snapshot is everything a read path needs, precomputed: the full
// country census (CCI/CCN/AHI/AHN rankings with confidence annotation),
// the health report behind those annotations, and caller-assigned
// metadata. Building one runs the expensive half of the system once
// (sanitize -> store -> parallel census); after that the snapshot is
// frozen, so readers never take the pipeline's reload lock and a server
// can boot from a persisted snapshot (io/snapshot_codec.hpp) without
// touching RIB data at all.
//
// Determinism: the library never reads a clock (georank-lint GR002), so
// snapshot identity — id, created_unix — is an INPUT. The CLI stamps
// wall-clock time; tests use fixed values; two builds from the same
// pipeline state and meta are identical.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "core/country_rankings.hpp"
#include "robust/data_health.hpp"

namespace georank::core {
class Pipeline;
}

namespace georank::serve {

struct SnapshotMeta {
  /// Caller-assigned identity; the service's RCU swap and response
  /// cache key on it, so reloads must change it.
  std::uint64_t id = 0;
  /// Caller-provided creation time (seconds since epoch); 0 = unknown.
  std::uint64_t created_unix = 0;
  /// Free-form provenance, e.g. the data-set directory or epoch tag.
  std::string label;
};

struct Snapshot {
  SnapshotMeta meta;
  /// The full census, sorted by country code ascending (the order
  /// core::Pipeline::all_countries() produces).
  std::vector<core::CountryMetrics> countries;
  /// Evidence audit behind the confidence annotations, same policy the
  /// pipeline used.
  robust::HealthReport health;

  /// Binary search over `countries`; nullptr when absent.
  [[nodiscard]] const core::CountryMetrics* find(geo::CountryCode country) const;

  /// Runs the census and health audit over a loaded pipeline. Throws
  /// std::logic_error (like any pipeline query) when nothing is loaded.
  [[nodiscard]] static Snapshot build(const core::Pipeline& pipeline,
                                      SnapshotMeta meta);
};

}  // namespace georank::serve
