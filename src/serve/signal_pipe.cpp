#include "serve/signal_pipe.hpp"

#include <poll.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>
#include <stdexcept>

namespace georank::serve {
namespace {

// The handler's only reachable state: the pipe's write end and the
// latched delivery flag. Plain globals (not function-local statics) so
// initialization is constant and the handler touches nothing lazy.
int g_write_fd = -1;
volatile std::sig_atomic_t g_signalled = 0;
bool g_installed = false;

}  // namespace

void SignalPipe::handle(int /*signum*/) {
  g_signalled = 1;
  if (g_write_fd >= 0) {
    const char byte = 1;
    // Async-signal-safe and non-blocking in practice: one byte into a
    // pipe whose buffer is drained by wait() on every wakeup.
    [[maybe_unused]] ssize_t n = ::write(g_write_fd, &byte, 1);
  }
}

SignalPipe::SignalPipe() {
  if (g_installed) {
    throw std::runtime_error(
        "SignalPipe: a second instance would steal the handlers");
  }
  int fds[2] = {-1, -1};
  if (::pipe(fds) != 0) {
    throw std::runtime_error(std::string("SignalPipe: pipe: ") +
                             std::strerror(errno));
  }
  read_fd_ = fds[0];
  g_write_fd = fds[1];
  g_signalled = 0;

  struct sigaction action {};
  action.sa_handler = &SignalPipe::handle;
  sigemptyset(&action.sa_mask);
  action.sa_flags = 0;  // no SA_RESTART: blocking calls should wake
  if (::sigaction(SIGINT, &action, &old_int_) != 0 ||
      ::sigaction(SIGTERM, &action, &old_term_) != 0) {
    const int saved = errno;
    // Fresh unused pipe ends; the sigaction error is the one to report.
    (void)::close(fds[0]);
    (void)::close(fds[1]);
    g_write_fd = -1;
    throw std::runtime_error(std::string("SignalPipe: sigaction: ") +
                             std::strerror(saved));
  }
  g_installed = true;
}

SignalPipe::~SignalPipe() {
  ::sigaction(SIGINT, &old_int_, nullptr);
  ::sigaction(SIGTERM, &old_term_, nullptr);
  const int write_fd = g_write_fd;
  g_write_fd = -1;
  // Destructor teardown of a self-pipe: close errors have no reader to
  // tell and the handlers were just restored above.
  if (write_fd >= 0) (void)::close(write_fd);
  if (read_fd_ >= 0) (void)::close(read_fd_);
  g_installed = false;
}

bool SignalPipe::wait(int timeout_ms) {
  if (g_signalled != 0) return true;
  struct pollfd pfd {};
  pfd.fd = read_fd_;
  pfd.events = POLLIN;
  for (;;) {
    const int rc = ::poll(&pfd, 1, timeout_ms);
    if (rc > 0) {
      char drain[16];
      [[maybe_unused]] ssize_t n = ::read(read_fd_, drain, sizeof drain);
      return true;
    }
    if (rc == 0) return g_signalled != 0;  // timeout
    if (errno == EINTR) {
      // The signal may have interrupted poll before the byte landed.
      if (g_signalled != 0) return true;
      continue;
    }
    throw std::runtime_error(std::string("SignalPipe: poll: ") +
                             std::strerror(errno));
  }
}

bool SignalPipe::signalled() const noexcept { return g_signalled != 0; }

}  // namespace georank::serve
