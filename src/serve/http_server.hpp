// serve::HttpServer — a zero-dependency HTTP/1.1 front end for the
// RankingService, built directly on POSIX sockets.
//
// Design: a fixed pool of worker threads all block in accept() on one
// listening socket (the kernel wakes exactly one per connection), so
// concurrency is bounded by the pool size and pending connections are
// bounded by the listen backlog — no unbounded queues anywhere. Each
// connection is served keep-alive until the client closes, the read
// timeout expires, or the server drains. GET/HEAD requests are bodyless;
// POST bodies (Content-Length framed, bounded by max_body_bytes) are
// read in full so keep-alive framing stays intact. Responses are
// written with
// send(MSG_NOSIGNAL), so a client hanging up mid-write surfaces as an
// error return instead of SIGPIPE killing the process.
//
// Shutdown is a graceful drain: stop() closes the listener, shuts down
// every active connection's socket (which unblocks workers parked in
// recv), lets in-flight requests finish their response write, and joins
// the pool. All syscall use in the project is contained to src/serve
// (georank-lint rule GR024).
#pragma once

#include <array>
#include <atomic>
#include <cstdint>
#include <string>
#include <thread>
#include <unordered_set>
#include <vector>

#include "serve/ranking_service.hpp"
#include "util/thread_safety.hpp"

namespace georank::serve {

struct HttpServerOptions {
  /// IPv4 address to bind; the default serves loopback only.
  std::string bind_address = "127.0.0.1";
  /// 0 = ephemeral: the kernel picks, port() reports it.
  std::uint16_t port = 0;
  /// Fixed worker pool size; also the maximum concurrent connections.
  std::size_t threads = 4;
  /// listen() backlog: pending-connection bound.
  int backlog = 64;
  /// Per-recv timeout; an idle keep-alive connection is dropped after
  /// this long.
  int read_timeout_ms = 5000;
  /// Requests whose header block exceeds this are rejected (431).
  std::size_t max_request_bytes = 16 * 1024;
  /// POST bodies (scenario texts) larger than this are rejected (413).
  std::size_t max_body_bytes = 64 * 1024;
};

/// Transport-level counters; service-level counters (status classes,
/// cache) live in RankingService.
struct HttpServerStats {
  std::uint64_t connections = 0;
  std::uint64_t requests = 0;
  std::uint64_t timeouts = 0;
  std::uint64_t parse_errors = 0;
  /// Request latency histogram (seconds, accept-to-last-byte of the
  /// response), cumulative per bucket like a Prometheus histogram.
  static constexpr std::array<double, 7> kBucketBounds = {
      0.0001, 0.0005, 0.001, 0.005, 0.025, 0.1, 1.0};
  std::array<std::uint64_t, kBucketBounds.size() + 1> latency_buckets{};
  double latency_sum_seconds = 0.0;
};

class HttpServer {
 public:
  HttpServer(RankingService& service, HttpServerOptions options = {});
  /// Joins the pool (calls stop() if still running).
  ~HttpServer();

  HttpServer(const HttpServer&) = delete;
  HttpServer& operator=(const HttpServer&) = delete;

  /// Binds, listens and spawns the worker pool. Throws
  /// std::system_error when the socket/bind/listen fails.
  void start();

  /// Graceful drain; idempotent, safe from a signal-handling thread.
  void stop();

  [[nodiscard]] bool running() const noexcept {
    return running_.load(std::memory_order_acquire);
  }

  /// The actually bound port (resolves port 0); valid after start().
  [[nodiscard]] std::uint16_t port() const noexcept { return port_; }

  [[nodiscard]] HttpServerStats stats() const;

 private:
  void accept_loop();
  void serve_connection(int fd);
  /// True when the whole buffer was written (retries short writes).
  [[nodiscard]] bool send_all(int fd, std::string_view bytes);
  void record_latency(double seconds);

  RankingService& service_;
  HttpServerOptions options_;

  std::atomic<bool> running_{false};
  int listen_fd_ = -1;
  std::uint16_t port_ = 0;
  std::vector<std::thread> workers_;

  std::mutex conn_mutex_;
  /// Sockets currently being served; stop() shuts them down to unblock
  /// workers parked in recv() on idle keep-alive connections.
  std::unordered_set<int> active_fds_ GEORANK_GUARDED_BY(conn_mutex_);

  std::atomic<std::uint64_t> connections_{0};
  std::atomic<std::uint64_t> requests_{0};
  std::atomic<std::uint64_t> timeouts_{0};
  std::atomic<std::uint64_t> parse_errors_{0};
  std::array<std::atomic<std::uint64_t>,
             HttpServerStats::kBucketBounds.size() + 1>
      latency_buckets_{};
  /// Nanoseconds so the sum can stay a lock-free integer atomic.
  std::atomic<std::uint64_t> latency_sum_ns_{0};
};

/// The transport metrics as Prometheus-style text; the server appends
/// this to the service's /metrics body.
[[nodiscard]] std::string http_metrics_text(const HttpServerStats& stats);

}  // namespace georank::serve
