// serve::SignalPipe — self-pipe SIGINT/SIGTERM handling for the long
// running binaries (`georank serve`, `georank live`).
//
// A signal handler can do almost nothing safely; the classic self-pipe
// trick keeps it to the two things that ARE async-signal-safe — set a
// flag, write one byte into a pipe — and moves every real consequence
// (drain the HTTP server, final checkpoint + journal sync) onto the
// ordinary thread parked in wait(). The pipe write is the wakeup: a
// one-byte write into an empty-to-64KB pipe buffer never blocks, so
// the handler never deadlocks, and poll() on the read end gives the
// waiter a plain blocking call with an optional timeout.
//
// One instance per process: the handler needs a static write-end to
// target, so a second live SignalPipe is a programming error (the
// constructor throws). Destruction restores the previous handlers.
#pragma once

#include <csignal>

namespace georank::serve {

class SignalPipe {
 public:
  /// Creates the pipe and installs SIGINT/SIGTERM handlers.
  SignalPipe();
  /// Restores the previous handlers and closes the pipe.
  ~SignalPipe();

  SignalPipe(const SignalPipe&) = delete;
  SignalPipe& operator=(const SignalPipe&) = delete;

  /// Parks until a signal arrives; `timeout_ms` < 0 waits forever.
  /// True when a signal was received (now or earlier), false on
  /// timeout. Safe to call repeatedly — the delivered state latches.
  bool wait(int timeout_ms = -1);

  /// True once SIGINT or SIGTERM has been delivered.
  [[nodiscard]] bool signalled() const noexcept;

 private:
  static void handle(int signum);

  int read_fd_ = -1;
  struct sigaction old_int_ {};
  struct sigaction old_term_ {};
};

}  // namespace georank::serve
