// live::HealthMonitor — the staleness state machine and backoff clock
// for the live pipeline (DESIGN.md §4g).
//
// The monitor owns two concerns the feeder loop would otherwise
// interleave badly:
//
//   * freshness: watermark progress vs the robust::StalenessPolicy
//     thresholds (fresh -> stale -> degraded by age; kRecovering only
//     ever entered/left explicitly, by journal replay or source
//     reopen attempts);
//   * backoff: when the input source vanishes or truncates, reopen
//     attempts space out by jittered exponential backoff. The jitter
//     comes from util::Pcg32, so a seeded run's reopen cadence is
//     reproducible down to the second — GR002's no-wall-clock rule
//     applies here too: time only ever enters as caller-supplied
//     seconds on one monotonic axis.
//
// The monitor never reads a clock, never sleeps and never touches the
// service directly; the CLI feeder ticks it and forwards its snapshot
// to serve::RankingService::set_live_health for /v1/health + /metrics.
#pragma once

#include <array>
#include <cstdint>

#include "robust/staleness.hpp"
#include "util/rng.hpp"

namespace georank::live {

struct HealthMonitorOptions {
  robust::StalenessPolicy staleness;
  /// First reopen retry delay; doubles per consecutive failure up to
  /// the cap, each scaled by a jitter factor in [0.5, 1.5).
  double backoff_initial_seconds = 1.0;
  double backoff_max_seconds = 60.0;
  std::uint64_t backoff_seed = 42;
};

/// Cumulative transition / backoff accounting, surfaced on /metrics.
struct HealthCounters {
  /// Entries into each state, indexed by ServingState.
  std::array<std::uint64_t, robust::kServingStateCount> entered{};
  std::uint64_t reopen_failures = 0;
  std::uint64_t reopen_successes = 0;
};

class HealthMonitor {
 public:
  explicit HealthMonitor(HealthMonitorOptions options = {});

  /// The stream advanced (an update was pushed or a flush published).
  /// Resets the staleness age; while recovering the state is pinned.
  void note_progress(double now);

  /// Re-classifies by age and returns the current state. Call from the
  /// feeder's idle loop.
  robust::ServingState tick(double now);

  /// Enter/leave kRecovering explicitly (journal replay, source gone).
  void begin_recovery(double now);
  /// Leaves kRecovering; freshness restarts from `now` — recovery that
  /// just replayed an old journal is not "fresh data", it is "progress
  /// as of now", and the age thresholds take it from there.
  void end_recovery(double now);

  /// A reopen attempt failed: stays (or enters) kRecovering and
  /// returns how long to wait before the next attempt — jittered
  /// exponential backoff, deterministic for a fixed seed.
  [[nodiscard]] double note_reopen_failure(double now);
  /// A reopen succeeded: resets the backoff ladder and leaves
  /// kRecovering with freshness restarting from `now`.
  void note_reopen_success(double now);

  [[nodiscard]] robust::ServingState state() const noexcept { return state_; }
  /// Seconds since the last progress event (0 before any).
  [[nodiscard]] double age(double now) const noexcept;
  [[nodiscard]] double last_backoff_seconds() const noexcept {
    return last_backoff_seconds_;
  }
  [[nodiscard]] const HealthCounters& counters() const noexcept {
    return counters_;
  }
  [[nodiscard]] const HealthMonitorOptions& options() const noexcept {
    return options_;
  }

 private:
  void enter(robust::ServingState next);

  HealthMonitorOptions options_;
  util::Pcg32 rng_;
  robust::ServingState state_ = robust::ServingState::kFresh;
  double last_progress_ = 0.0;
  bool saw_progress_ = false;
  std::uint64_t consecutive_failures_ = 0;
  double last_backoff_seconds_ = 0.0;
  HealthCounters counters_;
};

}  // namespace georank::live
