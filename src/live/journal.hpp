// live::UpdateJournal — an append-only write-ahead log of accepted
// updates, the durability half of the live pipeline's crash-safety
// story (DESIGN.md §4g).
//
// Contract: a record is journaled BEFORE the reorder buffer absorbs it
// (live::UpdatePipeline::push), so after a crash the journal holds
// every update the process ever accepted — including the ones that were
// still waiting in the reorder buffer. Recovery (live::recover) loads
// the latest checkpoint and replays the journal suffix through the
// normal push path, which is what makes the recovered state
// bit-identical to an uninterrupted run.
//
// On-disk shape (`GRJRNL01`, FORMATS.md): a journal is a directory of
// segment files, each a 16-byte header followed by length-prefixed,
// FNV-1a-64-checksummed records. Segments rotate at a configurable
// byte bound; the active segment's torn tail (a record cut short by a
// crash mid-write) is detected and truncated away on open — a torn
// tail is expected crash debris, not an error. Integrity failures that
// are NOT a plain tail (bad magic, unsupported version, non-monotonic
// sequence numbers) throw a typed JournalError, in the spirit of
// io::SnapshotDecodeError.
//
// All durability syscalls (open/write/fsync/ftruncate) live here and in
// checkpoint.cpp; georank-lint rule GR025 fences them into
// src/io + src/live.
#pragma once

#include <cstdint>
#include <stdexcept>
#include <string>
#include <vector>

#include "bgp/update_stream.hpp"

namespace georank::live {

/// Why a journal open/read was rejected. Torn tails never raise one of
/// these — they are truncated and counted instead.
enum class JournalErrorKind : std::uint8_t {
  kIo = 0,          // open/write/fsync/stat failure (errno in the detail)
  kBadMagic,        // a segment file does not start with GRJRNL01
  kBadVersion,      // a segment's format version is newer than this reader
  kBadSequence,     // record sequence numbers are not strictly increasing
};

[[nodiscard]] std::string_view to_string(JournalErrorKind kind) noexcept;

class JournalError : public std::runtime_error {
 public:
  JournalError(JournalErrorKind kind, const std::string& detail);
  [[nodiscard]] JournalErrorKind kind() const noexcept { return kind_; }

 private:
  JournalErrorKind kind_;
};

/// When the journal calls fsync on its own. sync() always syncs,
/// whatever the policy; the policy only adds automatic points.
enum class FsyncPolicy : std::uint8_t {
  kNever = 0,   // only explicit sync() calls reach the disk barrier
  kEachRecord,  // fsync after every append (maximum durability, slow)
};

struct UpdateJournalOptions {
  /// Directory holding the segment files; created if absent.
  std::string dir;
  /// Rotate to a fresh segment once the active one reaches this size.
  std::uint64_t segment_bytes = 4u << 20;
  FsyncPolicy fsync = FsyncPolicy::kNever;
};

/// One journaled update, as replayed by read_all().
struct JournalRecord {
  std::uint64_t seq = 0;
  bgp::UpdateMessage update;
};

/// Accounting filled by the open scan and maintained by append().
struct JournalStats {
  std::uint64_t segments = 0;
  std::uint64_t records = 0;
  /// Torn-tail bytes truncated away while opening (crash debris).
  std::uint64_t truncated_bytes = 0;
  std::uint64_t appended = 0;
  std::uint64_t syncs = 0;
};

/// What scan_journal() saw. `next_seq` is last record seq + 1 (0 when
/// the journal holds no records).
struct JournalScan {
  std::uint64_t segments = 0;
  std::uint64_t records = 0;
  std::uint64_t next_seq = 0;
  /// Trailing bytes of the final segment that do not form a whole
  /// checksummed record (a crash's torn tail, or a record another
  /// process is writing right now).
  std::uint64_t torn_bytes = 0;
};

/// Read-only journal accounting, WITHOUT the constructor's torn-tail
/// repair and append-cursor open: safe to run against a journal another
/// process has open for append. The CI recovery tier polls this through
/// `georank journal --dir J` to decide when a feeding `georank live`
/// has durably absorbed a burst before killing it.
[[nodiscard]] JournalScan scan_journal(const std::string& dir);

class UpdateJournal {
 public:
  /// Opens (creating the directory if needed), scans every segment,
  /// repairs the torn tail of the last one, and positions the append
  /// cursor after the last valid record.
  explicit UpdateJournal(UpdateJournalOptions options);
  ~UpdateJournal();

  UpdateJournal(const UpdateJournal&) = delete;
  UpdateJournal& operator=(const UpdateJournal&) = delete;

  /// Appends one record. `seq` must be exactly next_seq() — the journal
  /// is the pipeline's push order, nothing else. Rotates segments and
  /// applies the fsync policy as configured.
  void append(std::uint64_t seq, const bgp::UpdateMessage& update);

  /// Durability barrier on the active segment (used by checkpointing
  /// and graceful shutdown).
  void sync();

  /// Every record currently on disk, in sequence order.
  [[nodiscard]] std::vector<JournalRecord> read_all() const;

  /// Removes CLOSED segments whose every record is below `seq` (i.e.
  /// already covered by a checkpoint). The active segment is never
  /// dropped. Returns the number of segments removed.
  std::size_t drop_segments_below(std::uint64_t seq);

  /// The sequence number the next append must carry (0 on an empty
  /// journal; last record's seq + 1 otherwise).
  [[nodiscard]] std::uint64_t next_seq() const noexcept { return next_seq_; }

  [[nodiscard]] const JournalStats& stats() const noexcept { return stats_; }
  [[nodiscard]] const UpdateJournalOptions& options() const noexcept {
    return options_;
  }

 private:
  struct SegmentInfo {
    std::string path;
    std::uint64_t first_seq = 0;  // seq the segment was opened at
    std::uint64_t records = 0;
    std::uint64_t last_seq = 0;   // valid only when records > 0
  };

  void open_scan();
  void open_segment_for_append(std::uint64_t first_seq, bool fresh);
  void close_fd();

  UpdateJournalOptions options_;
  std::vector<SegmentInfo> segments_;
  int fd_ = -1;
  std::uint64_t active_bytes_ = 0;
  std::uint64_t next_seq_ = 0;
  JournalStats stats_;
};

}  // namespace georank::live
