// live::UpdatePipeline — update streams in, re-ranked snapshots out.
//
// The batch path recomputes the world from scratch on every refresh;
// this layer keeps the world LIVE against a collector's announce/
// withdraw stream instead (DESIGN.md §4f):
//
//   push() --> bounded reorder buffer --> watermark drain --> RibState
//                                                              |
//   flush(): rolling day window -> Pipeline::apply_updates -----+
//            -> Snapshot::build -> RankingService::publish (RCU)
//
// Updates enter a bounded buffer ordered by timestamp; everything at or
// below the watermark (max timestamp seen minus reorder_window) is
// drained into the live bgp::RibState, closing a day — and any quiet
// days it skipped — whenever the day index advances. After flush_batch
// applied updates the pipeline flushes: the current day window is
// re-sanitized as one collection through core::Pipeline::apply_updates
// (digest-verified shard reuse + shard-granular memo eviction do the
// incremental work), a serve::Snapshot is built — only countries whose
// shard digest changed re-rank — and published through the service's
// RCU swap. Each flush also maps the batch's touched prefixes onto
// their country sets through the pipeline's geolocation database, so
// the FlushReport names the countries a burst actually moved.
//
// Bit-identity invariant (tested): after draining any replayed archive,
// the published snapshot's census equals a from-scratch batch recompute
// of the same final RIB state bit for bit. The sanitizer's filters are
// globally coupled, so its incremental fast path digest-VERIFIES that
// only the live day changed before re-filtering just that day (falling
// back to a full run otherwise; see sanitize::IncrementalSanitizer),
// the day semantics mirror bgp::replay_to_collection exactly, and
// ranking accumulation order is shard-deterministic — so incrementality
// changes latency, never results.
//
// Threading: an UpdatePipeline instance is driven by ONE feeder thread;
// it is not itself thread-safe. Concurrent READERS are fine — they go
// through the RankingService / core::Pipeline locks as usual.
#pragma once

#include <cstdint>
#include <map>
#include <optional>
#include <string>
#include <vector>

#include "bgp/update_stream.hpp"
#include "core/pipeline.hpp"
#include "geo/country.hpp"
#include "serve/ranking_service.hpp"
#include "serve/snapshot.hpp"

namespace georank::live {

struct Checkpoint;     // checkpoint.hpp
class UpdateJournal;   // journal.hpp

/// What happens when the reorder buffer exceeds max_pending. Both
/// policies are deterministic functions of the push sequence, so a
/// journal replay re-makes the same decisions (recovery bit-identity).
enum class OverflowPolicy : std::uint8_t {
  /// Drain the oldest pending updates early (they are the buffer's
  /// minimum timestamps, so the applied sequence stays monotone). The
  /// default: nothing is lost, the reorder window just shrinks.
  kDrainOldest = 0,
  /// Shed the arriving update instead: tolerant mode counts it
  /// (stats().shed, `/metrics` georank_live_shed_total), strict mode
  /// throws bgp::UpdateReplayError{kBufferOverflow}.
  kShedNewest,
};

struct UpdatePipelineOptions {
  /// Auto-flush after this many updates applied to the live table.
  std::size_t flush_batch = 4096;
  /// Bounded reorder buffer: past this many pending updates the
  /// overflow policy below decides who pays.
  std::size_t max_pending = 65536;
  OverflowPolicy overflow = OverflowPolicy::kDrainOldest;
  /// Seconds an update may lag the newest timestamp seen and still be
  /// re-ordered instead of dropped. 0 = drain immediately (semantics
  /// identical to bgp::replay_to_collection).
  std::uint64_t reorder_window = 0;

  // Day semantics — must match the batch replay for bit-identity.
  std::uint64_t base_time = 1617235200;
  int max_day = 366;
  bgp::ParseMode mode = bgp::ParseMode::kTolerant;
  /// Days retained in the flush collection (closed days + the live
  /// day). 0 = keep every day, which is REQUIRED for bit-identity with
  /// a batch recompute of the full archive; a positive window bounds
  /// memory on endless feeds at the cost of that equivalence once the
  /// window starts dropping days.
  std::size_t window_days = 0;

  // Published snapshot identity: flush n gets id snapshot_id_base + n
  /// and created_unix = the last applied timestamp (deterministic — the
  /// library never reads a clock for snapshot identity).
  std::uint64_t snapshot_id_base = 1;
  std::string label;
};

/// What one flush did. Timings are steady-clock phase latencies.
struct FlushReport {
  /// False when nothing was applied since the previous flush (the
  /// pipeline and service are left untouched).
  bool published = false;
  std::uint64_t snapshot_id = 0;
  std::size_t batch = 0;  // updates applied since the previous flush
  std::size_t announces = 0;
  std::size_t withdraws = 0;
  std::size_t touched_prefixes = 0;
  /// Countries the batch's prefixes geolocate to (sorted, valid only).
  std::vector<geo::CountryCode> touched_countries;
  core::Pipeline::ApplyResult apply;
  double apply_seconds = 0.0;    // sanitize + shard rebuild + evict
  double census_seconds = 0.0;   // Snapshot::build (changed countries re-rank)
  double publish_seconds = 0.0;  // RCU swap
  double total_seconds = 0.0;
};

/// Cumulative stream accounting (mirrors bgp::ReplayStats, plus
/// batching state).
struct LiveStats {
  std::uint64_t pushed = 0;
  std::uint64_t applied = 0;
  std::uint64_t announces = 0;
  std::uint64_t withdraws = 0;
  std::uint64_t out_of_order = 0;      // tolerant-mode drops
  std::uint64_t day_out_of_range = 0;  // tolerant-mode drops
  std::uint64_t days_closed = 0;
  std::uint64_t quiet_days = 0;
  std::uint64_t flushes = 0;
  std::uint64_t publishes = 0;
  std::uint64_t shed = 0;         // kShedNewest drops (tolerant mode)
  std::uint64_t checkpoints = 0;  // checkpoint files published
};

class UpdatePipeline {
 public:
  /// `pipeline` must already be wired to its data sources (it need not
  /// be loaded — the first flush loads it); both references must
  /// outlive the UpdatePipeline.
  UpdatePipeline(core::Pipeline& pipeline, serve::RankingService& service,
                 UpdatePipelineOptions options = {});

  /// Feeds one update through the reorder buffer, draining everything
  /// at or below the watermark into the live table. Returns the flush
  /// report when this push crossed the flush_batch threshold. In strict
  /// mode a drained update violating the stream contract throws
  /// bgp::UpdateReplayError (index = its push sequence number).
  std::optional<FlushReport> push(const bgp::UpdateMessage& update);

  /// Republishes the current live state (applied updates only; the
  /// reorder buffer keeps waiting for its watermark). No-op report with
  /// published=false when nothing changed since the last flush.
  FlushReport flush();

  /// End of stream: forces the entire reorder buffer through the live
  /// table, then flushes.
  FlushReport drain();

  /// Archive parse diagnostics to roll into the service's ingest
  /// counters (the feeder parses; this layer only reports).
  void set_parse_stats(const bgp::MrtParseStats& stats) { parse_stats_ = stats; }

  // ---- Durability (DESIGN.md §4g) ----------------------------------

  /// Attaches the write-ahead journal: every subsequent push appends
  /// its record BEFORE the buffer absorbs it. The journal's next_seq()
  /// must equal this pipeline's (throws JournalError{kBadSequence}
  /// otherwise — attaching a stale journal would fork the history).
  /// Pass nullptr to detach. The journal must outlive the pipeline.
  void set_journal(UpdateJournal* journal);

  /// Enables periodic checkpoints: every `every` pushes, full pipeline
  /// state is published atomically to `path` and journal segments the
  /// checkpoint covers are dropped. 0 disables automatic checkpoints
  /// (write_checkpoint() still works for shutdown).
  void set_checkpoint(std::string path, std::uint64_t every);

  /// Captures complete pipeline state at the current journal boundary.
  [[nodiscard]] Checkpoint make_checkpoint() const;

  /// Syncs the journal, publishes a checkpoint to the configured path
  /// (no-op without one) and GCs covered journal segments.
  void write_checkpoint();

  /// Replaces all pipeline state with a checkpoint's. The service is
  /// not republished — recovery replays the journal suffix next, and
  /// the first flush after that publishes with the correct continued
  /// snapshot id. See live::recover().
  void restore(const Checkpoint& checkpoint);

  /// Sequence number the next push will consume (= journaled records
  /// so far when a journal has been attached from the start).
  [[nodiscard]] std::uint64_t next_seq() const noexcept { return seq_; }

  [[nodiscard]] const LiveStats& stats() const noexcept { return stats_; }
  [[nodiscard]] const bgp::RibState& rib() const noexcept { return rib_; }
  [[nodiscard]] std::size_t buffered() const noexcept { return buffer_.size(); }
  [[nodiscard]] const UpdatePipelineOptions& options() const noexcept {
    return options_;
  }

 private:
  struct Pending {
    bgp::UpdateMessage update;
    std::uint64_t seq = 0;  // push order, for strict-mode error reports
  };

  /// Applies every buffered update with timestamp <= `watermark`.
  void drain_up_to(std::uint64_t watermark);
  /// Applies one update to the live table (day bookkeeping included).
  void apply_one(const Pending& pending);
  /// Sorted valid countries the batch's prefixes geolocate to.
  [[nodiscard]] std::vector<geo::CountryCode> touched_countries() const;
  void report_ingest(const FlushReport& report);
  /// Publishes an automatic checkpoint when the push count crosses the
  /// configured interval.
  void maybe_checkpoint();

  core::Pipeline* pipeline_;
  serve::RankingService* service_;
  UpdatePipelineOptions options_;

  // Durability hooks (both optional; see DESIGN.md §4g).
  UpdateJournal* journal_ = nullptr;
  std::string checkpoint_path_;
  std::uint64_t checkpoint_every_ = 0;

  /// Reorder stage: multimap keeps equal timestamps in insertion order,
  /// so an already-ordered archive drains in exactly its input order.
  std::multimap<std::uint64_t, Pending> buffer_;
  std::uint64_t max_seen_ = 0;
  std::uint64_t last_applied_ts_ = 0;
  std::uint64_t seq_ = 0;

  bgp::RibState rib_;
  /// The flush collection, maintained in place: closed days accumulate
  /// here as the stream crosses day boundaries (trimmed to window_days
  /// from the front), and flush() appends the live day's snapshot for
  /// the apply_updates call, then pops it. Closed days are immutable
  /// between flushes — re-materializing them per flush would copy the
  /// whole window, and their stability is exactly what the sanitizer's
  /// incremental fast path digests against.
  bgp::RibCollection window_;
  int current_day_ = -1;

  // Current batch (reset at flush).
  std::size_t batch_applied_ = 0;
  std::size_t batch_announces_ = 0;
  std::size_t batch_withdraws_ = 0;
  std::vector<bgp::Prefix> batch_prefixes_;  // deduplicated at flush

  LiveStats stats_;
  bgp::MrtParseStats parse_stats_;
  double republish_seconds_sum_ = 0.0;
  double last_republish_seconds_ = 0.0;
  std::uint64_t last_batch_ = 0;
};

}  // namespace georank::live
