// live::Checkpoint — periodic full-state snapshots of the live pipeline,
// the second half of the crash-safety story (DESIGN.md §4g).
//
// A checkpoint captures EVERYTHING the UpdatePipeline knows: the RIB,
// the closed-day window, the pending reorder buffer (which is NOT a
// clean sequence prefix — drain order is timestamp order, not push
// order), the batch counters and the cumulative stats. Together with
// the journal boundary `seq` it makes recovery a pure function:
//
//   recover() = restore(checkpoint) + replay journal records seq >= boundary
//
// through the NORMAL push path, so the recovered run re-makes every
// drain/shed/flush decision exactly as the uninterrupted run did —
// bit-identical final snapshots, proven by the kill-at-fault-point
// harness in tests/live/recovery_test.cpp.
//
// Checkpoint files (`GRCKPT01`, FORMATS.md) are published atomically:
// encode to <path>.tmp, fsync, rename over <path>. A reader therefore
// sees either the old checkpoint or the new one, never a torn hybrid;
// a corrupt checkpoint (crash before the rename discipline existed,
// disk fault) is discarded and recovery falls back to a full journal
// replay from sequence zero.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "bgp/route.hpp"
#include "live/journal.hpp"
#include "live/update_pipeline.hpp"

namespace georank::live {

/// Complete pipeline state at a journal boundary. Field order mirrors
/// UpdatePipeline's members; the codec below round-trips it bit-exactly.
struct Checkpoint {
  /// Journal replay boundary: the pipeline's next push sequence number
  /// at capture time. Records with seq >= this must be replayed.
  std::uint64_t seq = 0;

  std::uint64_t max_seen = 0;
  std::uint64_t last_applied_ts = 0;
  int current_day = -1;

  std::vector<bgp::RouteEntry> rib_entries;
  std::uint64_t spurious_withdrawals = 0;

  /// Closed days only (the live day is always re-derived from the RIB).
  bgp::RibCollection window;

  /// Reorder buffer contents in multimap iteration order, so restore
  /// reproduces the exact insertion order for equal timestamps.
  std::vector<JournalRecord> pending;

  std::uint64_t batch_applied = 0;
  std::uint64_t batch_announces = 0;
  std::uint64_t batch_withdraws = 0;
  std::vector<bgp::Prefix> batch_prefixes;

  LiveStats stats;
  double republish_seconds_sum = 0.0;
  double last_republish_seconds = 0.0;
  std::uint64_t last_batch = 0;
};

/// GRCKPT01 codec. decode throws JournalError (kBadMagic/kBadVersion on
/// foreign input, kIo on checksum or structural damage).
[[nodiscard]] std::string encode_checkpoint(const Checkpoint& checkpoint);
[[nodiscard]] Checkpoint decode_checkpoint(std::string_view bytes);

/// Atomic publish: write <path>.tmp, fsync, rename over <path>.
void write_checkpoint_file(const std::string& path, const Checkpoint& checkpoint);

/// Loads a checkpoint file. Empty optional when the file does not
/// exist; throws JournalError when it exists but cannot be decoded.
[[nodiscard]] std::optional<Checkpoint> load_checkpoint_file(
    const std::string& path);

/// What recover() did.
struct RecoveryResult {
  bool checkpoint_loaded = false;
  /// A checkpoint file existed but was corrupt; it was discarded and
  /// the journal was replayed from sequence zero instead.
  bool checkpoint_discarded = false;
  std::uint64_t replay_from = 0;
  std::uint64_t records_replayed = 0;
  /// The pipeline's (and journal's) next sequence number afterwards.
  std::uint64_t next_seq = 0;
};

/// Restores `pipeline` from the checkpoint at `checkpoint_path` (may be
/// empty or missing) and replays the journal suffix through the normal
/// push path. Call on a FRESHLY CONSTRUCTED pipeline with the same
/// options as the interrupted run, BEFORE set_journal/set_checkpoint —
/// replayed records are already on disk and must not be re-journaled.
/// Throws JournalError{kBadSequence} when there is no usable checkpoint
/// and the journal does not start at sequence zero (segments were
/// dropped past the last durable checkpoint).
RecoveryResult recover(UpdatePipeline& pipeline, UpdateJournal& journal,
                       const std::string& checkpoint_path);

}  // namespace georank::live
