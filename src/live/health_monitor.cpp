#include "live/health_monitor.hpp"

#include <algorithm>

namespace georank::live {

HealthMonitor::HealthMonitor(HealthMonitorOptions options)
    : options_(options), rng_(options.backoff_seed) {
  if (options_.backoff_initial_seconds <= 0.0) {
    options_.backoff_initial_seconds = 1.0;
  }
  if (options_.backoff_max_seconds < options_.backoff_initial_seconds) {
    options_.backoff_max_seconds = options_.backoff_initial_seconds;
  }
  // The machine is born fresh; count the birth so the transition
  // counters always sum to "entries", not "entries after the first".
  counters_.entered[static_cast<std::size_t>(state_)] = 1;
}

void HealthMonitor::enter(robust::ServingState next) {
  if (next == state_) return;
  state_ = next;
  ++counters_.entered[static_cast<std::size_t>(next)];
}

void HealthMonitor::note_progress(double now) {
  last_progress_ = now;
  saw_progress_ = true;
  // Recovery progress (journal replay pushes) must not flip the state
  // to fresh mid-replay; end_recovery / note_reopen_success do that.
  if (state_ != robust::ServingState::kRecovering) {
    enter(robust::ServingState::kFresh);
  }
}

robust::ServingState HealthMonitor::tick(double now) {
  if (state_ != robust::ServingState::kRecovering) {
    enter(options_.staleness.classify(age(now)));
  }
  return state_;
}

double HealthMonitor::age(double now) const noexcept {
  if (!saw_progress_) return 0.0;
  return now > last_progress_ ? now - last_progress_ : 0.0;
}

void HealthMonitor::begin_recovery(double now) {
  last_progress_ = now;
  saw_progress_ = true;
  enter(robust::ServingState::kRecovering);
}

void HealthMonitor::end_recovery(double now) {
  if (state_ != robust::ServingState::kRecovering) return;
  last_progress_ = now;
  enter(robust::ServingState::kFresh);
}

double HealthMonitor::note_reopen_failure(double now) {
  ++counters_.reopen_failures;
  if (state_ != robust::ServingState::kRecovering) begin_recovery(now);
  // 2^n ladder capped at the max, then jittered by [0.5, 1.5) so a
  // fleet of followers does not reopen in lockstep. Deterministic for
  // a fixed seed: the nth failure always draws the nth jitter.
  double base = options_.backoff_initial_seconds;
  for (std::uint64_t i = 0;
       i < consecutive_failures_ && base < options_.backoff_max_seconds; ++i) {
    base *= 2.0;
  }
  base = std::min(base, options_.backoff_max_seconds);
  ++consecutive_failures_;
  last_backoff_seconds_ = base * (0.5 + rng_.uniform());
  return last_backoff_seconds_;
}

void HealthMonitor::note_reopen_success(double now) {
  ++counters_.reopen_successes;
  consecutive_failures_ = 0;
  last_backoff_seconds_ = 0.0;
  last_progress_ = now;
  enter(robust::ServingState::kFresh);
}

}  // namespace georank::live
