#include "live/update_pipeline.hpp"

#include <algorithm>
#include <chrono>
#include <memory>
#include <utility>

#include "bgp/line_parse.hpp"

namespace georank::live {

namespace {

using Clock = std::chrono::steady_clock;

double seconds_since(Clock::time_point start) {
  return std::chrono::duration<double>(Clock::now() - start).count();
}

}  // namespace

UpdatePipeline::UpdatePipeline(core::Pipeline& pipeline,
                               serve::RankingService& service,
                               UpdatePipelineOptions options)
    : pipeline_(&pipeline), service_(&service), options_(std::move(options)) {
  if (options_.flush_batch == 0) options_.flush_batch = 1;
  if (options_.max_pending == 0) options_.max_pending = 1;
}

std::optional<FlushReport> UpdatePipeline::push(const bgp::UpdateMessage& update) {
  ++stats_.pushed;
  buffer_.emplace(update.timestamp, Pending{update, seq_++});
  if (update.timestamp > max_seen_) max_seen_ = update.timestamp;

  // Watermark drain: everything the reorder window can no longer save.
  const std::uint64_t watermark =
      max_seen_ > options_.reorder_window ? max_seen_ - options_.reorder_window
                                          : 0;
  drain_up_to(watermark);

  // Bounded buffer: overflow drains the oldest pending updates early.
  // They are the buffer's minimum timestamps, so applying them keeps
  // the applied sequence monotone.
  while (buffer_.size() > options_.max_pending) {
    Pending pending = std::move(buffer_.begin()->second);
    buffer_.erase(buffer_.begin());
    apply_one(pending);
  }

  if (batch_applied_ >= options_.flush_batch) return flush();
  return std::nullopt;
}

void UpdatePipeline::drain_up_to(std::uint64_t watermark) {
  while (!buffer_.empty() && buffer_.begin()->first <= watermark) {
    Pending pending = std::move(buffer_.begin()->second);
    buffer_.erase(buffer_.begin());
    apply_one(pending);
  }
}

void UpdatePipeline::apply_one(const Pending& pending) {
  const bgp::UpdateMessage& u = pending.update;
  int day = 0;
  if (bgp::detail::day_from_timestamp(u.timestamp, options_.base_time,
                                      options_.max_day, day) !=
      bgp::ParseReason::kOk) {
    if (options_.mode == bgp::ParseMode::kStrict) {
      throw bgp::UpdateReplayError{
          bgp::UpdateReplayError::Kind::kDayOutOfRange,
          static_cast<std::size_t>(pending.seq), u.timestamp};
    }
    ++stats_.day_out_of_range;
    return;
  }
  if (u.timestamp < last_applied_ts_) {
    // Late beyond the reorder window: the watermark already passed it.
    if (options_.mode == bgp::ParseMode::kStrict) {
      throw bgp::UpdateReplayError{bgp::UpdateReplayError::Kind::kOutOfOrder,
                                   static_cast<std::size_t>(pending.seq),
                                   u.timestamp};
    }
    ++stats_.out_of_order;
    return;
  }
  last_applied_ts_ = u.timestamp;

  // Day advance closes the finished day and any quiet days it skipped —
  // the exact semantics of bgp::replay_to_collection, so the final
  // window equals the batch replay of the same archive.
  if (current_day_ >= 0 && day != current_day_) {
    for (int d = current_day_; d < day; ++d) {
      window_.days.push_back(rib_.snapshot(d));
      ++stats_.days_closed;
      if (d > current_day_) ++stats_.quiet_days;
    }
    if (options_.window_days > 0) {
      while (window_.days.size() >= options_.window_days) {
        window_.days.erase(window_.days.begin());
      }
    }
  }
  current_day_ = day;
  rib_.apply(u);

  ++stats_.applied;
  ++batch_applied_;
  if (u.kind == bgp::UpdateMessage::Kind::kAnnounce) {
    ++stats_.announces;
    ++batch_announces_;
  } else {
    ++stats_.withdraws;
    ++batch_withdraws_;
  }
  batch_prefixes_.push_back(u.prefix);
}

std::vector<geo::CountryCode> UpdatePipeline::touched_countries() const {
  const geo::GeoDatabase& db = pipeline_->geo_db();
  std::vector<geo::CountryCode> countries;
  std::vector<bgp::Prefix> prefixes = batch_prefixes_;
  std::sort(prefixes.begin(), prefixes.end());
  prefixes.erase(std::unique(prefixes.begin(), prefixes.end()), prefixes.end());
  for (const bgp::Prefix& prefix : prefixes) {
    for (const geo::CountrySlice& slice :
         db.count_by_country(prefix.first(), prefix.last())) {
      if (slice.country.valid()) countries.push_back(slice.country);
    }
  }
  std::sort(countries.begin(), countries.end());
  countries.erase(std::unique(countries.begin(), countries.end()),
                  countries.end());
  return countries;
}

FlushReport UpdatePipeline::flush() {
  FlushReport report;
  ++stats_.flushes;
  report.batch = batch_applied_;
  report.announces = batch_announces_;
  report.withdraws = batch_withdraws_;
  if (batch_applied_ == 0) {
    // Nothing applied since the last flush: the world is unchanged, so
    // republishing would only burn a snapshot id.
    report_ingest(report);
    return report;
  }

  const Clock::time_point start = Clock::now();
  report.touched_countries = touched_countries();
  report.touched_prefixes = [this] {
    std::vector<bgp::Prefix> unique = batch_prefixes_;
    std::sort(unique.begin(), unique.end());
    unique.erase(std::unique(unique.begin(), unique.end()), unique.end());
    return unique.size();
  }();

  // The window's closed days sit in window_ already; only the live day
  // needs materializing. Append it for the apply, then drop it — the
  // next flush's live day will have moved on.
  const Clock::time_point apply_start = Clock::now();
  if (current_day_ >= 0) {
    window_.days.push_back(rib_.snapshot(current_day_));
  }
  report.apply = pipeline_->apply_updates(window_);
  if (current_day_ >= 0) {
    window_.days.pop_back();
  }
  report.apply_seconds = seconds_since(apply_start);

  // Only countries whose shard digest changed were evicted above, so
  // this census re-ranks exactly those; everything else is a memo hit.
  const Clock::time_point census_start = Clock::now();
  serve::SnapshotMeta meta;
  meta.id = options_.snapshot_id_base + stats_.publishes;
  meta.created_unix = last_applied_ts_;
  meta.label = options_.label;
  auto snapshot = std::make_shared<const serve::Snapshot>(
      serve::Snapshot::build(*pipeline_, std::move(meta)));
  report.census_seconds = seconds_since(census_start);

  const Clock::time_point publish_start = Clock::now();
  report.snapshot_id = snapshot->meta.id;
  service_->publish(std::move(snapshot));
  report.publish_seconds = seconds_since(publish_start);
  report.total_seconds = seconds_since(start);
  report.published = true;
  ++stats_.publishes;

  republish_seconds_sum_ += report.total_seconds;
  last_republish_seconds_ = report.total_seconds;
  last_batch_ = report.batch;

  batch_applied_ = 0;
  batch_announces_ = 0;
  batch_withdraws_ = 0;
  batch_prefixes_.clear();

  report_ingest(report);
  return report;
}

FlushReport UpdatePipeline::drain() {
  drain_up_to(~std::uint64_t{0});
  return flush();
}

void UpdatePipeline::report_ingest(const FlushReport&) {
  serve::IngestCounters counters;
  counters.updates_applied = stats_.applied;
  counters.announces = stats_.announces;
  counters.withdraws = stats_.withdraws;
  counters.spurious_withdrawals = rib_.spurious_withdrawals();
  counters.out_of_order = stats_.out_of_order;
  counters.day_out_of_range = stats_.day_out_of_range;
  counters.parse_lines = parse_stats_.lines;
  counters.parse_malformed = parse_stats_.malformed;
  counters.republishes = stats_.publishes;
  counters.republish_seconds_sum = republish_seconds_sum_;
  counters.last_republish_seconds = last_republish_seconds_;
  counters.last_batch = last_batch_;
  service_->set_ingest(counters);
}

}  // namespace georank::live
