#include "live/update_pipeline.hpp"

#include <algorithm>
#include <chrono>
#include <memory>
#include <utility>

#include "bgp/line_parse.hpp"
#include "live/checkpoint.hpp"
#include "live/journal.hpp"

namespace georank::live {

namespace {

using Clock = std::chrono::steady_clock;

double seconds_since(Clock::time_point start) {
  return std::chrono::duration<double>(Clock::now() - start).count();
}

}  // namespace

UpdatePipeline::UpdatePipeline(core::Pipeline& pipeline,
                               serve::RankingService& service,
                               UpdatePipelineOptions options)
    : pipeline_(&pipeline), service_(&service), options_(std::move(options)) {
  if (options_.flush_batch == 0) options_.flush_batch = 1;
  if (options_.max_pending == 0) options_.max_pending = 1;
}

std::optional<FlushReport> UpdatePipeline::push(const bgp::UpdateMessage& update) {
  ++stats_.pushed;
  const std::uint64_t seq = seq_++;
  // Write-ahead: the journal holds the record before anything can act
  // on it, so a crash at any later point can replay this push.
  if (journal_) journal_->append(seq, update);

  if (options_.overflow == OverflowPolicy::kShedNewest &&
      buffer_.size() >= options_.max_pending) {
    // At capacity the arriving update pays. The decision is a pure
    // function of buffer state, so a journal replay sheds it again.
    if (options_.mode == bgp::ParseMode::kStrict) {
      throw bgp::UpdateReplayError{
          bgp::UpdateReplayError::Kind::kBufferOverflow,
          static_cast<std::size_t>(seq), update.timestamp};
    }
    ++stats_.shed;
    maybe_checkpoint();
    return std::nullopt;
  }

  buffer_.emplace(update.timestamp, Pending{update, seq});
  if (update.timestamp > max_seen_) max_seen_ = update.timestamp;

  // Watermark drain: everything the reorder window can no longer save.
  const std::uint64_t watermark =
      max_seen_ > options_.reorder_window ? max_seen_ - options_.reorder_window
                                          : 0;
  drain_up_to(watermark);

  // Bounded buffer: the default policy drains the oldest pending
  // updates early. They are the buffer's minimum timestamps, so
  // applying them keeps the applied sequence monotone.
  if (options_.overflow == OverflowPolicy::kDrainOldest) {
    while (buffer_.size() > options_.max_pending) {
      Pending pending = std::move(buffer_.begin()->second);
      buffer_.erase(buffer_.begin());
      apply_one(pending);
    }
  }

  std::optional<FlushReport> report;
  if (batch_applied_ >= options_.flush_batch) report = flush();
  // Checkpoint after the flush so the captured state is post-publish.
  maybe_checkpoint();
  return report;
}

void UpdatePipeline::drain_up_to(std::uint64_t watermark) {
  while (!buffer_.empty() && buffer_.begin()->first <= watermark) {
    Pending pending = std::move(buffer_.begin()->second);
    buffer_.erase(buffer_.begin());
    apply_one(pending);
  }
}

void UpdatePipeline::apply_one(const Pending& pending) {
  const bgp::UpdateMessage& u = pending.update;
  int day = 0;
  if (bgp::detail::day_from_timestamp(u.timestamp, options_.base_time,
                                      options_.max_day, day) !=
      bgp::ParseReason::kOk) {
    if (options_.mode == bgp::ParseMode::kStrict) {
      throw bgp::UpdateReplayError{
          bgp::UpdateReplayError::Kind::kDayOutOfRange,
          static_cast<std::size_t>(pending.seq), u.timestamp};
    }
    ++stats_.day_out_of_range;
    return;
  }
  if (u.timestamp < last_applied_ts_) {
    // Late beyond the reorder window: the watermark already passed it.
    if (options_.mode == bgp::ParseMode::kStrict) {
      throw bgp::UpdateReplayError{bgp::UpdateReplayError::Kind::kOutOfOrder,
                                   static_cast<std::size_t>(pending.seq),
                                   u.timestamp};
    }
    ++stats_.out_of_order;
    return;
  }
  last_applied_ts_ = u.timestamp;

  // Day advance closes the finished day and any quiet days it skipped —
  // the exact semantics of bgp::replay_to_collection, so the final
  // window equals the batch replay of the same archive.
  if (current_day_ >= 0 && day != current_day_) {
    for (int d = current_day_; d < day; ++d) {
      window_.days.push_back(rib_.snapshot(d));
      ++stats_.days_closed;
      if (d > current_day_) ++stats_.quiet_days;
    }
    if (options_.window_days > 0) {
      while (window_.days.size() >= options_.window_days) {
        window_.days.erase(window_.days.begin());
      }
    }
  }
  current_day_ = day;
  rib_.apply(u);

  ++stats_.applied;
  ++batch_applied_;
  if (u.kind == bgp::UpdateMessage::Kind::kAnnounce) {
    ++stats_.announces;
    ++batch_announces_;
  } else {
    ++stats_.withdraws;
    ++batch_withdraws_;
  }
  batch_prefixes_.push_back(u.prefix);
}

std::vector<geo::CountryCode> UpdatePipeline::touched_countries() const {
  const geo::GeoDatabase& db = pipeline_->geo_db();
  std::vector<geo::CountryCode> countries;
  std::vector<bgp::Prefix> prefixes = batch_prefixes_;
  std::sort(prefixes.begin(), prefixes.end());
  prefixes.erase(std::unique(prefixes.begin(), prefixes.end()), prefixes.end());
  for (const bgp::Prefix& prefix : prefixes) {
    for (const geo::CountrySlice& slice :
         db.count_by_country(prefix.first(), prefix.last())) {
      if (slice.country.valid()) countries.push_back(slice.country);
    }
  }
  std::sort(countries.begin(), countries.end());
  countries.erase(std::unique(countries.begin(), countries.end()),
                  countries.end());
  return countries;
}

FlushReport UpdatePipeline::flush() {
  FlushReport report;
  ++stats_.flushes;
  report.batch = batch_applied_;
  report.announces = batch_announces_;
  report.withdraws = batch_withdraws_;
  if (batch_applied_ == 0) {
    // Nothing applied since the last flush: the world is unchanged, so
    // republishing would only burn a snapshot id.
    report_ingest(report);
    return report;
  }

  const Clock::time_point start = Clock::now();
  report.touched_countries = touched_countries();
  report.touched_prefixes = [this] {
    std::vector<bgp::Prefix> unique = batch_prefixes_;
    std::sort(unique.begin(), unique.end());
    unique.erase(std::unique(unique.begin(), unique.end()), unique.end());
    return unique.size();
  }();

  // The window's closed days sit in window_ already; only the live day
  // needs materializing. Append it for the apply, then drop it — the
  // next flush's live day will have moved on.
  const Clock::time_point apply_start = Clock::now();
  if (current_day_ >= 0) {
    window_.days.push_back(rib_.snapshot(current_day_));
  }
  report.apply = pipeline_->apply_updates(window_);
  if (current_day_ >= 0) {
    window_.days.pop_back();
  }
  report.apply_seconds = seconds_since(apply_start);

  // Only countries whose shard digest changed were evicted above, so
  // this census re-ranks exactly those; everything else is a memo hit.
  const Clock::time_point census_start = Clock::now();
  serve::SnapshotMeta meta;
  meta.id = options_.snapshot_id_base + stats_.publishes;
  meta.created_unix = last_applied_ts_;
  meta.label = options_.label;
  auto snapshot = std::make_shared<const serve::Snapshot>(
      serve::Snapshot::build(*pipeline_, std::move(meta)));
  report.census_seconds = seconds_since(census_start);

  const Clock::time_point publish_start = Clock::now();
  report.snapshot_id = snapshot->meta.id;
  service_->publish(std::move(snapshot));
  report.publish_seconds = seconds_since(publish_start);
  report.total_seconds = seconds_since(start);
  report.published = true;
  ++stats_.publishes;

  republish_seconds_sum_ += report.total_seconds;
  last_republish_seconds_ = report.total_seconds;
  last_batch_ = report.batch;

  batch_applied_ = 0;
  batch_announces_ = 0;
  batch_withdraws_ = 0;
  batch_prefixes_.clear();

  report_ingest(report);
  return report;
}

FlushReport UpdatePipeline::drain() {
  drain_up_to(~std::uint64_t{0});
  return flush();
}

void UpdatePipeline::set_journal(UpdateJournal* journal) {
  if (journal && journal->next_seq() != seq_) {
    throw JournalError(
        JournalErrorKind::kBadSequence,
        "journal next_seq " + std::to_string(journal->next_seq()) +
            " != pipeline next_seq " + std::to_string(seq_) +
            " (recover() first, or start from a fresh journal)");
  }
  journal_ = journal;
}

void UpdatePipeline::set_checkpoint(std::string path, std::uint64_t every) {
  checkpoint_path_ = std::move(path);
  checkpoint_every_ = every;
}

Checkpoint UpdatePipeline::make_checkpoint() const {
  Checkpoint ckpt;
  ckpt.seq = seq_;
  ckpt.max_seen = max_seen_;
  ckpt.last_applied_ts = last_applied_ts_;
  ckpt.current_day = current_day_;
  // snapshot() orders entries deterministically; the day index is
  // irrelevant here (restore only reads the entries).
  ckpt.rib_entries = rib_.snapshot(0).entries;
  ckpt.spurious_withdrawals = rib_.spurious_withdrawals();
  ckpt.window = window_;
  ckpt.pending.reserve(buffer_.size());
  for (const auto& [timestamp, pending] : buffer_) {
    (void)timestamp;
    ckpt.pending.push_back(JournalRecord{pending.seq, pending.update});
  }
  ckpt.batch_applied = batch_applied_;
  ckpt.batch_announces = batch_announces_;
  ckpt.batch_withdraws = batch_withdraws_;
  ckpt.batch_prefixes = batch_prefixes_;
  ckpt.stats = stats_;
  ckpt.republish_seconds_sum = republish_seconds_sum_;
  ckpt.last_republish_seconds = last_republish_seconds_;
  ckpt.last_batch = last_batch_;
  return ckpt;
}

void UpdatePipeline::write_checkpoint() {
  if (checkpoint_path_.empty()) return;
  // Journal first: the checkpoint's boundary must not outrun the
  // durable journal, or a crash between the two loses the suffix.
  if (journal_) journal_->sync();
  ++stats_.checkpoints;
  write_checkpoint_file(checkpoint_path_, make_checkpoint());
  if (journal_) journal_->drop_segments_below(seq_);
}

void UpdatePipeline::maybe_checkpoint() {
  if (checkpoint_every_ > 0 && stats_.pushed % checkpoint_every_ == 0) {
    write_checkpoint();
  }
}

void UpdatePipeline::restore(const Checkpoint& ckpt) {
  seq_ = ckpt.seq;
  max_seen_ = ckpt.max_seen;
  last_applied_ts_ = ckpt.last_applied_ts;
  current_day_ = ckpt.current_day;
  rib_.restore(ckpt.rib_entries,
               static_cast<std::size_t>(ckpt.spurious_withdrawals));
  window_ = ckpt.window;
  buffer_.clear();
  // Checkpointed pending order IS multimap iteration order, so equal
  // timestamps re-enter in their original insertion order.
  for (const JournalRecord& record : ckpt.pending) {
    buffer_.emplace(record.update.timestamp,
                    Pending{record.update, record.seq});
  }
  batch_applied_ = static_cast<std::size_t>(ckpt.batch_applied);
  batch_announces_ = static_cast<std::size_t>(ckpt.batch_announces);
  batch_withdraws_ = static_cast<std::size_t>(ckpt.batch_withdraws);
  batch_prefixes_ = ckpt.batch_prefixes;
  stats_ = ckpt.stats;
  republish_seconds_sum_ = ckpt.republish_seconds_sum;
  last_republish_seconds_ = ckpt.last_republish_seconds;
  last_batch_ = ckpt.last_batch;
}

void UpdatePipeline::report_ingest(const FlushReport&) {
  serve::IngestCounters counters;
  counters.updates_applied = stats_.applied;
  counters.announces = stats_.announces;
  counters.withdraws = stats_.withdraws;
  counters.spurious_withdrawals = rib_.spurious_withdrawals();
  counters.out_of_order = stats_.out_of_order;
  counters.day_out_of_range = stats_.day_out_of_range;
  counters.parse_lines = parse_stats_.lines;
  counters.parse_malformed = parse_stats_.malformed;
  counters.republishes = stats_.publishes;
  counters.republish_seconds_sum = republish_seconds_sum_;
  counters.last_republish_seconds = last_republish_seconds_;
  counters.last_batch = last_batch_;
  counters.shed = stats_.shed;
  counters.checkpoints = stats_.checkpoints;
  service_->set_ingest(counters);
}

}  // namespace georank::live
