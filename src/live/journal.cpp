#include "live/journal.hpp"

#include <fcntl.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <utility>

#include "io/snapshot_codec.hpp"
#include "io/wire.hpp"

namespace georank::live {
namespace {

namespace fs = std::filesystem;

constexpr std::string_view kJournalMagic = "GRJRNL01";
constexpr std::uint32_t kJournalVersion = 1;
constexpr std::size_t kSegmentHeaderSize = 16;  // magic + version + reserved
/// Records are single updates; anything declaring more than this is a
/// torn or garbage length field, not a real record.
constexpr std::uint32_t kMaxRecordPayload = 1u << 22;

std::string segment_file_name(std::uint64_t first_seq) {
  std::string digits = std::to_string(first_seq);
  std::string out = "seg-";
  out.append(20 - digits.size(), '0');
  out += digits;
  out += ".grjrnl";
  return out;
}

std::string segment_header() {
  std::string out{kJournalMagic};
  io::wire::put_u32(out, kJournalVersion);
  io::wire::put_u32(out, 0);  // reserved
  return out;
}

/// length-prefixed payload + trailing FNV-1a 64 checksum of the payload.
std::string encode_record(std::uint64_t seq, const bgp::UpdateMessage& u) {
  std::string payload;
  io::wire::put_u64(payload, seq);
  io::wire::put_u64(payload, u.timestamp);
  io::wire::put_u8(payload,
                   u.kind == bgp::UpdateMessage::Kind::kWithdraw ? 1 : 0);
  io::wire::put_u8(payload, u.path.has_as_set() ? 1 : 0);
  io::wire::put_u8(payload, u.prefix.length());
  io::wire::put_u8(payload, 0);  // pad
  io::wire::put_u32(payload, u.vp.ip);
  io::wire::put_u32(payload, u.vp.asn);
  io::wire::put_u32(payload, u.prefix.address());
  io::wire::put_u32(payload, static_cast<std::uint32_t>(u.path.size()));
  for (bgp::Asn hop : u.path.hops()) io::wire::put_u32(payload, hop);

  std::string out;
  io::wire::put_u32(out, static_cast<std::uint32_t>(payload.size()));
  out += payload;
  io::wire::put_u64(out, io::snapshot_checksum(payload));
  return out;
}

/// Decodes one checksum-verified payload. False = structurally invalid
/// (treated exactly like a checksum mismatch by the caller).
bool decode_payload(std::string_view payload, JournalRecord& out) {
  io::wire::Reader in{payload};
  std::uint8_t kind = 0, as_set = 0, prefix_len = 0, pad = 0;
  std::uint32_t vp_ip = 0, vp_asn = 0, prefix_addr = 0, hop_count = 0;
  if (!in.u64(out.seq) || !in.u64(out.update.timestamp) || !in.u8(kind) ||
      !in.u8(as_set) || !in.u8(prefix_len) || !in.u8(pad) || !in.u32(vp_ip) ||
      !in.u32(vp_asn) || !in.u32(prefix_addr) || !in.u32(hop_count)) {
    return false;
  }
  if (kind > 1 || prefix_len > 32 || hop_count > in.remaining() / 4) {
    return false;
  }
  out.update.kind = kind == 1 ? bgp::UpdateMessage::Kind::kWithdraw
                              : bgp::UpdateMessage::Kind::kAnnounce;
  out.update.vp = bgp::VpId{vp_ip, vp_asn};
  out.update.prefix = bgp::Prefix{prefix_addr, prefix_len};
  std::vector<bgp::Asn> hops;
  hops.reserve(hop_count);
  for (std::uint32_t i = 0; i < hop_count; ++i) {
    std::uint32_t hop = 0;
    if (!in.u32(hop)) return false;
    hops.push_back(hop);
  }
  out.update.path = bgp::AsPath{std::move(hops)};
  if (as_set != 0) out.update.path.mark_as_set();
  return in.exhausted();
}

std::string read_file(const std::string& path) {
  std::ifstream is{path, std::ios::binary};
  if (!is) {
    throw JournalError(JournalErrorKind::kIo, "cannot open " + path);
  }
  std::ostringstream buf;
  buf << is.rdbuf();
  return std::move(buf).str();
}

[[noreturn]] void throw_errno(const std::string& what) {
  throw JournalError(JournalErrorKind::kIo,
                     what + ": " + std::strerror(errno));
}

}  // namespace

std::string_view to_string(JournalErrorKind kind) noexcept {
  switch (kind) {
    case JournalErrorKind::kIo: return "i/o failure";
    case JournalErrorKind::kBadMagic: return "bad magic";
    case JournalErrorKind::kBadVersion: return "unsupported version";
    case JournalErrorKind::kBadSequence: return "bad sequence";
  }
  return "?";
}

JournalError::JournalError(JournalErrorKind kind, const std::string& detail)
    : std::runtime_error("journal: " + std::string(to_string(kind)) + " (" +
                         detail + ")"),
      kind_(kind) {}

UpdateJournal::UpdateJournal(UpdateJournalOptions options)
    : options_(std::move(options)) {
  if (options_.segment_bytes < kSegmentHeaderSize + 1) {
    options_.segment_bytes = kSegmentHeaderSize + 1;
  }
  open_scan();
}

UpdateJournal::~UpdateJournal() { close_fd(); }

void UpdateJournal::open_scan() {
  std::error_code ec;
  fs::create_directories(options_.dir, ec);
  if (ec) {
    throw JournalError(JournalErrorKind::kIo,
                       "cannot create " + options_.dir + ": " + ec.message());
  }

  std::vector<std::string> paths;
  for (const fs::directory_entry& entry : fs::directory_iterator(options_.dir)) {
    if (entry.is_regular_file() &&
        entry.path().extension() == ".grjrnl") {
      paths.push_back(entry.path().string());
    }
  }
  // Segment names embed the zero-padded first sequence number, so
  // lexicographic order is sequence order.
  std::sort(paths.begin(), paths.end());

  for (std::size_t p = 0; p < paths.size(); ++p) {
    const bool last = p + 1 == paths.size();
    const std::string contents = read_file(paths[p]);

    if (contents.size() < kSegmentHeaderSize) {
      // A header cut short can only be the freshly rotated tail of a
      // crash; anywhere else the journal is not ours.
      if (!last) {
        throw JournalError(JournalErrorKind::kBadMagic,
                           paths[p] + " shorter than a segment header");
      }
      stats_.truncated_bytes += contents.size();
      std::error_code remove_ec;
      fs::remove(paths[p], remove_ec);
      continue;
    }
    if (std::string_view(contents).substr(0, kJournalMagic.size()) !=
        kJournalMagic) {
      throw JournalError(JournalErrorKind::kBadMagic, paths[p]);
    }
    io::wire::Reader header{
        std::string_view(contents).substr(kJournalMagic.size(), 8)};
    std::uint32_t version = 0, reserved = 0;
    (void)header.u32(version);
    (void)header.u32(reserved);
    if (version == 0 || version > kJournalVersion) {
      throw JournalError(JournalErrorKind::kBadVersion,
                         paths[p] + " version " + std::to_string(version));
    }

    SegmentInfo info;
    info.path = paths[p];
    info.first_seq = next_seq_;

    std::size_t pos = kSegmentHeaderSize;
    while (pos < contents.size()) {
      // A record needs its length prefix, its payload and its checksum
      // to be fully present and consistent; the first shortfall is the
      // torn tail (or, mid-journal, corruption we refuse to skip).
      bool valid = false;
      JournalRecord record;
      if (contents.size() - pos >= 4) {
        io::wire::Reader len_reader{std::string_view(contents).substr(pos, 4)};
        std::uint32_t payload_size = 0;
        (void)len_reader.u32(payload_size);
        if (payload_size <= kMaxRecordPayload &&
            contents.size() - pos - 4 >= payload_size + 8) {
          std::string_view payload =
              std::string_view(contents).substr(pos + 4, payload_size);
          io::wire::Reader csum_reader{
              std::string_view(contents).substr(pos + 4 + payload_size, 8)};
          std::uint64_t checksum = 0;
          (void)csum_reader.u64(checksum);
          if (io::snapshot_checksum(payload) == checksum &&
              decode_payload(payload, record)) {
            valid = true;
            pos += 4 + payload_size + 8;
          }
        }
      }
      if (!valid) {
        if (!last) {
          throw JournalError(
              JournalErrorKind::kIo,
              "corrupt record mid-journal in " + paths[p] +
                  " (only the final segment may carry a torn tail)");
        }
        // Torn tail: truncate the file back to the last whole record.
        stats_.truncated_bytes += contents.size() - pos;
        std::error_code resize_ec;
        fs::resize_file(paths[p], pos, resize_ec);
        if (resize_ec) {
          throw JournalError(JournalErrorKind::kIo,
                             "cannot truncate torn tail of " + paths[p] +
                                 ": " + resize_ec.message());
        }
        break;
      }
      if (stats_.records == 0) {
        // A checkpoint-GC'd journal legitimately begins past zero: the
        // first record anchors the sequence, later ones must follow it
        // contiguously.
        next_seq_ = record.seq;
      } else if (record.seq != next_seq_) {
        throw JournalError(JournalErrorKind::kBadSequence,
                           paths[p] + ": record seq " +
                               std::to_string(record.seq) + ", expected " +
                               std::to_string(next_seq_));
      }
      if (info.records == 0) info.first_seq = record.seq;
      info.last_seq = record.seq;
      ++info.records;
      ++next_seq_;
      ++stats_.records;
    }
    segments_.push_back(std::move(info));
  }
  stats_.segments = segments_.size();

  // Position the append cursor: reuse the final segment while it has
  // room, otherwise start a fresh one at the next rotation point.
  if (!segments_.empty()) {
    std::error_code size_ec;
    std::uint64_t size = fs::file_size(segments_.back().path, size_ec);
    if (!size_ec && size < options_.segment_bytes) {
      open_segment_for_append(segments_.back().first_seq, /*fresh=*/false);
      active_bytes_ = size;
      return;
    }
  }
  open_segment_for_append(next_seq_, /*fresh=*/true);
}

void UpdateJournal::open_segment_for_append(std::uint64_t first_seq,
                                            bool fresh) {
  close_fd();
  const std::string path =
      options_.dir + "/" + segment_file_name(first_seq);
  fd_ = ::open(path.c_str(), O_WRONLY | O_CREAT | O_APPEND, 0644);
  if (fd_ < 0) throw_errno("open " + path);
  if (fresh) {
    const std::string header = segment_header();
    if (::write(fd_, header.data(), header.size()) !=
        static_cast<ssize_t>(header.size())) {
      throw_errno("write header " + path);
    }
    active_bytes_ = header.size();
    SegmentInfo info;
    info.path = path;
    info.first_seq = first_seq;
    segments_.push_back(std::move(info));
    stats_.segments = segments_.size();
  }
}

void UpdateJournal::close_fd() {
  if (fd_ >= 0) {
    // Every durable append already fsync'd; a close error cannot lose
    // acknowledged data, and this runs on destructor/rotation paths
    // with no caller to report to.
    (void)::close(fd_);
    fd_ = -1;
  }
}

void UpdateJournal::append(std::uint64_t seq, const bgp::UpdateMessage& update) {
  if (seq != next_seq_) {
    throw JournalError(JournalErrorKind::kBadSequence,
                       "append seq " + std::to_string(seq) + ", expected " +
                           std::to_string(next_seq_));
  }
  if (active_bytes_ >= options_.segment_bytes) {
    open_segment_for_append(seq, /*fresh=*/true);
  }

  const std::string record = encode_record(seq, update);
  std::size_t written = 0;
  while (written < record.size()) {
    ssize_t n = ::write(fd_, record.data() + written, record.size() - written);
    if (n < 0) throw_errno("append to " + segments_.back().path);
    written += static_cast<std::size_t>(n);
  }
  active_bytes_ += record.size();

  SegmentInfo& active = segments_.back();
  if (active.records == 0) active.first_seq = seq;
  active.last_seq = seq;
  ++active.records;
  ++next_seq_;
  ++stats_.records;
  ++stats_.appended;

  if (options_.fsync == FsyncPolicy::kEachRecord) sync();
}

void UpdateJournal::sync() {
  if (fd_ < 0) return;
  if (::fsync(fd_) != 0) throw_errno("fsync " + segments_.back().path);
  ++stats_.syncs;
}

std::vector<JournalRecord> UpdateJournal::read_all() const {
  std::vector<JournalRecord> out;
  out.reserve(static_cast<std::size_t>(stats_.records));
  for (const SegmentInfo& segment : segments_) {
    const std::string contents = read_file(segment.path);
    std::size_t pos = kSegmentHeaderSize;
    for (std::uint64_t i = 0; i < segment.records; ++i) {
      io::wire::Reader len_reader{std::string_view(contents).substr(pos, 4)};
      std::uint32_t payload_size = 0;
      if (!len_reader.u32(payload_size) ||
          contents.size() - pos - 4 < payload_size + 8) {
        throw JournalError(JournalErrorKind::kIo,
                           segment.path + " shrank since open");
      }
      JournalRecord record;
      if (!decode_payload(
              std::string_view(contents).substr(pos + 4, payload_size),
              record)) {
        throw JournalError(JournalErrorKind::kIo,
                           segment.path + " changed since open");
      }
      out.push_back(std::move(record));
      pos += 4 + payload_size + 8;
    }
  }
  return out;
}

JournalScan scan_journal(const std::string& dir) {
  std::error_code ec;
  if (!fs::is_directory(dir, ec) || ec) {
    throw JournalError(JournalErrorKind::kIo, "not a journal directory: " + dir);
  }

  std::vector<std::string> paths;
  for (const fs::directory_entry& entry : fs::directory_iterator(dir)) {
    if (entry.is_regular_file() && entry.path().extension() == ".grjrnl") {
      paths.push_back(entry.path().string());
    }
  }
  std::sort(paths.begin(), paths.end());

  JournalScan out;
  bool saw_record = false;
  std::uint64_t expected = 0;
  for (std::size_t p = 0; p < paths.size(); ++p) {
    const bool last = p + 1 == paths.size();
    const std::string contents = read_file(paths[p]);
    ++out.segments;

    if (contents.size() < kSegmentHeaderSize) {
      if (!last) {
        throw JournalError(JournalErrorKind::kBadMagic,
                           paths[p] + " shorter than a segment header");
      }
      out.torn_bytes += contents.size();
      continue;
    }
    if (std::string_view(contents).substr(0, kJournalMagic.size()) !=
        kJournalMagic) {
      throw JournalError(JournalErrorKind::kBadMagic, paths[p]);
    }
    io::wire::Reader header{
        std::string_view(contents).substr(kJournalMagic.size(), 8)};
    std::uint32_t version = 0, reserved = 0;
    (void)header.u32(version);
    (void)header.u32(reserved);
    if (version == 0 || version > kJournalVersion) {
      throw JournalError(JournalErrorKind::kBadVersion,
                         paths[p] + " version " + std::to_string(version));
    }

    std::size_t pos = kSegmentHeaderSize;
    while (pos < contents.size()) {
      bool valid = false;
      JournalRecord record;
      if (contents.size() - pos >= 4) {
        io::wire::Reader len_reader{std::string_view(contents).substr(pos, 4)};
        std::uint32_t payload_size = 0;
        (void)len_reader.u32(payload_size);
        if (payload_size <= kMaxRecordPayload &&
            contents.size() - pos - 4 >= payload_size + 8) {
          std::string_view payload =
              std::string_view(contents).substr(pos + 4, payload_size);
          io::wire::Reader csum_reader{
              std::string_view(contents).substr(pos + 4 + payload_size, 8)};
          std::uint64_t checksum = 0;
          (void)csum_reader.u64(checksum);
          if (io::snapshot_checksum(payload) == checksum &&
              decode_payload(payload, record)) {
            valid = true;
            pos += 4 + payload_size + 8;
          }
        }
      }
      if (!valid) {
        if (!last) {
          throw JournalError(
              JournalErrorKind::kIo,
              "corrupt record mid-journal in " + paths[p] +
                  " (only the final segment may carry a torn tail)");
        }
        out.torn_bytes += contents.size() - pos;
        break;
      }
      if (saw_record && record.seq != expected) {
        throw JournalError(JournalErrorKind::kBadSequence,
                           paths[p] + ": record seq " +
                               std::to_string(record.seq) + ", expected " +
                               std::to_string(expected));
      }
      saw_record = true;
      expected = record.seq + 1;
      ++out.records;
    }
  }
  out.next_seq = expected;
  return out;
}

std::size_t UpdateJournal::drop_segments_below(std::uint64_t seq) {
  std::size_t dropped = 0;
  // The final segment is the active one — never dropped, even if every
  // record in it is below the boundary (the fd points at it).
  for (std::size_t i = 0; i + 1 < segments_.size();) {
    const SegmentInfo& segment = segments_[i];
    if (segment.records > 0 && segment.last_seq < seq) {
      std::error_code ec;
      fs::remove(segment.path, ec);
      if (ec) {
        throw JournalError(JournalErrorKind::kIo,
                           "cannot remove " + segment.path + ": " + ec.message());
      }
      stats_.records -= segment.records;
      segments_.erase(segments_.begin() + static_cast<std::ptrdiff_t>(i));
      ++dropped;
    } else {
      ++i;
    }
  }
  stats_.segments = segments_.size();
  return dropped;
}

}  // namespace georank::live
