#include "live/checkpoint.hpp"

#include <fcntl.h>
#include <unistd.h>

#include <cerrno>
#include <cstdio>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <utility>

#include "io/snapshot_codec.hpp"
#include "io/wire.hpp"

namespace georank::live {
namespace {

namespace fs = std::filesystem;

constexpr std::string_view kCheckpointMagic = "GRCKPT01";
constexpr std::uint32_t kCheckpointVersion = 1;
/// magic + version + reserved + payload_size before, checksum after.
constexpr std::size_t kCheckpointHeaderSize = 24;
constexpr std::size_t kCheckpointTrailerSize = 8;

void put_path(std::string& out, const bgp::AsPath& path) {
  io::wire::put_u8(out, path.has_as_set() ? 1 : 0);
  io::wire::put_u32(out, static_cast<std::uint32_t>(path.size()));
  for (bgp::Asn hop : path.hops()) io::wire::put_u32(out, hop);
}

bool read_path(io::wire::Reader& in, bgp::AsPath& out) {
  std::uint8_t as_set = 0;
  std::uint32_t count = 0;
  if (!in.u8(as_set) || !in.u32(count) || count > in.remaining() / 4) {
    return false;
  }
  std::vector<bgp::Asn> hops;
  hops.reserve(count);
  for (std::uint32_t i = 0; i < count; ++i) {
    std::uint32_t hop = 0;
    if (!in.u32(hop)) return false;
    hops.push_back(hop);
  }
  out = bgp::AsPath{std::move(hops)};
  if (as_set != 0) out.mark_as_set();
  return true;
}

void put_prefix(std::string& out, const bgp::Prefix& prefix) {
  io::wire::put_u32(out, prefix.address());
  io::wire::put_u8(out, prefix.length());
}

bool read_prefix(io::wire::Reader& in, bgp::Prefix& out) {
  std::uint32_t address = 0;
  std::uint8_t length = 0;
  if (!in.u32(address) || !in.u8(length) || length > 32) return false;
  out = bgp::Prefix{address, length};
  return true;
}

void put_entry(std::string& out, const bgp::RouteEntry& entry) {
  io::wire::put_u32(out, entry.vp.ip);
  io::wire::put_u32(out, entry.vp.asn);
  put_prefix(out, entry.prefix);
  put_path(out, entry.path);
}

bool read_entry(io::wire::Reader& in, bgp::RouteEntry& out) {
  std::uint32_t ip = 0, asn = 0;
  if (!in.u32(ip) || !in.u32(asn) || !read_prefix(in, out.prefix) ||
      !read_path(in, out.path)) {
    return false;
  }
  out.vp = bgp::VpId{ip, asn};
  return true;
}

void put_update(std::string& out, const bgp::UpdateMessage& u) {
  io::wire::put_u64(out, u.timestamp);
  io::wire::put_u8(out, u.kind == bgp::UpdateMessage::Kind::kWithdraw ? 1 : 0);
  io::wire::put_u32(out, u.vp.ip);
  io::wire::put_u32(out, u.vp.asn);
  put_prefix(out, u.prefix);
  put_path(out, u.path);
}

bool read_update(io::wire::Reader& in, bgp::UpdateMessage& out) {
  std::uint8_t kind = 0;
  std::uint32_t ip = 0, asn = 0;
  if (!in.u64(out.timestamp) || !in.u8(kind) || kind > 1 || !in.u32(ip) ||
      !in.u32(asn) || !read_prefix(in, out.prefix) ||
      !read_path(in, out.path)) {
    return false;
  }
  out.kind = kind == 1 ? bgp::UpdateMessage::Kind::kWithdraw
                       : bgp::UpdateMessage::Kind::kAnnounce;
  out.vp = bgp::VpId{ip, asn};
  return true;
}

/// Day indexes are small signed ints; two's-complement via int64 keeps
/// -1 (no day yet) round-tripping exactly.
std::uint64_t day_bits(int day) {
  return static_cast<std::uint64_t>(static_cast<std::int64_t>(day));
}

bool read_day(io::wire::Reader& in, int& out) {
  std::uint64_t bits = 0;
  if (!in.u64(bits)) return false;
  const std::int64_t wide = static_cast<std::int64_t>(bits);
  if (wide < -1 || wide > 1'000'000) return false;
  out = static_cast<int>(wide);
  return true;
}

[[noreturn]] void throw_errno(const std::string& what) {
  throw JournalError(JournalErrorKind::kIo,
                     what + ": " + std::strerror(errno));
}

[[noreturn]] void throw_malformed(const std::string& detail) {
  throw JournalError(JournalErrorKind::kIo, "checkpoint " + detail);
}

}  // namespace

std::string encode_checkpoint(const Checkpoint& ckpt) {
  std::string payload;
  io::wire::put_u64(payload, ckpt.seq);
  io::wire::put_u64(payload, ckpt.max_seen);
  io::wire::put_u64(payload, ckpt.last_applied_ts);
  io::wire::put_u64(payload, day_bits(ckpt.current_day));
  io::wire::put_u64(payload, ckpt.spurious_withdrawals);

  io::wire::put_u64(payload, ckpt.rib_entries.size());
  for (const bgp::RouteEntry& entry : ckpt.rib_entries) {
    put_entry(payload, entry);
  }

  io::wire::put_u64(payload, ckpt.window.days.size());
  for (const bgp::RibSnapshot& day : ckpt.window.days) {
    io::wire::put_u64(payload, day_bits(day.day));
    io::wire::put_u64(payload, day.entries.size());
    for (const bgp::RouteEntry& entry : day.entries) put_entry(payload, entry);
  }

  io::wire::put_u64(payload, ckpt.pending.size());
  for (const JournalRecord& record : ckpt.pending) {
    io::wire::put_u64(payload, record.seq);
    put_update(payload, record.update);
  }

  io::wire::put_u64(payload, ckpt.batch_applied);
  io::wire::put_u64(payload, ckpt.batch_announces);
  io::wire::put_u64(payload, ckpt.batch_withdraws);
  io::wire::put_u64(payload, ckpt.batch_prefixes.size());
  for (const bgp::Prefix& prefix : ckpt.batch_prefixes) {
    put_prefix(payload, prefix);
  }

  io::wire::put_u64(payload, ckpt.stats.pushed);
  io::wire::put_u64(payload, ckpt.stats.applied);
  io::wire::put_u64(payload, ckpt.stats.announces);
  io::wire::put_u64(payload, ckpt.stats.withdraws);
  io::wire::put_u64(payload, ckpt.stats.out_of_order);
  io::wire::put_u64(payload, ckpt.stats.day_out_of_range);
  io::wire::put_u64(payload, ckpt.stats.days_closed);
  io::wire::put_u64(payload, ckpt.stats.quiet_days);
  io::wire::put_u64(payload, ckpt.stats.flushes);
  io::wire::put_u64(payload, ckpt.stats.publishes);
  io::wire::put_u64(payload, ckpt.stats.shed);
  io::wire::put_u64(payload, ckpt.stats.checkpoints);
  io::wire::put_f64(payload, ckpt.republish_seconds_sum);
  io::wire::put_f64(payload, ckpt.last_republish_seconds);
  io::wire::put_u64(payload, ckpt.last_batch);

  std::string out{kCheckpointMagic};
  io::wire::put_u32(out, kCheckpointVersion);
  io::wire::put_u32(out, 0);  // reserved
  io::wire::put_u64(out, payload.size());
  out += payload;
  io::wire::put_u64(out, io::snapshot_checksum(payload));
  return out;
}

Checkpoint decode_checkpoint(std::string_view bytes) {
  if (bytes.size() < kCheckpointHeaderSize + kCheckpointTrailerSize ||
      bytes.substr(0, kCheckpointMagic.size()) != kCheckpointMagic) {
    throw JournalError(JournalErrorKind::kBadMagic,
                       "checkpoint missing GRCKPT01 magic");
  }
  io::wire::Reader header{bytes.substr(kCheckpointMagic.size(), 16)};
  std::uint32_t version = 0, reserved = 0;
  std::uint64_t payload_size = 0;
  (void)header.u32(version);
  (void)header.u32(reserved);
  (void)header.u64(payload_size);
  if (version == 0 || version > kCheckpointVersion) {
    throw JournalError(JournalErrorKind::kBadVersion,
                       "checkpoint version " + std::to_string(version));
  }
  if (payload_size !=
      bytes.size() - kCheckpointHeaderSize - kCheckpointTrailerSize) {
    throw_malformed("payload size does not match file size");
  }
  const std::string_view payload =
      bytes.substr(kCheckpointHeaderSize, static_cast<std::size_t>(payload_size));
  io::wire::Reader trailer{
      bytes.substr(kCheckpointHeaderSize + payload.size(), 8)};
  std::uint64_t checksum = 0;
  (void)trailer.u64(checksum);
  if (io::snapshot_checksum(payload) != checksum) {
    throw_malformed("payload checksum mismatch");
  }

  Checkpoint ckpt;
  io::wire::Reader in{payload};
  std::uint64_t count = 0;
  if (!in.u64(ckpt.seq) || !in.u64(ckpt.max_seen) ||
      !in.u64(ckpt.last_applied_ts) || !read_day(in, ckpt.current_day) ||
      !in.u64(ckpt.spurious_withdrawals) || !in.u64(count)) {
    throw_malformed("truncated fixed fields");
  }
  if (count > in.remaining() / 14) throw_malformed("implausible RIB size");
  ckpt.rib_entries.reserve(static_cast<std::size_t>(count));
  for (std::uint64_t i = 0; i < count; ++i) {
    bgp::RouteEntry entry;
    if (!read_entry(in, entry)) throw_malformed("corrupt RIB entry");
    ckpt.rib_entries.push_back(std::move(entry));
  }

  if (!in.u64(count)) throw_malformed("truncated window header");
  if (count > in.remaining() / 16) throw_malformed("implausible window size");
  ckpt.window.days.reserve(static_cast<std::size_t>(count));
  for (std::uint64_t i = 0; i < count; ++i) {
    bgp::RibSnapshot day;
    std::uint64_t entries = 0;
    if (!read_day(in, day.day) || !in.u64(entries)) {
      throw_malformed("corrupt window day header");
    }
    if (entries > in.remaining() / 14) throw_malformed("implausible day size");
    day.entries.reserve(static_cast<std::size_t>(entries));
    for (std::uint64_t j = 0; j < entries; ++j) {
      bgp::RouteEntry entry;
      if (!read_entry(in, entry)) throw_malformed("corrupt window entry");
      day.entries.push_back(std::move(entry));
    }
    ckpt.window.days.push_back(std::move(day));
  }

  if (!in.u64(count)) throw_malformed("truncated pending header");
  if (count > in.remaining() / 27) throw_malformed("implausible pending size");
  ckpt.pending.reserve(static_cast<std::size_t>(count));
  for (std::uint64_t i = 0; i < count; ++i) {
    JournalRecord record;
    if (!in.u64(record.seq) || !read_update(in, record.update)) {
      throw_malformed("corrupt pending record");
    }
    ckpt.pending.push_back(std::move(record));
  }

  if (!in.u64(ckpt.batch_applied) || !in.u64(ckpt.batch_announces) ||
      !in.u64(ckpt.batch_withdraws) || !in.u64(count)) {
    throw_malformed("truncated batch counters");
  }
  if (count > in.remaining() / 5) throw_malformed("implausible batch size");
  ckpt.batch_prefixes.reserve(static_cast<std::size_t>(count));
  for (std::uint64_t i = 0; i < count; ++i) {
    bgp::Prefix prefix;
    if (!read_prefix(in, prefix)) throw_malformed("corrupt batch prefix");
    ckpt.batch_prefixes.push_back(prefix);
  }

  if (!in.u64(ckpt.stats.pushed) || !in.u64(ckpt.stats.applied) ||
      !in.u64(ckpt.stats.announces) || !in.u64(ckpt.stats.withdraws) ||
      !in.u64(ckpt.stats.out_of_order) || !in.u64(ckpt.stats.day_out_of_range) ||
      !in.u64(ckpt.stats.days_closed) || !in.u64(ckpt.stats.quiet_days) ||
      !in.u64(ckpt.stats.flushes) || !in.u64(ckpt.stats.publishes) ||
      !in.u64(ckpt.stats.shed) || !in.u64(ckpt.stats.checkpoints) ||
      !in.f64(ckpt.republish_seconds_sum) ||
      !in.f64(ckpt.last_republish_seconds) || !in.u64(ckpt.last_batch)) {
    throw_malformed("truncated stats");
  }
  if (!in.exhausted()) throw_malformed("trailing bytes after stats");
  return ckpt;
}

void write_checkpoint_file(const std::string& path,
                           const Checkpoint& checkpoint) {
  const std::string encoded = encode_checkpoint(checkpoint);
  const std::string tmp = path + ".tmp";
  const int fd = ::open(tmp.c_str(), O_WRONLY | O_CREAT | O_TRUNC, 0644);
  if (fd < 0) throw_errno("open " + tmp);
  std::size_t written = 0;
  while (written < encoded.size()) {
    const ssize_t n =
        ::write(fd, encoded.data() + written, encoded.size() - written);
    if (n < 0) {
      const int saved = errno;
      (void)::close(fd);  // already failing; the write error is the one to report
      errno = saved;
      throw_errno("write " + tmp);
    }
    written += static_cast<std::size_t>(n);
  }
  if (::fsync(fd) != 0) {
    const int saved = errno;
    (void)::close(fd);  // already failing; the fsync error is the one to report
    errno = saved;
    throw_errno("fsync " + tmp);
  }
  // Data is durable after the successful fsync; a close error here
  // cannot un-write it and the tmp file is discarded on any failure.
  (void)::close(fd);
  // rename is the atomic publish: readers see old-or-new, never torn.
  if (std::rename(tmp.c_str(), path.c_str()) != 0) {
    throw_errno("rename " + tmp + " -> " + path);
  }
}

std::optional<Checkpoint> load_checkpoint_file(const std::string& path) {
  std::error_code ec;
  if (!fs::exists(path, ec) || ec) return std::nullopt;
  std::ifstream is{path, std::ios::binary};
  if (!is) {
    throw JournalError(JournalErrorKind::kIo, "cannot open " + path);
  }
  std::ostringstream buf;
  buf << is.rdbuf();
  return decode_checkpoint(std::move(buf).str());
}

RecoveryResult recover(UpdatePipeline& pipeline, UpdateJournal& journal,
                       const std::string& checkpoint_path) {
  RecoveryResult result;
  std::optional<Checkpoint> checkpoint;
  if (!checkpoint_path.empty()) {
    try {
      checkpoint = load_checkpoint_file(checkpoint_path);
    } catch (const JournalError&) {
      // Corrupt checkpoint: discard it and replay the whole journal.
      result.checkpoint_discarded = true;
    }
  }
  if (checkpoint) {
    pipeline.restore(*checkpoint);
    result.checkpoint_loaded = true;
    result.replay_from = checkpoint->seq;
  }

  const std::vector<JournalRecord> records = journal.read_all();
  if (!checkpoint && !records.empty() && records.front().seq != 0) {
    throw JournalError(
        JournalErrorKind::kBadSequence,
        "journal starts at seq " + std::to_string(records.front().seq) +
            " with no usable checkpoint — early segments were dropped");
  }
  for (const JournalRecord& record : records) {
    if (record.seq < result.replay_from) continue;
    // The normal push path re-makes every drain/shed/flush decision the
    // interrupted run made; journaling is still detached (see header).
    (void)pipeline.push(record.update);
    ++result.records_replayed;
  }
  result.next_seq = pipeline.next_seq();
  return result;
}

}  // namespace georank::live
