// Address-to-country database (the NetAcuity stand-in, DESIGN.md §1).
//
// Holds sorted, non-overlapping [first,last] address ranges each mapped to
// one country. Country-granularity end-host geolocation is the one thing
// the paper trusts commercial databases for; the generator fills this
// database, optionally with noise (sub-ranges geolocated elsewhere) so the
// majority-threshold machinery (§3.2.1 / Appendix B) has real work to do.
#pragma once

#include <cstdint>
#include <vector>

#include "geo/country.hpp"

namespace georank::geo {

struct GeoRange {
  std::uint32_t first = 0;
  std::uint32_t last = 0;
  CountryCode country;
};

struct CountrySlice {
  CountryCode country;
  std::uint64_t addresses = 0;
};

class GeoDatabase {
 public:
  /// Ranges may be added in any order; finalize() sorts and validates.
  void add_range(std::uint32_t first, std::uint32_t last, CountryCode country);

  /// Sorts ranges and rejects overlaps (throws std::invalid_argument).
  /// Must be called before queries.
  void finalize();

  [[nodiscard]] bool finalized() const noexcept { return finalized_; }
  [[nodiscard]] std::size_t range_count() const noexcept { return ranges_.size(); }

  /// Country of a single address; kNoCountry if unmapped.
  [[nodiscard]] CountryCode country_of(std::uint32_t ip) const;

  /// Per-country address counts inside [first,last]. Unmapped addresses
  /// are reported under kNoCountry. Result is ordered by first occurrence.
  [[nodiscard]] std::vector<CountrySlice> count_by_country(std::uint32_t first,
                                                           std::uint32_t last) const;

  [[nodiscard]] const std::vector<GeoRange>& ranges() const noexcept { return ranges_; }

 private:
  std::vector<GeoRange> ranges_;
  bool finalized_ = false;
};

}  // namespace georank::geo
