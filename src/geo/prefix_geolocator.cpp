#include "geo/prefix_geolocator.hpp"

#include <algorithm>
#include <stdexcept>

namespace georank::geo {

PrefixGeolocator::PrefixGeolocator(const GeoDatabase& db, double threshold)
    : PrefixGeolocator(db, PrefixGeoOptions{threshold, false}) {}

PrefixGeolocator::PrefixGeolocator(const GeoDatabase& db, PrefixGeoOptions options)
    : db_(&db), options_(options) {
  if (options.threshold < 0.0 || options.threshold > 1.0) {
    throw std::invalid_argument{"geolocation threshold must be in [0,1]"};
  }
}

namespace {

/// Consensus country of a single block: the plurality country when it
/// holds at least `threshold` of the block and is unique; kNoCountry
/// otherwise.
geo::CountryCode block_consensus(const GeoDatabase& db, std::uint32_t first,
                                 std::uint32_t last, double threshold) {
  CountryCode best = kNoCountry;
  std::uint64_t best_count = 0;
  bool unique = true;
  std::uint64_t total = static_cast<std::uint64_t>(last) - first + 1;
  for (const CountrySlice& s : db.count_by_country(first, last)) {
    if (!s.country.valid()) continue;
    if (s.addresses > best_count) {
      best = s.country;
      best_count = s.addresses;
      unique = true;
    } else if (s.addresses == best_count && s.country != best) {
      unique = false;
    }
  }
  double share = total ? static_cast<double>(best_count) / static_cast<double>(total)
                       : 0.0;
  if (best.valid() && unique && share >= threshold && share > 0.0) return best;
  return kNoCountry;
}

}  // namespace

PrefixGeoResult PrefixGeolocator::run(std::span<const bgp::Prefix> announced) const {
  bgp::PrefixTrie trie;
  for (const bgp::Prefix& p : announced) trie.insert(p);

  PrefixGeoResult out;
  // Deduplicate via the trie's canonical listing so repeated announcements
  // of the same prefix are assessed once.
  for (const bgp::Prefix& p : trie.all()) {
    std::vector<bgp::Prefix> blocks = trie.uncovered_blocks(p);
    if (blocks.empty()) {
      out.covered.push_back(p);
      continue;
    }
    // Tally addresses per country across the prefix's own blocks.
    std::vector<CountrySlice> tally;
    auto bump = [&](CountryCode cc, std::uint64_t n) {
      for (CountrySlice& s : tally) {
        if (s.country == cc) {
          s.addresses += n;
          return;
        }
      }
      tally.push_back(CountrySlice{cc, n});
    };
    std::uint64_t total = 0;
    for (const bgp::Prefix& block : blocks) {
      total += block.size();
      for (const CountrySlice& s : db_->count_by_country(block.first(), block.last())) {
        bump(s.country, s.addresses);
      }
    }
    // Plurality over real countries only; unmapped addresses still count
    // toward the denominator (they dilute consensus, as in the paper).
    CountryCode best = kNoCountry;
    std::uint64_t best_count = 0;
    for (const CountrySlice& s : tally) {
      if (!s.country.valid()) continue;
      if (s.addresses > best_count ||
          (s.addresses == best_count && s.country < best)) {
        best = s.country;
        best_count = s.addresses;
      }
    }
    double share = total ? static_cast<double>(best_count) / static_cast<double>(total) : 0.0;
    // "no or multiple countries" (Table 1): a tie for the top spot means the
    // prefix geolocates to multiple countries and is rejected.
    bool unique_plurality = true;
    for (const CountrySlice& s : tally) {
      if (s.country.valid() && s.country != best && s.addresses == best_count) {
        unique_plurality = false;
      }
    }
    if (best.valid() && unique_plurality && share >= options_.threshold &&
        share > 0.0) {
      out.index.emplace(p, out.accepted.size());
      out.accepted.push_back(PrefixAssignment{p, best, total});
    } else {
      out.no_consensus.push_back(PrefixRejection{p, best, total, share});
      if (options_.split_failed_into_slash24) {
        // Appendix B's alternative: retry at /24 granularity over the
        // prefix's own (uncovered) blocks.
        for (const bgp::Prefix& block : blocks) {
          std::uint32_t step = block.length() >= 24 ? 0 : 256;
          if (step == 0) {
            CountryCode cc = block_consensus(*db_, block.first(), block.last(),
                                             options_.threshold);
            if (cc.valid()) {
              out.recovered.push_back(PrefixAssignment{block, cc, block.size()});
            }
            continue;
          }
          for (std::uint64_t first = block.first(); first <= block.last();
               first += step) {
            auto f = static_cast<std::uint32_t>(first);
            CountryCode cc = block_consensus(*db_, f, f + 255, options_.threshold);
            if (cc.valid()) {
              out.recovered.push_back(
                  PrefixAssignment{bgp::Prefix{f, 24}, cc, 256});
            }
          }
        }
      }
    }
  }
  return out;
}

CountryCode PrefixGeoResult::country_of(const bgp::Prefix& prefix) const {
  auto it = index.find(prefix);
  return it == index.end() ? kNoCountry : accepted[it->second].country;
}

std::uint64_t PrefixGeoResult::weight_of(const bgp::Prefix& prefix) const {
  auto it = index.find(prefix);
  return it == index.end() ? 0 : accepted[it->second].effective_addresses;
}

std::unordered_map<CountryCode, std::uint64_t, CountryCodeHash>
PrefixGeoResult::addresses_by_country() const {
  std::unordered_map<CountryCode, std::uint64_t, CountryCodeHash> out;
  for (const PrefixAssignment& a : accepted) {
    out[a.country] += a.effective_addresses;
  }
  return out;
}

std::unordered_map<CountryCode, PrefixGeoResult::RejectionTally, CountryCodeHash>
PrefixGeoResult::no_consensus_by_plurality() const {
  std::unordered_map<CountryCode, RejectionTally, CountryCodeHash> out;
  for (const PrefixRejection& r : no_consensus) {
    if (!r.plurality.valid()) continue;
    RejectionTally& tally = out[r.plurality];
    tally.prefixes += 1;
    tally.addresses += r.effective_addresses;
  }
  return out;
}

}  // namespace georank::geo
