#include "geo/geo_db.hpp"

#include <algorithm>
#include <stdexcept>

namespace georank::geo {

void GeoDatabase::add_range(std::uint32_t first, std::uint32_t last,
                            CountryCode country) {
  if (first > last) throw std::invalid_argument{"geo range first > last"};
  if (!country.valid()) throw std::invalid_argument{"geo range needs a country"};
  ranges_.push_back(GeoRange{first, last, country});
  finalized_ = false;
}

void GeoDatabase::finalize() {
  std::sort(ranges_.begin(), ranges_.end(),
            [](const GeoRange& a, const GeoRange& b) { return a.first < b.first; });
  for (std::size_t i = 1; i < ranges_.size(); ++i) {
    if (ranges_[i].first <= ranges_[i - 1].last) {
      throw std::invalid_argument{"overlapping geo ranges"};
    }
  }
  // Merge adjacent same-country ranges to keep queries fast.
  std::vector<GeoRange> merged;
  merged.reserve(ranges_.size());
  for (const GeoRange& r : ranges_) {
    if (!merged.empty() && merged.back().country == r.country &&
        merged.back().last + 1 == r.first && merged.back().last != 0xffffffffu) {
      merged.back().last = r.last;
    } else {
      merged.push_back(r);
    }
  }
  ranges_ = std::move(merged);
  finalized_ = true;
}

CountryCode GeoDatabase::country_of(std::uint32_t ip) const {
  if (!finalized_) throw std::logic_error{"GeoDatabase::finalize() not called"};
  auto it = std::upper_bound(
      ranges_.begin(), ranges_.end(), ip,
      [](std::uint32_t v, const GeoRange& r) { return v < r.first; });
  if (it == ranges_.begin()) return kNoCountry;
  --it;
  return ip <= it->last ? it->country : kNoCountry;
}

std::vector<CountrySlice> GeoDatabase::count_by_country(std::uint32_t first,
                                                        std::uint32_t last) const {
  if (!finalized_) throw std::logic_error{"GeoDatabase::finalize() not called"};
  if (first > last) throw std::invalid_argument{"query first > last"};
  std::vector<CountrySlice> out;
  auto bump = [&](CountryCode cc, std::uint64_t n) {
    if (n == 0) return;
    for (CountrySlice& s : out) {
      if (s.country == cc) {
        s.addresses += n;
        return;
      }
    }
    out.push_back(CountrySlice{cc, n});
  };

  auto it = std::upper_bound(
      ranges_.begin(), ranges_.end(), first,
      [](std::uint32_t v, const GeoRange& r) { return v < r.first; });
  if (it != ranges_.begin()) --it;

  std::uint64_t cursor = first;
  for (; it != ranges_.end() && it->first <= last; ++it) {
    if (it->last < cursor) continue;
    std::uint64_t seg_first = std::max<std::uint64_t>(cursor, it->first);
    std::uint64_t seg_last = std::min<std::uint64_t>(last, it->last);
    if (seg_first > seg_last) continue;
    bump(kNoCountry, seg_first - cursor);  // gap before this range
    bump(it->country, seg_last - seg_first + 1);
    cursor = seg_last + 1;
    if (cursor > last) break;
  }
  if (cursor <= last) bump(kNoCountry, static_cast<std::uint64_t>(last) - cursor + 1);
  return out;
}

}  // namespace georank::geo
