// Prefix-to-country assignment (§3.2.1 and Appendix B).
//
// Steps, exactly as the paper describes:
//   1. split announced prefixes into non-overlapping blocks owned by their
//      most specific announced prefix;
//   2. drop prefixes ENTIRELY covered by more specifics (1.2% in the
//      paper's April 2021 data);
//   3. geolocate the addresses of each prefix's own blocks; assign the
//      prefix to the plurality country if that country holds at least
//      `threshold` (default 50%) of the blocks' addresses; otherwise the
//      prefix fails geolocation (0.2% of prefixes / 1.5% of addresses in
//      the paper).
//
// Every filter decision is recorded so the harnesses can regenerate
// Tables 13 & 14 and Figures 8 & 9.
#pragma once

#include <cstdint>
#include <span>
#include <unordered_map>
#include <vector>

#include "bgp/prefix.hpp"
#include "bgp/prefix_trie.hpp"
#include "geo/country.hpp"
#include "geo/geo_db.hpp"

namespace georank::geo {

struct PrefixAssignment {
  bgp::Prefix prefix;
  CountryCode country;
  /// Addresses for which this prefix is most specific (metric weight).
  std::uint64_t effective_addresses = 0;
};

struct PrefixRejection {
  bgp::Prefix prefix;
  /// Country with the largest share (what the prefix "would" have been).
  CountryCode plurality;
  std::uint64_t effective_addresses = 0;
  /// Share of the plurality country in [0,1].
  double top_share = 0.0;
};

struct PrefixGeoResult {
  std::vector<PrefixAssignment> accepted;
  std::vector<bgp::Prefix> covered;          // filtered: covered by more specifics
  std::vector<PrefixRejection> no_consensus;  // filtered: below threshold
  /// /24 fragments recovered from no-consensus prefixes when
  /// PrefixGeoOptions::split_failed_into_slash24 is on. The parent prefix
  /// still appears in `no_consensus`; lookups by the parent still fail
  /// (announcements are keyed by the ANNOUNCED prefix), so these are for
  /// address accounting and analysis, not path filtering.
  std::vector<PrefixAssignment> recovered;

  /// Accepted country of a prefix; kNoCountry if filtered/unknown.
  [[nodiscard]] CountryCode country_of(const bgp::Prefix& prefix) const;
  /// Effective (most-specific) address weight; 0 if filtered/unknown.
  [[nodiscard]] std::uint64_t weight_of(const bgp::Prefix& prefix) const;

  /// Total accepted effective addresses per country.
  [[nodiscard]] std::unordered_map<CountryCode, std::uint64_t, CountryCodeHash>
  addresses_by_country() const;

  /// Evidence a country "almost" had: prefix count and effective address
  /// weight of no-consensus rejections, attributed to the plurality
  /// country (the one the prefix would have geolocated to). Rejections
  /// with no valid plurality (fully unmapped address space) are skipped.
  struct RejectionTally {
    std::size_t prefixes = 0;
    std::uint64_t addresses = 0;
  };
  [[nodiscard]] std::unordered_map<CountryCode, RejectionTally, CountryCodeHash>
  no_consensus_by_plurality() const;

  std::unordered_map<bgp::Prefix, std::size_t, bgp::PrefixHash> index;  // into accepted
};

struct PrefixGeoOptions {
  /// The Appendix-B majority threshold, in [0,1].
  double threshold = 0.5;
  /// Appendix B's future-work alternative, implemented: when a prefix
  /// fails consensus, split it into /24s and geolocate each separately —
  /// recovering most of the mixed prefix's addresses at finer grain.
  /// The recovered /24s are reported in PrefixGeoResult::recovered.
  bool split_failed_into_slash24 = false;
};

class PrefixGeolocator {
 public:
  explicit PrefixGeolocator(const GeoDatabase& db, double threshold = 0.5);
  PrefixGeolocator(const GeoDatabase& db, PrefixGeoOptions options);

  [[nodiscard]] PrefixGeoResult run(std::span<const bgp::Prefix> announced) const;

  [[nodiscard]] double threshold() const noexcept { return options_.threshold; }
  [[nodiscard]] const PrefixGeoOptions& options() const noexcept { return options_; }

 private:
  const GeoDatabase* db_;
  PrefixGeoOptions options_;
};

}  // namespace georank::geo
