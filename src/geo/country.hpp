// ISO-3166-style two-letter country codes as a compact value type.
#pragma once

#include <compare>
#include <cstdint>
#include <functional>
#include <optional>
#include <stdexcept>
#include <string>
#include <string_view>

namespace georank::geo {

class CountryCode {
 public:
  /// The "no country" sentinel (unlocatable prefixes/VPs).
  constexpr CountryCode() noexcept = default;

  /// From exactly two ASCII letters, case-insensitive ("jp" == "JP").
  [[nodiscard]] static constexpr std::optional<CountryCode> parse(
      std::string_view text) noexcept {
    if (text.size() != 2) return std::nullopt;
    char a = upper(text[0]), b = upper(text[1]);
    if (a < 'A' || a > 'Z' || b < 'A' || b > 'Z') return std::nullopt;
    CountryCode cc;
    cc.value_ = static_cast<std::uint16_t>((a << 8) | b);
    return cc;
  }

  /// Compile-time literal helper: CountryCode::of("JP").
  [[nodiscard]] static constexpr CountryCode of(std::string_view text) {
    auto cc = parse(text);
    if (!cc) throw std::invalid_argument{"bad country code"};
    return *cc;
  }

  [[nodiscard]] constexpr bool valid() const noexcept { return value_ != 0; }

  [[nodiscard]] std::string to_string() const {
    if (!valid()) return "??";
    return {static_cast<char>(value_ >> 8), static_cast<char>(value_ & 0xff)};
  }

  [[nodiscard]] constexpr std::uint16_t raw() const noexcept { return value_; }

  friend constexpr auto operator<=>(CountryCode, CountryCode) noexcept = default;

 private:
  static constexpr char upper(char c) noexcept {
    return (c >= 'a' && c <= 'z') ? static_cast<char>(c - 'a' + 'A') : c;
  }
  std::uint16_t value_ = 0;
};

inline constexpr CountryCode kNoCountry{};

struct CountryCodeHash {
  [[nodiscard]] std::size_t operator()(CountryCode cc) const noexcept {
    return std::hash<std::uint16_t>{}(cc.raw());
  }
};

}  // namespace georank::geo
