// Vantage-point geolocation via collector metadata (§3.2.2).
//
// We cannot geolocate a VP's own address reliably (infrastructure
// geolocation is a long-standing open problem), so — exactly like the
// paper — a VP inherits its collector's location, and VPs peering with
// MULTI-HOP collectors (which accept remote peers) are not geolocated at
// all; all their paths are excluded ("VP no location", 20.98% of the
// paper's paths).
#pragma once

#include <atomic>
#include <optional>
#include <string>
#include <unordered_map>
#include <vector>

#include "bgp/route.hpp"
#include "geo/country.hpp"

namespace georank::geo {

struct Collector {
  std::string name;       // e.g. "route-views.sydney" / "rrc00"
  CountryCode country;    // IXP location
  bool multihop = false;  // accepts remote peers -> VP location unknown
};

struct VpGeoStats {
  std::size_t geolocated = 0;
  std::size_t multihop_excluded = 0;
  std::size_t unknown = 0;
};

class VpGeolocator {
 public:
  VpGeolocator() = default;
  // The stats counters are atomics (locate() is const but counts), which
  // delete the defaulted special members; copying snapshots the counts.
  // Moves fall back to these copies — the maps dominate the cost either
  // way, and a moved-from geolocator keeping its registrations is fine.
  VpGeolocator(const VpGeolocator& other);
  VpGeolocator& operator=(const VpGeolocator& other);

  /// Registers a collector; returns its index. Names must be unique.
  std::size_t add_collector(Collector collector);

  /// Binds a VP to the collector it peers with.
  void register_vp(const bgp::VpId& vp, std::string_view collector_name);

  /// Country of a VP: nullopt when the VP is unknown or its collector is
  /// multi-hop. Updates the running stats (relaxed atomic increments, so
  /// concurrent sanitize workers may call this without a lock).
  [[nodiscard]] std::optional<CountryCode> locate(const bgp::VpId& vp) const;

  /// Same, without stats bookkeeping (for pure queries in reports).
  [[nodiscard]] std::optional<CountryCode> peek(const bgp::VpId& vp) const;

  /// All registered VPs with a usable location.
  [[nodiscard]] std::vector<std::pair<bgp::VpId, CountryCode>> located_vps() const;

  /// Every registered VP, multihop or not (the RIB generator needs the
  /// full peer list; the sanitizer later rejects multihop paths).
  [[nodiscard]] std::vector<bgp::VpId> all_vps() const;

  /// Snapshot of the running counters (each field read individually;
  /// counts taken mid-flight may not sum to the number of locate calls).
  [[nodiscard]] VpGeoStats stats() const noexcept;
  [[nodiscard]] std::size_t collector_count() const noexcept { return collectors_.size(); }
  [[nodiscard]] std::size_t vp_count() const noexcept { return vp_to_collector_.size(); }

  /// Registered collectors, in registration order (for serialization).
  [[nodiscard]] const std::vector<Collector>& collectors() const noexcept {
    return collectors_;
  }
  /// (VP, collector name) registrations, sorted by VP (for serialization).
  [[nodiscard]] std::vector<std::pair<bgp::VpId, std::string>> registrations() const;

 private:
  struct AtomicStats {
    std::atomic<std::size_t> geolocated{0};
    std::atomic<std::size_t> multihop_excluded{0};
    std::atomic<std::size_t> unknown{0};
  };

  std::vector<Collector> collectors_;
  std::unordered_map<std::string, std::size_t> by_name_;
  std::unordered_map<bgp::VpId, std::size_t, bgp::VpIdHash> vp_to_collector_;
  mutable AtomicStats stats_;  // lint: guarded(relaxed atomics; stats() snapshots)
};

}  // namespace georank::geo
