#include "geo/vp_geolocator.hpp"

#include <algorithm>
#include <stdexcept>

namespace georank::geo {

VpGeolocator::VpGeolocator(const VpGeolocator& other)
    : collectors_(other.collectors_),
      by_name_(other.by_name_),
      vp_to_collector_(other.vp_to_collector_) {
  const VpGeoStats snapshot = other.stats();
  stats_.geolocated.store(snapshot.geolocated, std::memory_order_relaxed);
  stats_.multihop_excluded.store(snapshot.multihop_excluded,
                                 std::memory_order_relaxed);
  stats_.unknown.store(snapshot.unknown, std::memory_order_relaxed);
}

VpGeolocator& VpGeolocator::operator=(const VpGeolocator& other) {
  if (this == &other) return *this;
  collectors_ = other.collectors_;
  by_name_ = other.by_name_;
  vp_to_collector_ = other.vp_to_collector_;
  const VpGeoStats snapshot = other.stats();
  stats_.geolocated.store(snapshot.geolocated, std::memory_order_relaxed);
  stats_.multihop_excluded.store(snapshot.multihop_excluded,
                                 std::memory_order_relaxed);
  stats_.unknown.store(snapshot.unknown, std::memory_order_relaxed);
  return *this;
}

VpGeoStats VpGeolocator::stats() const noexcept {
  VpGeoStats out;
  out.geolocated = stats_.geolocated.load(std::memory_order_relaxed);
  out.multihop_excluded = stats_.multihop_excluded.load(std::memory_order_relaxed);
  out.unknown = stats_.unknown.load(std::memory_order_relaxed);
  return out;
}

std::size_t VpGeolocator::add_collector(Collector collector) {
  if (collector.name.empty()) throw std::invalid_argument{"collector needs a name"};
  auto [it, inserted] = by_name_.try_emplace(collector.name, collectors_.size());
  if (!inserted) throw std::invalid_argument{"duplicate collector " + collector.name};
  collectors_.push_back(std::move(collector));
  return collectors_.size() - 1;
}

void VpGeolocator::register_vp(const bgp::VpId& vp, std::string_view collector_name) {
  auto it = by_name_.find(std::string(collector_name));
  if (it == by_name_.end()) {
    throw std::invalid_argument{"unknown collector " + std::string(collector_name)};
  }
  vp_to_collector_[vp] = it->second;
}

std::optional<CountryCode> VpGeolocator::locate(const bgp::VpId& vp) const {
  auto it = vp_to_collector_.find(vp);
  if (it == vp_to_collector_.end()) {
    stats_.unknown.fetch_add(1, std::memory_order_relaxed);
    return std::nullopt;
  }
  const Collector& c = collectors_[it->second];
  if (c.multihop) {
    stats_.multihop_excluded.fetch_add(1, std::memory_order_relaxed);
    return std::nullopt;
  }
  stats_.geolocated.fetch_add(1, std::memory_order_relaxed);
  return c.country;
}

std::optional<CountryCode> VpGeolocator::peek(const bgp::VpId& vp) const {
  auto it = vp_to_collector_.find(vp);
  if (it == vp_to_collector_.end()) return std::nullopt;
  const Collector& c = collectors_[it->second];
  if (c.multihop) return std::nullopt;
  return c.country;
}

std::vector<std::pair<bgp::VpId, std::string>> VpGeolocator::registrations() const {
  std::vector<std::pair<bgp::VpId, std::string>> out;
  out.reserve(vp_to_collector_.size());
  for (const auto& [vp, idx] : vp_to_collector_) {
    out.emplace_back(vp, collectors_[idx].name);
  }
  std::sort(out.begin(), out.end());
  return out;
}

std::vector<bgp::VpId> VpGeolocator::all_vps() const {
  std::vector<bgp::VpId> out;
  out.reserve(vp_to_collector_.size());
  for (const auto& [vp, idx] : vp_to_collector_) out.push_back(vp);
  std::sort(out.begin(), out.end());
  return out;
}

std::vector<std::pair<bgp::VpId, CountryCode>> VpGeolocator::located_vps() const {
  std::vector<std::pair<bgp::VpId, CountryCode>> out;
  out.reserve(vp_to_collector_.size());
  for (const auto& [vp, idx] : vp_to_collector_) {
    const Collector& c = collectors_[idx];
    if (!c.multihop) out.emplace_back(vp, c.country);
  }
  return out;
}

}  // namespace georank::geo
