#include "robust/data_health.hpp"

#include <algorithm>
#include <set>

#include "core/pipeline.hpp"
#include "core/sharded_path_store.hpp"
#include "util/parallel_for.hpp"

namespace georank::robust {

namespace {

struct Accumulator {
  std::set<bgp::VpId> national_vps;
  std::set<bgp::VpId> international_vps;
  std::set<bgp::Prefix> prefixes;
  std::uint64_t geolocated_addresses = 0;
  std::size_t no_consensus_prefixes = 0;
  std::uint64_t no_consensus_addresses = 0;
};

}  // namespace

const CountryHealth* HealthReport::find(geo::CountryCode country) const {
  auto it = std::lower_bound(
      countries.begin(), countries.end(), country,
      [](const CountryHealth& h, geo::CountryCode cc) { return h.country < cc; });
  if (it == countries.end() || it->country != country) return nullptr;
  return &*it;
}

ConfidenceTier HealthReport::tier_of(geo::CountryCode country) const {
  const CountryHealth* h = find(country);
  return h ? h->overall : ConfidenceTier::kInsufficient;
}

std::size_t HealthReport::count(ConfidenceTier tier) const {
  return static_cast<std::size_t>(
      std::count_if(countries.begin(), countries.end(),
                    [&](const CountryHealth& h) { return h.overall == tier; }));
}

HealthReport compute_health(const HealthInputs& inputs,
                            const DegradationPolicy& policy) {
  std::unordered_map<geo::CountryCode, Accumulator, geo::CountryCodeHash> acc;

  // VP coverage and accepted address weight, from the sanitized paths.
  // Prefix weight is counted once per distinct prefix (every accepted
  // path to the same prefix repeats the same effective weight).
  for (const sanitize::SanitizedPath& p : inputs.paths) {
    Accumulator& a = acc[p.prefix_country];
    if (p.vp_country == p.prefix_country) {
      a.national_vps.insert(p.vp);
    } else {
      a.international_vps.insert(p.vp);
    }
    if (a.prefixes.insert(p.prefix).second) {
      a.geolocated_addresses += p.weight;
    }
  }

  // No-consensus rejections attributed to their plurality country.
  if (inputs.prefix_geo) {
    for (const auto& [country, tally] :
         inputs.prefix_geo->no_consensus_by_plurality()) {
      Accumulator& a = acc[country];
      a.no_consensus_prefixes += tally.prefixes;
      a.no_consensus_addresses += tally.addresses;
    }
  }
  if (inputs.extra_geo_rejections) {
    // lint: ordered(integer += is exactly commutative)
    for (const auto& [country, addresses] : *inputs.extra_geo_rejections) {
      acc[country].no_consensus_addresses += addresses;
    }
  }

  HealthReport report;
  report.policy = policy;
  report.countries.reserve(acc.size());
  // lint: ordered(report.countries is sorted by country just below)
  for (const auto& [country, a] : acc) {
    if (!country.valid()) continue;
    CountryHealth h;
    h.country = country;
    h.national_vps = a.national_vps.size();
    h.international_vps = a.international_vps.size();
    h.accepted_prefixes = a.prefixes.size();
    h.geolocated_addresses = a.geolocated_addresses;
    h.no_consensus_prefixes = a.no_consensus_prefixes;
    h.no_consensus_addresses = a.no_consensus_addresses;
    h.national_tier = policy.view_tier(h.national_vps);
    h.international_tier = policy.view_tier(h.international_vps);
    h.geo_tier = policy.geo_tier(h.geolocated_addresses, h.no_consensus_addresses);
    h.overall = policy.country_tier(h.national_vps, h.international_vps,
                                    h.geolocated_addresses,
                                    h.no_consensus_addresses);
    report.countries.push_back(h);
  }
  std::sort(report.countries.begin(), report.countries.end(),
            [](const CountryHealth& x, const CountryHealth& y) {
              return x.country < y.country;
            });

  if (inputs.ingest && inputs.ingest->lines > 0) {
    report.ingest_drop_rate = static_cast<double>(inputs.ingest->malformed) /
                              static_cast<double>(inputs.ingest->lines);
  }
  if (inputs.sanitize && inputs.sanitize->total > 0) {
    report.sanitize_drop_rate =
        static_cast<double>(inputs.sanitize->rejected()) /
        static_cast<double>(inputs.sanitize->total);
  }
  return report;
}

HealthReport compute_health(const core::ShardedPathStore& store,
                            const HealthInputs& aux,
                            const DegradationPolicy& policy) {
  // Attributed rejections, pre-indexed so the parallel workers only do
  // read-side lookups.
  struct Rejection {
    std::size_t prefixes = 0;
    std::uint64_t addresses = 0;
  };
  std::unordered_map<geo::CountryCode, Rejection, geo::CountryCodeHash> rejected;
  if (aux.prefix_geo) {
    for (const auto& [country, tally] : aux.prefix_geo->no_consensus_by_plurality()) {
      Rejection& r = rejected[country];
      r.prefixes += tally.prefixes;
      r.addresses += tally.addresses;
    }
  }
  if (aux.extra_geo_rejections) {
    // lint: ordered(integer += is exactly commutative)
    for (const auto& [country, addresses] : *aux.extra_geo_rejections) {
      rejected[country].addresses += addresses;
    }
  }

  const std::vector<geo::CountryCode>& census = store.countries();
  HealthReport report;
  report.policy = policy;
  report.countries.resize(census.size());
  // One worker per country shard, biggest shard first; each writes its
  // own slot, so the report is independent of the thread count.
  util::parallel_for_costed(store.census_costs(), [&](std::size_t i) {
    const geo::CountryCode cc = census[i];
    const core::PathShard* shard = store.shard(cc);
    CountryHealth h;
    h.country = cc;
    std::set<bgp::VpId> national_vps;
    std::set<bgp::VpId> international_vps;
    std::set<bgp::Prefix> prefixes;
    for (std::uint32_t row : shard->prefix_rows()) {
      if (shard->vp_country(row) == cc) {
        national_vps.insert(shard->vp(row));
      } else {
        international_vps.insert(shard->vp(row));
      }
      if (prefixes.insert(shard->prefix(row)).second) {
        h.geolocated_addresses += shard->weight(row);
      }
    }
    h.national_vps = national_vps.size();
    h.international_vps = international_vps.size();
    h.accepted_prefixes = prefixes.size();
    if (const auto it = rejected.find(cc); it != rejected.end()) {
      h.no_consensus_prefixes = it->second.prefixes;
      h.no_consensus_addresses = it->second.addresses;
    }
    h.national_tier = policy.view_tier(h.national_vps);
    h.international_tier = policy.view_tier(h.international_vps);
    h.geo_tier = policy.geo_tier(h.geolocated_addresses, h.no_consensus_addresses);
    h.overall = policy.country_tier(h.national_vps, h.international_vps,
                                    h.geolocated_addresses,
                                    h.no_consensus_addresses);
    report.countries[i] = h;
  });

  // Countries with an attributed rejection but no geolocated prefix
  // still appear in the report (the span overload creates their
  // accumulator the same way).
  // lint: ordered(report.countries is sorted by country just below)
  for (const auto& [country, r] : rejected) {
    if (!country.valid()) continue;
    if (std::binary_search(census.begin(), census.end(), country)) continue;
    CountryHealth h;
    h.country = country;
    h.no_consensus_prefixes = r.prefixes;
    h.no_consensus_addresses = r.addresses;
    h.national_tier = policy.view_tier(0);
    h.international_tier = policy.view_tier(0);
    h.geo_tier = policy.geo_tier(0, h.no_consensus_addresses);
    h.overall = policy.country_tier(0, 0, 0, h.no_consensus_addresses);
    report.countries.push_back(h);
  }
  std::sort(report.countries.begin(), report.countries.end(),
            [](const CountryHealth& x, const CountryHealth& y) {
              return x.country < y.country;
            });

  if (aux.ingest && aux.ingest->lines > 0) {
    report.ingest_drop_rate = static_cast<double>(aux.ingest->malformed) /
                              static_cast<double>(aux.ingest->lines);
  }
  if (aux.sanitize && aux.sanitize->total > 0) {
    report.sanitize_drop_rate =
        static_cast<double>(aux.sanitize->rejected()) /
        static_cast<double>(aux.sanitize->total);
  }
  return report;
}

HealthReport compute_health(const core::Pipeline& pipeline,
                            const DegradationPolicy& policy) {
  const sanitize::SanitizeResult& sanitized = pipeline.sanitized();
  const DegradationPolicy& configured = pipeline.config().degradation;
  if (policy.min_vps != configured.min_vps ||
      policy.min_geo_consensus != configured.min_geo_consensus) {
    // A caller-supplied policy can't reuse the pipeline's memo (entries
    // were tiered under the configured thresholds); score from scratch.
    HealthInputs inputs;
    inputs.prefix_geo = &sanitized.prefix_geo;
    inputs.sanitize = &sanitized.stats;
    inputs.ingest = &pipeline.parse_stats();
    return compute_health(pipeline.store(), inputs, policy);
  }

  // Policy matches the pipeline's: assemble the report from the
  // per-country health memo, so a reload that left most shards intact
  // re-scans only the changed countries' rows. Identical output to the
  // shard-parallel overload (Pipeline::country_health_uncached is a port
  // of its worker).
  const core::ShardedPathStore& store = pipeline.store();
  const std::vector<geo::CountryCode>& census = store.countries();
  HealthReport report;
  report.policy = policy;
  report.countries.resize(census.size());
  util::parallel_for_costed(store.census_costs(), [&](std::size_t i) {
    report.countries[i] = pipeline.country_health(census[i]);
  });

  // Countries with an attributed rejection but no geolocated prefix.
  // lint: ordered(report.countries is sorted by country just below)
  for (const auto& [country, tally] :
       sanitized.prefix_geo.no_consensus_by_plurality()) {
    if (!country.valid()) continue;
    if (std::binary_search(census.begin(), census.end(), country)) continue;
    report.countries.push_back(pipeline.country_health(country));
  }
  std::sort(report.countries.begin(), report.countries.end(),
            [](const CountryHealth& x, const CountryHealth& y) {
              return x.country < y.country;
            });

  const bgp::MrtParseStats& ingest = pipeline.parse_stats();
  if (ingest.lines > 0) {
    report.ingest_drop_rate = static_cast<double>(ingest.malformed) /
                              static_cast<double>(ingest.lines);
  }
  if (sanitized.stats.total > 0) {
    report.sanitize_drop_rate =
        static_cast<double>(sanitized.stats.rejected()) /
        static_cast<double>(sanitized.stats.total);
  }
  return report;
}

}  // namespace georank::robust
