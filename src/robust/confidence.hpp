// Forwarder: the confidence-tier vocabulary moved to core/confidence.hpp
// so that core::Pipeline can annotate metrics without depending on
// robust/ (which depends on core — the include was a layering cycle).
// robust:: names (ConfidenceTier, DegradationPolicy, to_string, worst)
// remain valid via the aliases that header declares.
#pragma once

#include "core/confidence.hpp"  // IWYU pragma: export
