#include "robust/fault_plan.hpp"

#include <algorithm>
#include <array>
#include <map>
#include <stdexcept>
#include <unordered_set>

#include "core/ndcg.hpp"
#include "core/path_store.hpp"
#include "core/pipeline.hpp"
#include "util/parallel_for.hpp"
#include "util/rng.hpp"

namespace georank::robust {

std::string_view to_string(FaultDimension dimension) noexcept {
  switch (dimension) {
    case FaultDimension::kDropVps: return "drop-vps";
    case FaultDimension::kCorruptGeo: return "corrupt-geo";
    case FaultDimension::kDropPaths: return "drop-paths";
  }
  return "?";
}

namespace {

double clamp01(double f) { return f < 0.0 ? 0.0 : (f > 1.0 ? 1.0 : f); }

/// round(fraction * n), clamped to [0, n].
std::size_t fraction_count(double fraction, std::size_t n) {
  double f = clamp01(fraction);
  auto count = static_cast<std::size_t>(f * static_cast<double>(n) + 0.5);
  return count > n ? n : count;
}

/// Mixes sweep coordinates into an independent per-trial seed.
std::uint64_t derive_seed(std::uint64_t base, std::uint64_t dimension,
                          std::uint64_t step, std::uint64_t trial) {
  std::uint64_t state = base + 0x9e3779b97f4a7c15ull * (dimension + 1) +
                        0xbf58476d1ce4e5b9ull * (step + 1) +
                        0x94d049bb133111ebull * (trial + 1);
  return util::splitmix64(state);
}

}  // namespace

PerturbationResult perturb(std::span<const sanitize::SanitizedPath> clean,
                           const PerturbationSpec& spec) {
  PerturbationResult out;

  // Distinct VPs / prefixes with their (unique, by construction) country,
  // in SORTED order so the candidate lists — and hence the sampled drops —
  // do not depend on the clean set's path order.
  std::map<bgp::VpId, geo::CountryCode> vp_country;
  std::map<bgp::Prefix, std::pair<geo::CountryCode, std::uint64_t>> prefix_info;
  for (const sanitize::SanitizedPath& p : clean) {
    vp_country.emplace(p.vp, p.vp_country);
    prefix_info.emplace(p.prefix, std::make_pair(p.prefix_country, p.weight));
  }

  std::unordered_set<bgp::VpId, bgp::VpIdHash> dropped_vps;
  if (spec.drop_vps > 0) {
    std::vector<bgp::VpId> candidates;
    for (const auto& [vp, country] : vp_country) {
      if (!spec.vp_target.valid() || country == spec.vp_target) {
        candidates.push_back(vp);
      }
    }
    std::size_t k = std::min(spec.drop_vps, candidates.size());
    util::Pcg32 rng{spec.seed, 1};
    for (std::size_t i : util::sample_indices(candidates.size(), k, rng)) {
      dropped_vps.insert(candidates[i]);
    }
  }

  std::unordered_set<bgp::Prefix, bgp::PrefixHash> corrupted;
  if (spec.corrupt_geo_fraction > 0.0) {
    std::vector<bgp::Prefix> candidates;
    for (const auto& [prefix, info] : prefix_info) {
      if (!spec.geo_target.valid() || info.first == spec.geo_target) {
        candidates.push_back(prefix);
      }
    }
    std::size_t k = fraction_count(spec.corrupt_geo_fraction, candidates.size());
    util::Pcg32 rng{spec.seed, 2};
    for (std::size_t i : util::sample_indices(candidates.size(), k, rng)) {
      const bgp::Prefix& prefix = candidates[i];
      corrupted.insert(prefix);
      const auto& [country, weight] = prefix_info.at(prefix);
      out.corrupted_addresses[country] += weight;
    }
  }

  std::vector<bool> path_dropped(clean.size(), false);
  if (spec.drop_path_fraction > 0.0) {
    std::size_t k = fraction_count(spec.drop_path_fraction, clean.size());
    util::Pcg32 rng{spec.seed, 3};
    for (std::size_t i : util::sample_indices(clean.size(), k, rng)) {
      path_dropped[i] = true;
    }
  }

  out.paths.reserve(clean.size());
  for (std::size_t i = 0; i < clean.size(); ++i) {
    const sanitize::SanitizedPath& p = clean[i];
    if (dropped_vps.contains(p.vp)) continue;
    if (corrupted.contains(p.prefix)) continue;
    if (path_dropped[i]) {
      ++out.dropped_paths;
      continue;
    }
    out.paths.push_back(p);
  }

  out.dropped_vps.assign(dropped_vps.begin(), dropped_vps.end());
  std::sort(out.dropped_vps.begin(), out.dropped_vps.end());
  out.corrupted_prefixes.assign(corrupted.begin(), corrupted.end());
  std::sort(out.corrupted_prefixes.begin(), out.corrupted_prefixes.end());
  return out;
}

FaultPlan FaultPlan::defaults() {
  FaultPlan plan;
  plan.vp_drop_steps = {1, 2, 4};
  plan.geo_corrupt_steps = {0.05, 0.10};
  plan.path_drop_steps = {0.05, 0.10};
  return plan;
}

double RobustnessCurve::worst() const noexcept {
  double w = 1.0;
  for (const RobustnessPoint& p : points) w = std::min(w, p.worst);
  return w;
}

RobustnessReport RobustnessHarness::run(
    const FaultPlan& plan, std::span<const geo::CountryCode> countries) const {
  if (!pipeline_->loaded()) {
    throw std::logic_error{"RobustnessHarness::run(): no RIBs loaded"};
  }
  std::vector<geo::CountryCode> domain(countries.begin(), countries.end());
  if (domain.empty()) domain = pipeline_->store().countries();

  // Clean baselines (memoized inside the pipeline).
  std::vector<core::CountryMetrics> baseline;
  baseline.reserve(domain.size());
  for (geo::CountryCode cc : domain) baseline.push_back(pipeline_->country(cc));

  struct Job {
    FaultDimension dimension;
    double severity = 0.0;
    std::size_t dim_index = 0;
    std::size_t step_index = 0;
  };
  std::vector<Job> jobs;
  for (std::size_t s = 0; s < plan.vp_drop_steps.size(); ++s) {
    jobs.push_back({FaultDimension::kDropVps,
                    static_cast<double>(plan.vp_drop_steps[s]), 0, s});
  }
  for (std::size_t s = 0; s < plan.geo_corrupt_steps.size(); ++s) {
    jobs.push_back({FaultDimension::kCorruptGeo, plan.geo_corrupt_steps[s], 1, s});
  }
  for (std::size_t s = 0; s < plan.path_drop_steps.size(); ++s) {
    jobs.push_back({FaultDimension::kDropPaths, plan.path_drop_steps[s], 2, s});
  }

  const std::size_t trials = std::max<std::size_t>(1, plan.trials);
  std::span<const sanitize::SanitizedPath> clean = pipeline_->sanitized().paths;
  const core::CountryRankings& rankings = pipeline_->rankings();

  // One slot per (job, country); jobs run in parallel, each a pure
  // function of (clean, plan.seed, coordinates) — deterministic for any
  // schedule, hence any thread count.
  std::vector<std::vector<RobustnessPoint>> slots(jobs.size());
  util::parallel_for(jobs.size(), [&](std::size_t j) {
    const Job& job = jobs[j];
    std::vector<std::array<double, 4>> sums(domain.size(), {0, 0, 0, 0});
    std::vector<double> worst(domain.size(), 1.0);
    for (std::size_t t = 0; t < trials; ++t) {
      PerturbationSpec spec;
      spec.seed = derive_seed(plan.seed, job.dim_index, job.step_index, t);
      switch (job.dimension) {
        case FaultDimension::kDropVps:
          spec.drop_vps = static_cast<std::size_t>(job.severity);
          spec.vp_target = plan.vp_target;
          break;
        case FaultDimension::kCorruptGeo:
          spec.corrupt_geo_fraction = job.severity;
          break;
        case FaultDimension::kDropPaths:
          spec.drop_path_fraction = job.severity;
          break;
      }
      PerturbationResult perturbed = perturb(clean, spec);
      core::PathStore store{perturbed.paths};
      for (std::size_t c = 0; c < domain.size(); ++c) {
        core::CountryMetrics m = rankings.compute(store, domain[c]);
        std::array<double, 4> scores{
            core::ndcg(m.cci, baseline[c].cci, plan.top_k),
            core::ndcg(m.ccn, baseline[c].ccn, plan.top_k),
            core::ndcg(m.ahi, baseline[c].ahi, plan.top_k),
            core::ndcg(m.ahn, baseline[c].ahn, plan.top_k)};
        for (std::size_t i = 0; i < 4; ++i) {
          sums[c][i] += scores[i];
          worst[c] = std::min(worst[c], scores[i]);
        }
      }
    }
    std::vector<RobustnessPoint> points(domain.size());
    for (std::size_t c = 0; c < domain.size(); ++c) {
      RobustnessPoint& p = points[c];
      p.dimension = job.dimension;
      p.severity = job.severity;
      p.trials = trials;
      auto n = static_cast<double>(trials);
      p.cci = sums[c][0] / n;
      p.ccn = sums[c][1] / n;
      p.ahi = sums[c][2] / n;
      p.ahn = sums[c][3] / n;
      p.worst = worst[c];
    }
    slots[j] = std::move(points);
  });

  RobustnessReport report;
  report.plan = plan;
  report.curves.resize(domain.size());
  for (std::size_t c = 0; c < domain.size(); ++c) {
    report.curves[c].country = domain[c];
    report.curves[c].points.reserve(jobs.size());
    for (std::size_t j = 0; j < jobs.size(); ++j) {
      report.curves[c].points.push_back(slots[j][c]);
    }
  }
  std::sort(report.curves.begin(), report.curves.end(),
            [](const RobustnessCurve& a, const RobustnessCurve& b) {
              return a.country < b.country;
            });
  return report;
}

}  // namespace georank::robust
