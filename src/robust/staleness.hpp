// Serving-staleness states for the live pipeline.
//
// The paper's rankings are snapshots of a continuously moving system
// (IHR's AS Hegemony is explicitly a *continuous* monitor, §1.2.1), and
// real VP feeds gap and flap routinely — so a query service fed by a
// live stream must tell consumers when its view has stopped advancing
// rather than serve ever-staler rankings as if they were fresh. This is
// the same never-fabricate principle robust::ConfidenceTier applies to
// geo consensus, lifted from data quality to *process* health.
//
// Like confidence.hpp this header is deliberately DEPENDENCY-FREE
// (header-only, no library): live::HealthMonitor drives the state
// machine and serve::RankingService renders it, so the vocabulary has
// to sit below both. Time enters only as caller-supplied seconds —
// never a wall-clock read (georank-lint GR002) — which is what keeps
// the staleness tests and the recovery harness deterministic.
#pragma once

#include <cstdint>
#include <string_view>

namespace georank::robust {

/// Freshness of the live pipeline's view, worst-first ordered below
/// kRecovering so staler(a, b) over the serving states is max(a, b).
/// kRecovering sits apart: it is an *operational* state (replaying a
/// journal after a crash, or backing off to reopen a vanished source),
/// entered and left explicitly rather than by age.
enum class ServingState : std::uint8_t {
  kFresh = 0,      // the stream watermark advanced recently
  kStale = 1,      // no progress past stale_after; data usable, aging
  kDegraded = 2,   // no progress past degraded_after; treat as historical
  kRecovering = 3, // replaying the journal / backing off to reopen input
};
inline constexpr std::size_t kServingStateCount = 4;

[[nodiscard]] constexpr std::string_view to_string(ServingState state) noexcept {
  switch (state) {
    case ServingState::kFresh: return "fresh";
    case ServingState::kStale: return "stale";
    case ServingState::kDegraded: return "degraded";
    case ServingState::kRecovering: return "recovering";
  }
  return "?";
}

[[nodiscard]] constexpr ServingState staler(ServingState a,
                                            ServingState b) noexcept {
  return a < b ? b : a;
}

/// The age thresholds that map watermark silence onto states. The
/// defaults suit a feed that republishes every few minutes: five
/// minutes of silence is worth flagging, fifteen means consumers
/// should treat the rankings as historical.
struct StalenessPolicy {
  /// Seconds without stream progress before kFresh decays to kStale.
  double stale_after_seconds = 300.0;
  /// Seconds without progress before kStale decays to kDegraded.
  /// Must be >= stale_after_seconds for the machine to be monotone.
  double degraded_after_seconds = 900.0;

  /// State implied purely by the age of the last progress event.
  /// kRecovering is never returned here — it is entered explicitly by
  /// the recovery/backoff path, not by aging.
  [[nodiscard]] constexpr ServingState classify(double age_seconds) const noexcept {
    if (age_seconds >= degraded_after_seconds) return ServingState::kDegraded;
    if (age_seconds >= stale_after_seconds) return ServingState::kStale;
    return ServingState::kFresh;
  }
};

}  // namespace georank::robust
