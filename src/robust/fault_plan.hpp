// Pipeline-level fault injection: perturb a loaded world DETERMINISTICALLY
// and measure how far each country's rankings drift from the clean
// baseline.
//
// Three fault dimensions, mirroring how measurement infrastructure
// actually degrades (Alfroy et al. on droppable VP sets; the paper's own
// §5 stability analysis):
//
//   kDropVps     a collector or peering session disappears: k vantage
//                points vanish, uniformly or targeted at one country;
//   kCorruptGeo  a geolocation DB release blanks/mangles blocks: a
//                fraction of accepted prefixes lose their country, so
//                their paths fall out as "prefix no location";
//   kDropPaths   tolerant ingest silently loses a fraction of sanitized
//                paths (truncated dumps, over-aggressive filters).
//
// RobustnessHarness re-runs the metric computation on the perturbed path
// set and scores every ranking's NDCG@k against the clean baseline (the
// same comparison core::StabilityAnalyzer uses for VP downsampling),
// producing a robustness curve per country and metric (CCI/CCN/AHI/AHN).
// Everything is a pure function of (inputs, seed): same seeds => same
// curves, bit-identical across thread counts.
#pragma once

#include <cstdint>
#include <span>
#include <string_view>
#include <unordered_map>
#include <vector>

#include "geo/country.hpp"
#include "robust/confidence.hpp"
#include "sanitize/path_sanitizer.hpp"

namespace georank::core {
class Pipeline;
}

namespace georank::robust {

enum class FaultDimension : std::uint8_t { kDropVps, kCorruptGeo, kDropPaths };

[[nodiscard]] std::string_view to_string(FaultDimension dimension) noexcept;

/// One deterministic perturbation of a sanitized path set. All three
/// dimensions may be combined; each draws from an independent RNG stream
/// of `seed`, so enabling one never changes another's choices.
struct PerturbationSpec {
  std::uint64_t seed = 42;
  /// Drop this many distinct VPs (clamped to the candidate set).
  std::size_t drop_vps = 0;
  /// When valid, dropped VPs are chosen among VPs HOSTED IN this country
  /// (a targeted national-coverage failure); otherwise uniformly.
  geo::CountryCode vp_target;
  /// Blank the geolocation of this fraction of accepted prefixes; their
  /// paths drop, exactly as a "prefix no location" sanitizer rejection.
  double corrupt_geo_fraction = 0.0;
  /// When valid, only this country's prefixes are corruption candidates.
  geo::CountryCode geo_target;
  /// Drop this fraction of sanitized paths uniformly.
  double drop_path_fraction = 0.0;
};

struct PerturbationResult {
  /// Surviving paths, in the clean set's order (deterministic).
  std::vector<sanitize::SanitizedPath> paths;
  std::vector<bgp::VpId> dropped_vps;           // sorted ascending
  std::vector<bgp::Prefix> corrupted_prefixes;  // sorted ascending
  /// Effective address weight whose geolocation was blanked, by prefix
  /// country — feed to HealthInputs::extra_geo_rejections so the health
  /// report sees the corruption as lost consensus.
  std::unordered_map<geo::CountryCode, std::uint64_t, geo::CountryCodeHash>
      corrupted_addresses;
  /// Paths removed by drop_path_fraction alone (not already gone).
  std::size_t dropped_paths = 0;
};

/// Applies `spec` to `clean`. Pure: depends only on (clean, spec).
[[nodiscard]] PerturbationResult perturb(
    std::span<const sanitize::SanitizedPath> clean, const PerturbationSpec& spec);

/// A severity sweep: each dimension's steps are perturbed independently
/// (one dimension at a time), `trials` different seeds per step.
struct FaultPlan {
  std::uint64_t seed = 42;
  /// kDropVps severities (absolute VP counts), e.g. {1, 2, 4}.
  std::vector<std::size_t> vp_drop_steps;
  /// Forwarded to PerturbationSpec::vp_target for every kDropVps step.
  geo::CountryCode vp_target;
  /// kCorruptGeo severities (fractions of accepted prefixes).
  std::vector<double> geo_corrupt_steps;
  /// kDropPaths severities (fractions of sanitized paths).
  std::vector<double> path_drop_steps;
  std::size_t trials = 3;
  /// NDCG cut-off (the paper evaluates top-10).
  std::size_t top_k = 10;

  /// {1,2,4} VPs, {5%, 10%} geo blocks, {5%, 10%} paths, 3 trials.
  [[nodiscard]] static FaultPlan defaults();
};

/// Mean/min NDCG@k of the perturbed rankings against the clean baseline
/// at one (dimension, severity).
struct RobustnessPoint {
  FaultDimension dimension = FaultDimension::kDropVps;
  double severity = 0.0;  // VP count for kDropVps, fraction otherwise
  std::size_t trials = 0;
  double cci = 1.0, ccn = 1.0, ahi = 1.0, ahn = 1.0;  // mean NDCG
  /// Worst single-trial, single-metric NDCG at this point.
  double worst = 1.0;
};

struct RobustnessCurve {
  geo::CountryCode country;
  /// Grouped by dimension in declaration order, severities ascending in
  /// plan order.
  std::vector<RobustnessPoint> points;

  /// Min of RobustnessPoint::worst across the curve (1.0 when empty).
  [[nodiscard]] double worst() const noexcept;
};

struct RobustnessReport {
  std::vector<RobustnessCurve> curves;  // sorted by country code
  FaultPlan plan;
};

/// Drives the sweep over a LOADED pipeline. Perturbed stores are shared
/// across countries within one (dimension, severity, trial) job, and jobs
/// fan out over util::parallel_for with disjoint output slots, so the
/// report is identical for any GEORANK_THREADS value.
class RobustnessHarness {
 public:
  /// The pipeline must outlive the harness and stay loaded across run().
  explicit RobustnessHarness(const core::Pipeline& pipeline)
      : pipeline_(&pipeline) {}

  /// Empty `countries` -> every country in the pipeline's census.
  /// Throws std::logic_error when the pipeline has no RIBs loaded.
  [[nodiscard]] RobustnessReport run(
      const FaultPlan& plan,
      std::span<const geo::CountryCode> countries = {}) const;

 private:
  const core::Pipeline* pipeline_;
};

}  // namespace georank::robust
