// DataHealth: per-country evidence accounting behind every ranking.
//
// After a load, each country's observational basis is summarized — how
// many national/international VPs saw it, how much address space
// geolocated cleanly, how much failed consensus (geo::PrefixGeolocator
// rejections attributed to their plurality country), and what the
// ingest + sanitize layers dropped globally — and folded into a
// ConfidenceTier by a DegradationPolicy. The pipeline annotates metrics
// with the same tiers; this module produces the full audit record the
// `georank health` command renders.
//
// compute_health() also accepts a bare SanitizedPath span (plus optional
// evidence), so the fault-injection harness can score a PERTURBED world
// with exactly the same rules as a clean one.
#pragma once

#include <span>
#include <unordered_map>
#include <vector>

#include "bgp/line_parse.hpp"
#include "core/country_health.hpp"
#include "geo/country.hpp"
#include "geo/prefix_geolocator.hpp"
#include "robust/confidence.hpp"
#include "sanitize/path_sanitizer.hpp"

namespace georank::core {
class Pipeline;
class ShardedPathStore;
}

namespace georank::robust {

// CountryHealth itself lives in core/country_health.hpp (the pipeline
// memoizes one per shard); `robust::CountryHealth` still names it.

/// Everything compute_health() can draw on. Only `paths` is mandatory;
/// absent evidence is simply not counted (geo consensus then reads 1.0).
struct HealthInputs {
  std::span<const sanitize::SanitizedPath> paths;
  /// Geolocation accept/reject record (per-country no-consensus rates).
  const geo::PrefixGeoResult* prefix_geo = nullptr;
  /// Sanitizer drop attribution (Table-1 categories).
  const sanitize::SanitizeStats* sanitize = nullptr;
  /// Ingest-layer drop attribution (malformed-line counters).
  const bgp::MrtParseStats* ingest = nullptr;
  /// Extra per-country address weight whose geolocation was lost AFTER
  /// sanitization — the fault injector reports corrupted geo blocks
  /// here so a perturbed world's consensus rates reflect the damage.
  const std::unordered_map<geo::CountryCode, std::uint64_t,
                           geo::CountryCodeHash>* extra_geo_rejections = nullptr;
};

struct HealthReport {
  /// Sorted by country code ascending; every country with at least one
  /// geolocated prefix OR at least one attributed no-consensus
  /// rejection appears.
  std::vector<CountryHealth> countries;
  DegradationPolicy policy;

  // Global drop attribution, in [0,1] of the respective layer's input.
  double ingest_drop_rate = 0.0;    // malformed lines / lines
  double sanitize_drop_rate = 0.0;  // rejected entries / total entries

  [[nodiscard]] const CountryHealth* find(geo::CountryCode country) const;
  /// Tier of a country; a country ABSENT from the report has, by
  /// definition, no usable evidence -> kInsufficient.
  [[nodiscard]] ConfidenceTier tier_of(geo::CountryCode country) const;
  [[nodiscard]] std::size_t count(ConfidenceTier tier) const;
};

/// Builds the health report from raw evidence. Deterministic: the output
/// depends only on the inputs and the policy.
[[nodiscard]] HealthReport compute_health(const HealthInputs& inputs,
                                          const DegradationPolicy& policy = {});

/// Shard-parallel equivalent over a prebuilt ShardedPathStore: one
/// worker per country shard (largest first), so health accounting for
/// an internet-scale world doesn't run as one serial global pass.
/// `aux.paths` is ignored — path evidence comes from the shards — but
/// the other HealthInputs fields are honored. Output is identical to
/// the span overload run over the store's source paths.
[[nodiscard]] HealthReport compute_health(const core::ShardedPathStore& store,
                                          const HealthInputs& aux,
                                          const DegradationPolicy& policy = {});

/// Convenience overload over a loaded pipeline (throws std::logic_error
/// like any other pipeline query when nothing is loaded). Uses the
/// pipeline's sanitize result, geolocation record and ingest stats.
/// When `policy` equals the pipeline's configured degradation policy the
/// report is assembled from Pipeline::country_health's memo (so only
/// countries whose shards changed since the last reload are re-scanned
/// — the live pipeline republish leans on this); otherwise it routes
/// through the shard-parallel path above. Both produce identical output.
[[nodiscard]] HealthReport compute_health(const core::Pipeline& pipeline,
                                          const DegradationPolicy& policy = {});

}  // namespace georank::robust
