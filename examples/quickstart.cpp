// Quickstart: the whole pipeline in ~60 lines.
//
//   1. Generate a small synthetic Internet (or bring your own RIBs in the
//      bgpdump-style text format, see bgp/mrt_text.hpp).
//   2. Feed the five daily RIB snapshots through the sanitizer.
//   3. Ask for a country's four rankings: CCI, AHI, CCN, AHN.
//
// Build & run:  ./build/examples/example_quickstart
#include <cstdio>

#include "core/pipeline.hpp"
#include "gen/internet_generator.hpp"
#include "gen/rib_generator.hpp"
#include "gen/scenarios.hpp"

using namespace georank;

int main() {
  // A 4-country world: AU (with the Telstra/Vocus structure), US, JP, DE.
  gen::World world = gen::InternetGenerator{gen::mini_world_spec()}.generate();

  // Five days of RIB snapshots with realistic imperfections (flapping,
  // loops, bogus ASNs, multihop collectors, mixed-geo prefixes).
  gen::NoiseSpec noise;
  bgp::RibCollection ribs = gen::RibGenerator{world, noise}.generate(5);

  // Round-trip through the text format, as a real deployment would parse
  // bgpdump output.
  std::string mrt_text = bgp::to_mrt_text(ribs);
  std::printf("RIB text: %.1f MB, %zu entries\n",
              static_cast<double>(mrt_text.size()) / 1e6, ribs.total_entries());

  // Configure the pipeline: geolocation DB, collector metadata, IANA
  // allocations, AS relationships (ground truth here; see
  // infer::RelationshipInference to infer them from the paths instead).
  core::PipelineConfig config;
  config.sanitizer.clique = world.clique;
  config.sanitizer.route_server_asns = world.route_servers;
  core::Pipeline pipeline{world.geo_db, world.vps, world.asn_registry,
                          world.graph, config};
  pipeline.load_text(mrt_text);

  const auto& stats = pipeline.sanitized().stats;
  std::printf("sanitizer: accepted %zu / %zu entries (%.1f%%)\n\n",
              stats.accepted, stats.total,
              100.0 * static_cast<double>(stats.accepted) /
                  static_cast<double>(stats.total));

  // The paper's four country metrics for Australia.
  core::CountryMetrics au = pipeline.country(geo::CountryCode::of("AU"));
  auto show = [&](const char* name, const rank::Ranking& ranking) {
    std::printf("%s top-3:\n", name);
    int pos = 0;
    for (const auto& entry : ranking.top(3)) {
      std::printf("  %d. AS%-6u %-18s %5.1f%%\n", ++pos, entry.asn,
                  world.name_of(entry.asn).c_str(), entry.score * 100.0);
    }
  };
  show("CCI (customer cone, international)", au.cci);
  show("AHI (hegemony, international)", au.ahi);
  show("CCN (customer cone, national)", au.ccn);
  show("AHN (hegemony, national)", au.ahn);
  return 0;
}
