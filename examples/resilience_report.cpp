// Resilience report: which single AS failure hurts a country most?
// Couples the paper's country metrics (who SEEMS important) with the
// simulator's counterfactual (who, when withdrawn, actually strands
// address space) — the assessment §7 says pure BGP data cannot support.
//
// Usage:  ./build/examples/example_resilience_report [CC] [top-n]
//         (defaults: AU 6)
#include <cstdio>
#include <cstdlib>
#include <iostream>
#include <unordered_set>

#include "core/pipeline.hpp"
#include "gen/internet_generator.hpp"
#include "gen/rib_generator.hpp"
#include "gen/scenarios.hpp"
#include "topo/failure_analysis.hpp"
#include "util/strings.hpp"
#include "util/table.hpp"

using namespace georank;

int main(int argc, char** argv) {
  auto country_arg = geo::CountryCode::parse(argc > 1 ? argv[1] : "AU");
  int top_n = argc > 2 ? std::atoi(argv[2]) : 6;
  if (!country_arg || top_n < 1) {
    std::fprintf(stderr, "usage: %s <country code> [top-n]\n", argv[0]);
    return 1;
  }
  geo::CountryCode country = *country_arg;

  std::printf("building the evaluation world...\n");
  gen::WorldSpec spec = gen::default_world_spec();
  gen::World world = gen::InternetGenerator{spec}.generate();
  bgp::RibCollection ribs = gen::RibGenerator{world, spec.noise}.generate(5);

  core::PipelineConfig config;
  config.sanitizer.clique = world.clique;
  config.sanitizer.route_server_asns = world.route_servers;
  core::Pipeline pipeline{world.geo_db, world.vps, world.asn_registry,
                          world.graph, config};
  pipeline.load(ribs);
  core::CountryMetrics m = pipeline.country(country);
  if (m.ahi.empty()) {
    std::fprintf(stderr, "no data for %s\n", country.to_string().c_str());
    return 1;
  }

  std::vector<topo::PrefixOrigin> targets;
  std::unordered_set<bgp::Prefix, bgp::PrefixHash> seen;
  for (const auto& sp : pipeline.sanitized().paths) {
    if (sp.prefix_country != country || !seen.insert(sp.prefix).second) continue;
    targets.push_back(topo::PrefixOrigin{sp.prefix, sp.path.origin(), sp.weight});
  }
  topo::FailureAnalyzer analyzer{world.graph, targets, world.clique};

  std::vector<bgp::Asn> candidates;
  for (const auto& e : m.ahi.top(static_cast<std::size_t>(top_n))) {
    candidates.push_back(e.asn);
  }
  for (const auto& e : m.cci.top(static_cast<std::size_t>(top_n))) {
    if (std::find(candidates.begin(), candidates.end(), e.asn) ==
        candidates.end()) {
      candidates.push_back(e.asn);
    }
  }

  std::printf("\nsingle-AS failure impact on %s (%zu prefixes, observers = "
              "tier-1 clique):\n",
              country.to_string().c_str(), targets.size());
  util::Table table{{"AS", "name", "AHI rank", "CCI rank", "unreachable",
                     "rerouted"}};
  for (std::size_t c = 2; c <= 5; ++c) table.set_align(c, util::Align::kRight);
  for (const auto& impact : analyzer.rank_candidates(candidates)) {
    auto rank_str = [](const rank::Ranking& r, bgp::Asn asn) {
      auto rank = r.rank_of(asn);
      return rank ? std::to_string(*rank) : std::string("-");
    };
    table.add_row({std::to_string(impact.failed), world.name_of(impact.failed),
                   rank_str(m.ahi, impact.failed), rank_str(m.cci, impact.failed),
                   util::percent(impact.unreachable_share(), 1),
                   util::percent(impact.rerouted_share(), 1)});
  }
  table.print(std::cout);
  std::printf("\nunreachable = no backup path exists at all (hard dependence);\n"
              "rerouted = reachable but shifted (soft dependence).\n");
  return 0;
}
