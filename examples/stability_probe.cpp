// Stability probe: "how many vantage points does country X need before
// its national rankings become trustworthy?" — §4's methodology packaged
// as a tool. The paper uses this to argue for targeted VP deployment.
//
// Usage:  ./build/examples/example_stability_probe [CC] [threshold]
//         (defaults: NL 0.9)
#include <cstdio>
#include <cstdlib>
#include <iostream>

#include "core/pipeline.hpp"
#include "core/stability.hpp"
#include "gen/internet_generator.hpp"
#include "gen/rib_generator.hpp"
#include "gen/scenarios.hpp"
#include "util/strings.hpp"
#include "util/table.hpp"

using namespace georank;

int main(int argc, char** argv) {
  auto country_arg = geo::CountryCode::parse(argc > 1 ? argv[1] : "NL");
  double threshold = argc > 2 ? std::atof(argv[2]) : 0.9;
  if (!country_arg || threshold <= 0.0 || threshold > 1.0) {
    std::fprintf(stderr, "usage: %s <country code> [ndcg threshold in (0,1]]\n",
                 argv[0]);
    return 1;
  }
  geo::CountryCode country = *country_arg;

  std::printf("building the evaluation world...\n");
  gen::WorldSpec spec = gen::default_world_spec();
  gen::World world = gen::InternetGenerator{spec}.generate();
  bgp::RibCollection ribs = gen::RibGenerator{world, spec.noise}.generate(5);

  core::PipelineConfig config;
  config.sanitizer.clique = world.clique;
  config.sanitizer.route_server_asns = world.route_servers;
  core::Pipeline pipeline{world.geo_db, world.vps, world.asn_registry,
                          world.graph, config};
  pipeline.load(ribs);

  const auto& paths = pipeline.sanitized().paths;
  core::StabilityAnalyzer analyzer{pipeline.rankings()};

  struct ViewDef {
    const char* label;
    core::CountryView view;
  } views[] = {
      {"national", core::ViewBuilder::national(paths, country)},
      {"international", core::ViewBuilder::international(paths, country)},
  };
  struct MetricDef {
    const char* label;
    core::MetricKind kind;
  } metrics[] = {{"hegemony", core::MetricKind::kHegemony},
                 {"customer cone", core::MetricKind::kCustomerCone}};

  for (const auto& [view_label, view] : views) {
    std::size_t n = view.vp_count();
    std::printf("\n=== %s view of %s: %zu VPs, %zu paths ===\n", view_label,
                country.to_string().c_str(), n, view.size());
    if (n < 2) {
      std::printf("not enough VPs for a sampling analysis -- the paper's\n"
                  "situation for most countries' national views (§4.2.1).\n");
      continue;
    }
    for (const auto& [metric_label, kind] : metrics) {
      core::StabilityOptions options;
      options.trials_per_size = 12;
      auto curve = analyzer.analyze(view, kind, options);
      std::size_t need = core::StabilityAnalyzer::min_vps_for(curve, threshold);

      std::printf("\n%s: ", metric_label);
      if (need) {
        std::printf("NDCG >= %.2f from %zu VPs (of %zu available)\n", threshold,
                    need, n);
      } else {
        std::printf("NDCG >= %.2f NOT reached with the available VPs\n",
                    threshold);
      }
      std::printf("  k:    ");
      for (const auto& p : curve) std::printf("%5zu", p.vp_count);
      std::printf("\n  ndcg: ");
      for (const auto& p : curve) std::printf("%5.2f", p.mean_ndcg);
      std::printf("\n");
    }
  }
  return 0;
}
