// Country report: everything this library computes for one country in
// one table — the four paper metrics (CCI/AHI/CCN/AHN), the IHR-style
// AHC and CTI baselines, the outbound extension (AHO), plus sovereignty
// and concentration summaries. Thin wrapper over core/report.hpp.
//
// Usage:  ./build/examples/example_country_report [CC]   (default AU)
#include <cstdio>

#include "core/report.hpp"
#include "gen/internet_generator.hpp"
#include "gen/rib_generator.hpp"
#include "gen/scenarios.hpp"

using namespace georank;

int main(int argc, char** argv) {
  auto country_arg = geo::CountryCode::parse(argc > 1 ? argv[1] : "AU");
  if (!country_arg) {
    std::fprintf(stderr, "usage: %s <two-letter country code>\n", argv[0]);
    return 1;
  }

  std::printf("building the evaluation world (~40 countries)...\n");
  gen::WorldSpec spec = gen::default_world_spec();
  gen::World world = gen::InternetGenerator{spec}.generate();
  bgp::RibCollection ribs = gen::RibGenerator{world, spec.noise}.generate(5);

  core::PipelineConfig config;
  config.sanitizer.clique = world.clique;
  config.sanitizer.route_server_asns = world.route_servers;
  core::Pipeline pipeline{world.geo_db, world.vps, world.asn_registry,
                          world.graph, config};
  pipeline.load(ribs);

  core::CountryReport report =
      core::build_country_report(pipeline, world.as_registry, *country_arg);
  if (report.empty()) {
    std::fprintf(stderr, "no paths toward %s; countries in this world: ",
                 country_arg->to_string().c_str());
    for (const auto& c : spec.countries) {
      std::fprintf(stderr, "%s ", c.code.to_string().c_str());
    }
    std::fprintf(stderr, "\n");
    return 1;
  }

  std::printf("\n%s",
              core::render_country_report(report, [&](bgp::Asn asn) {
                const gen::AsInfo* info = world.info(asn);
                return info ? info->name : std::string{};
              }).c_str());
  return 0;
}
