// De-peering / sanctions study: apply a "provider X stops serving
// country Y" edit to the world and diff the country's rankings before
// and after — the §6.1 methodology (Lumen/Cogent leaving Russia) as a
// reusable tool.
//
// Usage:  ./build/examples/example_depeering_study [CC] [provider-asn]
//         (defaults: RU 3356)
#include <cstdio>
#include <cstdlib>
#include <iostream>

#include "core/pipeline.hpp"
#include "gen/internet_generator.hpp"
#include "gen/rib_generator.hpp"
#include "gen/scenarios.hpp"
#include "util/strings.hpp"
#include "util/table.hpp"

using namespace georank;

namespace {

core::CountryMetrics run_pipeline(const gen::World& world,
                                  const gen::NoiseSpec& noise,
                                  geo::CountryCode country) {
  bgp::RibCollection ribs = gen::RibGenerator{world, noise}.generate(5);
  core::PipelineConfig config;
  config.sanitizer.clique = world.clique;
  config.sanitizer.route_server_asns = world.route_servers;
  core::Pipeline pipeline{world.geo_db, world.vps, world.asn_registry,
                          world.graph, config};
  pipeline.load(ribs);
  return pipeline.country(country);
}

}  // namespace

int main(int argc, char** argv) {
  auto country_arg = geo::CountryCode::parse(argc > 1 ? argv[1] : "RU");
  bgp::Asn provider = argc > 2 ? static_cast<bgp::Asn>(std::atoll(argv[2]))
                               : gen::asn::kLumen;
  if (!country_arg) {
    std::fprintf(stderr, "usage: %s <country code> [provider asn]\n", argv[0]);
    return 1;
  }
  geo::CountryCode country = *country_arg;

  std::printf("building the evaluation world...\n");
  gen::WorldSpec spec = gen::default_world_spec();
  gen::World world = gen::InternetGenerator{spec}.generate();
  if (!world.graph.contains(provider)) {
    std::fprintf(stderr, "AS %u does not exist in this world\n", provider);
    return 1;
  }

  core::CountryMetrics before = run_pipeline(world, spec.noise, country);

  // The sanction: sever every link between the provider and ASes homed in
  // the target country. (Links to the provider's customers ABROAD stay —
  // exactly the distinction §6.1 makes about Lumen and Cogent.)
  std::size_t cut = 0;
  for (const auto& [asn, info] : world.as_info) {
    if (info.home != country) continue;
    if (world.graph.remove_edge(provider, asn)) ++cut;
  }
  std::printf("severed %zu link(s) between AS%u (%s) and %s networks\n\n", cut,
              provider, world.name_of(provider).c_str(),
              country.to_string().c_str());

  core::CountryMetrics after = run_pipeline(world, spec.noise, country);

  auto diff = [&](const char* label, const rank::Ranking& a,
                  const rank::Ranking& b) {
    std::printf("-- %s --\n", label);
    util::Table table{{"#", "before", "score", "after", "score"}};
    table.set_align(2, util::Align::kRight);
    table.set_align(4, util::Align::kRight);
    auto ta = a.top(8);
    auto tb = b.top(8);
    for (std::size_t i = 0; i < 8 && (i < ta.size() || i < tb.size()); ++i) {
      auto cell = [&](const std::vector<rank::ScoredAs>& v,
                      std::size_t j) -> std::pair<std::string, std::string> {
        if (j >= v.size()) return {"", ""};
        return {std::to_string(v[j].asn) + " " + world.name_of(v[j].asn),
                util::percent(v[j].score)};
      };
      auto [la, sa] = cell(ta, i);
      auto [lb, sb] = cell(tb, i);
      table.add_row({std::to_string(i + 1), la, sa, lb, sb});
    }
    table.print(std::cout);
    std::printf("provider AS%u: rank %s -> %s\n\n", provider,
                a.rank_of(provider) ? std::to_string(*a.rank_of(provider)).c_str()
                                    : "-",
                b.rank_of(provider) ? std::to_string(*b.rank_of(provider)).c_str()
                                    : "-");
  };
  diff("CCI", before.cci, after.cci);
  diff("AHI", before.ahi, after.ahi);
  diff("AHN", before.ahn, after.ahn);
  return 0;
}
