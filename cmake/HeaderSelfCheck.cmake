# Include-hygiene enforcement (georank-lint rule GR030's build-side
# companion): every public header under src/ must be self-contained —
# compilable as the sole include of an otherwise empty TU. This
# generates one .cpp per header at configure time and compiles them all
# into an OBJECT library, so a header that silently leans on whatever
# its current includers happen to include first breaks the build, not a
# future refactor.
#
# GEORANK_HEADER_CHECKS=OFF skips the generation entirely; ci.sh turns
# it off for the sanitizer trees (self-containment is independent of
# instrumentation, so checking it once in the plain tier is enough).
option(GEORANK_HEADER_CHECKS
       "Compile a one-TU-per-header self-containment check for src/ headers" ON)

function(georank_add_header_checks)
  if(NOT GEORANK_HEADER_CHECKS)
    return()
  endif()
  file(GLOB_RECURSE _georank_headers RELATIVE ${CMAKE_SOURCE_DIR}/src
       ${CMAKE_SOURCE_DIR}/src/*.hpp)
  list(SORT _georank_headers)
  set(_tus)
  foreach(header IN LISTS _georank_headers)
    string(MAKE_C_IDENTIFIER ${header} id)
    set(tu ${CMAKE_BINARY_DIR}/header_checks/check_${id}.cpp)
    set(content "#include \"${header}\"\n")
    # Only rewrite when the content changes, so reconfigures do not
    # trigger a full recompile of the check library.
    if(EXISTS ${tu})
      file(READ ${tu} previous)
    else()
      set(previous "")
    endif()
    if(NOT previous STREQUAL content)
      file(WRITE ${tu} ${content})
    endif()
    list(APPEND _tus ${tu})
  endforeach()
  add_library(georank_header_checks OBJECT ${_tus})
  target_include_directories(georank_header_checks PRIVATE ${CMAKE_SOURCE_DIR}/src)
  target_link_libraries(georank_header_checks PRIVATE Threads::Threads)
endfunction()
