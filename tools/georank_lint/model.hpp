// Pass one of the two-pass engine: a repo-wide model of the facts the
// cross-file rules reason about. Nothing here emits findings — rules
// (pass two: layers.hpp, lockorder.hpp, and the cross-TU parts of
// scan_file) evaluate against the finished model, so every rule sees
// the same harvest and the sources are tokenized exactly once.
//
// Harvested per file:
//   - #include edges (layering GR040/GR041, with line numbers so a
//     violation names its offending edge)
//   - mutex declarations (std::mutex / shared_mutex / recursive_mutex /
//     timed_mutex variants) and GEORANK_GUARDED_BY references
//   - function definitions with their bodies walked: RAII lock
//     acquisitions (lock_guard/unique_lock/shared_lock/scoped_lock),
//     the set of locks held at each acquisition, blocking ::syscalls
//     reached under a lock, and outgoing calls (for the
//     inter-procedural closure in lockorder.cpp)
//   - [[nodiscard]]-marked declarations in our headers (GR061) and
//     functions returning std::string/std::vector by value (GR060's
//     temporary-producer set)
//   - suppression tags per line, so graph rules honor `// lint: ...`
//     exactly like the line rules do
//
// Resolution is NAME-based and deliberately conservative: a lock
// acquisition binds to a mutex declared in the same file or its paired
// header first, then to a globally unique name; ambiguous names are
// dropped from the model (a false negative) rather than guessed at (a
// false cycle).
#pragma once

#include <cstddef>
#include <map>
#include <set>
#include <string>
#include <string_view>
#include <vector>

namespace georank::lint {

struct IncludeEdge {
  std::string path;  // as written: "core/pipeline.hpp" or "sys/socket.h"
  std::size_t line = 0;
  bool quoted = false;  // "..." (project) vs <...> (system)
};

struct MutexDecl {
  std::string name;  // variable name, e.g. "load_serial"
  std::string file;  // repo-relative declaring file
  std::size_t line = 0;
  /// Members annotated GEORANK_GUARDED_BY(this mutex), as harvested.
  std::vector<std::string> guarded;
};

/// One RAII lock acquisition inside a function body.
struct AcquireSite {
  std::size_t lock = 0;  // index into RepoModel::mutexes
  std::size_t line = 0;
  std::vector<std::size_t> held;  // locks already held at this point
};

/// A call made inside a function body (callee by last-component name).
struct CallSite {
  std::string callee;
  std::size_t line = 0;
  std::vector<std::size_t> held;
};

/// A blocking ::syscall reached inside a function body.
struct BlockingSite {
  std::string name;
  std::size_t line = 0;
  std::vector<std::size_t> held;
};

struct FunctionModel {
  std::string name;       // qualified where visible: "Pipeline::load"
  std::string file;
  std::size_t line = 0;
  std::vector<AcquireSite> acquires;
  std::vector<CallSite> calls;
  std::vector<BlockingSite> blocking;
};

struct FileModel {
  std::string rel;  // repo-relative, '/'-separated
  std::vector<IncludeEdge> includes;
  /// Suppression tags by 1-based line: the tag applies to its own line
  /// and, when the tag sits on a comment-only line, to the next code
  /// line (same placement contract as the per-file rules).
  std::map<std::size_t, std::set<std::string>> tags;
};

struct RepoModel {
  std::vector<FileModel> files;
  std::vector<MutexDecl> mutexes;      // lock ids index this
  std::vector<FunctionModel> functions;
  /// Names of [[nodiscard]]-marked functions declared in src/ headers.
  std::set<std::string> nodiscard_functions;
  /// Names of functions declared to return std::string or std::vector
  /// BY VALUE — calling one produces a temporary (GR060's producers).
  std::set<std::string> temporary_producers;

  [[nodiscard]] const FileModel* find_file(std::string_view rel) const;
  /// True when `line` of `rel` (or a comment-only line just above it)
  /// carries the given suppression tag.
  [[nodiscard]] bool suppressed(std::string_view rel, std::size_t line,
                                std::string_view tag) const;
};

/// Builds the model from in-memory sources (tests) or from a directory
/// walk (scan_repo): `sources` maps repo-relative path -> contents.
/// Lock/function/producer harvesting is restricted to src/; includes
/// are harvested for src/ files (the layering domain).
[[nodiscard]] RepoModel build_model(
    const std::vector<std::pair<std::string, std::string>>& sources);

/// The module (= first directory component under src/) of a path, or
/// empty when the path is not under src/.
[[nodiscard]] std::string_view module_of(std::string_view rel);

}  // namespace georank::lint
