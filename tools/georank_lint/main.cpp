// georank-lint CLI: scan the repository for project-invariant violations.
//
//   georank_lint --root <repo> [--baseline FILE | --no-baseline]
//                [--sarif FILE] [--changed BASE-REF] [--no-graph]
//                [--list-rules] [--explain RULE]
//
// `--changed BASE-REF` lints only files touched since BASE-REF (per
// `git diff --name-only`) — the pre-commit fast path. Cross-TU graph
// rules are skipped in that mode (a partial file set cannot judge
// whole-repo properties) and under `--no-graph`.
//
// Exit codes: 0 clean, 1 non-baselined findings, 2 usage/IO error.
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <string>
#include <vector>

#include "georank_lint/lint.hpp"
#include "georank_lint/sarif.hpp"

namespace {

int list_rules() {
  std::printf("%-7s %-26s %-14s %s\n", "ID", "NAME", "SUPPRESSION", "SUMMARY");
  for (const georank::lint::RuleInfo& r : georank::lint::rules()) {
    std::string tag = r.suppression.empty()
                          ? std::string("(baseline only)")
                          : "lint: " + std::string(r.suppression);
    std::printf("%-7s %-26s %-14s %s\n", std::string(r.id).c_str(),
                std::string(r.name).c_str(), tag.c_str(),
                std::string(r.summary).c_str());
  }
  return 0;
}

int explain_rule(const std::string& id) {
  for (const georank::lint::RuleInfo& r : georank::lint::rules()) {
    if (r.id != id && r.name != id) continue;
    std::printf("%s (%s)\n", std::string(r.id).c_str(),
                std::string(r.name).c_str());
    std::printf("  %s\n\n", std::string(r.summary).c_str());
    std::printf("%s\n", std::string(r.detail).c_str());
    if (!r.suppression.empty()) {
      std::printf("\nSuppression: `// lint: %s(<reason>)` on the flagged "
                  "line (or the comment line above it).\n",
                  std::string(r.suppression).c_str());
    } else {
      std::printf("\nSuppression: none inline; baseline entries only%s.\n",
                  r.id == "GR041" ? " — and GR041 ignores even those" : "");
    }
    return 0;
  }
  std::fprintf(stderr, "georank_lint: unknown rule '%s' (try --list-rules)\n",
               id.c_str());
  return 2;
}

/// `git -C <root> diff --name-only <ref>` — the changed-file set for
/// `--changed` mode. Returns false when git cannot be run.
bool changed_files(const std::filesystem::path& root, const std::string& ref,
                   std::vector<std::string>& out) {
  const std::string cmd = "git -C '" + root.string() +
                          "' diff --name-only '" + ref + "' 2>/dev/null";
  FILE* pipe = popen(cmd.c_str(), "r");
  if (pipe == nullptr) return false;
  char buf[4096];
  std::string all;
  while (fgets(buf, sizeof buf, pipe) != nullptr) all += buf;
  const int status = pclose(pipe);
  if (status != 0) return false;
  std::size_t pos = 0;
  while (pos < all.size()) {
    std::size_t nl = all.find('\n', pos);
    if (nl == std::string::npos) nl = all.size();
    std::string rel = all.substr(pos, nl - pos);
    pos = nl + 1;
    if (rel.empty()) continue;
    const bool scanned_tree = rel.rfind("src/", 0) == 0 ||
                              rel.rfind("tools/", 0) == 0 ||
                              rel.rfind("bench/", 0) == 0;
    const bool cpp = rel.size() > 4 &&
                     (rel.compare(rel.size() - 4, 4, ".hpp") == 0 ||
                      rel.compare(rel.size() - 4, 4, ".cpp") == 0);
    if (scanned_tree && cpp) out.push_back(std::move(rel));
  }
  return true;
}

}  // namespace

int main(int argc, char** argv) {
  namespace fs = std::filesystem;
  fs::path root = fs::current_path();
  fs::path baseline_file;
  fs::path sarif_file;
  std::string changed_ref;
  bool use_baseline = true;
  bool baseline_explicit = false;
  bool graph = true;

  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--list-rules") {
      return list_rules();
    } else if (arg == "--explain" && i + 1 < argc) {
      return explain_rule(argv[++i]);
    } else if (arg == "--root" && i + 1 < argc) {
      root = argv[++i];
    } else if (arg == "--baseline" && i + 1 < argc) {
      baseline_file = argv[++i];
      baseline_explicit = true;
    } else if (arg == "--no-baseline") {
      use_baseline = false;
    } else if (arg == "--sarif" && i + 1 < argc) {
      sarif_file = argv[++i];
    } else if (arg == "--changed" && i + 1 < argc) {
      changed_ref = argv[++i];
    } else if (arg == "--no-graph") {
      graph = false;
    } else if (arg == "--help" || arg == "-h") {
      std::printf(
          "usage: georank_lint [--root DIR] [--baseline FILE] [--no-baseline]\n"
          "                    [--sarif FILE] [--changed BASE-REF] [--no-graph]\n"
          "                    [--list-rules] [--explain RULE]\n"
          "Scans <root>/{src,tools,bench} for project-invariant violations.\n"
          "Default baseline: <root>/scripts/lint_baseline.txt\n"
          "--changed lints only files touched since BASE-REF (graph rules off).\n"
          "--explain prints the full rationale for one rule.\n");
      return 0;
    } else {
      std::fprintf(stderr, "georank_lint: unknown argument '%s'\n", arg.c_str());
      return 2;
    }
  }

  if (!fs::exists(root / "src")) {
    std::fprintf(stderr, "georank_lint: no src/ under --root %s\n",
                 root.string().c_str());
    return 2;
  }
  if (baseline_file.empty()) baseline_file = root / "scripts" / "lint_baseline.txt";
  if (baseline_explicit && !fs::exists(baseline_file)) {
    std::fprintf(stderr, "georank_lint: baseline file %s not found\n",
                 baseline_file.string().c_str());
    return 2;
  }

  georank::lint::Baseline baseline;
  if (use_baseline) baseline = georank::lint::Baseline::load(baseline_file);

  georank::lint::ScanOptions options;
  options.graph_rules = graph;
  if (!changed_ref.empty()) {
    options.graph_rules = false;
    if (!changed_files(root, changed_ref, options.only)) {
      std::fprintf(stderr, "georank_lint: git diff against '%s' failed\n",
                   changed_ref.c_str());
      return 2;
    }
    if (options.only.empty()) {
      std::printf("georank-lint: no lintable files changed since %s\n",
                  changed_ref.c_str());
      return 0;
    }
  }

  const georank::lint::RepoScanResult result =
      georank::lint::scan_repo(root, baseline, options);

  if (!sarif_file.empty()) {
    std::ofstream out{sarif_file};
    if (!out) {
      std::fprintf(stderr, "georank_lint: cannot write %s\n",
                   sarif_file.string().c_str());
      return 2;
    }
    out << georank::lint::to_sarif(georank::lint::rules(), result.findings);
  }

  for (const georank::lint::Finding& f : result.findings) {
    std::printf("%s:%zu: [%s] %s\n    %s\n", f.path.c_str(), f.line,
                f.rule.c_str(), f.message.c_str(), f.excerpt.c_str());
  }
  std::printf(
      "georank-lint: %zu finding%s (%zu baselined) across %zu files\n",
      result.findings.size(), result.findings.size() == 1 ? "" : "s",
      result.baselined, result.files_scanned);
  return result.findings.empty() ? 0 : 1;
}
