// georank-lint CLI: scan the repository for project-invariant violations.
//
//   georank_lint --root <repo> [--baseline FILE | --no-baseline] [--list-rules]
//
// Exit codes: 0 clean, 1 non-baselined findings, 2 usage/IO error.
#include <cstdio>
#include <filesystem>
#include <string>

#include "georank_lint/lint.hpp"

namespace {

int list_rules() {
  std::printf("%-7s %-26s %-14s %s\n", "ID", "NAME", "SUPPRESSION", "SUMMARY");
  for (const georank::lint::RuleInfo& r : georank::lint::rules()) {
    std::string tag = r.suppression.empty()
                          ? std::string("(baseline only)")
                          : "lint: " + std::string(r.suppression);
    std::printf("%-7s %-26s %-14s %s\n", std::string(r.id).c_str(),
                std::string(r.name).c_str(), tag.c_str(),
                std::string(r.summary).c_str());
  }
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  namespace fs = std::filesystem;
  fs::path root = fs::current_path();
  fs::path baseline_file;
  bool use_baseline = true;
  bool baseline_explicit = false;

  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--list-rules") {
      return list_rules();
    } else if (arg == "--root" && i + 1 < argc) {
      root = argv[++i];
    } else if (arg == "--baseline" && i + 1 < argc) {
      baseline_file = argv[++i];
      baseline_explicit = true;
    } else if (arg == "--no-baseline") {
      use_baseline = false;
    } else if (arg == "--help" || arg == "-h") {
      std::printf(
          "usage: georank_lint [--root DIR] [--baseline FILE] [--no-baseline] "
          "[--list-rules]\n"
          "Scans <root>/{src,tools,bench} for project-invariant violations.\n"
          "Default baseline: <root>/scripts/lint_baseline.txt\n");
      return 0;
    } else {
      std::fprintf(stderr, "georank_lint: unknown argument '%s'\n", arg.c_str());
      return 2;
    }
  }

  if (!fs::exists(root / "src")) {
    std::fprintf(stderr, "georank_lint: no src/ under --root %s\n",
                 root.string().c_str());
    return 2;
  }
  if (baseline_file.empty()) baseline_file = root / "scripts" / "lint_baseline.txt";
  if (baseline_explicit && !fs::exists(baseline_file)) {
    std::fprintf(stderr, "georank_lint: baseline file %s not found\n",
                 baseline_file.string().c_str());
    return 2;
  }

  georank::lint::Baseline baseline;
  if (use_baseline) baseline = georank::lint::Baseline::load(baseline_file);

  const georank::lint::RepoScanResult result =
      georank::lint::scan_repo(root, baseline);

  for (const georank::lint::Finding& f : result.findings) {
    std::printf("%s:%zu: [%s] %s\n    %s\n", f.path.c_str(), f.line,
                f.rule.c_str(), f.message.c_str(), f.excerpt.c_str());
  }
  std::printf(
      "georank-lint: %zu finding%s (%zu baselined) across %zu files\n",
      result.findings.size(), result.findings.size() == 1 ? "" : "s",
      result.baselined, result.files_scanned);
  return result.findings.empty() ? 0 : 1;
}
