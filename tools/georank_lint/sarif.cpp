#include "georank_lint/sarif.hpp"

#include <cstdio>

namespace georank::lint {
namespace {

/// JSON string escaping per RFC 8259 (control chars as \u00XX).
std::string esc(std::string_view s) {
  std::string out;
  out.reserve(s.size() + 2);
  for (char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x",
                        static_cast<unsigned>(static_cast<unsigned char>(c)));
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

}  // namespace

std::string to_sarif(std::span<const RuleInfo> rules,
                     const std::vector<Finding>& findings) {
  std::string out;
  out +=
      "{\n"
      "  \"$schema\": "
      "\"https://json.schemastore.org/sarif-2.1.0.json\",\n"
      "  \"version\": \"2.1.0\",\n"
      "  \"runs\": [\n"
      "    {\n"
      "      \"tool\": {\n"
      "        \"driver\": {\n"
      "          \"name\": \"georank-lint\",\n"
      "          \"rules\": [\n";
  for (std::size_t i = 0; i < rules.size(); ++i) {
    const RuleInfo& r = rules[i];
    out += "            {\"id\": \"" + esc(r.id) + "\", \"name\": \"" +
           esc(r.name) + "\", \"shortDescription\": {\"text\": \"" +
           esc(r.summary) + "\"}}";
    out += i + 1 < rules.size() ? ",\n" : "\n";
  }
  out +=
      "          ]\n"
      "        }\n"
      "      },\n"
      "      \"results\": [\n";
  for (std::size_t i = 0; i < findings.size(); ++i) {
    const Finding& f = findings[i];
    out += "        {\"ruleId\": \"" + esc(f.rule) +
           "\", \"level\": \"error\", \"message\": {\"text\": \"" +
           esc(f.message) +
           "\"}, \"locations\": [{\"physicalLocation\": "
           "{\"artifactLocation\": {\"uri\": \"" +
           esc(f.path) + "\"}, \"region\": {\"startLine\": " +
           std::to_string(f.line == 0 ? 1 : f.line) + "}}}]}";
    out += i + 1 < findings.size() ? ",\n" : "\n";
  }
  out +=
      "      ]\n"
      "    }\n"
      "  ]\n"
      "}\n";
  return out;
}

}  // namespace georank::lint
