#include "georank_lint/model.hpp"

#include <algorithm>
#include <optional>
#include <regex>
#include <unordered_map>

#include "georank_lint/tokenizer.hpp"

namespace georank::lint {
namespace {

const std::regex kInclude(R"(^\s*#\s*include\s*(["<])([^">]+)[">])");
const std::regex kTag(R"(lint:\s*([a-z][a-z-]*))");

bool is_blank_code(const std::string& code) {
  return std::all_of(code.begin(), code.end(), [](char c) {
    return c == ' ' || c == '\t' || c == '\r';
  });
}

bool ends_with(std::string_view s, std::string_view suffix) {
  return s.size() >= suffix.size() &&
         s.substr(s.size() - suffix.size()) == suffix;
}

/// Path minus extension: "src/core/pipeline.hpp" -> "src/core/pipeline",
/// so a .cpp resolves lock names declared in its own header first.
std::string_view stem_of(std::string_view rel) {
  std::size_t dot = rel.rfind('.');
  return dot == std::string_view::npos ? rel : rel.substr(0, dot);
}

bool is_mutex_type(std::string_view word) {
  return word == "mutex" || word == "shared_mutex" ||
         word == "recursive_mutex" || word == "timed_mutex" ||
         word == "recursive_timed_mutex" || word == "shared_timed_mutex";
}

bool is_guard_class(std::string_view word) {
  return word == "lock_guard" || word == "unique_lock" ||
         word == "shared_lock" || word == "scoped_lock";
}

bool is_lock_tag_arg(std::string_view word) {
  return word == "defer_lock" || word == "try_to_lock" ||
         word == "adopt_lock";
}

/// System calls that can block the calling thread; reaching one while a
/// modeled lock is held is GR051. `shutdown`/`setsockopt` are
/// deliberately absent: they are non-blocking control operations and
/// the server legitimately issues them under `conn_mutex_`.
bool is_blocking_syscall(std::string_view word) {
  return word == "fsync" || word == "fdatasync" || word == "write" ||
         word == "writev" || word == "read" || word == "readv" ||
         word == "accept" || word == "accept4" || word == "connect" ||
         word == "send" || word == "sendto" || word == "sendmsg" ||
         word == "recv" || word == "recvfrom" || word == "recvmsg" ||
         word == "poll" || word == "select" || word == "nanosleep";
}

bool is_keywordish(std::string_view word) {
  return word == "if" || word == "for" || word == "while" ||
         word == "switch" || word == "return" || word == "sizeof" ||
         word == "catch" || word == "new" || word == "delete" ||
         word == "throw" || word == "static_cast" ||
         word == "dynamic_cast" || word == "reinterpret_cast" ||
         word == "const_cast" || word == "alignof" ||
         word == "decltype" || word == "noexcept" || word == "assert" ||
         word == "defined" || word == "static_assert";
}

/// Walks one src/ file's token stream maintaining a brace-context stack
/// (namespace / class / function / block) and, inside functions, the
/// set of modeled locks held at each point. All the heavy lifting for
/// the lock-order and call-graph harvest lives here.
class BodyWalker {
 public:
  BodyWalker(RepoModel& model, const FileModel& file,
             const std::vector<Token>& toks)
      : model_(model), file_(file), toks_(toks) {}

  void run() {
    while (i_ < toks_.size()) {
      const Token& t = toks_[i_];
      if (t.kind == TokKind::kPunct) {
        if (t.text == "(") {
          ++paren_depth_;
        } else if (t.text == ")") {
          if (paren_depth_ > 0) --paren_depth_;
        } else if (t.text == "{") {
          open_brace();
          ++i_;
          continue;
        } else if (t.text == "}") {
          if (!stack_.empty()) stack_.pop_back();
          head_ = i_ + 1;
          ++i_;
          continue;
        } else if (t.text == ";" && paren_depth_ == 0) {
          head_ = i_ + 1;
        } else if (t.text == "::") {
          maybe_blocking_syscall();
        }
        ++i_;
        continue;
      }
      if (t.kind == TokKind::kIdent) {
        if (is_guard_class(t.text) && try_acquisition()) continue;
        if (t.text == "GEORANK_GUARDED_BY" && try_guarded_by()) continue;
        maybe_call(t);
      }
      ++i_;
    }
  }

 private:
  struct Ctx {
    enum Kind { kNamespace, kClass, kFunction, kBlock };
    Kind kind = kBlock;
    long func = -1;               // index into model_.functions
    std::string class_name;       // for kClass, to qualify methods
    std::vector<std::size_t> acquired;  // locks this scope holds
  };

  const Token* tok(std::size_t j) const {
    return j < toks_.size() ? &toks_[j] : nullptr;
  }

  FunctionModel* current_function() {
    for (auto it = stack_.rbegin(); it != stack_.rend(); ++it) {
      if (it->func >= 0) {
        return &model_.functions[static_cast<std::size_t>(it->func)];
      }
    }
    return nullptr;
  }

  std::vector<std::size_t> held() const {
    std::vector<std::size_t> out;
    for (const Ctx& c : stack_) {
      for (std::size_t id : c.acquired) {
        if (std::find(out.begin(), out.end(), id) == out.end()) {
          out.push_back(id);
        }
      }
    }
    return out;
  }

  std::string enclosing_class() const {
    for (auto it = stack_.rbegin(); it != stack_.rend(); ++it) {
      if (it->kind == Ctx::kClass) return it->class_name;
    }
    return {};
  }

  /// Classifies the `{` at toks_[i_] from the statement head (tokens
  /// since the last `;`/`{`/`}` at paren depth zero) and pushes a
  /// context. Anything unrecognized is a plain block — wrong guesses
  /// here only widen or narrow lock scopes, never crash the walk.
  void open_brace() {
    Ctx ctx;
    if (paren_depth_ > 0) {
      // Brace inside an argument list: lambda body or braced-init.
      stack_.push_back(ctx);
      return;
    }
    std::size_t b = head_;
    std::size_t e = i_;
    // template<...> prefix: classification looks past it.
    if (b < e && toks_[b].text == "template" && b + 1 < e &&
        toks_[b + 1].text == "<") {
      int depth = 0;
      std::size_t j = b + 1;
      for (; j < e; ++j) {
        if (toks_[j].text == "<") ++depth;
        if (toks_[j].text == ">" && --depth == 0) break;
      }
      b = j < e ? j + 1 : e;
    }
    if (b >= e) {
      stack_.push_back(ctx);
      head_ = i_ + 1;
      return;
    }
    const std::string& first = toks_[b].text;
    if (first == "namespace") {
      ctx.kind = Ctx::kNamespace;
    } else if (first == "class" || first == "struct" || first == "union" ||
               first == "enum") {
      ctx.kind = Ctx::kClass;
      for (std::size_t j = b + 1; j < e; ++j) {
        if (toks_[j].kind == TokKind::kIdent && toks_[j].text != "final" &&
            toks_[j].text != "alignas" && toks_[j].text != "class") {
          ctx.class_name = toks_[j].text;
          break;
        }
      }
    } else if (first == "if" || first == "for" || first == "while" ||
               first == "switch" || first == "do" || first == "else" ||
               first == "try" || first == "catch" || first == "extern") {
      ctx.kind = Ctx::kBlock;
    } else if (std::optional<std::string> name = function_name(b, e)) {
      ctx.kind = Ctx::kFunction;
      FunctionModel fn;
      fn.name = std::move(*name);
      fn.file = file_.rel;
      fn.line = toks_[b].line;
      std::string cls = enclosing_class();
      if (!cls.empty() && fn.name.find("::") == std::string::npos) {
        fn.name = cls + "::" + fn.name;
      }
      ctx.func = static_cast<long>(model_.functions.size());
      model_.functions.push_back(std::move(fn));
    }
    stack_.push_back(std::move(ctx));
    head_ = i_ + 1;
  }

  /// A statement head names a function definition when it contains an
  /// identifier directly followed by `(` (the first such, so ctor
  /// initializer lists don't win) and no top-level `=` precedes it (so
  /// `auto f = [..](..) {` stays a block).
  std::optional<std::string> function_name(std::size_t b, std::size_t e) {
    int paren = 0;
    int bracket = 0;
    for (std::size_t j = b; j < e; ++j) {
      const std::string& s = toks_[j].text;
      if (toks_[j].kind == TokKind::kPunct) {
        if (s == "(") ++paren;
        if (s == ")") --paren;
        if (s == "[") ++bracket;
        if (s == "]") --bracket;
        if (s == "=" && paren == 0 && bracket == 0) return std::nullopt;
        continue;
      }
      if (toks_[j].kind != TokKind::kIdent || is_keywordish(s)) continue;
      if (j + 1 < e && toks_[j + 1].text == "(" && paren == 0 &&
          bracket == 0) {
        // Collect a Qualified::chain ending at j.
        std::size_t k = j;
        while (k >= b + 2 && toks_[k - 1].text == "::" &&
               toks_[k - 2].kind == TokKind::kIdent) {
          k -= 2;
        }
        std::string name;
        for (std::size_t m = k; m <= j; ++m) name += toks_[m].text;
        return name;
      }
    }
    return std::nullopt;
  }

  /// toks_[i_] is lock_guard/unique_lock/shared_lock/scoped_lock. Parse
  /// `Guard<...> var(args...)` (or brace-init), resolve each lock arg,
  /// record the acquisition, and jump past the argument list so the
  /// braces of a brace-init don't look like a scope. Returns false —
  /// leaving i_ untouched — when the shape doesn't match.
  bool try_acquisition() {
    std::size_t j = i_ + 1;
    if (tok(j) && toks_[j].text == "<") {  // skip template arguments
      int depth = 0;
      while (j < toks_.size()) {
        if (toks_[j].text == "<") ++depth;
        if (toks_[j].text == ">" && --depth == 0) break;
        ++j;
      }
      ++j;
    }
    if (!tok(j) || toks_[j].kind != TokKind::kIdent) return false;
    ++j;  // the guard variable name
    if (!tok(j) || (toks_[j].text != "(" && toks_[j].text != "{")) {
      return false;
    }
    int pdepth = toks_[j].text == "(" ? 1 : 0;
    int bdepth = toks_[j].text == "{" ? 1 : 0;
    std::size_t arg_start = ++j;
    std::vector<std::string> args;
    auto flush = [&](std::size_t end) {
      // Last identifier of the argument expression names the lock:
      // `mu_`, `this->mu_`, `state.mu` all resolve to the member name.
      for (std::size_t k = end; k > arg_start; --k) {
        if (toks_[k - 1].kind == TokKind::kIdent) {
          args.push_back(toks_[k - 1].text);
          return;
        }
      }
    };
    while (j < toks_.size()) {
      const std::string& s = toks_[j].text;
      if (s == "(") ++pdepth;
      if (s == ")") --pdepth;
      if (s == "{") ++bdepth;
      if (s == "}") --bdepth;
      if (pdepth + bdepth == 0) break;  // the matching close
      if (s == "," && pdepth + bdepth == 1) {
        flush(j);
        arg_start = j + 1;
      }
      ++j;
    }
    if (j > arg_start) flush(j);
    const std::size_t line = toks_[i_].line;
    std::vector<std::size_t> held_now = held();
    for (const std::string& a : args) {
      if (is_lock_tag_arg(a)) continue;
      std::optional<std::size_t> id = resolve_lock(a);
      if (!id) continue;
      FunctionModel* fn = current_function();
      if (fn) fn->acquires.push_back({*id, line, held_now});
      if (!stack_.empty()) stack_.back().acquired.push_back(*id);
      held_now.push_back(*id);  // scoped_lock(a, b): b is held-after-a
    }
    i_ = j + 1;
    return true;
  }

  /// `member GEORANK_GUARDED_BY(mu)` — attach `member` to the mutex.
  bool try_guarded_by() {
    if (!tok(i_ + 1) || toks_[i_ + 1].text != "(") return false;
    std::size_t j = i_ + 2;
    std::string lock_name;
    int depth = 1;
    while (j < toks_.size() && depth > 0) {
      if (toks_[j].text == "(") ++depth;
      if (toks_[j].text == ")" && --depth == 0) break;
      if (toks_[j].kind == TokKind::kIdent) lock_name = toks_[j].text;
      ++j;
    }
    std::string member;
    if (i_ >= 1 && toks_[i_ - 1].kind == TokKind::kIdent) {
      member = toks_[i_ - 1].text;
    }
    if (!lock_name.empty() && !member.empty()) {
      if (std::optional<std::size_t> id = resolve_lock(lock_name)) {
        auto& g = model_.mutexes[*id].guarded;
        if (std::find(g.begin(), g.end(), member) == g.end()) {
          g.push_back(member);
        }
      }
    }
    i_ = j + 1;
    return true;
  }

  /// toks_[i_] is `::` — a global-qualified blocking syscall follows
  /// when the previous token cannot be a namespace/class name.
  void maybe_blocking_syscall() {
    if (i_ >= 1) {
      const Token& prev = toks_[i_ - 1];
      if (prev.kind == TokKind::kIdent || prev.text == ")" ||
          prev.text == ">" || prev.text == "]") {
        return;
      }
    }
    const Token* name = tok(i_ + 1);
    const Token* paren = tok(i_ + 2);
    if (!name || !paren || name->kind != TokKind::kIdent ||
        paren->text != "(" || !is_blocking_syscall(name->text)) {
      return;
    }
    FunctionModel* fn = current_function();
    if (fn) fn->blocking.push_back({name->text, name->line, held()});
  }

  void maybe_call(const Token& t) {
    const Token* next = tok(i_ + 1);
    if (!next || next->text != "(") return;
    if (is_keywordish(t.text) || is_guard_class(t.text)) return;
    if (t.text.rfind("GEORANK_", 0) == 0) return;
    if (i_ >= 1) {
      const std::string& prev = toks_[i_ - 1].text;
      // A globally-qualified `::name(` is a raw syscall, not one of
      // our functions — keep it out of the call graph.
      if (prev == "::" && (i_ < 2 || toks_[i_ - 2].kind != TokKind::kIdent)) {
        return;
      }
      // Calls through an explicit receiver (`buf.append(...)`) bind by
      // bare name to ANY same-named function — std::string::append
      // would feed UpdateJournal::append's entry-held set. Only bare
      // and `this->` calls are reliable enough to propagate locks
      // through; receiver calls stay out of the call graph.
      if ((prev == "." || prev == "->") &&
          (i_ < 2 || toks_[i_ - 2].text != "this")) {
        return;
      }
    }
    FunctionModel* fn = current_function();
    if (fn) fn->calls.push_back({t.text, t.line, held()});
  }

  std::optional<std::size_t> resolve_lock(std::string_view name) const {
    std::size_t match = model_.mutexes.size();
    std::size_t count = 0;
    for (std::size_t id = 0; id < model_.mutexes.size(); ++id) {
      const MutexDecl& m = model_.mutexes[id];
      if (m.name != name) continue;
      if (m.file == file_.rel ||
          stem_of(m.file) == stem_of(file_.rel)) {
        return id;  // same file or paired header: unambiguous
      }
      match = id;
      ++count;
    }
    if (count == 1) return match;  // globally unique name
    return std::nullopt;           // ambiguous: drop, never guess
  }

  RepoModel& model_;
  const FileModel& file_;
  const std::vector<Token>& toks_;
  std::size_t i_ = 0;
  std::size_t head_ = 0;
  int paren_depth_ = 0;
  std::vector<Ctx> stack_;
};

void harvest_includes_and_tags(FileModel& fm, const Tokenized& tz) {
  for (std::size_t n = 0; n < tz.lines.size(); ++n) {
    const Line& line = tz.lines[n];
    std::smatch m;
    if (std::regex_search(line.code, m, kInclude)) {
      fm.includes.push_back(
          IncludeEdge{m[2].str(), n + 1, m[1].str() == "\""});
    }
    auto begin = std::sregex_iterator(line.comment.begin(),
                                      line.comment.end(), kTag);
    for (auto it = begin; it != std::sregex_iterator(); ++it) {
      fm.tags[n + 1].insert((*it)[1].str());
      if (is_blank_code(line.code) && n + 1 < tz.lines.size()) {
        // Tag on a comment-only line also covers the next line.
        fm.tags[n + 2].insert((*it)[1].str());
      }
    }
  }
}

void harvest_mutexes(RepoModel& model, const FileModel& fm,
                     const std::vector<Token>& toks) {
  for (std::size_t i = 0; i + 2 < toks.size(); ++i) {
    if (toks[i].kind != TokKind::kIdent || !is_mutex_type(toks[i].text)) {
      continue;
    }
    // `std::mutex name ;` — a `>` or `,` after the type means it is a
    // template argument (lock_guard<std::mutex>), not a declaration.
    if (toks[i + 1].kind != TokKind::kIdent) continue;
    const std::string& term = toks[i + 2].text;
    if (term != ";" && term != "{") continue;
    model.mutexes.push_back(
        MutexDecl{toks[i + 1].text, fm.rel, toks[i + 1].line, {}});
  }
}

/// `[[nodiscard]] ... name(` in a header: record `name`. Also record
/// functions returning std::string/std::vector by value — calling one
/// yields a temporary, which is what GR060 looks for behind a view.
void harvest_declarations(RepoModel& model,
                          const std::vector<Token>& toks) {
  for (std::size_t i = 0; i < toks.size(); ++i) {
    if (toks[i].kind != TokKind::kIdent) continue;
    const std::string& s = toks[i].text;
    if (s == "nodiscard") {
      for (std::size_t j = i + 1; j < toks.size(); ++j) {
        const std::string& t = toks[j].text;
        if (t == ";" || t == "{" || t == "nodiscard") break;
        if (toks[j].kind == TokKind::kIdent && j + 1 < toks.size() &&
            toks[j + 1].text == "(" && !is_keywordish(t)) {
          model.nodiscard_functions.insert(t);
          break;
        }
      }
      continue;
    }
    if ((s == "string" || s == "vector") && i >= 2 &&
        toks[i - 1].text == "::" && toks[i - 2].text == "std") {
      std::size_t j = i + 1;
      if (s == "vector") {
        if (j >= toks.size() || toks[j].text != "<") continue;
        int depth = 0;
        while (j < toks.size()) {
          if (toks[j].text == "<") ++depth;
          if (toks[j].text == ">" && --depth == 0) break;
          ++j;
        }
        ++j;
      }
      // By-value return only: a `&` or `*` after the type means the
      // caller does NOT own a temporary.
      if (j + 1 < toks.size() && toks[j].kind == TokKind::kIdent &&
          toks[j + 1].text == "(") {
        model.temporary_producers.insert(toks[j].text);
      }
    }
  }
}

}  // namespace

const FileModel* RepoModel::find_file(std::string_view rel) const {
  for (const FileModel& f : files) {
    if (f.rel == rel) return &f;
  }
  return nullptr;
}

bool RepoModel::suppressed(std::string_view rel, std::size_t line,
                           std::string_view tag) const {
  const FileModel* f = find_file(rel);
  if (!f) return false;
  auto it = f->tags.find(line);
  return it != f->tags.end() &&
         it->second.count(std::string(tag)) != 0;
}

std::string_view module_of(std::string_view rel) {
  if (rel.rfind("src/", 0) != 0) return {};
  std::string_view rest = rel.substr(4);
  std::size_t slash = rest.find('/');
  return slash == std::string_view::npos ? std::string_view{}
                                         : rest.substr(0, slash);
}

RepoModel build_model(
    const std::vector<std::pair<std::string, std::string>>& sources) {
  RepoModel model;
  std::vector<Tokenized> streams;
  streams.reserve(sources.size());
  model.files.reserve(sources.size());
  for (const auto& [rel, contents] : sources) {
    Tokenized tz = tokenize(contents);
    FileModel fm;
    fm.rel = rel;
    harvest_includes_and_tags(fm, tz);
    model.files.push_back(std::move(fm));
    streams.push_back(std::move(tz));
  }
  // Mutexes and declarations first, repo-wide, so a body in a.cpp can
  // resolve a lock declared in b.hpp regardless of file order.
  for (std::size_t n = 0; n < sources.size(); ++n) {
    const std::string& rel = sources[n].first;
    if (rel.rfind("src/", 0) != 0) continue;
    harvest_mutexes(model, model.files[n], streams[n].tokens);
    if (ends_with(rel, ".hpp") || ends_with(rel, ".h")) {
      harvest_declarations(model, streams[n].tokens);
    }
  }
  for (std::size_t n = 0; n < sources.size(); ++n) {
    if (sources[n].first.rfind("src/", 0) != 0) continue;
    BodyWalker(model, model.files[n], streams[n].tokens).run();
  }
  return model;
}

}  // namespace georank::lint
