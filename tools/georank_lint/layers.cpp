#include "georank_lint/layers.hpp"

#include <algorithm>
#include <cctype>
#include <map>
#include <sstream>
#include <tuple>

namespace georank::lint {
namespace {

std::string trim_ws(std::string s) {
  auto sp = [](unsigned char c) { return std::isspace(c) != 0; };
  while (!s.empty() && sp(static_cast<unsigned char>(s.front()))) {
    s.erase(s.begin());
  }
  while (!s.empty() && sp(static_cast<unsigned char>(s.back()))) {
    s.pop_back();
  }
  return s;
}

struct Edge {
  std::string file;
  std::size_t line = 0;
  std::string include;
};

/// Rotates a cycle so its lexicographically smallest module comes
/// first — the canonical form used to report each cycle exactly once.
std::vector<std::string> canonical(std::vector<std::string> cycle) {
  auto smallest = std::min_element(cycle.begin(), cycle.end());
  std::rotate(cycle.begin(), smallest, cycle.end());
  return cycle;
}

}  // namespace

bool LayerSpec::declares(std::string_view module) const {
  return allowed.count(std::string(module)) != 0;
}

bool LayerSpec::permits(std::string_view from, std::string_view to) const {
  if (from == to) return true;
  auto it = allowed.find(std::string(from));
  return it != allowed.end() && it->second.count(std::string(to)) != 0;
}

LayerSpec parse_layers(std::string_view text) {
  LayerSpec spec;
  std::istringstream in{std::string(text)};
  std::string raw;
  while (std::getline(in, raw)) {
    std::size_t hash = raw.find('#');
    if (hash != std::string::npos) raw.resize(hash);
    std::size_t colon = raw.find(':');
    if (colon == std::string::npos) continue;
    std::string module = trim_ws(raw.substr(0, colon));
    if (module.empty()) continue;
    std::set<std::string>& deps = spec.allowed[module];
    std::istringstream rest{raw.substr(colon + 1)};
    std::string dep;
    while (rest >> dep) deps.insert(dep);
  }
  return spec;
}

std::vector<Finding> check_layering(const RepoModel& model,
                                    const LayerSpec& spec) {
  // The module universe is what exists on disk: src/<module>/...
  std::set<std::string> modules;
  std::map<std::string, std::string> first_file;  // module -> a file in it
  for (const FileModel& f : model.files) {
    std::string_view m = module_of(f.rel);
    if (m.empty()) continue;
    auto [it, inserted] = first_file.emplace(std::string(m), f.rel);
    if (!inserted && f.rel < it->second) it->second = f.rel;
    modules.insert(std::string(m));
  }

  // Observed inter-module edges, with every include that created each.
  std::map<std::pair<std::string, std::string>, std::vector<Edge>> edges;
  for (const FileModel& f : model.files) {
    std::string from(module_of(f.rel));
    if (from.empty()) continue;
    for (const IncludeEdge& inc : f.includes) {
      std::size_t slash = inc.path.find('/');
      if (slash == std::string::npos) continue;
      std::string to = inc.path.substr(0, slash);
      if (modules.count(to) == 0 || to == from) continue;
      edges[{from, to}].push_back(Edge{f.rel, inc.line, inc.path});
    }
  }

  std::vector<Finding> out;

  // GR040a: a src/ module the architecture file doesn't know about.
  for (const std::string& m : modules) {
    if (spec.declares(m)) continue;
    out.push_back(Finding{
        "GR040", first_file.at(m), 1,
        "module '" + m +
            "' is not declared in tools/georank_lint/layers.def; add a "
            "`" + m + ": <deps>` line stating what it may depend on",
        ""});
  }

  // GR040b: an observed edge the architecture file doesn't permit.
  for (const auto& [edge, sites] : edges) {
    if (spec.permits(edge.first, edge.second)) continue;
    for (const Edge& site : sites) {
      if (model.suppressed(site.file, site.line, "layer-ok")) continue;
      out.push_back(Finding{
          "GR040", site.file, site.line,
          "illegal layering edge " + edge.first + " -> " + edge.second +
              " (via #include \"" + site.include +
              "\"); not permitted by layers.def",
          "#include \"" + site.include + "\""});
    }
  }

  // GR041: cycles in the OBSERVED graph — always fatal, never
  // suppressible. Colored DFS; each cycle reported once in canonical
  // rotation, anchored at one include that closes it.
  std::map<std::string, std::set<std::string>> graph;
  for (const auto& [edge, sites] : edges) {
    graph[edge.first].insert(edge.second);
  }
  std::map<std::string, int> color;  // 0 white, 1 gray, 2 black
  std::vector<std::string> path;
  std::set<std::vector<std::string>> seen;

  auto dfs = [&](auto&& self, const std::string& node) -> void {
    color[node] = 1;
    path.push_back(node);
    auto it = graph.find(node);
    if (it != graph.end()) {
      for (const std::string& next : it->second) {
        if (color[next] == 1) {
          auto start = std::find(path.begin(), path.end(), next);
          std::vector<std::string> cycle(start, path.end());
          std::vector<std::string> canon = canonical(cycle);
          if (!seen.insert(canon).second) continue;
          std::string desc;
          for (const std::string& m : canon) desc += m + " -> ";
          desc += canon.front();
          const Edge& site = edges.at({node, next}).front();
          out.push_back(Finding{
              "GR041", site.file, site.line,
              "module dependency cycle: " + desc +
                  "; cycles have no build order and are always fatal "
                  "(no suppression, no baseline)",
              "#include \"" + site.include + "\""});
        } else if (color[next] == 0) {
          self(self, next);
        }
      }
    }
    path.pop_back();
    color[node] = 2;
  };
  for (const std::string& m : modules) {
    if (color[m] == 0) dfs(dfs, m);
  }

  std::sort(out.begin(), out.end(), [](const Finding& a, const Finding& b) {
    return std::tie(a.path, a.line, a.rule) <
           std::tie(b.path, b.line, b.rule);
  });
  return out;
}

}  // namespace georank::lint
