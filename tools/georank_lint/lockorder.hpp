// GR050/GR051: inter-procedural lock-order analysis over the RepoModel.
//
// Pass one (model.cpp) records, per function, every RAII acquisition
// with the locks already held lexically at that point, every outgoing
// call, and every blocking `::syscall`. This pass makes it
// inter-procedural: a fixed-point over the call graph computes, for
// each function, the set of locks that may be held by ANY caller chain
// when it runs ("entry-held"). Then:
//
//   GR050  lock-order cycle: acquiring B while holding A adds edge
//          A -> B to the acquisition-order graph; a cycle means two
//          threads can deadlock by taking the locks in opposite
//          orders. Suppress a specific acquisition's edges with
//          `// lint: lock-order(why)` on the acquisition line.
//   GR051  blocking syscall (fsync/write/accept/connect/...) reached
//          while a modeled lock is held — the lock's critical section
//          is then bounded by disk or peer latency. Suppress with
//          `// lint: blocking-ok(why)` on the syscall line.
//
// Call edges bind by name (last component), so the analysis
// over-approximates through same-named methods; everything else is
// under-approximated (locks it cannot resolve are dropped). Both rules
// therefore stay heuristics with an escape hatch, not proofs.
#pragma once

#include <cstddef>
#include <string>
#include <vector>

#include "georank_lint/lint.hpp"
#include "georank_lint/model.hpp"

namespace georank::lint {

/// One edge of the lock-acquisition-order graph: `before` was held
/// while `after` was acquired at file:line (possibly via callers).
struct LockEdge {
  std::size_t before = 0;
  std::size_t after = 0;
  std::string file;
  std::size_t line = 0;
};

/// Builds the full inter-procedural edge list (deduplicated by lock
/// pair, keeping the first site). Exposed for tests and the DESIGN
/// graph dump; check_lock_order consumes it.
[[nodiscard]] std::vector<LockEdge> build_lock_edges(
    const RepoModel& model);

/// Evaluates GR050 (cycles) and GR051 (blocking under a lock).
[[nodiscard]] std::vector<Finding> check_lock_order(
    const RepoModel& model);

}  // namespace georank::lint
