// Shared lexer for georank-lint: one pass over a translation unit that
// strips comments and literal contents EXACTLY ONCE, yielding both a
// token stream (identifiers/numbers/literals/punctuation with 1-based
// line positions, for the cross-TU model builders) and a per-line view
// (blanked `code`, extracted `comment`, for the line-oriented rules and
// suppression tags). Before this existed every rule carried its own
// ad-hoc literal-stripping; raw strings and multi-line literals were
// each rule's private bug to have.
//
// Handled: `//` and `/* */` comments (multi-line), "..."/'...' with
// escapes, raw strings R"delim(...)delim" across lines, and the
// preprocessor: on `#include` lines the header path is kept inside the
// blanked `code` so include-based rules (layering, containment, the
// thread_safety.hpp requirement) read it without re-parsing raw text.
// Not handled (stays a heuristic, not a front end): trigraphs, line
// continuations inside identifiers, digraphs.
#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

namespace georank::lint {

enum class TokKind : std::uint8_t {
  kIdent,   // identifiers and keywords
  kNumber,  // numeric literals (pp-numbers, good enough)
  kString,  // string literal; text holds the INNER contents
  kChar,    // character literal; text holds the inner contents
  kPunct,   // punctuation; `::` and `->` arrive as single tokens
};

struct Token {
  TokKind kind;
  std::string text;
  std::uint32_t line = 0;  // 1-based
};

/// One source line, split the way the rules consume it.
struct Line {
  std::string raw;      // verbatim source
  std::string code;     // literals blanked, comments removed; include
                        // paths kept on preprocessor lines
  std::string comment;  // comment text (suppression tags live here)
};

struct Tokenized {
  std::vector<Token> tokens;
  std::vector<Line> lines;
};

/// Lexes one translation unit. Never fails: malformed input (unclosed
/// literal, unterminated comment) degrades to treating the remainder as
/// that construct, which is what a compiler's error-recovery would see.
[[nodiscard]] Tokenized tokenize(std::string_view contents);

}  // namespace georank::lint
